package ocean

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSoundSpeedKnownValues(t *testing.T) {
	// Mackenzie reference point: T=25°C, S=35 ppt, D=1000 m → 1550.744 m/s.
	e := &Environment{Temperature: 25, Salinity: 35}
	got := e.SoundSpeed(1000)
	if math.Abs(got-1550.744) > 0.01 {
		t.Errorf("Mackenzie reference = %v, want 1550.744", got)
	}
	// Fresh water at 15 °C near the surface: ~1466 m/s (tabulated ~1466).
	r := CharlesRiver()
	c := r.SoundSpeed(1)
	if c < 1450 || c > 1485 {
		t.Errorf("river sound speed %v outside plausible band", c)
	}
	// Warmer and saltier water is faster.
	cold := &Environment{Temperature: 5, Salinity: 30}
	warm := &Environment{Temperature: 20, Salinity: 35}
	if cold.SoundSpeed(5) >= warm.SoundSpeed(5) {
		t.Error("sound speed should increase with temperature/salinity")
	}
}

func TestSoundSpeedIncreasesWithDepthProperty(t *testing.T) {
	f := func(d1, d2 float64) bool {
		e := AtlanticCoastal()
		a := math.Mod(math.Abs(d1), 1000)
		b := math.Mod(math.Abs(d2), 1000)
		if a > b {
			a, b = b, a
		}
		return e.SoundSpeed(a) <= e.SoundSpeed(b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanSoundSpeed(t *testing.T) {
	e := AtlanticCoastal()
	m := e.MeanSoundSpeed()
	if m < e.SoundSpeed(0) || m > e.SoundSpeed(e.Depth) {
		t.Errorf("mean %v outside endpoint range [%v, %v]", m, e.SoundSpeed(0), e.SoundSpeed(e.Depth))
	}
}

func TestThorpKnownValues(t *testing.T) {
	// At 10 kHz Thorp gives roughly 1 dB/km; at 50 kHz roughly 15 dB/km.
	a10 := ThorpAbsorption(10e3)
	if a10 < 0.5 || a10 > 1.5 {
		t.Errorf("Thorp(10 kHz) = %v dB/km, want ~1", a10)
	}
	a50 := ThorpAbsorption(50e3)
	if a50 < 10 || a50 > 20 {
		t.Errorf("Thorp(50 kHz) = %v dB/km, want ~15", a50)
	}
	// Monotone increasing in frequency.
	prev := 0.0
	for f := 100.0; f < 100e3; f *= 1.3 {
		a := ThorpAbsorption(f)
		if a < prev {
			t.Fatalf("Thorp not monotone at %v Hz", f)
		}
		prev = a
	}
}

func TestFrancoisGarrisonVsThorp(t *testing.T) {
	// For standard seawater the two models should agree within a factor ~2
	// over 1–50 kHz.
	e := &Environment{Temperature: 4, Salinity: 35, PH: 8}
	for _, f := range []float64{1e3, 5e3, 18.5e3, 50e3} {
		fg := e.Absorption(f, 10)
		th := ThorpAbsorption(f)
		if fg < th/2.5 || fg > th*2.5 {
			t.Errorf("f=%v: FG %v vs Thorp %v disagree wildly", f, fg, th)
		}
	}
}

func TestFreshWaterAbsorptionMuchLower(t *testing.T) {
	river := CharlesRiver()
	sea := AtlanticCoastal()
	f := 18.5e3
	ar := river.AbsorptionMid(f)
	as := sea.AbsorptionMid(f)
	if ar >= as/3 {
		t.Errorf("river absorption %v dB/km should be far below ocean %v dB/km", ar, as)
	}
	if ar <= 0 || as <= 0 {
		t.Error("absorption must be positive")
	}
}

func TestTransmissionLoss(t *testing.T) {
	e := AtlanticCoastal()
	f := 18.5e3
	if tl := e.TransmissionLoss(f, 1); tl != 0 {
		t.Errorf("TL at reference distance = %v, want 0", tl)
	}
	// At 100 m: k·20 dB + absorption·0.1 km.
	want := e.SpreadingExponent*20 + e.AbsorptionMid(f)*0.1
	if got := e.TransmissionLoss(f, 100); math.Abs(got-want) > 1e-9 {
		t.Errorf("TL(100) = %v, want %v", got, want)
	}
}

func TestTransmissionLossMonotoneProperty(t *testing.T) {
	e := CharlesRiver()
	f := func(r1, r2 float64) bool {
		a := 1 + math.Mod(math.Abs(r1), 1e4)
		b := 1 + math.Mod(math.Abs(r2), 1e4)
		if a > b {
			a, b = b, a
		}
		return e.TransmissionLoss(18.5e3, a) <= e.TransmissionLoss(18.5e3, b)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNoisePSDShape(t *testing.T) {
	e := AtlanticCoastal()
	// Around 18.5 kHz, coastal noise PSD should be in the 30–65 dB range.
	n := e.NoisePSD(18.5e3)
	if n < 25 || n > 70 {
		t.Errorf("NoisePSD(18.5k) = %v dB, implausible", n)
	}
	// More wind → more noise at mid frequencies.
	calm := *e
	calm.WindSpeed = 0
	if calm.NoisePSD(18.5e3) >= e.NoisePSD(18.5e3) {
		t.Error("wind should raise the noise floor")
	}
	// More shipping → more noise at low frequencies (300 Hz).
	quiet := *e
	quiet.Shipping = 0
	if quiet.NoisePSD(300) >= e.NoisePSD(300) {
		t.Error("shipping should raise low-frequency noise")
	}
}

func TestNoiseLevelBandIntegration(t *testing.T) {
	e := CharlesRiver()
	f := 18.5e3
	psd := e.NoisePSD(f)
	// A 1 Hz band should give back ~the PSD.
	if got := e.NoiseLevel(f, 1); math.Abs(got-psd) > 0.5 {
		t.Errorf("NL(1 Hz band) = %v, PSD = %v", got, psd)
	}
	// A 1 kHz band should be ~30 dB above the PSD.
	if got := e.NoiseLevel(f, 1000); math.Abs(got-(psd+30)) > 1 {
		t.Errorf("NL(1 kHz band) = %v, want ~%v", got, psd+30)
	}
	// Zero bandwidth degenerates to PSD.
	if got := e.NoiseLevel(f, 0); got != psd {
		t.Errorf("NL(0) = %v, want %v", got, psd)
	}
}

func TestOceanNoisierThanRiver(t *testing.T) {
	if AtlanticCoastal().NoisePSD(18.5e3) <= CharlesRiver().NoisePSD(18.5e3) {
		t.Error("ocean preset should be noisier than river at the carrier")
	}
}

func TestValidatePresets(t *testing.T) {
	for _, e := range []*Environment{CharlesRiver(), AtlanticCoastal(), TestTank()} {
		if err := e.Validate(); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
	}
}

func TestValidateCatchesBadFields(t *testing.T) {
	bad := []func(*Environment){
		func(e *Environment) { e.Depth = 0 },
		func(e *Environment) { e.Temperature = 99 },
		func(e *Environment) { e.Salinity = -1 },
		func(e *Environment) { e.WindSpeed = -2 },
		func(e *Environment) { e.Shipping = 1.5 },
		func(e *Environment) { e.BottomDensity = 500 },
		func(e *Environment) { e.BottomSoundSpeed = 0 },
		func(e *Environment) { e.SpreadingExponent = 3 },
	}
	for i, mutate := range bad {
		e := CharlesRiver()
		mutate(e)
		if err := e.Validate(); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}
