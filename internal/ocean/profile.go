package ocean

import (
	"fmt"
	"math"
)

// The shallow coastal waters the paper operates in are well served by an
// iso-velocity image model. Extending backscatter toward deeper deployments
// (the natural follow-on) brings depth-dependent sound speed and ray
// bending into play; this file provides the canonical profile models and a
// range-stepping ray tracer for that regime.

// Profile gives sound speed as a function of depth (m, positive down).
type Profile interface {
	// SpeedAt returns the sound speed in m/s at depth z.
	SpeedAt(z float64) float64
	// Gradient returns dc/dz in 1/s at depth z.
	Gradient(z float64) float64
}

// IsoVelocity is a constant-speed profile.
type IsoVelocity float64

// SpeedAt implements Profile.
func (c IsoVelocity) SpeedAt(float64) float64 { return float64(c) }

// Gradient implements Profile.
func (c IsoVelocity) Gradient(float64) float64 { return 0 }

// MunkProfile is the canonical deep-ocean sound channel:
//
//	c(z) = c1·(1 + ε·(η − 1 + e^(−η))),  η = 2(z − z1)/B
//
// with a minimum (the SOFAR axis) at depth z1. Rays launched near the axis
// are trapped and oscillate around it.
type MunkProfile struct {
	AxisDepth float64 // z1, m (canonical 1300)
	AxisSpeed float64 // c1, m/s (canonical 1500)
	Scale     float64 // B, m (canonical 1300)
	Epsilon   float64 // ε (canonical 0.00737)
}

// CanonicalMunk returns Munk's standard parameterization.
func CanonicalMunk() *MunkProfile {
	return &MunkProfile{AxisDepth: 1300, AxisSpeed: 1500, Scale: 1300, Epsilon: 0.00737}
}

// SpeedAt implements Profile.
func (m *MunkProfile) SpeedAt(z float64) float64 {
	eta := 2 * (z - m.AxisDepth) / m.Scale
	return m.AxisSpeed * (1 + m.Epsilon*(eta-1+math.Exp(-eta)))
}

// Gradient implements Profile.
func (m *MunkProfile) Gradient(z float64) float64 {
	eta := 2 * (z - m.AxisDepth) / m.Scale
	return m.AxisSpeed * m.Epsilon * (2 / m.Scale) * (1 - math.Exp(-eta))
}

// LinearProfile has constant gradient g from surface speed c0: the textbook
// upward/downward-refracting water column.
type LinearProfile struct {
	SurfaceSpeed float64 // m/s at z = 0
	G            float64 // dc/dz in 1/s (positive: faster with depth)
}

// SpeedAt implements Profile.
func (l *LinearProfile) SpeedAt(z float64) float64 { return l.SurfaceSpeed + l.G*z }

// Gradient implements Profile.
func (l *LinearProfile) Gradient(float64) float64 { return l.G }

// RayPoint is one sample of a traced ray path.
type RayPoint struct {
	Range float64 // m
	Depth float64 // m
	Theta float64 // grazing angle, rad (positive = heading down)
}

// TraceRay integrates the ray equations through a profile from depth z0 at
// launch grazing angle theta0 (radians; positive = downward), out to
// rangeMax with range step dr. Snell's invariant cosθ/c is conserved;
// turning points (where cosθ·c(z) would exceed 1... i.e. the ray flattens)
// reflect the vertical direction, as do the surface (z = 0) and the bottom
// (z = depthMax, pass +Inf for none).
//
// The integrator is a midpoint (RK2) scheme in range — ample for the
// smooth profiles above; it is a visualization/physics tool, not a
// propagation-loss engine.
func TraceRay(p Profile, z0, theta0, rangeMax, dr, depthMax float64) ([]RayPoint, error) {
	if dr <= 0 || rangeMax <= 0 {
		return nil, fmt.Errorf("ocean: ray needs positive dr and rangeMax")
	}
	if z0 < 0 || (depthMax > 0 && z0 > depthMax) {
		return nil, fmt.Errorf("ocean: launch depth %.1f outside water column", z0)
	}
	if math.Abs(theta0) >= math.Pi/2 {
		return nil, fmt.Errorf("ocean: launch angle %.3f rad too steep for range stepping", theta0)
	}
	// Integrate the range-stepped ray equations directly:
	//
	//	dz/dr = tanθ,   dθ/dr = −c'(z)/c(z)
	//
	// θ passes smoothly through refraction turning points (θ = 0), so no
	// special-casing is needed there; only the physical boundaries reflect.
	n := int(rangeMax/dr) + 1
	path := make([]RayPoint, 0, n)
	z, th := z0, theta0
	clampZ := func(zz float64) float64 {
		if zz < 0 {
			zz = 0
		}
		if depthMax > 0 && zz > depthMax {
			zz = depthMax
		}
		return zz
	}
	for i := 0; i < n; i++ {
		path = append(path, RayPoint{Range: float64(i) * dr, Depth: z, Theta: th})

		// Midpoint (RK2) step.
		k1z := math.Tan(th)
		k1t := -p.Gradient(z) / p.SpeedAt(z)
		zm := clampZ(z + k1z*dr/2)
		tm := th + k1t*dr/2
		z += math.Tan(tm) * dr
		th += -p.Gradient(zm) / p.SpeedAt(zm) * dr

		// Boundary reflections.
		if z < 0 {
			z = -z
			th = -th
		}
		if depthMax > 0 && z > depthMax {
			z = 2*depthMax - z
			th = -th
		}
		// Keep the range-stepping assumption honest: the smooth profiles
		// here never steepen a shallow launch beyond ~60°.
		if math.Abs(th) > math.Pi/3 {
			return path, fmt.Errorf("ocean: ray steepened to %.2f rad at r=%.0f; use a smaller launch angle", th, float64(i)*dr)
		}
	}
	return path, nil
}

// TurningDepths returns the shallow and deep turning depths of a ray
// launched at z0/theta0 in the profile, found by scanning for where
// cosθ(z) = 1 (ξ·c(z) = 1). Returns NaN for a side with no turning point
// inside [0, zMax].
func TurningDepths(p Profile, z0, theta0, zMax float64) (shallow, deep float64) {
	xi := math.Cos(theta0) / p.SpeedAt(z0)
	shallow, deep = math.NaN(), math.NaN()
	const steps = 4000
	// Scan upward from launch.
	prev := xi*p.SpeedAt(z0) - 1
	for i := 1; i <= steps; i++ {
		z := z0 - z0*float64(i)/steps
		v := xi*p.SpeedAt(z) - 1
		if prev < 0 && v >= 0 {
			shallow = z
			break
		}
		prev = v
	}
	prev = xi*p.SpeedAt(z0) - 1
	for i := 1; i <= steps; i++ {
		z := z0 + (zMax-z0)*float64(i)/steps
		v := xi*p.SpeedAt(z) - 1
		if prev < 0 && v >= 0 {
			deep = z
			break
		}
		prev = v
	}
	return shallow, deep
}
