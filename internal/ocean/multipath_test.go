package ocean

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func riverGeom(r float64) Geometry {
	return Geometry{SourceDepth: 2, ReceiverDepth: 2.5, Range: r}
}

func TestMultipathDirectPath(t *testing.T) {
	e := TestTank() // boundaries far away
	g := Geometry{SourceDepth: 50, ReceiverDepth: 50, Range: 10}
	arr := e.Multipath(g, DefaultMultipathConfig(18.5e3))
	if len(arr) == 0 {
		t.Fatal("no arrivals")
	}
	// First arrival is the direct path: no bounces, delay = r/c.
	d := arr[0]
	if d.SurfaceBounces != 0 || d.BottomBounces != 0 {
		t.Errorf("first arrival has bounces: %+v", d)
	}
	c := e.MeanSoundSpeed()
	if math.Abs(d.Delay-10/c) > 1e-9 {
		t.Errorf("direct delay %v, want %v", d.Delay, 10/c)
	}
	// Amplitude ≈ 1/L^(k/2) with k=2 → 1/10, times tiny absorption.
	if m := cmplx.Abs(d.Gain); math.Abs(m-0.1) > 0.005 {
		t.Errorf("direct gain %v, want ~0.1", m)
	}
}

func TestMultipathSortedAndDirectStrongest(t *testing.T) {
	e := CharlesRiver()
	arr := e.Multipath(riverGeom(50), DefaultMultipathConfig(18.5e3))
	if len(arr) < 3 {
		t.Fatalf("river at 50 m should be rich in multipath, got %d arrivals", len(arr))
	}
	for i := 1; i < len(arr); i++ {
		if arr[i].Delay < arr[i-1].Delay {
			t.Fatal("arrivals not sorted by delay")
		}
	}
	// Direct path (index of minimal bounces) should be the strongest.
	best := 0
	for i, a := range arr {
		if cmplx.Abs(a.Gain) > cmplx.Abs(arr[best].Gain) {
			best = i
		}
	}
	if arr[best].SurfaceBounces+arr[best].BottomBounces > 1 {
		t.Errorf("strongest arrival has %d bounces", arr[best].SurfaceBounces+arr[best].BottomBounces)
	}
}

func TestMultipathBounceCounts(t *testing.T) {
	e := CharlesRiver()
	arr := e.Multipath(riverGeom(30), MultipathConfig{MaxOrder: 2, MinRelAmpDB: 80, FrequencyHz: 18.5e3})
	// Expect to find the four first-order families: direct, surface-only,
	// bottom-only, and surface+bottom.
	type key struct{ s, b int }
	seen := map[key]bool{}
	for _, a := range arr {
		seen[key{a.SurfaceBounces, a.BottomBounces}] = true
	}
	for _, k := range []key{{0, 0}, {1, 0}, {0, 1}, {1, 1}} {
		if !seen[k] {
			t.Errorf("missing arrival family surface=%d bottom=%d", k.s, k.b)
		}
	}
}

func TestMultipathFloorFiltersWeakArrivals(t *testing.T) {
	e := CharlesRiver()
	loose := e.Multipath(riverGeom(50), MultipathConfig{MaxOrder: 8, MinRelAmpDB: 60, FrequencyHz: 18.5e3})
	tight := e.Multipath(riverGeom(50), MultipathConfig{MaxOrder: 8, MinRelAmpDB: 10, FrequencyHz: 18.5e3})
	if len(tight) >= len(loose) {
		t.Errorf("tight floor kept %d arrivals, loose %d", len(tight), len(loose))
	}
}

func TestMultipathPanicsOnZeroRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	CharlesRiver().Multipath(Geometry{SourceDepth: 1, ReceiverDepth: 1}, DefaultMultipathConfig(18.5e3))
}

func TestDelaySpreadGrowsWithRangeShrink(t *testing.T) {
	// In a shallow waveguide, delay spread relative to direct delay falls
	// with range (rays flatten out), but absolute spread should be positive
	// whenever there is more than one arrival.
	e := CharlesRiver()
	arr := e.Multipath(riverGeom(100), DefaultMultipathConfig(18.5e3))
	ds := DelaySpread(arr)
	if len(arr) > 1 && ds <= 0 {
		t.Errorf("delay spread %v with %d arrivals", ds, len(arr))
	}
	if DelaySpread(nil) != 0 {
		t.Error("empty delay spread should be 0")
	}
}

func TestRicianK(t *testing.T) {
	if !math.IsInf(RicianK(nil), 1) {
		t.Error("no arrivals → K = +Inf")
	}
	one := []Arrival{{Gain: complex(0.1, 0)}}
	if !math.IsInf(RicianK(one), 1) {
		t.Error("single arrival → K = +Inf")
	}
	two := []Arrival{{Gain: complex(1, 0)}, {Gain: complex(0.1, 0)}}
	k := RicianK(two)
	if math.Abs(k-20) > 1e-9 {
		t.Errorf("K = %v dB, want 20", k)
	}
}

func TestCoherentVsTotalPowerProperty(t *testing.T) {
	// Coherent power |Σg|² never exceeds N·Σ|g|² and total power is
	// non-negative; the diversity bound TotalPower ≥ (CoherentGain²)/N.
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		m := int(n)%8 + 1
		arr := make([]Arrival, m)
		for i := range arr {
			arr[i].Gain = complex(r.NormFloat64(), r.NormFloat64())
		}
		cg := CoherentGain(arr)
		tp := TotalPower(arr)
		return cg*cg <= float64(m)*tp+1e-9 && tp >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSurfaceReflection(t *testing.T) {
	e := CharlesRiver()
	r := e.SurfaceReflection(0.2, 18.5e3)
	// Nearly calm river: |R| ≈ 1, phase flip.
	if real(r) > -0.9 {
		t.Errorf("calm surface reflection %v, want near -1", r)
	}
	// Rough ocean surface loses coherent energy at steep angles.
	o := AtlanticCoastal()
	steep := cmplx.Abs(o.SurfaceReflection(0.8, 18.5e3))
	shallow := cmplx.Abs(o.SurfaceReflection(0.05, 18.5e3))
	if steep >= shallow {
		t.Errorf("roughness loss should grow with grazing angle: steep %v shallow %v", steep, shallow)
	}
}

func TestBottomReflectionPhysics(t *testing.T) {
	e := AtlanticCoastal()
	// Below critical angle: |R| near 1 (minus configured bounce loss).
	crit := e.CriticalAngle()
	if crit <= 0 {
		t.Fatal("sandy bottom should have a critical angle")
	}
	sub := cmplx.Abs(e.BottomReflection(crit * 0.5))
	lossFactor := math.Pow(10, -e.BottomLossDB/20)
	if math.Abs(sub-lossFactor) > 0.05 {
		t.Errorf("sub-critical |R| = %v, want ~%v", sub, lossFactor)
	}
	// Far above critical: partial transmission, |R| clearly below 1.
	steep := cmplx.Abs(e.BottomReflection(math.Pi / 2 * 0.95))
	if steep >= sub {
		t.Errorf("steep |R| = %v should be below sub-critical %v", steep, sub)
	}
	// Grazing limit returns -1.
	if g := e.BottomReflection(0); g != complex(-1, 0) {
		t.Errorf("grazing reflection = %v, want -1", g)
	}
}

func TestBottomReflectionPassivityProperty(t *testing.T) {
	// |R| ≤ 1 for all grazing angles in (0, π/2]: a passive boundary cannot
	// amplify.
	envs := []*Environment{CharlesRiver(), AtlanticCoastal(), TestTank()}
	f := func(th float64) bool {
		theta := math.Mod(math.Abs(th), math.Pi/2)
		if theta == 0 {
			theta = 0.01
		}
		for _, e := range envs {
			if cmplx.Abs(e.BottomReflection(theta)) > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCriticalAngleSlowBottom(t *testing.T) {
	e := CharlesRiver()
	e.BottomSoundSpeed = 1400 // slower than water
	if e.CriticalAngle() != 0 {
		t.Error("slow bottom should have no critical angle")
	}
}

func TestDopplerSpreadAndCoherence(t *testing.T) {
	e := AtlanticCoastal()
	bd := e.DopplerSpread(18.5e3, 0)
	if bd <= 0 {
		t.Fatal("ocean Doppler spread should be positive")
	}
	// v/c·f sanity: 0.3 m/s / ~1490 m/s · 18.5 kHz ≈ 3.7 Hz.
	if bd < 1 || bd > 10 {
		t.Errorf("Doppler spread %v Hz implausible", bd)
	}
	tc := e.CoherenceTime(18.5e3, 0)
	if math.Abs(tc-0.423/bd) > 1e-12 {
		t.Errorf("coherence time %v inconsistent with spread", tc)
	}
	calm := TestTank()
	if !math.IsInf(calm.CoherenceTime(18.5e3, 0), 1) {
		t.Error("static channel should have infinite coherence time")
	}
}

func TestFadingProcessStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	fp := NewFadingProcess(5, 1000, 0.5, rng)
	n := 200000
	var mean complex128
	var pw float64
	for i := 0; i < n; i++ {
		g := fp.Gain()
		mean += g
		d := g - 1
		pw += real(d)*real(d) + imag(d)*imag(d)
	}
	mean /= complex(float64(n), 0)
	if cmplx.Abs(mean-1) > 0.05 {
		t.Errorf("fading mean %v, want ~1", mean)
	}
	// Stationary fluctuation power should approximate depth² = 0.25.
	if got := pw / float64(n); math.Abs(got-0.25) > 0.08 {
		t.Errorf("fluctuation power %v, want ~0.25", got)
	}
}

func TestFadingProcessStatic(t *testing.T) {
	fp := NewFadingProcess(0, 1000, 1, rand.New(rand.NewSource(1)))
	x := []complex128{2, 3}
	fp.Apply(x)
	if x[0] != 2 || x[1] != 3 {
		t.Error("static fading must not alter the signal")
	}
}
