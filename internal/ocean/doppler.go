package ocean

import (
	"math"
	"math/rand"
)

// DopplerSpread returns the two-sided Doppler spread in Hz a carrier at fHz
// experiences from surface motion and platform drift at relative speed
// vRel m/s:
//
//	B_d = f·(v_surface + v_rel)/c
//
// Surface-bounce paths are smeared by the vertical wave velocity; even the
// direct path sees drift-induced shift. For the paper's moored deployments
// the platform term is small and the spread is dominated by sea state.
func (e *Environment) DopplerSpread(fHz, vRel float64) float64 {
	c := e.MeanSoundSpeed()
	return fHz * (e.SurfaceSpeed + math.Abs(vRel)) / c
}

// CoherenceTime returns the approximate channel coherence time in seconds,
// using the usual T_c ≈ 0.423/B_d rule. Infinite for a static channel.
func (e *Environment) CoherenceTime(fHz, vRel float64) float64 {
	bd := e.DopplerSpread(fHz, vRel)
	if bd <= 0 {
		return math.Inf(1)
	}
	return 0.423 / bd
}

// FadingProcess generates a slowly varying random complex gain sequence with
// the given Doppler spread, modeling the channel's time variation across a
// packet. It is a first-order Gauss–Markov (AR(1)) process around 1+0j whose
// correlation time matches the coherence time; depth controls the relative
// fading intensity (0 = static, 1 = full Rayleigh-like variation).
type FadingProcess struct {
	rho   float64 // per-sample correlation
	sigma float64 // innovation std dev
	state complex128
	rng   *rand.Rand
}

// NewFadingProcess builds a fading process for sample rate fsHz. spreadHz is
// the Doppler spread (0 disables variation) and depth in [0,1] scales the
// fade magnitude.
func NewFadingProcess(spreadHz, fsHz, depth float64, rng *rand.Rand) *FadingProcess {
	fp := &FadingProcess{rng: rng, state: 0}
	if spreadHz <= 0 || depth <= 0 {
		fp.rho = 1
		fp.sigma = 0
		return fp
	}
	// AR(1) with correlation exp(-Δt/Tc).
	tc := 0.423 / spreadHz
	fp.rho = math.Exp(-1 / (tc * fsHz))
	// Stationary variance = depth²/2 per quadrature.
	fp.sigma = depth * math.Sqrt(1-fp.rho*fp.rho) / math.Sqrt2
	return fp
}

// Reset returns the process to its initial (unfaded) state, exactly as
// NewFadingProcess leaves it. An incrementally rebuilt link calls this
// instead of reconstructing the process: the AR(1) coefficients depend only
// on the Doppler spread and sample rate, which geometry sway cannot change,
// so resetting the state is equivalent to — and allocation-free compared
// with — building a fresh process on the same RNG.
func (fp *FadingProcess) Reset() { fp.state = 0 }

// Gain returns the next multiplicative channel gain sample (nominally near
// 1+0j, wandering with the configured statistics).
func (fp *FadingProcess) Gain() complex128 {
	if fp.sigma == 0 {
		return 1
	}
	fp.state = complex(fp.rho, 0)*fp.state +
		complex(fp.rng.NormFloat64()*fp.sigma, fp.rng.NormFloat64()*fp.sigma)
	return 1 + fp.state
}

// Apply multiplies x in place by the evolving channel gain and returns x.
func (fp *FadingProcess) Apply(x []complex128) []complex128 {
	for i := range x {
		x[i] *= fp.Gain()
	}
	return x
}
