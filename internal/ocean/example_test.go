package ocean_test

import (
	"fmt"

	"vab/internal/ocean"
)

// Example evaluates the acoustic environment terms that govern a VAB link
// in the river preset: transmission loss, ambient noise, and the multipath
// structure of the shallow waveguide.
func Example() {
	env := ocean.CharlesRiver()
	const fc = 18.5e3

	fmt.Printf("sound speed: %.0f m/s\n", env.MeanSoundSpeed())
	fmt.Printf("absorption:  %.2f dB/km\n", env.AbsorptionMid(fc))
	fmt.Printf("TL at 300 m: %.1f dB\n", env.TransmissionLoss(fc, 300))
	fmt.Printf("noise in a 500 Hz bin: %.1f dB re uPa\n", env.NoiseLevel(fc, 500))

	arr := env.Multipath(ocean.Geometry{SourceDepth: 1.6, ReceiverDepth: 2.4, Range: 100},
		ocean.DefaultMultipathConfig(fc))
	fmt.Printf("arrivals at 100 m: %d (delay spread %.1f ms)\n",
		len(arr), ocean.DelaySpread(arr)*1e3)
	// Output:
	// sound speed: 1466 m/s
	// absorption:  0.12 dB/km
	// TL at 300 m: 37.2 dB
	// noise in a 500 Hz bin: 61.9 dB re uPa
	// arrivals at 100 m: 10 (delay spread 0.2 ms)
}

// ExampleTraceRay launches a ray along the deep-ocean SOFAR axis: the Munk
// profile traps it between its turning depths.
func ExampleTraceRay() {
	m := ocean.CanonicalMunk()
	path, err := ocean.TraceRay(m, m.AxisDepth, 0.08, 60e3, 50, 5000)
	if err != nil {
		panic(err)
	}
	minZ, maxZ := 1e9, 0.0
	for _, pt := range path {
		if pt.Depth < minZ {
			minZ = pt.Depth
		}
		if pt.Depth > maxZ {
			maxZ = pt.Depth
		}
	}
	fmt.Printf("trapped between %.0f m and %.0f m (axis at %.0f m)\n", minZ, maxZ, m.AxisDepth)
	// Output:
	// trapped between 775 m and 2017 m (axis at 1300 m)
}
