package ocean

import (
	"math"
	"testing"
)

func TestMunkProfileShape(t *testing.T) {
	m := CanonicalMunk()
	// Minimum at the axis.
	cAxis := m.SpeedAt(m.AxisDepth)
	if math.Abs(cAxis-m.AxisSpeed) > 1e-9 {
		t.Errorf("axis speed %v, want %v", cAxis, m.AxisSpeed)
	}
	for _, dz := range []float64{-800, -300, 300, 800, 2000} {
		if m.SpeedAt(m.AxisDepth+dz) <= cAxis {
			t.Errorf("speed at axis%+.0f should exceed the axis minimum", dz)
		}
	}
	// Canonical values: surface ≈ 1548.5 m/s, 5000 m ≈ 1551 m/s.
	if c0 := m.SpeedAt(0); math.Abs(c0-1548.5) > 1 {
		t.Errorf("surface speed %v, want ~1548.5", c0)
	}
	if c5 := m.SpeedAt(5000); math.Abs(c5-1551) > 4 {
		t.Errorf("5 km speed %v, want ~1551", c5)
	}
	// Gradient zero at the axis, negative above, positive below.
	if g := m.Gradient(m.AxisDepth); math.Abs(g) > 1e-12 {
		t.Errorf("axis gradient %v", g)
	}
	if m.Gradient(500) >= 0 {
		t.Error("above-axis gradient should be negative")
	}
	if m.Gradient(3000) <= 0 {
		t.Error("below-axis gradient should be positive")
	}
}

func TestGradientMatchesFiniteDifference(t *testing.T) {
	m := CanonicalMunk()
	for _, z := range []float64{100, 800, 1300, 2500, 4000} {
		h := 0.5
		fd := (m.SpeedAt(z+h) - m.SpeedAt(z-h)) / (2 * h)
		if math.Abs(fd-m.Gradient(z)) > 1e-6 {
			t.Errorf("z=%v: gradient %v vs finite difference %v", z, m.Gradient(z), fd)
		}
	}
}

func TestTraceRayStraightInIsoVelocity(t *testing.T) {
	path, err := TraceRay(IsoVelocity(1500), 100, 0.1, 5000, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Constant slope tan(0.1).
	slope := math.Tan(0.1)
	for _, pt := range path {
		want := 100 + slope*pt.Range
		if math.Abs(pt.Depth-want) > 1 {
			t.Fatalf("r=%v: depth %v, want %v (straight line)", pt.Range, pt.Depth, want)
		}
	}
}

func TestTraceRaySOFARTrapping(t *testing.T) {
	// A ray launched on the axis at a shallow angle must oscillate around
	// the axis without touching surface or bottom.
	m := CanonicalMunk()
	path, err := TraceRay(m, m.AxisDepth, 0.08, 100e3, 50, 5000)
	if err != nil {
		t.Fatal(err)
	}
	minZ, maxZ := math.Inf(1), math.Inf(-1)
	crossings := 0
	prevAbove := false
	for i, pt := range path {
		if pt.Depth < minZ {
			minZ = pt.Depth
		}
		if pt.Depth > maxZ {
			maxZ = pt.Depth
		}
		above := pt.Depth < m.AxisDepth
		if i > 0 && above != prevAbove {
			crossings++
		}
		prevAbove = above
	}
	if minZ < 100 || maxZ > 4500 {
		t.Errorf("trapped ray escaped the channel: depths [%v, %v]", minZ, maxZ)
	}
	if crossings < 4 {
		t.Errorf("ray crossed the axis only %d times over 100 km; not oscillating", crossings)
	}
	// Turning depths must bracket the axis, symmetric-ish in speed.
	sh, dp := TurningDepths(m, m.AxisDepth, 0.08, 5000)
	if math.IsNaN(sh) || math.IsNaN(dp) {
		t.Fatalf("missing turning depths: %v %v", sh, dp)
	}
	if !(sh < m.AxisDepth && dp > m.AxisDepth) {
		t.Errorf("turning depths [%v, %v] don't bracket the axis", sh, dp)
	}
	// At a turning depth the local speed satisfies Snell: c(z_t) = c_axis/cos(θ0).
	want := m.AxisSpeed / math.Cos(0.08)
	if got := m.SpeedAt(dp); math.Abs(got-want) > 0.5 {
		t.Errorf("deep turning speed %v, want %v", got, want)
	}
	// The ray's observed excursion should match the turning depths within
	// the step resolution.
	if math.Abs(minZ-sh) > 100 || math.Abs(maxZ-dp) > 100 {
		t.Errorf("excursion [%v, %v] vs turning depths [%v, %v]", minZ, maxZ, sh, dp)
	}
}

func TestTraceRayUpwardRefraction(t *testing.T) {
	// Speed increasing with depth bends rays upward (classic surface
	// duct): a horizontally launched ray must rise and repeatedly bounce
	// off the surface.
	p := &LinearProfile{SurfaceSpeed: 1480, G: 0.05}
	path, err := TraceRay(p, 50, 0.001, 30e3, 20, 200)
	if err != nil {
		t.Fatal(err)
	}
	surfaceTouches := 0
	for _, pt := range path {
		if pt.Depth < 1 {
			surfaceTouches++
		}
		if pt.Depth > 199 {
			t.Fatalf("upward-refracted ray hit the bottom at r=%v", pt.Range)
		}
	}
	if surfaceTouches == 0 {
		t.Error("ray never reached the surface in an upward-refracting duct")
	}
}

func TestTraceRayValidation(t *testing.T) {
	if _, err := TraceRay(IsoVelocity(1500), 10, 0.1, -1, 10, 0); err == nil {
		t.Error("negative range accepted")
	}
	if _, err := TraceRay(IsoVelocity(1500), 10, 0.1, 100, 0, 0); err == nil {
		t.Error("zero dr accepted")
	}
	if _, err := TraceRay(IsoVelocity(1500), -5, 0.1, 100, 10, 0); err == nil {
		t.Error("negative launch depth accepted")
	}
	if _, err := TraceRay(IsoVelocity(1500), 10, 1.6, 100, 10, 0); err == nil {
		t.Error("vertical launch accepted")
	}
}

func TestBoundaryReflectionsConserveInvariant(t *testing.T) {
	// In a bounded iso-velocity channel the grazing magnitude is conserved
	// across surface/bottom bounces.
	path, err := TraceRay(IsoVelocity(1500), 10, 0.15, 20e3, 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range path {
		if math.Abs(math.Abs(pt.Theta)-0.15) > 0.01 {
			t.Fatalf("grazing magnitude drifted to %v at r=%v", pt.Theta, pt.Range)
		}
	}
}
