package ocean

import "math"

// ThorpAbsorption returns the seawater absorption coefficient in dB/km at
// frequency fHz using Thorp's empirical formula (valid roughly 100 Hz –
// 50 kHz, 4 °C, 35 ppt). It is the standard first-order model in underwater
// networking papers.
func ThorpAbsorption(fHz float64) float64 {
	f := fHz / 1000 // kHz
	f2 := f * f
	return 0.11*f2/(1+f2) + 44*f2/(4100+f2) + 2.75e-4*f2 + 0.003
}

// Absorption returns the absorption coefficient in dB/km at frequency fHz
// for this environment using the Francois–Garrison (1982) model, which
// accounts for temperature, salinity, pH and depth. For fresh water the
// boric-acid and magnesium-sulfate relaxation terms vanish with salinity,
// leaving the pure-water viscous term — exactly the physical behaviour that
// makes river absorption much lower than ocean absorption at the VAB
// carrier frequency.
func (e *Environment) Absorption(fHz, depth float64) float64 {
	f := fHz / 1000 // model works in kHz
	t := e.Temperature
	s := e.Salinity
	c := 1412 + 3.21*t + 1.19*s + 0.0167*depth
	theta := 273 + t

	// Boric acid contribution.
	a1 := 8.86 / c * math.Pow(10, 0.78*e.PH-5)
	p1 := 1.0
	f1 := 2.8 * math.Sqrt(s/35) * math.Pow(10, 4-1245/theta)

	// Magnesium sulfate contribution.
	a2 := 21.44 * s / c * (1 + 0.025*t)
	p2 := 1 - 1.37e-4*depth + 6.2e-9*depth*depth
	f2 := 8.17 * math.Pow(10, 8-1990/theta) / (1 + 0.0018*(s-35))

	// Pure water contribution.
	var a3 float64
	if t <= 20 {
		a3 = 4.937e-4 - 2.59e-5*t + 9.11e-7*t*t - 1.50e-8*t*t*t
	} else {
		a3 = 3.964e-4 - 1.146e-5*t + 1.45e-7*t*t - 6.5e-10*t*t*t
	}
	p3 := 1 - 3.83e-5*depth + 4.9e-10*depth*depth

	ff := f * f
	return a1*p1*f1*ff/(ff+f1*f1) + a2*p2*f2*ff/(ff+f2*f2) + a3*p3*ff
}

// AbsorptionMid returns the absorption coefficient in dB/km evaluated at
// mid-column depth, the single number the link budget uses.
func (e *Environment) AbsorptionMid(fHz float64) float64 {
	return e.Absorption(fHz, e.Depth/2)
}

// TransmissionLoss returns the one-way transmission loss in dB over range
// rMeters at frequency fHz:
//
//	TL = k·10·log10(r) + α(f)·r/1000
//
// with k the environment's spreading exponent and α the Francois–Garrison
// absorption. Ranges below 1 m return 0 (the reference distance).
func (e *Environment) TransmissionLoss(fHz, rMeters float64) float64 {
	if rMeters <= 1 {
		return 0
	}
	return e.SpreadingExponent*10*math.Log10(rMeters) +
		e.AbsorptionMid(fHz)*rMeters/1000
}
