package ocean

import (
	"math"
	"math/cmplx"
)

// BottomReflection returns the complex Rayleigh reflection coefficient of
// the bottom half-space at grazing angle theta (radians, measured from the
// horizontal). The bottom is modeled as a fluid with the environment's
// density and sound speed; beyond the critical angle the coefficient becomes
// complex with |R| = 1 (total internal reflection), below it energy
// penetrates the sediment. The environment's BottomLossDB is applied as an
// additional per-bounce magnitude loss to account for scattering and
// sediment inhomogeneity.
func (e *Environment) BottomReflection(theta float64) complex128 {
	c1 := e.MeanSoundSpeed()
	c2 := e.BottomSoundSpeed
	rho1 := WaterDensity
	rho2 := e.BottomDensity

	sin1 := math.Sin(theta)
	cos1 := math.Cos(theta)
	if sin1 < 1e-9 {
		// Grazing limit: any impedance contrast reflects perfectly with
		// phase reversal.
		return complex(-1, 0)
	}
	// Snell: cosθ2 = (c2/c1)·cosθ1; sinθ2 may be imaginary past critical.
	cos2 := c2 / c1 * cos1
	sin2sq := complex(1-cos2*cos2, 0)
	sin2 := cmplx.Sqrt(sin2sq) // principal branch: +imag for evanescent

	z1 := complex(rho1*c1, 0) / complex(sin1, 0)
	z2 := complex(rho2*c2, 0) / sin2
	r := (z2 - z1) / (z2 + z1)

	if e.BottomLossDB > 0 {
		r *= complex(math.Pow(10, -e.BottomLossDB/20), 0)
	}
	return r
}

// SurfaceReflection returns the complex reflection coefficient of the sea
// surface at grazing angle theta and frequency fHz. The flat surface is a
// pressure-release boundary (R = −1); roughness from surface waves reduces
// the coherent component by the Rayleigh roughness factor
// exp(−2(kσ·sinθ)²) with σ the RMS wave height.
func (e *Environment) SurfaceReflection(theta, fHz float64) complex128 {
	k := 2 * math.Pi * fHz / e.MeanSoundSpeed()
	g := k * e.WaveRMS * math.Sin(theta)
	loss := math.Exp(-2 * g * g)
	return complex(-loss, 0)
}

// CriticalAngle returns the bottom critical grazing angle in radians, below
// which bottom bounces are near-lossless. If the bottom is slower than the
// water there is no critical angle and 0 is returned.
func (e *Environment) CriticalAngle() float64 {
	c1 := e.MeanSoundSpeed()
	if e.BottomSoundSpeed <= c1 {
		return 0
	}
	return math.Acos(c1 / e.BottomSoundSpeed)
}
