package ocean

import "math"

// NoisePSD returns the ambient noise power spectral density in
// dB re 1 µPa²/Hz at frequency fHz, combining the four Wenz noise sources
// in the parameterization standard in underwater networking (turbulence,
// distant shipping, wind-driven surface agitation, thermal):
//
//	turbulence: 17 − 30·log10(f)
//	shipping:   40 + 20(s − 0.5) + 26·log10(f) − 60·log10(f + 0.03)
//	wind:       50 + 7.5·√w + 20·log10(f) − 40·log10(f + 0.4)
//	thermal:    −15 + 20·log10(f)
//
// with f in kHz, s the shipping factor in [0,1] and w the wind speed in m/s.
// Around the VAB carrier (18.5 kHz) wind noise dominates, which is why the
// ocean trials face a noticeably higher noise floor than the calm river.
func (e *Environment) NoisePSD(fHz float64) float64 {
	f := math.Max(fHz/1000, 1e-3) // kHz, clamped away from log singularities
	lf := math.Log10(f)
	nt := 17 - 30*lf
	ns := 40 + 20*(e.Shipping-0.5) + 26*lf - 60*math.Log10(f+0.03)
	nw := 50 + 7.5*math.Sqrt(e.WindSpeed) + 20*lf - 40*math.Log10(f+0.4)
	nth := -15 + 20*lf
	lin := math.Pow(10, nt/10) + math.Pow(10, ns/10) +
		math.Pow(10, nw/10) + math.Pow(10, nth/10)
	return 10 * math.Log10(lin)
}

// NoiseLevel returns the total ambient noise level in dB re 1 µPa within a
// band of width bwHz centered at fHz, integrating the (slowly varying) Wenz
// PSD with a 5-point rule across the band.
func (e *Environment) NoiseLevel(fHz, bwHz float64) float64 {
	if bwHz <= 0 {
		return e.NoisePSD(fHz)
	}
	lo := math.Max(fHz-bwHz/2, 1)
	hi := fHz + bwHz/2
	var lin float64
	const pts = 5
	for i := 0; i < pts; i++ {
		f := lo + (hi-lo)*(float64(i)+0.5)/pts
		lin += math.Pow(10, e.NoisePSD(f)/10) * (hi - lo) / pts
	}
	return 10 * math.Log10(lin)
}
