// Package ocean models the underwater acoustic environment the VAB system
// operates in: sound speed, frequency-dependent absorption, spreading loss,
// ambient noise, boundary reflection, and image-method multipath for
// shallow-water waveguides.
//
// The models are the standard ones used by the underwater acoustic
// networking community (Mackenzie sound speed, Thorp and Francois–Garrison
// absorption, Wenz ambient noise curves, Rayleigh boundary reflection), so
// link budgets computed here are directly comparable to the paper's field
// settings: a shallow river (Charles River trials) and a coastal ocean
// deployment (Atlantic trials).
//
// Conventions: depths in meters positive downward with the surface at z = 0,
// frequencies in Hz unless a name says kHz, sound levels in dB re 1 µPa (the
// underwater reference), and noise spectral densities in dB re 1 µPa²/Hz.
package ocean

import "fmt"

// Environment describes a body of water and its boundaries. The zero value
// is not useful; start from a preset or fill all fields.
type Environment struct {
	Name string

	// Water column.
	Depth       float64 // water depth in m
	Temperature float64 // °C
	Salinity    float64 // parts per thousand (ppt); ~0.5 fresh, ~35 open ocean
	PH          float64 // acidity, ~8 for seawater, ~7 fresh

	// Sea state.
	WindSpeed    float64 // m/s at 10 m height, drives wind noise + surface roughness
	Shipping     float64 // shipping activity factor in [0,1] for Wenz curves
	WaveRMS      float64 // RMS surface wave height in m (surface roughness)
	SurfaceSpeed float64 // RMS vertical surface motion in m/s (Doppler spread)

	// Bottom half-space (fluid model).
	BottomDensity    float64 // kg/m³
	BottomSoundSpeed float64 // m/s
	BottomLossDB     float64 // extra per-bounce loss in dB (scattering, porosity)

	// Propagation.
	SpreadingExponent float64 // k in TL = k·10·log10(r): 2 spherical, 1 cylindrical
}

// Validate reports whether the environment is physically sensible.
func (e *Environment) Validate() error {
	switch {
	case e.Depth <= 0:
		return fmt.Errorf("ocean: depth %.2f m must be positive", e.Depth)
	case e.Temperature < -2 || e.Temperature > 40:
		return fmt.Errorf("ocean: temperature %.1f °C outside [-2, 40]", e.Temperature)
	case e.Salinity < 0 || e.Salinity > 45:
		return fmt.Errorf("ocean: salinity %.1f ppt outside [0, 45]", e.Salinity)
	case e.WindSpeed < 0:
		return fmt.Errorf("ocean: wind speed %.1f m/s negative", e.WindSpeed)
	case e.Shipping < 0 || e.Shipping > 1:
		return fmt.Errorf("ocean: shipping factor %.2f outside [0,1]", e.Shipping)
	case e.BottomDensity < 1000:
		return fmt.Errorf("ocean: bottom density %.0f kg/m³ below water", e.BottomDensity)
	case e.BottomSoundSpeed <= 0:
		return fmt.Errorf("ocean: bottom sound speed %.0f m/s invalid", e.BottomSoundSpeed)
	case e.SpreadingExponent < 1 || e.SpreadingExponent > 2:
		return fmt.Errorf("ocean: spreading exponent %.2f outside [1,2]", e.SpreadingExponent)
	}
	return nil
}

// WaterDensity is the nominal density of water used for impedance
// calculations, in kg/m³. The fresh/salt difference (~2.5%) is below the
// fidelity of the rest of the model.
const WaterDensity = 1025.0

// CharlesRiver returns the river preset used for the paper's first
// deployment campaign: shallow fresh water, calm surface, soft mud bottom.
func CharlesRiver() *Environment {
	return &Environment{
		Name:             "charles-river",
		Depth:            4.0,
		Temperature:      15.0,
		Salinity:         0.5,
		PH:               7.2,
		WindSpeed:        2.0,
		Shipping:         0.2,
		WaveRMS:          0.005, // calm river: mm-scale ripple (λ ≈ 8 cm at 18.5 kHz)
		SurfaceSpeed:     0.02,
		BottomDensity:    1450,
		BottomSoundSpeed: 1480,
		BottomLossDB:     2.0,
		// Shallow channels trap energy between boundaries: practical
		// spreading between cylindrical and spherical.
		SpreadingExponent: 1.5,
	}
}

// AtlanticCoastal returns the ocean preset for the paper's ocean validation:
// deeper salt water, wind-driven surface, sandy bottom, more shipping.
func AtlanticCoastal() *Environment {
	return &Environment{
		Name:              "atlantic-coastal",
		Depth:             14.0,
		Temperature:       12.0,
		Salinity:          33.0,
		PH:                8.0,
		WindSpeed:         7.0,
		Shipping:          0.5,
		WaveRMS:           0.25,
		SurfaceSpeed:      0.3,
		BottomDensity:     1900,
		BottomSoundSpeed:  1650,
		BottomLossDB:      1.0,
		SpreadingExponent: 1.6,
	}
}

// TestTank returns an idealized anechoic test tank: a quiet single-path
// medium, useful for unit tests, calibration and debugging. A flat water
// surface is a perfect (−1) reflector and a hard flat bottom reflects
// totally below its critical angle, so a *literal* tank of still water is
// an echo chamber; the anechoic treatment is modeled as strong surface
// roughness and bottom absorption, leaving only the direct arrival.
func TestTank() *Environment {
	return &Environment{
		Name:              "test-tank",
		Depth:             100.0,
		Temperature:       20.0,
		Salinity:          0.5,
		PH:                7.0,
		WindSpeed:         0,
		Shipping:          0,
		WaveRMS:           0.5, // anechoic surface treatment
		SurfaceSpeed:      0,
		BottomDensity:     1200, // absorber-lined bottom
		BottomSoundSpeed:  1400,
		BottomLossDB:      30,
		SpreadingExponent: 2.0,
	}
}

// SoundSpeed returns the speed of sound in m/s at the given depth using the
// Mackenzie (1981) nine-term equation, valid for T in [-2, 30] °C, S in
// [25, 40] ppt and depth to 8000 m; it degrades gracefully outside (fresh
// water values land within ~0.3% of tabulated data).
func (e *Environment) SoundSpeed(depth float64) float64 {
	t := e.Temperature
	s := e.Salinity
	d := depth
	return 1448.96 + 4.591*t - 5.304e-2*t*t + 2.374e-4*t*t*t +
		1.340*(s-35) + 1.630e-2*d + 1.675e-7*d*d -
		1.025e-2*t*(s-35) - 7.139e-13*t*d*d*d
}

// MeanSoundSpeed returns the depth-averaged sound speed of the water column,
// which the iso-velocity image method uses.
func (e *Environment) MeanSoundSpeed() float64 {
	// The Mackenzie depth terms are near-linear over tens of meters; a
	// 3-point Simpson average is more than enough.
	c0 := e.SoundSpeed(0)
	cm := e.SoundSpeed(e.Depth / 2)
	c1 := e.SoundSpeed(e.Depth)
	return (c0 + 4*cm + c1) / 6
}
