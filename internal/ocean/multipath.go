package ocean

import (
	"math"
	"math/cmplx"
)

// Arrival is one eigenray of the shallow-water waveguide: a delayed, scaled
// copy of the transmitted signal.
type Arrival struct {
	Delay          float64    // propagation delay in s
	Gain           complex128 // complex amplitude relative to 1 m reference
	Length         float64    // path length in m
	Grazing        float64    // grazing angle at the boundaries, rad
	SurfaceBounces int
	BottomBounces  int
}

// Geometry places a source and receiver in the water column at a horizontal
// range.
type Geometry struct {
	SourceDepth   float64 // m, positive down
	ReceiverDepth float64 // m
	Range         float64 // horizontal separation in m, > 0
}

// MultipathConfig tunes the image-method eigenray enumeration.
type MultipathConfig struct {
	MaxOrder    int     // maximum image order (bounce families), >= 0
	MinRelAmpDB float64 // drop arrivals this many dB below the strongest (positive number)
	FrequencyHz float64 // carrier frequency for absorption and boundary models
}

// DefaultMultipathConfig returns sensible defaults: 6 image orders and a
// 30 dB amplitude floor.
func DefaultMultipathConfig(fHz float64) MultipathConfig {
	return MultipathConfig{MaxOrder: 6, MinRelAmpDB: 30, FrequencyHz: fHz}
}

// Multipath enumerates the eigenrays between source and receiver using the
// method of images for an iso-velocity waveguide bounded by the pressure-
// release surface and the fluid bottom. Arrivals are returned sorted by
// delay, strongest-path-normalized to the configured amplitude floor.
//
// Amplitude model per ray: spherical spreading 1/L, absorption α(f)·L,
// boundary reflection coefficients per bounce evaluated at the ray's
// grazing angle, and a carrier-phase rotation e^{-j2πf·L/c}.
func (e *Environment) Multipath(g Geometry, cfg MultipathConfig) []Arrival {
	return e.MultipathAppend(nil, g, cfg)
}

// MultipathAppend is Multipath writing into dst's backing storage
// (truncated to dst[:0] first), so a caller that rebuilds the same link
// geometry every round reuses one arrival slice instead of allocating:
// after the first call whose capacity covers the enumeration, subsequent
// calls are allocation-free. The returned slice must replace dst.
func (e *Environment) MultipathAppend(dst []Arrival, g Geometry, cfg MultipathConfig) []Arrival {
	if g.Range <= 0 {
		panic("ocean: Multipath requires positive range")
	}
	c := e.MeanSoundSpeed()
	alphaDBperM := e.AbsorptionMid(cfg.FrequencyHz) / 1000
	h := e.Depth
	zs, zr, r := g.SourceDepth, g.ReceiverDepth, g.Range

	arrivals := dst[:0]
	add := func(dz float64, surf, bot int) {
		length := math.Hypot(r, dz)
		grazing := math.Atan2(math.Abs(dz), r)
		// Each eigenray spreads spherically (amplitude 1/L): the
		// environment's practical spreading exponent (k < 2) is the
		// *aggregate* waveguide law that emerges from summing the trapped
		// rays, so applying it per ray would double-count the trapping.
		amp := 1 / length
		amp *= math.Pow(10, -alphaDBperM*length/20)
		gain := complex(amp, 0)
		for i := 0; i < surf; i++ {
			gain *= e.SurfaceReflection(grazing, cfg.FrequencyHz)
		}
		for i := 0; i < bot; i++ {
			gain *= e.BottomReflection(grazing)
		}
		// Carrier phase accumulated along the path.
		gain *= cmplx.Rect(1, -2*math.Pi*cfg.FrequencyHz*length/c)
		arrivals = append(arrivals, Arrival{
			Delay:          length / c,
			Gain:           gain,
			Length:         length,
			Grazing:        grazing,
			SurfaceBounces: surf,
			BottomBounces:  bot,
		})
	}

	// Image families (see package docs): images of the source at
	// z = 2nh + zs with (|n|, |n|) surface/bottom bounces, and
	// z = 2nh − zs with (n−1 surface, n bottom) for n ≥ 1 or
	// (|n|+1 surface, |n| bottom) for n ≤ 0.
	for n := -cfg.MaxOrder; n <= cfg.MaxOrder; n++ {
		an := n
		if an < 0 {
			an = -an
		}
		// Family A: z_i = 2nh + zs.
		add(2*float64(n)*h+zs-zr, an, an)
		// Family B: z_i = 2nh − zs.
		if n >= 1 {
			add(2*float64(n)*h-zs-zr, n-1, n)
		} else {
			add(2*float64(n)*h-zs-zr, an+1, an)
		}
	}

	// Drop arrivals below the floor relative to the strongest.
	var maxAmp float64
	for _, a := range arrivals {
		if m := cmplx.Abs(a.Gain); m > maxAmp {
			maxAmp = m
		}
	}
	floor := maxAmp * math.Pow(10, -cfg.MinRelAmpDB/20)
	kept := arrivals[:0]
	for _, a := range arrivals {
		if cmplx.Abs(a.Gain) >= floor {
			kept = append(kept, a)
		}
	}
	// Insertion sort by delay: the enumeration yields a few dozen arrivals
	// at most, it allocates nothing (sort.Slice boxes its arguments), and —
	// being stable — it gives ties a deterministic order independent of the
	// sort library's internals.
	for i := 1; i < len(kept); i++ {
		a := kept[i]
		j := i - 1
		for j >= 0 && kept[j].Delay > a.Delay {
			kept[j+1] = kept[j]
			j--
		}
		kept[j+1] = a
	}
	return kept
}

// DelaySpread returns the RMS delay spread in seconds of a set of arrivals,
// power-weighted about the mean delay. It determines how much inter-symbol
// interference the PHY faces at a given bit rate.
func DelaySpread(arrivals []Arrival) float64 {
	var p, mean float64
	for _, a := range arrivals {
		w := cmplx.Abs(a.Gain)
		w *= w
		p += w
		mean += w * a.Delay
	}
	if p == 0 {
		return 0
	}
	mean /= p
	var v float64
	for _, a := range arrivals {
		w := cmplx.Abs(a.Gain)
		w *= w
		d := a.Delay - mean
		v += w * d * d
	}
	return math.Sqrt(v / p)
}

// RicianK returns the Rician K-factor (dB) implied by a set of arrivals:
// the power ratio of the strongest (treated as specular) component to the
// sum of all others. Infinite when only one arrival exists.
func RicianK(arrivals []Arrival) float64 {
	if len(arrivals) == 0 {
		return math.Inf(1)
	}
	var best, rest float64
	for _, a := range arrivals {
		w := cmplx.Abs(a.Gain)
		w *= w
		if w > best {
			rest += best
			best = w
		} else {
			rest += w
		}
	}
	if rest == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(best/rest)
}

// CoherentGain returns the magnitude of the phasor sum of all arrivals —
// the flat-fading channel gain a narrowband signal experiences.
func CoherentGain(arrivals []Arrival) float64 {
	var s complex128
	for _, a := range arrivals {
		s += a.Gain
	}
	return cmplx.Abs(s)
}

// TotalPower returns the incoherent power sum of all arrivals, the upper
// bound a diversity receiver can collect.
func TotalPower(arrivals []Arrival) float64 {
	var p float64
	for _, a := range arrivals {
		m := cmplx.Abs(a.Gain)
		p += m * m
	}
	return p
}
