// Package vanatta implements the retrodirective acoustic array at the core
// of VAB: piezoelectric transducer elements connected in mirrored pairs so
// that energy received by one element is re-radiated by its partner with a
// conjugated phase profile, steering the backscattered beam back toward the
// interrogator without any phase estimation or power.
//
// The package computes the complex scattering response of such arrays for
// arbitrary incident and observation directions, alongside the two baselines
// the paper compares against: a single-element scatterer (prior underwater
// backscatter) and a specular array (same aperture, elements terminated
// individually). The monostatic response of the Van Atta geometry is flat
// across incidence angle with field gain N (power gain N²), while the
// specular array only achieves N² at broadside — the physics behind the
// paper's "across orientations" claim.
package vanatta

import (
	"fmt"
	"math"
	"math/cmplx"

	"vab/internal/piezo"
)

// Vec3 is a Cartesian vector in meters (or unitless direction).
type Vec3 struct{ X, Y, Z float64 }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v − w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{s * v.X, s * v.Y, s * v.Z} }

// Dot returns the inner product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns |v|.
func (v Vec3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Unit returns v normalized to unit length; the zero vector is returned
// unchanged.
func (v Vec3) Unit() Vec3 {
	n := v.Norm()
	if n == 0 {
		return v
	}
	return v.Scale(1 / n)
}

// DirectionXZ returns the unit vector in the x-z plane at angle theta from
// the array normal (+z), the convention used by the orientation sweeps:
// theta = 0 is broadside, ±π/2 end-fire.
func DirectionXZ(theta float64) Vec3 {
	return Vec3{X: math.Sin(theta), Z: math.Cos(theta)}
}

// Pair connects two element indices through a transmission line.
type Pair struct {
	A, B int
	// ExtraDelay is a per-pair line-length mismatch in seconds relative to
	// the nominal interconnect. Ideal Van Atta arrays need equal line
	// lengths; this field exists to study manufacturing tolerance.
	ExtraDelay float64
}

// Array is a Van Atta backscatter array: transducer elements at fixed
// positions, wired as mirrored pairs.
type Array struct {
	Positions []Vec3
	Pairs     []Pair
	// SelfPaired lists elements (odd center element) that reflect in place.
	SelfPaired []int

	Trans *piezo.Transducer // element model (shared)

	LineLossDB   float64 // one-way interconnect loss in dB
	LineDelaySec float64 // nominal interconnect electrical delay in s
	SoundSpeed   float64 // medium sound speed, m/s

	// failed marks elements out of service (nil = all healthy). A pair
	// with a failed member contributes nothing to the scattered field:
	// whether the transducer flooded (dead) or its modulation switch
	// jammed (stuck), the pair's energy no longer reaches the modulated
	// retrodirective sum, so both failure modes cost the same conversion
	// gain — the dominant effect field campaigns observe.
	failed []bool
}

// SetElementFault marks element i failed (true) or healthy (false).
// Out-of-range indices are ignored. Faults degrade Scatter and
// ScatterSpecular by removing the affected pair (or self-paired element)
// from the coherent sum.
func (a *Array) SetElementFault(i int, fault bool) {
	if i < 0 || i >= len(a.Positions) {
		return
	}
	if a.failed == nil {
		if !fault {
			return
		}
		a.failed = make([]bool, len(a.Positions))
	}
	a.failed[i] = fault
}

// ClearFaults restores every element to service.
func (a *Array) ClearFaults() { a.failed = nil }

// Clone returns a deep copy of the array: geometry, pairing and fault
// state are private to the copy, so fault injection on one clone can
// never be observed by — or race with — another. Only the immutable
// transducer model is shared.
func (a *Array) Clone() *Array {
	b := *a
	b.Positions = append([]Vec3(nil), a.Positions...)
	b.Pairs = append([]Pair(nil), a.Pairs...)
	b.SelfPaired = append([]int(nil), a.SelfPaired...)
	if a.failed != nil {
		b.failed = append([]bool(nil), a.failed...)
	}
	return &b
}

// FailedElements returns the number of elements currently out of service.
func (a *Array) FailedElements() int {
	n := 0
	for _, f := range a.failed {
		if f {
			n++
		}
	}
	return n
}

// elementOK reports whether element i is in service.
func (a *Array) elementOK(i int) bool {
	return a.failed == nil || !a.failed[i]
}

// NewUniformLinear builds an n-element linear Van Atta array along x,
// centered at the origin, with the given element spacing in meters.
// Elements are paired symmetrically about the center ((0,n−1), (1,n−2), …);
// with odd n the central element is self-paired. Spacing is typically λ/2.
func NewUniformLinear(n int, spacing float64, tr *piezo.Transducer, soundSpeed float64) (*Array, error) {
	if n < 1 {
		return nil, fmt.Errorf("vanatta: need at least 1 element, got %d", n)
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("vanatta: spacing %.3g m must be positive", spacing)
	}
	if tr == nil {
		return nil, fmt.Errorf("vanatta: transducer model required")
	}
	if soundSpeed <= 0 {
		return nil, fmt.Errorf("vanatta: sound speed %.3g must be positive", soundSpeed)
	}
	a := &Array{
		Trans:      tr,
		SoundSpeed: soundSpeed,
		// A meter of coax plus a switch: fractions of a dB, small nominal
		// electrical delay.
		LineLossDB:   0.5,
		LineDelaySec: 5e-9,
	}
	mid := float64(n-1) / 2
	for i := 0; i < n; i++ {
		a.Positions = append(a.Positions, Vec3{X: (float64(i) - mid) * spacing})
	}
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		a.Pairs = append(a.Pairs, Pair{A: i, B: j})
	}
	if n%2 == 1 {
		a.SelfPaired = append(a.SelfPaired, n/2)
	}
	return a, nil
}

// NewStaggeredPlanar builds the paper-style two-row staggered configuration:
// rows*cols elements on a planar lattice in the x-y plane with pairs mirrored
// through the array center. The stagger offsets alternate rows by half a
// column spacing, improving response uniformity across azimuth.
func NewStaggeredPlanar(rows, cols int, spacing float64, tr *piezo.Transducer, soundSpeed float64) (*Array, error) {
	if rows < 1 || cols < 1 {
		return nil, fmt.Errorf("vanatta: rows=%d cols=%d must be positive", rows, cols)
	}
	if rows*cols%2 != 0 {
		return nil, fmt.Errorf("vanatta: staggered array needs an even element count, got %d", rows*cols)
	}
	if spacing <= 0 {
		return nil, fmt.Errorf("vanatta: spacing %.3g m must be positive", spacing)
	}
	if tr == nil {
		return nil, fmt.Errorf("vanatta: transducer model required")
	}
	a := &Array{
		Trans:        tr,
		SoundSpeed:   soundSpeed,
		LineLossDB:   0.5,
		LineDelaySec: 5e-9,
	}
	cmid := float64(cols-1) / 2
	rmid := float64(rows-1) / 2
	for r := 0; r < rows; r++ {
		off := 0.0
		if r%2 == 1 {
			off = spacing / 2
		}
		for c := 0; c < cols; c++ {
			a.Positions = append(a.Positions, Vec3{
				X: (float64(c)-cmid)*spacing + off,
				Y: (float64(r) - rmid) * spacing,
			})
		}
	}
	// Center the staggered lattice so mirrored pairing is exact: pair k
	// with n-1-k after sorting by (y, x); for the centro-symmetric lattice
	// built above, index i mirrors n-1-i directly.
	n := rows * cols
	// Recenter X so the centroid is at the origin (stagger shifts it).
	var cx float64
	for _, p := range a.Positions {
		cx += p.X
	}
	cx /= float64(n)
	for i := range a.Positions {
		a.Positions[i].X -= cx
	}
	for i, j := 0, n-1; i < j; i, j = i+1, j-1 {
		a.Pairs = append(a.Pairs, Pair{A: i, B: j})
	}
	return a, nil
}

// N returns the number of elements.
func (a *Array) N() int { return len(a.Positions) }

// Validate checks structural consistency: every element belongs to exactly
// one pair (or is self-paired), and mirrored pairs are geometrically
// centro-symmetric within tolerance.
func (a *Array) Validate() error {
	used := make([]int, len(a.Positions))
	for _, p := range a.Pairs {
		if p.A < 0 || p.A >= len(a.Positions) || p.B < 0 || p.B >= len(a.Positions) {
			return fmt.Errorf("vanatta: pair (%d,%d) out of range", p.A, p.B)
		}
		if p.A == p.B {
			return fmt.Errorf("vanatta: pair (%d,%d) connects an element to itself; use SelfPaired", p.A, p.B)
		}
		used[p.A]++
		used[p.B]++
	}
	for _, s := range a.SelfPaired {
		if s < 0 || s >= len(a.Positions) {
			return fmt.Errorf("vanatta: self-paired index %d out of range", s)
		}
		used[s]++
	}
	for i, u := range used {
		if u != 1 {
			return fmt.Errorf("vanatta: element %d used %d times, want exactly 1", i, u)
		}
	}
	return nil
}

// IsCentroSymmetric reports whether every pair satisfies r_B ≈ −r_A within
// tol meters, the geometric condition for perfect retrodirectivity.
func (a *Array) IsCentroSymmetric(tol float64) bool {
	for _, p := range a.Pairs {
		d := a.Positions[p.A].Add(a.Positions[p.B])
		if d.Norm() > tol {
			return false
		}
	}
	for _, s := range a.SelfPaired {
		if a.Positions[s].Norm() > tol {
			return false
		}
	}
	return true
}

// lineGain returns the complex one-way interconnect gain at fHz for a pair.
func (a *Array) lineGain(fHz float64, p Pair) complex128 {
	amp := math.Pow(10, -a.LineLossDB/20)
	delay := a.LineDelaySec + p.ExtraDelay
	return cmplx.Rect(amp, -2*math.Pi*fHz*delay)
}

// phase returns the spatial phase k·ŝ·r of an element for a wave arriving
// from (or departing toward) unit direction s.
func (a *Array) phase(fHz float64, s Vec3, i int) float64 {
	k := 2 * math.Pi * fHz / a.SoundSpeed
	return k * s.Dot(a.Positions[i])
}

// Scatter returns the complex field scattering response of the Van Atta
// array at frequency fHz for a wave incident from unit direction in and
// observed toward unit direction out (both pointing from the array toward
// the remote terminals). The response is normalized so that a single ideal
// isotropic element at the origin scores 1; it includes the element
// transduction roll-off (applied twice: receive and re-radiate) and the
// interconnect loss and phase.
func (a *Array) Scatter(fHz float64, in, out Vec3) complex128 {
	in = in.Unit()
	out = out.Unit()
	resp := a.Trans.Response(fHz)
	elem := resp * resp
	var sum complex128
	for _, p := range a.Pairs {
		if !a.elementOK(p.A) || !a.elementOK(p.B) {
			continue // a dead or stuck member breaks the whole pair's path
		}
		lg := a.lineGain(fHz, p)
		phiInA := a.phase(fHz, in, p.A)
		phiInB := a.phase(fHz, in, p.B)
		phiOutA := a.phase(fHz, out, p.A)
		phiOutB := a.phase(fHz, out, p.B)
		// Energy flows both ways through the interconnect: A→B and B→A.
		sum += lg * (cmplx.Rect(1, phiInA+phiOutB) + cmplx.Rect(1, phiInB+phiOutA))
	}
	for _, s := range a.SelfPaired {
		if !a.elementOK(s) {
			continue
		}
		sum += cmplx.Rect(1, a.phase(fHz, in, s)+a.phase(fHz, out, s))
	}
	return elem * sum
}

// ScatterSpecular returns the response of the same aperture with every
// element terminated individually (no interconnects): the specular-array
// baseline. Monostatically it forms a beam only near broadside.
func (a *Array) ScatterSpecular(fHz float64, in, out Vec3) complex128 {
	in = in.Unit()
	out = out.Unit()
	resp := a.Trans.Response(fHz)
	elem := resp * resp
	var sum complex128
	for i := range a.Positions {
		if !a.elementOK(i) {
			continue
		}
		sum += cmplx.Rect(1, a.phase(fHz, in, i)+a.phase(fHz, out, i))
	}
	return elem * sum
}

// MonostaticGainDB returns the power gain in dB of the retrodirective
// response back toward a source at angle theta (x-z plane, 0 = broadside),
// relative to a single ideal element.
func (a *Array) MonostaticGainDB(fHz, theta float64) float64 {
	d := DirectionXZ(theta)
	g := cmplx.Abs(a.Scatter(fHz, d, d))
	if g <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(g)
}

// MonostaticSpecularGainDB is the baseline counterpart of MonostaticGainDB.
func (a *Array) MonostaticSpecularGainDB(fHz, theta float64) float64 {
	d := DirectionXZ(theta)
	g := cmplx.Abs(a.ScatterSpecular(fHz, d, d))
	if g <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(g)
}

// OrientationSweep returns the monostatic gain in dB at each angle for both
// the Van Atta wiring and the specular baseline. Angles are radians in the
// x-z plane.
func (a *Array) OrientationSweep(fHz float64, thetas []float64) (vanAtta, specular []float64) {
	vanAtta = make([]float64, len(thetas))
	specular = make([]float64, len(thetas))
	for i, th := range thetas {
		vanAtta[i] = a.MonostaticGainDB(fHz, th)
		specular[i] = a.MonostaticSpecularGainDB(fHz, th)
	}
	return vanAtta, specular
}

// MinMonostaticGainDB returns the worst-case monostatic gain across the
// given angular sector (radians, symmetric about broadside), the figure of
// merit for orientation robustness.
func (a *Array) MinMonostaticGainDB(fHz, sector float64, steps int) float64 {
	min := math.Inf(1)
	for i := 0; i <= steps; i++ {
		th := -sector/2 + sector*float64(i)/float64(steps)
		if g := a.MonostaticGainDB(fHz, th); g < min {
			min = g
		}
	}
	return min
}

// Direction3D returns the unit direction at azimuth az (rotation in the
// x-z plane) and elevation el (tilt toward y), both in radians: the node
// rotated arbitrarily in two axes as a drifting mooring would be.
func Direction3D(az, el float64) Vec3 {
	return Vec3{
		X: math.Sin(az) * math.Cos(el),
		Y: math.Sin(el),
		Z: math.Cos(az) * math.Cos(el),
	}
}

// MinMonostaticGainDB2D returns the worst-case monostatic gain over a full
// two-axis orientation sector: azimuth and elevation each swept across
// ±sector/2 in the given number of steps. A linear Van Atta array is only
// retrodirective in the plane containing its axis; the staggered planar
// configuration extends the property to both axes — this is the figure of
// merit that comparison turns on.
func (a *Array) MinMonostaticGainDB2D(fHz, sector float64, steps int) float64 {
	min := math.Inf(1)
	for i := 0; i <= steps; i++ {
		az := -sector/2 + sector*float64(i)/float64(steps)
		for j := 0; j <= steps; j++ {
			el := -sector/2 + sector*float64(j)/float64(steps)
			d := Direction3D(az, el)
			g := cmplx.Abs(a.Scatter(fHz, d, d))
			db := math.Inf(-1)
			if g > 0 {
				db = 20 * math.Log10(g)
			}
			if db < min {
				min = db
			}
		}
	}
	return min
}
