package vanatta

import (
	"math/cmplx"
	"testing"
)

// Killing elements must bleed retrodirective gain monotonically, and
// ClearFaults must restore the healthy response bit for bit.
func TestElementFaultsDegradeGain(t *testing.T) {
	a := newLinear(t, 8)
	dir := DirectionXZ(0.3)
	healthy := a.Scatter(fc, dir, dir)

	prev := cmplx.Abs(healthy)
	for i := 0; i < a.N(); i++ {
		a.SetElementFault(i, true)
		got := cmplx.Abs(a.Scatter(fc, dir, dir))
		if got > prev+1e-12 {
			t.Fatalf("gain rose from %.6g to %.6g after killing element %d", prev, got, i)
		}
		prev = got
	}
	if prev != 0 {
		t.Fatalf("all-dead array still scatters %.6g", prev)
	}
	if a.FailedElements() != a.N() {
		t.Fatalf("FailedElements = %d, want %d", a.FailedElements(), a.N())
	}

	a.ClearFaults()
	if got := a.Scatter(fc, dir, dir); got != healthy {
		t.Fatalf("ClearFaults: scatter %v, want healthy %v", got, healthy)
	}
	if a.FailedElements() != 0 {
		t.Fatal("FailedElements nonzero after ClearFaults")
	}
}

// One dead element silences its whole pair: the partner's energy has
// nowhere to go. Killing the partner too must change nothing further.
func TestElementFaultKillsPair(t *testing.T) {
	a := newLinear(t, 8)
	dir := DirectionXZ(0.2)

	a.SetElementFault(0, true)
	one := cmplx.Abs(a.Scatter(fc, dir, dir))
	// Element 0 pairs with the outermost mirror element (7 in an 8-array).
	a.SetElementFault(7, true)
	both := cmplx.Abs(a.Scatter(fc, dir, dir))
	if one != both {
		t.Fatalf("killing the dead element's partner changed gain: %.6g → %.6g", one, both)
	}
}

func TestSpecularFaultsDegrade(t *testing.T) {
	a := newLinear(t, 8)
	dir := DirectionXZ(0)
	healthy := cmplx.Abs(a.ScatterSpecular(fc, dir, dir))
	a.SetElementFault(2, true)
	a.SetElementFault(5, true)
	faulted := cmplx.Abs(a.ScatterSpecular(fc, dir, dir))
	if faulted >= healthy {
		t.Fatalf("specular gain %.6g did not degrade from %.6g", faulted, healthy)
	}
}

func TestSetElementFaultBounds(t *testing.T) {
	a := newLinear(t, 4)
	a.SetElementFault(-1, true)
	a.SetElementFault(99, true)
	if a.FailedElements() != 0 {
		t.Fatal("out-of-range faults were recorded")
	}
	a.SetElementFault(1, true)
	a.SetElementFault(1, true) // idempotent
	if a.FailedElements() != 1 {
		t.Fatalf("FailedElements = %d, want 1", a.FailedElements())
	}
	a.SetElementFault(1, false)
	if a.FailedElements() != 0 {
		t.Fatal("un-failing did not clear")
	}
}
