package vanatta_test

import (
	"fmt"
	"math"

	"vab/internal/piezo"
	"vab/internal/vanatta"
)

// Example demonstrates the defining property of a Van Atta array: its
// monostatic backscatter gain is flat across incidence angle, while a
// conventional (specular) array of the same size collapses off broadside.
func Example() {
	const c, fc = 1480.0, 18500.0
	arr, err := vanatta.NewUniformLinear(16, c/fc/2, piezo.MustDefault(), c)
	if err != nil {
		panic(err)
	}
	arr.LineLossDB = 0
	arr.LineDelaySec = 0

	for _, deg := range []float64{0, 40} {
		th := deg * math.Pi / 180
		fmt.Printf("%2.0f°: van atta %.1f dB, specular %.1f dB\n",
			deg, arr.MonostaticGainDB(fc, th), arr.MonostaticSpecularGainDB(fc, th))
	}
	// Output:
	// 0°: van atta 24.1 dB, specular 24.1 dB
	// 40°: van atta 24.1 dB, specular -1.3 dB
}
