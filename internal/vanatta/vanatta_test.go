package vanatta

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"

	"vab/internal/piezo"
)

const (
	cWater = 1480.0
	fc     = 18500.0
)

func newLinear(t *testing.T, n int) *Array {
	t.Helper()
	lambda := cWater / fc
	a, err := NewUniformLinear(n, lambda/2, piezo.MustDefault(), cWater)
	if err != nil {
		t.Fatal(err)
	}
	// Zero out interconnect imperfections for the geometry tests; dedicated
	// tests re-enable them.
	a.LineLossDB = 0
	a.LineDelaySec = 0
	return a
}

func TestVec3Basics(t *testing.T) {
	v := Vec3{3, 4, 0}
	if v.Norm() != 5 {
		t.Error("Norm")
	}
	u := v.Unit()
	if math.Abs(u.Norm()-1) > 1e-12 {
		t.Error("Unit")
	}
	if (Vec3{}).Unit() != (Vec3{}) {
		t.Error("zero Unit should stay zero")
	}
	if v.Add(Vec3{1, 1, 1}).Sub(Vec3{1, 1, 1}) != v {
		t.Error("Add/Sub")
	}
	if v.Dot(Vec3{1, 0, 0}) != 3 {
		t.Error("Dot")
	}
}

func TestDirectionXZ(t *testing.T) {
	d := DirectionXZ(0)
	if math.Abs(d.Z-1) > 1e-12 || math.Abs(d.X) > 1e-12 {
		t.Errorf("broadside direction = %+v", d)
	}
	d = DirectionXZ(math.Pi / 2)
	if math.Abs(d.X-1) > 1e-12 || math.Abs(d.Z) > 1e-9 {
		t.Errorf("end-fire direction = %+v", d)
	}
}

func TestNewUniformLinearStructure(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 16} {
		a := newLinear(t, n)
		if a.N() != n {
			t.Fatalf("n=%d: N=%d", n, a.N())
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !a.IsCentroSymmetric(1e-12) {
			t.Errorf("n=%d: not centro-symmetric", n)
		}
		wantPairs := n / 2
		if len(a.Pairs) != wantPairs {
			t.Errorf("n=%d: %d pairs, want %d", n, len(a.Pairs), wantPairs)
		}
		if n%2 == 1 && len(a.SelfPaired) != 1 {
			t.Errorf("n=%d: odd array needs a self-paired center", n)
		}
	}
}

func TestNewUniformLinearErrors(t *testing.T) {
	tr := piezo.MustDefault()
	if _, err := NewUniformLinear(0, 0.04, tr, cWater); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := NewUniformLinear(4, 0, tr, cWater); err == nil {
		t.Error("zero spacing accepted")
	}
	if _, err := NewUniformLinear(4, 0.04, nil, cWater); err == nil {
		t.Error("nil transducer accepted")
	}
	if _, err := NewUniformLinear(4, 0.04, tr, 0); err == nil {
		t.Error("zero sound speed accepted")
	}
}

func TestValidateCatchesBadWiring(t *testing.T) {
	a := newLinear(t, 4)
	a.Pairs[0].A = 99
	if a.Validate() == nil {
		t.Error("out-of-range pair accepted")
	}
	b := newLinear(t, 4)
	b.Pairs[0] = Pair{A: 1, B: 1}
	if b.Validate() == nil {
		t.Error("self-loop pair accepted")
	}
	c := newLinear(t, 4)
	c.Pairs[1] = c.Pairs[0] // element 0 used twice, element 1 unused
	if c.Validate() == nil {
		t.Error("double-used element accepted")
	}
}

func TestRetrodirectiveFlatAcrossAngle(t *testing.T) {
	// The defining property: monostatic Van Atta gain is angle-independent
	// (ideal elements, equal lines), while the specular response collapses
	// off broadside.
	a := newLinear(t, 8)
	g0 := a.MonostaticGainDB(fc, 0)
	for _, deg := range []float64{10, 25, 45, 60, 80} {
		th := deg * math.Pi / 180
		g := a.MonostaticGainDB(fc, th)
		if math.Abs(g-g0) > 0.1 {
			t.Errorf("van atta gain at %v° = %v dB, broadside %v dB (should be flat)", deg, g, g0)
		}
	}
	// Specular baseline: equal at broadside, far below at 45°.
	s0 := a.MonostaticSpecularGainDB(fc, 0)
	if math.Abs(s0-g0) > 1e-6 {
		t.Errorf("at broadside specular %v dB should equal van atta %v dB", s0, g0)
	}
	s45 := a.MonostaticSpecularGainDB(fc, math.Pi/4)
	if s45 > g0-10 {
		t.Errorf("specular at 45° = %v dB, want ≥10 dB below %v dB", s45, g0)
	}
}

func TestGainScalesAsNSquared(t *testing.T) {
	// Field gain N ⇒ power gain N² ⇒ +6 dB per doubling.
	prev := math.Inf(-1)
	for _, n := range []int{2, 4, 8, 16} {
		a := newLinear(t, n)
		g := a.MonostaticGainDB(fc, 0.3) // off-broadside on purpose
		want := 20 * math.Log10(float64(n))
		if math.Abs(g-want) > 0.2 {
			t.Errorf("n=%d: gain %v dB, want %v dB", n, g, want)
		}
		if g <= prev {
			t.Errorf("gain should grow with N")
		}
		prev = g
	}
}

func TestScatterReciprocityProperty(t *testing.T) {
	// Acoustic reciprocity: swapping incident and observed directions must
	// leave the bistatic response unchanged.
	a := newLinear(t, 6)
	f := func(t1, t2 float64) bool {
		th1 := math.Mod(t1, math.Pi/2)
		th2 := math.Mod(t2, math.Pi/2)
		d1, d2 := DirectionXZ(th1), DirectionXZ(th2)
		fwd := a.Scatter(fc, d1, d2)
		rev := a.Scatter(fc, d2, d1)
		return cmplx.Abs(fwd-rev) < 1e-9*(1+cmplx.Abs(fwd))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestScatterBistaticPeakAtRetroDirection(t *testing.T) {
	// With illumination from θ, the re-radiated beam should peak back at θ
	// (retro) rather than at the specular direction −θ.
	a := newLinear(t, 8)
	th := 0.5
	in := DirectionXZ(th)
	retro := cmplx.Abs(a.Scatter(fc, in, DirectionXZ(th)))
	spec := cmplx.Abs(a.Scatter(fc, in, DirectionXZ(-th)))
	if retro < 2*spec {
		t.Errorf("retro response %v should dominate specular direction %v", retro, spec)
	}
	// And the converse for the specular array.
	sRetro := cmplx.Abs(a.ScatterSpecular(fc, in, DirectionXZ(th)))
	sSpec := cmplx.Abs(a.ScatterSpecular(fc, in, DirectionXZ(-th)))
	if sSpec < 2*sRetro {
		t.Errorf("specular array should beam to −θ: retro %v, spec %v", sRetro, sSpec)
	}
}

func TestLineLossReducesGain(t *testing.T) {
	a := newLinear(t, 8)
	ideal := a.MonostaticGainDB(fc, 0.2)
	a.LineLossDB = 3
	lossy := a.MonostaticGainDB(fc, 0.2)
	// Every scattered path traverses the interconnect exactly once, so a
	// 3 dB line loss costs exactly 3 dB of monostatic gain.
	if math.Abs((ideal-lossy)-3) > 0.1 {
		t.Errorf("3 dB line loss changed gain by %v dB, want 3", ideal-lossy)
	}
}

func TestLineMismatchDegradesRetrodirectivity(t *testing.T) {
	// Unequal line delays corrupt the phase conjugation. A half-period
	// mismatch on one pair should visibly dent the worst-case gain.
	a := newLinear(t, 8)
	flat := a.MinMonostaticGainDB(fc, math.Pi*0.9, 90)
	a.Pairs[0].ExtraDelay = 1 / (2 * fc) // λ/2 electrical mismatch
	dented := a.MinMonostaticGainDB(fc, math.Pi*0.9, 90)
	if dented >= flat-0.5 {
		t.Errorf("mismatch should cost gain: flat %v dB, mismatched %v dB", flat, dented)
	}
}

func TestElementRolloffAppliesTwice(t *testing.T) {
	a := newLinear(t, 4)
	d := DirectionXZ(0.1)
	onRes := cmplx.Abs(a.Scatter(fc, d, d))
	off := fc * 1.05
	offRes := cmplx.Abs(a.Scatter(off, d, d))
	resp := piezo.MustDefault()
	h := cmplx.Abs(resp.Response(off))
	// scatter ∝ |H|², geometry unchanged (small spacing change effect
	// negligible monostatically for a Van Atta — it stays coherent).
	wantRatio := h * h
	gotRatio := offRes / onRes
	if math.Abs(gotRatio-wantRatio) > 0.05*wantRatio {
		t.Errorf("off-resonance ratio %v, want %v", gotRatio, wantRatio)
	}
}

func TestStaggeredPlanarStructure(t *testing.T) {
	a, err := NewStaggeredPlanar(2, 4, 0.04, piezo.MustDefault(), cWater)
	if err != nil {
		t.Fatal(err)
	}
	if a.N() != 8 {
		t.Fatalf("N = %d", a.N())
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.IsCentroSymmetric(1e-9) {
		t.Error("staggered lattice should be centro-symmetric after recentering")
	}
	a.LineLossDB = 0
	a.LineDelaySec = 0
	// Retrodirective flatness holds in the x-z plane too.
	g0 := a.MonostaticGainDB(fc, 0)
	g50 := a.MonostaticGainDB(fc, 50*math.Pi/180)
	if math.Abs(g0-g50) > 0.1 {
		t.Errorf("staggered planar gain not flat: %v vs %v dB", g0, g50)
	}
	if math.Abs(g0-20*math.Log10(8)) > 0.2 {
		t.Errorf("8-element gain %v dB, want ~18.06", g0)
	}
}

func TestStaggeredPlanarErrors(t *testing.T) {
	tr := piezo.MustDefault()
	if _, err := NewStaggeredPlanar(0, 4, 0.04, tr, cWater); err == nil {
		t.Error("rows=0 accepted")
	}
	if _, err := NewStaggeredPlanar(1, 3, 0.04, tr, cWater); err == nil {
		t.Error("odd element count accepted")
	}
	if _, err := NewStaggeredPlanar(2, 4, -1, tr, cWater); err == nil {
		t.Error("negative spacing accepted")
	}
	if _, err := NewStaggeredPlanar(2, 4, 0.04, nil, cWater); err == nil {
		t.Error("nil transducer accepted")
	}
}

func TestOrientationSweepShapes(t *testing.T) {
	a := newLinear(t, 8)
	thetas := []float64{-1, -0.5, 0, 0.5, 1}
	va, sp := a.OrientationSweep(fc, thetas)
	if len(va) != len(thetas) || len(sp) != len(thetas) {
		t.Fatal("sweep lengths wrong")
	}
	// Van Atta variance across angle tiny; specular variance large.
	var vaSpread, spSpread float64
	for i := range va {
		vaSpread = math.Max(vaSpread, math.Abs(va[i]-va[0]))
		spSpread = math.Max(spSpread, math.Abs(sp[i]-sp[0]))
	}
	if vaSpread > 0.5 {
		t.Errorf("van atta spread %v dB", vaSpread)
	}
	if spSpread < 10 {
		t.Errorf("specular spread only %v dB", spSpread)
	}
}

func TestMinMonostaticGain(t *testing.T) {
	a := newLinear(t, 8)
	min := a.MinMonostaticGainDB(fc, math.Pi/2, 45)
	want := 20 * math.Log10(8)
	if math.Abs(min-want) > 0.2 {
		t.Errorf("worst-case gain %v dB, want %v", min, want)
	}
}

func TestSingleElementIsUnitScatterer(t *testing.T) {
	a := newLinear(t, 1)
	d := DirectionXZ(0.7)
	if g := cmplx.Abs(a.Scatter(fc, d, d)); math.Abs(g-1) > 0.01 {
		t.Errorf("single element |scatter| = %v, want 1", g)
	}
}

func TestPlanarRetrodirectiveInTwoAxes(t *testing.T) {
	// The planar staggered array keeps its monostatic gain flat across a
	// two-axis orientation sector — the property a drifting mooring needs.
	lambda := cWater / fc
	planar, err := NewStaggeredPlanar(4, 4, lambda/2, piezo.MustDefault(), cWater)
	if err != nil {
		t.Fatal(err)
	}
	planar.LineLossDB = 0
	planar.LineDelaySec = 0
	sector := 100.0 * math.Pi / 180
	worst := planar.MinMonostaticGainDB2D(fc, sector, 10)
	want := 20 * math.Log10(16)
	if math.Abs(worst-want) > 0.2 {
		t.Errorf("planar worst-case 2D gain %.2f dB, want ~%.2f (flat)", worst, want)
	}
}

func TestLinearArrayAlsoFlatMonostatically(t *testing.T) {
	// Centro-symmetric pairing makes even the *linear* array's monostatic
	// response flat in both axes (phases cancel pairwise for any incident
	// direction); the planar layout's advantage lies in aperture for a
	// given strap length and in bistatic behaviour, not in the monostatic
	// worst case. Pin that down so nobody oversells the 2D story.
	a := newLinear(t, 16)
	sector := 100.0 * math.Pi / 180
	worst := a.MinMonostaticGainDB2D(fc, sector, 10)
	want := 20 * math.Log10(16)
	if math.Abs(worst-want) > 0.2 {
		t.Errorf("linear worst-case 2D gain %.2f dB, want ~%.2f", worst, want)
	}
}

func TestDirection3D(t *testing.T) {
	d := Direction3D(0, 0)
	if math.Abs(d.Z-1) > 1e-12 {
		t.Errorf("broadside: %+v", d)
	}
	d = Direction3D(0, math.Pi/2)
	if math.Abs(d.Y-1) > 1e-12 {
		t.Errorf("straight up: %+v", d)
	}
	for _, az := range []float64{0.3, 1.0} {
		for _, el := range []float64{-0.5, 0.7} {
			if n := Direction3D(az, el).Norm(); math.Abs(n-1) > 1e-12 {
				t.Errorf("not unit: az=%v el=%v |d|=%v", az, el, n)
			}
		}
	}
}
