package core

import (
	"math"
	"testing"

	"vab/internal/ocean"
)

func TestRangingRoundAccuracy(t *testing.T) {
	env := ocean.CharlesRiver()
	d, err := NewVanAttaDesign(DefaultNodeElements, env, DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	for _, rng := range []float64{30, 60, 120} {
		s, err := NewSystem(SystemConfig{
			Env: env, Design: d, Range: rng, NodeAddr: 2, Seed: 17,
		})
		if err != nil {
			t.Fatal(err)
		}
		s.WakeNode(3600)
		got := false
		for attempt := 0; attempt < 4 && !got; attempt++ {
			s.WakeNode(30)
			rep, err := s.RunRangingRound()
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Rx.OK() {
				continue
			}
			got = true
			// Time-of-flight resolution is one sample ≈ 4.6 cm; allow for
			// acquisition locking onto a slightly later multipath arrival
			// plus the sway jitter between truth capture and measurement.
			if math.Abs(rep.EstimatedRange-rep.TrueRange) > 2.0 {
				t.Errorf("r=%v: estimated %.2f m vs true %.2f m", rng, rep.EstimatedRange, rep.TrueRange)
			}
			// And the estimate tracks the configured deployment range.
			if math.Abs(rep.EstimatedRange-rng) > 3.0 {
				t.Errorf("r=%v: estimate %.2f m far from nominal", rng, rep.EstimatedRange)
			}
		}
		if !got {
			t.Errorf("r=%v: no successful ranging round", rng)
		}
	}
}

func TestRangingStarvedNode(t *testing.T) {
	env := ocean.CharlesRiver()
	d, _ := NewVanAttaDesign(DefaultNodeElements, env, DefaultCarrierHz)
	s, err := NewSystem(SystemConfig{Env: env, Design: d, Range: 50, NodeAddr: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Never woken: even a battery-backed node boots with an empty
	// reservoir until the first harvest interval floats the rail, so the
	// ranging round must report the silence instead of fabricating a
	// range.
	if _, err := s.RunRangingRound(); err == nil {
		t.Fatal("ranging on a cold node should error")
	}
	s.WakeNode(60)
	rep, err := s.RunRangingRound()
	if err != nil {
		t.Fatalf("after waking: %v", err)
	}
	if rep.TrueRange <= 0 {
		t.Error("missing ground truth")
	}
}
