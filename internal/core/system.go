package core

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"vab/internal/channel"
	"vab/internal/faults"
	"vab/internal/link"
	"vab/internal/node"
	"vab/internal/ocean"
	"vab/internal/phy"
	"vab/internal/reader"
	"vab/internal/telemetry"
)

// SystemConfig describes one reader↔node deployment for waveform-level
// simulation.
type SystemConfig struct {
	Env    *ocean.Environment
	Design Design

	Range       float64 // horizontal reader↔node range, m
	Orientation float64 // node rotation, radians (0 = facing the reader)
	ReaderDepth float64 // 0 → mid-column
	NodeDepth   float64 // 0 → mid-column

	Reader   reader.Config // zero value → reader.DefaultConfig()
	NodeAddr byte

	// SelfInterferenceDB overrides the default −30 dB projector→hydrophone
	// coupling when nonzero.
	SelfInterferenceDB float64

	DisableNoise  bool
	DisableFading bool

	// NodeClockPPM sets the node oscillator's frequency error in parts per
	// million (see phy.Params.ClockPPM): the node's chip clock and
	// subcarrier tones drift while the reader demodulates at nominal
	// rates. Crystal-class errors (±100 ppm) decode cleanly; RC-oscillator
	// errors (thousands of ppm) degrade — the phy package quantifies the
	// budget.
	NodeClockPPM float64

	// RoundDeadline bounds the wall time RunRound may spend before the
	// watchdog abandons the round (reported, not an error). Zero disables
	// the watchdog — the default, and required for bit-reproducible seeded
	// transcripts, since wall time is not deterministic.
	RoundDeadline time.Duration

	// SwayRMS is the RMS mooring sway in meters applied independently to
	// the geometry before every round (0.05 m default; negative disables).
	// At an 8 cm wavelength, centimeter-scale platform motion decorrelates
	// multipath interference nulls between polls — a static geometry would
	// freeze a deployment in whatever null it happened to land in, which
	// no real float experiences.
	SwayRMS float64

	// SensorBatch selects the node's payload format: ≤1 (the default)
	// keeps the v1 single-reading 8-byte payload and bit-identical seeded
	// transcripts; 2..node.MaxPackedBatch equips the node with a
	// PackedEnvSensor whose fixed-size packed payload carries that many
	// delta-coded readings per response frame.
	SensorBatch int

	Seed int64
}

// System is a fully assembled waveform-level deployment: reader, channel
// and a battery-free node. It exercises every block the paper's prototype
// contains — downlink OOK decoding at the node, reflection modulation,
// round-trip propagation, self-interference cancellation and uplink
// demodulation at the reader.
type System struct {
	Reader *reader.Reader
	Node   *node.Node
	Link   *channel.Link

	cfg      SystemConfig
	nodeGain complex128 // scatter field × structural loss at this orientation
	deltaG   float64    // reflection contrast 2·ModulationDepth
	querySeq byte
	sway     *rand.Rand
	linkSeed int64

	// payloadLen is the response payload size the reader expects (the
	// demodulation window must be sized before decoding): node.PayloadSize
	// for v1 sensors, the fixed padded packed size when SensorBatch > 1.
	payloadLen int
	// readingsBuf is reused by RunRound's payload validation so packed
	// multi-reading payloads parse without allocating per round.
	readingsBuf []node.Reading

	// ook is the node-side downlink demodulator, built once: it is
	// configuration-only, so constructing it per round bought nothing.
	ook *phy.OOKDemodulator

	// Round-pipeline buffers, reused across rounds so a steady-state poll
	// loop stops allocating waveform-sized slices (see the channel
	// package's allocation-discipline notes). RecordRound intentionally
	// bypasses captureBuf: its capture escapes to the caller.
	txBuf      []complex128
	gammaBuf   []complex128
	captureBuf []complex128
	dlBuf      []complex128

	// trace times RunRound's pipeline stages; nil (the default) records
	// nothing. Set via Instrument.
	trace  *telemetry.Tracer
	rounds *telemetry.Counter
	reg    *telemetry.Registry

	// Fault-injection state (see chaos.go). chaos nil means no engine is
	// attached and the round pipeline behaves exactly as before this hook
	// existed. The applied* fields track sticky fault state so plans are
	// re-applied only when they change.
	chaos             *faults.Engine
	chaosRound        int
	appliedDeadFrac   float64
	appliedClockDelta float64
	shadowDB          float64
	watchdogTrips     *telemetry.Counter
}

// Instrument enables round-stage tracing (vab_round_stage_seconds) and
// receive-chain metrics for this system. The rounds counter and stage
// histograms aggregate across systems instrumented against one registry.
// A nil registry is a no-op; telemetry never perturbs the seeded RNGs, so
// instrumented and bare runs are bit-identical.
func (s *System) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.trace = telemetry.NewTracer(reg, "vab_round_stage_seconds",
		"Wall time of one system round's pipeline stages.", nil)
	s.rounds = reg.Counter("vab_round_total",
		"Query-response rounds executed at waveform level.")
	s.watchdogTrips = reg.Counter("vab_round_watchdog_trips_total",
		"Rounds abandoned by the per-round deadline watchdog.")
	s.reg = reg
	s.Reader.Instrument(reg)
	s.chaos.Instrument(reg)
}

// rebuildLink refreshes the channel with mooring sway applied to the
// nominal geometry, so consecutive rounds see decorrelated multipath
// phases just as a real float does. The first call constructs the Link;
// every later call rebuilds it in place (channel.Link.Rebuild), which is
// bit-identical to constructing a fresh link for the jittered geometry but
// reuses all of its storage.
func (s *System) rebuildLink() error {
	cfg := s.cfg
	jitter := func(v, min, max float64) float64 {
		j := v + s.sway.NormFloat64()*cfg.SwayRMS
		if j < min {
			j = min
		}
		if j > max {
			j = max
		}
		return j
	}
	s.linkSeed++
	// Draw order (reader depth, node depth, range) matches the historical
	// per-round channel.New construction; seeded runs depend on it.
	rd := jitter(cfg.ReaderDepth, 0.3, cfg.Env.Depth-0.1)
	nd := jitter(cfg.NodeDepth, 0.3, cfg.Env.Depth-0.1)
	rg := jitter(cfg.Range, 1, math.Inf(1))
	seed := cfg.Seed + s.linkSeed
	if s.Link != nil {
		return s.Link.Rebuild(channel.Geometry{ReaderDepth: rd, NodeDepth: nd, Range: rg}, seed)
	}
	l, err := channel.New(channel.Config{
		Env:                cfg.Env,
		CarrierHz:          DefaultCarrierHz,
		SampleRate:         cfg.Reader.PHY.SampleRate,
		ReaderDepth:        rd,
		NodeDepth:          nd,
		Range:              rg,
		SelfInterferenceDB: cfg.SelfInterferenceDB,
		DisableNoise:       cfg.DisableNoise,
		DisableFading:      cfg.DisableFading,
		Seed:               seed,
	})
	if err != nil {
		return err
	}
	s.Link = l
	return nil
}

// growRoundBuf returns buf resized to n, reallocating only when the
// capacity is insufficient (monotone growth: steady-state rounds reuse).
func growRoundBuf(buf []complex128, n int) []complex128 {
	if cap(buf) < n {
		return make([]complex128, n)
	}
	return buf[:n]
}

// roundWaveforms fills the reused transmit-carrier and node-reflection
// buffers for an uplink exchange of total samples whose response window
// starts at pad. Callers must not retain the returned slices past the
// round; RecordRound, whose capture escapes, still allocates that capture.
func (s *System) roundWaveforms(total, pad int, gammaBits []float64) (tx, gamma []complex128) {
	s.txBuf = growRoundBuf(s.txBuf, total)
	tx = s.txBuf
	s.Reader.CarrierEnvelopeInto(tx)
	s.gammaBuf = growRoundBuf(s.gammaBuf, total)
	gamma = s.gammaBuf
	for i := range gamma {
		gamma[i] = 0
	}
	for i, g := range gammaBits {
		gamma[pad+i] = complex(s.deltaG*g, 0)
	}
	return tx, gamma
}

// NewSystem validates and assembles a deployment.
func NewSystem(cfg SystemConfig) (*System, error) {
	if cfg.Env == nil || cfg.Design == nil {
		return nil, fmt.Errorf("core: system needs environment and design")
	}
	if cfg.Range <= 0 {
		return nil, fmt.Errorf("core: range %.3g m must be positive", cfg.Range)
	}
	if cfg.Reader.PHY.SampleRate == 0 {
		cfg.Reader = reader.DefaultConfig()
	}
	// Default to staggered depths: placing both ends at exactly the same
	// depth in a symmetric waveguide pairs the surface and bottom images
	// at identical delays and systematically cancels the link (a real
	// deployment hazard worth avoiding by default).
	if cfg.ReaderDepth == 0 {
		cfg.ReaderDepth = 0.4 * cfg.Env.Depth
	}
	if cfg.NodeDepth == 0 {
		cfg.NodeDepth = 0.6 * cfg.Env.Depth
	}
	if cfg.SelfInterferenceDB == 0 {
		cfg.SelfInterferenceDB = -30
	}
	switch {
	case cfg.SwayRMS == 0:
		cfg.SwayRMS = 0.05
	case cfg.SwayRMS < 0:
		cfg.SwayRMS = 0
	}
	r, err := reader.New(cfg.Reader)
	if err != nil {
		return nil, err
	}
	// Deployed nodes float the reservoir from a small primary cell: beyond
	// ~100 m the harvested carrier covers only a fraction of even the
	// sleep current (the node package quantifies the crossover).
	harv := node.DefaultHarvester()
	harv.BatteryBacked = true
	nodePHY := cfg.Reader.PHY
	nodePHY.ClockPPM = cfg.NodeClockPPM
	// Payload format: the v1 single-reading sensor by default (keeping
	// committed seeded transcripts bit-identical), the packed multi-reading
	// sensor when a batch is requested. Both derive their sample stream
	// from the same seed, so batch k reads the same measurements as k
	// consecutive v1 polls.
	var sensor node.Sensor
	payloadLen := node.PayloadSize
	if cfg.SensorBatch > 1 {
		ps, err := node.NewPackedEnvSensor(cfg.Env.Temperature, cfg.NodeDepth, cfg.Seed+1, cfg.SensorBatch)
		if err != nil {
			return nil, err
		}
		sensor = ps
		payloadLen = ps.PayloadSize()
	} else {
		sensor = node.NewEnvSensor(cfg.Env.Temperature, cfg.NodeDepth, cfg.Seed+1)
	}
	n, err := node.New(node.Config{
		Addr:    cfg.NodeAddr,
		Codec:   cfg.Reader.UplinkCodec,
		PHY:     nodePHY,
		Budget:  node.DefaultPowerBudget(),
		Harvest: harv,
		Sensor:  sensor,
	})
	if err != nil {
		return nil, err
	}
	s := &System{Reader: r, Node: n, cfg: cfg, payloadLen: payloadLen,
		sway: rand.New(rand.NewSource(cfg.Seed ^ 0x5f3759df))}
	s.ook, err = phy.NewOOKDemodulator(cfg.Reader.PHY)
	if err != nil {
		return nil, err
	}
	if err := s.rebuildLink(); err != nil {
		return nil, err
	}
	s.refreshNodeGain()
	s.deltaG = 2 * cfg.Design.ModulationDepth(DefaultCarrierHz)
	return s, nil
}

// WakeNode charges the node from the carrier for the given duration: the
// deployment phase before the first poll.
func (s *System) WakeNode(seconds float64) {
	tl := s.cfg.Env.TransmissionLoss(DefaultCarrierHz, s.cfg.Range)
	pPa := math.Pow(10, (s.cfg.Reader.SourceLevelDB-tl)/20) * 1e-6
	rhoC := ocean.WaterDensity * s.cfg.Env.MeanSoundSpeed()
	s.Node.Harvest(pPa, rhoC, seconds)
}

// RoundReport describes one query-response round.
type RoundReport struct {
	Rx         reader.RxReport
	QueryOK    bool // node decoded the downlink query
	NodeSilent bool // node declined to answer (energy, address)
	PayloadOK  bool // payload parses as a sensor reading
	ToneSNREst float64

	// WatchdogTripped marks a round abandoned by the RoundDeadline
	// watchdog: the stages up to the trip ran, the rest were skipped.
	WatchdogTripped bool
}

// RunRound executes a full query-response exchange at waveform level and
// returns what happened at each stage.
func (s *System) RunRound() (RoundReport, error) {
	var rep RoundReport
	cfg := s.cfg.Reader
	s.rounds.Inc()

	// Per-round watchdog: bound wall time when a deadline is configured.
	// The zero deadline (the default) makes every check a no-op.
	var deadline time.Time
	if s.cfg.RoundDeadline > 0 {
		deadline = time.Now().Add(s.cfg.RoundDeadline)
	}
	tripped := func() bool {
		if deadline.IsZero() || time.Now().Before(deadline) {
			return false
		}
		rep.WatchdogTripped = true
		s.watchdogTrips.Inc()
		return true
	}

	// Fault injection: compute and apply this round's plan. A nil engine
	// skips the block entirely, leaving seeded runs bit-identical to a
	// build without fault support.
	var plan faults.RoundPlan
	if s.chaos != nil {
		plan = s.chaos.Plan(s.chaosRound)
		s.chaosRound++
		if err := s.applyFaultPlan(&plan); err != nil {
			return rep, err
		}
	}

	// Mooring sway between rounds: refresh the multipath geometry.
	if s.cfg.SwayRMS > 0 {
		if err := s.rebuildLink(); err != nil {
			return rep, err
		}
	}

	// Downlink: query through the channel, node-side OOK decode.
	sp := s.trace.Stage("modulate")
	qw, _, err := s.Reader.QueryWaveform(s.cfg.NodeAddr, s.querySeq)
	sp.End()
	if err != nil {
		return rep, err
	}
	s.querySeq++
	sp = s.trace.Stage("channel")
	s.dlBuf = growRoundBuf(s.dlBuf, len(qw))
	atNode := s.Link.DownlinkInto(s.dlBuf, qw)
	sp.End()
	if tripped() {
		return rep, nil
	}
	nChips := cfg.DownlinkCodec.ChipLength(0)
	chips, err := s.ook.DemodChips(atNode, 0, nChips)
	if err != nil {
		return rep, fmt.Errorf("core: node downlink demod: %w", err)
	}
	qf, _, err := cfg.DownlinkCodec.DecodeFrame(chips)
	if err != nil {
		// Query corrupted in flight: the node never hears it.
		return rep, nil
	}
	rep.QueryOK = true

	// Node responds with its reflection waveform.
	sp = s.trace.Stage("node")
	gammaBits, err := s.Node.HandleQuery(qf)
	sp.End()
	if err != nil {
		return rep, err
	}
	if gammaBits == nil {
		rep.NodeSilent = true
		return rep, nil
	}
	if tripped() {
		return rep, nil
	}

	// Round trip. The transmitted chip sequence is reconstructed for raw
	// chip-error accounting.
	spc := cfg.PHY.SamplesPerChip()
	pad := 4 * spc
	total := pad + len(gammaBits) + 4*spc
	tx, gamma := s.roundWaveforms(total, pad, gammaBits)
	sp = s.trace.Stage("channel")
	s.captureBuf = growRoundBuf(s.captureBuf, total)
	capture, err := s.Link.RoundTripInto(s.captureBuf, tx, gamma, s.effectiveGain())
	sp.End()
	if err != nil {
		return rep, err
	}
	if len(plan.Bursts) > 0 {
		s.injectBursts(capture, &plan)
	}
	if tripped() {
		return rep, nil
	}
	sp = s.trace.Stage("decode")
	rep.Rx = s.Reader.Decode(capture, tx, s.payloadLen)
	sp.End()
	rep.ToneSNREst = rep.Rx.SNREstimate
	if rep.Rx.OK() {
		// Format-agnostic validation: packed payloads and the v1 layout
		// both parse through the dispatcher, into a reused buffer.
		s.readingsBuf, rep.PayloadOK = node.AppendDecodedReadings(s.readingsBuf[:0], rep.Rx.Frame.Payload)
	}
	return rep, nil
}

// RecordRound runs one query-response exchange and returns the reader's
// raw hydrophone capture — the export hook for external waveform analysis
// (see dsp.WriteCapture and cmd/vabscan -capture).
func (s *System) RecordRound() ([]complex128, error) {
	cfg := s.cfg.Reader
	if s.cfg.SwayRMS > 0 {
		if err := s.rebuildLink(); err != nil {
			return nil, err
		}
	}
	gammaBits, err := s.Node.HandleQuery(&link.Frame{Type: link.FrameQuery, Addr: s.cfg.NodeAddr})
	if err != nil {
		return nil, err
	}
	if gammaBits == nil {
		return nil, fmt.Errorf("core: node silent; WakeNode first")
	}
	spc := cfg.PHY.SamplesPerChip()
	pad := 4 * spc
	total := pad + len(gammaBits) + 4*spc
	tx, gamma := s.roundWaveforms(total, pad, gammaBits)
	return s.Link.RoundTrip(tx, gamma, s.nodeGain)
}

// RunCommandRound sends a downlink command frame through the channel and,
// when the command elicits an acknowledgement, runs the backscatter uplink
// and decodes it. It returns the reader's view: acked (frame recovered),
// silent (node ignored or was muted — the expected outcome for CmdMute),
// or an error for transport problems.
func (s *System) RunCommandRound(payload []byte) (acked bool, rep reader.RxReport, err error) {
	cfg := s.cfg.Reader
	if s.cfg.SwayRMS > 0 {
		if err := s.rebuildLink(); err != nil {
			return false, rep, err
		}
	}
	// Downlink command frame as OOK.
	f := &link.Frame{Type: link.FrameCmd, Addr: s.cfg.NodeAddr, Seq: s.querySeq, Payload: payload}
	s.querySeq++
	chips, err := cfg.DownlinkCodec.EncodeFrame(f)
	if err != nil {
		return false, rep, err
	}
	mod, err := phy.NewModulator(cfg.PHY)
	if err != nil {
		return false, rep, err
	}
	w, err := mod.OOKModulate(chips, 1.0)
	if err != nil {
		return false, rep, err
	}
	amp := s.Reader.SourceAmplitude()
	for i := range w {
		w[i] *= complex(amp, 0)
	}
	s.dlBuf = growRoundBuf(s.dlBuf, len(w))
	atNode := s.Link.DownlinkInto(s.dlBuf, w)
	gotChips, err := s.ook.DemodChips(atNode, 0, len(chips))
	if err != nil {
		return false, rep, err
	}
	qf, _, err := cfg.DownlinkCodec.DecodeFrame(gotChips)
	if err != nil {
		return false, rep, nil // command lost in flight
	}
	gammaBits, err := s.Node.HandleCommand(qf)
	if err != nil {
		return false, rep, fmt.Errorf("core: node command: %w", err)
	}
	if gammaBits == nil {
		return false, rep, nil
	}
	// Uplink ack.
	spc := cfg.PHY.SamplesPerChip()
	pad := 4 * spc
	total := pad + len(gammaBits) + 4*spc
	tx, gamma := s.roundWaveforms(total, pad, gammaBits)
	s.captureBuf = growRoundBuf(s.captureBuf, total)
	capture, err := s.Link.RoundTripInto(s.captureBuf, tx, gamma, s.nodeGain)
	if err != nil {
		return false, rep, err
	}
	rep = s.Reader.Decode(capture, tx, 1) // ack payload: the echoed opcode
	return rep.OK(), rep, nil
}

// RangingReport is the outcome of a time-of-flight ranging round.
type RangingReport struct {
	Rx             reader.RxReport
	EstimatedRange float64 // m, one-way
	TrueRange      float64 // m, the (sway-jittered) geometry ground truth
}

// RunRangingRound performs a query-response exchange with absolute
// propagation delay preserved, so the reader can estimate the node's range
// from the burst's time of flight — the localization primitive a
// retrodirective node enables for free (it answers from any orientation
// with no settling or steering delay). The exchange reuses the data path:
// the same frame, FEC and demodulation; only the capture timeline differs.
func (s *System) RunRangingRound() (RangingReport, error) {
	var rep RangingReport
	cfg := s.cfg.Reader
	if s.cfg.SwayRMS > 0 {
		if err := s.rebuildLink(); err != nil {
			return rep, err
		}
	}
	// True (jittered) one-way range from the link's bulk delay.
	rep.TrueRange = s.Link.BulkDelaySeconds() / 2 * s.cfg.Env.MeanSoundSpeed()

	gammaBits, err := s.Node.HandleQuery(&link.Frame{Type: link.FrameQuery, Addr: s.cfg.NodeAddr})
	if err != nil {
		return rep, err
	}
	if gammaBits == nil {
		return rep, fmt.Errorf("core: node silent during ranging")
	}
	spc := cfg.PHY.SamplesPerChip()
	pad := 4 * spc
	total := pad + len(gammaBits) + 4*spc
	tx, gamma := s.roundWaveforms(total, pad, gammaBits)
	capture, err := s.Link.RoundTripAbsolute(tx, gamma, s.nodeGain)
	if err != nil {
		return rep, err
	}
	// Extend the canceller reference over the longer capture.
	txRef := make([]complex128, len(capture))
	copy(txRef, tx)
	rep.Rx = s.Reader.Decode(capture, txRef, s.payloadLen)
	if rep.Rx.OK() {
		rep.EstimatedRange = s.Reader.EstimateRange(rep.Rx.AcqStart, pad, s.cfg.Env.MeanSoundSpeed())
	}
	return rep, nil
}

// PredictedBudget returns the analytic budget matching this system's
// geometry, for cross-validation of the two fidelity tiers.
func (s *System) PredictedBudget() *LinkBudget {
	b := NewLinkBudget(s.cfg.Env, s.cfg.Design)
	b.ReaderDepth = s.cfg.ReaderDepth
	b.NodeDepth = s.cfg.NodeDepth
	b.Orientation = s.cfg.Orientation
	b.SourceLevelDB = s.cfg.Reader.SourceLevelDB
	b.ChipRate = s.cfg.Reader.PHY.ChipRate
	if !s.cfg.Reader.UseDiversity {
		b.DiversityGainDB = 0
		b.DiversityBranches = 1
	}
	return b
}
