package core

import (
	"testing"

	"vab/internal/ocean"
	"vab/internal/reader"
)

// TestEqualizerImprovesCoastalDecodeRate is the system-level regression
// for the decision-feedback equalizer: across coastal channel realizations
// it must decode at least as many single-shot rounds as the plain receiver,
// and strictly more over the full seed set.
func TestEqualizerImprovesCoastalDecodeRate(t *testing.T) {
	run := func(eq bool, rd, nd float64) int {
		env := ocean.AtlanticCoastal()
		d, _ := NewVanAttaDesign(16, env, DefaultCarrierHz)
		ok := 0
		for seed := int64(0); seed < 30; seed++ {
			rcfg := reader.DefaultConfig()
			rcfg.UseEqualizer = eq
			s, err := NewSystem(SystemConfig{
				Env: env, Design: d, Range: 40,
				ReaderDepth: rd, NodeDepth: nd, NodeAddr: 7, Seed: seed,
				Reader: rcfg,
			})
			if err != nil {
				t.Fatal(err)
			}
			s.WakeNode(3600)
			rep, _ := s.RunRound()
			if rep.Rx.OK() {
				ok++
			}
		}
		return ok
	}
	plain := run(false, 3, 4)
	equalized := run(true, 3, 4)
	if equalized <= plain {
		t.Errorf("equalizer did not improve the coastal decode rate: %d vs %d of 30", equalized, plain)
	}
	if plain < 8 {
		t.Errorf("plain decode rate %d/30 collapsed; channel regression?", plain)
	}
}
