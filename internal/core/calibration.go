package core

// Calibration constants. These are the only free parameters of the
// reproduction; everything else (curve shapes, crossovers, orientation
// behaviour, environment deltas) follows from the physical models. They are
// fixed once against the two anchors quoted in the paper's abstract —
// BER ≤ 10⁻³ at 300 m round trip for VAB in the river campaign, and a 15×
// range advantage over the prior single-element state of the art at equal
// throughput and power — and never tuned per experiment. The calibration
// test in budget_test.go locks the anchors.

const (
	// DefaultCarrierHz is the operating frequency: the resonance of the
	// potted cylindrical transducers.
	DefaultCarrierHz = 18.5e3

	// DefaultSourceLevelDB re 1 µPa @ 1 m: a small survey projector.
	DefaultSourceLevelDB = 180.0

	// StructuralLossDB is the acoustic re-radiation deficit of a
	// wavelength-scale piezo scatterer relative to an ideal point
	// reflector: the target strength of centimeter-scale transducers at
	// λ ≈ 8 cm. It applies identically to VAB and the baseline (both use
	// the same transducers), so it shifts every range curve without
	// changing any comparison.
	StructuralLossDB = 37.5

	// DiversityGainDB is the average detection gain of combining tone
	// energy across resolvable multipath arrivals in shallow water,
	// measured from the waveform simulator (see the diversity ablation
	// bench). Applied when the receiver runs with combining enabled.
	DiversityGainDB = 2.5

	// CarrierBandSIPenaltyDB is the residual self-interference noise-floor
	// elevation suffered by designs that signal in the carrier band
	// (on-off keying directly on the carrier, as prior systems did)
	// instead of on frequency-shifted subcarriers. After cancellation, the
	// projector's phase noise and the fluctuating direct path still raise
	// the floor near the carrier; subcarrier FSK sidesteps it entirely.
	CarrierBandSIPenaltyDB = 12.0

	// DefaultNodeElements is the reference VAB array size used by the
	// headline experiments.
	DefaultNodeElements = 16

	// DefaultDiversityBranches is the number of resolvable shallow-water
	// arrivals the reader's combiner exploits. Image-method geometry in
	// both campaign environments puts 3-5 arrivals within 10 dB of the
	// direct path.
	DefaultDiversityBranches = 4
)
