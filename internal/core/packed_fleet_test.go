package core

import (
	"reflect"
	"testing"

	"vab/internal/mac"
	"vab/internal/node"
	"vab/internal/ocean"
)

// packedFleet builds a small waveform fleet whose nodes carry batch
// readings per response frame.
func packedFleet(t *testing.T, batch int, workers int) *Fleet {
	t.Helper()
	env := ocean.CharlesRiver()
	d, err := NewVanAttaDesign(DefaultNodeElements, env, DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(
		SystemConfig{Env: env, Design: d, Range: 1, Seed: 51, SensorBatch: batch},
		[]NodePlacement{
			{Addr: 1, Range: 40},
			{Addr: 2, Range: 70, Orientation: 0.4},
		},
		mac.DefaultPollPolicy(),
	)
	if err != nil {
		t.Fatal(err)
	}
	f.SetWorkers(workers)
	f.Deploy(3600)
	return f
}

func TestPackedFleetDeliversBatches(t *testing.T) {
	const batch = 4
	f := packedFleet(t, batch, 1)
	perNode := map[byte]int{}
	var frames int
	for cycle := 0; cycle < 3; cycle++ {
		readings, rep, err := f.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		frames += len(rep.Payloads)
		// Delivered frames must expand to exactly batch readings each.
		if len(readings) != batch*len(rep.Payloads) {
			t.Fatalf("cycle %d: %d readings from %d frames, want %d per frame",
				cycle, len(readings), len(rep.Payloads), batch)
		}
		for _, r := range readings {
			perNode[r.Addr]++
			if r.Reading.PressureMbar < 1000 || r.Reading.PressureMbar > 2000 {
				t.Errorf("node %d: implausible pressure %v", r.Addr, r.Reading.PressureMbar)
			}
		}
	}
	if frames == 0 {
		t.Fatal("no frames delivered in 3 cycles")
	}
	for addr, n := range perNode {
		if n%batch != 0 {
			t.Errorf("node %d delivered %d readings, not a multiple of batch %d", addr, n, batch)
		}
	}
}

func TestPackedFleetReadingCountsMonotone(t *testing.T) {
	// The packed sensor draws from the same sample stream as the v1
	// sensor, so each node's reading counts must be consecutive across
	// frames — batching must not skip or duplicate measurements.
	f := packedFleet(t, node.MaxPackedBatch, 1)
	counts := map[byte][]uint32{}
	for cycle := 0; cycle < 3; cycle++ {
		readings, _, err := f.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range readings {
			counts[r.Addr] = append(counts[r.Addr], r.Reading.Count)
		}
	}
	for addr, cs := range counts {
		for i := 1; i < len(cs); i++ {
			// Within one node's stream, consecutive delivered readings from
			// the same frame differ by exactly 1; across a frame gap (lost
			// frame) the count still increases.
			if cs[i] <= cs[i-1] {
				t.Errorf("node %d: counts not increasing at %d: %v", addr, i, cs)
				break
			}
		}
	}
}

func TestPackedFleetDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) []FleetReading {
		f := packedFleet(t, 4, workers)
		var all []FleetReading
		for cycle := 0; cycle < 2; cycle++ {
			readings, _, err := f.RunCycle()
			if err != nil {
				t.Fatal(err)
			}
			all = append(all, readings...)
		}
		return all
	}
	serial := run(1)
	wide := run(4)
	if !reflect.DeepEqual(serial, wide) {
		t.Fatalf("packed cycle output differs across worker counts:\n serial %+v\n wide   %+v", serial, wide)
	}
	if len(serial) == 0 {
		t.Fatal("no readings delivered")
	}
}
