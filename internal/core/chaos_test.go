package core

import (
	"fmt"
	"math/cmplx"
	"sync"
	"testing"
	"time"

	"vab/internal/faults"
)

// roundSignature flattens the observable outcome of one round for
// bit-identity comparisons.
func roundSignature(rep RoundReport) string {
	var payload []byte
	if rep.Rx.OK() {
		payload = rep.Rx.Frame.Payload
	}
	return fmt.Sprintf("%v|%v|%v|%v|%d|%.9f|%x",
		rep.QueryOK, rep.NodeSilent, rep.PayloadOK, rep.Rx.OK(),
		rep.Rx.Corrected, rep.Rx.AcqMetric, payload)
}

func runRounds(t *testing.T, s *System, n int) []string {
	t.Helper()
	sigs := make([]string, n)
	for i := 0; i < n; i++ {
		s.WakeNode(3600)
		rep, err := s.RunRound()
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		sigs[i] = roundSignature(rep)
	}
	return sigs
}

// TestChaosZeroIntensityIsBaseline: an attached engine whose scenario is
// scaled to zero must leave every round bit-identical to a system that
// never had an engine — the no-fault path touches no RNG stream.
func TestChaosZeroIntensityIsBaseline(t *testing.T) {
	const rounds = 5
	clean := runRounds(t, riverSystem(t, 45, 21), rounds)

	sc, err := faults.Parse("chaos", 77)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := faults.NewEngine(sc.Scale(0))
	if err != nil {
		t.Fatal(err)
	}
	s := riverSystem(t, 45, 21)
	s.SetFaultEngine(eng)
	zeroed := runRounds(t, s, rounds)

	for i := range clean {
		if clean[i] != zeroed[i] {
			t.Fatalf("round %d diverged under zero-intensity engine:\n clean %s\n zero  %s",
				i, clean[i], zeroed[i])
		}
	}
}

// TestChaosDetachHeals: after chaotic rounds, SetFaultEngine(nil) must
// revert element faults, shadowing and clock steps so the system resumes
// the exact clean trajectory — faults cost rounds, not the system.
func TestChaosDetachHeals(t *testing.T) {
	const pre, post = 3, 3
	clean := runRounds(t, riverSystem(t, 45, 21), pre+post)

	sc, err := faults.Parse("elements+shadowing+clockstep", 5)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := faults.NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	s := riverSystem(t, 45, 21)
	s.SetFaultEngine(eng)
	runRounds(t, s, pre) // chaotic prefix, outcomes irrelevant
	s.SetFaultEngine(nil)

	healed := runRounds(t, s, post)
	for i := range healed {
		if healed[i] != clean[pre+i] {
			t.Fatalf("post-heal round %d diverged from clean round %d:\n clean  %s\n healed %s",
				i, pre+i, clean[pre+i], healed[i])
		}
	}
}

// TestApplyFaultPlanShadowing: a shadowing plan attenuates the effective
// scatter gain by twice the one-way excess (out and back through the
// cloud), and clears when the plan does.
func TestApplyFaultPlanShadowing(t *testing.T) {
	s := riverSystem(t, 45, 3)
	healthy := cmplx.Abs(s.effectiveGain())

	if err := s.applyFaultPlan(&faults.RoundPlan{ShadowDB: 6}); err != nil {
		t.Fatal(err)
	}
	shadowed := cmplx.Abs(s.effectiveGain())
	wantRatio := 1.0 / 3.9810717055349722 // 10^(12/20)
	if ratio := shadowed / healthy; ratio < wantRatio*0.999 || ratio > wantRatio*1.001 {
		t.Fatalf("shadowed/healthy gain = %.6f, want %.6f (12 dB round trip)", ratio, wantRatio)
	}

	if err := s.applyFaultPlan(&faults.RoundPlan{}); err != nil {
		t.Fatal(err)
	}
	if got := cmplx.Abs(s.effectiveGain()); got != healthy {
		t.Fatalf("gain %.9g after shadow cleared, want %.9g", got, healthy)
	}
}

// TestApplyFaultPlanElements: a DeadFrac plan kills the deterministic
// element subset and refreshes the cached gain; healing restores both the
// array and the gain exactly.
func TestApplyFaultPlanElements(t *testing.T) {
	s := riverSystem(t, 45, 3)
	fd := s.cfg.Design.(FaultableDesign)
	healthy := s.nodeGain

	if err := s.applyFaultPlan(&faults.RoundPlan{DeadFrac: 0.5, FailSeed: 99}); err != nil {
		t.Fatal(err)
	}
	if got, want := fd.FaultArray().FailedElements(), fd.FaultArray().N()/2; got != want {
		t.Fatalf("failed elements = %d, want %d", got, want)
	}
	if s.nodeGain == healthy {
		t.Fatal("cached gain not refreshed after element faults")
	}
	faulted := s.nodeGain

	// Same plan again: sticky, no re-pick, gain unchanged.
	if err := s.applyFaultPlan(&faults.RoundPlan{DeadFrac: 0.5, FailSeed: 99}); err != nil {
		t.Fatal(err)
	}
	if s.nodeGain != faulted {
		t.Fatal("re-applying an identical plan changed the gain")
	}

	s.SetFaultEngine(nil)
	if fd.FaultArray().FailedElements() != 0 {
		t.Fatal("detach did not clear element faults")
	}
	if s.nodeGain != healthy {
		t.Fatalf("healed gain %v, want %v", s.nodeGain, healthy)
	}
}

// TestApplyFaultPlanBrownout: a brownout plan forces the node into sleep;
// the next round sees it silent.
func TestApplyFaultPlanBrownout(t *testing.T) {
	s := riverSystem(t, 45, 3)
	s.WakeNode(3600)
	if err := s.applyFaultPlan(&faults.RoundPlan{Brownout: true}); err != nil {
		t.Fatal(err)
	}
	rep, err := s.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.NodeSilent {
		t.Fatalf("browned-out node answered: %+v", rep)
	}
}

// TestApplyFaultPlanClockStep: the clock delta lands on top of the nominal
// ppm, sticks across identical plans, and heals on detach.
func TestApplyFaultPlanClockStep(t *testing.T) {
	s := riverSystem(t, 45, 3)
	if err := s.applyFaultPlan(&faults.RoundPlan{ClockPPMDelta: 800}); err != nil {
		t.Fatal(err)
	}
	if got := s.Node.ClockPPM(); got != 800 {
		t.Fatalf("node clock %.0f ppm, want 800", got)
	}
	s.SetFaultEngine(nil)
	if got := s.Node.ClockPPM(); got != 0 {
		t.Fatalf("node clock %.0f ppm after heal, want 0", got)
	}
}

// TestWatchdogTrips: an absurdly tight deadline abandons the round
// gracefully — report flagged, no error; the default (zero) never trips.
func TestWatchdogTrips(t *testing.T) {
	s := riverSystem(t, 45, 3)
	s.WakeNode(3600)
	s.cfg.RoundDeadline = time.Nanosecond
	rep, err := s.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.WatchdogTripped {
		t.Fatal("1 ns deadline did not trip the watchdog")
	}
	if rep.Rx.OK() {
		t.Fatal("abandoned round still produced a decode")
	}

	s.cfg.RoundDeadline = 0
	rep, err = s.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if rep.WatchdogTripped {
		t.Fatal("disabled watchdog tripped")
	}
}

// TestSetChipRateRoundTrip: stepping down to a slower chip rate keeps the
// link decoding, invalid rates are rejected atomically, and the original
// rate restores.
func TestSetChipRateRoundTrip(t *testing.T) {
	s := riverSystem(t, 40, 7)
	orig := s.ChipRate()

	if err := s.SetChipRate(250); err != nil {
		t.Fatal(err)
	}
	if s.ChipRate() != 250 {
		t.Fatalf("chip rate %.0f, want 250", s.ChipRate())
	}
	s.WakeNode(3600)
	rep, err := s.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Rx.OK() {
		t.Fatalf("decode failed at 250 cps: %v", rep.Rx.Err)
	}

	// 300 cps violates the tone/chip numerology: reject, keep 250.
	if err := s.SetChipRate(300); err == nil {
		t.Fatal("invalid chip rate accepted")
	}
	if s.ChipRate() != 250 {
		t.Fatalf("failed retune corrupted chip rate to %.0f", s.ChipRate())
	}

	if err := s.SetChipRate(orig); err != nil {
		t.Fatal(err)
	}
	s.WakeNode(3600)
	if rep, _ = s.RunRound(); !rep.Rx.OK() {
		t.Fatalf("decode failed after restoring %.0f cps: %v", orig, rep.Rx.Err)
	}
}

// TestChaosSoak runs 200 chaotic rounds through one system and, in
// parallel, two systems sharing one engine — the -race soak leg. The
// pipeline must absorb every fault class without an error or panic.
func TestChaosSoak(t *testing.T) {
	sc, err := faults.Parse("chaos", 1234)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := faults.NewEngine(sc.Scale(0.6))
	if err != nil {
		t.Fatal(err)
	}

	s := riverSystem(t, 45, 13)
	s.SetFaultEngine(eng)
	delivered := 0
	for i := 0; i < 200; i++ {
		s.WakeNode(60)
		rep, err := s.RunRound()
		if err != nil {
			t.Fatalf("soak round %d: %v", i, err)
		}
		if rep.Rx.OK() {
			delivered++
		}
	}
	if delivered == 0 {
		t.Error("0/200 chaotic rounds delivered — faults are implausibly fatal")
	}
	if delivered == 200 {
		t.Error("200/200 chaotic rounds delivered — faults are implausibly benign")
	}
	t.Logf("soak: %d/200 rounds delivered under chaos", delivered)

	// Concurrent soak: each system owns its design (element faults mutate
	// the array) but both share the engine, whose Plan must be re-entrant.
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		sys := riverSystem(t, 45, int64(50+w))
		sys.SetFaultEngine(eng)
		wg.Add(1)
		go func(sys *System, w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sys.WakeNode(60)
				if _, err := sys.RunRound(); err != nil {
					t.Errorf("concurrent soak worker %d round %d: %v", w, i, err)
					return
				}
			}
		}(sys, w)
	}
	wg.Wait()
}
