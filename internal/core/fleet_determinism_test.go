package core

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"testing"

	"vab/internal/faults"
	"vab/internal/mac"
	"vab/internal/ocean"
)

// chaosFleet16 builds the determinism fixture: a 16-node river fleet with
// the full recovery stack (probation, rate adaptation) and a chaos fault
// engine — every subsystem whose ordering the wave scheduler could
// plausibly perturb.
func chaosFleet16(t *testing.T, workers int) *Fleet {
	t.Helper()
	env := ocean.CharlesRiver()
	d, err := NewVanAttaDesign(DefaultNodeElements, env, DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	placements := make([]NodePlacement, 16)
	for i := range placements {
		placements[i] = NodePlacement{
			Addr:        byte(i + 1),
			Range:       40 + 12*float64(i), // 40 m … 220 m: the far tail fails and retries
			Orientation: 0.25 * float64(i%5),
		}
	}
	f, err := NewFleet(
		SystemConfig{Env: env, Design: d, Range: 1, Seed: 4242},
		placements,
		mac.PollPolicy{
			MaxRetries: 2, BackoffSlots: 8, DropAfter: 3,
			Probation: true, ProbeBackoffBase: 2, ProbeBackoffMax: 8,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := mac.NewRateController([]float64{125, 250, 500}, 12)
	if err != nil {
		t.Fatal(err)
	}
	f.EnableRateAdaptation(rc)
	eng, err := faults.NewEngine(mustScenario(t, "chaos", 4242).Scale(0.5))
	if err != nil {
		t.Fatal(err)
	}
	f.SetFaultEngine(eng)
	f.SetWorkers(workers)
	f.Deploy(3600)
	return f
}

func mustScenario(t *testing.T, spec string, seed int64) faults.Scenario {
	t.Helper()
	sc, err := faults.Parse(spec, seed)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// hexF serializes a float with full bit fidelity — %v or %g rounding could
// mask a divergence in the low mantissa bits.
func hexF(v float64) string { return fmt.Sprintf("%016x", math.Float64bits(v)) }

// cycleSignature runs cycles polling cycles and serializes everything a
// caller can observe: readings, reports (payloads in sorted order), final
// node states and the link-quality accumulators.
func cycleSignature(t *testing.T, f *Fleet, cycles int) string {
	t.Helper()
	var b strings.Builder
	for c := 0; c < cycles; c++ {
		readings, rep, err := f.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "cycle %d: polled=%d delivered=%d retries=%d probes=%d\n",
			c, rep.Polled, rep.Delivered, rep.Retries, rep.Probes)
		addrs := make([]byte, 0, len(rep.Payloads))
		for a := range rep.Payloads {
			addrs = append(addrs, a)
		}
		sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
		for _, a := range addrs {
			fmt.Fprintf(&b, "  payload %d: %x\n", a, rep.Payloads[a])
		}
		for _, r := range readings {
			fmt.Fprintf(&b, "  reading %d: count=%d temp=%s pressure=%s snr=%s\n",
				r.Addr, r.Reading.Count, hexF(r.Reading.TempC),
				hexF(r.Reading.PressureMbar), hexF(r.SNRdB))
		}
	}
	for _, st := range f.Nodes() {
		fmt.Fprintf(&b, "node %d: polls=%d succ=%d retries=%d silent=%d quar=%v(%d) dropped=%v snr=%s\n",
			st.Addr, st.Polls, st.Successes, st.Retries, st.SilentCycles,
			st.Quarantined, st.QuarantineEntries, st.Dropped, hexF(st.LastSNRdB))
	}
	frames, corrected := f.LinkQuality()
	fmt.Fprintf(&b, "link: frames=%d corrected=%d\n", frames, corrected)
	return b.String()
}

// TestFleetCycleDeterministicAcrossWorkers is the fleet-level determinism
// contract (and, under -race, the data-race proof for concurrent waves):
// seeded 16-node cycles with a fault engine attached and rate adaptation
// enabled produce byte-identical reports and readings at workers 1 and 8.
func TestFleetCycleDeterministicAcrossWorkers(t *testing.T) {
	const cycles = 5
	serial := cycleSignature(t, chaosFleet16(t, 1), cycles)
	parallel := cycleSignature(t, chaosFleet16(t, 8), cycles)
	if serial != parallel {
		t.Fatalf("fleet cycles diverge across workers 1 vs 8:\n--- workers=1 ---\n%s--- workers=8 ---\n%s",
			serial, parallel)
	}
	if !strings.Contains(serial, "delivered=") || strings.Count(serial, "reading") == 0 {
		t.Fatal("signature captured no readings — fixture too hostile to mean anything")
	}
}

// TestFleetCycleSteadyStateAllocs pins the per-cycle allocation budget so
// the wave refactor (and future changes) cannot quietly re-grow it. The
// bound covers the whole cycle: wave assembly, three waveform rounds, MAC
// bookkeeping and reading decode.
func TestFleetCycleSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool (dsp scratch) drops items under the race detector")
	}
	f := testFleet(t)
	f.Deploy(3600)
	for i := 0; i < 3; i++ { // reach steady state: plans cached, scratch grown
		if _, _, err := f.RunCycle(); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(10, func() {
		if _, _, err := f.RunCycle(); err != nil {
			t.Fatal(err)
		}
	})
	t.Logf("fleet cycle (3 nodes): %.1f allocs/cycle", avg)
	const maxAllocs = 170 // measured ~154: ~45/node round + cycle assembly, small headroom
	if avg > maxAllocs {
		t.Errorf("steady-state fleet cycle allocates %.1f/cycle, budget %d", avg, maxAllocs)
	}
}
