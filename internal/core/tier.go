package core

// Fidelity-tier polymorphism. A deployment's polling loop — cycles of
// reader-initiated polls under the MAC liveness policy — can run at two
// fidelities: the waveform tier (Fleet: sample-accurate DSP through every
// block, the ground truth) and the link-abstraction tier
// (internal/linksim: statistical per-link draws calibrated against the
// waveform tier, feasible at 10⁵–10⁶ nodes). Tier is the seam between
// them: campaign drivers, benchmarks and experiments that only consume
// cycle-level outcomes program against Tier and run unchanged on either.

// TierStats summarizes one polling cycle at any fidelity tier. The fields
// are the tier-independent subset of a cycle's outcome: counts from the
// MAC decision phase plus the delivered-SNR aggregate.
type TierStats struct {
	Polled    int // polls the cycle owed (regular schedule + due probes)
	Delivered int // polls that delivered a frame within the retry budget
	Retries   int // retransmission attempts beyond first polls
	Probes    int // quarantine re-probe attempts

	Live        int // nodes in the regular schedule after the cycle
	Quarantined int // nodes in probation after the cycle
	Dropped     int // nodes permanently removed after the cycle

	MeanSNRdB float64 // mean reported SNR across delivered polls (0 if none)
}

// Tier abstracts a fleet fidelity tier over its cycle loop.
//
// Implementations: *Fleet (waveform tier, this package) and
// *linksim.Fleet (link-abstraction tier). Seeded RunTierCycle sequences
// are deterministic for both — bit-identical at any SetWorkers width.
type Tier interface {
	// TierName identifies the fidelity tier ("waveform", "abstract").
	TierName() string
	// TierNodes returns the deployment size.
	TierNodes() int
	// RunTierCycle runs one polling cycle and summarizes it.
	RunTierCycle() (TierStats, error)
	// SetWorkers bounds the cycle's worker pool (n <= 0 → NumCPU); cycle
	// outcomes are bit-identical at any width.
	SetWorkers(n int)
}

// Fleet implements Tier at waveform fidelity.
var _ Tier = (*Fleet)(nil)

// TierName implements Tier.
func (f *Fleet) TierName() string { return "waveform" }

// TierNodes implements Tier.
func (f *Fleet) TierNodes() int { return len(f.order) }

// RunTierCycle implements Tier: one waveform cycle, summarized.
func (f *Fleet) RunTierCycle() (TierStats, error) {
	readings, rep, err := f.RunCycle()
	if err != nil {
		return TierStats{}, err
	}
	ts := TierStats{
		Polled:    rep.Polled,
		Delivered: rep.Delivered,
		Retries:   rep.Retries,
		Probes:    rep.Probes,
	}
	var snrSum float64
	for _, rd := range readings {
		snrSum += rd.SNRdB
	}
	if len(readings) > 0 {
		ts.MeanSNRdB = snrSum / float64(len(readings))
	}
	for _, st := range f.sched.Nodes() {
		switch {
		case st.Dropped:
			ts.Dropped++
		case st.Quarantined:
			ts.Quarantined++
		default:
			ts.Live++
		}
	}
	return ts, nil
}

// RunTierCycles runs n cycles on a tier and returns the per-cycle stats —
// the tier-polymorphic campaign loop E12 and the benchmarks drive.
func RunTierCycles(t Tier, n int) ([]TierStats, error) {
	out := make([]TierStats, 0, n)
	for i := 0; i < n; i++ {
		ts, err := t.RunTierCycle()
		if err != nil {
			return out, err
		}
		out = append(out, ts)
	}
	return out, nil
}
