package core_test

import (
	"fmt"

	"vab/internal/baseline"
	"vab/internal/core"
	"vab/internal/ocean"
)

// Example computes the headline numbers of the reproduction from the
// analytic link-budget tier: the VAB node's maximum range at the paper's
// BER 10⁻³ operating point, and the ratio against the prior single-element
// art at equal throughput and power.
func Example() {
	env := ocean.CharlesRiver()
	vab, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		panic(err)
	}
	bVAB := core.NewLinkBudget(env, vab)

	bPAB := core.NewLinkBudget(env, baseline.New())
	bPAB.SIPenaltyDB = core.CarrierBandSIPenaltyDB // carrier-band signaling

	rv := bVAB.MaxRange(1e-3, 5000)
	rp := bPAB.MaxRange(1e-3, 5000)
	fmt.Printf("VAB:  %.0f m at BER 1e-3\n", rv)
	fmt.Printf("PAB:  %.0f m at BER 1e-3\n", rp)
	fmt.Printf("gain: %.1fx (paper claims 15x)\n", rv/rp)
	// Output:
	// VAB:  304 m at BER 1e-3
	// PAB:  20 m at BER 1e-3
	// gain: 15.3x (paper claims 15x)
}

// ExampleLinkBudget_TermsAt itemizes the sonar equation at the paper's
// 300 m operating point.
func ExampleLinkBudget_TermsAt() {
	env := ocean.CharlesRiver()
	d, _ := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	b := core.NewLinkBudget(env, d)
	t := b.TermsAt(300)
	fmt.Printf("SL %.0f − 2·TL %.1f + G %.1f − NL %.1f + div %.1f = SNR %.1f dB\n",
		t.SourceLevelDB, t.OneWayTLDB, t.NodeGainDB, t.NoiseLevelDB, t.DiversityDB, t.ToneSNRdB)
	fmt.Printf("predicted BER: %.1e\n", t.PredictedBER)
	// Output:
	// SL 180 − 2·TL 37.2 + G -24.3 − NL 61.9 + div 2.5 = SNR 21.9 dB
	// predicted BER: 9.5e-04
}
