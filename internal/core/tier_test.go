package core

import (
	"testing"

	"vab/internal/mac"
	"vab/internal/ocean"
)

// TestFleetImplementsTier runs a small waveform fleet through the Tier
// seam and checks the stats agree with the underlying CycleReport path.
func TestFleetImplementsTier(t *testing.T) {
	env := ocean.CharlesRiver()
	design, err := NewVanAttaDesign(DefaultNodeElements, env, DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := NewFleet(
		SystemConfig{Env: env, Design: design, Range: 1, Seed: 41},
		[]NodePlacement{
			{Addr: 1, Range: 30},
			{Addr: 2, Range: 60, Orientation: 0.3},
			{Addr: 3, Range: 90, Orientation: -0.5},
		}, mac.DefaultPollPolicy())
	if err != nil {
		t.Fatal(err)
	}
	fleet.Deploy(3600)

	var tier Tier = fleet
	if tier.TierName() != "waveform" {
		t.Fatalf("tier name %q", tier.TierName())
	}
	if tier.TierNodes() != 3 {
		t.Fatalf("tier nodes %d, want 3", tier.TierNodes())
	}
	stats, err := RunTierCycles(tier, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 2 {
		t.Fatalf("got %d cycle stats, want 2", len(stats))
	}
	for i, ts := range stats {
		if ts.Polled != 3 {
			t.Fatalf("cycle %d polled %d, want 3", i, ts.Polled)
		}
		if ts.Live+ts.Quarantined+ts.Dropped != 3 {
			t.Fatalf("cycle %d liveness partition %d+%d+%d != 3", i, ts.Live, ts.Quarantined, ts.Dropped)
		}
		if ts.Delivered > 0 && ts.MeanSNRdB == 0 {
			t.Fatalf("cycle %d delivered %d but mean SNR is zero", i, ts.Delivered)
		}
	}
}
