package core

import (
	"testing"

	"vab/internal/link"
	"vab/internal/node"
	"vab/internal/ocean"
)

// buildCapture runs the downlink+node+round-trip portion of a round
// manually so the test can tamper with the capture before decoding.
func buildCapture(t *testing.T, s *System) (capture, tx []complex128, padChips int) {
	t.Helper()
	gammaBits, err := s.Node.HandleQuery(&link.Frame{Type: link.FrameQuery, Addr: s.cfg.NodeAddr})
	if err != nil || gammaBits == nil {
		t.Fatalf("node did not respond: %v", err)
	}
	spc := s.cfg.Reader.PHY.SamplesPerChip()
	pad := 4 * spc
	total := pad + len(gammaBits) + 4*spc
	tx = s.Reader.CarrierEnvelope(total)
	gamma := make([]complex128, total)
	for i, g := range gammaBits {
		gamma[pad+i] = complex(s.deltaG*g, 0)
	}
	capture, err = s.Link.RoundTrip(tx, gamma, s.nodeGain)
	if err != nil {
		t.Fatal(err)
	}
	return capture, tx, pad / spc
}

// TestBurstNoiseRecoveredByFEC injects a snapping-shrimp-style noise burst
// spanning six data bits into an otherwise healthy capture: the interleaver
// must spread it across codewords and the Hamming decoder must repair it.
func TestBurstNoiseRecoveredByFEC(t *testing.T) {
	env := ocean.CharlesRiver()
	d, err := NewVanAttaDesign(DefaultNodeElements, env, DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(SystemConfig{Env: env, Design: d, Range: 40, NodeAddr: 5, Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	s.WakeNode(3600)
	capture, tx, _ := buildCapture(t, s)
	// Clean reference decode first.
	clean := append([]complex128(nil), capture...)
	rep := s.Reader.Decode(clean, tx, node.PayloadSize)
	if !rep.OK() {
		t.Fatalf("clean capture failed: %v", rep.Err)
	}

	// Burst over ~6 bits (12 chips) in the middle of the payload, 25 dB
	// above ambient. The burst is shorter than the interleave depth in
	// bits, so every corrupted bit lands in a distinct codeword.
	spc := s.cfg.Reader.PHY.SamplesPerChip()
	mid := len(capture) / 2
	s.Link.InjectBurst(capture, mid, 12*spc, 25)
	rep2 := s.Reader.Decode(capture, tx, node.PayloadSize)
	if !rep2.OK() {
		t.Fatalf("burst not recovered: %v (corrected %d)", rep2.Err, rep2.Corrected)
	}
	if rep2.Frame.Addr != 5 {
		t.Error("frame corrupted despite recovery")
	}
}

// TestSustainedJammingFailsCleanly floods most of the capture with strong
// noise: decoding must fail with an error, never return a bogus frame.
func TestSustainedJammingFailsCleanly(t *testing.T) {
	env := ocean.CharlesRiver()
	d, _ := NewVanAttaDesign(DefaultNodeElements, env, DefaultCarrierHz)
	s, err := NewSystem(SystemConfig{Env: env, Design: d, Range: 40, NodeAddr: 5, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	s.WakeNode(3600)
	capture, tx, _ := buildCapture(t, s)
	s.Link.InjectBurst(capture, 0, len(capture), 60)
	rep := s.Reader.Decode(capture, tx, node.PayloadSize)
	if rep.OK() {
		t.Fatal("decoded a frame through 60 dB of jamming")
	}
	if rep.Err == nil {
		t.Error("failure must carry an error")
	}
}

// TestTwoNodeCollisionCapture superimposes two simultaneous node responses:
// at equal power the collision destroys both; with a strong power imbalance
// the reader captures the stronger node (the capture effect the discovery
// MAC's model assumes).
func TestTwoNodeCollisionCapture(t *testing.T) {
	env := ocean.CharlesRiver()
	d, _ := NewVanAttaDesign(DefaultNodeElements, env, DefaultCarrierHz)
	mk := func(addr byte, rng float64, seed int64) (*System, []complex128, []complex128) {
		s, err := NewSystem(SystemConfig{Env: env, Design: d, Range: rng, NodeAddr: addr, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		s.WakeNode(3600)
		cap1, tx, _ := buildCapture(t, s)
		return s, cap1, tx
	}

	// Near-equal power: 40 m vs 44 m.
	s1, c1, tx := mk(1, 40, 31)
	_, c2, _ := mk(2, 44, 37)
	n := len(c1)
	if len(c2) < n {
		n = len(c2)
	}
	sum := make([]complex128, n)
	for i := 0; i < n; i++ {
		sum[i] = c1[i] + c2[i]
	}
	rep := s1.Reader.Decode(sum, tx[:n], node.PayloadSize)
	if rep.OK() {
		t.Log("equal-power collision unexpectedly captured a frame (possible but rare); continuing")
	}

	// Strong imbalance: 30 m vs 120 m — node 1 should capture.
	s1, c1, tx = mk(1, 30, 41)
	_, c2, _ = mk(2, 120, 43)
	n = len(c1)
	if len(c2) < n {
		n = len(c2)
	}
	sum = make([]complex128, n)
	for i := 0; i < n; i++ {
		sum[i] = c1[i] + c2[i]
	}
	rep = s1.Reader.Decode(sum, tx[:n], node.PayloadSize)
	if !rep.OK() {
		t.Fatalf("capture effect failed under 4× range imbalance: %v", rep.Err)
	}
	if rep.Frame.Addr != 1 {
		t.Errorf("captured node %d, want the stronger node 1", rep.Frame.Addr)
	}
}
