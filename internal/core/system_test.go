package core

import (
	"math"
	"testing"

	"vab/internal/link"
	"vab/internal/node"
	"vab/internal/ocean"
	"vab/internal/reader"
)

func readerDefaultNoDiversity() reader.Config {
	cfg := reader.DefaultConfig()
	cfg.UseDiversity = false
	return cfg
}

func riverSystem(t *testing.T, rangeM float64, seed int64) *System {
	t.Helper()
	env := ocean.CharlesRiver()
	d, err := NewVanAttaDesign(DefaultNodeElements, env, DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(SystemConfig{
		Env:    env,
		Design: d,
		Range:  rangeM,
		Seed:   seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(SystemConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	env := ocean.CharlesRiver()
	d, _ := NewVanAttaDesign(4, env, DefaultCarrierHz)
	if _, err := NewSystem(SystemConfig{Env: env, Design: d, Range: -5}); err == nil {
		t.Error("negative range accepted")
	}
}

func TestSystemRoundAtModerateRange(t *testing.T) {
	s := riverSystem(t, 50, 3)
	s.WakeNode(3600)
	rep, err := s.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.QueryOK {
		t.Fatal("query lost at 50 m")
	}
	if rep.NodeSilent {
		t.Fatal("node silent")
	}
	if !rep.Rx.OK() {
		t.Fatalf("uplink decode failed: %v", rep.Rx.Err)
	}
	if !rep.PayloadOK {
		t.Error("payload did not parse")
	}
	if rep.Rx.Frame.Addr != s.Node.Addr() {
		t.Errorf("frame from addr %d", rep.Rx.Frame.Addr)
	}
}

func TestSystemMultipleRounds(t *testing.T) {
	s := riverSystem(t, 40, 9)
	s.WakeNode(3600)
	ok := 0
	for i := 0; i < 5; i++ {
		s.WakeNode(60) // keep the reservoir topped up between polls
		rep, err := s.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Rx.OK() {
			ok++
		}
	}
	if ok < 4 {
		t.Errorf("only %d/5 rounds decoded at 40 m", ok)
	}
	// Sequence numbers should advance.
	if s.Node.Stats().FramesReturned < 4 {
		t.Errorf("node returned %d frames", s.Node.Stats().FramesReturned)
	}
}

func TestSystemNodeStaysSilentWithoutEnergy(t *testing.T) {
	s := riverSystem(t, 50, 5)
	// No WakeNode: reservoir empty.
	rep, err := s.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.NodeSilent {
		t.Error("starved node should stay silent")
	}
	if rep.Rx.OK() {
		t.Error("reader decoded a frame nobody sent")
	}
}

func TestSystemFailsGracefullyAtExtremeRange(t *testing.T) {
	// 2 km in the river: far beyond the budget. The round must complete
	// without error and report a decode failure, not a false success.
	s := riverSystem(t, 2000, 7)
	s.WakeNode(1e7) // even with infinite patience the uplink SNR is gone
	rep, err := s.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rx.OK() {
		t.Error("decoded a frame at 2 km; budget says impossible")
	}
}

func TestSystemWaveformAgreesWithBudgetTier(t *testing.T) {
	// Cross-validation of the two fidelity tiers on the controlled channel
	// where both are unambiguous: the deep test tank has a single direct
	// path (no multipath fades or ISI to saturate the waveform SNR
	// estimator, no fading realizations to average over), so the waveform
	// simulator's per-chip SNR estimate must track the analytic budget
	// closely. Real environments are compared at the BER level instead
	// (see the experiments package), since there a single waveform
	// realization sits somewhere inside the fading distribution the budget
	// tier averages over.
	env := ocean.TestTank()
	d, err := NewVanAttaDesign(DefaultNodeElements, env, DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	for _, rng := range []float64{100, 140, 180} {
		cfg := SystemConfig{
			Env: env, Design: d, Range: rng, Seed: 33,
			ReaderDepth: 50, NodeDepth: 50,
			DisableFading: true,
		}
		cfg.Reader = readerDefaultNoDiversity()
		s, err := NewSystem(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.WakeNode(36000)
		var est []float64
		for j := 0; j < 3; j++ {
			s.WakeNode(600)
			rep, err := s.RunRound()
			if err != nil {
				t.Fatal(err)
			}
			if rep.Rx.OK() && rep.ToneSNREst > 0 {
				est = append(est, 10*math.Log10(rep.ToneSNREst))
			}
		}
		if len(est) == 0 {
			t.Fatalf("no decodes at %v m in the tank", rng)
		}
		var mean float64
		for _, v := range est {
			mean += v
		}
		mean /= float64(len(est))
		want := s.PredictedBudget().ToneSNRdB(rng)
		// The soft estimator's "losing tone" bin carries a small spectral
		// leakage floor, biasing estimates low by a few dB at high SNR.
		if math.Abs(mean-want) > 6 {
			t.Errorf("r=%v: waveform SNR %.1f dB vs budget %.1f dB", rng, mean, want)
		}
	}
}

func TestSystemOceanDeployment(t *testing.T) {
	env := ocean.AtlanticCoastal()
	d, err := NewVanAttaDesign(DefaultNodeElements, env, DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSystem(SystemConfig{
		// Near-surface mooring: the paper's coastal deployments float the
		// node below a buoy. Mid-column placement at this site suffers a
		// strong sub-critical bottom bounce 0.8 chips late (see the ISI
		// ablation bench).
		Env: env, Design: d, Range: 40, Seed: 13,
		ReaderDepth: 3, NodeDepth: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.WakeNode(3600)
	// The coastal waveguide throws strong late echoes (tens of chips of
	// ISI); like the real deployment, individual rounds can fail and the
	// polling MAC retries. Require success within a few attempts.
	ok := false
	for i := 0; i < 10 && !ok; i++ {
		s.WakeNode(60)
		rep, err := s.RunRound()
		if err != nil {
			t.Fatal(err)
		}
		ok = rep.Rx.OK()
	}
	if !ok {
		t.Error("ocean deployment failed all 10 rounds at 40 m")
	}
}

func TestCommandRoundPingAndMute(t *testing.T) {
	s := riverSystem(t, 40, 27)
	s.WakeNode(3600)
	// Ping: expect an acknowledgement frame echoing the opcode.
	acked := false
	var rep reader.RxReport
	var err error
	for i := 0; i < 4 && !acked; i++ {
		s.WakeNode(30)
		acked, rep, err = s.RunCommandRound(node.PingPayload())
		if err != nil {
			t.Fatal(err)
		}
	}
	if !acked {
		t.Fatal("ping never acknowledged")
	}
	if rep.Frame.Type != link.FrameAck || len(rep.Frame.Payload) != 1 || rep.Frame.Payload[0] != node.CmdPing {
		t.Errorf("ack frame %+v", rep.Frame)
	}

	// Mute: silently applied, and subsequent queries go unanswered.
	acked, _, err = s.RunCommandRound(node.MutePayload(600))
	if err != nil {
		t.Fatal(err)
	}
	if acked {
		t.Error("mute must not be acknowledged")
	}
	if !s.Node.Muted() {
		t.Fatal("node not muted")
	}
	roundRep, err := s.RunRound()
	if err != nil {
		t.Fatal(err)
	}
	if !roundRep.NodeSilent {
		t.Error("muted node answered a query")
	}
}

func TestRecordRoundProducesCapture(t *testing.T) {
	s := riverSystem(t, 40, 61)
	if _, err := s.RecordRound(); err == nil {
		t.Error("cold node should refuse to record")
	}
	s.WakeNode(3600)
	capture, err := s.RecordRound()
	if err != nil {
		t.Fatal(err)
	}
	if len(capture) < 10000 {
		t.Fatalf("capture of %d samples too short for a burst", len(capture))
	}
	// The capture must carry subcarrier energy somewhere.
	var peak float64
	for _, v := range capture {
		if m := real(v)*real(v) + imag(v)*imag(v); m > peak {
			peak = m
		}
	}
	if peak <= 0 {
		t.Error("empty capture")
	}
}

func TestNodeClockSkewAtSystemLevel(t *testing.T) {
	env := ocean.CharlesRiver()
	d, _ := NewVanAttaDesign(DefaultNodeElements, env, DefaultCarrierHz)
	run := func(ppm float64) int {
		ok := 0
		for seed := int64(0); seed < 6; seed++ {
			s, err := NewSystem(SystemConfig{
				Env: env, Design: d, Range: 40, NodeAddr: 1,
				NodeClockPPM: ppm, Seed: 70 + seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			s.WakeNode(3600)
			for i := 0; i < 3; i++ {
				rep, err := s.RunRound()
				if err != nil {
					t.Fatal(err)
				}
				if rep.Rx.OK() {
					ok++
					break
				}
				s.WakeNode(30)
			}
		}
		return ok
	}
	// Crystal-class error: essentially transparent.
	if got := run(100); got < 5 {
		t.Errorf("100 ppm: only %d/6 deployments decoded", got)
	}
	// Grossly wrong oscillator: the link collapses.
	if got := run(30000); got > 1 {
		t.Errorf("30000 ppm: %d/6 deployments decoded; skew not modeled?", got)
	}
}
