package core

import (
	"testing"

	"vab/internal/mac"
	"vab/internal/ocean"
)

func testFleet(t *testing.T) *Fleet {
	t.Helper()
	env := ocean.CharlesRiver()
	d, err := NewVanAttaDesign(DefaultNodeElements, env, DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewFleet(
		SystemConfig{Env: env, Design: d, Range: 1 /* overridden per node */, Seed: 51},
		[]NodePlacement{
			{Addr: 1, Range: 40},
			{Addr: 2, Range: 70, Orientation: 0.4},
			{Addr: 3, Range: 110, Orientation: -0.6},
		},
		mac.DefaultPollPolicy(),
	)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestFleetCycleDeliversReadings(t *testing.T) {
	f := testFleet(t)
	f.Deploy(3600)
	var got map[byte]bool
	// A couple of cycles: every node should deliver at least once.
	for cycle := 0; cycle < 3; cycle++ {
		readings, rep, err := f.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Polled == 0 {
			t.Fatal("nothing polled")
		}
		if got == nil {
			got = map[byte]bool{}
		}
		for _, r := range readings {
			got[r.Addr] = true
			if r.Reading.PressureMbar < 1000 || r.Reading.PressureMbar > 2000 {
				t.Errorf("node %d: implausible pressure %v", r.Addr, r.Reading.PressureMbar)
			}
		}
	}
	for _, addr := range []byte{1, 2, 3} {
		if !got[addr] {
			t.Errorf("node %d never delivered across 3 cycles", addr)
		}
	}
}

func TestFleetValidation(t *testing.T) {
	env := ocean.CharlesRiver()
	d, _ := NewVanAttaDesign(4, env, DefaultCarrierHz)
	base := SystemConfig{Env: env, Design: d, Range: 1, Seed: 1}
	if _, err := NewFleet(base, nil, mac.DefaultPollPolicy()); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, err := NewFleet(base, []NodePlacement{{Addr: 1, Range: 40}, {Addr: 1, Range: 50}}, mac.DefaultPollPolicy()); err == nil {
		t.Error("duplicate address accepted")
	}
	if _, err := NewFleet(base, []NodePlacement{{Addr: 1, Range: -4}}, mac.DefaultPollPolicy()); err == nil {
		t.Error("negative range accepted")
	}
	bad := mac.PollPolicy{MaxRetries: -1, BackoffSlots: 1}
	if _, err := NewFleet(base, []NodePlacement{{Addr: 1, Range: 40}}, bad); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestFleetSystemAccess(t *testing.T) {
	f := testFleet(t)
	if f.System(2) == nil {
		t.Error("known node missing")
	}
	if f.System(99) != nil {
		t.Error("unknown node returned a system")
	}
	if len(f.Nodes()) != 3 {
		t.Errorf("node states %d", len(f.Nodes()))
	}
}
