package core

import (
	"math"
	"testing"
	"testing/quick"

	"vab/internal/baseline"
	"vab/internal/ocean"
)

// riverVA returns the headline configuration: 16-element Van Atta node in
// the river environment.
func riverVA(t *testing.T) *LinkBudget {
	t.Helper()
	env := ocean.CharlesRiver()
	d, err := NewVanAttaDesign(DefaultNodeElements, env, DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	return NewLinkBudget(env, d)
}

// riverPAB returns the prior-art baseline in the same environment: single
// element, carrier-band signaling (self-interference penalty applies).
func riverPAB() *LinkBudget {
	b := NewLinkBudget(ocean.CharlesRiver(), baseline.New())
	b.SIPenaltyDB = CarrierBandSIPenaltyDB
	return b
}

// TestCalibrationAnchors locks the two quantitative claims from the paper's
// abstract. These assertions pin the calibration constants: if a model
// change moves them, the constants in calibration.go must be re-derived.
func TestCalibrationAnchors(t *testing.T) {
	va := riverVA(t)
	vaRange := va.MaxRange(1e-3, 5000)
	if vaRange < 280 || vaRange > 340 {
		t.Errorf("VAB river range at BER 1e-3 = %.0f m, want ~300 (abstract: >300 m round trip)", vaRange)
	}
	pabRange := riverPAB().MaxRange(1e-3, 5000)
	if pabRange < 14 || pabRange > 28 {
		t.Errorf("baseline range = %.0f m, want ~20", pabRange)
	}
	ratio := vaRange / pabRange
	if ratio < 11 || ratio > 19 {
		t.Errorf("range ratio %.1f×, abstract claims 15×", ratio)
	}
}

func TestBudgetValidate(t *testing.T) {
	b := riverVA(t)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	b.ChipRate = 0
	if b.Validate() == nil {
		t.Error("zero chip rate accepted")
	}
	b = riverVA(t)
	b.ReaderDepth = 99
	if b.Validate() == nil {
		t.Error("depth below bottom accepted")
	}
	var empty LinkBudget
	if empty.Validate() == nil {
		t.Error("empty budget accepted")
	}
}

func TestSNRMonotoneDecreasingInRange(t *testing.T) {
	b := riverVA(t)
	prev := math.Inf(1)
	for r := 10.0; r <= 2000; r *= 1.4 {
		snr := b.ToneSNRdB(r)
		if snr >= prev {
			t.Fatalf("SNR not decreasing at r=%v", r)
		}
		prev = snr
	}
}

func TestBERMonotoneIncreasingInRange(t *testing.T) {
	b := riverVA(t)
	prev := 0.0
	for r := 10.0; r <= 2000; r *= 1.3 {
		ber := b.BER(r)
		if ber < prev-1e-12 {
			t.Fatalf("BER decreased at r=%v", r)
		}
		prev = ber
	}
}

func TestMaxRangeConsistent(t *testing.T) {
	b := riverVA(t)
	r := b.MaxRange(1e-3, 5000)
	if b.BER(r*0.98) > 1e-3 {
		t.Errorf("BER just inside max range exceeds target")
	}
	if b.BER(r*1.05) < 1e-3 {
		t.Errorf("BER just outside max range meets target")
	}
	// Impossible target → 0.
	b.SourceLevelDB = 100
	if got := b.MaxRange(1e-12, 5000); got != 0 {
		t.Errorf("impossible target returned %v", got)
	}
}

func TestMaxRangeLimitClamp(t *testing.T) {
	b := riverVA(t)
	b.SourceLevelDB = 230 // absurdly loud
	if got := b.MaxRange(0.4, 100); got != 100 {
		t.Errorf("limit clamp returned %v", got)
	}
}

func TestOceanHarderThanRiver(t *testing.T) {
	env := ocean.AtlanticCoastal()
	d, err := NewVanAttaDesign(DefaultNodeElements, env, DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	sea := NewLinkBudget(env, d)
	river := riverVA(t)
	rSea := sea.MaxRange(1e-3, 5000)
	rRiver := river.MaxRange(1e-3, 5000)
	if rSea >= rRiver {
		t.Errorf("ocean range %.0f m should trail river %.0f m (noise + absorption)", rSea, rRiver)
	}
	// But the system still works at useful coastal ranges.
	if rSea < 60 {
		t.Errorf("ocean range %.0f m too short; the paper validated ocean operation", rSea)
	}
}

func TestGainScalesWithElements(t *testing.T) {
	env := ocean.CharlesRiver()
	prev := math.Inf(-1)
	for _, n := range []int{2, 4, 8, 16, 32} {
		d, err := NewVanAttaDesign(n, env, DefaultCarrierHz)
		if err != nil {
			t.Fatal(err)
		}
		g := EffectiveGainDB(d, DefaultCarrierHz, 0.4)
		if g <= prev {
			t.Fatalf("gain not increasing at n=%d", n)
		}
		// Doubling elements adds ~6 dB (N² power scaling), minus nothing
		// else at fixed orientation.
		if prev != math.Inf(-1) && math.Abs((g-prev)-6.02) > 0.3 {
			t.Errorf("n=%d: gain step %.2f dB, want ~6", n, g-prev)
		}
		prev = g
	}
}

func TestOrientationInsensitivityVanAtta(t *testing.T) {
	b := riverVA(t)
	r0 := b.MaxRange(1e-3, 5000)
	for _, deg := range []float64{15, 30, 45, 60} {
		b.Orientation = deg * math.Pi / 180
		r := b.MaxRange(1e-3, 5000)
		if math.Abs(r-r0)/r0 > 0.05 {
			t.Errorf("van atta range at %v° = %.0f m, drifted from %.0f m", deg, r, r0)
		}
	}
}

func TestOrientationCollapseSpecular(t *testing.T) {
	env := ocean.CharlesRiver()
	d, err := NewSpecularDesign(DefaultNodeElements, env, DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	b := NewLinkBudget(env, d)
	r0 := b.MaxRange(1e-3, 5000)
	b.Orientation = 30 * math.Pi / 180
	r30 := b.MaxRange(1e-3, 5000)
	if r30 > r0/2 {
		t.Errorf("specular array range should collapse off broadside: %.0f → %.0f m", r0, r30)
	}
}

func TestDiversityExtendsRange(t *testing.T) {
	with := riverVA(t)
	without := riverVA(t)
	without.DiversityBranches = 1
	without.DiversityGainDB = 0
	rw := with.MaxRange(1e-3, 5000)
	ro := without.MaxRange(1e-3, 5000)
	if rw <= ro {
		t.Errorf("diversity should extend range: %.0f vs %.0f m", rw, ro)
	}
}

func TestEffectiveRicianK(t *testing.T) {
	b := riverVA(t)
	b.RicianOverride = 1.0
	b.DiversityBranches = 4
	if got := b.EffectiveRicianK(100); math.Abs(got-7) > 1e-12 {
		t.Errorf("K_eff = %v, want 7 (L-1+L·K)", got)
	}
	b.DiversityBranches = 0 // treated as 1
	if got := b.EffectiveRicianK(100); math.Abs(got-1) > 1e-12 {
		t.Errorf("K_eff = %v, want 1", got)
	}
	b.RicianOverride = math.Inf(1)
	if !math.IsInf(b.EffectiveRicianK(100), 1) {
		t.Error("infinite K should stay infinite")
	}
}

func TestTermsAtConsistency(t *testing.T) {
	b := riverVA(t)
	terms := b.TermsAt(150)
	recomputed := terms.SourceLevelDB - 2*terms.OneWayTLDB + terms.NodeGainDB -
		terms.NoiseLevelDB + terms.DiversityDB - terms.SIPenaltyDB
	if math.Abs(recomputed-terms.ToneSNRdB) > 1e-9 {
		t.Errorf("terms don't add up: %v vs %v", recomputed, terms.ToneSNRdB)
	}
	if terms.DelaySpreadSec <= 0 {
		t.Error("river multipath should have positive delay spread")
	}
	if terms.PredictedBER != b.BER(150) {
		t.Error("terms BER inconsistent")
	}
}

func TestBaselineDepthPenalty(t *testing.T) {
	pab := baseline.New()
	pen := pab.DepthPenaltyDB(DefaultCarrierHz)
	if pen < 2 || pen > 12 {
		t.Errorf("unmatched depth penalty %.1f dB implausible", pen)
	}
	if pab.Elements() != 1 || pab.Name() == "" {
		t.Error("metadata wrong")
	}
}

func TestDesignMetadata(t *testing.T) {
	env := ocean.CharlesRiver()
	va, _ := NewVanAttaDesign(16, env, DefaultCarrierHz)
	if va.Name() != "van-atta-16" || va.Elements() != 16 {
		t.Errorf("metadata: %s/%d", va.Name(), va.Elements())
	}
	sp, _ := NewSpecularDesign(8, env, DefaultCarrierHz)
	if sp.Name() != "specular-8" || sp.Elements() != 8 {
		t.Errorf("metadata: %s/%d", sp.Name(), sp.Elements())
	}
	if _, err := NewVanAttaDesign(0, env, DefaultCarrierHz); err == nil {
		t.Error("zero elements accepted")
	}
}

func TestBERBoundsProperty(t *testing.T) {
	// BER must live in [0, 0.5] at every range, orientation and rate.
	b := riverVA(t)
	f := func(rRaw, thRaw, rateRaw float64) bool {
		r := 1 + math.Mod(math.Abs(rRaw), 5000)
		bb := *b
		bb.Orientation = math.Mod(thRaw, math.Pi)
		bb.ChipRate = 125 * math.Pow(2, math.Mod(math.Abs(rateRaw), 5))
		v := bb.BER(r)
		return v >= 0 && v <= 0.5+1e-12 && !math.IsNaN(v)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
