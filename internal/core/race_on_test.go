//go:build race

package core

// raceEnabled reports whether the race detector is active. sync.Pool
// intentionally drops items under the race detector to shake out unsynchronized
// reuse, so steady-state allocation pins on pooled-scratch paths are skipped.
const raceEnabled = true
