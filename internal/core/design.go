// Package core assembles the VAB system out of its substrates: node designs
// (Van Atta arrays with matched switching networks, and the single-element
// prior art they are compared against), calibrated link budgets that predict
// SNR and BER versus range, and a waveform-level System that runs full
// query-response rounds between a reader and battery-free nodes over the
// simulated acoustic channel.
package core

import (
	"fmt"
	"math"

	"vab/internal/ocean"
	"vab/internal/piezo"
	"vab/internal/vanatta"
)

// Design abstracts how a backscatter node converts incident acoustic energy
// into a modulated reflection: the quantity that differentiates VAB from
// prior single-element backscatter.
type Design interface {
	// Name identifies the design in tables and reports.
	Name() string
	// ScatterField returns the complex monostatic field conversion gain at
	// carrier frequency fHz for a reader at angle theta (radians from the
	// array normal), normalized to a single ideal element. It includes the
	// element transduction roll-off and array/interconnect effects, but not
	// the modulation depth or structural scattering loss.
	ScatterField(fHz, theta float64) complex128
	// ModulationDepth returns |Γ_on − Γ_off|/2 at fHz for the design's two
	// switch states, including any matching network.
	ModulationDepth(fHz float64) float64
	// Elements returns the transducer count (power scaling context).
	Elements() int
}

// CloneableDesign is a Design that can duplicate itself with private
// mutable state. NewFleet clones the base design once per node so that
// element-fault injection — which mutates the design's array — cannot
// race across the fleet's concurrent poll waves, and so one node's dead
// elements never alter a neighbour's scatter gain.
type CloneableDesign interface {
	Design
	// CloneDesign returns a deep copy whose mutable state (the array's
	// geometry and fault flags) is independent of the receiver's.
	CloneDesign() Design
}

// VanAttaDesign is the paper's node: an N-element Van Atta array of
// piezoelectric transducers whose pair interconnects are toggled between a
// through state (retrodirective reflection) and a matched termination
// (absorption), with L-section matching networks keeping the pairs tuned.
type VanAttaDesign struct {
	Array *vanatta.Array
	Trans *piezo.Transducer

	// OnLoad/OffLoad are the electrical termination states the modulation
	// switch selects between.
	OnLoad, OffLoad complex128
}

// NewVanAttaDesign builds the standard VAB node: n elements (even counts
// pair fully) at half-wavelength spacing for the given environment, matched
// switching between a short (reflective) and the conjugate load
// (absorptive).
func NewVanAttaDesign(n int, env *ocean.Environment, fcHz float64) (*VanAttaDesign, error) {
	tr := piezo.MustDefault()
	c := env.MeanSoundSpeed()
	arr, err := vanatta.NewUniformLinear(n, c/fcHz/2, tr, c)
	if err != nil {
		return nil, fmt.Errorf("core: van atta design: %w", err)
	}
	return &VanAttaDesign{
		Array:   arr,
		Trans:   tr,
		OnLoad:  piezo.ShortLoad,
		OffLoad: tr.MatchedLoad(fcHz),
	}, nil
}

// Name implements Design.
func (d *VanAttaDesign) Name() string {
	return fmt.Sprintf("van-atta-%d", d.Array.N())
}

// Elements implements Design.
func (d *VanAttaDesign) Elements() int { return d.Array.N() }

// ScatterField implements Design using the retrodirective array response.
func (d *VanAttaDesign) ScatterField(fHz, theta float64) complex128 {
	dir := vanatta.DirectionXZ(theta)
	return d.Array.Scatter(fHz, dir, dir)
}

// ModulationDepth implements Design.
func (d *VanAttaDesign) ModulationDepth(fHz float64) float64 {
	return d.Trans.ModulationDepth(fHz, d.OnLoad, d.OffLoad)
}

// CloneDesign implements CloneableDesign: the array (the only mutable
// state — fault injection flips its element flags) is deep-copied, the
// read-only transducer model is shared.
func (d *VanAttaDesign) CloneDesign() Design {
	c := *d
	c.Array = d.Array.Clone()
	return &c
}

// SpecularDesign is the ablation baseline with the same aperture as a Van
// Atta array but elements terminated individually: it shows that the gain
// of VAB comes from retrodirectivity, not merely from having N elements.
type SpecularDesign struct {
	VanAttaDesign
}

// NewSpecularDesign builds an n-element specular (non-retrodirective)
// array node.
func NewSpecularDesign(n int, env *ocean.Environment, fcHz float64) (*SpecularDesign, error) {
	va, err := NewVanAttaDesign(n, env, fcHz)
	if err != nil {
		return nil, err
	}
	return &SpecularDesign{VanAttaDesign: *va}, nil
}

// Name implements Design.
func (d *SpecularDesign) Name() string {
	return fmt.Sprintf("specular-%d", d.Array.N())
}

// ScatterField implements Design using the individually terminated
// response.
func (d *SpecularDesign) ScatterField(fHz, theta float64) complex128 {
	dir := vanatta.DirectionXZ(theta)
	return d.Array.ScatterSpecular(fHz, dir, dir)
}

// CloneDesign implements CloneableDesign (the specular variant clones the
// same underlying array).
func (d *SpecularDesign) CloneDesign() Design {
	c := *d
	c.Array = d.Array.Clone()
	return &c
}

// EffectiveGainDB returns the design's full conversion gain in dB at fHz
// and orientation theta: field gain, modulation depth, the square-wave
// fundamental factor 2/π, and the structural scattering loss shared by all
// small piezo scatterers (see calibration.go).
func EffectiveGainDB(d Design, fHz, theta float64) float64 {
	field := d.ScatterField(fHz, theta)
	m := real(field)*real(field) + imag(field)*imag(field)
	if m == 0 {
		return math.Inf(-1)
	}
	return 10*math.Log10(m) +
		20*math.Log10(d.ModulationDepth(fHz)*2/math.Pi) -
		StructuralLossDB
}
