package core

import (
	"fmt"
	"math"

	"vab/internal/ocean"
	"vab/internal/phy"
)

// LinkBudget predicts uplink detection performance analytically: the
// link-level fidelity tier used for wide range sweeps and Monte-Carlo
// campaigns. Its terms mirror the sonar equation for a round trip:
//
//	SNR_tone = SL − 2·TL(r) + G_node(θ) − NL(bin) + G_div − L_SI
//
// where G_node bundles the design's scatter field gain, modulation depth,
// square-wave fundamental factor and structural loss; NL is ambient noise
// in one Goertzel bin (bandwidth = chip rate); G_div the diversity gain and
// L_SI the in-band self-interference penalty (both design/receiver
// dependent).
type LinkBudget struct {
	Env    *ocean.Environment
	Design Design

	CarrierHz     float64
	ChipRate      float64 // detection bin bandwidth
	SourceLevelDB float64

	ReaderDepth float64
	NodeDepth   float64
	Orientation float64 // node rotation seen from the reader, radians

	// Receiver/architecture adjustments (dB).
	DiversityGainDB float64
	SIPenaltyDB     float64

	// DiversityBranches is the number of resolvable multipath arrivals the
	// combiner exploits (1 = no combining). Combining L Rician branches is
	// approximated as a single branch with K_eff = L−1+L·K, the standard
	// Nakagami-m correspondence (m ≈ L ⇒ K ≈ m−1 for the diffuse part).
	DiversityBranches int

	// RicianOverride forces a Rician K-factor (linear) instead of deriving
	// it from multipath geometry; NaN (default) derives it.
	RicianOverride float64
}

// NewLinkBudget returns a budget with the calibrated defaults for the given
// environment and design, at the standard numerology and geometry.
func NewLinkBudget(env *ocean.Environment, d Design) *LinkBudget {
	p := phy.DefaultParams()
	return &LinkBudget{
		Env:               env,
		Design:            d,
		CarrierHz:         DefaultCarrierHz,
		ChipRate:          p.ChipRate,
		SourceLevelDB:     DefaultSourceLevelDB,
		ReaderDepth:       0.4 * env.Depth, // staggered: see SystemConfig
		NodeDepth:         0.6 * env.Depth,
		DiversityGainDB:   DiversityGainDB,
		DiversityBranches: DefaultDiversityBranches,
		RicianOverride:    math.NaN(),
	}
}

// Validate reports configuration problems.
func (b *LinkBudget) Validate() error {
	if b.Env == nil || b.Design == nil {
		return fmt.Errorf("core: budget needs environment and design")
	}
	if err := b.Env.Validate(); err != nil {
		return err
	}
	if b.CarrierHz <= 0 || b.ChipRate <= 0 {
		return fmt.Errorf("core: carrier %.3g / chip rate %.3g must be positive", b.CarrierHz, b.ChipRate)
	}
	if b.ReaderDepth <= 0 || b.ReaderDepth > b.Env.Depth || b.NodeDepth <= 0 || b.NodeDepth > b.Env.Depth {
		return fmt.Errorf("core: depths outside water column")
	}
	return nil
}

// ToneSNRdB returns the per-chip tone SNR in dB at horizontal range r
// meters (one-way; the backscatter travels 2r in total).
func (b *LinkBudget) ToneSNRdB(r float64) float64 {
	tl := b.Env.TransmissionLoss(b.CarrierHz, r)
	gNode := EffectiveGainDB(b.Design, b.CarrierHz, b.Orientation)
	nl := b.Env.NoiseLevel(b.CarrierHz, b.ChipRate)
	return b.SourceLevelDB - 2*tl + gNode - nl + b.DiversityGainDB - b.SIPenaltyDB
}

// RicianK returns the fading K-factor (linear) at range r, from the
// multipath geometry unless overridden.
func (b *LinkBudget) RicianK(r float64) float64 {
	if !math.IsNaN(b.RicianOverride) {
		return b.RicianOverride
	}
	arr := b.Env.Multipath(ocean.Geometry{
		SourceDepth: b.ReaderDepth, ReceiverDepth: b.NodeDepth, Range: r,
	}, ocean.DefaultMultipathConfig(b.CarrierHz))
	kdb := ocean.RicianK(arr)
	if math.IsInf(kdb, 1) {
		return math.Inf(1)
	}
	return math.Pow(10, kdb/10)
}

// EffectiveRicianK returns the fading K-factor (linear) after diversity
// combining at range r.
func (b *LinkBudget) EffectiveRicianK(r float64) float64 {
	k := b.RicianK(r)
	l := float64(b.DiversityBranches)
	if l < 1 {
		l = 1
	}
	if math.IsInf(k, 1) {
		return k
	}
	return l - 1 + l*k
}

// BER returns the predicted raw chip error rate at range r: noncoherent
// FSK over the (diversity-combined) Rician fading implied by the local
// multipath geometry.
func (b *LinkBudget) BER(r float64) float64 {
	ebn0 := math.Pow(10, b.ToneSNRdB(r)/10)
	return phy.BERNoncoherentFSKRician(ebn0, b.EffectiveRicianK(r))
}

// MaxRange returns the largest range (meters) at which the predicted BER
// stays at or below target, searched over [1, limit] by bisection. Returns
// 0 when even 1 m misses the target.
func (b *LinkBudget) MaxRange(targetBER, limit float64) float64 {
	if b.BER(1) > targetBER {
		return 0
	}
	lo, hi := 1.0, limit
	if b.BER(hi) <= targetBER {
		return hi
	}
	for i := 0; i < 80; i++ {
		mid := (lo + hi) / 2
		if b.BER(mid) <= targetBER {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// Terms itemizes the budget at range r for reporting.
type Terms struct {
	SourceLevelDB  float64
	OneWayTLDB     float64
	NodeGainDB     float64
	NoiseLevelDB   float64
	DiversityDB    float64
	SIPenaltyDB    float64
	ToneSNRdB      float64
	RicianKdB      float64
	PredictedBER   float64
	DelaySpreadSec float64
}

// TermsAt evaluates every budget term at range r.
func (b *LinkBudget) TermsAt(r float64) Terms {
	arr := b.Env.Multipath(ocean.Geometry{
		SourceDepth: b.ReaderDepth, ReceiverDepth: b.NodeDepth, Range: r,
	}, ocean.DefaultMultipathConfig(b.CarrierHz))
	k := b.RicianK(r)
	kdb := math.Inf(1)
	if !math.IsInf(k, 1) {
		kdb = 10 * math.Log10(k)
	}
	return Terms{
		SourceLevelDB:  b.SourceLevelDB,
		OneWayTLDB:     b.Env.TransmissionLoss(b.CarrierHz, r),
		NodeGainDB:     EffectiveGainDB(b.Design, b.CarrierHz, b.Orientation),
		NoiseLevelDB:   b.Env.NoiseLevel(b.CarrierHz, b.ChipRate),
		DiversityDB:    b.DiversityGainDB,
		SIPenaltyDB:    b.SIPenaltyDB,
		ToneSNRdB:      b.ToneSNRdB(r),
		RicianKdB:      kdb,
		PredictedBER:   b.BER(r),
		DelaySpreadSec: ocean.DelaySpread(arr),
	}
}
