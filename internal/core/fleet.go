package core

import (
	"fmt"
	"math"

	"vab/internal/faults"
	"vab/internal/mac"
	"vab/internal/node"
	"vab/internal/telemetry"
)

// Fleet is a multi-node deployment: one reader polling several battery-free
// nodes through their individual channel geometries, under the MAC layer's
// retry/liveness policy. It is the object a monitoring application holds —
// cmd/vabgw and examples/coastal are thin wrappers around it.
type Fleet struct {
	sched   *mac.Scheduler
	systems map[byte]*System
	order   []byte
	rate    *mac.RateController

	// Link-quality accumulators across every decoded frame: corrected FEC
	// bits per delivered frame is the campaign's residual-BER proxy.
	frames    int64
	corrected int64
}

// NodePlacement positions one node of a fleet.
type NodePlacement struct {
	Addr        byte
	Range       float64 // m from the reader
	Orientation float64 // rad
	Depth       float64 // m; 0 → the system default
}

// NewFleet builds a fleet: one waveform-level System per placement, all
// sharing the environment and design from the base config (whose Range,
// Orientation, NodeAddr and NodeDepth fields are overridden per node).
func NewFleet(base SystemConfig, placements []NodePlacement, policy mac.PollPolicy) (*Fleet, error) {
	if len(placements) == 0 {
		return nil, fmt.Errorf("core: fleet needs at least one node")
	}
	f := &Fleet{systems: make(map[byte]*System)}
	var err error
	f.sched, err = mac.NewScheduler(fleetTrx{f}, policy)
	if err != nil {
		return nil, err
	}
	for i, p := range placements {
		if _, dup := f.systems[p.Addr]; dup {
			return nil, fmt.Errorf("core: duplicate node address %d", p.Addr)
		}
		cfg := base
		cfg.NodeAddr = p.Addr
		cfg.Range = p.Range
		cfg.Orientation = p.Orientation
		cfg.NodeDepth = p.Depth
		cfg.Seed = base.Seed + int64(i+1)*1009
		s, err := NewSystem(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", p.Addr, err)
		}
		f.systems[p.Addr] = s
		f.order = append(f.order, p.Addr)
		f.sched.AddNode(p.Addr)
	}
	return f, nil
}

// fleetTrx adapts the per-node systems to the MAC scheduler.
type fleetTrx struct{ f *Fleet }

// Poll implements mac.Transceiver.
func (t fleetTrx) Poll(addr byte) (mac.RoundResult, error) {
	s, ok := t.f.systems[addr]
	if !ok {
		return mac.RoundResult{}, fmt.Errorf("core: unknown node %d", addr)
	}
	// Rate stepdown actuation: if the controller moved since this node's
	// last poll, rebuild its PHY chain at the commanded chip rate.
	if t.f.rate != nil {
		if r := t.f.rate.Rate(); r != s.ChipRate() {
			if err := s.SetChipRate(r); err != nil {
				return mac.RoundResult{}, err
			}
		}
	}
	s.WakeNode(30)
	rep, err := s.RunRound()
	if err != nil {
		return mac.RoundResult{}, err
	}
	if !rep.Rx.OK() {
		return mac.RoundResult{}, nil
	}
	t.f.frames++
	t.f.corrected += int64(rep.Rx.Corrected)
	snr := 0.0
	if rep.ToneSNREst > 0 {
		snr = 10 * math.Log10(rep.ToneSNREst)
	}
	return mac.RoundResult{OK: true, Payload: rep.Rx.Frame.Payload, SNRdB: snr}, nil
}

// Instrument wires telemetry through every layer the fleet owns: the MAC
// scheduler's polling counters and each per-node system's round tracer
// and receive-chain metrics. All systems share one registry, so counters
// aggregate fleet-wide. A nil registry is a no-op; call before RunCycle.
func (f *Fleet) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	f.sched.Instrument(reg)
	for _, addr := range f.order {
		f.systems[addr].Instrument(reg)
	}
}

// SetFaultEngine attaches one fault-injection engine to every node system
// in the fleet (nil detaches and heals). All systems share the engine:
// Plan is a pure function of the round index, so sharing is safe and keeps
// the whole fleet on one scenario clock.
func (f *Fleet) SetFaultEngine(e *faults.Engine) {
	for _, addr := range f.order {
		f.systems[addr].SetFaultEngine(e)
	}
}

// EnableRateAdaptation wires a rate controller through the stack: the
// scheduler feeds it per-cycle SNR/loss observations, and each poll
// rebuilds the polled node's PHY chain whenever the commanded rate moved —
// the closed loop behind SNR-triggered rate stepdown.
func (f *Fleet) EnableRateAdaptation(rc *mac.RateController) {
	f.rate = rc
	f.sched.SetRateController(rc)
}

// Scheduler exposes the MAC scheduler for policy-level inspection.
func (f *Fleet) Scheduler() *mac.Scheduler { return f.sched }

// LinkQuality returns the running totals of delivered frames and FEC
// corrections inside them — corrected/frames tracks how close delivered
// traffic sat to the FEC cliff.
func (f *Fleet) LinkQuality() (frames, corrected int64) { return f.frames, f.corrected }

// Deploy charges every node for the given duration (the pre-campaign
// soak).
func (f *Fleet) Deploy(seconds float64) {
	for _, addr := range f.order {
		f.systems[addr].WakeNode(seconds)
	}
}

// FleetReading is one delivered sensor reading with link metadata.
type FleetReading struct {
	Addr    byte
	Reading node.Reading
	SNRdB   float64
}

// RunCycle polls every live node once (with the policy's retries) and
// returns the decoded readings.
func (f *Fleet) RunCycle() ([]FleetReading, mac.CycleReport, error) {
	rep, err := f.sched.RunCycle()
	if err != nil {
		return nil, rep, err
	}
	var out []FleetReading
	for _, addr := range f.order {
		payload, ok := rep.Payloads[addr]
		if !ok {
			continue
		}
		rd, ok := node.DecodeReading(payload)
		if !ok {
			continue
		}
		var snr float64
		for _, st := range f.sched.Nodes() {
			if st.Addr == addr {
				snr = st.LastSNRdB
			}
		}
		out = append(out, FleetReading{Addr: addr, Reading: rd, SNRdB: snr})
	}
	return out, rep, nil
}

// Nodes returns the MAC-layer bookkeeping per node.
func (f *Fleet) Nodes() []mac.NodeState { return f.sched.Nodes() }

// System returns the per-node system (nil for unknown addresses), for
// advanced access such as ranging rounds or commands.
func (f *Fleet) System(addr byte) *System { return f.systems[addr] }
