package core

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"vab/internal/faults"
	"vab/internal/mac"
	"vab/internal/node"
	"vab/internal/telemetry"
)

// Fleet is a multi-node deployment: one reader polling several battery-free
// nodes through their individual channel geometries, under the MAC layer's
// retry/liveness policy. It is the object a monitoring application holds —
// cmd/vabgw and examples/coastal are thin wrappers around it.
//
// Cycles execute as waves (see mac.Scheduler): SetWorkers widens the poll
// pool so a cycle's waveform rounds run concurrently, one worker per
// node. Every System owns its channel, RNG stream, scratch buffers and —
// via design cloning in NewFleet — its Van Atta array, so concurrent
// rounds share no mutable state and cycle output is bit-identical at any
// worker count.
type Fleet struct {
	sched   *mac.Scheduler
	systems map[byte]*System
	order   []byte // ascending node addresses
	rate    *mac.RateController

	// Link-quality accumulators across every decoded frame: corrected FEC
	// bits per delivered frame is the campaign's residual-BER proxy.
	// Atomic because concurrent wave polls all report through fleetTrx.
	frames    atomic.Int64
	corrected atomic.Int64
}

// NodePlacement positions one node of a fleet.
type NodePlacement struct {
	Addr        byte
	Range       float64 // m from the reader
	Orientation float64 // rad
	Depth       float64 // m; 0 → the system default
}

// NewFleet builds a fleet: one waveform-level System per placement, all
// sharing the environment and design from the base config (whose Range,
// Orientation, NodeAddr and NodeDepth fields are overridden per node).
func NewFleet(base SystemConfig, placements []NodePlacement, policy mac.PollPolicy) (*Fleet, error) {
	if len(placements) == 0 {
		return nil, fmt.Errorf("core: fleet needs at least one node")
	}
	f := &Fleet{systems: make(map[byte]*System)}
	var err error
	f.sched, err = mac.NewScheduler(fleetTrx{f}, policy)
	if err != nil {
		return nil, err
	}
	for i, p := range placements {
		if _, dup := f.systems[p.Addr]; dup {
			return nil, fmt.Errorf("core: duplicate node address %d", p.Addr)
		}
		cfg := base
		cfg.NodeAddr = p.Addr
		cfg.Range = p.Range
		cfg.Orientation = p.Orientation
		cfg.NodeDepth = p.Depth
		cfg.Seed = base.Seed + int64(i+1)*1009
		// Give each node its own design instance when the design supports
		// it: element-fault injection mutates the design's array, so a
		// shared instance would race under concurrent waves (and bleed one
		// node's dead elements into a neighbour's cached gain even
		// serially).
		if cd, ok := base.Design.(CloneableDesign); ok {
			cfg.Design = cd.CloneDesign()
		}
		s, err := NewSystem(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: node %d: %w", p.Addr, err)
		}
		f.systems[p.Addr] = s
		f.order = append(f.order, p.Addr)
		f.sched.AddNode(p.Addr)
	}
	// Reports and readings are assembled in ascending address order — the
	// determinism contract's fixed output order — regardless of how the
	// placements were listed.
	sort.Slice(f.order, func(i, j int) bool { return f.order[i] < f.order[j] })
	return f, nil
}

// SetWorkers bounds the concurrent poll pool RunCycle fans each wave
// over: n <= 0 selects runtime.NumCPU(), 1 (the default) polls serially.
// Seeded cycle output is bit-identical at any width — only wall clock
// changes, from O(nodes) rounds per cycle to O(nodes/workers).
func (f *Fleet) SetWorkers(n int) { f.sched.SetWorkers(n) }

// fleetTrx adapts the per-node systems to the MAC scheduler. It
// implements mac.WaveTransceiver: concurrent polls are safe because every
// poll touches only its own node's System (plus the fleet's atomic
// accumulators).
type fleetTrx struct{ f *Fleet }

// Poll implements mac.Transceiver — the path taken when no rate
// controller is attached (or by external callers driving the transceiver
// directly): the controller's current command is applied inline.
func (t fleetTrx) Poll(addr byte) (mac.RoundResult, error) {
	s, ok := t.f.systems[addr]
	if !ok {
		return mac.RoundResult{}, fmt.Errorf("core: unknown node %d", addr)
	}
	if t.f.rate != nil {
		if r := t.f.rate.Rate(); r != s.ChipRate() {
			if err := s.SetChipRate(r); err != nil {
				return mac.RoundResult{}, err
			}
		}
	}
	return t.poll(s)
}

// PollAt implements mac.WaveTransceiver: the scheduler snapshots the rate
// controller's command once per wave and the worker that owns the polled
// system applies it here — rate stepdown actuation without any shared
// read of the controller from inside a wave.
func (t fleetTrx) PollAt(addr byte, chipRate float64) (mac.RoundResult, error) {
	s, ok := t.f.systems[addr]
	if !ok {
		return mac.RoundResult{}, fmt.Errorf("core: unknown node %d", addr)
	}
	if chipRate > 0 && chipRate != s.ChipRate() {
		if err := s.SetChipRate(chipRate); err != nil {
			return mac.RoundResult{}, err
		}
	}
	return t.poll(s)
}

// poll runs one waveform round against a node system and maps the result
// into MAC terms.
func (t fleetTrx) poll(s *System) (mac.RoundResult, error) {
	s.WakeNode(30)
	rep, err := s.RunRound()
	if err != nil {
		return mac.RoundResult{}, err
	}
	if !rep.Rx.OK() {
		return mac.RoundResult{}, nil
	}
	t.f.frames.Add(1)
	t.f.corrected.Add(int64(rep.Rx.Corrected))
	snr := 0.0
	if rep.ToneSNREst > 0 {
		snr = 10 * math.Log10(rep.ToneSNREst)
	}
	return mac.RoundResult{OK: true, Payload: rep.Rx.Frame.Payload, SNRdB: snr}, nil
}

// Instrument wires telemetry through every layer the fleet owns: the MAC
// scheduler's polling counters and each per-node system's round tracer
// and receive-chain metrics. All systems share one registry, so counters
// aggregate fleet-wide. A nil registry is a no-op; call before RunCycle.
func (f *Fleet) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	f.sched.Instrument(reg)
	for _, addr := range f.order {
		f.systems[addr].Instrument(reg)
	}
}

// SetFaultEngine attaches one fault-injection engine to every node system
// in the fleet (nil detaches and heals). All systems share the engine:
// Plan is a pure function of the round index, so sharing is safe and keeps
// the whole fleet on one scenario clock.
func (f *Fleet) SetFaultEngine(e *faults.Engine) {
	for _, addr := range f.order {
		f.systems[addr].SetFaultEngine(e)
	}
}

// EnableRateAdaptation wires a rate controller through the stack: the
// scheduler feeds it per-cycle SNR/loss observations, and each poll
// rebuilds the polled node's PHY chain whenever the commanded rate moved —
// the closed loop behind SNR-triggered rate stepdown.
func (f *Fleet) EnableRateAdaptation(rc *mac.RateController) {
	f.rate = rc
	f.sched.SetRateController(rc)
}

// Scheduler exposes the MAC scheduler for policy-level inspection.
func (f *Fleet) Scheduler() *mac.Scheduler { return f.sched }

// LinkQuality returns the running totals of delivered frames and FEC
// corrections inside them — corrected/frames tracks how close delivered
// traffic sat to the FEC cliff.
func (f *Fleet) LinkQuality() (frames, corrected int64) {
	return f.frames.Load(), f.corrected.Load()
}

// Deploy charges every node for the given duration (the pre-campaign
// soak).
func (f *Fleet) Deploy(seconds float64) {
	for _, addr := range f.order {
		f.systems[addr].WakeNode(seconds)
	}
}

// FleetReading is one delivered sensor reading with link metadata.
type FleetReading struct {
	Addr    byte
	Reading node.Reading
	SNRdB   float64
}

// RunCycle polls every live node once (with the policy's retries) and
// returns the decoded readings in ascending address order. A node running
// the packed payload format (SystemConfig.SensorBatch > 1) contributes
// every reading its frame carried, oldest first, so one delivered frame
// can yield several FleetReadings.
func (f *Fleet) RunCycle() ([]FleetReading, mac.CycleReport, error) {
	rep, err := f.sched.RunCycle()
	if err != nil {
		return nil, rep, err
	}
	// One address→SNR pass up front: rescanning sched.Nodes() per
	// delivered payload made reading assembly O(N²) in fleet size.
	snr := make(map[byte]float64, len(f.order))
	for _, st := range f.sched.Nodes() {
		snr[st.Addr] = st.LastSNRdB
	}
	out := make([]FleetReading, 0, len(rep.Payloads))
	var scratch []node.Reading
	for _, addr := range f.order {
		payload, ok := rep.Payloads[addr]
		if !ok {
			continue
		}
		scratch, ok = node.AppendDecodedReadings(scratch[:0], payload)
		if !ok {
			continue
		}
		for _, rd := range scratch {
			out = append(out, FleetReading{Addr: addr, Reading: rd, SNRdB: snr[addr]})
		}
	}
	return out, rep, nil
}

// Nodes returns the MAC-layer bookkeeping per node.
func (f *Fleet) Nodes() []mac.NodeState { return f.sched.Nodes() }

// System returns the per-node system (nil for unknown addresses), for
// advanced access such as ranging rounds or commands.
func (f *Fleet) System(addr byte) *System { return f.systems[addr] }
