package core

import (
	"fmt"
	"math"

	"vab/internal/faults"
	"vab/internal/phy"
	"vab/internal/reader"
	"vab/internal/vanatta"
)

// FaultableDesign is implemented by node designs whose array can degrade
// element by element; the fault engine's element-failure class applies
// only to such designs.
type FaultableDesign interface {
	Design
	// FaultArray exposes the underlying array for element-fault injection.
	FaultArray() *vanatta.Array
}

// FaultArray implements FaultableDesign.
func (d *VanAttaDesign) FaultArray() *vanatta.Array { return d.Array }

// SetFaultEngine attaches a fault-injection engine: from the next round
// on, every RunRound asks the engine for that round's plan and applies it
// across the stack (channel bursts, link shadowing, array element faults,
// node brownouts, oscillator steps). A nil engine detaches injection and
// heals any element faults and clock steps still applied. Without an
// engine the round pipeline is bit-identical to a build without fault
// support: no plan is computed and no RNG stream is touched.
func (s *System) SetFaultEngine(e *faults.Engine) {
	s.chaos = e
	s.chaosRound = 0
	if e == nil {
		s.healFaults()
		return
	}
	e.Instrument(s.reg)
}

// SetFaultRound positions the system on its fault engine's scenario
// clock: the next RunRound evaluates Plan(r). Used when a system is built
// mid-campaign — a hero-link cross-check spinning up a waveform system at
// cycle c aligns it to the fleet's scenario with SetFaultRound(c) — so the
// same faults hit the same rounds as in a from-scratch run.
func (s *System) SetFaultRound(r int) { s.chaosRound = r }

// healFaults reverts the persistent fault state (element failures, clock
// steps, shadowing) to nominal.
func (s *System) healFaults() {
	if fd, ok := s.cfg.Design.(FaultableDesign); ok && s.appliedDeadFrac != 0 {
		fd.FaultArray().ClearFaults()
	}
	s.appliedDeadFrac = 0
	s.refreshNodeGain()
	s.shadowDB = 0
	if s.appliedClockDelta != 0 {
		s.appliedClockDelta = 0
		s.Node.SetClockPPM(s.cfg.NodeClockPPM)
	}
}

// refreshNodeGain recomputes the cached scatter gain from the design's
// current state — called at construction and whenever element faults
// change the array.
func (s *System) refreshNodeGain() {
	field := s.cfg.Design.ScatterField(DefaultCarrierHz, s.cfg.Orientation)
	s.nodeGain = field * complex(math.Pow(10, -StructuralLossDB/20), 0)
}

// effectiveGain returns the round's scatter gain: the cached node gain,
// attenuated twice by any active shadowing (the bubble cloud sits in the
// propagation path, so the modulated return crosses it on the way out and
// on the way back).
func (s *System) effectiveGain() complex128 {
	if s.shadowDB <= 0 {
		return s.nodeGain
	}
	return s.nodeGain * complex(math.Pow(10, -2*s.shadowDB/20), 0)
}

// applyFaultPlan applies one round's injection plan to the stack. Element
// faults and clock steps are sticky (applied only when the plan's value
// changes); shadowing is per-round; brownouts fire immediately; impulse
// bursts are deferred until the capture exists (see RunRound).
func (s *System) applyFaultPlan(plan *faults.RoundPlan) error {
	s.shadowDB = plan.ShadowDB
	if plan.DeadFrac != s.appliedDeadFrac {
		fd, ok := s.cfg.Design.(FaultableDesign)
		if ok {
			arr := fd.FaultArray()
			arr.ClearFaults()
			n := arr.N()
			k := int(math.Round(plan.DeadFrac * float64(n)))
			for _, i := range faults.PickElements(n, k, plan.FailSeed) {
				arr.SetElementFault(i, true)
			}
			s.refreshNodeGain()
		}
		s.appliedDeadFrac = plan.DeadFrac
	}
	if plan.Brownout {
		s.Node.InjectBrownout()
	}
	if plan.ClockPPMDelta != s.appliedClockDelta {
		if err := s.Node.SetClockPPM(s.cfg.NodeClockPPM + plan.ClockPPMDelta); err != nil {
			return fmt.Errorf("core: fault clock step: %w", err)
		}
		s.appliedClockDelta = plan.ClockPPMDelta
	}
	return nil
}

// injectBursts layers the plan's impulsive-noise events onto the capture.
// Offsets are drawn as fractions so the same plan scales to any capture
// length; InjectBurst clamps the windows against the slice bounds.
func (s *System) injectBursts(capture []complex128, plan *faults.RoundPlan) {
	fs := s.cfg.Reader.PHY.SampleRate
	for _, b := range plan.Bursts {
		start := int(b.StartFrac * float64(len(capture)))
		n := int(b.LenSec * fs)
		s.Link.InjectBurst(capture, start, n, b.PowerDB)
	}
}

// SetChipRate rebuilds the PHY chain (reader, node modulator, downlink
// demodulator) at a new chip rate, keeping the channel, geometry and node
// energy state: the actuation half of SNR-triggered rate stepdown. The
// rate must divide the sample rate per the phy numerology rules. The
// link is untouched — its taps depend on the sample rate only.
func (s *System) SetChipRate(rate float64) error {
	if rate == s.cfg.Reader.PHY.ChipRate {
		return nil
	}
	cfg := s.cfg
	cfg.Reader.PHY.ChipRate = rate
	r, err := reader.New(cfg.Reader)
	if err != nil {
		return fmt.Errorf("core: chip rate %.0f: %w", rate, err)
	}
	if err := s.Node.SetChipRate(rate); err != nil {
		return fmt.Errorf("core: chip rate %.0f: %w", rate, err)
	}
	ook, err := phy.NewOOKDemodulator(cfg.Reader.PHY)
	if err != nil {
		return fmt.Errorf("core: chip rate %.0f: %w", rate, err)
	}
	s.cfg = cfg
	s.Reader = r
	s.ook = ook
	if s.reg != nil {
		s.Reader.Instrument(s.reg)
	}
	return nil
}

// ChipRate returns the currently configured chip rate.
func (s *System) ChipRate() float64 { return s.cfg.Reader.PHY.ChipRate }
