package gateway

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// seqReading tags a reading with its publish index so content checks can
// cross-verify stream sequences.
func seqReading(i uint64) Reading {
	rd := testReading()
	rd.Count = uint32(i)
	rd.PressureMbar = 1294 // whole mbar: survives the v2 quantization grid
	rd.Time = time.Unix(0, 1700000000000000000+int64(i)).UTC()
	return rd
}

func TestResumeCodecRoundTrip(t *testing.T) {
	p := AppendResume(nil, 12345)
	if got, err := DecodeResume(p); err != nil || got != 12345 {
		t.Fatalf("resume round trip: %d %v", got, err)
	}
	if _, err := DecodeResume(append(p, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	if _, err := DecodeResume(nil); err == nil {
		t.Fatal("empty resume accepted")
	}

	ack := AppendResumeAck(nil, 10, 20)
	from, next, err := DecodeResumeAck(ack)
	if err != nil || from != 10 || next != 20 {
		t.Fatalf("ack round trip: %d %d %v", from, next, err)
	}
	if _, _, err := DecodeResumeAck(AppendResumeAck(nil, 20, 10)); err == nil {
		t.Fatal("liveNext < replayFrom accepted")
	}

	rds := []Reading{seqReading(1), seqReading(2), seqReading(3)}
	sb, err := AppendSeqBatch(nil, 41, rds)
	if err != nil {
		t.Fatal(err)
	}
	got, first, err := DecodeSeqBatchInto(nil, sb)
	if err != nil || first != 41 || len(got) != 3 {
		t.Fatalf("seq batch round trip: first=%d n=%d err=%v", first, len(got), err)
	}
	for i := range rds {
		if got[i] != rds[i] {
			t.Fatalf("reading %d differs: %+v vs %+v", i, got[i], rds[i])
		}
	}
	if _, err := AppendSeqBatch(nil, 0, rds); err == nil {
		t.Fatal("firstSeq 0 accepted")
	}
}

func TestReplayRing(t *testing.T) {
	r := NewReplayRing(4)
	if oldest, next := r.Window(); oldest != 1 || next != 1 {
		t.Fatalf("fresh window [%d,%d)", oldest, next)
	}
	for i := uint64(1); i <= 10; i++ {
		r.Append(i, seqReading(i))
	}
	oldest, next := r.Window()
	if oldest != 7 || next != 11 || r.Len() != 4 {
		t.Fatalf("window [%d,%d) len %d, want [7,11) 4", oldest, next, r.Len())
	}
	// Everything still in the window replays in order.
	got, first := r.Since(8, nil)
	if first != 9 || len(got) != 2 || got[0].Count != 9 || got[1].Count != 10 {
		t.Fatalf("Since(8): first=%d got=%v", first, got)
	}
	// An aged-out lastSeq clamps to the window start.
	got, first = r.Since(2, nil)
	if first != 7 || len(got) != 4 {
		t.Fatalf("Since(2): first=%d n=%d, want 7 4", first, len(got))
	}
	// Fully caught up: nothing to replay.
	if got, first = r.Since(10, nil); first != 0 || len(got) != 0 {
		t.Fatalf("Since(10): first=%d n=%d", first, len(got))
	}
	// Out-of-order append resets instead of serving a holed window.
	r.Append(100, seqReading(100))
	if oldest, next := r.Window(); oldest != 100 || next != 101 || r.Len() != 1 {
		t.Fatalf("after reset: [%d,%d) len %d", oldest, next, r.Len())
	}
	// Zero-size ring keeps nothing and never panics.
	z := NewReplayRing(0)
	z.Append(1, seqReading(1))
	if got, first := z.Since(0, nil); first != 0 || len(got) != 0 {
		t.Fatalf("zero ring replayed: first=%d n=%d", first, len(got))
	}
}

// TestResumeRecoversGap is the tentpole scenario: a subscriber reads part
// of the stream, loses its connection, more readings flow, and the
// resumed session recovers every missed reading — one gap-free strictly
// increasing sequence.
func TestResumeRecoversGap(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := NewServer(ctx, "127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr().String()

	publishUpTo := func(n *uint64, upTo uint64) {
		for *n < upTo {
			*n++
			srv.Publish(seqReading(*n))
		}
	}
	var published uint64

	// Session 1: fresh resume subscriber reads the first 5 readings.
	c, err := Dial(ctx, addr, WithResume(0))
	if err != nil {
		t.Fatal(err)
	}
	waitForSequenced(t, srv)
	publishUpTo(&published, 5)
	var lastSeq uint64
	for i := 0; i < 5; i++ {
		rd, err := c.Next(time.Now().Add(2 * time.Second))
		if err != nil {
			t.Fatalf("session 1 next %d: %v", i, err)
		}
		if got := c.LastSeq(); got != lastSeq+1 || uint64(rd.Count) != got {
			t.Fatalf("session 1 seq %d (count %d), want %d", got, rd.Count, lastSeq+1)
		}
		lastSeq = c.LastSeq()
	}
	c.Close()

	// The subscriber is gone; the stream keeps flowing.
	waitForSubscribers(t, srv, 0)
	publishUpTo(&published, 12)

	// Session 2: resume from lastSeq recovers 6..12 with no gap.
	c2, err := Dial(ctx, addr, WithResume(lastSeq))
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for want := lastSeq + 1; want <= 12; want++ {
		rd, err := c2.Next(time.Now().Add(2 * time.Second))
		if err != nil {
			t.Fatalf("session 2 next (want seq %d): %v", want, err)
		}
		if got := c2.LastSeq(); got != want || uint64(rd.Count) != want {
			t.Fatalf("session 2 seq %d (count %d), want %d", got, rd.Count, want)
		}
	}
	from, liveNext, ok := c2.ResumeWindow()
	if !ok || from != lastSeq+1 {
		t.Fatalf("ack window from=%d ok=%v, want from=%d", from, ok, lastSeq+1)
	}
	if liveNext != 13 {
		t.Fatalf("ack liveNext=%d, want 13", liveNext)
	}
}

// TestResumeAgedOutGap: when the gap outgrew the ring, the ack reports
// the truncated window and the session continues from the oldest
// retained reading — degraded to partial recovery, never stuck.
func TestResumeAgedOutGap(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := NewServer(ctx, "127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetReplay(4) // tiny window: the gap will age out

	for i := uint64(1); i <= 20; i++ {
		srv.Publish(seqReading(i))
	}
	c, err := Dial(ctx, addr(srv), WithResume(2)) // lastSeq 2: gap 3..16 is gone
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// First recovered reading must be the window start (17 = 21-4), and
	// the ack must disclose the unrecoverable gap.
	for want := uint64(17); want <= 20; want++ {
		rd, err := c.Next(time.Now().Add(2 * time.Second))
		if err != nil {
			t.Fatalf("next (want %d): %v", want, err)
		}
		if got := c.LastSeq(); got != want || uint64(rd.Count) != want {
			t.Fatalf("seq %d (count %d), want %d", got, rd.Count, want)
		}
	}
	from, _, ok := c.ResumeWindow()
	if !ok || from != 17 {
		t.Fatalf("ack from=%d ok=%v, want 17 (gap 3..16 aged out)", from, ok)
	}
}

// TestHeartbeatDeadPeerEviction: a subscriber that proved it pongs and
// then goes silent is dropped after miss periods; a v1 subscriber that
// never ponged is left alone.
func TestHeartbeatDeadPeerEviction(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := NewServer(ctx, "127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetHeartbeatPolicy(30*time.Millisecond, 2)

	// v1 bystander: never sends anything, must survive.
	v1, err := net.Dial("tcp", addr(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	go drainConn(v1)

	// Dead peer: upgrades to v2 (making it pong-tracked), then goes
	// silent while still draining the socket so writes never block.
	dead, err := net.Dial("tcp", addr(srv))
	if err != nil {
		t.Fatal(err)
	}
	defer dead.Close()
	go drainConn(dead)
	hello, _ := EncodeFrame(MsgHello, []byte{ProtocolV2})
	if _, err := dead.Write(hello); err != nil {
		t.Fatal(err)
	}

	waitForSubscribers(t, srv, 2)
	deadline := time.Now().Add(5 * time.Second)
	for srv.Subscribers() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("dead peer not evicted (still %d subscribers)", srv.Subscribers())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Give the reaper a few more periods: the v1 subscriber must remain.
	time.Sleep(150 * time.Millisecond)
	if srv.Subscribers() != 1 {
		t.Fatalf("v1 subscriber evicted without ever ponging")
	}
}

// TestClientPongsKeepSessionAlive: a live v2 client that keeps calling
// Next answers heartbeats and survives many miss windows.
func TestClientPongsKeepSessionAlive(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := NewServer(ctx, "127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetHeartbeatPolicy(20*time.Millisecond, 2)

	c, err := Dial(ctx, addr(srv), WithBatching())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		// No readings are published: Next sits on the socket answering
		// heartbeats until the deadline fires.
		_, err := c.Next(time.Now().Add(400 * time.Millisecond))
		done <- err
	}()
	err = <-done
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("next: %v, want deadline timeout (session killed early?)", err)
	}
	if srv.Subscribers() != 1 {
		t.Fatalf("ponging subscriber evicted: %d subscribers", srv.Subscribers())
	}
}

// TestGracefulDrainGoodbye: Close flushes the pending batch and the
// subscriber sees every reading followed by ErrServerClosing, not a
// connection reset.
func TestGracefulDrainGoodbye(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := NewServer(ctx, "127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetBatching(64, time.Hour) // park readings in the pending batch

	c, err := Dial(ctx, addr(srv), WithResume(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitForSequenced(t, srv)
	for i := uint64(1); i <= 5; i++ {
		srv.Publish(seqReading(i))
	}
	closed := make(chan error, 1)
	go func() { closed <- srv.Close() }()

	var got []uint64
	for {
		rd, err := c.Next(time.Now().Add(2 * time.Second))
		if err != nil {
			if !errors.Is(err, ErrServerClosing) {
				t.Fatalf("stream ended with %v, want ErrServerClosing", err)
			}
			break
		}
		got = append(got, uint64(rd.Count))
	}
	if len(got) != 5 {
		t.Fatalf("drained %d readings, want 5: %v", len(got), got)
	}
	for i, g := range got {
		if g != uint64(i+1) {
			t.Fatalf("drain out of order: %v", got)
		}
	}
	if err := <-closed; err != nil {
		t.Fatalf("close: %v", err)
	}
}

// addr is shorthand for a server's dial address.
func addr(s *Server) string { return s.Addr().String() }

// drainConn discards everything the server sends so its writes never
// block on a full kernel buffer.
func drainConn(c net.Conn) {
	buf := make([]byte, 4096)
	for {
		if _, err := c.Read(buf); err != nil {
			return
		}
	}
}

// waitForSequenced blocks until the server has processed a MsgResume
// (some subscriber switched to sequenced delivery).
func waitForSequenced(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		// cntSeq moves under the sequence lock when MsgResume is
		// processed — once it is nonzero, the replay entry is queued
		// ahead of any flush published after this point.
		if s.cntSeq.Load() > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("no subscriber switched to sequenced delivery")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// waitForSubscribers blocks until the server has exactly n subscribers.
func waitForSubscribers(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Subscribers() != n {
		if time.Now().After(deadline) {
			t.Fatalf("subscribers stuck at %d, want %d", s.Subscribers(), n)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
