package gateway

import (
	"bytes"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the wire-frame reader: it must
// reject garbage without panicking, and round-trip anything it accepts.
func FuzzReadFrame(f *testing.F) {
	good, _ := EncodeFrame(MsgReading, EncodeReading(testReading()))
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x56}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		re, err := EncodeFrame(typ, payload)
		if err != nil {
			t.Fatalf("accepted frame failed to encode: %v", err)
		}
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("frame prefix mismatch")
		}
	})
}

// FuzzDecodeReading must never panic on arbitrary payloads.
func FuzzDecodeReading(f *testing.F) {
	f.Add(EncodeReading(testReading()))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		_, _ = DecodeReading(p)
	})
}
