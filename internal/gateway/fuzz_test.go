package gateway

import (
	"bytes"
	"encoding/binary"
	"testing"
	"time"
)

// FuzzReadFrame feeds arbitrary bytes to the wire-frame reader: it must
// reject garbage without panicking, and round-trip anything it accepts.
// Encoder and decoder share the MaxPayloadSize bound, so every accepted
// frame must be one the encoder could have produced.
func FuzzReadFrame(f *testing.F) {
	good, _ := EncodeFrame(MsgReading, EncodeReading(testReading()))
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x56}, 64))
	// Boundary seeds: the largest encodable frame and a header one byte
	// past the shared payload bound.
	biggest, _ := EncodeFrame(MsgReading, make([]byte, MaxPayloadSize))
	f.Add(biggest)
	f.Add(oversizeHeader())
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > MaxPayloadSize {
			t.Fatalf("accepted %d-byte payload beyond MaxPayloadSize=%d", len(payload), MaxPayloadSize)
		}
		re, err := EncodeFrame(typ, payload)
		if err != nil {
			t.Fatalf("accepted frame failed to encode: %v", err)
		}
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("frame prefix mismatch")
		}
	})
}

// oversizeHeader builds a well-formed header announcing MaxPayloadSize+1
// payload bytes (and supplies them), which the decoder must reject.
func oversizeHeader() []byte {
	hdr := binary.BigEndian.AppendUint32(nil, Magic)
	hdr = append(hdr, byte(MsgReading))
	hdr = binary.BigEndian.AppendUint32(hdr, MaxPayloadSize+1)
	return append(hdr, make([]byte, MaxPayloadSize+1)...)
}

// FuzzDecodeReading must never panic on arbitrary payloads.
func FuzzDecodeReading(f *testing.F) {
	f.Add(EncodeReading(testReading()))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		_, _ = DecodeReading(p)
	})
}

// FuzzBatchDecode hammers the v2 batch decoder with arbitrary payloads:
// it must never panic, and any payload it accepts must survive a
// re-encode/re-decode cycle with identical readings. The decoder's
// strict full-consumption and range rules keep the accepted set inside
// what the encoder can reproduce (modulo non-canonical varints, which
// re-encode canonically — hence a semantic, not byte, round trip).
func FuzzBatchDecode(f *testing.F) {
	one, _ := AppendReadingBatch(nil, []Reading{testReading()})
	f.Add(one)
	rd2 := testReading()
	rd2.Seq++
	rd2.Count++
	rd2.TempC += 0.07
	rd2.Time = rd2.Time.Add(250 * time.Millisecond)
	two, _ := AppendReadingBatch(nil, []Reading{testReading(), rd2})
	f.Add(two)
	f.Add([]byte{})
	f.Add([]byte{1})
	f.Add([]byte{2, 0, 0, 0})
	f.Fuzz(func(t *testing.T, p []byte) {
		rds, err := DecodeReadingBatch(p)
		if err != nil {
			return
		}
		if len(rds) == 0 {
			t.Fatal("accepted payload produced zero readings")
		}
		re, err := AppendReadingBatch(nil, rds)
		if err != nil {
			t.Fatalf("accepted readings failed to re-encode: %v", err)
		}
		rds2, err := DecodeReadingBatch(re)
		if err != nil {
			t.Fatalf("re-encoded payload failed to decode: %v", err)
		}
		if len(rds2) != len(rds) {
			t.Fatalf("re-decode count %d, want %d", len(rds2), len(rds))
		}
		for i := range rds {
			if !rds2[i].Time.Equal(rds[i].Time) {
				t.Fatalf("reading %d time mismatch: %v vs %v", i, rds2[i].Time, rds[i].Time)
			}
			a, b := rds[i], rds2[i]
			a.Time, b.Time = time.Time{}, time.Time{}
			if a != b {
				t.Fatalf("reading %d mismatch:\n got  %+v\n want %+v", i, b, a)
			}
		}
	})
}
