package gateway

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the wire-frame reader: it must
// reject garbage without panicking, and round-trip anything it accepts.
// Encoder and decoder share the MaxPayloadSize bound, so every accepted
// frame must be one the encoder could have produced.
func FuzzReadFrame(f *testing.F) {
	good, _ := EncodeFrame(MsgReading, EncodeReading(testReading()))
	f.Add(good)
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x56}, 64))
	// Boundary seeds: the largest encodable frame and a header one byte
	// past the shared payload bound.
	biggest, _ := EncodeFrame(MsgReading, make([]byte, MaxPayloadSize))
	f.Add(biggest)
	f.Add(oversizeHeader())
	f.Fuzz(func(t *testing.T, data []byte) {
		typ, payload, err := ReadFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > MaxPayloadSize {
			t.Fatalf("accepted %d-byte payload beyond MaxPayloadSize=%d", len(payload), MaxPayloadSize)
		}
		re, err := EncodeFrame(typ, payload)
		if err != nil {
			t.Fatalf("accepted frame failed to encode: %v", err)
		}
		if !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("frame prefix mismatch")
		}
	})
}

// oversizeHeader builds a well-formed header announcing MaxPayloadSize+1
// payload bytes (and supplies them), which the decoder must reject.
func oversizeHeader() []byte {
	hdr := binary.BigEndian.AppendUint32(nil, Magic)
	hdr = append(hdr, byte(MsgReading))
	hdr = binary.BigEndian.AppendUint32(hdr, MaxPayloadSize+1)
	return append(hdr, make([]byte, MaxPayloadSize+1)...)
}

// FuzzDecodeReading must never panic on arbitrary payloads.
func FuzzDecodeReading(f *testing.F) {
	f.Add(EncodeReading(testReading()))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		_, _ = DecodeReading(p)
	})
}
