package gateway

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"
)

// quantizedReading returns a reading already on the v2 wire grid, the
// form every real pipeline reading arrives in (sensors quantize at the
// source, SNR is rounded by the reader).
func quantizedReading(rng *rand.Rand) Reading {
	return Reading{
		NodeAddr:     byte(rng.Intn(256)),
		Seq:          byte(rng.Intn(256)),
		Count:        rng.Uint32(),
		TempC:        float64(rng.Intn(8001)-4000) / 100, // −40.00 .. 40.00 °C
		PressureMbar: float64(rng.Intn(65536)),
		SNRdB:        float64(rng.Intn(6001)-1000) / 100, // −10.00 .. 50.00 dB
		Time:         time.Unix(0, 1700000000000000000+rng.Int63n(1e12)).UTC(),
	}
}

func TestBatchRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(16)
		rds := make([]Reading, n)
		for i := range rds {
			rds[i] = quantizedReading(rng)
		}
		p, err := AppendReadingBatch(nil, rds)
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		got, err := DecodeReadingBatch(p)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if len(got) != n {
			t.Fatalf("trial %d: got %d readings, want %d", trial, len(got), n)
		}
		for i := range rds {
			if got[i] != rds[i] {
				t.Fatalf("trial %d reading %d:\n got  %+v\n want %+v", trial, i, got[i], rds[i])
			}
		}
	}
}

func TestBatchWireSavings(t *testing.T) {
	// A batch of sequential readings from one node — the shape the
	// reader actually publishes — must beat the v1 wire cost per reading
	// by at least 2x, header included (ISSUE acceptance bar).
	rng := rand.New(rand.NewSource(3))
	base := quantizedReading(rng)
	rds := make([]Reading, 16)
	for i := range rds {
		rd := base
		rd.Seq = base.Seq + byte(i)
		rd.Count = base.Count + uint32(i)
		rd.TempC = base.TempC + float64(i)/100
		rd.Time = base.Time.Add(time.Duration(i) * 250 * time.Millisecond)
		rds[i] = rd
	}
	p, err := AppendReadingBatch(nil, rds)
	if err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeFrame(MsgReadingBatch, p)
	if err != nil {
		t.Fatal(err)
	}
	v2PerReading := float64(len(frame)) / float64(len(rds))
	v1PerReading := float64(frameHeaderSize + readingWireSize)
	t.Logf("v1 %.1f B/reading, v2 %.2f B/reading (batch of %d, frame %d B)",
		v1PerReading, v2PerReading, len(rds), len(frame))
	if v2PerReading*2 > v1PerReading {
		t.Errorf("v2 wire cost %.2f B/reading is not ≥2x better than v1 %.1f", v2PerReading, v1PerReading)
	}
}

func TestBatchRejectsMalformed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	rds := []Reading{quantizedReading(rng), quantizedReading(rng)}
	p, err := AppendReadingBatch(nil, rds)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeReadingBatch(nil); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := DecodeReadingBatch(p[:len(p)-1]); err == nil {
		t.Error("truncated payload accepted")
	}
	if _, err := DecodeReadingBatch(append(append([]byte(nil), p...), 0)); err == nil {
		t.Error("trailing garbage accepted")
	}
	if _, err := DecodeReadingBatch([]byte{0}); err == nil {
		t.Error("zero-count batch accepted")
	}
	if _, err := AppendReadingBatch(nil, nil); err == nil {
		t.Error("empty batch encoded")
	}
	if _, err := AppendReadingBatch(nil, []Reading{{TempC: math.NaN()}}); err == nil {
		t.Error("NaN reading encoded")
	}
	if _, err := AppendReadingBatch(nil, []Reading{{TempC: 1e18}}); err == nil {
		t.Error("out-of-range reading encoded")
	}
}

func TestBatchOversizeSplits(t *testing.T) {
	// Enough worst-case readings to overflow one frame: the encoder must
	// refuse with ErrOversize rather than emit an unframeable payload.
	rng := rand.New(rand.NewSource(5))
	rds := make([]Reading, 64)
	for i := range rds {
		rd := quantizedReading(rng)
		// Spread timestamps days apart so every Δtime costs ~9 bytes.
		rd.Time = time.Unix(0, int64(i)*86400e9).UTC()
		rds[i] = rd
	}
	if _, err := AppendReadingBatch(nil, rds); !errors.Is(err, ErrOversize) {
		t.Fatalf("oversize batch: %v", err)
	}
	// The server-side splitter must still deliver every reading.
	s := &Server{logf: func(string, ...interface{}) {}}
	s.pending = rds
	b := &broadcast{}
	s.encodeBroadcast(b, false, true, false)
	frames := b.v2
	var got []Reading
	for _, frame := range frames {
		payload := frame[frameHeaderSize:]
		var err error
		got, err = DecodeReadingBatchInto(got, payload)
		if err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != len(rds) {
		t.Fatalf("split delivered %d readings, want %d", len(got), len(rds))
	}
	for i := range rds {
		if got[i] != rds[i] {
			t.Fatalf("reading %d mismatch after split", i)
		}
	}
	if len(frames) < 2 {
		t.Errorf("expected the batch to split, got %d frame(s)", len(frames))
	}
}

func TestV2ClientReceivesBatches(t *testing.T) {
	s, _ := startServer(t)
	s.SetBatching(4, time.Hour) // deadline far away: flush only on size
	c, err := Dial(context.Background(), s.Addr().String(), WithBatching())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The upgrade Hello races the first Publish; wait for the server to
	// register it so the flush below is batched.
	waitUpgrade(t, s)
	rng := rand.New(rand.NewSource(21))
	want := make([]Reading, 4)
	for i := range want {
		want[i] = quantizedReading(rng)
		s.Publish(want[i])
	}
	for i, w := range want {
		got, err := c.Next(time.Now().Add(5 * time.Second))
		if err != nil {
			t.Fatalf("reading %d: %v", i, err)
		}
		if got != w {
			t.Fatalf("reading %d:\n got  %+v\n want %+v", i, got, w)
		}
	}
}

func TestV1ClientAgainstBatchingServer(t *testing.T) {
	// Backward compatibility: a v1 client (no upgrade Hello) connected to
	// a server with batching enabled still receives every reading as
	// plain MsgReading frames.
	s, _ := startServer(t)
	s.SetBatching(3, time.Hour)
	c, err := Dial(context.Background(), s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rng := rand.New(rand.NewSource(22))
	want := make([]Reading, 3)
	for i := range want {
		want[i] = quantizedReading(rng)
		s.Publish(want[i])
	}
	for i, w := range want {
		got, err := c.Next(time.Now().Add(5 * time.Second))
		if err != nil {
			t.Fatalf("reading %d: %v", i, err)
		}
		if got != w {
			t.Fatalf("reading %d:\n got  %+v\n want %+v", i, got, w)
		}
	}
}

func TestDeadlineFlush(t *testing.T) {
	// A partial batch must reach subscribers once flushAfter elapses.
	s, _ := startServer(t)
	s.SetBatching(100, 20*time.Millisecond)
	c, err := Dial(context.Background(), s.Addr().String(), WithBatching())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitUpgrade(t, s)
	rd := quantizedReading(rand.New(rand.NewSource(23)))
	s.Publish(rd)
	got, err := c.Next(time.Now().Add(5 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got != rd {
		t.Fatalf("deadline flush:\n got  %+v\n want %+v", got, rd)
	}
}

func TestMixedSubscribers(t *testing.T) {
	// One v1 and one v2 subscriber on the same flush: both see the same
	// readings, in order, through their respective wire formats.
	s, _ := startServer(t)
	s.SetBatching(4, time.Hour)
	v1, err := Dial(context.Background(), s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer v1.Close()
	v2, err := Dial(context.Background(), s.Addr().String(), WithBatching())
	if err != nil {
		t.Fatal(err)
	}
	defer v2.Close()
	waitUpgrade(t, s)
	rng := rand.New(rand.NewSource(24))
	want := make([]Reading, 4)
	for i := range want {
		want[i] = quantizedReading(rng)
		s.Publish(want[i])
	}
	for _, c := range []*Client{v1, v2} {
		for i, w := range want {
			got, err := c.Next(time.Now().Add(5 * time.Second))
			if err != nil {
				t.Fatalf("reading %d: %v", i, err)
			}
			if got != w {
				t.Fatalf("reading %d:\n got  %+v\n want %+v", i, got, w)
			}
		}
	}
}

// waitUpgrade blocks until at least one subscriber has negotiated v2.
func waitUpgrade(t *testing.T, s *Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s.cntV2.Load() > 0 || s.cntSeq.Load() > 0 {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("subscriber never upgraded to v2")
}
