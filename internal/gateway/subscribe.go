package gateway

import (
	"context"
	"time"
)

// Subscribe maintains a resilient subscription to a gateway: it dials,
// streams readings into out, and on any error re-dials with exponential
// backoff until ctx is cancelled. A shore-side consumer of a coastal
// deployment runs for months; transient gateway restarts and network blips
// must not require operator attention.
//
// The out channel is closed when ctx ends. Readings that arrive while out
// is full are dropped (a telemetry feed prefers freshness over
// completeness).
func Subscribe(ctx context.Context, addr string, out chan<- Reading) {
	defer close(out)
	backoff := 100 * time.Millisecond
	const maxBackoff = 10 * time.Second
	for {
		if ctx.Err() != nil {
			return
		}
		c, err := Dial(ctx, addr)
		if err != nil {
			if !sleepCtx(ctx, backoff) {
				return
			}
			backoff *= 2
			if backoff > maxBackoff {
				backoff = maxBackoff
			}
			continue
		}
		backoff = 100 * time.Millisecond // connected: reset
		// Close the connection when ctx ends so Next unblocks.
		stop := context.AfterFunc(ctx, func() { c.Close() })
		for {
			rd, err := c.Next(time.Now().Add(30 * time.Second))
			if err != nil {
				break
			}
			select {
			case out <- rd:
			case <-ctx.Done():
				stop()
				c.Close()
				return
			default: // slow consumer: drop the reading
			}
		}
		stop()
		c.Close()
	}
}

// sleepCtx sleeps for d or until ctx is done; it reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
