package gateway

import (
	"context"
	"errors"
	"math/rand"
	"time"
)

// SubscribeOption customizes Subscribe.
type SubscribeOption func(*subscribeConfig)

type subscribeConfig struct {
	readTimeout time.Duration
	blocking    bool
	resume      bool
	dialOpts    []DialOption
}

// WithReadTimeout sets the per-read deadline Subscribe applies while
// waiting for the next frame (default 30s). It is the client-side
// dead-peer detector: a gateway that stops sending frames — heartbeats
// included — for this long is presumed gone and the session re-dials.
// Set it comfortably above the gateway's heartbeat period.
func WithReadTimeout(d time.Duration) SubscribeOption {
	return func(c *subscribeConfig) {
		if d > 0 {
			c.readTimeout = d
		}
	}
}

// WithBlockingDelivery makes Subscribe block on a full out channel
// instead of dropping the reading. The caller accepts backpressure in
// exchange for completeness; a sufficiently slow caller will eventually
// be evicted by the gateway instead (server-side slow-subscriber drop),
// which resume then repairs.
func WithBlockingDelivery() SubscribeOption {
	return func(c *subscribeConfig) { c.blocking = true }
}

// WithSessionResume carries the stream sequence across reconnects: each
// re-dial sends MsgResume with the last sequence seen, so the gateway
// replays the disconnection gap from its ring (when still within the
// window) instead of the session silently skipping it. Implies the v2
// protocol; harmless against gateways that predate resume.
func WithSessionResume() SubscribeOption {
	return func(c *subscribeConfig) { c.resume = true }
}

// WithDialOptions appends options to every Dial attempt (e.g.
// WithBatching, WithHandshakeTimeout).
func WithDialOptions(opts ...DialOption) SubscribeOption {
	return func(c *subscribeConfig) { c.dialOpts = append(c.dialOpts, opts...) }
}

// Subscribe maintains a resilient subscription to a gateway: it dials,
// streams readings into out, and on any error re-dials with exponential
// backoff until ctx is cancelled. A shore-side consumer of a coastal
// deployment runs for months; transient gateway restarts and network blips
// must not require operator attention.
//
// The out channel is closed when ctx ends. By default readings that
// arrive while out is full are dropped (a telemetry feed prefers
// freshness over completeness) — every such drop is now counted by the
// vab_gateway_client_dropped_total metric (see InstrumentClient), and
// WithBlockingDelivery switches to backpressure instead. WithSessionResume
// additionally repairs reconnect gaps from the gateway's replay ring.
func Subscribe(ctx context.Context, addr string, out chan<- Reading, opts ...SubscribeOption) {
	defer close(out)
	cfg := subscribeConfig{readTimeout: 30 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	backoff := baseBackoff
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	var lastSeq uint64
	connected := false
	for {
		if ctx.Err() != nil {
			return
		}
		dialOpts := cfg.dialOpts
		if cfg.resume {
			dialOpts = append(dialOpts[:len(dialOpts):len(dialOpts)], WithResume(lastSeq))
		}
		c, err := Dial(ctx, addr, dialOpts...)
		if err != nil {
			sleep, next := nextBackoff(backoff, rng)
			if !sleepCtx(ctx, sleep) {
				return
			}
			backoff = next
			continue
		}
		if connected {
			cliMet().reconnects.Inc()
			if cfg.resume {
				cliMet().resumed.Inc()
			}
		}
		connected = true
		backoff = baseBackoff // connected: reset
		// Close the connection when ctx ends so Next unblocks.
		stop := context.AfterFunc(ctx, func() { c.Close() })
		ackChecked := false
		for {
			rd, err := c.Next(time.Now().Add(cfg.readTimeout))
			if err != nil {
				if errors.Is(err, ErrServerClosing) {
					// Graceful shutdown: the stream is complete; re-dial
					// from scratch on the backoff schedule.
					backoff = baseBackoff
				}
				break
			}
			if cfg.resume && !ackChecked {
				if from, _, ok := c.ResumeWindow(); ok {
					ackChecked = true
					if lastSeq > 0 && from > lastSeq+1 {
						// The ring aged out part of the gap: those readings
						// are unrecoverable, record the loss.
						cliMet().gapLost.Add(int64(from - lastSeq - 1))
					}
				}
			}
			if cfg.blocking {
				select {
				case out <- rd:
				case <-ctx.Done():
					stop()
					c.Close()
					return
				}
			} else {
				select {
				case out <- rd:
				case <-ctx.Done():
					stop()
					c.Close()
					return
				default: // slow consumer: drop the reading
					cliMet().dropped.Inc()
				}
			}
		}
		if s := c.LastSeq(); s > lastSeq {
			lastSeq = s
		}
		stop()
		c.Close()
	}
}

// baseBackoff is the first reconnect delay; maxBackoff caps the schedule.
const (
	baseBackoff = 100 * time.Millisecond
	maxBackoff  = 10 * time.Second
)

// nextBackoff returns the jittered sleep for the current backoff level and
// the next level. The sleep is drawn uniformly from [cur/2, cur] ("equal
// jitter"): after a gateway restart, a fleet of shore-side subscribers
// whose unjittered timers were synchronized by the outage itself would
// otherwise reconnect in lockstep and hammer the listener in waves.
func nextBackoff(cur time.Duration, rng *rand.Rand) (sleep, next time.Duration) {
	half := cur / 2
	sleep = half + time.Duration(rng.Int63n(int64(half)+1))
	next = cur * 2
	if next > maxBackoff {
		next = maxBackoff
	}
	return sleep, next
}

// sleepCtx sleeps for d or until ctx is done; it reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
