package gateway

import (
	"context"
	"math/rand"
	"time"
)

// Subscribe maintains a resilient subscription to a gateway: it dials,
// streams readings into out, and on any error re-dials with exponential
// backoff until ctx is cancelled. A shore-side consumer of a coastal
// deployment runs for months; transient gateway restarts and network blips
// must not require operator attention.
//
// The out channel is closed when ctx ends. Readings that arrive while out
// is full are dropped (a telemetry feed prefers freshness over
// completeness).
func Subscribe(ctx context.Context, addr string, out chan<- Reading) {
	defer close(out)
	backoff := baseBackoff
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for {
		if ctx.Err() != nil {
			return
		}
		c, err := Dial(ctx, addr)
		if err != nil {
			sleep, next := nextBackoff(backoff, rng)
			if !sleepCtx(ctx, sleep) {
				return
			}
			backoff = next
			continue
		}
		backoff = baseBackoff // connected: reset
		// Close the connection when ctx ends so Next unblocks.
		stop := context.AfterFunc(ctx, func() { c.Close() })
		for {
			rd, err := c.Next(time.Now().Add(30 * time.Second))
			if err != nil {
				break
			}
			select {
			case out <- rd:
			case <-ctx.Done():
				stop()
				c.Close()
				return
			default: // slow consumer: drop the reading
			}
		}
		stop()
		c.Close()
	}
}

// baseBackoff is the first reconnect delay; maxBackoff caps the schedule.
const (
	baseBackoff = 100 * time.Millisecond
	maxBackoff  = 10 * time.Second
)

// nextBackoff returns the jittered sleep for the current backoff level and
// the next level. The sleep is drawn uniformly from [cur/2, cur] ("equal
// jitter"): after a gateway restart, a fleet of shore-side subscribers
// whose unjittered timers were synchronized by the outage itself would
// otherwise reconnect in lockstep and hammer the listener in waves.
func nextBackoff(cur time.Duration, rng *rand.Rand) (sleep, next time.Duration) {
	half := cur / 2
	sleep = half + time.Duration(rng.Int63n(int64(half)+1))
	next = cur * 2
	if next > maxBackoff {
		next = maxBackoff
	}
	return sleep, next
}

// sleepCtx sleeps for d or until ctx is done; it reports whether the full
// sleep elapsed.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}
