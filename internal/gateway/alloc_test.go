package gateway

import (
	"bytes"
	"math/rand"
	"testing"
)

// The gateway broadcast hot path — encode readings, frame them, read
// them back — must not allocate in steady state: the reader publishes at
// poll rate for months, and the fan-out runs under the server mutex.
// These pins hold the append/into forms at zero allocations per op once
// their destination buffers are warm.

func TestAppendReadingAllocs(t *testing.T) {
	rd := testReading()
	buf := make([]byte, 0, readingWireSize)
	if n := testing.AllocsPerRun(200, func() {
		buf = AppendReading(buf[:0], rd)
	}); n != 0 {
		t.Errorf("AppendReading allocates %.1f/op, want 0", n)
	}
}

func TestAppendFrameAllocs(t *testing.T) {
	payload := AppendReading(nil, testReading())
	buf := make([]byte, 0, MaxFrameSize)
	if n := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = AppendFrame(buf[:0], MsgReading, payload)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("AppendFrame allocates %.1f/op, want 0", n)
	}
}

func TestBatchCodecAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rds := make([]Reading, 16)
	for i := range rds {
		rds[i] = quantizedReading(rng)
	}
	encBuf := make([]byte, 0, MaxPayloadSize)
	if n := testing.AllocsPerRun(200, func() {
		var err error
		encBuf, err = AppendReadingBatch(encBuf[:0], rds)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("AppendReadingBatch allocates %.1f/op, want 0", n)
	}
	payload, err := AppendReadingBatch(nil, rds)
	if err != nil {
		t.Fatal(err)
	}
	decBuf := make([]Reading, 0, len(rds))
	if n := testing.AllocsPerRun(200, func() {
		var err error
		decBuf, err = DecodeReadingBatchInto(decBuf[:0], payload)
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("DecodeReadingBatchInto allocates %.1f/op, want 0", n)
	}
}

func TestReadFrameBufAllocs(t *testing.T) {
	frame, err := EncodeFrame(MsgReading, AppendReading(nil, testReading()))
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(frame)
	buf := make([]byte, 0, MaxFrameSize)
	if n := testing.AllocsPerRun(200, func() {
		r.Reset(frame)
		_, payload, err := ReadFrameBuf(r, buf)
		if err != nil {
			t.Fatal(err)
		}
		buf = payload[:0]
	}); n != 0 {
		t.Errorf("ReadFrameBuf allocates %.1f/op, want 0", n)
	}
}
