package gateway

import (
	"context"
	"fmt"
	"net"
	"time"
)

// Client subscribes to a gateway's reading stream.
type Client struct {
	conn net.Conn
	// payloadBuf is reused by ReadFrameBuf so the steady-state receive
	// path allocates nothing.
	payloadBuf []byte
	// queue holds readings decoded from a batch frame that Next has not
	// yet handed out; qpos indexes the next one.
	queue []Reading
	qpos  int
}

// DialOption customizes Dial.
type DialOption func(*dialConfig)

type dialConfig struct {
	handshakeTimeout time.Duration
	protocol         byte
}

// WithHandshakeTimeout bounds the wait for the gateway's hello frame
// (default 5s). Satellite or acoustic-modem backhauls with multi-second
// RTTs need more; a LAN health checker may want much less.
func WithHandshakeTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) {
		if d > 0 {
			c.handshakeTimeout = d
		}
	}
}

// WithBatching requests the v2 batched stream: after the handshake the
// client sends its own Hello advertising ProtocolV2, and a v2-capable
// gateway switches this subscription to MsgReadingBatch frames. Next
// unpacks batches transparently, so callers see the same per-reading
// interface either way. Gateways that predate v2 ignore the upgrade
// (they never read from the socket) and keep sending v1 frames, which
// the client still accepts — the option is safe against any server.
func WithBatching() DialOption {
	return func(c *dialConfig) { c.protocol = ProtocolV2 }
}

// Dial connects to a gateway and verifies the protocol handshake.
func Dial(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	cfg := dialConfig{handshakeTimeout: 5 * time.Second, protocol: ProtocolV1}
	for _, o := range opts {
		o(&cfg)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn}
	// Expect the hello frame promptly.
	conn.SetReadDeadline(time.Now().Add(cfg.handshakeTimeout))
	t, payload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("gateway: handshake: %w", err)
	}
	if t != MsgHello || len(payload) != 1 || payload[0] != 1 {
		conn.Close()
		return nil, fmt.Errorf("gateway: unexpected handshake frame type %d", t)
	}
	if cfg.protocol >= ProtocolV2 {
		upgrade, err := EncodeFrame(MsgHello, []byte{cfg.protocol})
		if err == nil {
			_, err = conn.Write(upgrade)
		}
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("gateway: protocol upgrade: %w", err)
		}
	}
	conn.SetReadDeadline(time.Time{})
	return c, nil
}

// Next blocks until the next reading arrives, transparently skipping
// heartbeats and unpacking batch frames. The deadline (zero = none)
// bounds the wait.
func (c *Client) Next(deadline time.Time) (Reading, error) {
	if c.qpos < len(c.queue) {
		rd := c.queue[c.qpos]
		c.qpos++
		return rd, nil
	}
	c.conn.SetReadDeadline(deadline)
	for {
		t, payload, err := ReadFrameBuf(c.conn, c.payloadBuf)
		if cap(payload) > cap(c.payloadBuf) {
			c.payloadBuf = payload[:0]
		}
		if err != nil {
			return Reading{}, err
		}
		switch t {
		case MsgHeartbeat:
			continue
		case MsgReading:
			return DecodeReading(payload)
		case MsgReadingBatch:
			c.queue, err = DecodeReadingBatchInto(c.queue[:0], payload)
			if err != nil {
				return Reading{}, err
			}
			c.qpos = 1
			return c.queue[0], nil
		default:
			return Reading{}, fmt.Errorf("gateway: unexpected frame type %d", t)
		}
	}
}

// Close terminates the subscription.
func (c *Client) Close() error { return c.conn.Close() }
