package gateway

import (
	"context"
	"fmt"
	"net"
	"time"
)

// Client subscribes to a gateway's reading stream.
type Client struct {
	conn net.Conn
}

// DialOption customizes Dial.
type DialOption func(*dialConfig)

type dialConfig struct {
	handshakeTimeout time.Duration
}

// WithHandshakeTimeout bounds the wait for the gateway's hello frame
// (default 5s). Satellite or acoustic-modem backhauls with multi-second
// RTTs need more; a LAN health checker may want much less.
func WithHandshakeTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) {
		if d > 0 {
			c.handshakeTimeout = d
		}
	}
}

// Dial connects to a gateway and verifies the protocol handshake.
func Dial(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	cfg := dialConfig{handshakeTimeout: 5 * time.Second}
	for _, o := range opts {
		o(&cfg)
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn}
	// Expect the hello frame promptly.
	conn.SetReadDeadline(time.Now().Add(cfg.handshakeTimeout))
	t, payload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("gateway: handshake: %w", err)
	}
	if t != MsgHello || len(payload) != 1 || payload[0] != 1 {
		conn.Close()
		return nil, fmt.Errorf("gateway: unexpected handshake frame type %d", t)
	}
	conn.SetReadDeadline(time.Time{})
	return c, nil
}

// Next blocks until the next reading arrives, transparently skipping
// heartbeats. The deadline (zero = none) bounds the wait.
func (c *Client) Next(deadline time.Time) (Reading, error) {
	c.conn.SetReadDeadline(deadline)
	for {
		t, payload, err := ReadFrame(c.conn)
		if err != nil {
			return Reading{}, err
		}
		switch t {
		case MsgHeartbeat:
			continue
		case MsgReading:
			return DecodeReading(payload)
		default:
			return Reading{}, fmt.Errorf("gateway: unexpected frame type %d", t)
		}
	}
}

// Close terminates the subscription.
func (c *Client) Close() error { return c.conn.Close() }
