package gateway

import (
	"context"
	"errors"
	"fmt"
	"net"
	"time"
)

// ErrServerClosing is returned by Next when the gateway announces a
// graceful shutdown (MsgGoodbye): the stream is complete up to this
// point, and reconnecting with backoff is the right response.
var ErrServerClosing = errors.New("gateway: server closing")

// Client subscribes to a gateway's reading stream.
type Client struct {
	conn net.Conn
	// payloadBuf is reused by ReadFrameBuf so the steady-state receive
	// path allocates nothing.
	payloadBuf []byte
	// queue holds readings decoded from a batch frame that Next has not
	// yet handed out; qpos indexes the next one.
	queue []Reading
	qpos  int
	// queueSeq is the stream sequence of queue[0] when the current batch
	// came from a MsgSeqBatch frame, 0 for unsequenced batches.
	queueSeq uint64
	// lastSeq is the stream sequence of the last reading Next returned
	// from a sequenced frame (0 before any).
	lastSeq uint64
	// pong caches the encoded MsgPong frame when this session answers
	// heartbeats (nil = stay silent, the v1 behaviour).
	pong []byte
	// ack* record the MsgResumeAck bounds once it arrives.
	ackReplayFrom uint64
	ackLiveNext   uint64
	ackSeen       bool
	// awaitingAck suppresses unsequenced reading frames on a resume
	// session until the MsgResumeAck arrives: readings the server fanned
	// out before processing MsgResume are re-delivered by the replay, so
	// passing them through would duplicate. A heartbeat before the ack
	// means the gateway predates resume (it would have answered first) —
	// suppression lifts and the session falls back to the plain stream.
	awaitingAck bool
}

// DialOption customizes Dial.
type DialOption func(*dialConfig)

type dialConfig struct {
	handshakeTimeout time.Duration
	protocol         byte
	resume           bool
	resumeLast       uint64
	localAddr        net.Addr
}

// WithHandshakeTimeout bounds the wait for the gateway's hello frame
// (default 5s). Satellite or acoustic-modem backhauls with multi-second
// RTTs need more; a LAN health checker may want much less.
func WithHandshakeTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) {
		if d > 0 {
			c.handshakeTimeout = d
		}
	}
}

// WithBatching requests the v2 batched stream: after the handshake the
// client sends its own Hello advertising ProtocolV2, and a v2-capable
// gateway switches this subscription to MsgReadingBatch frames. Next
// unpacks batches transparently, so callers see the same per-reading
// interface either way. Gateways that predate v2 ignore the upgrade
// (they never read from the socket) and keep sending v1 frames, which
// the client still accepts — the option is safe against any server.
func WithBatching() DialOption {
	return func(c *dialConfig) { c.protocol = ProtocolV2 }
}

// WithResume requests sequenced delivery with gap replay (implies
// WithBatching): after the upgrade the client sends MsgResume carrying
// the last stream sequence it saw (0 on a fresh session), and a
// resume-capable gateway replays the missed window as MsgSeqBatch frames
// before the live stream continues. Gateways that predate resume ignore
// the frame and the session falls back to the plain v2 stream — the
// option is safe against any server.
func WithResume(lastSeq uint64) DialOption {
	return func(c *dialConfig) {
		c.protocol = ProtocolV2
		c.resume = true
		c.resumeLast = lastSeq
	}
}

// WithLocalAddr pins the TCP source address for the dial. Load harnesses
// fanning tens of thousands of sessions at one gateway use it to spread
// connections across multiple loopback source IPs, sidestepping the
// ~28k ephemeral-port ceiling per (srcIP, dstIP, dstPort) tuple.
func WithLocalAddr(addr net.Addr) DialOption {
	return func(c *dialConfig) { c.localAddr = addr }
}

// Dial connects to a gateway and verifies the protocol handshake.
func Dial(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	cfg := dialConfig{handshakeTimeout: 5 * time.Second, protocol: ProtocolV1}
	for _, o := range opts {
		o(&cfg)
	}
	d := net.Dialer{LocalAddr: cfg.localAddr}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return newClientConn(conn, cfg)
}

// NewClientConn runs the gateway handshake over an existing connection —
// any net.Conn, not just TCP. The in-process load harness uses it to
// subscribe over netmem conns; it also suits tunneled or pre-dialed
// transports. The conn is closed on handshake failure.
func NewClientConn(conn net.Conn, opts ...DialOption) (*Client, error) {
	cfg := dialConfig{handshakeTimeout: 5 * time.Second, protocol: ProtocolV1}
	for _, o := range opts {
		o(&cfg)
	}
	return newClientConn(conn, cfg)
}

func newClientConn(conn net.Conn, cfg dialConfig) (*Client, error) {
	c := &Client{conn: conn}
	// Expect the hello frame promptly.
	conn.SetReadDeadline(time.Now().Add(cfg.handshakeTimeout))
	t, payload, err := ReadFrame(conn)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("gateway: handshake: %w", err)
	}
	if t != MsgHello || len(payload) != 1 || payload[0] != 1 {
		conn.Close()
		return nil, fmt.Errorf("gateway: unexpected handshake frame type %d", t)
	}
	if cfg.protocol >= ProtocolV2 {
		upgrade, err := EncodeFrame(MsgHello, []byte{cfg.protocol})
		if err == nil {
			_, err = conn.Write(upgrade)
		}
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("gateway: protocol upgrade: %w", err)
		}
		// A v2 session answers heartbeats, making it liveness-trackable.
		// The pong frame is constant — share the package-level encoding.
		c.pong = pongFrame
	}
	if cfg.resume {
		frame, err := EncodeFrame(MsgResume, AppendResume(nil, cfg.resumeLast))
		if err == nil {
			_, err = conn.Write(frame)
		}
		if err != nil {
			conn.Close()
			return nil, fmt.Errorf("gateway: resume request: %w", err)
		}
		c.lastSeq = cfg.resumeLast
		c.awaitingAck = true
	}
	conn.SetReadDeadline(time.Time{})
	return c, nil
}

// Next blocks until the next reading arrives, transparently skipping
// heartbeats (answering them with pongs on v2 sessions) and unpacking
// batch frames. The deadline (zero = none) bounds the wait. A graceful
// server shutdown surfaces as ErrServerClosing.
func (c *Client) Next(deadline time.Time) (Reading, error) {
	if c.qpos < len(c.queue) {
		rd := c.queue[c.qpos]
		if c.queueSeq != 0 {
			c.lastSeq = c.queueSeq + uint64(c.qpos)
		}
		c.qpos++
		return rd, nil
	}
	c.conn.SetReadDeadline(deadline)
	for {
		t, payload, err := ReadFrameBuf(c.conn, c.payloadBuf)
		if cap(payload) > cap(c.payloadBuf) {
			c.payloadBuf = payload[:0]
		}
		if err != nil {
			return Reading{}, err
		}
		switch t {
		case MsgHeartbeat:
			if c.pong != nil {
				// Best-effort: a failed pong will surface as a read error
				// on the next frame anyway.
				c.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
				c.conn.Write(c.pong)
			}
			// A resume-capable gateway acks before its first heartbeat
			// (it processes our MsgResume within the handshake exchange);
			// a heartbeat first means no ack is coming — fall back.
			c.awaitingAck = false
			continue
		case MsgReading:
			if c.awaitingAck {
				continue // will arrive again in the replay
			}
			c.queueSeq = 0
			return DecodeReading(payload)
		case MsgReadingBatch:
			if c.awaitingAck {
				continue // will arrive again in the replay
			}
			c.queue, err = DecodeReadingBatchInto(c.queue[:0], payload)
			if err != nil {
				return Reading{}, err
			}
			c.queueSeq = 0
			c.qpos = 1
			return c.queue[0], nil
		case MsgSeqBatch:
			c.awaitingAck = false
			var firstSeq uint64
			c.queue, firstSeq, err = DecodeSeqBatchInto(c.queue[:0], payload)
			if err != nil {
				return Reading{}, err
			}
			c.queueSeq = firstSeq
			c.lastSeq = firstSeq
			c.qpos = 1
			return c.queue[0], nil
		case MsgResumeAck:
			c.ackReplayFrom, c.ackLiveNext, err = DecodeResumeAck(payload)
			if err != nil {
				return Reading{}, err
			}
			c.ackSeen = true
			c.awaitingAck = false
			continue
		case MsgGoodbye:
			return Reading{}, ErrServerClosing
		default:
			return Reading{}, fmt.Errorf("gateway: unexpected frame type %d", t)
		}
	}
}

// LastSeq returns the stream sequence of the last reading Next returned
// from a sequenced frame (0 before any) — the value to pass to
// WithResume on the next dial.
func (c *Client) LastSeq() uint64 { return c.lastSeq }

// ResumeWindow reports the MsgResumeAck bounds once the gateway has
// acknowledged a resume: replayFrom is the first sequence the server
// delivers, liveNext the next live sequence at ack time. ok is false
// until the ack arrives (or forever, against a server without resume).
// replayFrom > lastSeq+1 means the gap [lastSeq+1, replayFrom) aged out
// of the server's ring and is unrecoverable.
func (c *Client) ResumeWindow() (replayFrom, liveNext uint64, ok bool) {
	return c.ackReplayFrom, c.ackLiveNext, c.ackSeen
}

// Close terminates the subscription.
func (c *Client) Close() error { return c.conn.Close() }
