// Package gateway exposes a VAB deployment to shore-side consumers: the
// reader publishes decoded sensor readings, and the gateway streams them to
// TCP subscribers using a small length-prefixed binary protocol. This is
// the application layer of the coastal-monitoring scenario the paper
// motivates: battery-free sensors under water, a reader buoy on top, and a
// TCP feed to whoever watches the coast.
package gateway

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"time"
)

// Protocol constants.
const (
	// Magic starts every frame, guarding against port scanners and
	// protocol mismatches.
	Magic = uint32(0x56414231) // "VAB1"
	// MaxFrameSize bounds a frame on the wire.
	MaxFrameSize = 512
	// frameHeaderSize is the fixed header: magic (4), type (1), length (4).
	frameHeaderSize = 9
	// MaxPayloadSize bounds a frame payload so the whole frame — header
	// included — fits in MaxFrameSize. Encoder and decoder enforce the
	// same bound: the decoder must not admit frames the encoder can never
	// produce.
	MaxPayloadSize = MaxFrameSize - frameHeaderSize
)

// MsgType discriminates wire messages.
type MsgType byte

// Message types.
const (
	MsgReading   MsgType = 0x01 // sensor reading, gateway → client
	MsgHeartbeat MsgType = 0x02 // liveness, gateway → client
	MsgHello     MsgType = 0x03 // version/handshake, gateway → client
)

// Reading is one decoded sensor sample with link metadata.
type Reading struct {
	NodeAddr     byte
	Seq          byte
	Count        uint32
	TempC        float64
	PressureMbar float64
	SNRdB        float64
	Time         time.Time
}

// readingWireSize is the fixed encoding size of a Reading payload.
const readingWireSize = 1 + 1 + 4 + 8 + 8 + 8 + 8

// V1FrameBytesPerReading is the total v1 wire cost of one reading —
// frame header plus the fixed payload — the baseline the v2 batched
// format is measured against.
const V1FrameBytesPerReading = frameHeaderSize + readingWireSize

// Errors.
var (
	ErrBadMagic  = errors.New("gateway: bad frame magic")
	ErrOversize  = errors.New("gateway: frame exceeds MaxFrameSize")
	ErrTruncated = errors.New("gateway: truncated payload")
)

// AppendFrame appends a wire frame — magic, type, length, payload — to
// dst. Passing dst with spare capacity makes the encode allocation-free
// (the gateway's broadcast hot path reuses one buffer per flush).
func AppendFrame(dst []byte, t MsgType, payload []byte) ([]byte, error) {
	if len(payload) > MaxPayloadSize {
		return dst, ErrOversize
	}
	out := binary.BigEndian.AppendUint32(dst, Magic)
	out = append(out, byte(t))
	out = binary.BigEndian.AppendUint32(out, uint32(len(payload)))
	return append(out, payload...), nil
}

// EncodeFrame renders a wire frame: magic, type, length, payload.
func EncodeFrame(t MsgType, payload []byte) ([]byte, error) {
	return AppendFrame(make([]byte, 0, frameHeaderSize+len(payload)), t, payload)
}

// ReadFrame reads one frame from r, returning its type and payload.
func ReadFrame(r io.Reader) (MsgType, []byte, error) {
	return ReadFrameBuf(r, nil)
}

// ReadFrameBuf reads one frame from r like ReadFrame, but reuses buf's
// storage for the payload when it has the capacity — the steady-state
// read path of a long-lived subscriber allocates nothing. The returned
// payload aliases buf (grown if needed); it is valid until the next
// call with the same buffer.
func ReadFrameBuf(r io.Reader, buf []byte) (MsgType, []byte, error) {
	// The header is staged in buf as well (and overwritten by the payload
	// below, after it is parsed): a stack array would escape through the
	// io.Reader interface and cost an allocation per frame.
	if cap(buf) < frameHeaderSize {
		buf = make([]byte, 0, MaxFrameSize)
	}
	hdr := buf[:frameHeaderSize]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, buf, err
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != Magic {
		return 0, buf, ErrBadMagic
	}
	t := MsgType(hdr[4])
	n := binary.BigEndian.Uint32(hdr[5:9])
	if n > MaxPayloadSize {
		return 0, buf, ErrOversize
	}
	var payload []byte
	if uint32(cap(buf)) >= n {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, buf, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	return t, payload, nil
}

// AppendReading appends the v1 fixed-layout reading payload to dst.
func AppendReading(dst []byte, rd Reading) []byte {
	out := append(dst, rd.NodeAddr, rd.Seq)
	out = binary.BigEndian.AppendUint32(out, rd.Count)
	out = binary.BigEndian.AppendUint64(out, math.Float64bits(rd.TempC))
	out = binary.BigEndian.AppendUint64(out, math.Float64bits(rd.PressureMbar))
	out = binary.BigEndian.AppendUint64(out, math.Float64bits(rd.SNRdB))
	return binary.BigEndian.AppendUint64(out, uint64(rd.Time.UnixNano()))
}

// EncodeReading serializes a reading payload (v1 layout).
func EncodeReading(rd Reading) []byte {
	return AppendReading(make([]byte, 0, readingWireSize), rd)
}

// DecodeReading parses a reading payload.
func DecodeReading(p []byte) (Reading, error) {
	if len(p) != readingWireSize {
		return Reading{}, fmt.Errorf("%w: reading payload %d bytes, want %d", ErrTruncated, len(p), readingWireSize)
	}
	rd := Reading{
		NodeAddr: p[0],
		Seq:      p[1],
		Count:    binary.BigEndian.Uint32(p[2:6]),
	}
	rd.TempC = math.Float64frombits(binary.BigEndian.Uint64(p[6:14]))
	rd.PressureMbar = math.Float64frombits(binary.BigEndian.Uint64(p[14:22]))
	rd.SNRdB = math.Float64frombits(binary.BigEndian.Uint64(p[22:30]))
	rd.Time = time.Unix(0, int64(binary.BigEndian.Uint64(p[30:38]))).UTC()
	return rd, nil
}
