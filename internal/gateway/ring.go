package gateway

import "sync"

// ringEntry is one unit of outbound work for a subscriber's writer
// goroutine: the frames to write (aliasing a shared broadcast arena, or
// privately owned for control traffic like resume replays and goodbyes)
// and the arena reference to release once written (nil for control
// entries).
type ringEntry struct {
	frames [][]byte
	b      *broadcast
}

// ringCapacity is the per-subscriber outbound queue depth, in entries
// (one entry per flush or control message, not per frame). A full ring
// marks the subscriber as too slow, mirroring the old channel semantics.
const ringCapacity = 64

// frameRing is a fixed-capacity single-consumer queue between the shard
// flusher (producer) and the subscriber's writer goroutine (consumer).
// It exists so one writer wakeup can drain many queued flushes in a
// single writev, collapsing per-frame syscalls. Its mutex only orders
// the producer/consumer handoff — it never spans I/O.
type frameRing struct {
	mu      sync.Mutex
	buf     []ringEntry
	head, n int
	sealed  bool
}

func newFrameRing() *frameRing {
	return &frameRing{buf: make([]ringEntry, ringCapacity)}
}

// push enqueues one entry. ok is false when the ring is full or sealed
// (the caller evicts or drops the entry); wasEmpty tells the producer
// the writer may be parked and needs a wakeup.
func (r *frameRing) push(e ringEntry) (ok, wasEmpty bool) {
	r.mu.Lock()
	if r.sealed || r.n == len(r.buf) {
		r.mu.Unlock()
		return false, false
	}
	wasEmpty = r.n == 0
	r.buf[(r.head+r.n)%len(r.buf)] = e
	r.n++
	r.mu.Unlock()
	return true, wasEmpty
}

// pushN enqueues a group of entries atomically: all of them or none
// (ok=false on overflow or seal, and the caller evicts). Grouping the
// pushes of a multi-flush fan-out pass under one lock acquisition — and
// one writer wakeup — is what keeps per-flush overhead flat when the
// publisher runs ahead of the writers.
func (r *frameRing) pushN(es []ringEntry) (ok, wasEmpty bool) {
	r.mu.Lock()
	if r.sealed || r.n+len(es) > len(r.buf) {
		r.mu.Unlock()
		return false, false
	}
	wasEmpty = r.n == 0
	for _, e := range es {
		r.buf[(r.head+r.n)%len(r.buf)] = e
		r.n++
	}
	r.mu.Unlock()
	return true, wasEmpty
}

// popInto moves up to len(dst) entries into dst, returning how many and
// whether the ring is sealed with nothing left (writer should exit).
func (r *frameRing) popInto(dst []ringEntry) (n int, done bool) {
	r.mu.Lock()
	for n < len(dst) && r.n > 0 {
		dst[n] = r.buf[r.head]
		r.buf[r.head] = ringEntry{}
		r.head = (r.head + 1) % len(r.buf)
		r.n--
		n++
	}
	done = r.sealed && r.n == 0
	r.mu.Unlock()
	return n, done
}

// seal marks end-of-stream: pushes fail from now on, and the writer
// exits once it has drained what remains (the graceful-close path, so
// queued frames — the goodbye included — still go out).
func (r *frameRing) seal() {
	r.mu.Lock()
	r.sealed = true
	r.mu.Unlock()
}

// discard seals the ring and drops everything still queued, handing each
// entry to release (for arena refcounts). Used on eviction and teardown,
// where queued frames will never be written.
func (r *frameRing) discard(release func(*broadcast)) {
	r.mu.Lock()
	r.sealed = true
	for r.n > 0 {
		e := r.buf[r.head]
		r.buf[r.head] = ringEntry{}
		r.head = (r.head + 1) % len(r.buf)
		r.n--
		if e.b != nil {
			release(e.b) // lock-free: atomic dec + freelist push
		}
	}
	r.mu.Unlock()
}
