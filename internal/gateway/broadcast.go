package gateway

import "sync/atomic"

// broadcast is one flush's worth of encoded frames, shared by reference
// across every subscriber ring: the v1 (per-reading MsgReading), v2
// (MsgReadingBatch) and sequenced (MsgSeqBatch) variants are each encoded
// exactly once into a single contiguous buffer, and subscribers hold
// sub-slices of it. Refcounting recycles the arena through the server's
// freelist once the last writer goroutine has drained it, so steady-state
// broadcasts allocate nothing.
//
// Lifecycle: the flush path (under seqMu) takes an arena from the
// freelist, encodes, sets refs to the shard count, and enqueues it to
// every shard. Each shard flusher adds one reference per subscriber ring
// it lands the frames in, then releases its own shard hold; each writer
// goroutine releases after writing (or on eviction/teardown). The last
// release returns the arena to the freelist.
type broadcast struct {
	refs atomic.Int64

	buf    []byte   // all frames, back to back
	bounds []int    // frame boundaries into buf; bounds[0] == 0
	frames [][]byte // one sub-slice of buf per frame

	// Variant views into frames (aliases, not copies).
	v1, v2, seq [][]byte
}

// broadcastFreelist bounds how many idle arenas the server retains.
const broadcastFreelist = 8

// getBroadcast takes a recycled arena or allocates a fresh one.
func (s *Server) getBroadcast() *broadcast {
	select {
	case b := <-s.freeBcast:
		return b
	default:
		return &broadcast{}
	}
}

// releaseBroadcast drops one reference and recycles the arena when it
// was the last. Safe on nil (control entries carry no broadcast).
func (s *Server) releaseBroadcast(b *broadcast) {
	if b == nil || b.refs.Add(-1) != 0 {
		return
	}
	b.v1, b.v2, b.seq = nil, nil, nil
	select {
	case s.freeBcast <- b:
	default: // freelist full: let the GC take it
	}
}

// encodeBroadcast encodes s.pending once into b, building only the
// variants some subscriber needs. Returns the number of v2 and seq
// frames (for the batch metric). Callers hold seqMu.
func (s *Server) encodeBroadcast(b *broadcast, needV1, needV2, needSeq bool) (nBatch int) {
	b.buf = b.buf[:0]
	b.bounds = append(b.bounds[:0], 0)
	nV1 := 0
	if needV1 {
		for _, rd := range s.pending {
			s.v1Payload = AppendReading(s.v1Payload[:0], rd)
			buf, err := AppendFrame(b.buf, MsgReading, s.v1Payload)
			if err != nil {
				s.logf("gateway: encode reading: %v", err)
				continue
			}
			b.buf = buf
			b.bounds = append(b.bounds, len(b.buf))
		}
		nV1 = len(b.bounds) - 1
	}
	nV2 := 0
	if needV2 {
		nV2 = s.encodeBatchInto(b, s.pending, 0, false)
	}
	nSeq := 0
	if needSeq {
		nSeq = s.encodeBatchInto(b, s.pending, s.pendingFirst, true)
	}
	// Materialize the frame slices only after the buffer has stopped
	// growing (append may reallocate b.buf, invalidating sub-slices).
	b.frames = b.frames[:0]
	for i := 0; i+1 < len(b.bounds); i++ {
		b.frames = append(b.frames, b.buf[b.bounds[i]:b.bounds[i+1]])
	}
	b.v1 = b.frames[:nV1]
	b.v2 = b.frames[nV1 : nV1+nV2]
	b.seq = b.frames[nV1+nV2:]
	return nV2 + nSeq
}

// encodeBatchInto appends readings to b as one MsgReadingBatch (or
// MsgSeqBatch when sequenced) frame, splitting recursively in the
// pathological case the encoded block exceeds the payload bound.
// Returns the number of frames appended. Callers hold seqMu.
func (s *Server) encodeBatchInto(b *broadcast, rds []Reading, firstSeq uint64, sequenced bool) int {
	if len(rds) == 0 {
		return 0
	}
	var payload []byte
	var err error
	if sequenced {
		payload, err = AppendSeqBatch(s.v2Payload[:0], firstSeq, rds)
	} else {
		payload, err = AppendReadingBatch(s.v2Payload[:0], rds)
	}
	if err == ErrOversize && len(rds) > 1 {
		half := len(rds) / 2
		n := s.encodeBatchInto(b, rds[:half], firstSeq, sequenced)
		return n + s.encodeBatchInto(b, rds[half:], firstSeq+uint64(half), sequenced)
	}
	if err != nil {
		s.logf("gateway: encode batch: %v", err)
		return 0
	}
	s.v2Payload = payload[:0]
	t := MsgReadingBatch
	if sequenced {
		t = MsgSeqBatch
	}
	buf, err := AppendFrame(b.buf, t, payload)
	if err != nil {
		s.logf("gateway: encode batch frame: %v", err)
		return 0
	}
	b.buf = buf
	b.bounds = append(b.bounds, len(b.buf))
	return 1
}

// appendSeqBatchFramesAlloc encodes readings as standalone MsgSeqBatch
// frames (fresh allocations — used by the rare resume path, whose frames
// are owned by a control entry rather than a shared arena).
func appendSeqBatchFramesAlloc(frames [][]byte, rds []Reading, firstSeq uint64, logf func(string, ...interface{})) [][]byte {
	if len(rds) == 0 {
		return frames
	}
	payload, err := AppendSeqBatch(nil, firstSeq, rds)
	if err == ErrOversize && len(rds) > 1 {
		half := len(rds) / 2
		frames = appendSeqBatchFramesAlloc(frames, rds[:half], firstSeq, logf)
		return appendSeqBatchFramesAlloc(frames, rds[half:], firstSeq+uint64(half), logf)
	}
	if err != nil {
		logf("gateway: encode seq batch: %v", err)
		return frames
	}
	frame, err := EncodeFrame(MsgSeqBatch, payload)
	if err != nil {
		logf("gateway: encode seq batch frame: %v", err)
		return frames
	}
	return append(frames, frame)
}
