package gateway

import (
	"context"
	"math/rand"
	"net"
	"testing"
	"time"
)

// TestNextBackoffJitterBounds: each sleep draws uniformly from the equal-
// jitter window [cur/2, cur]; the schedule doubles and saturates at the
// cap. Jitter decorrelates a fleet of clients reconnecting after a shared
// gateway outage — without it they thunder back in lockstep.
func TestNextBackoffJitterBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	cur := baseBackoff
	for i := 0; i < 12; i++ {
		sleep, next := nextBackoff(cur, rng)
		if sleep < cur/2 || sleep > cur {
			t.Fatalf("step %d: sleep %v outside [%v, %v]", i, sleep, cur/2, cur)
		}
		want := cur * 2
		if want > maxBackoff {
			want = maxBackoff
		}
		if next != want {
			t.Fatalf("step %d: next %v, want %v", i, next, want)
		}
		cur = next
	}
	if cur != maxBackoff {
		t.Fatalf("schedule never saturated: %v", cur)
	}
}

// TestNextBackoffSpread: consecutive draws at the same level must not all
// collide — the whole point of jitter.
func TestNextBackoffSpread(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	seen := map[time.Duration]bool{}
	for i := 0; i < 32; i++ {
		sleep, _ := nextBackoff(time.Second, rng)
		seen[sleep] = true
	}
	if len(seen) < 8 {
		t.Fatalf("32 draws produced only %d distinct sleeps", len(seen))
	}
}

// TestDialHandshakeTimeout: a server that never sends its hello frame must
// fail the handshake within the configured deadline, not hang.
func TestDialHandshakeTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		// Mute server: hold the socket open, send nothing.
		defer conn.Close()
		time.Sleep(2 * time.Second)
	}()

	start := time.Now()
	_, err = Dial(context.Background(), ln.Addr().String(),
		WithHandshakeTimeout(100*time.Millisecond))
	if err == nil {
		t.Fatal("handshake against a mute server succeeded")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("handshake failure took %v, want ~100ms", elapsed)
	}
}

// TestWithHandshakeTimeoutIgnoresNonPositive: zero and negative overrides
// keep the default rather than disabling the deadline.
func TestWithHandshakeTimeoutIgnoresNonPositive(t *testing.T) {
	cfg := dialConfig{handshakeTimeout: 5 * time.Second}
	WithHandshakeTimeout(0)(&cfg)
	WithHandshakeTimeout(-time.Second)(&cfg)
	if cfg.handshakeTimeout != 5*time.Second {
		t.Fatalf("non-positive override changed the timeout to %v", cfg.handshakeTimeout)
	}
	WithHandshakeTimeout(250 * time.Millisecond)(&cfg)
	if cfg.handshakeTimeout != 250*time.Millisecond {
		t.Fatalf("positive override ignored: %v", cfg.handshakeTimeout)
	}
}
