package gateway

import (
	"context"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vab/internal/faults/netfaults"
)

// churnProfile injects drops, partial writes, and brief stalls. Frame
// corruption is deliberately excluded: the wire format carries no
// integrity check, so a flipped bit can decode into a *valid* frame with
// wrong contents, which no session layer can detect — corruption's
// effect on delivery is measured by the E14 campaign instead.
func churnProfile() netfaults.Profile {
	return netfaults.Profile{
		Name:         "churn",
		DropPerOp:    0.01,
		PartialPerOp: 0.005,
		StallPerOp:   0.01,
		StallMs:      2,
	}
}

// TestChurnSoakThroughChaos is the soak scenario from the resilience
// contract: subscribers churn through a seeded chaos wrapper — injected
// drops, torn frames, stalls — while the stream keeps flowing, and every
// resumed session must observe a gap-free, strictly increasing sequence
// (the ring is sized so nothing ever ages out). Run under -race this
// also pins the server's internal accounting.
func TestChurnSoakThroughChaos(t *testing.T) {
	rounds := 200
	if testing.Short() {
		rounds = 30
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := netfaults.NewEngine(1234, churnProfile())
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServerListener(ctx, eng.Listen(ln), t.Logf)
	defer srv.Close()
	// Heartbeats stay slow relative to injected stalls so the ack always
	// precedes the first heartbeat (the client's fallback heuristic);
	// lazy subscribers are evicted by queue overflow, not dead-peer checks.
	srv.SetHeartbeatPolicy(time.Second, 3)
	srv.SetReplay(1 << 16) // nothing ages out: gaps must be zero
	srv.SetBatching(8, 2*time.Millisecond)

	// Publisher: a steady stream until the soak ends.
	var stopPub atomic.Bool
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		for i := uint64(1); !stopPub.Load(); i++ {
			srv.Publish(seqReading(i))
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Lazy subscribers that never read: the server must evict them
	// (queue overflow or write timeout) without disturbing anyone else.
	var lazyWG sync.WaitGroup
	lazyConns := make(chan net.Conn, 16)
	lazyWG.Add(1)
	go func() {
		defer lazyWG.Done()
		for i := 0; i < 8; i++ {
			c, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				return
			}
			lazyConns <- c
			time.Sleep(10 * time.Millisecond)
		}
	}()

	// The resuming subscriber: reconnects every round, asserting the
	// sequence never gaps and never goes backwards.
	addr := ln.Addr().String()
	var lastSeq uint64
	var delivered, sessions int
	for round := 0; round < rounds; round++ {
		c, err := Dial(ctx, addr, WithResume(lastSeq), WithHandshakeTimeout(2*time.Second))
		if err != nil {
			continue // injected drop during handshake: next round
		}
		sessions++
		reads := 0
		for reads < 50 {
			rd, err := c.Next(time.Now().Add(500 * time.Millisecond))
			if err != nil {
				break // injected fault or timeout: reconnect
			}
			seq := c.LastSeq()
			if seq == 0 {
				continue // pre-ack unsequenced frame (not expected, but legal)
			}
			if seq <= lastSeq {
				t.Fatalf("round %d: sequence went backwards: %d after %d", round, seq, lastSeq)
			}
			if seq != lastSeq+1 {
				t.Fatalf("round %d: gap: %d after %d (ring cannot age out here)", round, seq, lastSeq)
			}
			if uint64(rd.Count) != seq {
				t.Fatalf("round %d: content mismatch: count %d under seq %d", round, rd.Count, seq)
			}
			lastSeq = seq
			delivered++
			reads++
		}
		c.Close()
	}
	stopPub.Store(true)
	pubWG.Wait()
	lazyWG.Wait()
	close(lazyConns)
	for c := range lazyConns {
		c.Close()
	}
	if sessions == 0 || delivered == 0 {
		t.Fatalf("soak did no work: %d sessions, %d delivered", sessions, delivered)
	}
	t.Logf("churn soak: %d/%d sessions connected, %d readings, final seq %d, injected %+v",
		sessions, rounds, delivered, lastSeq, eng.Stats())
}

// TestCloseAcceptChurn pins the Close vs acceptLoop race: servers are
// closed while dialers are mid-handshake, repeatedly. Close must return
// (its WaitGroup accounts for every spawned goroutine) and nothing may
// double-close a subscriber channel. Run under -race.
func TestCloseAcceptChurn(t *testing.T) {
	iters := 40
	if testing.Short() {
		iters = 10
	}
	for i := 0; i < iters; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		srv, err := NewServer(ctx, "127.0.0.1:0", t.Logf)
		if err != nil {
			t.Fatal(err)
		}
		srv.SetDrainTimeout(100 * time.Millisecond)
		addr := srv.Addr().String()
		var wg sync.WaitGroup
		for d := 0; d < 8; d++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c, err := net.Dial("tcp", addr)
				if err != nil {
					return
				}
				// Half the dialers hang up instantly, half linger.
				if i%2 == 0 {
					c.Close()
					return
				}
				drainConn(c)
				c.Close()
			}()
		}
		for p := uint64(0); p < 16; p++ {
			srv.Publish(seqReading(p + 1))
		}
		done := make(chan struct{})
		go func() { srv.Close(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("Close did not return: leaked serve/readLoop goroutine")
		}
		cancel()
		wg.Wait()
	}
}
