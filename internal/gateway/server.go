package gateway

import (
	"context"
	"log"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Server fans decoded readings out to TCP subscribers. Slow subscribers
// are disconnected rather than allowed to exert backpressure on the
// reader (a live telemetry feed must never stall the acoustic polling
// loop).
//
// Fan-out architecture (see DESIGN.md "Fan-out architecture"): the
// subscriber registry is split across N independently locked shards,
// each with its own flusher goroutine. Publish-side state — sequencing,
// the replay ring, batch coalescing, frame encoding — lives under one
// small sequence lock (seqMu) that is never held across per-subscriber
// work, so Publish costs O(encode) regardless of subscriber count. Each
// flush encodes its v1/v2/sequenced frame variants exactly once into a
// refcounted broadcast arena; shard flushers land arena references in
// per-subscriber frame rings, and each subscriber's writer goroutine
// drains many queued flushes per wakeup through one writev
// (net.Buffers). Steady-state broadcasts allocate nothing: arenas
// recycle through a freelist once the last writer releases them.
//
// Published readings can be coalesced (SetBatching): the server buffers
// them and flushes when the batch fills or a deadline expires. At flush,
// v1 subscribers receive one MsgReading frame per reading — exactly the
// original stream, just bursty — while subscribers that negotiated
// protocol v2 (by sending a Hello frame back) receive one
// MsgReadingBatch frame per flush, cutting wire bytes per reading
// several-fold.
//
// Resilience (see resume.go and DESIGN.md "Gateway resilience contract"):
// every reading gets a stream sequence and enters a replay ring, so a
// subscriber that sent MsgResume recovers its reconnect gap as sequenced
// MsgSeqBatch frames; heartbeats double as dead-peer probes (subscribers
// that have ponged once are dropped when pongs stop); Close drains
// gracefully — flush, MsgGoodbye, bounded writes — instead of snapping
// every socket mid-frame.
type Server struct {
	ln   net.Listener
	logf func(format string, args ...interface{})

	// shards hold the subscriber registry; mutated only by SetShards
	// before traffic, always read under seqMu.
	shards   []*shard
	shardIdx int // round-robin registration cursor, under seqMu

	// Live-census atomics: subscriber count and per-variant counts (how
	// many v1 / v2 / sequenced subscribers exist right now). The flush
	// path reads them to decide which frame variants to encode without
	// touching any shard lock.
	subCount atomic.Int64
	cntV1    atomic.Int64
	cntV2    atomic.Int64
	cntSeq   atomic.Int64

	closed bool // under seqMu
	wg     sync.WaitGroup

	// Heartbeat policy: period between MsgHeartbeat frames per
	// subscriber, and how many periods of inbound silence a pong-capable
	// subscriber survives before it is declared dead. Guarded by seqMu.
	hbPeriod time.Duration
	hbMiss   int

	// drainTimeout bounds Close's graceful drain; drainUntil (atomic
	// UnixNano, 0 = not draining) caps every socket write once draining.
	drainTimeout time.Duration
	drainUntil   atomic.Int64

	// hbTimer paces the heartbeat sweep (one timer for the whole server,
	// not one ticker per subscriber); hbDone ends the sweep loop.
	hbTimer *time.Timer
	hbDone  chan struct{}

	// seqMu is the sequence lock: it guards stream ordering (nextSeq,
	// pending, the replay ring), batching state, and the encode scratch.
	// It is held for O(encode) per flush — never across subscriber I/O
	// or shard iteration — which is what keeps Publish latency flat as
	// subscriber counts grow.
	seqMu        sync.Mutex
	nextSeq      uint64
	pendingFirst uint64
	ring         *ReplayRing

	batchMax   int
	flushAfter time.Duration
	pending    []Reading
	flushTimer *time.Timer
	timerArmed bool
	v1Payload  []byte    // scratch for one v1 reading payload
	v2Payload  []byte    // scratch for one batch payload
	replayBuf  []Reading // scratch for ring replays

	// freeBcast recycles broadcast arenas (see broadcast.go).
	freeBcast chan *broadcast

	// metrics is swapped atomically by Instrument; nil means telemetry
	// is off and every recording below is a free no-op.
	metrics metricsPtr
}

// subscriber delivery classes, in fan-out selection order.
const (
	classV1 uint32 = iota + 1
	classV2
	classSeq
)

// subscriber countState values: which variant census bucket the
// subscriber currently occupies (exactly one, until removal zeroes it).
const (
	subGone int32 = iota
	subV1
	subV2
	subSeq
)

type subscriber struct {
	conn  net.Conn
	ring  *frameRing
	wake  chan struct{} // capacity 1: writer wakeup
	shard *shard
	// isTCP selects the writev fast path; other conns (netfaults
	// wrappers, in-memory transports) get one coalesced Write instead.
	isTCP bool
	// class is the delivery variant the fan-out path selects by: v1
	// until the client's Hello upgrades it to v2, and sequenced from the
	// moment the shard flusher lands the subscriber's resume entry. One
	// atomic, because fan-out reads it for every subscriber on every
	// flush.
	class atomic.Uint32
	// pongable flips on the first inbound pong/hello: only subscribers
	// that have proven they answer are liveness-judged by silence.
	pongable atomic.Bool
	// lastSeen is the UnixNano of the last inbound frame.
	lastSeen atomic.Int64
	// countState tracks which census bucket (subV1/subV2/subSeq) this
	// subscriber is counted in; removal swaps in subGone exactly once.
	countState atomic.Int32
	// bw is conn's writev-style batch interface when it has one (netmem
	// conns); resolved once at registration.
	bw buffersWriter
	// wcount counts writer batches since the last wake-from-empty; the
	// write deadline is re-armed when it is 0 (and every 256th batch in
	// a sustained burst), so steady-state drains skip the timer reset.
	// Touched only by the serve goroutine.
	wcount uint32
}

// buffersWriter is the vectored-write interface non-TCP conns may
// provide (netmem does): all buffers under one lock with one reader
// wakeup, the in-memory analogue of writev.
type buffersWriter interface {
	WriteBuffers(bufs net.Buffers) (int64, error)
}

// wakeWriter nudges the subscriber's writer goroutine (non-blocking:
// capacity-1 channel coalesces redundant wakeups).
func (sub *subscriber) wakeWriter() {
	select {
	case sub.wake <- struct{}{}:
	default:
	}
}

// writerBatch is how many ring entries a writer drains per wakeup; all
// their frames go out in one writev.
const writerBatch = 32

// maxShards bounds SetShards.
const maxShards = 64

// defaultFlushAfter bounds how long a partial batch may wait once
// batching is enabled without an explicit deadline.
const defaultFlushAfter = 25 * time.Millisecond

// Defaults for the resilience knobs.
const (
	// DefaultHeartbeat is the per-subscriber heartbeat period.
	DefaultHeartbeat = 5 * time.Second
	// DefaultHeartbeatMiss is how many silent heartbeat periods a
	// pong-capable subscriber survives.
	DefaultHeartbeatMiss = 3
	// DefaultReplayWindow is the replay ring size (readings).
	DefaultReplayWindow = 1024
	// DefaultDrainTimeout bounds the graceful drain in Close.
	DefaultDrainTimeout = 2 * time.Second
)

// Pre-encoded constant frames: these never vary, so encoding them per
// subscriber per tick was pure waste on the hot path.
var (
	helloFrame      = mustFrame(MsgHello, []byte{ProtocolV1})
	heartbeatFrame  = mustFrame(MsgHeartbeat, nil)
	heartbeatFrames = [][]byte{heartbeatFrame}
	goodbyeFrame    = mustFrame(MsgGoodbye, nil)
	goodbyeFrames   = [][]byte{goodbyeFrame}
	pongFrame       = mustFrame(MsgPong, nil)
)

func mustFrame(t MsgType, payload []byte) []byte {
	f, err := EncodeFrame(t, payload)
	if err != nil {
		panic(err)
	}
	return f
}

// NewServer starts listening on addr (e.g. "127.0.0.1:0"). The returned
// server accepts connections until Close or ctx cancellation.
func NewServer(ctx context.Context, addr string, logf func(string, ...interface{})) (*Server, error) {
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewServerListener(ctx, ln, logf), nil
}

// NewServerListener serves an existing listener — the hook load and chaos
// harnesses use to interpose a netfaults.Listener (or an in-memory
// netmem.Listener) between the gateway and its subscribers. The server
// owns ln from here on and closes it on Close or ctx cancellation.
func NewServerListener(ctx context.Context, ln net.Listener, logf func(string, ...interface{})) *Server {
	if logf == nil {
		logf = log.Printf
	}
	s := &Server{
		ln:           ln,
		logf:         logf,
		hbPeriod:     DefaultHeartbeat,
		hbMiss:       DefaultHeartbeatMiss,
		drainTimeout: DefaultDrainTimeout,
		nextSeq:      1,
		ring:         NewReplayRing(DefaultReplayWindow),
		batchMax:     1,
		freeBcast:    make(chan *broadcast, broadcastFreelist),
		hbDone:       make(chan struct{}),
	}
	s.hbTimer = time.NewTimer(s.hbPeriod)
	s.startShards(defaultShards())
	s.wg.Add(2)
	go s.acceptLoop(ctx)
	go s.heartbeatLoop()
	return s
}

// heartbeatLoop paces the liveness sweep: every heartbeat period it
// queues one sweep entry per shard, and the shard flushers push the
// pre-encoded MsgHeartbeat frame into idle rings and evict pong-capable
// subscribers that went silent. Centralizing this removes the per-
// subscriber ticker and the two-way select from the writer hot loop —
// at 100k sessions those were a measurable share of every wakeup.
func (s *Server) heartbeatLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.hbTimer.C:
		case <-s.hbDone:
			return
		}
		s.seqMu.Lock()
		if s.closed {
			s.seqMu.Unlock()
			return
		}
		period := s.hbPeriod
		silence := time.Duration(s.hbMiss) * period
		for _, sh := range s.shards {
			sh.enqueue(shardEntry{kind: entryHeartbeat, silence: silence})
		}
		s.hbTimer.Reset(period)
		s.seqMu.Unlock()
	}
}

// defaultShards sizes the registry to the machine: one shard per
// available CPU, capped — beyond a handful the shard locks stop being
// the bottleneck and the extra flusher goroutines are dead weight.
func defaultShards() int {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	if n > 8 {
		n = 8
	}
	return n
}

// startShards replaces the shard set. Callers hold seqMu (or are the
// constructor).
func (s *Server) startShards(n int) {
	s.shards = make([]*shard, n)
	for i := range s.shards {
		s.shards[i] = newShard(s)
		s.wg.Add(1)
		go s.shards[i].run()
	}
}

// SetShards resizes the fan-out to n shards (clamped to [1, 64]). Only
// honored before any subscriber connects — the registry cannot be
// re-sharded under live sessions.
func (s *Server) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	if n > maxShards {
		n = maxShards
	}
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	if s.closed || s.subCount.Load() != 0 || n == len(s.shards) {
		return
	}
	for _, sh := range s.shards {
		sh.closeQueue() // empty registries: flushers just exit
	}
	s.startShards(n)
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop(ctx context.Context) {
	defer s.wg.Done()
	// Close the listener when the context ends so Accept unblocks.
	stop := context.AfterFunc(ctx, func() { s.ln.Close() })
	defer stop()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !s.register(conn) {
			return // server closing
		}
	}
}

// register wires a new connection into the fan-out: pick a shard
// round-robin, join its registry, and start the session goroutines.
func (s *Server) register(conn net.Conn) bool {
	s.seqMu.Lock()
	if s.closed {
		s.seqMu.Unlock()
		conn.Close()
		return false
	}
	sh := s.shards[s.shardIdx%len(s.shards)]
	s.shardIdx++
	s.seqMu.Unlock()

	sub := &subscriber{
		conn:  conn,
		ring:  newFrameRing(),
		wake:  make(chan struct{}, 1),
		shard: sh,
	}
	_, sub.isTCP = conn.(*net.TCPConn)
	sub.bw, _ = conn.(buffersWriter)
	sub.class.Store(classV1)
	sub.countState.Store(subV1)
	sub.lastSeen.Store(time.Now().UnixNano())

	sh.mu.Lock()
	if sh.dead {
		sh.mu.Unlock()
		conn.Close()
		return false
	}
	sh.subs[sub] = struct{}{}
	s.cntV1.Add(1)
	// The serve/readLoop goroutines join the WaitGroup before the shard
	// lock is released: Close's wg.Wait cannot slip between registration
	// and wg.Add and leak a goroutine (the shard flushers keep the
	// counter nonzero until after their shutdown entry runs, which needs
	// this same lock).
	s.wg.Add(2)
	sh.mu.Unlock()

	n := s.subCount.Add(1)
	m := s.met()
	m.connects.Inc()
	m.subscribers.Set(float64(n))
	go s.serve(sub)
	go s.readLoop(sub)
	return true
}

// readLoop drains frames the subscriber sends upstream. v1 clients send
// nothing — the loop just waits for the connection to close. A Hello
// frame carrying a protocol version upgrades the subscriber (the v2
// negotiation); MsgPong refreshes liveness; MsgResume switches the
// subscriber to sequenced delivery and replays its gap. Everything else
// is ignored for forward compatibility.
func (s *Server) readLoop(sub *subscriber) {
	defer s.wg.Done()
	var buf []byte
	for {
		t, payload, err := ReadFrameBuf(sub.conn, buf)
		if err != nil {
			// The peer hung up (or sent garbage): tear the subscriber down
			// now rather than waiting for the next write to fail. drop is
			// idempotent, so racing serve's own teardown is fine.
			s.drop(sub)
			return
		}
		if cap(payload) > cap(buf) {
			buf = payload[:0]
		}
		sub.lastSeen.Store(time.Now().UnixNano())
		switch t {
		case MsgHello:
			if len(payload) == 1 && payload[0] >= ProtocolV2 {
				if sub.countState.CompareAndSwap(subV1, subV2) {
					s.cntV1.Add(-1)
					s.cntV2.Add(1)
				}
				sub.class.CompareAndSwap(classV1, classV2)
				sub.pongable.Store(true)
				s.met().upgrades.Inc()
			}
		case MsgPong:
			sub.pongable.Store(true)
		case MsgResume:
			lastSeq, err := DecodeResume(payload)
			if err != nil {
				continue
			}
			s.handleResume(sub, lastSeq)
		}
	}
}

// handleResume computes the replay under the sequence lock and routes it
// through the subscriber's shard queue as a control entry, so the ack
// and replayed sequences land strictly before any flush enqueued later
// — the flusher processes its queue FIFO, and every enqueue (this one
// and all flushes) happens under seqMu.
func (s *Server) handleResume(sub *subscriber, lastSeq uint64) {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	if s.closed {
		return
	}
	// Move the subscriber to the sequenced census bucket; a subscriber
	// already removed (subGone) gets nothing.
	switch {
	case sub.countState.CompareAndSwap(subV2, subSeq):
		s.cntV2.Add(-1)
		s.cntSeq.Add(1)
	case sub.countState.CompareAndSwap(subV1, subSeq):
		s.cntV1.Add(-1)
		s.cntSeq.Add(1)
	case sub.countState.Load() == subSeq:
		// Repeated resume on a live session: recompute the replay below.
	default:
		return
	}
	sub.class.CompareAndSwap(classV1, classV2)
	sub.pongable.Store(true)
	// sub.class flips to classSeq when the shard flusher lands the
	// entry, which keeps the v2→seq delivery switch FIFO with
	// surrounding flushes.

	// Replay covers everything up to (not including) the pending batch:
	// pending readings reach this subscriber through the ordinary flush,
	// already sequenced, so replaying them too would duplicate.
	replayEnd := s.nextSeq - uint64(len(s.pending)) // == pendingFirst when pending
	s.replayBuf = s.replayBuf[:0]
	var firstSeq uint64
	if s.ring != nil {
		s.replayBuf, firstSeq = s.ring.Since(lastSeq, s.replayBuf)
		// Trim pending-tail overlap (ring already holds pending readings).
		if firstSeq > 0 && firstSeq+uint64(len(s.replayBuf)) > replayEnd {
			keep := int(replayEnd - firstSeq)
			if keep < 0 {
				keep = 0
			}
			s.replayBuf = s.replayBuf[:keep]
		}
		if len(s.replayBuf) == 0 {
			firstSeq = 0
		}
	}
	replayFrom := replayEnd
	if firstSeq > 0 {
		replayFrom = firstSeq
	}
	ack := AppendResumeAck(nil, replayFrom, replayEnd)
	frame, err := EncodeFrame(MsgResumeAck, ack)
	if err != nil {
		return
	}
	frames := [][]byte{frame}
	if len(s.replayBuf) > 0 {
		frames = appendSeqBatchFramesAlloc(frames, s.replayBuf, firstSeq, s.logf)
	}
	sub.shard.enqueue(shardEntry{kind: entryResume, sub: sub, frames: frames})
	m := s.met()
	m.resumes.Inc()
	m.replayed.Add(int64(len(s.replayBuf)))
}

// serve is the subscriber's writer goroutine: handshake, then drain the
// frame ring — many entries per wakeup, all frames in one writev. The
// wait is a bare channel receive: heartbeats and dead-peer checks are
// the heartbeat sweep's job (heartbeatLoop), which queues pre-encoded
// MsgHeartbeat frames through this same ring, so the hot loop carries no
// ticker and no select.
func (s *Server) serve(sub *subscriber) {
	defer s.wg.Done()
	defer s.drop(sub)
	if err := s.writeOne(sub, helloFrame); err != nil {
		return
	}
	entries := make([]ringEntry, writerBatch)
	var bufs net.Buffers
	var flat []byte
	for {
		n, done := sub.ring.popInto(entries)
		if n == 0 {
			if done {
				return
			}
			<-sub.wake
			sub.wcount = 0 // re-arm the write deadline on the next batch
			continue
		}
		err := s.writeEntries(sub, entries[:n], &bufs, &flat)
		for i := 0; i < n; i++ {
			s.releaseBroadcast(entries[i].b)
			entries[i] = ringEntry{}
		}
		if err != nil {
			return
		}
	}
}

// armWriteDeadline keeps a write guard on conn without paying a clock
// read and timer reset per batch: the deadline is armed on the first
// batch after a wake-from-empty and every 256th batch of a sustained
// burst (a burst that slow re-arms a fresh 5s window each time; a conn
// that stalls outright still hits the last armed deadline within 5s).
// The guard is a hang detector, not a precision timeout. Once Close
// starts draining, the drain deadline wins and is always re-armed
// exactly.
func (s *Server) armWriteDeadline(sub *subscriber) {
	if until := s.drainUntil.Load(); until != 0 {
		deadline := time.Now().Add(5 * time.Second)
		if d := time.Unix(0, until); d.Before(deadline) {
			deadline = d
		}
		sub.conn.SetWriteDeadline(deadline)
		sub.wcount = 1
		return
	}
	if sub.wcount&255 == 0 {
		sub.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	}
	sub.wcount++
}

// writeOne writes a single frame (handshake, heartbeat).
func (s *Server) writeOne(sub *subscriber, frame []byte) error {
	s.armWriteDeadline(sub)
	_, err := sub.conn.Write(frame)
	m := s.met()
	if err != nil {
		m.writeErrors.Inc()
	} else {
		m.framesSent.Inc()
	}
	return err
}

// writeEntries flushes a batch of ring entries: all frames in one writev
// on TCP, or one coalesced Write elsewhere (wrapped and in-memory conns),
// so a wakeup costs one syscall no matter how many flushes queued up.
func (s *Server) writeEntries(sub *subscriber, es []ringEntry, bufs *net.Buffers, flat *[]byte) error {
	*bufs = (*bufs)[:0]
	for _, e := range es {
		*bufs = append(*bufs, e.frames...)
	}
	nf := len(*bufs)
	if nf == 0 {
		return nil
	}
	s.armWriteDeadline(sub)
	var err error
	switch {
	case nf == 1:
		_, err = sub.conn.Write((*bufs)[0])
	case sub.isTCP:
		v := *bufs // WriteTo consumes its receiver; keep our header intact
		_, err = v.WriteTo(sub.conn)
	case sub.bw != nil:
		_, err = sub.bw.WriteBuffers(*bufs)
	default:
		*flat = (*flat)[:0]
		for _, f := range *bufs {
			*flat = append(*flat, f...)
		}
		_, err = sub.conn.Write(*flat)
	}
	m := s.met()
	if err != nil {
		m.writeErrors.Inc()
	} else {
		m.framesSent.Add(int64(nf))
	}
	return err
}

// drop tears a subscriber down; idempotent across the serve defer, the
// readLoop error path, and flusher-side eviction.
func (s *Server) drop(sub *subscriber) {
	sh := sub.shard
	sh.mu.Lock()
	if _, ok := sh.subs[sub]; ok {
		sh.removeLocked(sub)
		sub.ring.discard(s.releaseBroadcast)
		sub.wakeWriter()
	}
	sh.mu.Unlock()
	sub.conn.Close()
}

// SetHeartbeat changes the idle heartbeat period for subscribers that
// connect afterwards (existing subscribers keep their period).
func (s *Server) SetHeartbeat(d time.Duration) {
	s.seqMu.Lock()
	if d > 0 {
		s.hbPeriod = d
		s.hbTimer.Reset(d)
	}
	s.seqMu.Unlock()
}

// SetHeartbeatPolicy sets both the heartbeat period and the number of
// silent periods after which a pong-capable subscriber is declared dead.
// Applies to subscribers that connect afterwards.
func (s *Server) SetHeartbeatPolicy(period time.Duration, miss int) {
	s.seqMu.Lock()
	if period > 0 {
		s.hbPeriod = period
		s.hbTimer.Reset(period)
	}
	if miss > 0 {
		s.hbMiss = miss
	}
	s.seqMu.Unlock()
}

// SetReplay resizes the replay ring to keep the last n readings (0
// disables replay: resumes still sequence, but recover nothing). The
// ring restarts empty at the current sequence point.
func (s *Server) SetReplay(n int) {
	s.seqMu.Lock()
	if n > 0 {
		r := NewReplayRing(n)
		r.next = s.nextSeq - uint64(len(s.pending))
		// Re-seed with the pending readings so an immediate resume does
		// not miss them if a flush intervenes.
		for i, rd := range s.pending {
			r.Append(s.pendingFirst+uint64(i), rd)
		}
		s.ring = r
	} else {
		s.ring = nil
	}
	s.seqMu.Unlock()
}

// SetDrainTimeout bounds Close's graceful drain (how long pending frames
// and the goodbye may take to reach slow subscribers).
func (s *Server) SetDrainTimeout(d time.Duration) {
	s.seqMu.Lock()
	if d > 0 {
		s.drainTimeout = d
	}
	s.seqMu.Unlock()
}

// SetBatching coalesces published readings: a flush happens when max
// readings are pending or flushAfter has elapsed since the first one,
// whichever comes first. max ≤ 1 disables coalescing (the default);
// flushAfter ≤ 0 selects a 25 ms deadline. Readings already pending are
// flushed before the change takes effect.
func (s *Server) SetBatching(max int, flushAfter time.Duration) {
	s.seqMu.Lock()
	s.flushLocked()
	if max < 1 {
		max = 1
	}
	if flushAfter <= 0 {
		flushAfter = defaultFlushAfter
	}
	s.batchMax = max
	s.flushAfter = flushAfter
	s.seqMu.Unlock()
}

// Publish broadcasts a reading to every subscriber, coalescing according
// to SetBatching. The reading is assigned the next stream sequence and
// retained in the replay ring. Subscribers whose rings are full are
// disconnected. Publish never blocks on subscriber I/O.
func (s *Server) Publish(rd Reading) {
	s.seqMu.Lock()
	if s.closed {
		s.seqMu.Unlock()
		return
	}
	if len(s.pending) == 0 {
		s.pendingFirst = s.nextSeq
	}
	if s.ring != nil {
		s.ring.Append(s.nextSeq, rd)
	}
	s.nextSeq++
	s.pending = append(s.pending, rd)
	if len(s.pending) >= s.batchMax {
		s.flushLocked()
	} else if !s.timerArmed {
		// One reusable timer instead of a fresh AfterFunc per partial
		// batch: the steady-state publish path must not allocate.
		if s.flushTimer == nil {
			s.flushTimer = time.AfterFunc(s.flushAfter, s.deadlineFlush)
		} else {
			s.flushTimer.Reset(s.flushAfter)
		}
		s.timerArmed = true
	}
	s.seqMu.Unlock()
}

// NextSeq returns the stream sequence the next published reading will
// carry (1 on a fresh server).
func (s *Server) NextSeq() uint64 {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	return s.nextSeq
}

// Flush forces any pending readings onto the wire immediately.
func (s *Server) Flush() {
	s.seqMu.Lock()
	s.flushLocked()
	s.seqMu.Unlock()
}

// deadlineFlush is the timer callback for a partial batch.
func (s *Server) deadlineFlush() {
	s.seqMu.Lock()
	s.timerArmed = false
	s.flushLocked()
	s.seqMu.Unlock()
}

// flushLocked encodes the pending readings once — only the variants the
// live census needs — and hands the broadcast arena to every shard
// flusher. Per-subscriber work (ring pushes, evictions, socket writes)
// happens downstream, off this lock. Callers hold seqMu.
func (s *Server) flushLocked() {
	if s.timerArmed {
		s.flushTimer.Stop()
		s.timerArmed = false
	}
	if len(s.pending) == 0 {
		return
	}
	needV1 := s.cntV1.Load() > 0
	needV2 := s.cntV2.Load() > 0
	needSeq := s.cntSeq.Load() > 0
	m := s.met()
	if needV1 || needV2 || needSeq {
		b := s.getBroadcast()
		nBatch := s.encodeBroadcast(b, needV1, needV2, needSeq)
		// One reference per shard; flushers add one per subscriber ring
		// they land the arena in, then drop their own.
		b.refs.Store(int64(len(s.shards)))
		for _, sh := range s.shards {
			sh.enqueue(shardEntry{kind: entryBroadcast, b: b})
		}
		if nBatch > 0 {
			m.batches.Add(int64(nBatch))
		}
	}
	m.readings.Add(int64(len(s.pending)))
	s.pending = s.pending[:0]
}

// Subscribers returns the current subscriber count.
func (s *Server) Subscribers() int {
	return int(s.subCount.Load())
}

// Close drains gracefully: flush pending readings, stop accepting, queue
// a MsgGoodbye to every subscriber, bound all remaining socket writes by
// the drain timeout, and wait for the server goroutines to finish.
// Subscribers see the tail of the stream plus the goodbye rather than a
// mid-frame reset.
func (s *Server) Close() error {
	s.seqMu.Lock()
	if s.closed {
		s.seqMu.Unlock()
		return nil
	}
	s.flushLocked()
	s.closed = true
	close(s.hbDone)
	err := s.ln.Close()
	s.drainUntil.Store(time.Now().Add(s.drainTimeout).UnixNano())
	// The shutdown entry is the last thing each flusher processes after
	// the final flush (FIFO), so queued frames — goodbye included — still
	// reach subscribers under the drain deadline.
	for _, sh := range s.shards {
		sh.enqueue(shardEntry{kind: entryShutdown})
		sh.closeQueue()
	}
	s.seqMu.Unlock()
	s.wg.Wait()
	return err
}
