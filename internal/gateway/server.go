package gateway

import (
	"context"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Server fans decoded readings out to TCP subscribers. Slow subscribers are
// disconnected rather than allowed to exert backpressure on the reader (a
// live telemetry feed must never stall the acoustic polling loop).
//
// Published readings can be coalesced (SetBatching): the server buffers
// them and flushes when the batch fills or a deadline expires. At flush,
// v1 subscribers receive one MsgReading frame per reading — exactly the
// original stream, just bursty — while subscribers that negotiated
// protocol v2 (by sending a Hello frame back) receive one MsgReadingBatch
// frame per flush, cutting wire bytes per reading several-fold.
type Server struct {
	ln     net.Listener
	logf   func(format string, args ...interface{})
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
	wg     sync.WaitGroup

	heartbeat time.Duration

	// Broadcast coalescing state, guarded by mu. batchMax 1 (the
	// default) publishes immediately, preserving v1 latency.
	batchMax   int
	flushAfter time.Duration
	pending    []Reading
	flushTimer *time.Timer
	v1Payload  []byte // scratch for one v1 reading payload
	v2Payload  []byte // scratch for one batch payload

	// metrics is swapped atomically by Instrument; nil means telemetry is
	// off and every recording below is a free no-op.
	metrics metricsPtr
}

type subscriber struct {
	conn net.Conn
	ch   chan []byte // encoded frames
	// version is the negotiated protocol: 1 until the client's Hello
	// upgrades it (written by the per-subscriber read loop, read by the
	// flush path).
	version atomic.Uint32
}

// sendBuffer is the per-subscriber queue; a full queue marks the
// subscriber as too slow.
const sendBuffer = 64

// defaultFlushAfter bounds how long a partial batch may wait once
// batching is enabled without an explicit deadline.
const defaultFlushAfter = 25 * time.Millisecond

// NewServer starts listening on addr (e.g. "127.0.0.1:0"). The returned
// server accepts connections until Close or ctx cancellation.
func NewServer(ctx context.Context, addr string, logf func(string, ...interface{})) (*Server, error) {
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if logf == nil {
		logf = log.Printf
	}
	s := &Server{
		ln:        ln,
		logf:      logf,
		subs:      make(map[*subscriber]struct{}),
		heartbeat: 5 * time.Second,
		batchMax:  1,
	}
	s.wg.Add(1)
	go s.acceptLoop(ctx)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop(ctx context.Context) {
	defer s.wg.Done()
	// Close the listener when the context ends so Accept unblocks.
	stop := context.AfterFunc(ctx, func() { s.ln.Close() })
	defer stop()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sub := &subscriber{conn: conn, ch: make(chan []byte, sendBuffer)}
		sub.version.Store(ProtocolV1)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.subs[sub] = struct{}{}
		n := len(s.subs)
		s.mu.Unlock()
		m := s.met()
		m.connects.Inc()
		m.subscribers.Set(float64(n))
		s.wg.Add(2)
		go s.serve(sub)
		go s.readLoop(sub)
	}
}

// readLoop drains frames the subscriber sends upstream. v1 clients send
// nothing — the loop just waits for the connection to close. A Hello
// frame carrying a protocol version upgrades the subscriber (the v2
// negotiation); everything else is ignored for forward compatibility.
func (s *Server) readLoop(sub *subscriber) {
	defer s.wg.Done()
	for {
		t, payload, err := ReadFrame(sub.conn)
		if err != nil {
			return // connection closed or garbage; serve/drop handle teardown
		}
		if t == MsgHello && len(payload) == 1 && payload[0] >= ProtocolV2 {
			sub.version.Store(ProtocolV2)
			s.met().upgrades.Inc()
		}
	}
}

func (s *Server) serve(sub *subscriber) {
	defer s.wg.Done()
	defer s.drop(sub)
	// Handshake: the hello payload stays the single byte [1] that v1
	// clients require; v2-capable clients answer with their own Hello.
	hello, err := EncodeFrame(MsgHello, []byte{ProtocolV1})
	if err != nil {
		return
	}
	if err := s.write(sub, hello); err != nil {
		return
	}
	s.mu.Lock()
	period := s.heartbeat
	s.mu.Unlock()
	hb := time.NewTicker(period)
	defer hb.Stop()
	for {
		select {
		case frame, ok := <-sub.ch:
			if !ok {
				return
			}
			if err := s.write(sub, frame); err != nil {
				return
			}
		case <-hb.C:
			frame, err := EncodeFrame(MsgHeartbeat, nil)
			if err != nil {
				return
			}
			if err := s.write(sub, frame); err != nil {
				return
			}
			s.met().heartbeats.Inc()
		}
	}
}

func (s *Server) write(sub *subscriber, frame []byte) error {
	sub.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	_, err := sub.conn.Write(frame)
	m := s.met()
	if err != nil {
		m.writeErrors.Inc()
	} else {
		m.framesSent.Inc()
	}
	return err
}

func (s *Server) drop(sub *subscriber) {
	s.mu.Lock()
	if _, ok := s.subs[sub]; ok {
		delete(s.subs, sub)
		close(sub.ch)
	}
	n := len(s.subs)
	s.mu.Unlock()
	sub.conn.Close()
	s.met().subscribers.Set(float64(n))
}

// SetHeartbeat changes the idle heartbeat period for subscribers that
// connect afterwards (existing subscribers keep their period).
func (s *Server) SetHeartbeat(d time.Duration) {
	s.mu.Lock()
	if d > 0 {
		s.heartbeat = d
	}
	s.mu.Unlock()
}

// SetBatching coalesces published readings: a flush happens when max
// readings are pending or flushAfter has elapsed since the first one,
// whichever comes first. max ≤ 1 disables coalescing (the default);
// flushAfter ≤ 0 selects a 25 ms deadline. Readings already pending are
// flushed before the change takes effect.
func (s *Server) SetBatching(max int, flushAfter time.Duration) {
	s.mu.Lock()
	s.flushLocked()
	if max < 1 {
		max = 1
	}
	if flushAfter <= 0 {
		flushAfter = defaultFlushAfter
	}
	s.batchMax = max
	s.flushAfter = flushAfter
	s.mu.Unlock()
}

// Publish broadcasts a reading to every subscriber, coalescing according
// to SetBatching. Subscribers whose queues are full are disconnected.
// Publish never blocks.
func (s *Server) Publish(rd Reading) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.pending = append(s.pending, rd)
	if len(s.pending) >= s.batchMax {
		s.flushLocked()
	} else if s.flushTimer == nil {
		s.flushTimer = time.AfterFunc(s.flushAfter, s.deadlineFlush)
	}
	s.mu.Unlock()
}

// Flush forces any pending readings onto the wire immediately.
func (s *Server) Flush() {
	s.mu.Lock()
	s.flushLocked()
	s.mu.Unlock()
}

// deadlineFlush is the timer callback for a partial batch.
func (s *Server) deadlineFlush() {
	s.mu.Lock()
	s.flushTimer = nil
	s.flushLocked()
	s.mu.Unlock()
}

// flushLocked encodes the pending readings and enqueues them to every
// subscriber: per-reading MsgReading frames for v1 subscribers, one
// MsgReadingBatch frame (split only if a pathological batch overflows
// the payload bound) for v2 subscribers. Callers hold s.mu.
func (s *Server) flushLocked() {
	if s.flushTimer != nil {
		s.flushTimer.Stop()
		s.flushTimer = nil
	}
	if len(s.pending) == 0 {
		return
	}
	needV1, needV2 := false, false
	for sub := range s.subs {
		if sub.version.Load() >= ProtocolV2 {
			needV2 = true
		} else {
			needV1 = true
		}
	}
	var v1Frames, v2Frames [][]byte
	if needV1 {
		v1Frames = make([][]byte, 0, len(s.pending))
		for _, rd := range s.pending {
			s.v1Payload = AppendReading(s.v1Payload[:0], rd)
			frame, err := EncodeFrame(MsgReading, s.v1Payload)
			if err != nil {
				s.logf("gateway: encode reading: %v", err)
				continue
			}
			v1Frames = append(v1Frames, frame)
		}
	}
	if needV2 {
		v2Frames = s.appendBatchFrames(nil, s.pending)
	}
	var tooSlow []*subscriber
	for sub := range s.subs {
		frames := v1Frames
		if sub.version.Load() >= ProtocolV2 {
			frames = v2Frames
		}
		for _, frame := range frames {
			select {
			case sub.ch <- frame:
			default:
				tooSlow = append(tooSlow, sub)
			}
			if len(tooSlow) > 0 && tooSlow[len(tooSlow)-1] == sub {
				break
			}
		}
	}
	// Remove saturated subscribers under the same lock so a second
	// flush cannot double-close their channels.
	for _, sub := range tooSlow {
		delete(s.subs, sub)
		close(sub.ch)
		sub.conn.Close()
		s.logf("gateway: dropped slow subscriber %v", sub.conn.RemoteAddr())
	}
	published := len(s.pending)
	s.pending = s.pending[:0]
	n := len(s.subs)
	m := s.met()
	m.readings.Add(int64(published))
	if needV2 {
		m.batches.Add(int64(len(v2Frames)))
	}
	m.slowDrops.Add(int64(len(tooSlow)))
	m.subscribers.Set(float64(n))
}

// appendBatchFrames encodes readings as one MsgReadingBatch frame,
// splitting recursively in the (pathological) case the encoded block
// exceeds the frame payload bound.
func (s *Server) appendBatchFrames(frames [][]byte, rds []Reading) [][]byte {
	if len(rds) == 0 {
		return frames
	}
	payload, err := AppendReadingBatch(s.v2Payload[:0], rds)
	if err == ErrOversize && len(rds) > 1 {
		half := len(rds) / 2
		frames = s.appendBatchFrames(frames, rds[:half])
		return s.appendBatchFrames(frames, rds[half:])
	}
	if err != nil {
		s.logf("gateway: encode reading batch: %v", err)
		return frames
	}
	s.v2Payload = payload[:0]
	frame, err := EncodeFrame(MsgReadingBatch, payload)
	if err != nil {
		s.logf("gateway: encode batch frame: %v", err)
		return frames
	}
	return append(frames, frame)
}

// Subscribers returns the current subscriber count.
func (s *Server) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Close flushes pending readings, stops accepting, disconnects all
// subscribers and waits for the server goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.flushLocked()
	s.closed = true
	err := s.ln.Close()
	for sub := range s.subs {
		delete(s.subs, sub)
		close(sub.ch)
		sub.conn.Close()
	}
	s.mu.Unlock()
	s.met().subscribers.Set(0)
	s.wg.Wait()
	return err
}
