package gateway

import (
	"context"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Server fans decoded readings out to TCP subscribers. Slow subscribers are
// disconnected rather than allowed to exert backpressure on the reader (a
// live telemetry feed must never stall the acoustic polling loop).
//
// Published readings can be coalesced (SetBatching): the server buffers
// them and flushes when the batch fills or a deadline expires. At flush,
// v1 subscribers receive one MsgReading frame per reading — exactly the
// original stream, just bursty — while subscribers that negotiated
// protocol v2 (by sending a Hello frame back) receive one MsgReadingBatch
// frame per flush, cutting wire bytes per reading several-fold.
//
// Resilience (see resume.go and DESIGN.md "Gateway resilience contract"):
// every reading gets a stream sequence and enters a replay ring, so a
// subscriber that sent MsgResume recovers its reconnect gap as sequenced
// MsgSeqBatch frames; heartbeats double as dead-peer probes (subscribers
// that have ponged once are dropped when pongs stop); Close drains
// gracefully — flush, MsgGoodbye, bounded writes — instead of snapping
// every socket mid-frame.
type Server struct {
	ln   net.Listener
	logf func(format string, args ...interface{})
	mu   sync.Mutex
	subs map[*subscriber]struct{}

	closed bool
	wg     sync.WaitGroup

	// Heartbeat policy: period between MsgHeartbeat frames per subscriber,
	// and how many periods of inbound silence a pong-capable subscriber
	// survives before it is declared dead. Guarded by mu.
	hbPeriod time.Duration
	hbMiss   int

	// drainTimeout bounds Close's graceful drain; drainUntil (atomic
	// UnixNano, 0 = not draining) caps every socket write once draining.
	drainTimeout time.Duration
	drainUntil   atomic.Int64

	// Stream sequencing and replay, guarded by mu. nextSeq is the sequence
	// the next published reading will carry; pendingFirst is the sequence
	// of pending[0]. ring retains the replay window (nil = resume serves
	// live-only).
	nextSeq      uint64
	pendingFirst uint64
	ring         *ReplayRing

	// Broadcast coalescing state, guarded by mu. batchMax 1 (the
	// default) publishes immediately, preserving v1 latency.
	batchMax   int
	flushAfter time.Duration
	pending    []Reading
	flushTimer *time.Timer
	v1Payload  []byte    // scratch for one v1 reading payload
	v2Payload  []byte    // scratch for one batch payload
	replayBuf  []Reading // scratch for ring replays

	// metrics is swapped atomically by Instrument; nil means telemetry is
	// off and every recording below is a free no-op.
	metrics metricsPtr
}

type subscriber struct {
	conn net.Conn
	ch   chan []byte // encoded frames
	// version is the negotiated protocol: 1 until the client's Hello
	// upgrades it (written by the per-subscriber read loop, read by the
	// flush path).
	version atomic.Uint32
	// sequenced flips when the client sends MsgResume: from then on the
	// flush path sends MsgSeqBatch frames to this subscriber.
	sequenced atomic.Bool
	// pongable flips on the first inbound pong/hello: only subscribers
	// that have proven they answer are liveness-judged by silence.
	pongable atomic.Bool
	// lastSeen is the UnixNano of the last inbound frame.
	lastSeen atomic.Int64
}

// sendBuffer is the per-subscriber queue; a full queue marks the
// subscriber as too slow.
const sendBuffer = 64

// defaultFlushAfter bounds how long a partial batch may wait once
// batching is enabled without an explicit deadline.
const defaultFlushAfter = 25 * time.Millisecond

// Defaults for the resilience knobs.
const (
	// DefaultHeartbeat is the per-subscriber heartbeat period.
	DefaultHeartbeat = 5 * time.Second
	// DefaultHeartbeatMiss is how many silent heartbeat periods a
	// pong-capable subscriber survives.
	DefaultHeartbeatMiss = 3
	// DefaultReplayWindow is the replay ring size (readings).
	DefaultReplayWindow = 1024
	// DefaultDrainTimeout bounds the graceful drain in Close.
	DefaultDrainTimeout = 2 * time.Second
)

// NewServer starts listening on addr (e.g. "127.0.0.1:0"). The returned
// server accepts connections until Close or ctx cancellation.
func NewServer(ctx context.Context, addr string, logf func(string, ...interface{})) (*Server, error) {
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewServerListener(ctx, ln, logf), nil
}

// NewServerListener serves an existing listener — the hook load and chaos
// harnesses use to interpose a netfaults.Listener (or any wrapper)
// between the gateway and its subscribers. The server owns ln from here
// on and closes it on Close or ctx cancellation.
func NewServerListener(ctx context.Context, ln net.Listener, logf func(string, ...interface{})) *Server {
	if logf == nil {
		logf = log.Printf
	}
	s := &Server{
		ln:           ln,
		logf:         logf,
		subs:         make(map[*subscriber]struct{}),
		hbPeriod:     DefaultHeartbeat,
		hbMiss:       DefaultHeartbeatMiss,
		drainTimeout: DefaultDrainTimeout,
		nextSeq:      1,
		ring:         NewReplayRing(DefaultReplayWindow),
		batchMax:     1,
	}
	s.wg.Add(1)
	go s.acceptLoop(ctx)
	return s
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop(ctx context.Context) {
	defer s.wg.Done()
	// Close the listener when the context ends so Accept unblocks.
	stop := context.AfterFunc(ctx, func() { s.ln.Close() })
	defer stop()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sub := &subscriber{conn: conn, ch: make(chan []byte, sendBuffer)}
		sub.version.Store(ProtocolV1)
		sub.lastSeen.Store(time.Now().UnixNano())
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.subs[sub] = struct{}{}
		n := len(s.subs)
		// The serve/readLoop goroutines join the WaitGroup before the
		// lock is released: Close observes either no subscriber (conn
		// closed above) or a fully accounted one — it cannot slip between
		// registration and wg.Add and leak a goroutine.
		s.wg.Add(2)
		s.mu.Unlock()
		m := s.met()
		m.connects.Inc()
		m.subscribers.Set(float64(n))
		go s.serve(sub)
		go s.readLoop(sub)
	}
}

// readLoop drains frames the subscriber sends upstream. v1 clients send
// nothing — the loop just waits for the connection to close. A Hello
// frame carrying a protocol version upgrades the subscriber (the v2
// negotiation); MsgPong refreshes liveness; MsgResume switches the
// subscriber to sequenced delivery and replays its gap. Everything else
// is ignored for forward compatibility.
func (s *Server) readLoop(sub *subscriber) {
	defer s.wg.Done()
	var buf []byte
	for {
		t, payload, err := ReadFrameBuf(sub.conn, buf)
		if err != nil {
			// The peer hung up (or sent garbage): tear the subscriber down
			// now rather than waiting for the next write to fail. drop is
			// idempotent, so racing serve's own teardown is fine.
			s.drop(sub)
			return
		}
		if cap(payload) > cap(buf) {
			buf = payload[:0]
		}
		sub.lastSeen.Store(time.Now().UnixNano())
		switch t {
		case MsgHello:
			if len(payload) == 1 && payload[0] >= ProtocolV2 {
				sub.version.Store(ProtocolV2)
				sub.pongable.Store(true)
				s.met().upgrades.Inc()
			}
		case MsgPong:
			sub.pongable.Store(true)
		case MsgResume:
			lastSeq, err := DecodeResume(payload)
			if err != nil {
				continue
			}
			s.handleResume(sub, lastSeq)
		}
	}
}

// handleResume switches sub to sequenced delivery and enqueues the
// resume ack plus the replayable gap, all under the broadcast lock so
// replayed sequences land strictly before any subsequent live flush.
func (s *Server) handleResume(sub *subscriber, lastSeq uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if _, ok := s.subs[sub]; !ok {
		return
	}
	sub.version.Store(ProtocolV2)
	sub.pongable.Store(true)
	sub.sequenced.Store(true)

	// Replay covers everything up to (not including) the pending batch:
	// pending readings reach this subscriber through the ordinary flush,
	// already sequenced, so replaying them too would duplicate.
	replayEnd := s.nextSeq - uint64(len(s.pending)) // == pendingFirst when pending
	s.replayBuf = s.replayBuf[:0]
	var firstSeq uint64
	if s.ring != nil {
		s.replayBuf, firstSeq = s.ring.Since(lastSeq, s.replayBuf)
		// Trim pending-tail overlap (ring already holds pending readings).
		if firstSeq > 0 && firstSeq+uint64(len(s.replayBuf)) > replayEnd {
			keep := int(replayEnd - firstSeq)
			if keep < 0 {
				keep = 0
			}
			s.replayBuf = s.replayBuf[:keep]
		}
		if len(s.replayBuf) == 0 {
			firstSeq = 0
		}
	}
	replayFrom := replayEnd
	if firstSeq > 0 {
		replayFrom = firstSeq
	}
	ack := AppendResumeAck(nil, replayFrom, replayEnd)
	frame, err := EncodeFrame(MsgResumeAck, ack)
	if err != nil {
		return
	}
	frames := [][]byte{frame}
	if len(s.replayBuf) > 0 {
		frames = s.appendSeqBatchFrames(frames, s.replayBuf, firstSeq)
	}
	for _, f := range frames {
		select {
		case sub.ch <- f:
		default:
			// The replay alone saturated the queue: the subscriber cannot
			// keep up; evict it like any other slow subscriber.
			s.evictLocked(sub, "resume overflow")
			return
		}
	}
	m := s.met()
	m.resumes.Inc()
	m.replayed.Add(int64(len(s.replayBuf)))
}

func (s *Server) serve(sub *subscriber) {
	defer s.wg.Done()
	defer s.drop(sub)
	// Handshake: the hello payload stays the single byte [1] that v1
	// clients require; v2-capable clients answer with their own Hello.
	hello, err := EncodeFrame(MsgHello, []byte{ProtocolV1})
	if err != nil {
		return
	}
	if err := s.write(sub, hello); err != nil {
		return
	}
	s.mu.Lock()
	period := s.hbPeriod
	miss := s.hbMiss
	s.mu.Unlock()
	hb := time.NewTicker(period)
	defer hb.Stop()
	for {
		select {
		case frame, ok := <-sub.ch:
			if !ok {
				return
			}
			if err := s.write(sub, frame); err != nil {
				return
			}
		case <-hb.C:
			// Dead-peer check first: a subscriber that has proven it pongs
			// and then went silent for miss periods is gone — its TCP
			// window may take minutes to fill, but the deployment needs
			// the slot (and the eviction metric) now.
			if sub.pongable.Load() {
				idle := time.Since(time.Unix(0, sub.lastSeen.Load()))
				if idle > time.Duration(miss)*period {
					s.met().hbDrops.Inc()
					s.logf("gateway: dropping dead peer %v (silent %v)", sub.conn.RemoteAddr(), idle.Round(time.Millisecond))
					return
				}
			}
			frame, err := EncodeFrame(MsgHeartbeat, nil)
			if err != nil {
				return
			}
			if err := s.write(sub, frame); err != nil {
				return
			}
			s.met().heartbeats.Inc()
		}
	}
}

func (s *Server) write(sub *subscriber, frame []byte) error {
	deadline := time.Now().Add(5 * time.Second)
	if until := s.drainUntil.Load(); until != 0 {
		if d := time.Unix(0, until); d.Before(deadline) {
			deadline = d
		}
	}
	sub.conn.SetWriteDeadline(deadline)
	_, err := sub.conn.Write(frame)
	m := s.met()
	if err != nil {
		m.writeErrors.Inc()
	} else {
		m.framesSent.Inc()
	}
	return err
}

func (s *Server) drop(sub *subscriber) {
	s.mu.Lock()
	if _, ok := s.subs[sub]; ok {
		delete(s.subs, sub)
		close(sub.ch)
	}
	n := len(s.subs)
	s.mu.Unlock()
	sub.conn.Close()
	s.met().subscribers.Set(float64(n))
}

// evictLocked removes sub from the fan-out under s.mu (the caller holds
// it), closing its queue and socket; the serve goroutine unwinds through
// drop, which finds the map entry already gone.
func (s *Server) evictLocked(sub *subscriber, why string) {
	if _, ok := s.subs[sub]; !ok {
		return
	}
	delete(s.subs, sub)
	close(sub.ch)
	sub.conn.Close()
	s.logf("gateway: dropped subscriber %v (%s)", sub.conn.RemoteAddr(), why)
}

// SetHeartbeat changes the idle heartbeat period for subscribers that
// connect afterwards (existing subscribers keep their period).
func (s *Server) SetHeartbeat(d time.Duration) {
	s.mu.Lock()
	if d > 0 {
		s.hbPeriod = d
	}
	s.mu.Unlock()
}

// SetHeartbeatPolicy sets both the heartbeat period and the number of
// silent periods after which a pong-capable subscriber is declared dead.
// Applies to subscribers that connect afterwards.
func (s *Server) SetHeartbeatPolicy(period time.Duration, miss int) {
	s.mu.Lock()
	if period > 0 {
		s.hbPeriod = period
	}
	if miss > 0 {
		s.hbMiss = miss
	}
	s.mu.Unlock()
}

// SetReplay resizes the replay ring to keep the last n readings (0
// disables replay: resumes still sequence, but recover nothing). The
// ring restarts empty at the current sequence point.
func (s *Server) SetReplay(n int) {
	s.mu.Lock()
	if n > 0 {
		r := NewReplayRing(n)
		r.next = s.nextSeq - uint64(len(s.pending))
		// Re-seed with the pending readings so an immediate resume does
		// not miss them if a flush intervenes.
		for i, rd := range s.pending {
			r.Append(s.pendingFirst+uint64(i), rd)
		}
		s.ring = r
	} else {
		s.ring = nil
	}
	s.mu.Unlock()
}

// SetDrainTimeout bounds Close's graceful drain (how long pending frames
// and the goodbye may take to reach slow subscribers).
func (s *Server) SetDrainTimeout(d time.Duration) {
	s.mu.Lock()
	if d > 0 {
		s.drainTimeout = d
	}
	s.mu.Unlock()
}

// SetBatching coalesces published readings: a flush happens when max
// readings are pending or flushAfter has elapsed since the first one,
// whichever comes first. max ≤ 1 disables coalescing (the default);
// flushAfter ≤ 0 selects a 25 ms deadline. Readings already pending are
// flushed before the change takes effect.
func (s *Server) SetBatching(max int, flushAfter time.Duration) {
	s.mu.Lock()
	s.flushLocked()
	if max < 1 {
		max = 1
	}
	if flushAfter <= 0 {
		flushAfter = defaultFlushAfter
	}
	s.batchMax = max
	s.flushAfter = flushAfter
	s.mu.Unlock()
}

// Publish broadcasts a reading to every subscriber, coalescing according
// to SetBatching. The reading is assigned the next stream sequence and
// retained in the replay ring. Subscribers whose queues are full are
// disconnected. Publish never blocks.
func (s *Server) Publish(rd Reading) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	if len(s.pending) == 0 {
		s.pendingFirst = s.nextSeq
	}
	if s.ring != nil {
		s.ring.Append(s.nextSeq, rd)
	}
	s.nextSeq++
	s.pending = append(s.pending, rd)
	if len(s.pending) >= s.batchMax {
		s.flushLocked()
	} else if s.flushTimer == nil {
		s.flushTimer = time.AfterFunc(s.flushAfter, s.deadlineFlush)
	}
	s.mu.Unlock()
}

// NextSeq returns the stream sequence the next published reading will
// carry (1 on a fresh server).
func (s *Server) NextSeq() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.nextSeq
}

// Flush forces any pending readings onto the wire immediately.
func (s *Server) Flush() {
	s.mu.Lock()
	s.flushLocked()
	s.mu.Unlock()
}

// deadlineFlush is the timer callback for a partial batch.
func (s *Server) deadlineFlush() {
	s.mu.Lock()
	s.flushTimer = nil
	s.flushLocked()
	s.mu.Unlock()
}

// flushLocked encodes the pending readings and enqueues them to every
// subscriber: per-reading MsgReading frames for v1 subscribers, one
// MsgReadingBatch frame (split only if a pathological batch overflows
// the payload bound) for v2 subscribers, and sequence-prefixed
// MsgSeqBatch frames for resumed subscribers. Callers hold s.mu.
func (s *Server) flushLocked() {
	if s.flushTimer != nil {
		s.flushTimer.Stop()
		s.flushTimer = nil
	}
	if len(s.pending) == 0 {
		return
	}
	needV1, needV2, needSeq := false, false, false
	for sub := range s.subs {
		switch {
		case sub.sequenced.Load():
			needSeq = true
		case sub.version.Load() >= ProtocolV2:
			needV2 = true
		default:
			needV1 = true
		}
	}
	var v1Frames, v2Frames, seqFrames [][]byte
	if needV1 {
		v1Frames = make([][]byte, 0, len(s.pending))
		for _, rd := range s.pending {
			s.v1Payload = AppendReading(s.v1Payload[:0], rd)
			frame, err := EncodeFrame(MsgReading, s.v1Payload)
			if err != nil {
				s.logf("gateway: encode reading: %v", err)
				continue
			}
			v1Frames = append(v1Frames, frame)
		}
	}
	if needV2 {
		v2Frames = s.appendBatchFrames(nil, s.pending)
	}
	if needSeq {
		seqFrames = s.appendSeqBatchFrames(nil, s.pending, s.pendingFirst)
	}
	var tooSlow []*subscriber
	for sub := range s.subs {
		frames := v1Frames
		switch {
		case sub.sequenced.Load():
			frames = seqFrames
		case sub.version.Load() >= ProtocolV2:
			frames = v2Frames
		}
		for _, frame := range frames {
			select {
			case sub.ch <- frame:
			default:
				tooSlow = append(tooSlow, sub)
			}
			if len(tooSlow) > 0 && tooSlow[len(tooSlow)-1] == sub {
				break
			}
		}
	}
	// Remove saturated subscribers under the same lock so a second
	// flush cannot double-close their channels.
	for _, sub := range tooSlow {
		delete(s.subs, sub)
		close(sub.ch)
		sub.conn.Close()
		s.logf("gateway: dropped slow subscriber %v", sub.conn.RemoteAddr())
	}
	published := len(s.pending)
	s.pending = s.pending[:0]
	n := len(s.subs)
	m := s.met()
	m.readings.Add(int64(published))
	if needV2 {
		m.batches.Add(int64(len(v2Frames)))
	}
	if needSeq {
		m.batches.Add(int64(len(seqFrames)))
	}
	m.slowDrops.Add(int64(len(tooSlow)))
	m.subscribers.Set(float64(n))
}

// appendBatchFrames encodes readings as one MsgReadingBatch frame,
// splitting recursively in the (pathological) case the encoded block
// exceeds the frame payload bound.
func (s *Server) appendBatchFrames(frames [][]byte, rds []Reading) [][]byte {
	if len(rds) == 0 {
		return frames
	}
	payload, err := AppendReadingBatch(s.v2Payload[:0], rds)
	if err == ErrOversize && len(rds) > 1 {
		half := len(rds) / 2
		frames = s.appendBatchFrames(frames, rds[:half])
		return s.appendBatchFrames(frames, rds[half:])
	}
	if err != nil {
		s.logf("gateway: encode reading batch: %v", err)
		return frames
	}
	s.v2Payload = payload[:0]
	frame, err := EncodeFrame(MsgReadingBatch, payload)
	if err != nil {
		s.logf("gateway: encode batch frame: %v", err)
		return frames
	}
	return append(frames, frame)
}

// appendSeqBatchFrames encodes readings as MsgSeqBatch frames starting at
// firstSeq, splitting recursively on overflow like appendBatchFrames.
func (s *Server) appendSeqBatchFrames(frames [][]byte, rds []Reading, firstSeq uint64) [][]byte {
	if len(rds) == 0 {
		return frames
	}
	payload, err := AppendSeqBatch(s.v2Payload[:0], firstSeq, rds)
	if err == ErrOversize && len(rds) > 1 {
		half := len(rds) / 2
		frames = s.appendSeqBatchFrames(frames, rds[:half], firstSeq)
		return s.appendSeqBatchFrames(frames, rds[half:], firstSeq+uint64(half))
	}
	if err != nil {
		s.logf("gateway: encode seq batch: %v", err)
		return frames
	}
	s.v2Payload = payload[:0]
	frame, err := EncodeFrame(MsgSeqBatch, payload)
	if err != nil {
		s.logf("gateway: encode seq batch frame: %v", err)
		return frames
	}
	return append(frames, frame)
}

// Subscribers returns the current subscriber count.
func (s *Server) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Close drains gracefully: flush pending readings, stop accepting,
// enqueue a MsgGoodbye to every subscriber, bound all remaining socket
// writes by the drain timeout, and wait for the server goroutines to
// finish. Subscribers see the tail of the stream plus the goodbye rather
// than a mid-frame reset.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.flushLocked()
	s.closed = true
	err := s.ln.Close()
	s.drainUntil.Store(time.Now().Add(s.drainTimeout).UnixNano())
	goodbye, gerr := EncodeFrame(MsgGoodbye, nil)
	for sub := range s.subs {
		delete(s.subs, sub)
		if gerr == nil {
			select {
			case sub.ch <- goodbye:
			default: // queue full: the drain delivers what it can
			}
		}
		// Closing the channel (not the conn) lets serve drain the queued
		// frames — goodbye included — under the drain deadline; drop then
		// closes the socket.
		close(sub.ch)
	}
	s.mu.Unlock()
	s.met().subscribers.Set(0)
	s.wg.Wait()
	return err
}
