package gateway

import (
	"context"
	"log"
	"net"
	"sync"
	"time"
)

// Server fans decoded readings out to TCP subscribers. Slow subscribers are
// disconnected rather than allowed to exert backpressure on the reader (a
// live telemetry feed must never stall the acoustic polling loop).
type Server struct {
	ln     net.Listener
	logf   func(format string, args ...interface{})
	mu     sync.Mutex
	subs   map[*subscriber]struct{}
	closed bool
	wg     sync.WaitGroup

	heartbeat time.Duration

	// metrics is swapped atomically by Instrument; nil means telemetry is
	// off and every recording below is a free no-op.
	metrics metricsPtr
}

type subscriber struct {
	conn net.Conn
	ch   chan []byte // encoded frames
}

// sendBuffer is the per-subscriber queue; a full queue marks the
// subscriber as too slow.
const sendBuffer = 64

// NewServer starts listening on addr (e.g. "127.0.0.1:0"). The returned
// server accepts connections until Close or ctx cancellation.
func NewServer(ctx context.Context, addr string, logf func(string, ...interface{})) (*Server, error) {
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if logf == nil {
		logf = log.Printf
	}
	s := &Server{
		ln:        ln,
		logf:      logf,
		subs:      make(map[*subscriber]struct{}),
		heartbeat: 5 * time.Second,
	}
	s.wg.Add(1)
	go s.acceptLoop(ctx)
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

func (s *Server) acceptLoop(ctx context.Context) {
	defer s.wg.Done()
	// Close the listener when the context ends so Accept unblocks.
	stop := context.AfterFunc(ctx, func() { s.ln.Close() })
	defer stop()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		sub := &subscriber{conn: conn, ch: make(chan []byte, sendBuffer)}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.subs[sub] = struct{}{}
		n := len(s.subs)
		s.mu.Unlock()
		m := s.met()
		m.connects.Inc()
		m.subscribers.Set(float64(n))
		s.wg.Add(1)
		go s.serve(sub)
	}
}

func (s *Server) serve(sub *subscriber) {
	defer s.wg.Done()
	defer s.drop(sub)
	// Handshake.
	hello, err := EncodeFrame(MsgHello, []byte{1}) // protocol version 1
	if err != nil {
		return
	}
	if err := s.write(sub, hello); err != nil {
		return
	}
	s.mu.Lock()
	period := s.heartbeat
	s.mu.Unlock()
	hb := time.NewTicker(period)
	defer hb.Stop()
	for {
		select {
		case frame, ok := <-sub.ch:
			if !ok {
				return
			}
			if err := s.write(sub, frame); err != nil {
				return
			}
		case <-hb.C:
			frame, err := EncodeFrame(MsgHeartbeat, nil)
			if err != nil {
				return
			}
			if err := s.write(sub, frame); err != nil {
				return
			}
			s.met().heartbeats.Inc()
		}
	}
}

func (s *Server) write(sub *subscriber, frame []byte) error {
	sub.conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	_, err := sub.conn.Write(frame)
	m := s.met()
	if err != nil {
		m.writeErrors.Inc()
	} else {
		m.framesSent.Inc()
	}
	return err
}

func (s *Server) drop(sub *subscriber) {
	s.mu.Lock()
	if _, ok := s.subs[sub]; ok {
		delete(s.subs, sub)
		close(sub.ch)
	}
	n := len(s.subs)
	s.mu.Unlock()
	sub.conn.Close()
	s.met().subscribers.Set(float64(n))
}

// SetHeartbeat changes the idle heartbeat period for subscribers that
// connect afterwards (existing subscribers keep their period).
func (s *Server) SetHeartbeat(d time.Duration) {
	s.mu.Lock()
	if d > 0 {
		s.heartbeat = d
	}
	s.mu.Unlock()
}

// Publish broadcasts a reading to every subscriber. Subscribers whose
// queues are full are disconnected. Publish never blocks.
func (s *Server) Publish(rd Reading) {
	frame, err := EncodeFrame(MsgReading, EncodeReading(rd))
	if err != nil {
		s.logf("gateway: encode reading: %v", err)
		return
	}
	s.mu.Lock()
	var tooSlow []*subscriber
	for sub := range s.subs {
		select {
		case sub.ch <- frame:
		default:
			tooSlow = append(tooSlow, sub)
		}
	}
	// Remove saturated subscribers under the same lock so a second
	// Publish cannot double-close their channels.
	for _, sub := range tooSlow {
		delete(s.subs, sub)
		close(sub.ch)
		sub.conn.Close()
		s.logf("gateway: dropped slow subscriber %v", sub.conn.RemoteAddr())
	}
	n := len(s.subs)
	s.mu.Unlock()
	m := s.met()
	m.readings.Inc()
	m.slowDrops.Add(int64(len(tooSlow)))
	m.subscribers.Set(float64(n))
}

// Subscribers returns the current subscriber count.
func (s *Server) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// Close stops accepting, disconnects all subscribers and waits for the
// server goroutines to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	err := s.ln.Close()
	for sub := range s.subs {
		delete(s.subs, sub)
		close(sub.ch)
		sub.conn.Close()
	}
	s.mu.Unlock()
	s.met().subscribers.Set(0)
	s.wg.Wait()
	return err
}
