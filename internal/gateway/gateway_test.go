package gateway

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"net"
	"testing"
	"testing/quick"
	"time"
)

func testReading() Reading {
	return Reading{
		NodeAddr: 7, Seq: 3, Count: 99,
		TempC: 15.25, PressureMbar: 1294.5, SNRdB: 18.75,
		Time: time.Unix(0, 1700000000123456789).UTC(),
	}
}

func TestFrameRoundTrip(t *testing.T) {
	payload := []byte{1, 2, 3}
	frame, err := EncodeFrame(MsgReading, payload)
	if err != nil {
		t.Fatal(err)
	}
	typ, got, err := ReadFrame(bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgReading || !bytes.Equal(got, payload) {
		t.Errorf("round trip: %v %v", typ, got)
	}
}

func TestFrameErrors(t *testing.T) {
	if _, err := EncodeFrame(MsgReading, make([]byte, MaxFrameSize)); !errors.Is(err, ErrOversize) {
		t.Error("oversize not rejected")
	}
	bad := []byte{0, 0, 0, 0, 1, 0, 0, 0, 0}
	if _, _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrBadMagic) {
		t.Errorf("bad magic: %v", err)
	}
	// Oversize length field.
	frame, _ := EncodeFrame(MsgReading, []byte{1})
	frame[5] = 0xFF
	if _, _, err := ReadFrame(bytes.NewReader(frame)); !errors.Is(err, ErrOversize) {
		t.Error("oversize length accepted")
	}
	// Truncated payload.
	frame2, _ := EncodeFrame(MsgReading, []byte{1, 2, 3, 4})
	if _, _, err := ReadFrame(bytes.NewReader(frame2[:len(frame2)-2])); !errors.Is(err, ErrTruncated) {
		t.Errorf("truncation: %v", err)
	}
}

func TestFramePayloadBoundary(t *testing.T) {
	// Encoder and decoder must agree on the exact payload bound: a frame
	// of MaxPayloadSize round-trips, one byte more is rejected by both.
	frame, err := EncodeFrame(MsgReading, make([]byte, MaxPayloadSize))
	if err != nil {
		t.Fatalf("encode at MaxPayloadSize: %v", err)
	}
	if len(frame) != MaxFrameSize {
		t.Errorf("largest frame is %d bytes, want MaxFrameSize=%d", len(frame), MaxFrameSize)
	}
	if _, payload, err := ReadFrame(bytes.NewReader(frame)); err != nil || len(payload) != MaxPayloadSize {
		t.Errorf("decode at MaxPayloadSize: len=%d err=%v", len(payload), err)
	}
	if _, err := EncodeFrame(MsgReading, make([]byte, MaxPayloadSize+1)); !errors.Is(err, ErrOversize) {
		t.Errorf("encode beyond bound: %v", err)
	}
	// A handcrafted header announcing one payload byte too many must be
	// rejected even though it is under MaxFrameSize+header: the decoder
	// may not admit frames the encoder cannot produce.
	over := frame[:9:9]
	binary.BigEndian.PutUint32(over[5:9], MaxPayloadSize+1)
	over = append(over, make([]byte, MaxPayloadSize+1)...)
	if _, _, err := ReadFrame(bytes.NewReader(over)); !errors.Is(err, ErrOversize) {
		t.Errorf("decode beyond bound: %v", err)
	}
}

func TestReadingRoundTrip(t *testing.T) {
	rd := testReading()
	got, err := DecodeReading(EncodeReading(rd))
	if err != nil {
		t.Fatal(err)
	}
	if got != rd {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, rd)
	}
	if _, err := DecodeReading([]byte{1, 2}); err == nil {
		t.Error("short payload accepted")
	}
}

func TestReadingRoundTripProperty(t *testing.T) {
	f := func(addr, seq byte, count uint32, temp, press, snr float64, ns int64) bool {
		rd := Reading{
			NodeAddr: addr, Seq: seq, Count: count,
			TempC: temp, PressureMbar: press, SNRdB: snr,
			Time: time.Unix(0, ns).UTC(),
		}
		got, err := DecodeReading(EncodeReading(rd))
		return err == nil && got == rd
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func startServer(t *testing.T) (*Server, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	s, err := NewServer(ctx, "127.0.0.1:0", t.Logf)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close(); cancel() })
	return s, cancel
}

func TestServerPublishToClient(t *testing.T) {
	s, _ := startServer(t)
	c, err := Dial(context.Background(), s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	waitSubscribers(t, s, 1)
	want := testReading()
	s.Publish(want)
	got, err := c.Next(time.Now().Add(5 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("got %+v want %+v", got, want)
	}
}

func waitSubscribers(t *testing.T, s *Server, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.Subscribers() < n {
		if time.Now().After(deadline) {
			t.Fatalf("only %d subscribers", s.Subscribers())
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerMultipleSubscribers(t *testing.T) {
	s, _ := startServer(t)
	var clients []*Client
	for i := 0; i < 3; i++ {
		c, err := Dial(context.Background(), s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	waitSubscribers(t, s, 3)
	s.Publish(testReading())
	for i, c := range clients {
		if _, err := c.Next(time.Now().Add(5 * time.Second)); err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
}

func TestServerHeartbeats(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := NewServer(ctx, "127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.SetHeartbeat(20 * time.Millisecond) // before any client connects

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Hello, then heartbeats with no published readings.
	typ, _, err := ReadFrame(conn)
	if err != nil || typ != MsgHello {
		t.Fatalf("hello: %v %v", typ, err)
	}
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	typ, _, err = ReadFrame(conn)
	if err != nil || typ != MsgHeartbeat {
		t.Fatalf("heartbeat: %v %v", typ, err)
	}
}

func TestServerDropsSlowSubscriber(t *testing.T) {
	s, _ := startServer(t)
	// Raw connection that never reads beyond the handshake.
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	waitSubscribers(t, s, 1)
	// Saturate: the per-subscriber queue holds sendBuffer frames; the
	// socket buffers absorb more, but the queue eventually jams because
	// nothing drains the connection... the serve loop keeps writing into
	// the kernel buffer, so flood well past both.
	for i := 0; i < 100000 && s.Subscribers() > 0; i++ {
		s.Publish(testReading())
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow subscriber never dropped")
		}
		s.Publish(testReading())
	}
}

func TestServerCloseIdempotentAndCleans(t *testing.T) {
	ctx := context.Background()
	s, err := NewServer(ctx, "127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(ctx, s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitSubscribers(t, s, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if s.Subscribers() != 0 {
		t.Error("subscribers survived close")
	}
	// The client should observe EOF or reset.
	if _, err := c.Next(time.Now().Add(5 * time.Second)); err == nil {
		t.Error("client read succeeded after server close")
	}
	// Publishing after close must not panic.
	s.Publish(testReading())
}

func TestServerContextCancelStopsAccept(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := NewServer(ctx, "127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	addr := s.Addr().String()
	cancel()
	// After cancellation new dials must fail (listener closed).
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err != nil {
			break
		}
		conn.Close()
		if time.Now().After(deadline) {
			t.Fatal("listener still accepting after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestDialRejectsNonGateway(t *testing.T) {
	// A server that speaks garbage.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		conn.Write([]byte("HTTP/1.1 200 OK\r\n\r\n"))
		conn.Close()
	}()
	if _, err := Dial(context.Background(), ln.Addr().String()); err == nil {
		t.Error("garbage handshake accepted")
	}
}

func TestSubscribeSurvivesServerRestart(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	s1, err := NewServer(ctx, "127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	addr := s1.Addr().String()

	out := make(chan Reading, 16)
	subCtx, subCancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		Subscribe(subCtx, addr, out)
	}()

	waitSubscribers(t, s1, 1)
	s1.Publish(testReading())
	select {
	case rd := <-out:
		if rd.NodeAddr != 7 {
			t.Errorf("reading %+v", rd)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no reading before restart")
	}

	// Kill the gateway, then bring a new one up on the same port.
	s1.Close()
	var s2 *Server
	deadline := time.Now().Add(10 * time.Second)
	for {
		s2, err = NewServer(ctx, addr, t.Logf)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("could not rebind %s: %v", addr, err)
		}
		time.Sleep(50 * time.Millisecond)
	}
	defer s2.Close()

	// The subscriber reconnects on its own and keeps delivering.
	waitSubscribers(t, s2, 1)
	s2.Publish(testReading())
	select {
	case <-out:
	case <-time.After(10 * time.Second):
		t.Fatal("no reading after restart; reconnect failed")
	}

	subCancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Subscribe did not exit on cancel")
	}
	// Channel must be closed after exit.
	for range out {
	}
}

func TestSubscribeGivesUpOnCancel(t *testing.T) {
	// No server at all: Subscribe should back off and exit promptly on
	// cancellation.
	ctx, cancel := context.WithCancel(context.Background())
	out := make(chan Reading)
	done := make(chan struct{})
	go func() {
		defer close(done)
		Subscribe(ctx, "127.0.0.1:1", out) // nothing listens on port 1
	}()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Subscribe did not exit")
	}
}
