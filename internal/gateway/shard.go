package gateway

import (
	"sync"
	"time"
)

// shardEntryKind discriminates units of work on a shard's flush queue.
type shardEntryKind uint8

const (
	// entryBroadcast fans a shared broadcast arena out to every
	// subscriber on the shard.
	entryBroadcast shardEntryKind = iota
	// entryResume delivers a resume ack + replay to one subscriber and
	// flips it to sequenced delivery. Routed through the shard queue so
	// the replay composes strictly before any later live flush: both are
	// enqueued under seqMu, and the flusher processes FIFO.
	entryResume
	// entryShutdown seals every ring on the shard (goodbye first) and
	// marks the shard dead. Always the last entry a queue carries.
	entryShutdown
	// entryHeartbeat sweeps the shard once per heartbeat period: queue a
	// pre-encoded MsgHeartbeat in every ring and evict peers that proved
	// pongable and then went silent. Centralising this here keeps the
	// per-subscriber writer loop free of tickers and selects.
	entryHeartbeat
)

// shardEntry is one queued unit of flusher work.
type shardEntry struct {
	kind    shardEntryKind
	b       *broadcast    // entryBroadcast
	sub     *subscriber   // entryResume
	frames  [][]byte      // entryResume: ack + replay frames (privately owned)
	silence time.Duration // entryHeartbeat: dead-peer threshold (miss × period)
}

// shard is an independently locked slice of the subscriber registry with
// its own flusher goroutine. Publish-side work (encode, sequence, replay
// ring) stays under the server's small sequence lock; everything
// per-subscriber — registration, ring pushes, eviction — convoys only on
// its shard, so fan-out scales across shards instead of one global mutex.
type shard struct {
	srv *Server

	// mu guards subs and dead.
	mu   sync.Mutex
	subs map[*subscriber]struct{}
	dead bool // no further registrations (server closing)

	// The flush queue: producers append under qmu and signal; the flusher
	// swaps queue/proc (double buffer) and works through proc without
	// holding qmu, so Publish never waits behind ring pushes.
	qmu     sync.Mutex
	qcond   sync.Cond
	queue   []shardEntry
	proc    []shardEntry
	qclosed bool

	// Flusher-only scratch for batched fan-out passes (no locking).
	bcast   []*broadcast
	entries []ringEntry
}

func newShard(s *Server) *shard {
	sh := &shard{srv: s, subs: make(map[*subscriber]struct{})}
	sh.qcond.L = &sh.qmu
	return sh
}

// enqueue appends one unit of work and wakes the flusher.
func (sh *shard) enqueue(e shardEntry) {
	sh.qmu.Lock()
	sh.queue = append(sh.queue, e)
	sh.qmu.Unlock()
	sh.qcond.Signal()
}

// closeQueue ends the flusher once the queue drains.
func (sh *shard) closeQueue() {
	sh.qmu.Lock()
	sh.qclosed = true
	sh.qmu.Unlock()
	sh.qcond.Broadcast()
}

// run is the shard flusher: it drains the queue in FIFO order, pushing
// broadcast frames into subscriber rings and waking their writers.
func (sh *shard) run() {
	defer sh.srv.wg.Done()
	for {
		sh.qmu.Lock()
		for len(sh.queue) == 0 && !sh.qclosed {
			sh.qcond.Wait()
		}
		if len(sh.queue) == 0 { // qclosed and drained
			sh.qmu.Unlock()
			return
		}
		sh.queue, sh.proc = sh.proc[:0], sh.queue
		sh.qmu.Unlock()
		// Consecutive broadcasts are fanned out as one batch: a run of
		// queued flushes costs each subscriber one ring lock and one
		// wakeup instead of one per flush. Other entry kinds keep their
		// FIFO position, so the resume-ordering contract is untouched.
		for i := 0; i < len(sh.proc); {
			if sh.proc[i].kind != entryBroadcast {
				sh.process(&sh.proc[i])
				sh.proc[i] = shardEntry{}
				i++
				continue
			}
			sh.bcast = sh.bcast[:0]
			for i < len(sh.proc) && sh.proc[i].kind == entryBroadcast {
				sh.bcast = append(sh.bcast, sh.proc[i].b)
				sh.proc[i] = shardEntry{}
				i++
			}
			sh.fanOut(sh.bcast)
			for j := range sh.bcast {
				sh.bcast[j] = nil
			}
		}
	}
}

func (sh *shard) process(e *shardEntry) {
	switch e.kind {
	case entryResume:
		sh.deliverResume(e.sub, e.frames)
	case entryShutdown:
		sh.shutdown()
	case entryHeartbeat:
		sh.heartbeat(e.silence)
	}
}

// fanOut lands a batch of broadcasts in every subscriber ring on the
// shard: per subscriber, all of them go in under one ring lock with at
// most one writer wakeup.
func (sh *shard) fanOut(bs []*broadcast) {
	s := sh.srv
	entries := sh.entries
	sh.mu.Lock()
	for sub := range sh.subs {
		entries = entries[:0]
		class := sub.class.Load()
		for _, b := range bs {
			var frames [][]byte
			switch class {
			case classSeq:
				frames = b.seq
			case classV2:
				frames = b.v2
				if len(frames) == 0 {
					frames = b.v1 // upgraded after the variant census: v1 burst is still correct v2 wire
				}
			default:
				frames = b.v1
			}
			if len(frames) == 0 {
				// The subscriber changed class after the flush's variant
				// census and its variant was not encoded. Skipping this
				// broadcast matches the old behaviour for a subscriber
				// that registered after the flush started.
				continue
			}
			// Take the subscriber's reference before the push makes the
			// entry visible: the writer may pop and release it
			// immediately, and an increment after the fact would race
			// the count to zero mid-fan-out.
			b.refs.Add(1)
			entries = append(entries, ringEntry{frames: frames, b: b})
		}
		if len(entries) == 0 {
			continue
		}
		ok, wasEmpty := sub.ring.pushN(entries)
		if !ok {
			for _, e := range entries {
				s.releaseBroadcast(e.b)
			}
			sh.evictLocked(sub, "slow subscriber")
			continue
		}
		if wasEmpty {
			sub.wakeWriter()
		}
	}
	sh.mu.Unlock()
	for i := range entries {
		entries[i] = ringEntry{}
	}
	sh.entries = entries[:0]
	for _, b := range bs {
		s.releaseBroadcast(b) // the shard's own holds
	}
}

// heartbeat queues a MsgHeartbeat in every subscriber ring and drops
// peers that pong but have been silent past the threshold. A full ring
// skips the heartbeat rather than evicting: the pending broadcasts
// already keep the conn visibly alive, and ring overflow on the
// broadcast path handles true slowness.
func (sh *shard) heartbeat(silence time.Duration) {
	s := sh.srv
	now := time.Now()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for sub := range sh.subs {
		if sub.pongable.Load() {
			if idle := now.Sub(time.Unix(0, sub.lastSeen.Load())); idle > silence {
				s.met().hbDrops.Inc()
				s.logf("gateway: dropping dead peer %v (silent %v)", sub.conn.RemoteAddr(), idle.Round(time.Millisecond))
				sh.removeLocked(sub)
				sub.ring.discard(s.releaseBroadcast)
				sub.wakeWriter()
				sub.conn.Close()
				continue
			}
		}
		if ok, wasEmpty := sub.ring.push(ringEntry{frames: heartbeatFrames}); ok {
			s.met().heartbeats.Inc()
			if wasEmpty {
				sub.wakeWriter()
			}
		}
	}
}

// deliverResume hands the ack+replay frames to one subscriber and flips
// it to sequenced delivery. Runs on the flusher so it lands in FIFO
// order with the broadcasts enqueued around it.
func (sh *shard) deliverResume(sub *subscriber, frames [][]byte) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.subs[sub]; !ok {
		return
	}
	ok, wasEmpty := sub.ring.push(ringEntry{frames: frames})
	if !ok {
		// The replay alone saturated the ring: the subscriber cannot
		// keep up; evict it like any other slow subscriber.
		sh.evictLocked(sub, "resume overflow")
		return
	}
	// Sequenced delivery starts with the entry just queued: earlier ring
	// entries carry pre-resume broadcasts (the client suppresses those
	// until the ack), later flushes see classSeq at fan-out.
	sub.class.Store(classSeq)
	if wasEmpty {
		sub.wakeWriter()
	}
}

// shutdown runs the graceful-close path for this shard: queue a goodbye
// in every ring, seal the rings so writers drain and exit, and refuse
// further registrations.
func (sh *shard) shutdown() {
	sh.mu.Lock()
	for sub := range sh.subs {
		sub.ring.push(ringEntry{frames: goodbyeFrames}) // best-effort: a full ring drops the goodbye
		sub.ring.seal()
		sh.removeLocked(sub)
		sub.wakeWriter()
	}
	sh.dead = true
	sh.mu.Unlock()
}

// evictLocked removes sub from the shard and tears its session down.
// Callers hold sh.mu.
func (sh *shard) evictLocked(sub *subscriber, why string) {
	sh.removeLocked(sub)
	sub.ring.discard(sh.srv.releaseBroadcast)
	sub.wakeWriter()
	sub.conn.Close()
	s := sh.srv
	s.met().slowDrops.Inc()
	s.logf("gateway: dropped subscriber %v (%s)", sub.conn.RemoteAddr(), why)
}

// removeLocked deletes sub from the registry and settles its counters:
// the variant census and the live-subscriber gauge update here, exactly
// once, no matter which path (evict, drop, shutdown) removes the sub.
// Callers hold sh.mu.
func (sh *shard) removeLocked(sub *subscriber) {
	delete(sh.subs, sub)
	s := sh.srv
	switch sub.countState.Swap(subGone) {
	case subV1:
		s.cntV1.Add(-1)
	case subV2:
		s.cntV2.Add(-1)
	case subSeq:
		s.cntSeq.Add(-1)
	}
	n := s.subCount.Add(-1)
	s.met().subscribers.Set(float64(n))
}
