package gateway

import (
	"sync/atomic"

	"vab/internal/telemetry"
)

// gwMetrics bundles the server's instrumentation handles. The zero value
// (all-nil metrics) is the noop default; all telemetry operations on nil
// handles are free.
type gwMetrics struct {
	subscribers *telemetry.Gauge   // currently connected subscribers
	connects    *telemetry.Counter // lifetime accepted subscribers
	framesSent  *telemetry.Counter // frames written to sockets
	readings    *telemetry.Counter // readings published
	heartbeats  *telemetry.Counter // heartbeat frames sent
	slowDrops   *telemetry.Counter // subscribers dropped for not draining
	writeErrors *telemetry.Counter // socket write failures
	upgrades    *telemetry.Counter // subscribers negotiated to protocol v2
	batches     *telemetry.Counter // MsgReadingBatch frames encoded
	hbDrops     *telemetry.Counter // dead peers dropped for missing pongs
	resumes     *telemetry.Counter // MsgResume sessions accepted
	replayed    *telemetry.Counter // readings replayed from the ring
}

// noopGW is handed out before Instrument is called: its nil fields make
// every metric operation a no-op.
var noopGW gwMetrics

// Instrument registers the server's metrics in reg and starts recording.
// Safe to call while the server is live (the handle swap is atomic) and
// with a nil registry (stays noop).
func (s *Server) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	m := &gwMetrics{
		subscribers: reg.Gauge("vab_gateway_subscribers",
			"Currently connected TCP subscribers."),
		connects: reg.Counter("vab_gateway_subscribers_accepted_total",
			"Subscriber connections accepted since start."),
		framesSent: reg.Counter("vab_gateway_frames_sent_total",
			"Wire frames successfully written to subscriber sockets."),
		readings: reg.Counter("vab_gateway_readings_published_total",
			"Sensor readings published to the fan-out."),
		heartbeats: reg.Counter("vab_gateway_heartbeats_total",
			"Heartbeat frames sent to idle subscribers."),
		slowDrops: reg.Counter("vab_gateway_slow_subscriber_drops_total",
			"Subscribers disconnected because their send queue filled."),
		writeErrors: reg.Counter("vab_gateway_write_errors_total",
			"Socket write failures (subscriber lost mid-frame)."),
		upgrades: reg.Counter("vab_gateway_protocol_upgrades_total",
			"Subscribers that negotiated the v2 batched stream."),
		batches: reg.Counter("vab_gateway_reading_batches_total",
			"Batch frames encoded for v2 and resumed subscribers."),
		hbDrops: reg.Counter("vab_gateway_dead_peer_drops_total",
			"Subscribers dropped because heartbeat pongs stopped."),
		resumes: reg.Counter("vab_gateway_resumes_total",
			"Resume requests accepted (subscriber switched to sequenced delivery)."),
		replayed: reg.Counter("vab_gateway_readings_replayed_total",
			"Readings replayed from the ring to resuming subscribers."),
	}
	s.metrics.Store(m)
	m.subscribers.Set(float64(s.Subscribers()))
}

// met returns the live metrics handle or the noop bundle.
func (s *Server) met() *gwMetrics {
	if m := s.metrics.Load(); m != nil {
		return m
	}
	return &noopGW
}

// metricsPtr is embedded in Server as an atomic handle so Instrument can
// race connection goroutines safely.
type metricsPtr = atomic.Pointer[gwMetrics]

// clientMetrics bundles the subscriber-side instrumentation handles used
// by Subscribe. Same nil-safe noop pattern as the server bundle.
type clientMetrics struct {
	dropped    *telemetry.Counter // readings dropped because out was full
	reconnects *telemetry.Counter // re-dials after a session error
	resumed    *telemetry.Counter // sessions that recovered via resume
	gapLost    *telemetry.Counter // readings permanently lost to ring age-out
}

var noopClient clientMetrics

// clientMet is the process-wide client metrics handle (Subscribe is a
// package function, not a method, so the handle lives at package level).
var clientMet atomic.Pointer[clientMetrics]

// InstrumentClient registers subscriber-side metrics in reg: most
// importantly vab_gateway_client_dropped_total, which counts readings
// Subscribe silently discarded because the caller's channel was full —
// previously invisible data loss. Safe with a nil registry (stays noop).
func InstrumentClient(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	clientMet.Store(&clientMetrics{
		dropped: reg.Counter("vab_gateway_client_dropped_total",
			"Readings dropped by Subscribe because the output channel was full."),
		reconnects: reg.Counter("vab_gateway_client_reconnects_total",
			"Subscribe re-dials after a session error."),
		resumed: reg.Counter("vab_gateway_client_resumes_total",
			"Sessions that requested resume after a reconnect."),
		gapLost: reg.Counter("vab_gateway_client_gap_lost_total",
			"Readings permanently lost because they aged out of the replay ring."),
	})
}

func cliMet() *clientMetrics {
	if m := clientMet.Load(); m != nil {
		return m
	}
	return &noopClient
}
