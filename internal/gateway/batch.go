package gateway

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"vab/internal/bitio"
)

// Protocol v2: batched readings. The v1 wire ships every reading as its
// own 38-byte float64-heavy frame under a 9-byte header — 47 bytes per
// reading for values the sensors quantize to 16 bits at the source. The
// v2 MsgReadingBatch payload carries one length-prefixed block of N
// readings against a shared base:
//
//	uvarint N                      (≥ 1)
//	base:   addr(1) seq(1) · uvarint count · zigzag temp (centi-°C) ·
//	        zigzag pressure (mbar) · zigzag SNR (centi-dB) ·
//	        base time int64 UnixNano (big endian, 8 bytes)
//	N−1 ×   addr(1) seq(1) · zigzag Δcount · zigzag Δtemp ·
//	        zigzag Δpressure · zigzag ΔSNR · zigzag Δtime (ns)
//	        (every delta against the base reading)
//
// Varints are standard byte-level LEB128 (encoding/binary); signed
// fields are zigzag-mapped (bitio.ZigZag). Quantization bounds:
// temperature 0.01 °C, pressure 1 mbar, SNR 0.01 dB — lossless for the
// sensor pipeline, whose payloads are quantized at least that coarsely
// at the node — and timestamps are exact nanoseconds.
//
// Negotiation: the server's hello stays the single byte [1] that v1
// clients require. A client wanting batches replies with its own Hello
// [2]; the server upgrades that subscriber and streams MsgReadingBatch
// from the next flush. Clients that stay silent keep receiving v1
// MsgReading frames, so old consumers work unchanged.
const (
	// ProtocolV1 is the original one-frame-per-reading stream.
	ProtocolV1 = 1
	// ProtocolV2 adds batched MsgReadingBatch frames.
	ProtocolV2 = 2
)

// MsgReadingBatch carries a block of readings (protocol v2, gateway →
// client; sent only to subscribers that negotiated v2).
const MsgReadingBatch MsgType = 0x04

// ErrBadBatch reports a malformed MsgReadingBatch payload.
var ErrBadBatch = fmt.Errorf("gateway: malformed reading batch")

// batchQuantBound bounds the quantized field values either side admits:
// ±2³¹ is far beyond physical range yet small enough that the
// float64(v)/100 grid re-quantizes exactly.
const batchQuantBound = math.MaxInt32

// appendZigZag appends a zigzag varint.
func appendZigZag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, bitio.ZigZag(v))
}

// quantizeReading maps one reading onto the v2 wire grid.
func quantizeReading(rd Reading) (centi, mbar, snr int64, err error) {
	if math.IsNaN(rd.TempC) || math.IsInf(rd.TempC, 0) ||
		math.IsNaN(rd.PressureMbar) || math.IsInf(rd.PressureMbar, 0) ||
		math.IsNaN(rd.SNRdB) || math.IsInf(rd.SNRdB, 0) {
		return 0, 0, 0, fmt.Errorf("gateway: non-finite reading fields")
	}
	centi = int64(math.Round(rd.TempC * 100))
	mbar = int64(math.Round(rd.PressureMbar))
	snr = int64(math.Round(rd.SNRdB * 100))
	if centi < -batchQuantBound || centi > batchQuantBound ||
		mbar < -batchQuantBound || mbar > batchQuantBound ||
		snr < -batchQuantBound || snr > batchQuantBound {
		return 0, 0, 0, fmt.Errorf("gateway: reading fields outside quantizable range")
	}
	return centi, mbar, snr, nil
}

// AppendReadingBatch encodes rds as a MsgReadingBatch payload appended
// to dst (reuse dst's capacity for an allocation-free steady state).
// It returns ErrOversize when the block exceeds MaxPayloadSize — split
// the batch and retry — and rejects non-finite field values.
func AppendReadingBatch(dst []byte, rds []Reading) ([]byte, error) {
	if len(rds) == 0 {
		return dst, fmt.Errorf("gateway: empty reading batch")
	}
	mark := len(dst)
	out := binary.AppendUvarint(dst, uint64(len(rds)))
	base := rds[0]
	bCenti, bMbar, bSNR, err := quantizeReading(base)
	if err != nil {
		return dst, err
	}
	bTime := base.Time.UnixNano()
	out = append(out, base.NodeAddr, base.Seq)
	out = binary.AppendUvarint(out, uint64(base.Count))
	out = appendZigZag(out, bCenti)
	out = appendZigZag(out, bMbar)
	out = appendZigZag(out, bSNR)
	out = binary.BigEndian.AppendUint64(out, uint64(bTime))
	for _, rd := range rds[1:] {
		centi, mbar, snr, err := quantizeReading(rd)
		if err != nil {
			return dst, err
		}
		out = append(out, rd.NodeAddr, rd.Seq)
		out = appendZigZag(out, int64(rd.Count)-int64(base.Count))
		out = appendZigZag(out, centi-bCenti)
		out = appendZigZag(out, mbar-bMbar)
		out = appendZigZag(out, snr-bSNR)
		out = appendZigZag(out, rd.Time.UnixNano()-bTime)
	}
	if len(out)-mark > MaxPayloadSize {
		return dst, ErrOversize
	}
	return out, nil
}

// batchCursor walks a batch payload.
type batchCursor struct {
	p   []byte
	pos int
}

func (c *batchCursor) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(c.p[c.pos:])
	if n <= 0 {
		return 0, false
	}
	c.pos += n
	return v, true
}

func (c *batchCursor) zigzag() (int64, bool) {
	u, ok := c.uvarint()
	return bitio.UnZigZag(u), ok
}

func (c *batchCursor) bytes(n int) ([]byte, bool) {
	if len(c.p)-c.pos < n {
		return nil, false
	}
	b := c.p[c.pos : c.pos+n]
	c.pos += n
	return b, true
}

// DecodeReadingBatchInto parses a MsgReadingBatch payload, appending
// the readings to dst (reuse dst's capacity for an allocation-free
// steady state). The payload must be fully consumed — trailing bytes
// are an error, so any accepted payload is one the encoder could have
// produced.
func DecodeReadingBatchInto(dst []Reading, p []byte) ([]Reading, error) {
	if len(p) > MaxPayloadSize {
		// The decoder must not admit payloads the (canonical) encoder can
		// never frame.
		return dst, ErrBadBatch
	}
	c := batchCursor{p: p}
	n, ok := c.uvarint()
	if !ok || n == 0 || n > uint64(len(p)) {
		return dst, ErrBadBatch
	}
	hdr, ok := c.bytes(2)
	if !ok {
		return dst, ErrBadBatch
	}
	addr, seq := hdr[0], hdr[1]
	count, ok := c.uvarint()
	if !ok || count > math.MaxUint32 {
		return dst, ErrBadBatch
	}
	bCenti, ok1 := c.zigzag()
	bMbar, ok2 := c.zigzag()
	bSNR, ok3 := c.zigzag()
	tb, ok4 := c.bytes(8)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return dst, ErrBadBatch
	}
	if !quantOK(bCenti) || !quantOK(bMbar) || !quantOK(bSNR) {
		return dst, ErrBadBatch
	}
	bTime := int64(binary.BigEndian.Uint64(tb))
	mark := len(dst)
	dst = append(dst, Reading{
		NodeAddr: addr, Seq: seq, Count: uint32(count),
		TempC: float64(bCenti) / 100, PressureMbar: float64(bMbar),
		SNRdB: float64(bSNR) / 100, Time: time.Unix(0, bTime).UTC(),
	})
	for i := uint64(1); i < n; i++ {
		hdr, ok := c.bytes(2)
		if !ok {
			return dst[:mark], ErrBadBatch
		}
		dCount, ok1 := c.zigzag()
		dCenti, ok2 := c.zigzag()
		dMbar, ok3 := c.zigzag()
		dSNR, ok4 := c.zigzag()
		dTime, ok5 := c.zigzag()
		if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
			return dst[:mark], ErrBadBatch
		}
		cnt := int64(count) + dCount
		centi, mbar, snr := bCenti+dCenti, bMbar+dMbar, bSNR+dSNR
		if cnt < 0 || cnt > math.MaxUint32 || !quantOK(centi) || !quantOK(mbar) || !quantOK(snr) {
			return dst[:mark], ErrBadBatch
		}
		dst = append(dst, Reading{
			NodeAddr: hdr[0], Seq: hdr[1], Count: uint32(cnt),
			TempC: float64(centi) / 100, PressureMbar: float64(mbar),
			SNRdB: float64(snr) / 100, Time: time.Unix(0, bTime+dTime).UTC(),
		})
	}
	if c.pos != len(p) {
		return dst[:mark], ErrBadBatch
	}
	return dst, nil
}

// quantOK reports whether a decoded quantized value is within the range
// the encoder could have produced.
func quantOK(v int64) bool { return v >= -batchQuantBound && v <= batchQuantBound }

// DecodeReadingBatch is the allocating convenience form of
// DecodeReadingBatchInto.
func DecodeReadingBatch(p []byte) ([]Reading, error) {
	return DecodeReadingBatchInto(nil, p)
}
