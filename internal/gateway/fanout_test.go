package gateway

import (
	"context"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vab/internal/netmem"
	"vab/internal/telemetry"
)

// countConn is a fake subscriber socket: writes are counted and
// discarded, reads block until Close. It lets the alloc pin drive the
// full fan-out path (ring, writer goroutine, writev batching) without
// kernel sockets or draining goroutines that could allocate.
type countConn struct {
	bytes  atomic.Int64
	closed atomic.Bool
	unread chan struct{}
	addr   netmem.Addr
}

func newCountConn() *countConn {
	return &countConn{unread: make(chan struct{}), addr: netmem.Addr{Name: "count"}}
}

func (c *countConn) Read(b []byte) (int, error) {
	<-c.unread
	return 0, io.EOF
}

func (c *countConn) Write(b []byte) (int, error) {
	if c.closed.Load() {
		return 0, net.ErrClosed
	}
	c.bytes.Add(int64(len(b)))
	return len(b), nil
}

func (c *countConn) Close() error {
	if c.closed.CompareAndSwap(false, true) {
		close(c.unread)
	}
	return nil
}

func (c *countConn) LocalAddr() net.Addr              { return c.addr }
func (c *countConn) RemoteAddr() net.Addr             { return c.addr }
func (c *countConn) SetDeadline(time.Time) error      { return nil }
func (c *countConn) SetReadDeadline(time.Time) error  { return nil }
func (c *countConn) SetWriteDeadline(time.Time) error { return nil }

// TestBroadcastAllocs pins the encode-once flush path at zero
// allocations per publish in steady state, measured across the whole
// process — sequence lock, arena encode, shard fan-out, ring push, and
// the writer goroutines' socket writes all included.
func TestBroadcastAllocs(t *testing.T) {
	ln := netmem.Listen("alloc", 0) // accept blocks: subs register directly
	s := NewServerListener(context.Background(), ln, func(string, ...interface{}) {})
	defer s.Close()
	s.SetShards(4)
	s.SetHeartbeatPolicy(time.Hour, 3) // no ticks during the measurement

	const subs = 8
	conns := make([]*countConn, subs)
	for i := range conns {
		conns[i] = newCountConn()
		if !s.register(conns[i]) {
			t.Fatal("register refused")
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Subscribers() < subs {
		if time.Now().After(deadline) {
			t.Fatal("subscribers never registered")
		}
		time.Sleep(time.Millisecond)
	}

	total := func() int64 {
		var n int64
		for _, c := range conns {
			n += c.bytes.Load()
		}
		return n
	}
	rd := seqReading(1)
	// One op = one published reading fanned out to every subscriber as a
	// v1 frame; it completes when every writer has put the frame on its
	// socket, so the measurement covers the full delivery path.
	op := func() {
		want := total() + subs*int64(V1FrameBytesPerReading)
		s.Publish(rd)
		for total() < want {
			runtime.Gosched()
		}
	}
	for i := 0; i < 64; i++ {
		op() // warm: scratch buffers, rings, arena freelist all reach steady state
	}
	if allocs := testing.AllocsPerRun(200, op); allocs != 0 {
		t.Fatalf("steady-state broadcast allocated %.2f times per publish, want 0", allocs)
	}
}

// TestSubscriberGaugeLive pins the satellite fix: the
// vab_gateway_subscribers gauge moves when sessions come and go, not
// merely on the next flush. Eviction of a stalled subscriber must be
// visible in the gauge without any further Publish.
func TestSubscriberGaugeLive(t *testing.T) {
	s, _ := startServer(t)
	reg := telemetry.NewRegistry()
	s.Instrument(reg)
	gauge := reg.Gauge("vab_gateway_subscribers", "")

	// Connect: the gauge must move with zero publishes.
	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	waitSubscribers(t, s, 1)
	if g := gauge.Value(); g != 1 {
		t.Fatalf("gauge after subscribe = %g, want 1 (no flush ran)", g)
	}

	// Saturate the stalled subscriber until eviction; then the gauge must
	// read 0 with no further publish.
	deadline := time.Now().Add(10 * time.Second)
	for s.Subscribers() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("stalled subscriber never evicted")
		}
		s.Publish(seqReading(1))
	}
	if g := gauge.Value(); g != 0 {
		t.Fatalf("gauge after eviction = %g, want 0 (no flush ran since)", g)
	}
	conn.Close()
}

// TestShardChurnResumeSoak races subscribe/evict/resume against sharded
// flushes: a steady publisher, stalled subscribers being evicted, and
// parallel resuming sessions that reconnect mid-stream — every resumed
// session must observe a strictly increasing, gap-free sequence. Run
// under -race this pins the shard registry, census counters, and arena
// refcounting.
func TestShardChurnResumeSoak(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 10
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	srv, err := NewServer(ctx, "127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	srv.SetShards(4)
	srv.SetHeartbeatPolicy(time.Second, 3)
	srv.SetReplay(1 << 16) // nothing ages out: gaps must be zero
	srv.SetBatching(8, 2*time.Millisecond)
	addr := srv.Addr().String()

	var stopPub atomic.Bool
	var pubWG sync.WaitGroup
	pubWG.Add(1)
	go func() {
		defer pubWG.Done()
		for i := uint64(1); !stopPub.Load(); i++ {
			srv.Publish(seqReading(i))
			time.Sleep(200 * time.Microsecond)
		}
	}()

	// Stalled subscribers churn in the background: connect, never read,
	// get evicted by ring overflow while flushes race across shards.
	var lazyWG sync.WaitGroup
	var stopLazy atomic.Bool
	lazyWG.Add(1)
	go func() {
		defer lazyWG.Done()
		for !stopLazy.Load() {
			c, err := net.Dial("tcp", addr)
			if err != nil {
				return
			}
			time.Sleep(20 * time.Millisecond)
			c.Close()
		}
	}()

	// Four resuming workers reconnect repeatedly, each asserting its own
	// gap-free strictly-increasing sequence view.
	const workers = 4
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeq uint64
			for round := 0; round < rounds; round++ {
				c, err := Dial(ctx, addr, WithResume(lastSeq), WithHandshakeTimeout(2*time.Second))
				if err != nil {
					continue
				}
				for reads := 0; reads < 30; reads++ {
					rd, err := c.Next(time.Now().Add(500 * time.Millisecond))
					if err != nil {
						break
					}
					seq := c.LastSeq()
					if seq == 0 {
						continue
					}
					if seq <= lastSeq {
						errCh <- errSeq("sequence went backwards", seq, lastSeq)
						c.Close()
						return
					}
					if seq != lastSeq+1 {
						errCh <- errSeq("sequence gap", seq, lastSeq)
						c.Close()
						return
					}
					if uint64(rd.Count) != seq {
						errCh <- errSeq("content mismatch", uint64(rd.Count), seq)
						c.Close()
						return
					}
					lastSeq = seq
				}
				c.Close()
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	stopPub.Store(true)
	stopLazy.Store(true)
	pubWG.Wait()
	lazyWG.Wait()
	for w := 0; w < workers; w++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
}

func errSeq(what string, got, ref uint64) error {
	return fmt.Errorf("%s: got %d against %d", what, got, ref)
}
