package gateway

import (
	"encoding/binary"
	"fmt"
)

// Session resume: a reconnecting subscriber recovers the readings it
// missed instead of silently losing them.
//
// The server numbers every published reading with a stream sequence
// (uint64, starting at 1) and keeps the most recent readings in a replay
// ring. A v2 client that wants recovery sends a MsgResume frame carrying
// the last stream sequence it saw (0 on a fresh session); the server
// answers with MsgResumeAck and switches that subscriber to sequenced
// MsgSeqBatch frames — the v2 batch block prefixed with the first
// reading's stream sequence, consecutive within the frame. The ack names
// the first sequence that will actually be delivered, so the client knows
// exactly which readings (if any) aged out of the ring and are gone:
//
//	MsgResume    (client → gateway): uvarint lastSeq
//	MsgResumeAck (gateway → client): uvarint replayFrom · uvarint liveNext
//	MsgSeqBatch  (gateway → client): uvarint firstSeq · batch block
//
// replayFrom > lastSeq+1 means the gap [lastSeq+1, replayFrom) is
// unrecoverable (the ring aged it out) and the session continues
// live-only from replayFrom. Servers that predate resume simply ignore
// the MsgResume frame, and the client falls back to the plain v2 stream.
//
// Interleaving contract: the server composes the ack and the replay
// under the broadcast lock, so replayed sequences are enqueued strictly
// before any live flush that follows — a resumed subscriber observes one
// gap-free, strictly increasing sequence.

// Additional message types (protocol v2 extension; unknown to v1 peers,
// which never see them, and ignored by pre-resume v2 servers).
const (
	// MsgPong answers a gateway heartbeat (client → gateway). A subscriber
	// that pongs is liveness-tracked: the gateway drops it when pongs stop.
	MsgPong MsgType = 0x05
	// MsgResume requests sequenced delivery with gap replay.
	MsgResume MsgType = 0x06
	// MsgResumeAck acknowledges a resume with the replay window bounds.
	MsgResumeAck MsgType = 0x07
	// MsgSeqBatch is a sequence-prefixed reading batch.
	MsgSeqBatch MsgType = 0x08
	// MsgGoodbye announces a graceful server shutdown: the stream ends
	// after this frame, and reconnecting is the right response.
	MsgGoodbye MsgType = 0x09
)

// ErrBadResume reports a malformed resume-family payload.
var ErrBadResume = fmt.Errorf("gateway: malformed resume frame")

// AppendResume appends a MsgResume payload: the last stream sequence the
// client saw (0 = none).
func AppendResume(dst []byte, lastSeq uint64) []byte {
	return binary.AppendUvarint(dst, lastSeq)
}

// DecodeResume parses a MsgResume payload.
func DecodeResume(p []byte) (lastSeq uint64, err error) {
	v, n := binary.Uvarint(p)
	if n <= 0 || n != len(p) {
		return 0, ErrBadResume
	}
	return v, nil
}

// AppendResumeAck appends a MsgResumeAck payload: the first sequence the
// server will deliver (replayed or live) and the next live sequence.
func AppendResumeAck(dst []byte, replayFrom, liveNext uint64) []byte {
	dst = binary.AppendUvarint(dst, replayFrom)
	return binary.AppendUvarint(dst, liveNext)
}

// DecodeResumeAck parses a MsgResumeAck payload.
func DecodeResumeAck(p []byte) (replayFrom, liveNext uint64, err error) {
	var n, m int
	replayFrom, n = binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, ErrBadResume
	}
	liveNext, m = binary.Uvarint(p[n:])
	if m <= 0 || n+m != len(p) || liveNext < replayFrom {
		return 0, 0, ErrBadResume
	}
	return replayFrom, liveNext, nil
}

// AppendSeqBatch appends a MsgSeqBatch payload: the first reading's
// stream sequence followed by the v2 batch block. Readings in the frame
// carry consecutive sequences firstSeq, firstSeq+1, … It returns
// ErrOversize when the whole payload would exceed MaxPayloadSize — split
// the batch and retry, like AppendReadingBatch.
func AppendSeqBatch(dst []byte, firstSeq uint64, rds []Reading) ([]byte, error) {
	if firstSeq == 0 {
		return dst, fmt.Errorf("gateway: sequence numbering starts at 1")
	}
	mark := len(dst)
	out := binary.AppendUvarint(dst, firstSeq)
	out, err := AppendReadingBatch(out, rds)
	if err != nil {
		return dst, err
	}
	if len(out)-mark > MaxPayloadSize {
		return dst, ErrOversize
	}
	return out, nil
}

// DecodeSeqBatchInto parses a MsgSeqBatch payload, appending the readings
// to dst and returning the first reading's stream sequence.
func DecodeSeqBatchInto(dst []Reading, p []byte) ([]Reading, uint64, error) {
	if len(p) > MaxPayloadSize {
		// Like DecodeReadingBatchInto: never admit a payload the
		// (canonical) encoder could not have framed.
		return dst, 0, ErrBadResume
	}
	firstSeq, n := binary.Uvarint(p)
	if n <= 0 || firstSeq == 0 {
		return dst, 0, ErrBadResume
	}
	out, err := DecodeReadingBatchInto(dst, p[n:])
	if err != nil {
		return dst, 0, err
	}
	return out, firstSeq, nil
}

// ReplayRing holds the most recent published readings, indexed by their
// stream sequence, so a resuming subscriber can recover its gap. Appends
// must be contiguous (each seq one past the previous); the server's
// publish path guarantees that by construction. The zero-size ring keeps
// nothing. Not safe for concurrent use — the server guards it with its
// broadcast lock.
type ReplayRing struct {
	buf  []Reading
	next uint64 // the sequence the next Append must carry
	n    int    // live entries, ≤ len(buf)
}

// NewReplayRing builds a ring keeping the last n readings (n ≤ 0 keeps
// nothing).
func NewReplayRing(n int) *ReplayRing {
	if n < 0 {
		n = 0
	}
	return &ReplayRing{buf: make([]Reading, n), next: 1}
}

// Cap returns the ring's window size.
func (r *ReplayRing) Cap() int { return len(r.buf) }

// Len returns the number of readings currently replayable.
func (r *ReplayRing) Len() int { return r.n }

// Window returns the replayable sequence span [oldest, next): oldest is
// the smallest recoverable sequence, next the sequence the upcoming
// reading will carry. Empty window ⇔ oldest == next.
func (r *ReplayRing) Window() (oldest, next uint64) {
	return r.next - uint64(r.n), r.next
}

// Append records the reading published under seq. Out-of-order appends
// reset the ring to the new sequence point rather than serving a window
// with holes.
func (r *ReplayRing) Append(seq uint64, rd Reading) {
	if seq != r.next {
		r.n = 0
		r.next = seq
	}
	if len(r.buf) > 0 {
		r.buf[seq%uint64(len(r.buf))] = rd
		if r.n < len(r.buf) {
			r.n++
		}
	}
	r.next = seq + 1
}

// Since appends every retained reading with sequence > lastSeq to dst in
// sequence order, returning the extended slice and the first appended
// sequence (0 when nothing qualified). Sequences older than the window
// are gone: the caller compares firstSeq against lastSeq+1 to detect the
// unrecoverable gap.
func (r *ReplayRing) Since(lastSeq uint64, dst []Reading) ([]Reading, uint64) {
	oldest, next := r.Window()
	from := lastSeq + 1
	if from < oldest {
		from = oldest
	}
	if from >= next {
		return dst, 0
	}
	first := from
	for seq := from; seq < next; seq++ {
		dst = append(dst, r.buf[seq%uint64(len(r.buf))])
	}
	return dst, first
}
