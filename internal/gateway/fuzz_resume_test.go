package gateway

import (
	"testing"
	"time"
)

// FuzzResumeFrame exercises the resume-family payload decoders against
// arbitrary bytes: they must never panic, and accepted payloads must
// survive a re-encode/re-decode cycle with identical values (semantic
// round trip — non-canonical varints re-encode canonically, as in
// FuzzBatchDecode).
func FuzzResumeFrame(f *testing.F) {
	f.Add(AppendResume(nil, 0))
	f.Add(AppendResume(nil, 1<<40))
	f.Add(AppendResumeAck(nil, 7, 12))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		if lastSeq, err := DecodeResume(p); err == nil {
			got, err := DecodeResume(AppendResume(nil, lastSeq))
			if err != nil || got != lastSeq {
				t.Fatalf("resume round trip: %d -> %d, %v", lastSeq, got, err)
			}
		}
		if from, next, err := DecodeResumeAck(p); err == nil {
			if next < from {
				t.Fatalf("decoder accepted inverted window [%d,%d)", from, next)
			}
			f2, n2, err := DecodeResumeAck(AppendResumeAck(nil, from, next))
			if err != nil || f2 != from || n2 != next {
				t.Fatalf("ack round trip: (%d,%d) -> (%d,%d), %v", from, next, f2, n2, err)
			}
		}
	})
}

// FuzzSeqBatchDecode: arbitrary MsgSeqBatch payloads must decode without
// panicking, and accepted payloads must survive a re-encode/re-decode
// cycle with the same first sequence and identical readings.
func FuzzSeqBatchDecode(f *testing.F) {
	if p, err := AppendSeqBatch(nil, 1, []Reading{testReading()}); err == nil {
		f.Add(p)
	}
	rd2 := testReading()
	rd2.Seq++
	rd2.Count++
	rd2.Time = rd2.Time.Add(250 * time.Millisecond)
	if p, err := AppendSeqBatch(nil, 99, []Reading{testReading(), rd2}); err == nil {
		f.Add(p)
	}
	f.Add([]byte{1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, p []byte) {
		rds, firstSeq, err := DecodeSeqBatchInto(nil, p)
		if err != nil {
			return
		}
		if firstSeq == 0 {
			t.Fatal("decoder accepted firstSeq 0")
		}
		re, err := AppendSeqBatch(nil, firstSeq, rds)
		if err != nil {
			t.Fatalf("accepted payload failed to re-encode: %v", err)
		}
		rds2, f2, err := DecodeSeqBatchInto(nil, re)
		if err != nil || f2 != firstSeq {
			t.Fatalf("re-decode: firstSeq %d -> %d, %v", firstSeq, f2, err)
		}
		if len(rds2) != len(rds) {
			t.Fatalf("re-decode count %d, want %d", len(rds2), len(rds))
		}
		for i := range rds {
			if !rds2[i].Time.Equal(rds[i].Time) {
				t.Fatalf("reading %d time mismatch", i)
			}
			a, b := rds[i], rds2[i]
			a.Time, b.Time = time.Time{}, time.Time{}
			if a != b {
				t.Fatalf("reading %d mismatch:\n got  %+v\n want %+v", i, b, a)
			}
		}
	})
}
