package gateway

import (
	"context"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"sync"
	"testing"
	"time"

	"vab/internal/telemetry"
)

// scrape fetches the handler's /metrics page and returns the value of one
// series (0 when absent).
func scrape(t *testing.T, url, series string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\S+)$`)
	m := re.FindSubmatch(body)
	if m == nil {
		return 0
	}
	v, err := strconv.ParseFloat(string(m[1]), 64)
	if err != nil {
		t.Fatalf("series %s: bad value %q", series, m[1])
	}
	return v
}

// TestMetricsDuringLiveRound runs a real instrumented gateway with
// several subscribers draining concurrently, publishes from multiple
// goroutines (concurrent metric writes across subscriber and publisher
// goroutines — the -race target of this file), and scrapes /metrics over
// HTTP while traffic flows.
func TestMetricsDuringLiveRound(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := NewServer(ctx, "127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := telemetry.NewRegistry()
	s.Instrument(reg)
	ops := httptest.NewServer(telemetry.NewHandler(reg))
	defer ops.Close()

	const nClients = 3
	var clients []*Client
	for i := 0; i < nClients; i++ {
		c, err := Dial(ctx, s.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		clients = append(clients, c)
	}
	waitSubscribers(t, s, nClients)

	if got := scrape(t, ops.URL, "vab_gateway_subscribers"); got != nClients {
		t.Errorf("vab_gateway_subscribers = %g, want %d", got, nClients)
	}

	// Publish from several goroutines while every client drains.
	const pubs, perPub = 4, 25
	var wg sync.WaitGroup
	for p := 0; p < pubs; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPub; i++ {
				s.Publish(testReading())
			}
		}()
	}
	drained := make(chan int, nClients)
	for _, c := range clients {
		wg.Add(1)
		go func(c *Client) {
			defer wg.Done()
			n := 0
			for n < pubs*perPub {
				if _, err := c.Next(time.Now().Add(5 * time.Second)); err != nil {
					break
				}
				n++
			}
			drained <- n
		}(c)
	}
	// Scrape concurrently with the traffic: must not race or tear.
	for i := 0; i < 5; i++ {
		scrape(t, ops.URL, "vab_gateway_frames_sent_total")
	}
	wg.Wait()
	close(drained)
	total := 0
	for n := range drained {
		total += n
	}

	if got := scrape(t, ops.URL, "vab_gateway_readings_published_total"); got != pubs*perPub {
		t.Errorf("vab_gateway_readings_published_total = %g, want %d", got, pubs*perPub)
	}
	// Every reading frame each client received was counted on the send
	// side (hello and heartbeat frames may add more).
	if got := scrape(t, ops.URL, "vab_gateway_frames_sent_total"); got < float64(total) {
		t.Errorf("vab_gateway_frames_sent_total = %g, want ≥ %d", got, total)
	}
	if got := scrape(t, ops.URL, "vab_gateway_subscribers_accepted_total"); got != nClients {
		t.Errorf("vab_gateway_subscribers_accepted_total = %g, want %d", got, nClients)
	}
}

// TestMetricsSlowSubscriberDrop pins the slow-drop counter: a subscriber
// that never drains must eventually show up in
// vab_gateway_slow_subscriber_drops_total and leave the gauge at zero.
func TestMetricsSlowSubscriberDrop(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s, err := NewServer(ctx, "127.0.0.1:0", t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	reg := telemetry.NewRegistry()
	s.Instrument(reg)
	ops := httptest.NewServer(telemetry.NewHandler(reg))
	defer ops.Close()

	conn, err := net.Dial("tcp", s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	waitSubscribers(t, s, 1)

	deadline := time.Now().Add(10 * time.Second)
	for s.Subscribers() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("slow subscriber never dropped")
		}
		s.Publish(testReading())
	}
	if got := scrape(t, ops.URL, "vab_gateway_slow_subscriber_drops_total"); got != 1 {
		t.Errorf("vab_gateway_slow_subscriber_drops_total = %g, want 1", got)
	}
	if got := scrape(t, ops.URL, "vab_gateway_subscribers"); got != 0 {
		t.Errorf("vab_gateway_subscribers = %g, want 0", got)
	}
}

// TestUninstrumentedServerIsNoop pins the default-off contract: a server
// that was never instrumented publishes normally with nil metrics.
func TestUninstrumentedServerIsNoop(t *testing.T) {
	s, _ := startServer(t)
	c, err := Dial(context.Background(), s.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	waitSubscribers(t, s, 1)
	s.Publish(testReading())
	if _, err := c.Next(time.Now().Add(5 * time.Second)); err != nil {
		t.Fatal(err)
	}
	if s.met() != &noopGW {
		t.Error("uninstrumented server must use the noop bundle")
	}
}
