package channel

import "vab/internal/telemetry"

// Package-level metric handles, nil (free no-ops) until Instrument wires
// them to a registry — same write-once contract as dsp.Instrument. The
// shaper-cache counters are touched from arbitrary goroutines building
// links concurrently, but Counter.Inc is atomic and nil-safe.
var (
	metLinkBuilds    *telemetry.Counter
	metLinkRebuilds  *telemetry.Counter
	metShaperHits    *telemetry.Counter
	metShaperMisses  *telemetry.Counter
	metWorkspaceGrow *telemetry.Counter
)

// Instrument enables channel-layer counters against reg. Call once at
// startup, before links are built concurrently.
func Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	metLinkBuilds = reg.Counter("vab_channel_link_builds_total",
		"Links constructed from scratch by channel.New.")
	metLinkRebuilds = reg.Counter("vab_channel_link_rebuilds_total",
		"Incremental geometry rebuilds that reused an existing Link.")
	metShaperHits = reg.Counter("vab_channel_shaper_cache_hits_total",
		"Wenz noise-shaper designs served from the per-environment cache.")
	metShaperMisses = reg.Counter("vab_channel_shaper_cache_misses_total",
		"Wenz noise-shaper designs computed (one per environment/carrier/rate).")
	metWorkspaceGrow = reg.Counter("vab_channel_workspace_grows_total",
		"Link scratch buffer growths; flat after warmup in steady state.")
}
