// Package channel turns the ocean, piezo and vanatta models into a sampled
// complex-baseband link simulator: the waveform a VAB reader's hydrophone
// actually digitizes, including multipath, ambient noise, direct-path
// self-interference from the projector, and slow channel fading.
//
// Signals are complex envelopes around the carrier frequency. Amplitudes are
// in µPa (the underwater reference pressure), so levels compose directly
// with the dB re 1 µPa conventions of the ocean package: a projector with
// source level SL dB re 1 µPa @ 1 m transmits an envelope of magnitude
// 10^(SL/20).
//
// # Steady-state allocation discipline
//
// The round pipeline is built to allocate nothing once warmed up. Every
// waveform entry point has an *Into form (DownlinkInto, UplinkInto,
// RoundTripInto) writing into caller buffers; internal scratch lives in a
// per-Link workspace that grows to the working frame size and is then
// reused; and Rebuild re-derives a swayed geometry in place instead of
// constructing a new Link, reusing the arrival, tap and filter storage.
// The allocating forms (Downlink, Uplink, RoundTrip, New) remain as
// conveniences and delegate to the *Into/Rebuild machinery, so both paths
// compute bit-identical waveforms.
package channel

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"vab/internal/dsp"
	"vab/internal/ocean"
)

// Tap is one arrival of the tapped-delay-line channel in sample units.
type Tap struct {
	DelaySamples float64
	Gain         complex128
}

// Config describes one reader↔node acoustic link.
type Config struct {
	Env        *ocean.Environment
	CarrierHz  float64
	SampleRate float64 // baseband sample rate, Hz

	ReaderDepth float64 // m
	NodeDepth   float64 // m
	Range       float64 // horizontal range, m

	// MaxOrder and FloorDB tune multipath enumeration (see ocean package);
	// zero values select defaults.
	MaxOrder int
	FloorDB  float64

	// SelfInterferenceDB sets the direct projector→hydrophone leakage level
	// relative to the source level at 1 m (negative number; typical reader
	// assemblies achieve −20…−40 dB of acoustic isolation).
	SelfInterferenceDB float64

	// DisableNoise turns off ambient noise injection (unit tests).
	DisableNoise bool
	// ColoredNoise shapes the ambient noise to the Wenz spectrum across
	// the baseband bandwidth instead of injecting it white (same total
	// power). The Wenz PSD falls ~20 dB/decade through the VAB band, so
	// the noise under the lower subcarrier is a little heavier than under
	// the upper one — a second-order effect kept optional so the
	// calibrated anchors stay put.
	ColoredNoise bool
	// DisableFading freezes the channel in time.
	DisableFading bool

	// FrequencyDomainTDL switches Downlink/Uplink to the overlap-save
	// block-convolution engine (see TDL). It is opt-in because FFT
	// rounding differs from the reference time-domain arithmetic at the
	// ~1e-13 relative level, which would perturb the seeded experiment
	// transcripts; the default time-domain path is bit-identical to the
	// historical implementation. Worth enabling only for dense delay
	// lines (tens of taps) — see the TDL benchmarks for the crossover.
	FrequencyDomainTDL bool

	Seed int64
}

// Geometry is the sway-jittered placement Rebuild applies to an existing
// link: the three quantities that change round to round while the
// environment, carrier and noise model stay fixed.
type Geometry struct {
	ReaderDepth float64 // m
	NodeDepth   float64 // m
	Range       float64 // horizontal range, m
}

// Link is an instantiated channel between a reader and a node position.
// It is not safe for concurrent use (it owns a random stream and scratch
// buffers).
type Link struct {
	cfg  Config
	mp   ocean.MultipathConfig
	down []Tap // reader → node
	up   []Tap // node → reader (reciprocal geometry)

	// Reused storage for incremental rebuilds.
	downArr []ocean.Arrival
	upArr   []ocean.Arrival
	tdlDown *TDL
	tdlUp   *TDL

	noiseAmp float64   // per-sample std dev of ambient noise envelope, µPa
	shaper   *dsp.CFIR // nil for white noise
	leak     complex128
	fading   *ocean.FadingProcess
	src      rand.Source
	rng      *rand.Rand

	ws workspace
}

// New builds a link. The multipath geometry is computed once; fading evolves
// per sample as waveforms pass through. For per-round geometry sway, build
// one Link and call Rebuild instead of calling New each round.
func New(cfg Config) (*Link, error) {
	if cfg.Env == nil {
		return nil, fmt.Errorf("channel: environment required")
	}
	if err := cfg.Env.Validate(); err != nil {
		return nil, err
	}
	if cfg.CarrierHz <= 0 || cfg.SampleRate <= 0 {
		return nil, fmt.Errorf("channel: carrier %.3g Hz and sample rate %.3g Hz must be positive", cfg.CarrierHz, cfg.SampleRate)
	}
	if err := validateGeometry(cfg.Env, Geometry{
		ReaderDepth: cfg.ReaderDepth, NodeDepth: cfg.NodeDepth, Range: cfg.Range,
	}); err != nil {
		return nil, err
	}
	mp := ocean.DefaultMultipathConfig(cfg.CarrierHz)
	if cfg.MaxOrder > 0 {
		mp.MaxOrder = cfg.MaxOrder
	}
	if cfg.FloorDB > 0 {
		mp.MinRelAmpDB = cfg.FloorDB
	}
	src := rand.NewSource(cfg.Seed)
	l := &Link{cfg: cfg, mp: mp, src: src, rng: rand.New(src)}
	l.tdlDown = NewTDL(nil, cfg.FrequencyDomainTDL)
	l.tdlUp = NewTDL(nil, cfg.FrequencyDomainTDL)
	l.rebuildGeometry()

	if !cfg.DisableNoise {
		nl := cfg.Env.NoiseLevel(cfg.CarrierHz, cfg.SampleRate)
		l.noiseAmp = math.Pow(10, nl/20)
		if cfg.ColoredNoise {
			taps, err := wenzShaperTaps(cfg.Env, cfg.CarrierHz, cfg.SampleRate)
			if err != nil {
				return nil, err
			}
			l.shaper = dsp.NewCFIR(taps)
		}
	}
	if cfg.SelfInterferenceDB != 0 {
		l.leak = complex(math.Pow(10, cfg.SelfInterferenceDB/20), 0)
	}
	if !cfg.DisableFading {
		spread := cfg.Env.DopplerSpread(cfg.CarrierHz, 0)
		l.fading = ocean.NewFadingProcess(spread, cfg.SampleRate, 0.3, l.rng)
	}
	metLinkBuilds.Inc()
	return l, nil
}

func validateGeometry(env *ocean.Environment, g Geometry) error {
	if g.Range <= 0 {
		return fmt.Errorf("channel: range %.3g m must be positive", g.Range)
	}
	if g.ReaderDepth <= 0 || g.ReaderDepth > env.Depth ||
		g.NodeDepth <= 0 || g.NodeDepth > env.Depth {
		return fmt.Errorf("channel: depths (%.2f, %.2f) must lie inside the water column (0, %.2f]",
			g.ReaderDepth, g.NodeDepth, env.Depth)
	}
	return nil
}

// Rebuild re-derives the link for a new geometry and noise seed in place,
// reusing all storage: arrival and tap slices, TDL spectra, the noise
// shaper, and the fading process (whose AR(1) coefficients are geometry-
// independent) are recycled rather than reallocated. The resulting Link is
// bit-identical — same taps, same RNG stream, same waveforms — to what
// channel.New would return for the updated configuration, which
// TestRebuildMatchesFreshLink pins across swayed rounds, but rebuilding
// allocates nothing in steady state where New rebuilds everything.
func (l *Link) Rebuild(g Geometry, seed int64) error {
	if err := validateGeometry(l.cfg.Env, g); err != nil {
		return err
	}
	l.cfg.ReaderDepth, l.cfg.NodeDepth, l.cfg.Range = g.ReaderDepth, g.NodeDepth, g.Range
	l.cfg.Seed = seed
	// Reseeding the shared source puts the RNG in exactly the state a fresh
	// rand.New(rand.NewSource(seed)) would have; the fading process rides
	// the same stream, so resetting its state completes the equivalence.
	l.src.Seed(seed)
	if l.fading != nil {
		l.fading.Reset()
	}
	l.rebuildGeometry()
	metLinkRebuilds.Inc()
	return nil
}

// rebuildGeometry recomputes the geometry-dependent state — eigenray
// enumeration, tap tables and TDL engines — into the Link's reused storage.
func (l *Link) rebuildGeometry() {
	cfg := &l.cfg
	l.downArr = cfg.Env.MultipathAppend(l.downArr, ocean.Geometry{
		SourceDepth: cfg.ReaderDepth, ReceiverDepth: cfg.NodeDepth, Range: cfg.Range,
	}, l.mp)
	l.upArr = cfg.Env.MultipathAppend(l.upArr, ocean.Geometry{
		SourceDepth: cfg.NodeDepth, ReceiverDepth: cfg.ReaderDepth, Range: cfg.Range,
	}, l.mp)
	l.down = appendTaps(l.down[:0], l.downArr, cfg.SampleRate)
	l.up = appendTaps(l.up[:0], l.upArr, cfg.SampleRate)
	l.tdlDown.Rebuild(l.down)
	l.tdlUp.Rebuild(l.up)
}

func appendTaps(dst []Tap, arr []ocean.Arrival, fs float64) []Tap {
	for _, a := range arr {
		dst = append(dst, Tap{DelaySamples: a.Delay * fs, Gain: a.Gain})
	}
	return dst
}

// DownTaps returns a copy of the reader→node taps.
func (l *Link) DownTaps() []Tap { return append([]Tap(nil), l.down...) }

// UpTaps returns a copy of the node→reader taps.
func (l *Link) UpTaps() []Tap { return append([]Tap(nil), l.up...) }

// Downlink propagates a transmitted envelope to the node. The node faces an
// enormous near-field signal compared to ambient noise, so no noise is
// added; multipath and absorption still shape the command waveform.
func (l *Link) Downlink(tx []complex128) []complex128 {
	dst := make([]complex128, len(tx))
	l.DownlinkInto(dst, tx)
	return dst
}

// DownlinkInto is Downlink writing into dst, which must have the same
// length as tx and must not alias it. It allocates nothing.
func (l *Link) DownlinkInto(dst, tx []complex128) []complex128 {
	l.tdlDown.Apply(dst, tx)
	return dst
}

// Uplink propagates the node's scattered envelope back to the reader,
// applying slow fading, then adds the projector's direct-path leakage
// (txLeak is the reader's own transmit envelope, nil when the projector is
// quiet) and ambient noise.
func (l *Link) Uplink(scattered, txLeak []complex128) []complex128 {
	dst := make([]complex128, len(scattered))
	return l.UplinkInto(dst, scattered, txLeak)
}

// UplinkInto is Uplink writing into dst, which must have the same length
// as scattered and must not alias scattered or txLeak. Noise scratch comes
// from the link workspace, so the steady state allocates nothing.
func (l *Link) UplinkInto(dst, scattered, txLeak []complex128) []complex128 {
	l.tdlUp.Apply(dst, scattered)
	if l.fading != nil {
		l.fading.Apply(dst)
	}
	if l.leak != 0 && txLeak != nil {
		n := len(dst)
		if len(txLeak) < n {
			n = len(txLeak)
		}
		for i := 0; i < n; i++ {
			dst[i] += l.leak * txLeak[i]
		}
	}
	l.addNoise(dst)
	return dst
}

// addNoise injects ambient noise (white, or Wenz-shaped when configured)
// with total in-band power matching the environment's noise level. The
// Gaussian draw lands in workspace scratch and the shaper filters it in
// place (see the dsp.CFIR.ProcessInto aliasing contract).
func (l *Link) addNoise(y []complex128) {
	if l.noiseAmp <= 0 {
		return
	}
	l.ws.noise = growBuf(l.ws.noise, len(y))
	noise := l.ws.noise
	dsp.GaussianNoiseInto(noise, l.noiseAmp*l.noiseAmp, l.rng)
	if l.shaper != nil {
		l.shaper.Reset()
		l.shaper.ProcessInto(noise, noise)
	}
	dsp.AddInto(y, noise)
}

// wenzShaperKey identifies a shaper design: the filter depends only on the
// environment's noise model, the carrier and the sample rate — never on
// link geometry — so one design serves every link (and every rebuild) in a
// simulation sweep.
type wenzShaperKey struct {
	env    ocean.Environment
	fc, fs float64
}

var wenzShaperCache sync.Map // wenzShaperKey → []complex128 (immutable taps)

// wenzShaperTaps returns the cached Wenz shaping-filter taps for the given
// environment fingerprint, designing them on first use. The cached slice is
// immutable; callers clone it into a private dsp.CFIR (whose constructor
// copies taps) so per-link filter state never aliases the cache.
func wenzShaperTaps(env *ocean.Environment, fc, fs float64) ([]complex128, error) {
	key := wenzShaperKey{env: *env, fc: fc, fs: fs}
	if v, ok := wenzShaperCache.Load(key); ok {
		metShaperHits.Inc()
		return v.([]complex128), nil
	}
	metShaperMisses.Inc()
	f, err := wenzShaper(env, fc, fs)
	if err != nil {
		return nil, err
	}
	taps := f.Taps()
	if v, raced := wenzShaperCache.LoadOrStore(key, taps); raced {
		return v.([]complex128), nil
	}
	return taps, nil
}

// wenzShaper builds the PSD-shaping filter: the baseband bin at offset f
// carries the Wenz density at fc+f, normalized to unit mean so the white
// noise amplitude calibration is preserved.
func wenzShaper(env *ocean.Environment, fc, fs float64) (*dsp.CFIR, error) {
	const bins = 256
	psd := make([]float64, bins)
	var mean float64
	for k := 0; k < bins; k++ {
		f := float64(k) * fs / bins
		if k > bins/2 {
			f -= fs
		}
		p := math.Pow(10, env.NoisePSD(fc+f)/10)
		psd[k] = p
		mean += p
	}
	mean /= bins
	for k := range psd {
		psd[k] /= mean
	}
	return dsp.NoiseShapingFIR(psd, 65, dsp.Hamming)
}

// RoundTrip runs the full backscatter path: the reader's transmit envelope
// travels to the node, is multiplied by the node's time-varying scatter
// waveform (nodeGain · γ(t), produced by the node model), and returns
// through the uplink with leakage and noise.
//
// gamma must have the same length as tx; nodeGain carries the array's
// retrodirective conversion gain at the current orientation.
func (l *Link) RoundTrip(tx, gamma []complex128, nodeGain complex128) ([]complex128, error) {
	dst := make([]complex128, len(tx))
	return l.RoundTripInto(dst, tx, gamma, nodeGain)
}

// RoundTripInto is RoundTrip writing the capture into dst, which must have
// the same length as tx and must not alias tx or gamma. The node-side
// intermediate lives in the link workspace, so a steady-state caller
// (fixed frame length round to round) triggers no allocations at all.
func (l *Link) RoundTripInto(dst, tx, gamma []complex128, nodeGain complex128) ([]complex128, error) {
	if len(gamma) != len(tx) {
		return nil, fmt.Errorf("channel: gamma length %d != tx length %d", len(gamma), len(tx))
	}
	if len(dst) != len(tx) {
		return nil, fmt.Errorf("channel: dst length %d != tx length %d", len(dst), len(tx))
	}
	l.ws.atNode = growBuf(l.ws.atNode, len(tx))
	atNode := l.ws.atNode
	l.DownlinkInto(atNode, tx)
	for i := range atNode {
		atNode[i] *= nodeGain * gamma[i]
	}
	return l.UplinkInto(dst, atNode, tx), nil
}

// BulkDelaySeconds returns the absolute earliest-arrival round-trip delay
// (down plus up), the quantity RoundTripAbsolute preserves and ranging
// measures.
func (l *Link) BulkDelaySeconds() float64 {
	min := func(taps []Tap) float64 {
		m := math.Inf(1)
		for _, t := range taps {
			if t.DelaySamples < m {
				m = t.DelaySamples
			}
		}
		if math.IsInf(m, 1) {
			return 0
		}
		return m / l.cfg.SampleRate
	}
	return min(l.down) + min(l.up)
}

// applyTDLAbs convolves x with the tapped delay line preserving absolute
// delays, into an output of the given length.
func applyTDLAbs(x []complex128, taps []Tap, outLen int) []complex128 {
	out := make([]complex128, outLen)
	for _, t := range taps {
		dsp.MixInto(out, x, int(math.Round(t.DelaySamples)), t.Gain)
	}
	return out
}

// RoundTripAbsolute is RoundTrip with propagation delay preserved: the
// returned capture is long enough to contain the burst after the full
// round-trip flight time, enabling time-of-flight ranging at the reader.
// The leakage (which arrives promptly) and noise span the whole capture.
// Unlike RoundTripInto it allocates its (variable-length) buffers per
// call: ranging rounds are rare and their capture length depends on the
// swayed geometry, so pinning them to a workspace would buy nothing.
func (l *Link) RoundTripAbsolute(tx, gamma []complex128, nodeGain complex128) ([]complex128, error) {
	if len(gamma) != len(tx) {
		return nil, fmt.Errorf("channel: gamma length %d != tx length %d", len(gamma), len(tx))
	}
	maxDelay := func(taps []Tap) int {
		m := 0.0
		for _, t := range taps {
			if t.DelaySamples > m {
				m = t.DelaySamples
			}
		}
		return int(math.Ceil(m))
	}
	if len(l.down) == 0 || len(l.up) == 0 {
		return nil, fmt.Errorf("channel: no propagation paths")
	}
	nDown := len(tx) + maxDelay(l.down) + 1
	atNode := applyTDLAbs(tx, l.down, nDown)
	// The node reacts to what it hears: its modulation waveform γ rides at
	// the downlink bulk delay. Outside γ's support the node sits in its
	// quiescent state — static clutter the reader's notch removes — so the
	// scattered field is zero there.
	dDown := int(math.Round(l.down[0].DelaySamples))
	for i := range atNode {
		j := i - dDown
		if j >= 0 && j < len(gamma) {
			atNode[i] *= nodeGain * gamma[j]
		} else {
			atNode[i] = 0
		}
	}
	nUp := nDown + maxDelay(l.up) + 1
	y := applyTDLAbs(atNode, l.up, nUp)
	if l.fading != nil {
		l.fading.Apply(y)
	}
	if l.leak != 0 {
		n := len(y)
		if len(tx) < n {
			n = len(tx)
		}
		for i := 0; i < n; i++ {
			y[i] += l.leak * tx[i]
		}
	}
	l.addNoise(y)
	return y, nil
}

// RoundTripGainDB returns the coherent round-trip channel power gain in dB
// (down-taps phasor sum times up-taps phasor sum), excluding the node's own
// conversion gain: the waveform-level analogue of 2·TL.
func (l *Link) RoundTripGainDB() float64 {
	var d, u complex128
	for _, t := range l.down {
		d += t.Gain
	}
	for _, t := range l.up {
		u += t.Gain
	}
	m := d * u
	p := real(m)*real(m) + imag(m)*imag(m)
	if p == 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(p)
}

// NoiseAmplitude returns the per-sample RMS ambient noise amplitude in µPa
// (0 when noise is disabled).
func (l *Link) NoiseAmplitude() float64 { return l.noiseAmp }

// InjectBurst adds a high-amplitude noise burst to y in place, starting at
// sample start for length n, at powerDB above the ambient floor: the
// fault-injection hook the chaos scenarios drive (passing boats, snapping
// shrimp). The burst window is clamped against the slice bounds before any
// indexing — a scenario whose drawn offsets overhang a short capture
// buffer perturbs only the overlap — and non-positive lengths are
// rejected. It returns the number of samples actually perturbed, so
// callers can account for clipped injections.
func (l *Link) InjectBurst(y []complex128, start, n int, powerDB float64) int {
	if n <= 0 || start >= len(y) {
		return 0
	}
	if start < 0 {
		// The portion before sample 0 is rejected rather than indexed;
		// guard the addition so a pathological n cannot wrap around.
		if n+start <= 0 {
			return 0
		}
		n += start
		start = 0
	}
	if n > len(y)-start {
		n = len(y) - start
	}
	amp := l.noiseAmp
	if amp == 0 {
		amp = 1
	}
	amp *= math.Pow(10, powerDB/20)
	for i := start; i < start+n; i++ {
		y[i] += complex(l.rng.NormFloat64()*amp/math.Sqrt2, l.rng.NormFloat64()*amp/math.Sqrt2)
	}
	return n
}
