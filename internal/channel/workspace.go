package channel

// workspace holds the per-Link scratch buffers behind the *Into entry
// points. Buffers grow monotonically to the largest waveform the link has
// processed and are then reused, so a steady-state round pipeline (same
// frame length every round) performs zero channel-layer allocations —
// the contract TestRoundTripSteadyStateAllocs pins.
type workspace struct {
	atNode []complex128 // RoundTripInto's node-side intermediate
	noise  []complex128 // addNoise's pre-shaping Gaussian draw
}

// growBuf returns buf resized to n, reallocating only when capacity is
// insufficient (counted, so the ops endpoint can confirm the steady state
// stopped growing).
func growBuf(buf []complex128, n int) []complex128 {
	if cap(buf) < n {
		metWorkspaceGrow.Inc()
		return make([]complex128, n)
	}
	return buf[:n]
}
