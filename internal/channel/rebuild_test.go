package channel

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

// fullCfg is testCfg with every stochastic subsystem on: noise (colored),
// fading, leakage — the configuration where RNG-stream equivalence between
// Rebuild and a fresh New actually matters.
func fullCfg() Config {
	cfg := testCfg()
	cfg.DisableNoise = false
	cfg.DisableFading = false
	cfg.ColoredNoise = true
	cfg.SelfInterferenceDB = -30
	return cfg
}

// TestRebuildMatchesFreshLink pins the Rebuild contract: across 100 swayed
// rounds, a link rebuilt in place must produce bit-identical taps and
// bit-identical round-trip waveforms (same RNG stream: noise, fading) to a
// link constructed from scratch for the same geometry and seed.
func TestRebuildMatchesFreshLink(t *testing.T) {
	cfg := fullCfg()
	reused, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sway := rand.New(rand.NewSource(42))
	tx := make([]complex128, 600)
	gamma := make([]complex128, 600)
	for i := range tx {
		tx[i] = complex(1e8, 0)
		gamma[i] = complex(0.3*float64(i%2), 0)
	}
	dst := make([]complex128, len(tx))
	for round := 0; round < 100; round++ {
		g := Geometry{
			ReaderDepth: cfg.ReaderDepth + sway.NormFloat64()*0.05,
			NodeDepth:   cfg.NodeDepth + sway.NormFloat64()*0.05,
			Range:       cfg.Range + sway.NormFloat64()*0.05,
		}
		seed := cfg.Seed + int64(round) + 1
		if err := reused.Rebuild(g, seed); err != nil {
			t.Fatal(err)
		}
		fcfg := cfg
		fcfg.ReaderDepth, fcfg.NodeDepth, fcfg.Range = g.ReaderDepth, g.NodeDepth, g.Range
		fcfg.Seed = seed
		fresh, err := New(fcfg)
		if err != nil {
			t.Fatal(err)
		}

		rd, fd := reused.DownTaps(), fresh.DownTaps()
		if len(rd) != len(fd) {
			t.Fatalf("round %d: tap count %d != fresh %d", round, len(rd), len(fd))
		}
		for i := range rd {
			if rd[i] != fd[i] {
				t.Fatalf("round %d tap %d: rebuilt %+v != fresh %+v", round, i, rd[i], fd[i])
			}
		}

		got, err := reused.RoundTripInto(dst, tx, gamma, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		want, err := fresh.RoundTrip(tx, gamma, 0.01)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("round %d sample %d: rebuilt %v != fresh %v (RNG streams diverged)",
					round, i, got[i], want[i])
			}
		}
	}
}

func TestRebuildRejectsBadGeometry(t *testing.T) {
	l, err := New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	bad := []Geometry{
		{ReaderDepth: 2, NodeDepth: 2.5, Range: 0},
		{ReaderDepth: 0, NodeDepth: 2.5, Range: 50},
		{ReaderDepth: 2, NodeDepth: 100, Range: 50},
	}
	for i, g := range bad {
		if err := l.Rebuild(g, 7); err == nil {
			t.Errorf("geometry %d not rejected", i)
		}
	}
	// The link must remain usable after a rejected rebuild.
	if _, err := l.RoundTrip(make([]complex128, 64), make([]complex128, 64), 1); err != nil {
		t.Fatalf("link unusable after rejected rebuild: %v", err)
	}
}

// TestIntoVariantsMatchAllocating verifies the *Into entry points compute
// exactly what their allocating counterparts do.
func TestIntoVariantsMatchAllocating(t *testing.T) {
	mk := func() *Link {
		l, err := New(fullCfg())
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	tx := make([]complex128, 512)
	gamma := make([]complex128, 512)
	for i := range tx {
		tx[i] = complex(1e8, 0)
		gamma[i] = complex(float64(i%2), 0)
	}

	a, b := mk(), mk()
	da := a.Downlink(tx)
	db := b.DownlinkInto(make([]complex128, len(tx)), tx)
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("Downlink mismatch at %d", i)
		}
	}
	ua := a.Uplink(da, tx)
	ub := b.UplinkInto(make([]complex128, len(db)), db, tx)
	for i := range ua {
		if ua[i] != ub[i] {
			t.Fatalf("Uplink mismatch at %d", i)
		}
	}
	ra, err := a.RoundTrip(tx, gamma, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := b.RoundTripInto(make([]complex128, len(tx)), tx, gamma, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("RoundTrip mismatch at %d", i)
		}
	}
}

// TestSteadyStateAllocs pins the allocation discipline: once warmed up,
// the per-round channel pipeline — geometry rebuild plus round trip with
// colored noise, fading and leakage — performs zero heap allocations.
func TestSteadyStateAllocs(t *testing.T) {
	l, err := New(fullCfg())
	if err != nil {
		t.Fatal(err)
	}
	tx := make([]complex128, 1024)
	gamma := make([]complex128, 1024)
	dst := make([]complex128, 1024)
	for i := range tx {
		tx[i] = complex(1e8, 0)
		gamma[i] = complex(float64(i%2), 0)
	}
	g := Geometry{ReaderDepth: 2.01, NodeDepth: 2.49, Range: 50.02}
	// Warm the workspace and tap storage.
	if err := l.Rebuild(g, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := l.RoundTripInto(dst, tx, gamma, 0.01); err != nil {
		t.Fatal(err)
	}

	if n := testing.AllocsPerRun(50, func() {
		if err := l.Rebuild(g, 6); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("Rebuild allocates %.1f times per call in steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		if _, err := l.RoundTripInto(dst, tx, gamma, 0.01); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("RoundTripInto allocates %.1f times per call in steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		l.DownlinkInto(dst, tx)
	}); n != 0 {
		t.Errorf("DownlinkInto allocates %.1f times per call in steady state, want 0", n)
	}
	if n := testing.AllocsPerRun(50, func() {
		l.UplinkInto(dst, tx, nil)
	}); n != 0 {
		t.Errorf("UplinkInto allocates %.1f times per call in steady state, want 0", n)
	}
}

// TestTDLFrequencyMatchesTime checks the overlap-save engine against the
// reference time-domain arithmetic: relative error must sit at numerical
// noise, far below the −120 dB acceptance bound.
func TestTDLFrequencyMatchesTime(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for _, nTaps := range []int{1, 4, 16, 64} {
		for _, n := range []int{100, 1000, 4096} {
			taps := make([]Tap, nTaps)
			for i := range taps {
				taps[i] = Tap{
					DelaySamples: 800 + rng.Float64()*300,
					Gain:         complex(rng.NormFloat64(), rng.NormFloat64()),
				}
			}
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			want := make([]complex128, n)
			NewTDL(taps, false).Apply(want, x)
			got := make([]complex128, n)
			ftdl := NewTDL(taps, true)
			ftdl.Apply(got, x)

			var errE, refE float64
			for i := range want {
				d := got[i] - want[i]
				errE += real(d)*real(d) + imag(d)*imag(d)
				refE += real(want[i])*real(want[i]) + imag(want[i])*imag(want[i])
			}
			if refE == 0 {
				t.Fatalf("taps=%d n=%d: degenerate reference", nTaps, n)
			}
			relDB := 10 * math.Log10(errE/refE)
			if !(relDB < -120) {
				t.Errorf("taps=%d n=%d: overlap-save error %.1f dB relative, want < -120 dB", nTaps, n, relDB)
			}

			// Steady state: the frequency engine must not allocate either.
			if a := testing.AllocsPerRun(10, func() { ftdl.Apply(got, x) }); a != 0 {
				t.Errorf("taps=%d n=%d: frequency TDL allocates %.1f per Apply", nTaps, n, a)
			}
		}
	}
}

// TestFrequencyDomainTDLConfig exercises the opt-in through the Link API.
func TestFrequencyDomainTDLConfig(t *testing.T) {
	cfg := testCfg()
	timeL, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.FrequencyDomainTDL = true
	freqL, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx := make([]complex128, 2000)
	for i := range tx {
		tx[i] = complex(1e8, 0)
	}
	a := timeL.Downlink(tx)
	b := freqL.Downlink(tx)
	var errE, refE float64
	for i := range a {
		d := b[i] - a[i]
		errE += real(d)*real(d) + imag(d)*imag(d)
		refE += real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
	}
	if relDB := 10 * math.Log10(errE/refE); !(relDB < -120) {
		t.Errorf("frequency-domain downlink differs by %.1f dB relative, want < -120 dB", relDB)
	}
}

// TestWenzShaperCache verifies the cached design equals a direct design
// and that per-link filters do not share mutable state.
func TestWenzShaperCache(t *testing.T) {
	cfg := testCfg()
	cfg.DisableNoise = false
	cfg.ColoredNoise = true
	direct, err := wenzShaper(cfg.Env, cfg.CarrierHz, cfg.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := wenzShaperTaps(cfg.Env, cfg.CarrierHz, cfg.SampleRate)
	if err != nil {
		t.Fatal(err)
	}
	dt := direct.Taps()
	if len(dt) != len(cached) {
		t.Fatalf("tap count %d != %d", len(cached), len(dt))
	}
	for i := range dt {
		if dt[i] != cached[i] {
			t.Fatalf("cached tap %d = %v, direct %v", i, cached[i], dt[i])
		}
	}
	// Two links over the same environment share the design but not the
	// filter: running one's shaper must not perturb the other's stream.
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.shaper == b.shaper {
		t.Fatal("links share one CFIR instance (mutable state aliasing)")
	}
	ya := a.Uplink(make([]complex128, 256), nil)
	yb := b.Uplink(make([]complex128, 256), nil)
	for i := range ya {
		if ya[i] != yb[i] {
			t.Fatalf("equal-seed links diverged at %d: %v != %v", i, ya[i], yb[i])
		}
	}
	if cmplx.Abs(ya[40]) == 0 {
		t.Fatal("shaped noise came out zero")
	}
}
