package channel

import (
	"math"
	"math/cmplx"
	"testing"

	"vab/internal/dsp"
	"vab/internal/ocean"
)

func testCfg() Config {
	return Config{
		Env:           ocean.CharlesRiver(),
		CarrierHz:     18.5e3,
		SampleRate:    16e3,
		ReaderDepth:   2,
		NodeDepth:     2.5,
		Range:         50,
		DisableNoise:  true,
		DisableFading: true,
		Seed:          1,
	}
}

func TestNewValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Env = nil },
		func(c *Config) { c.CarrierHz = 0 },
		func(c *Config) { c.SampleRate = -1 },
		func(c *Config) { c.Range = 0 },
		func(c *Config) { c.ReaderDepth = 0 },
		func(c *Config) { c.NodeDepth = 100 }, // below the bottom
		func(c *Config) { c.Env = &ocean.Environment{} },
	}
	for i, mutate := range bad {
		cfg := testCfg()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestTapsReciprocity(t *testing.T) {
	l, err := New(testCfg())
	if err != nil {
		t.Fatal(err)
	}
	down, up := l.DownTaps(), l.UpTaps()
	if len(down) == 0 || len(down) != len(up) {
		t.Fatalf("tap counts: down %d up %d", len(down), len(up))
	}
	// Reciprocal geometry: same delays and gain magnitudes.
	for i := range down {
		if math.Abs(down[i].DelaySamples-up[i].DelaySamples) > 1e-6 {
			t.Errorf("tap %d delay asymmetric", i)
		}
		if math.Abs(cmplx.Abs(down[i].Gain)-cmplx.Abs(up[i].Gain)) > 1e-12 {
			t.Errorf("tap %d gain asymmetric", i)
		}
	}
}

func TestDownlinkScalesWithRange(t *testing.T) {
	// A single-frequency envelope is at the mercy of multipath interference
	// at any one range, so compare the incoherent tap power, which must
	// track the k·10·log10(r) + α·r transmission-loss trend.
	near := testCfg()
	far := testCfg()
	far.Range = 400
	ln, _ := New(near)
	lf, _ := New(far)
	pwr := func(taps []Tap) float64 {
		var p float64
		for _, tp := range taps {
			p += real(tp.Gain)*real(tp.Gain) + imag(tp.Gain)*imag(tp.Gain)
		}
		return p
	}
	pn := pwr(ln.DownTaps())
	pf := pwr(lf.DownTaps())
	if pf >= pn {
		t.Fatalf("far power %v should be below near power %v", pf, pn)
	}
	// Spreading alone predicts 1.5·10·log10(400/50) ≈ 13.5 dB; boundary
	// losses at the extra bounces add a few more dB.
	dropDB := 10 * math.Log10(pn/pf)
	if dropDB < 8 || dropDB > 30 {
		t.Errorf("range 50→400 m drop = %v dB, want roughly 13-20", dropDB)
	}
}

func TestUplinkAddsNoise(t *testing.T) {
	cfg := testCfg()
	cfg.DisableNoise = false
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.NoiseAmplitude() <= 0 {
		t.Fatal("noise amplitude should be positive")
	}
	silent := make([]complex128, 4096)
	y := l.Uplink(silent, nil)
	p := dsp.Power(y)
	want := l.NoiseAmplitude() * l.NoiseAmplitude()
	if math.Abs(p-want)/want > 0.1 {
		t.Errorf("noise power %v, want %v", p, want)
	}
}

func TestSelfInterferenceLeak(t *testing.T) {
	cfg := testCfg()
	cfg.SelfInterferenceDB = -20
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tx := make([]complex128, 1024)
	for i := range tx {
		tx[i] = complex(1e6, 0) // 120 dB source
	}
	y := l.Uplink(make([]complex128, 1024), tx)
	// Leak should dominate: 1e6 · 10^(−20/20) = 1e5 amplitude.
	if m := cmplx.Abs(y[100]); math.Abs(m-1e5) > 1 {
		t.Errorf("leak amplitude %v, want 1e5", m)
	}
	// Without the tx reference no leak is injected.
	y2 := l.Uplink(make([]complex128, 1024), nil)
	if cmplx.Abs(y2[100]) != 0 {
		t.Error("leak injected without tx reference")
	}
}

func TestRoundTripLengthAndErrors(t *testing.T) {
	l, _ := New(testCfg())
	tx := make([]complex128, 256)
	gamma := make([]complex128, 256)
	for i := range tx {
		tx[i] = 1
		gamma[i] = 1
	}
	y, err := l.RoundTrip(tx, gamma, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) != len(tx) {
		t.Errorf("round trip length %d, want %d", len(y), len(tx))
	}
	if _, err := l.RoundTrip(tx, gamma[:100], 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestRoundTripGainMatchesTLBudget(t *testing.T) {
	// The coherent round-trip gain should track −2·TL(r) within the
	// multipath interference margin.
	cfg := testCfg()
	l, _ := New(cfg)
	got := l.RoundTripGainDB()
	tl := cfg.Env.TransmissionLoss(cfg.CarrierHz, cfg.Range)
	want := -2 * tl
	if math.Abs(got-want) > 12 {
		t.Errorf("round-trip gain %v dB, budget %v dB", got, want)
	}
}

func TestRoundTripModulationTransfersToSidebands(t *testing.T) {
	// Toggling gamma at f_sub must move round-trip energy to the ±f_sub
	// sidebands at the reader.
	cfg := testCfg()
	l, _ := New(cfg)
	n := 4096
	fs := cfg.SampleRate
	fsub := 1000.0
	tx := make([]complex128, n)
	gamma := make([]complex128, n)
	for i := range tx {
		tx[i] = 1
		// Square-wave reflection toggle between 0 and 1.
		if math.Sin(2*math.Pi*fsub*float64(i)/fs) >= 0 {
			gamma[i] = 1
		}
	}
	y, err := l.RoundTrip(tx, gamma, 1)
	if err != nil {
		t.Fatal(err)
	}
	gSub := dsp.NewGoertzel(fsub, fs)
	gOff := dsp.NewGoertzel(fsub*1.37, fs)
	tail := y[n/2:]
	eSub := gSub.Energy(tail)
	eOff := gOff.Energy(tail)
	if eSub < 100*eOff {
		t.Errorf("subcarrier energy %v should dominate off-tone %v", eSub, eOff)
	}
}

func TestInjectBurst(t *testing.T) {
	cfg := testCfg()
	cfg.DisableNoise = false
	l, _ := New(cfg)
	y := make([]complex128, 1000)
	l.InjectBurst(y, 100, 50, 30)
	var inBurst, outBurst float64
	for i := 100; i < 150; i++ {
		inBurst += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
	}
	for i := 200; i < 250; i++ {
		outBurst += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
	}
	if inBurst <= 100*outBurst {
		t.Errorf("burst energy %v not localized (elsewhere %v)", inBurst, outBurst)
	}
	// Clipping at slice bounds must not panic.
	l.InjectBurst(y, 990, 50, 10)
	l.InjectBurst(y, -10, 20, 10)
}

// InjectBurst clamps every window against the slice bounds and reports how
// many samples it actually perturbed; degenerate requests touch nothing.
func TestInjectBurstBounds(t *testing.T) {
	cfg := testCfg()
	cfg.DisableNoise = false
	l, _ := New(cfg)
	y := make([]complex128, 1000)

	cases := []struct {
		name     string
		start, n int
		want     int
	}{
		{"in-bounds", 100, 50, 50},
		{"tail-clip", 990, 50, 10},
		{"head-clip", -10, 30, 20},
		{"entirely-before", -50, 20, 0},
		{"entirely-after", 1000, 20, 0},
		{"far-after", 5000, 20, 0},
		{"zero-len", 100, 0, 0},
		{"negative-len", 100, -5, 0},
		{"covers-all", -100, 5000, 1000},
	}
	for _, tc := range cases {
		if got := l.InjectBurst(y, tc.start, tc.n, 20); got != tc.want {
			t.Errorf("%s: InjectBurst(start=%d, n=%d) perturbed %d samples, want %d",
				tc.name, tc.start, tc.n, got, tc.want)
		}
	}

	// A fully out-of-bounds burst must leave the waveform untouched.
	z := make([]complex128, 16)
	l.InjectBurst(z, -100, 50, 40)
	l.InjectBurst(z, 16, 50, 40)
	l.InjectBurst(z, 4, -1, 40)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("sample %d perturbed by out-of-bounds burst: %v", i, v)
		}
	}
}

func TestFadingVariesUplink(t *testing.T) {
	cfg := testCfg()
	cfg.Env = ocean.AtlanticCoastal()
	cfg.Env.SurfaceSpeed = 1.0 // exaggerate motion
	cfg.ReaderDepth, cfg.NodeDepth = 5, 6
	cfg.DisableFading = false
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]complex128, 8000)
	for i := range x {
		x[i] = 1
	}
	y := l.Uplink(x, nil)
	// The envelope should wander: compare power over two halves.
	tail := y[2000:]
	mags := make([]float64, len(tail))
	for i, v := range tail {
		mags[i] = cmplx.Abs(v)
	}
	if dsp.StdDev(mags) < 0.01*dsp.Mean(mags) {
		t.Error("fading produced an essentially static envelope")
	}
}

func TestApplyTDLRemovesBulkDelay(t *testing.T) {
	taps := []Tap{{DelaySamples: 1000, Gain: 1}}
	x := []complex128{1, 2, 3, 4}
	y := applyTDL(x, taps)
	if y[0] != 1 || y[3] != 4 {
		t.Errorf("bulk delay not removed: %v", y)
	}
	if out := applyTDL(x, nil); len(out) != len(x) {
		t.Error("empty taps should give zero output of same length")
	}
}

// applyTDL is the historical allocating helper, kept in the tests as a
// thin shim over the in-place engine the package now uses.
func applyTDL(x []complex128, taps []Tap) []complex128 {
	out := make([]complex128, len(x))
	applyTDLInto(out, x, taps)
	return out
}

func TestApplyTDLRelativeDelays(t *testing.T) {
	taps := []Tap{
		{DelaySamples: 10, Gain: 1},
		{DelaySamples: 12.4, Gain: complex(0.5, 0)}, // rounds to +2
	}
	x := []complex128{1, 0, 0, 0, 0}
	y := applyTDL(x, taps)
	want := []complex128{1, 0, 0.5, 0, 0}
	for i := range want {
		if !cEq(y[i], want[i]) {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func cEq(a, b complex128) bool { return cmplx.Abs(a-b) < 1e-12 }

func TestRoundTripAbsolutePreservesDelay(t *testing.T) {
	cfg := testCfg()
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := 2048
	tx := make([]complex128, n)
	gamma := make([]complex128, n)
	for i := range tx {
		tx[i] = 1
		if i >= 256 && math.Sin(2*math.Pi*1000*float64(i)/cfg.SampleRate) >= 0 {
			gamma[i] = 1
		}
	}
	y, err := l.RoundTripAbsolute(tx, gamma, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(y) <= n {
		t.Fatalf("absolute capture %d should exceed input %d", len(y), n)
	}
	// The modulated energy must appear only after the round-trip bulk
	// delay plus the gamma offset.
	bulk := int(l.BulkDelaySeconds() * cfg.SampleRate)
	if bulk <= 0 {
		t.Fatal("bulk delay should be positive")
	}
	var early, late float64
	for i := 0; i < bulk+200; i++ {
		early += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
	}
	for i := bulk + 256; i < bulk+256+1024 && i < len(y); i++ {
		late += real(y[i])*real(y[i]) + imag(y[i])*imag(y[i])
	}
	if late < 100*early {
		t.Errorf("energy not delayed: early %v late %v (bulk %d)", early, late, bulk)
	}
	// Expected bulk delay ≈ 2·range/c.
	want := 2 * cfg.Range / cfg.Env.MeanSoundSpeed()
	if math.Abs(l.BulkDelaySeconds()-want) > 0.001 {
		t.Errorf("bulk delay %v s, want ~%v", l.BulkDelaySeconds(), want)
	}
}

func TestRoundTripAbsoluteErrors(t *testing.T) {
	l, _ := New(testCfg())
	if _, err := l.RoundTripAbsolute(make([]complex128, 4), make([]complex128, 3), 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestColoredNoiseFollowsWenzSlope(t *testing.T) {
	cfg := testCfg()
	cfg.DisableNoise = false
	cfg.ColoredNoise = true
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	y := l.Uplink(make([]complex128, 1<<16), nil)
	// Wenz falls with frequency: the bin at -6 kHz baseband (12.5 kHz
	// absolute) must carry more noise than the bin at +6 kHz (24.5 kHz).
	gLow := dsp.NewGoertzel(-6000, cfg.SampleRate)
	gHigh := dsp.NewGoertzel(6000, cfg.SampleRate)
	var lo, hi float64
	block := 1024
	for off := 1024; off+block <= len(y); off += block {
		lo += gLow.Energy(y[off : off+block])
		hi += gHigh.Energy(y[off : off+block])
	}
	wantRatio := math.Pow(10, (cfg.Env.NoisePSD(12.5e3)-cfg.Env.NoisePSD(24.5e3))/10)
	got := lo / hi
	if got < wantRatio/2 || got > wantRatio*2 {
		t.Errorf("colored-noise band ratio %v, Wenz predicts %v", got, wantRatio)
	}
	// Total power stays calibrated to the white-noise level.
	if p := dsp.Power(y[1024:]); math.Abs(p-l.NoiseAmplitude()*l.NoiseAmplitude()) > 0.25*l.NoiseAmplitude()*l.NoiseAmplitude() {
		t.Errorf("colored noise power %v, want ~%v", p, l.NoiseAmplitude()*l.NoiseAmplitude())
	}
}
