package channel

import (
	"math"

	"vab/internal/dsp"
)

// TDL applies a tapped delay line with the common bulk delay removed (the
// relative-delay convolution Downlink and Uplink use). Two engines are
// available:
//
//   - Time domain (the default): one dsp.MixInto pass per tap, in tap
//     order. This is the reference arithmetic — seeded simulations are
//     byte-identical to the historical applyTDL loop.
//   - Frequency domain (opt-in): overlap-save block convolution against
//     the FFT of the dense tap kernel, reusing the dsp plan cache. Cost is
//     O(n log L) independent of tap count instead of O(n·taps), so it wins
//     once the delay line carries more than a few dozen taps (see
//     BenchmarkTDLTime/BenchmarkTDLFreq for the measured crossover), but
//     FFT rounding means results match the time engine only to ~1e-13
//     relative error, not bit-exactly — which is why channel.Config keeps
//     it opt-in.
//
// A TDL is not safe for concurrent use (the frequency engine owns scratch
// buffers). Rebuild reuses all storage, so steady-state rebuilds are
// allocation-free.
type TDL struct {
	taps []Tap
	freq bool

	// Overlap-save state (frequency engine only).
	kernelLen int          // L: dense kernel length, maxOffset+1
	fftSize   int          // M: block transform size (power of two)
	spec      []complex128 // FFT of the zero-padded kernel, length M
	seg       []complex128 // gather/transform segment, length M
}

// NewTDL builds a delay line over the given taps (the slice is referenced,
// not copied; Rebuild after mutating it). frequencyDomain selects the
// overlap-save engine.
func NewTDL(taps []Tap, frequencyDomain bool) *TDL {
	t := &TDL{freq: frequencyDomain}
	t.Rebuild(taps)
	return t
}

// Rebuild points the delay line at a new tap set, recomputing the kernel
// spectrum when the frequency engine is active. All storage is reused: a
// steady-state caller that sways its geometry every round allocates
// nothing here once buffers have grown to their working size.
func (t *TDL) Rebuild(taps []Tap) {
	t.taps = taps
	if !t.freq {
		return
	}
	if len(taps) == 0 {
		t.kernelLen = 0
		return
	}
	base := math.Inf(1)
	for _, tp := range taps {
		if tp.DelaySamples < base {
			base = tp.DelaySamples
		}
	}
	maxOff := 0
	for _, tp := range taps {
		if off := int(math.Round(tp.DelaySamples - base)); off > maxOff {
			maxOff = off
		}
	}
	t.kernelLen = maxOff + 1
	// Block size: a few kernel lengths per transform amortizes the L-1
	// overlap; 256 floors tiny kernels so the FFT stays efficient.
	m := dsp.NextPow2(4 * t.kernelLen)
	if m < 256 {
		m = 256
	}
	t.fftSize = m
	t.spec = growBuf(t.spec, m)
	for i := range t.spec {
		t.spec[i] = 0
	}
	for _, tp := range taps {
		t.spec[int(math.Round(tp.DelaySamples-base))] += tp.Gain
	}
	dsp.FFTInto(t.spec, t.spec)
}

// Apply convolves x with the delay line into dst. dst and x must have equal
// length and must not alias (the gather reads x while dst fills).
func (t *TDL) Apply(dst, x []complex128) {
	if len(dst) != len(x) {
		panic("channel: TDL Apply length mismatch")
	}
	if !t.freq {
		applyTDLInto(dst, x, t.taps)
		return
	}
	if t.kernelLen == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	l, m := t.kernelLen, t.fftSize
	block := m - l + 1
	t.seg = growBuf(t.seg, m)
	seg := t.seg
	n := len(x)
	for pos := 0; pos < n; pos += block {
		// Gather x[pos-(L-1) … pos-(L-1)+M) with zeros outside the signal:
		// overlap-save discards the first L-1 circularly-wrapped outputs.
		lo := pos - (l - 1)
		for i := range seg {
			seg[i] = 0
		}
		from, at := lo, 0
		if from < 0 {
			at = -from
			from = 0
		}
		if from < n {
			copy(seg[at:], x[from:min(n, lo+m)])
		}
		dsp.FFTInto(seg, seg)
		for i := range seg {
			seg[i] *= t.spec[i]
		}
		dsp.IFFTInto(seg, seg)
		b := block
		if pos+b > n {
			b = n - pos
		}
		copy(dst[pos:pos+b], seg[l-1:l-1+b])
	}
}

// applyTDLInto is the reference time-domain engine: zero dst, then one
// mix-accumulate pass per tap in tap order, delays rounded to whole samples
// relative to the earliest tap. This is the arithmetic seeded experiments
// pin bit-exactly; any alternative engine must be validated against it.
func applyTDLInto(dst, x []complex128, taps []Tap) {
	if len(dst) != len(x) {
		panic("channel: applyTDLInto length mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	if len(taps) == 0 {
		return
	}
	base := math.Inf(1)
	for _, t := range taps {
		if t.DelaySamples < base {
			base = t.DelaySamples
		}
	}
	for _, t := range taps {
		off := int(math.Round(t.DelaySamples - base))
		dsp.MixInto(dst, x, off, t.Gain)
	}
}
