package faults

import "math"

// Severity-mapping constants: the full-intensity canonical value of each
// fault class (the preset constructors' intensity-1 parameters). A plan
// whose components sit at these values maps to severity 1 for that class.
// They are deliberately the same numbers scenario.go's presets use, so
// Plan(r) of a preset scenario at intensity i maps back to a severity ≈ i
// — the round trip the severity tests pin.
const (
	severityShadowFullDB    = 6.0  // "shadowing" preset peak one-way dB
	severityDeadFracFull    = 0.5  // "elements" preset dead fraction
	severityClockFullPPM    = 1250 // "clockstep" preset oscillator step
	severityBurstsFullCount = 6.0  // "shrimp" preset mean bursts/round
)

// Per-class weights of the composite severity. They sum to 1 so the
// all-classes-at-canonical-full plan maps to severity 1 (the calibration
// table's intensity axis is calibrated against exactly that composite —
// the "chaos" scenario). Brownout is weighted highest: a collapsed supply
// rail kills the round outright, where the analog impairments only erode
// SNR.
const (
	severityWShadow   = 0.20
	severityWElements = 0.20
	severityWClock    = 0.20
	severityWBursts   = 0.15
	severityWBrownout = 0.25
)

// ModelSeverity maps one round's injection plan onto the scalar
// fault-intensity axis of the link-abstraction tier's calibration table
// (internal/linksim): each fault class contributes its fraction of the
// canonical full-intensity impairment, weighted and clamped to [0, 1].
//
// The mapping is deliberately lossy — a statistical link model cannot
// replay an individual shrimp burst — but it is *calibrated*: the table's
// intensity axis is measured against the waveform tier running the same
// composite scenario, so a plan that maps to severity s selects link
// statistics measured under impairment of that magnitude. Hero-link
// cross-checks (linksim's divergence telemetry) police the residual error
// online.
func ModelSeverity(p RoundPlan) float64 {
	if p.Empty() {
		return 0
	}
	frac := func(v, full float64) float64 {
		if full <= 0 {
			return 0
		}
		f := v / full
		if f < 0 {
			f = 0
		}
		if f > 1 {
			f = 1
		}
		return f
	}
	s := severityWShadow*frac(p.ShadowDB, severityShadowFullDB) +
		severityWElements*frac(p.DeadFrac, severityDeadFracFull) +
		severityWClock*frac(math.Abs(p.ClockPPMDelta), severityClockFullPPM) +
		severityWBursts*frac(float64(len(p.Bursts)), severityBurstsFullCount)
	if p.Brownout {
		s += severityWBrownout
	}
	if s > 1 {
		s = 1
	}
	return s
}

// MeanModelSeverity averages ModelSeverity over the engine's plans for
// rounds [start, start+n): the per-cycle severity estimate the abstract
// tier uses when one cycle spans several waveform rounds. A nil engine or
// non-positive n maps to 0.
func (e *Engine) MeanModelSeverity(start, n int) float64 {
	if e == nil || n <= 0 {
		return 0
	}
	var sum float64
	for r := start; r < start+n; r++ {
		plan := e.Plan(r)
		sum += ModelSeverity(plan)
	}
	return sum / float64(n)
}
