// Package faults is the deterministic fault-injection engine for the VAB
// stack: it turns a Scenario — a list of typed faults with activation
// windows — into per-round injection plans that the waveform-level system
// applies to its channel, array, node and PHY models.
//
// The paper's headline claim (>1,500 field trials across river and ocean)
// was earned against a hostile medium: snapping-shrimp impulse trains,
// bubble-cloud shadowing, element failures and node brownouts, none of
// which a clean-channel simulation exercises. This package reproduces that
// hostility on demand, and reproducibly: every draw is a pure function of
// (scenario seed, fault index, round index), so the plan for round r is
// identical no matter how many times it is computed, in what order, or on
// how many goroutines. Two runs with the same scenario seed are
// byte-identical; a run with no scenario attached is byte-identical to a
// run before this package existed, because an absent engine touches no RNG
// stream anywhere in the stack.
package faults

import (
	"fmt"
	"math"
	"math/rand"
)

// Type enumerates the fault classes the engine injects.
type Type int

// Fault classes, in the order the engine applies them within a round.
const (
	// Impulse layers snapping-shrimp-style noise bursts on the reader's
	// capture (Poisson arrivals within the round, high power, short).
	Impulse Type = iota
	// Shadowing applies time-varying excess attenuation to the link
	// budget: a bubble cloud or vessel wake drifting through the path.
	Shadowing
	// ElementFailure kills Van Atta elements (flooded transducer, broken
	// interconnect), degrading the retrodirective conversion gain.
	ElementFailure
	// Brownout collapses the node's supply rail for the round: the
	// harvester reservoir is forcibly depleted mid-burst.
	Brownout
	// ClockStep steps the node oscillator's frequency error while active:
	// a temperature transient walking an RC oscillator off nominal.
	ClockStep

	numTypes
)

// String names the fault type.
func (t Type) String() string {
	switch t {
	case Impulse:
		return "impulse"
	case Shadowing:
		return "shadowing"
	case ElementFailure:
		return "element"
	case Brownout:
		return "brownout"
	case ClockStep:
		return "clockstep"
	default:
		return fmt.Sprintf("type(%d)", int(t))
	}
}

// Fault is one scheduled impairment. StartRound/EndRound bound the
// activation window [StartRound, EndRound); EndRound 0 means "until the
// end of the run". Intensity in [0, 1] scales the type-specific severity
// fields, which carry canonical full-intensity values (see the preset
// constructors in scenario.go).
type Fault struct {
	Type       Type
	StartRound int
	EndRound   int
	Intensity  float64

	// Impulse parameters.
	RatePerRound float64 // mean Poisson bursts per round at Intensity 1
	PowerDB      float64 // burst power above the ambient floor, dB
	BurstLenSec  float64 // single burst duration, s

	// Shadowing parameters.
	AttenDB      float64 // peak one-way excess attenuation at Intensity 1, dB
	PeriodRounds int     // mean rounds between cloud passages

	// ElementFailure parameters.
	DeadFrac float64 // fraction of array elements dead at Intensity 1

	// Brownout parameters.
	OutageProb float64 // per-round probability of a supply collapse

	// ClockStep parameters.
	StepPPM float64 // oscillator error added while active, ppm
}

// active reports whether the fault's window covers round r.
func (f *Fault) active(r int) bool {
	return r >= f.StartRound && (f.EndRound == 0 || r < f.EndRound)
}

// Validate reports structurally impossible faults.
func (f *Fault) Validate() error {
	if f.Type < 0 || f.Type >= numTypes {
		return fmt.Errorf("faults: unknown fault type %d", int(f.Type))
	}
	if f.Intensity < 0 || f.Intensity > 1 {
		return fmt.Errorf("faults: intensity %.3g outside [0, 1]", f.Intensity)
	}
	if f.StartRound < 0 {
		return fmt.Errorf("faults: negative start round %d", f.StartRound)
	}
	if f.EndRound != 0 && f.EndRound <= f.StartRound {
		return fmt.Errorf("faults: empty window [%d, %d)", f.StartRound, f.EndRound)
	}
	if f.DeadFrac < 0 || f.DeadFrac > 1 {
		return fmt.Errorf("faults: dead fraction %.3g outside [0, 1]", f.DeadFrac)
	}
	if f.OutageProb < 0 || f.OutageProb > 1 {
		return fmt.Errorf("faults: outage probability %.3g outside [0, 1]", f.OutageProb)
	}
	return nil
}

// Scenario is a named, seeded fault schedule. The zero value (no faults)
// is valid and injects nothing.
type Scenario struct {
	Name   string
	Seed   int64
	Faults []Fault
}

// Validate checks every fault in the schedule.
func (sc *Scenario) Validate() error {
	for i := range sc.Faults {
		if err := sc.Faults[i].Validate(); err != nil {
			return fmt.Errorf("faults: scenario %q fault %d: %w", sc.Name, i, err)
		}
	}
	return nil
}

// Burst is one impulsive-noise event within a round's capture window.
type Burst struct {
	StartFrac float64 // burst start as a fraction of the capture length [0, 1)
	LenSec    float64 // burst duration, s
	PowerDB   float64 // power above the ambient floor, dB
}

// RoundPlan is everything the engine wants injected into one round. The
// zero value injects nothing.
type RoundPlan struct {
	Round int

	Bursts []Burst // impulsive noise on the capture

	// ShadowDB is the one-way excess attenuation this round (applied twice
	// on the round trip).
	ShadowDB float64

	// DeadFrac is the fraction of array elements currently dead; FailSeed
	// picks which ones, deterministically.
	DeadFrac float64
	FailSeed int64

	// Brownout forces a supply collapse before the node hears the query.
	Brownout bool

	// ClockPPMDelta is added to the node oscillator's nominal error.
	ClockPPMDelta float64
}

// Empty reports whether the plan injects nothing.
func (p *RoundPlan) Empty() bool {
	return len(p.Bursts) == 0 && p.ShadowDB == 0 && p.DeadFrac == 0 &&
		!p.Brownout && p.ClockPPMDelta == 0
}

// Engine evaluates a Scenario round by round. It is stateless apart from
// the (optional) metrics handles: Plan is a pure function of the round
// index, so one engine may serve concurrent systems.
type Engine struct {
	sc  Scenario
	met engineMetrics
}

// NewEngine validates the scenario and builds an engine for it.
func NewEngine(sc Scenario) (*Engine, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	return &Engine{sc: sc}, nil
}

// Scenario returns the engine's schedule.
func (e *Engine) Scenario() Scenario { return e.sc }

// splitmix64 is the avalanche mixer behind the engine's determinism: every
// random draw's seed is splitmix64(scenario seed, fault index, round),
// making plans order- and history-independent.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// drawSeed derives the RNG seed for (fault index, round).
func (e *Engine) drawSeed(fault, round int) int64 {
	h := splitmix64(uint64(e.sc.Seed))
	h = splitmix64(h ^ uint64(fault)*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ uint64(round))
	return int64(h >> 1) // keep it non-negative for rand.NewSource
}

// poisson draws k ~ Poisson(lambda) by Knuth's product method; fine for the
// single-digit rates the impulse faults use.
func poisson(lambda float64, rng *rand.Rand) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// Plan computes the injection plan for one round. Nil engines plan
// nothing, so an unfaulted system carries the hook for free.
func (e *Engine) Plan(round int) RoundPlan {
	plan := RoundPlan{Round: round}
	if e == nil {
		return plan
	}
	for i := range e.sc.Faults {
		f := &e.sc.Faults[i]
		if !f.active(round) || f.Intensity == 0 {
			continue
		}
		switch f.Type {
		case Impulse:
			rng := rand.New(rand.NewSource(e.drawSeed(i, round)))
			n := poisson(f.RatePerRound*f.Intensity, rng)
			for b := 0; b < n; b++ {
				plan.Bursts = append(plan.Bursts, Burst{
					StartFrac: rng.Float64(),
					LenSec:    f.BurstLenSec * (0.5 + rng.Float64()),
					PowerDB:   f.PowerDB + 6*(rng.Float64()-0.5),
				})
			}
			if n > 0 {
				e.met.injections[Impulse].Add(int64(n))
			}
		case Shadowing:
			if db := e.shadowDB(i, f, round); db > 0 {
				if plan.ShadowDB < db {
					plan.ShadowDB = db
				}
				e.met.injections[Shadowing].Inc()
			}
		case ElementFailure:
			frac := f.DeadFrac * f.Intensity
			if frac > plan.DeadFrac {
				plan.DeadFrac = frac
				// Seed the element pick from the window start, not the
				// round: the same elements stay dead for the whole window,
				// as real flooded transducers do.
				plan.FailSeed = e.drawSeed(i, f.StartRound)
			}
			e.met.injections[ElementFailure].Inc()
		case Brownout:
			rng := rand.New(rand.NewSource(e.drawSeed(i, round)))
			if rng.Float64() < f.OutageProb*f.Intensity {
				plan.Brownout = true
				e.met.injections[Brownout].Inc()
			}
		case ClockStep:
			plan.ClockPPMDelta += f.StepPPM * f.Intensity
			e.met.injections[ClockStep].Inc()
		}
	}
	return plan
}

// shadowDB evaluates the bubble-cloud attenuation profile at round r: each
// period of PeriodRounds rounds independently hosts (or not) one cloud
// passage with a Gaussian-in-time profile. Contributions from the previous
// and next periods are summed so profiles straddle period boundaries
// smoothly; the result stays a pure function of (fault, round).
func (e *Engine) shadowDB(idx int, f *Fault, round int) float64 {
	period := f.PeriodRounds
	if period < 1 {
		period = 1
	}
	k := round / period
	var db float64
	for _, kk := range [3]int{k - 1, k, k + 1} {
		if kk < 0 {
			continue
		}
		// One draw stream per (fault, period): presence, center and width
		// of that period's cloud.
		rng := rand.New(rand.NewSource(e.drawSeed(idx, -1000000-kk)))
		if rng.Float64() > 0.35+0.45*f.Intensity {
			continue // no cloud crossed the path this period
		}
		center := float64(kk*period) + rng.Float64()*float64(period)
		width := (0.1 + 0.2*rng.Float64()) * float64(period)
		peak := f.AttenDB * f.Intensity * (0.6 + 0.4*rng.Float64())
		d := (float64(round) - center) / width
		db += peak * math.Exp(-0.5*d*d)
	}
	return db
}

// PickElements deterministically selects k distinct element indices out of
// n using the plan's fail seed: the helper the array-fault applier uses so
// the same elements die for the whole activation window.
func PickElements(n, k int, seed int64) []int {
	if k <= 0 || n <= 0 {
		return nil
	}
	if k > n {
		k = n
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	out := append([]int(nil), perm[:k]...)
	return out
}
