package netfaults

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

// heavy is a profile with every class hot, for schedule tests. Timing
// magnitudes are zero so tests never sleep.
func heavy() Profile {
	return Profile{
		Name: "heavy", DropPerOp: 0.1, StallPerOp: 0.2,
		PartialPerOp: 0.15, CorruptPerOp: 0.3,
	}
}

// TestPlanPure: the plan for (conn, op, dir) must not depend on call
// order, history, or concurrency — the property the whole package exists
// to provide.
func TestPlanPure(t *testing.T) {
	eng, err := NewEngine(42, heavy())
	if err != nil {
		t.Fatal(err)
	}
	type key struct {
		conn, op uint64
		dir      uint64
	}
	want := map[key]opPlan{}
	for conn := uint64(0); conn < 4; conn++ {
		for op := uint64(0); op < 64; op++ {
			for _, dir := range []uint64{dirRead, dirWrite} {
				want[key{conn, op, dir}] = eng.plan(conn, op, dir)
			}
		}
	}
	// Re-plan everything concurrently, in reverse, on a second engine with
	// the same seed: every plan must match.
	eng2, _ := NewEngine(42, heavy())
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k, v := range want {
				if got := eng2.plan(k.conn, k.op, k.dir); got != v {
					t.Errorf("plan(%d,%d,%#x) diverged: %+v vs %+v", k.conn, k.op, k.dir, got, v)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestSeedAndConnChangeSchedule: different seeds and different conn
// indices must produce different schedules (statistically: at least one
// differing plan over a few hundred ops).
func TestSeedAndConnChangeSchedule(t *testing.T) {
	a, _ := NewEngine(1, heavy())
	b, _ := NewEngine(2, heavy())
	diff := 0
	for op := uint64(0); op < 256; op++ {
		if a.plan(0, op, dirRead) != b.plan(0, op, dirRead) {
			diff++
		}
		if a.plan(0, op, dirRead) != a.plan(1, op, dirRead) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seed and conn index do not perturb the schedule")
	}
}

// transfer pushes payload through a wrapped pipe and returns what the
// reader saw (concatenated) plus whether either side errored.
func transfer(t *testing.T, eng *Engine, connIdx uint64, payload []byte) []byte {
	t.Helper()
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	wrapped := eng.WrapIndexed(server, connIdx)

	done := make(chan []byte, 1)
	go func() {
		var got bytes.Buffer
		buf := make([]byte, 16)
		for {
			n, err := wrapped.Read(buf)
			got.Write(buf[:n])
			if err != nil {
				break
			}
		}
		done <- got.Bytes()
	}()
	for off := 0; off < len(payload); off += 16 {
		end := off + 16
		if end > len(payload) {
			end = len(payload)
		}
		client.SetWriteDeadline(time.Now().Add(2 * time.Second))
		if _, err := client.Write(payload[off:end]); err != nil {
			break
		}
	}
	client.Close()
	select {
	case got := <-done:
		return got
	case <-time.After(5 * time.Second):
		t.Fatal("transfer did not finish")
		return nil
	}
}

// TestReplayExactCorruption: the same seeded engine applied to the same
// byte stream yields the same received bytes, flips and all.
func TestReplayExactCorruption(t *testing.T) {
	prof := Profile{Name: "corrupt", CorruptPerOp: 0.5}
	payload := bytes.Repeat([]byte{0xA5, 0x5A, 0x0F, 0xF0}, 64)

	mk := func() []byte {
		eng, err := NewEngine(77, prof)
		if err != nil {
			t.Fatal(err)
		}
		return transfer(t, eng, 3, payload)
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Fatalf("two replays diverged:\n%x\n%x", a, b)
	}
	if bytes.Equal(a, payload) {
		t.Fatal("50% corruption left the stream untouched")
	}
}

// TestInjectedDrop: a certain-drop profile kills the first operation with
// ErrInjected and closes the underlying conn.
func TestInjectedDrop(t *testing.T) {
	eng, _ := NewEngine(1, Profile{Name: "drop", DropPerOp: 1})
	client, server := net.Pipe()
	defer client.Close()
	wrapped := eng.Wrap(server)
	if _, err := wrapped.Read(make([]byte, 1)); !errors.Is(err, ErrInjected) {
		t.Fatalf("read: %v, want ErrInjected", err)
	}
	// The underlying conn must be dead: the peer sees EOF/closed.
	client.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := client.Read(make([]byte, 1)); err == nil {
		t.Fatal("peer still readable after injected drop")
	}
	if eng.Stats().Drops == 0 {
		t.Fatal("drop not counted")
	}
}

// TestPartialWrite: a certain-partial profile delivers a strict prefix and
// errors, leaving the peer with a torn frame.
func TestPartialWrite(t *testing.T) {
	eng, _ := NewEngine(5, Profile{Name: "partial", PartialPerOp: 1})
	client, server := net.Pipe()
	defer client.Close()
	wrapped := eng.Wrap(server)

	got := make(chan int, 1)
	go func() {
		buf := make([]byte, 256)
		total := 0
		for {
			client.SetReadDeadline(time.Now().Add(2 * time.Second))
			n, err := client.Read(buf)
			total += n
			if err != nil {
				break
			}
		}
		got <- total
	}()
	payload := make([]byte, 100)
	n, err := wrapped.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write: %v, want ErrInjected", err)
	}
	if n <= 0 || n >= len(payload) {
		t.Fatalf("partial write wrote %d of %d, want a strict prefix", n, len(payload))
	}
	if total := <-got; total != n {
		t.Fatalf("peer received %d bytes, writer reported %d", total, n)
	}
}

// TestStallObserved: timing faults go through the engine's sleep hook and
// are capped, never lost.
func TestStallObserved(t *testing.T) {
	eng, _ := NewEngine(9, Profile{Name: "stall", StallPerOp: 1, StallMs: 50})
	var slept []time.Duration
	var mu sync.Mutex
	eng.sleep = func(d time.Duration) {
		mu.Lock()
		slept = append(slept, d)
		mu.Unlock()
	}
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()
	wrapped := eng.Wrap(server)
	go func() {
		client.Write([]byte{1})
	}()
	buf := make([]byte, 1)
	if _, err := wrapped.Read(buf); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(slept) != 1 || slept[0] != 50*time.Millisecond {
		t.Fatalf("slept %v, want one 50ms stall", slept)
	}
	if eng.Stats().Stalls == 0 {
		t.Fatal("stall not counted")
	}
}

// TestListenerAssignsIndices: accepted conns join the schedule in accept
// order with distinct indices.
func TestListenerAssignsIndices(t *testing.T) {
	eng, _ := NewEngine(3, Profile{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	wrapped := eng.Listen(ln)
	defer wrapped.Close()

	for want := uint64(0); want < 3; want++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		sc, err := wrapped.Accept()
		if err != nil {
			t.Fatal(err)
		}
		defer sc.Close()
		if got := sc.(*Conn).Index(); got != want {
			t.Fatalf("accept %d got index %d", want, got)
		}
	}
}

// TestParseAndScale: preset parsing mirrors faults.Parse semantics.
func TestParseAndScale(t *testing.T) {
	if p, err := Parse(""); err != nil || p != (Profile{Name: "none"}) {
		t.Fatalf("empty spec: %+v %v", p, err)
	}
	p, err := Parse("blips:0.5+lossy")
	if err != nil {
		t.Fatal(err)
	}
	if p.DropPerOp != 0.01 {
		t.Fatalf("blips:0.5 drop = %g, want 0.01", p.DropPerOp)
	}
	if p.CorruptPerOp != 0.01 || p.PartialPerOp != 0.005 {
		t.Fatalf("lossy merge wrong: %+v", p)
	}
	if _, err := Parse("krakens"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if _, err := Parse("blips:1.5"); err == nil {
		t.Fatal("out-of-range intensity accepted")
	}
	ch := Chaos(0)
	if ch.DropPerOp != 0 || ch.CorruptPerOp != 0 || ch.PartialPerOp != 0 || ch.StallPerOp != 0 {
		t.Fatalf("Chaos(0) still injects: %+v", ch)
	}
	if full := Chaos(1); full.DropPerOp == 0 || full.CorruptPerOp == 0 {
		t.Fatalf("Chaos(1) inert: %+v", full)
	}
	if len(Presets()) != 4 {
		t.Fatalf("preset inventory: %v", Presets())
	}
}

// TestValidate rejects impossible profiles at engine construction.
func TestValidate(t *testing.T) {
	if _, err := NewEngine(1, Profile{DropPerOp: 1.5}); err == nil {
		t.Fatal("DropPerOp 1.5 accepted")
	}
	if _, err := NewEngine(1, Profile{StallMs: -1}); err == nil {
		t.Fatal("negative stall accepted")
	}
}
