package netfaults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Canonical profiles. Magnitudes are chosen so that intensity 1 visibly
// hurts a gateway session within a few hundred operations while intensity
// 0.25 is survivable with resume on — the dynamic range the E14 campaign
// sweeps.
var presets = []struct {
	name string
	help string
	prof Profile
}{
	{
		name: "blips",
		help: "connection blips: per-op drop probability, clean bytes otherwise",
		prof: Profile{Name: "blips", DropPerOp: 0.02},
	},
	{
		name: "congested",
		help: "congested backhaul: per-op latency plus occasional long stalls",
		prof: Profile{Name: "congested", LatencyMs: 2, StallPerOp: 0.01, StallMs: 150},
	},
	{
		name: "lossy",
		help: "lossy link: bit corruption and partial writes that tear frames",
		prof: Profile{Name: "lossy", CorruptPerOp: 0.01, PartialPerOp: 0.005},
	},
}

// chaosComponents lists the presets the composite "chaos" profile layers
// together.
var chaosComponents = []string{"blips", "congested", "lossy"}

// Presets returns "name — help" inventory lines, sorted by name.
func Presets() []string {
	out := make([]string, 0, len(presets)+1)
	for _, p := range presets {
		out = append(out, fmt.Sprintf("%-10s %s", p.name, p.help))
	}
	out = append(out, fmt.Sprintf("%-10s every network fault class layered together (%s)",
		"chaos", strings.Join(chaosComponents, "+")))
	sort.Strings(out)
	return out
}

// merge layers b onto a: probabilities add (clamped at 1), magnitudes take
// the max — layering two storms never calms either.
func merge(a, b Profile) Profile {
	addClamp := func(x, y float64) float64 {
		v := x + y
		if v > 1 {
			return 1
		}
		return v
	}
	maxOf := func(x, y float64) float64 {
		if x > y {
			return x
		}
		return y
	}
	return Profile{
		Name:         a.Name + "+" + b.Name,
		DropPerOp:    addClamp(a.DropPerOp, b.DropPerOp),
		StallPerOp:   addClamp(a.StallPerOp, b.StallPerOp),
		StallMs:      maxOf(a.StallMs, b.StallMs),
		LatencyMs:    maxOf(a.LatencyMs, b.LatencyMs),
		PartialPerOp: addClamp(a.PartialPerOp, b.PartialPerOp),
		CorruptPerOp: addClamp(a.CorruptPerOp, b.CorruptPerOp),
	}
}

// Parse builds a Profile from a spec string: preset names joined by '+',
// each optionally scaled by ":<intensity>" in [0, 1] (default 1); the
// composite "chaos" expands to every class. Mirrors faults.Parse:
//
//	blips
//	blips:0.5+lossy
//	chaos:0.25
//
// An empty spec returns the inject-nothing profile.
func Parse(spec string) (Profile, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Profile{Name: "none"}, nil
	}
	var out Profile
	first := true
	for _, tok := range strings.Split(spec, "+") {
		name, intensity := tok, 1.0
		if i := strings.IndexByte(tok, ':'); i >= 0 {
			name = tok[:i]
			v, err := strconv.ParseFloat(tok[i+1:], 64)
			if err != nil || v < 0 || v > 1 {
				return Profile{}, fmt.Errorf("netfaults: bad intensity %q in %q", tok[i+1:], spec)
			}
			intensity = v
		}
		name = strings.TrimSpace(strings.ToLower(name))
		var prof Profile
		switch {
		case name == "chaos":
			for _, comp := range chaosComponents {
				p, _ := lookup(comp)
				if prof.Name == "" {
					prof = p
				} else {
					prof = merge(prof, p)
				}
			}
			prof.Name = "chaos"
		default:
			p, ok := lookup(name)
			if !ok {
				return Profile{}, fmt.Errorf("netfaults: unknown preset %q (have blips, congested, lossy, chaos)", name)
			}
			prof = p
		}
		if intensity != 1 {
			prof = prof.Scale(intensity)
		}
		if first {
			out, first = prof, false
		} else {
			out = merge(out, prof)
		}
	}
	out.Name = spec
	return out, nil
}

func lookup(name string) (Profile, bool) {
	for _, p := range presets {
		if p.name == name {
			return p.prof, true
		}
	}
	return Profile{}, false
}

// Chaos returns the composite profile at the given intensity — the E14
// campaign's axis.
func Chaos(intensity float64) Profile {
	p, _ := Parse("chaos")
	if intensity != 1 {
		p = p.Scale(intensity)
	}
	p.Name = fmt.Sprintf("chaos:%g", intensity)
	return p
}
