// Package netfaults is the deterministic network-chaos layer for the
// shore-side delivery path: a seeded wrapper over net.Conn (and a matching
// Listener) that injects connection drops, read/write stalls, added
// latency, partial writes and byte corruption.
//
// It extends the replay-exact philosophy of internal/faults from the
// acoustic channel to the TCP fan-out: every injection decision is a pure
// function of (engine seed, connection index, operation index), derived
// through the same splitmix64 mixing the acoustic fault engine uses. Two
// runs with the same seed corrupt the same byte of the same operation of
// the same connection, no matter how goroutines interleave. Timing faults
// (latency, stalls) perturb wall-clock only — they never change which
// bytes flow — so the byte-stream mutation schedule is replayable even
// though wall-clock traces are not.
//
// The op index advances once per Read and once per Write on a connection
// (independent counters per direction), so a peer that retries after a
// drop sees a fresh connection index and a fresh schedule — exactly like
// the real ocean: the storm does not care that you reconnected.
package netfaults

import (
	"errors"
	"fmt"
	"math"
	"net"
	"sync/atomic"
	"time"
)

// ErrInjected is returned (wrapped) by faulted operations, so harnesses
// can tell injected failures from real ones.
var ErrInjected = errors.New("netfaults: injected fault")

// Profile sets the per-operation fault probabilities and magnitudes. The
// zero value injects nothing.
type Profile struct {
	Name string

	// DropPerOp is the per-operation probability the connection is killed
	// before the operation runs (the wrapper closes the underlying conn and
	// returns an error, as a mid-stream RST would).
	DropPerOp float64
	// StallPerOp is the per-operation probability of a StallMs pause — a
	// congested backhaul hiccup long enough to trip dead-peer detection
	// when sustained.
	StallPerOp float64
	// StallMs is the stall duration in milliseconds.
	StallMs float64
	// LatencyMs adds up to this much uniform per-operation latency (mean
	// LatencyMs/2) — the baseline jitter of a busy link.
	LatencyMs float64
	// PartialPerOp is the per-write probability that only a prefix of the
	// buffer reaches the wire before the connection dies — the failure
	// mode that leaves a half-written frame on the peer's socket.
	PartialPerOp float64
	// CorruptPerOp is the per-operation probability that one bit of the
	// transferred bytes is flipped (reads corrupt after receive, writes
	// corrupt a copy before send, so the caller's buffer is untouched).
	CorruptPerOp float64
}

// Scale returns the profile with every probability multiplied by
// intensity (clamped to [0, 1]); magnitudes (latency, stall duration) are
// unchanged. Intensity 0 injects nothing.
func (p Profile) Scale(intensity float64) Profile {
	if intensity < 0 {
		intensity = 0
	}
	clamp := func(v float64) float64 {
		v *= intensity
		if v > 1 {
			return 1
		}
		return v
	}
	p.Name = fmt.Sprintf("%s:%g", p.Name, intensity)
	p.DropPerOp = clamp(p.DropPerOp)
	p.StallPerOp = clamp(p.StallPerOp)
	p.PartialPerOp = clamp(p.PartialPerOp)
	p.CorruptPerOp = clamp(p.CorruptPerOp)
	return p
}

// Validate reports structurally impossible profiles.
func (p Profile) Validate() error {
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"DropPerOp", p.DropPerOp}, {"StallPerOp", p.StallPerOp},
		{"PartialPerOp", p.PartialPerOp}, {"CorruptPerOp", p.CorruptPerOp},
	} {
		if f.v < 0 || f.v > 1 || math.IsNaN(f.v) {
			return fmt.Errorf("netfaults: %s %.3g outside [0, 1]", f.name, f.v)
		}
	}
	if p.StallMs < 0 || p.LatencyMs < 0 {
		return fmt.Errorf("netfaults: negative duration (stall %.3g ms, latency %.3g ms)", p.StallMs, p.LatencyMs)
	}
	return nil
}

// Stats counts injections by class since the engine was built. Counters
// are atomic; Snapshot returns a consistent-enough copy for reporting.
type Stats struct {
	Drops    int64
	Stalls   int64
	Delays   int64
	Partials int64
	Corrupts int64
}

// Engine derives the injection schedule. It is stateless apart from the
// connection-index allocator and the telemetry counters: the plan for
// (conn, op) is a pure function of the seed, so one engine may wrap any
// number of concurrent connections.
type Engine struct {
	seed int64
	prof Profile

	nextConn atomic.Uint64

	drops    atomic.Int64
	stalls   atomic.Int64
	delays   atomic.Int64
	partials atomic.Int64
	corrupts atomic.Int64

	// sleep is the timing-fault clock; tests replace it to observe
	// injected delays without waiting them out.
	sleep func(time.Duration)
}

// NewEngine validates the profile and builds an engine for it.
func NewEngine(seed int64, prof Profile) (*Engine, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return &Engine{seed: seed, prof: prof, sleep: time.Sleep}, nil
}

// Profile returns the engine's profile.
func (e *Engine) Profile() Profile { return e.prof }

// Stats returns the injection counts so far.
func (e *Engine) Stats() Stats {
	return Stats{
		Drops:    e.drops.Load(),
		Stalls:   e.stalls.Load(),
		Delays:   e.delays.Load(),
		Partials: e.partials.Load(),
		Corrupts: e.corrupts.Load(),
	}
}

// splitmix64 is the same avalanche mixer internal/faults uses; the two
// packages must not share unexported code, so the five lines repeat.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// stream is a deterministic draw sequence for one (conn, op, direction)
// triple. Each fault class consumes draws in a fixed order, so adding a
// class to a profile never shifts another class's draws.
type stream struct{ state uint64 }

func newStream(seed int64, conn, op uint64, dir uint64) stream {
	h := splitmix64(uint64(seed))
	h = splitmix64(h ^ conn*0x9e3779b97f4a7c15)
	h = splitmix64(h ^ op*0xbf58476d1ce4e5b9)
	h = splitmix64(h ^ dir)
	return stream{state: h}
}

func (s *stream) next() uint64 {
	s.state = splitmix64(s.state)
	return s.state
}

// f64 returns a uniform draw in [0, 1).
func (s *stream) f64() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// Directions salt the draw stream so a connection's reads and writes have
// independent schedules.
const (
	dirRead  = 0x52 // 'R'
	dirWrite = 0x57 // 'W'
)

// opPlan is the injection decision for one operation.
type opPlan struct {
	drop       bool
	delay      time.Duration
	partial    float64 // fraction of the buffer written before the cut; <0 = none
	corrupt    bool
	corruptOff uint64 // byte offset modulo the transfer length
	corruptBit uint8
}

// plan computes the decision for (conn, op, dir). Pure: no engine state is
// read or written, so concurrent planning is race-free and replay-exact.
func (e *Engine) plan(conn, op uint64, dir uint64) opPlan {
	s := newStream(e.seed, conn, op, dir)
	var p opPlan
	p.partial = -1
	// Fixed draw order: drop, stall, latency, partial, corrupt.
	p.drop = s.f64() < e.prof.DropPerOp
	if s.f64() < e.prof.StallPerOp {
		p.delay += time.Duration(e.prof.StallMs * float64(time.Millisecond))
	}
	if lat := s.f64() * e.prof.LatencyMs; e.prof.LatencyMs > 0 {
		p.delay += time.Duration(lat * float64(time.Millisecond))
	}
	if frac := s.f64(); dir == dirWrite && frac < e.prof.PartialPerOp {
		p.partial = s.f64()
	} else {
		_ = s.next() // keep the corrupt draws aligned across directions
	}
	if s.f64() < e.prof.CorruptPerOp {
		p.corrupt = true
		p.corruptOff = s.next()
		p.corruptBit = uint8(s.next() & 7)
	}
	return p
}

// Op is the exported view of one operation's injection decision — the
// schedule exposed for deterministic harnesses (the E14 campaign) that
// model sessions arithmetically instead of opening sockets. It carries
// exactly what plan decides, so a modeled session and a live wrapped
// session fault at the same (conn, op) points.
type Op struct {
	Drop    bool    // connection killed before the operation
	Partial bool    // write delivers only a prefix, then the conn dies
	Corrupt bool    // one bit of the operation's bytes is flipped
	DelayMs float64 // stall + latency applied before the operation
}

// ReadOp returns the injection decision for read #op on connection #conn.
// Pure: same engine seed, same answer, regardless of call order.
func (e *Engine) ReadOp(conn, op uint64) Op { return e.exportPlan(conn, op, dirRead) }

// WriteOp returns the injection decision for write #op on connection
// #conn.
func (e *Engine) WriteOp(conn, op uint64) Op { return e.exportPlan(conn, op, dirWrite) }

func (e *Engine) exportPlan(conn, op uint64, dir uint64) Op {
	pl := e.plan(conn, op, dir)
	return Op{
		Drop:    pl.drop,
		Partial: pl.partial >= 0,
		Corrupt: pl.corrupt,
		DelayMs: float64(pl.delay) / float64(time.Millisecond),
	}
}

// Conn wraps a net.Conn with the engine's schedule. Reads and writes each
// advance their own op counter; other net.Conn methods delegate.
type Conn struct {
	net.Conn
	eng *Engine
	idx uint64

	readOp  atomic.Uint64
	writeOp atomic.Uint64

	// scratch is the write-corruption copy buffer (the caller's slice must
	// not be mutated). Writes are serialized per conn by the callers this
	// package serves; a torn concurrent write would corrupt a TCP stream
	// with or without chaos.
	scratch []byte
}

// Index returns the connection's schedule index.
func (c *Conn) Index() uint64 { return c.idx }

// Wrap attaches conn to the engine's schedule under the next connection
// index.
func (e *Engine) Wrap(conn net.Conn) *Conn {
	return e.WrapIndexed(conn, e.nextConn.Add(1)-1)
}

// WrapIndexed attaches conn under an explicit schedule index — harnesses
// that want conn i of a replay to line up across runs pin the index.
func (e *Engine) WrapIndexed(conn net.Conn, idx uint64) *Conn {
	return &Conn{Conn: conn, eng: e, idx: idx}
}

// injectedErr labels an injected failure with its class.
func injectedErr(class string) error {
	return fmt.Errorf("%w: %s", ErrInjected, class)
}

// Read applies the read schedule: optional delay, drop before the read,
// and bit corruption of the received bytes.
func (c *Conn) Read(p []byte) (int, error) {
	op := c.readOp.Add(1) - 1
	pl := c.eng.plan(c.idx, op, dirRead)
	if pl.delay > 0 {
		c.pause(pl.delay)
	}
	if pl.drop {
		c.eng.drops.Add(1)
		c.Conn.Close()
		return 0, injectedErr("read drop")
	}
	n, err := c.Conn.Read(p)
	if pl.corrupt && n > 0 {
		p[pl.corruptOff%uint64(n)] ^= 1 << pl.corruptBit
		c.eng.corrupts.Add(1)
	}
	return n, err
}

// Write applies the write schedule: optional delay, drop, partial write
// (a prefix reaches the wire, then the conn dies) and bit corruption of a
// copy of the outgoing bytes.
func (c *Conn) Write(p []byte) (int, error) {
	op := c.writeOp.Add(1) - 1
	pl := c.eng.plan(c.idx, op, dirWrite)
	if pl.delay > 0 {
		c.pause(pl.delay)
	}
	if pl.drop {
		c.eng.drops.Add(1)
		c.Conn.Close()
		return 0, injectedErr("write drop")
	}
	buf := p
	if pl.corrupt && len(p) > 0 {
		if cap(c.scratch) < len(p) {
			c.scratch = make([]byte, len(p))
		}
		buf = c.scratch[:len(p)]
		copy(buf, p)
		buf[pl.corruptOff%uint64(len(p))] ^= 1 << pl.corruptBit
		c.eng.corrupts.Add(1)
	}
	if pl.partial >= 0 && len(p) > 1 {
		keep := 1 + int(pl.partial*float64(len(p)-1))
		n, err := c.Conn.Write(buf[:keep])
		c.eng.partials.Add(1)
		c.Conn.Close()
		if err != nil {
			return n, err
		}
		return n, injectedErr("partial write")
	}
	n, err := c.Conn.Write(buf)
	return n, err
}

// pause sleeps for d (capped at one second so a pathological profile
// cannot hang a harness) and books the matching stat.
func (c *Conn) pause(d time.Duration) {
	if d > time.Second {
		d = time.Second
	}
	if d >= time.Duration(c.eng.prof.StallMs*float64(time.Millisecond)) && c.eng.prof.StallMs > 0 {
		c.eng.stalls.Add(1)
	} else {
		c.eng.delays.Add(1)
	}
	c.eng.sleep(d)
}

// Listener wraps a net.Listener so every accepted connection joins the
// engine's schedule in accept order.
type Listener struct {
	net.Listener
	eng *Engine
}

// Listen wraps ln.
func (e *Engine) Listen(ln net.Listener) *Listener {
	return &Listener{Listener: ln, eng: e}
}

// Accept wraps the next connection.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.eng.Wrap(conn), nil
}
