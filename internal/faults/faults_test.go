package faults

import (
	"math"
	"reflect"
	"strings"
	"sync"
	"testing"
)

func chaosScenario(seed int64) Scenario {
	sc, err := Parse("chaos", seed)
	if err != nil {
		panic(err)
	}
	return sc
}

// Same seed → byte-identical plans, regardless of evaluation order or
// history: the property every downstream reproducibility guarantee rests
// on.
func TestPlanDeterministic(t *testing.T) {
	e1, err := NewEngine(chaosScenario(42))
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := NewEngine(chaosScenario(42))

	// e1 forward, e2 backward: identical plans per round.
	const rounds = 200
	fwd := make([]RoundPlan, rounds)
	for r := 0; r < rounds; r++ {
		fwd[r] = e1.Plan(r)
	}
	for r := rounds - 1; r >= 0; r-- {
		if got := e2.Plan(r); !reflect.DeepEqual(got, fwd[r]) {
			t.Fatalf("round %d: order-dependent plan:\n fwd: %+v\n rev: %+v", r, fwd[r], got)
		}
	}
}

// A different seed must actually change the draws.
func TestPlanSeedSensitive(t *testing.T) {
	e1, _ := NewEngine(chaosScenario(1))
	e2, _ := NewEngine(chaosScenario(2))
	same := 0
	for r := 0; r < 100; r++ {
		if reflect.DeepEqual(e1.Plan(r), e2.Plan(r)) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("seeds 1 and 2 produced identical 100-round schedules")
	}
}

// One engine may serve concurrent systems: Plan must be safe and pure
// under parallel evaluation (run with -race).
func TestPlanConcurrent(t *testing.T) {
	e, _ := NewEngine(chaosScenario(7))
	want := make([]RoundPlan, 64)
	for r := range want {
		want[r] = e.Plan(r)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < 64; r++ {
				if got := e.Plan(r); !reflect.DeepEqual(got, want[r]) {
					t.Errorf("round %d: concurrent plan diverged", r)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestNilEnginePlansNothing(t *testing.T) {
	var e *Engine
	if p := e.Plan(3); !p.Empty() {
		t.Fatalf("nil engine planned %+v", p)
	}
}

func TestFaultWindows(t *testing.T) {
	sc := Scenario{Name: "windowed", Seed: 5, Faults: []Fault{
		{Type: ClockStep, Intensity: 1, StepPPM: 1000, StartRound: 10, EndRound: 20},
	}}
	e, err := NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		round int
		want  float64
	}{{0, 0}, {9, 0}, {10, 1000}, {19, 1000}, {20, 0}, {100, 0}} {
		if got := e.Plan(tc.round).ClockPPMDelta; got != tc.want {
			t.Errorf("round %d: ClockPPMDelta = %g, want %g", tc.round, got, tc.want)
		}
	}
}

// Element failures must pick the same dead elements for the whole
// activation window — flooded transducers do not resurrect round to round.
func TestElementFailStableWithinWindow(t *testing.T) {
	sc := Scenario{Name: "el", Seed: 11, Faults: []Fault{
		{Type: ElementFailure, Intensity: 1, DeadFrac: 0.5},
	}}
	e, _ := NewEngine(sc)
	first := e.Plan(0)
	if first.DeadFrac != 0.5 {
		t.Fatalf("DeadFrac = %g, want 0.5", first.DeadFrac)
	}
	pick := PickElements(16, 8, first.FailSeed)
	for r := 1; r < 50; r++ {
		p := e.Plan(r)
		if p.FailSeed != first.FailSeed || p.DeadFrac != first.DeadFrac {
			t.Fatalf("round %d: element fault drifted within its window", r)
		}
		if got := PickElements(16, 8, p.FailSeed); !reflect.DeepEqual(got, pick) {
			t.Fatalf("round %d: dead-element pick changed", r)
		}
	}
}

func TestPickElements(t *testing.T) {
	got := PickElements(16, 4, 99)
	if len(got) != 4 {
		t.Fatalf("picked %d elements, want 4", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 16 {
			t.Fatalf("element %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("element %d picked twice", i)
		}
		seen[i] = true
	}
	if n := len(PickElements(4, 10, 1)); n != 4 {
		t.Fatalf("over-asking picked %d, want clamp to 4", n)
	}
	if PickElements(4, 0, 1) != nil || PickElements(0, 3, 1) != nil {
		t.Fatal("degenerate picks should be nil")
	}
}

func TestParse(t *testing.T) {
	sc, err := Parse("shrimp:0.5+brownout", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sc.Faults) != 2 {
		t.Fatalf("parsed %d faults, want 2", len(sc.Faults))
	}
	if sc.Faults[0].Type != Impulse || sc.Faults[0].Intensity != 0.5 {
		t.Fatalf("first fault = %+v", sc.Faults[0])
	}
	if sc.Faults[1].Type != Brownout || sc.Faults[1].Intensity != 1 {
		t.Fatalf("second fault = %+v", sc.Faults[1])
	}

	if sc, _ := Parse("chaos", 1); len(sc.Faults) != len(chaosComponents) {
		t.Fatalf("chaos expanded to %d faults, want %d", len(sc.Faults), len(chaosComponents))
	}
	if sc, _ := Parse("", 1); len(sc.Faults) != 0 || sc.Name != "none" {
		t.Fatalf("empty spec = %+v", sc)
	}

	for _, bad := range []string{"krakens", "shrimp:1.5", "shrimp:x", ":0.5", "+"} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", bad)
		}
	}
}

func TestScale(t *testing.T) {
	sc := chaosScenario(1)
	half := sc.Scale(0.5)
	for i := range half.Faults {
		want := sc.Faults[i].Intensity * 0.5
		if math.Abs(half.Faults[i].Intensity-want) > 1e-12 {
			t.Fatalf("fault %d intensity %g, want %g", i, half.Faults[i].Intensity, want)
		}
	}
	zero := sc.Scale(0)
	e, _ := NewEngine(zero)
	for r := 0; r < 20; r++ {
		if p := e.Plan(r); !p.Empty() {
			t.Fatalf("zero-scaled scenario planned %+v", p)
		}
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Scenario{
		{Faults: []Fault{{Type: Type(99)}}},
		{Faults: []Fault{{Type: Impulse, Intensity: 2}}},
		{Faults: []Fault{{Type: Impulse, Intensity: 1, StartRound: -1}}},
		{Faults: []Fault{{Type: Impulse, Intensity: 1, StartRound: 5, EndRound: 5}}},
		{Faults: []Fault{{Type: ElementFailure, Intensity: 1, DeadFrac: 1.5}}},
		{Faults: []Fault{{Type: Brownout, Intensity: 1, OutageProb: -0.1}}},
	}
	for i, sc := range bad {
		if _, err := NewEngine(sc); err == nil {
			t.Errorf("scenario %d accepted, want error", i)
		}
	}
}

func TestPresetsListing(t *testing.T) {
	lines := Presets()
	if len(lines) != len(presets)+1 {
		t.Fatalf("Presets() returned %d lines, want %d", len(lines), len(presets)+1)
	}
	joined := strings.Join(lines, "\n")
	for _, name := range append([]string{"chaos"}, chaosComponents...) {
		if !strings.Contains(joined, name) {
			t.Errorf("Presets() missing %q", name)
		}
	}
}

// The impulse intensity knob must actually move the burst statistics.
func TestImpulseIntensityScales(t *testing.T) {
	count := func(intensity float64) int {
		sc := Scenario{Name: "i", Seed: 9, Faults: []Fault{
			{Type: Impulse, Intensity: intensity, RatePerRound: 6, PowerDB: 30, BurstLenSec: 0.02},
		}}
		e, _ := NewEngine(sc)
		n := 0
		for r := 0; r < 300; r++ {
			n += len(e.Plan(r).Bursts)
		}
		return n
	}
	lo, hi := count(0.25), count(1)
	if lo == 0 || hi == 0 {
		t.Fatalf("no bursts drawn (lo=%d hi=%d)", lo, hi)
	}
	if hi <= lo {
		t.Fatalf("intensity 1 drew %d bursts, not more than %d at 0.25", hi, lo)
	}
}
