package faults

import "testing"

func TestModelSeverityEmptyPlan(t *testing.T) {
	if s := ModelSeverity(RoundPlan{}); s != 0 {
		t.Fatalf("empty plan severity = %g, want 0", s)
	}
}

func TestModelSeverityFullChaosPlan(t *testing.T) {
	// The canonical full-intensity composite: every class at its preset
	// maximum. Must map to exactly 1.
	p := RoundPlan{
		ShadowDB:      6,
		DeadFrac:      0.5,
		ClockPPMDelta: 1250,
		Brownout:      true,
		Bursts:        make([]Burst, 6),
	}
	if s := ModelSeverity(p); s != 1 {
		t.Fatalf("full composite severity = %g, want 1", s)
	}
	// Over-canonical values clamp per class, keeping the total in [0, 1].
	p.ShadowDB = 40
	p.Bursts = make([]Burst, 50)
	if s := ModelSeverity(p); s != 1 {
		t.Fatalf("over-full severity = %g, want 1 (clamped)", s)
	}
}

func TestModelSeverityMonotoneInShadow(t *testing.T) {
	prev := -1.0
	for db := 0.0; db <= 6; db += 0.5 {
		s := ModelSeverity(RoundPlan{ShadowDB: db})
		if s < prev {
			t.Fatalf("severity not monotone in shadow: %g dB → %g after %g", db, s, prev)
		}
		if s < 0 || s > 1 {
			t.Fatalf("severity %g outside [0, 1]", s)
		}
		prev = s
	}
}

// TestMeanModelSeverityTracksScenarioIntensity checks the round trip the
// abstract tier depends on: scaling a scenario's intensity moves the mean
// mapped severity in the same direction.
func TestMeanModelSeverityTracksScenarioIntensity(t *testing.T) {
	sc, err := Parse("chaos", 42)
	if err != nil {
		t.Fatal(err)
	}
	mean := func(intensity float64) float64 {
		eng, err := NewEngine(sc.Scale(intensity))
		if err != nil {
			t.Fatal(err)
		}
		return eng.MeanModelSeverity(0, 200)
	}
	lo, mid, hi := mean(0.25), mean(0.5), mean(1)
	if !(lo < mid && mid < hi) {
		t.Fatalf("mean severity not increasing in scenario intensity: %.3f, %.3f, %.3f", lo, mid, hi)
	}
	if hi <= 0.2 || hi > 1 {
		t.Fatalf("full chaos mean severity %.3f implausible", hi)
	}
	var eng *Engine
	if s := eng.MeanModelSeverity(0, 10); s != 0 {
		t.Fatalf("nil engine severity = %g, want 0", s)
	}
}
