package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// preset builds one canonical fault at the given intensity. The canonical
// parameters are chosen so that intensity 1 visibly degrades a healthy
// mid-range link while intensity 0.25 is survivable with recovery on —
// the dynamic range the E11 chaos campaign sweeps.
type preset struct {
	name string
	help string
	mk   func(intensity float64) Fault
}

var presets = []preset{
	{
		name: "shrimp",
		help: "snapping-shrimp impulse trains: Poisson bursts, ~30 dB over ambient",
		mk: func(i float64) Fault {
			return Fault{
				Type: Impulse, Intensity: i,
				RatePerRound: 6, PowerDB: 30, BurstLenSec: 0.02,
			}
		},
	},
	{
		name: "shadowing",
		help: "bubble-cloud shadowing: time-varying excess attenuation, up to 6 dB one-way",
		mk: func(i float64) Fault {
			return Fault{
				Type: Shadowing, Intensity: i,
				AttenDB: 6, PeriodRounds: 12,
			}
		},
	},
	{
		name: "elements",
		help: "Van Atta element failures: up to half the array dead",
		mk: func(i float64) Fault {
			return Fault{
				Type: ElementFailure, Intensity: i,
				DeadFrac: 0.5,
			}
		},
	},
	{
		name: "brownout",
		help: "node supply collapses: forced harvester depletion, per-round probability",
		mk: func(i float64) Fault {
			return Fault{
				Type: Brownout, Intensity: i,
				OutageProb: 0.4,
			}
		},
	},
	{
		name: "clockstep",
		// 1250 ppm sits just past the demodulator's drift knee: ~1000 ppm
		// still decodes, ~2000 ppm is a dead link. Scaling intensity walks
		// the link across that knee instead of jumping off the cliff.
		help: "node oscillator step: up to +1250 ppm (cheap-RC class) while active",
		mk: func(i float64) Fault {
			return Fault{
				Type: ClockStep, Intensity: i,
				StepPPM: 1250,
			}
		},
	},
}

// chaosComponents lists the presets the composite "chaos" scenario layers
// together (every class at once — the E11 default).
var chaosComponents = []string{"shrimp", "shadowing", "elements", "brownout", "clockstep"}

// Presets returns "name — help" lines for every named fault preset plus
// the chaos composite, sorted by name: the CLI's -faults list output.
func Presets() []string {
	out := make([]string, 0, len(presets)+1)
	for _, p := range presets {
		out = append(out, fmt.Sprintf("%-10s %s", p.name, p.help))
	}
	out = append(out, fmt.Sprintf("%-10s every fault class layered together (%s)",
		"chaos", strings.Join(chaosComponents, "+")))
	sort.Strings(out)
	return out
}

func findPreset(name string) (preset, bool) {
	for _, p := range presets {
		if p.name == name {
			return p, true
		}
	}
	return preset{}, false
}

// Parse builds a Scenario from a spec string: preset names joined by '+',
// each optionally scaled by ":<intensity>" in [0, 1] (default 1). The
// composite name "chaos" expands to every class. Examples:
//
//	shrimp+shadowing
//	shrimp:0.5+brownout
//	chaos:0.25
//
// An empty spec returns the empty (inject-nothing) scenario.
func Parse(spec string, seed int64) (Scenario, error) {
	sc := Scenario{Name: spec, Seed: seed}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		sc.Name = "none"
		return sc, nil
	}
	for _, tok := range strings.Split(spec, "+") {
		name, intensity, err := splitToken(tok)
		if err != nil {
			return Scenario{}, err
		}
		if name == "chaos" {
			for _, c := range chaosComponents {
				p, _ := findPreset(c)
				sc.Faults = append(sc.Faults, p.mk(intensity))
			}
			continue
		}
		p, ok := findPreset(name)
		if !ok {
			return Scenario{}, fmt.Errorf("faults: unknown preset %q (have %s and chaos)",
				name, strings.Join(chaosComponents, ", "))
		}
		sc.Faults = append(sc.Faults, p.mk(intensity))
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc, nil
}

// splitToken parses "name[:intensity]".
func splitToken(tok string) (string, float64, error) {
	tok = strings.TrimSpace(strings.ToLower(tok))
	name, rest, found := strings.Cut(tok, ":")
	if name == "" {
		return "", 0, fmt.Errorf("faults: empty preset name in spec")
	}
	if !found {
		return name, 1, nil
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return "", 0, fmt.Errorf("faults: bad intensity %q for %q: %v", rest, name, err)
	}
	if v < 0 || v > 1 {
		return "", 0, fmt.Errorf("faults: intensity %.3g for %q outside [0, 1]", v, name)
	}
	return name, v, nil
}

// Scale returns a copy of the scenario with every fault's intensity
// multiplied by s (clamped to [0, 1]): the knob the chaos campaign sweeps
// to trace degradation curves without re-parsing specs.
func (sc Scenario) Scale(s float64) Scenario {
	out := Scenario{Name: sc.Name, Seed: sc.Seed}
	out.Faults = make([]Fault, len(sc.Faults))
	copy(out.Faults, sc.Faults)
	for i := range out.Faults {
		v := out.Faults[i].Intensity * s
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		out.Faults[i].Intensity = v
	}
	return out
}
