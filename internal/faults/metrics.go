package faults

import "vab/internal/telemetry"

// engineMetrics counts injections by fault type. The zero value is the
// noop default (nil counters are free no-ops), preserving the package's
// determinism contract: telemetry never touches an RNG stream.
type engineMetrics struct {
	injections [numTypes]*telemetry.Counter
}

// Instrument registers per-type injection counters
// (vab_faults_injections_total{type="impulse"}…) in reg and starts
// recording. A nil registry leaves the engine uninstrumented.
func (e *Engine) Instrument(reg *telemetry.Registry) {
	if e == nil || reg == nil {
		return
	}
	for t := Type(0); t < numTypes; t++ {
		e.met.injections[t] = reg.Counter(
			telemetry.Label("vab_faults_injections_total", "type", t.String()),
			"Fault injections performed, by fault type.")
	}
}
