package mac

import (
	"math/rand"
	"testing"
)

// TestColumnsMatchFold drives randomized outcome sequences through the
// NodeState fold primitives and the NodeColumns counterparts and checks
// the materialized state matches field for field — including the
// unexported probe-schedule fields — after every step. This is the
// layout-parity pin behind the link-abstraction tier's struct-of-arrays
// fold: same outcomes, same decisions, bit for bit.
func TestColumnsMatchFold(t *testing.T) {
	policies := []PollPolicy{
		DefaultPollPolicy(),
		{MaxRetries: 2, BackoffSlots: 8, DropAfter: 3, Probation: true, ProbeBackoffBase: 2, ProbeBackoffMax: 8},
		{MaxRetries: 1, BackoffSlots: 4, DropAfter: 1, Probation: true, ProbeBackoffBase: 1, ProbeBackoffMax: 1},
		{MaxRetries: 0, BackoffSlots: 1, DropAfter: 2}, // drop, no probation
		{MaxRetries: 3, BackoffSlots: 8},               // never drop
	}
	for pi, p := range policies {
		rng := rand.New(rand.NewSource(int64(41 + pi)))
		const nodes = 5
		cols := NewNodeColumns(nodes)
		structs := make([]NodeState, nodes)
		for i := range structs {
			structs[i] = NodeState{Addr: byte(i + 1), Health: 1}
			cols.Addr[i] = byte(i + 1)
		}
		for cycle := 0; cycle < 200; cycle++ {
			for i := 0; i < nodes; i++ {
				st := &structs[i]
				switch {
				case st.Dropped != cols.Dropped(i) || st.Quarantined != cols.Quarantined(i):
					t.Fatalf("policy %d cycle %d node %d: liveness diverged before fold", pi, cycle, i)
				case st.Dropped:
					continue
				case st.Quarantined:
					if !st.ProbeDue(cycle) {
						if cols.ProbeDueAt(i, cycle) {
							t.Fatalf("policy %d cycle %d node %d: ProbeDue disagrees", pi, cycle, i)
						}
						continue
					}
					if st.NextProbe() != cols.NextProbeAt(i) {
						t.Fatalf("policy %d cycle %d node %d: NextProbe %d vs %d", pi, cycle, i, st.NextProbe(), cols.NextProbeAt(i))
					}
					st.Polls++
					cols.Polls[i]++
					if rng.Float64() < 0.4 { // probe delivers
						snr := rng.NormFloat64()*4 + 10
						FoldDelivered(st, snr)
						cols.FoldDeliveredAt(i, snr)
						lat := st.Restore(cycle)
						if clat := cols.RestoreAt(i, cycle); clat != lat {
							t.Fatalf("policy %d cycle %d node %d: recovery latency %d vs %d", pi, cycle, i, lat, clat)
						}
					} else {
						p.FoldProbeFailure(st, cycle)
						p.FoldProbeFailureAt(cols, i, cycle)
					}
				default:
					attempts := 1 + rng.Intn(1+p.MaxRetries)
					st.Polls += attempts
					cols.Polls[i] += int32(attempts)
					if attempts > 1 {
						st.Retries += attempts - 1
						cols.Retries[i] += int32(attempts - 1)
					}
					if rng.Float64() < 0.5 { // delivered within budget
						snr := rng.NormFloat64()*4 + 12
						FoldDelivered(st, snr)
						cols.FoldDeliveredAt(i, snr)
					} else {
						want := p.FoldPollFailure(st, cycle)
						if got := p.FoldPollFailureAt(cols, i, cycle); got != want {
							t.Fatalf("policy %d cycle %d node %d: liveness change %v vs %v", pi, cycle, i, want, got)
						}
					}
				}
				if got, want := cols.State(i), *st; got != want {
					t.Fatalf("policy %d cycle %d node %d: state diverged\ncolumns: %+v\nstruct:  %+v", pi, cycle, i, got, want)
				}
			}
		}
	}
}

// TestNodeColumnsInit pins the AddNode-equivalent initial state and the
// probe-horizon export the calendar wheel sizes itself with.
func TestNodeColumnsInit(t *testing.T) {
	c := NewNodeColumns(3)
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	for i := 0; i < 3; i++ {
		if !c.Live(i) {
			t.Fatalf("node %d not live at init", i)
		}
		want := NodeState{Health: 1}
		if got := c.State(i); got != want {
			t.Fatalf("node %d init state %+v, want %+v", i, got, want)
		}
	}
	if h := (PollPolicy{}).ProbeHorizon(); h != 16 {
		t.Fatalf("default probe horizon %d, want 16", h)
	}
	if h := (PollPolicy{ProbeBackoffMax: 8}).ProbeHorizon(); h != 8 {
		t.Fatalf("probe horizon %d, want 8", h)
	}
}
