// Package mac implements the medium access layer of a VAB network: a
// reader-initiated polling protocol over the shared acoustic channel.
//
// Backscatter nodes cannot hear each other (their receivers only detect the
// strong reader downlink), so all coordination flows through the reader: it
// polls nodes one at a time, addressing each by its link-layer address, and
// retries lost rounds with bounded attempts. Broadcast queries elicit
// responses from every powered node and are used for discovery, with a
// framed-slotted backoff resolving collisions (nodes answer in a
// pseudo-random slot derived from their address).
package mac

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"vab/internal/telemetry"
)

// PollPolicy tunes the polling scheduler.
type PollPolicy struct {
	// MaxRetries bounds per-node retransmissions within one cycle.
	MaxRetries int
	// BackoffSlots is the discovery window size in response slots.
	BackoffSlots int
	// DropAfter removes a node from the schedule after this many
	// consecutive failed cycles (0 = never drop). With Probation set the
	// node is quarantined instead of permanently removed.
	DropAfter int

	// Probation replaces permanent drops with quarantine: after DropAfter
	// silent cycles the node leaves the regular schedule but receives
	// single-attempt re-probes at exponentially backed-off intervals
	// (ProbeBackoffBase cycles, doubling up to ProbeBackoffMax). One
	// successful probe restores the node. A transient impairment — a
	// bubble cloud, a brownout while a mooring recharges — thereby costs
	// rounds, not the node; the one-way DropAfter removal remains for
	// operators who prefer it.
	Probation bool
	// ProbeBackoffBase is the first quarantine re-probe interval in
	// cycles (0 → 2).
	ProbeBackoffBase int
	// ProbeBackoffMax caps the re-probe interval in cycles (0 → 16).
	ProbeBackoffMax int
}

// DefaultPollPolicy matches the field campaign: two retries, eight
// discovery slots, nodes dropped after five silent cycles.
func DefaultPollPolicy() PollPolicy {
	return PollPolicy{MaxRetries: 2, BackoffSlots: 8, DropAfter: 5}
}

// probeBase resolves the first re-probe interval.
func (p PollPolicy) probeBase() int {
	if p.ProbeBackoffBase <= 0 {
		return 2
	}
	return p.ProbeBackoffBase
}

// probeMax resolves the re-probe interval cap.
func (p PollPolicy) probeMax() int {
	if p.ProbeBackoffMax <= 0 {
		return 16
	}
	return p.ProbeBackoffMax
}

// Validate reports nonsensical policies.
func (p PollPolicy) Validate() error {
	if p.MaxRetries < 0 {
		return fmt.Errorf("mac: negative retries")
	}
	if p.BackoffSlots < 1 {
		return fmt.Errorf("mac: discovery needs at least one slot")
	}
	if p.DropAfter < 0 {
		return fmt.Errorf("mac: negative drop threshold")
	}
	if p.ProbeBackoffBase < 0 || p.ProbeBackoffMax < 0 {
		return fmt.Errorf("mac: negative probe backoff")
	}
	if p.ProbeBackoffBase > 0 && p.ProbeBackoffMax > 0 && p.ProbeBackoffBase > p.ProbeBackoffMax {
		return fmt.Errorf("mac: probe backoff base %d exceeds max %d", p.ProbeBackoffBase, p.ProbeBackoffMax)
	}
	return nil
}

// RoundResult is the outcome of one poll attempt, as reported by the
// underlying PHY/reader stack.
type RoundResult struct {
	OK      bool
	Payload []byte
	SNRdB   float64
}

// Transceiver abstracts the physical exchange: the scheduler calls Poll
// once per attempt. Implementations wrap core.System (waveform-level) or a
// link-budget sampler (campaign-level). When the scheduler's worker pool
// is widened past one (SetWorkers), Poll must tolerate concurrent calls
// for *different* addresses — the pool never polls one address twice at
// once.
type Transceiver interface {
	Poll(addr byte) (RoundResult, error)
}

// WaveTransceiver is an optional Transceiver extension for rate-adapted
// fleets. The scheduler snapshots the rate controller's command once per
// execution wave and hands the same chip rate to every poll of that wave,
// so the worker that owns the polled node's PHY applies the stepdown
// itself and no poll ever observes a half-stepped controller — the
// property that keeps concurrent cycles bit-identical to serial ones.
// A chipRate of 0 means "no command" (no controller attached).
type WaveTransceiver interface {
	Transceiver
	PollAt(addr byte, chipRate float64) (RoundResult, error)
}

// NodeState tracks scheduler bookkeeping per node.
type NodeState struct {
	Addr         byte
	Polls        int
	Successes    int
	Retries      int
	SilentCycles int
	Dropped      bool
	LastSNRdB    float64

	// Health is an EWMA of per-cycle delivery in [0, 1] (1 = every recent
	// cycle delivered), the score the probation policy keys on.
	Health float64
	// Quarantined marks a node in probation: off the regular schedule,
	// awaiting a backed-off re-probe.
	Quarantined bool
	// QuarantineEntries counts how many times the node entered probation.
	QuarantineEntries int

	probeInterval int // current re-probe backoff, cycles
	nextProbe     int // cycle index of the next re-probe
	quarantinedAt int // cycle index of the latest quarantine entry
}

// Scheduler runs the polling MAC over a set of node addresses.
//
// RunCycle is split into a pure decision phase (which nodes this cycle
// owes a poll, probation and retry bookkeeping — always executed on the
// caller's goroutine in ascending address order) and an execution phase
// that fans each wave of polls over a bounded worker pool. Waves are
// separated by barriers: retry decisions for wave n+1 only ever see the
// complete results of wave n, so a cycle's outcome is bit-identical at
// any pool width.
type Scheduler struct {
	policy  PollPolicy
	trx     Transceiver
	nodes   map[byte]*NodeState
	order   []byte
	cycle   int // completed RunCycle count (the probation clock)
	rate    *RateController
	workers int // execution-phase pool width (0 or 1 = serial)
	met     macMetrics
}

// macMetrics instruments the polling loop. Zero value = noop.
type macMetrics struct {
	polls       *telemetry.Counter
	delivered   *telemetry.Counter
	retries     *telemetry.Counter
	timeouts    *telemetry.Counter // attempts that returned no frame
	dropped     *telemetry.Counter // nodes removed by the liveness policy
	quarantined *telemetry.Counter // probation entries
	restored    *telemetry.Counter // probation exits via successful probe
	probes      *telemetry.Counter // quarantine re-probe attempts
	liveNodes   *telemetry.Gauge
	pollTime    *telemetry.Histogram
	recoveryLat *telemetry.Histogram // cycles from quarantine entry to restore

	waveWidth *telemetry.Histogram // polls fanned out per execution wave
	waveOcc   *telemetry.Histogram // busy fraction of the configured pool
	straggler *telemetry.Histogram // wave wall time beyond a balanced pool
	poolSize  *telemetry.Gauge     // configured execution-pool width
}

// Instrument registers MAC metrics in reg and starts recording. Call
// before RunCycle; a nil registry leaves the scheduler uninstrumented.
func (s *Scheduler) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.met = macMetrics{
		polls: reg.Counter("vab_mac_polls_total",
			"Poll attempts issued (including retries)."),
		delivered: reg.Counter("vab_mac_deliveries_total",
			"Polls that delivered a frame within the retry budget."),
		retries: reg.Counter("vab_mac_retries_total",
			"Retransmission attempts beyond the first poll."),
		timeouts: reg.Counter("vab_mac_timeouts_total",
			"Poll attempts that elicited no decodable response."),
		dropped: reg.Counter("vab_mac_nodes_dropped_total",
			"Nodes removed from the schedule by the liveness policy."),
		quarantined: reg.Counter("vab_mac_quarantine_entries_total",
			"Nodes placed in probation by the liveness policy."),
		restored: reg.Counter("vab_mac_quarantine_exits_total",
			"Quarantined nodes restored by a successful re-probe."),
		probes: reg.Counter("vab_mac_probes_total",
			"Single-attempt re-probes of quarantined nodes."),
		liveNodes: reg.Gauge("vab_mac_live_nodes",
			"Nodes currently in the polling schedule."),
		pollTime: reg.Histogram("vab_mac_poll_seconds",
			"Wall time of one poll attempt (transceiver round).", nil),
		recoveryLat: reg.Histogram("vab_mac_recovery_cycles",
			"Cycles a node spent quarantined before a probe restored it.",
			telemetry.LinearBuckets(1, 4, 16)),
		waveWidth: reg.Histogram("vab_mac_wave_width",
			"Polls fanned out per execution wave.",
			telemetry.LinearBuckets(1, 8, 16)),
		waveOcc: reg.Histogram("vab_mac_wave_pool_occupancy",
			"Fraction of the configured worker pool busy during a wave.",
			telemetry.LinearBuckets(0.125, 0.125, 8)),
		straggler: reg.Histogram("vab_mac_wave_straggler_seconds",
			"Wave wall time in excess of a perfectly balanced pool (straggler overhang).", nil),
		poolSize: reg.Gauge("vab_mac_wave_pool_size",
			"Configured execution-phase worker-pool width."),
	}
	s.met.liveNodes.Set(float64(s.liveCount()))
	s.met.poolSize.Set(float64(s.poolWidth()))
}

// liveCount returns the number of nodes still in the regular schedule
// (neither dropped nor quarantined).
func (s *Scheduler) liveCount() int {
	n := 0
	for _, st := range s.nodes {
		if !st.Dropped && !st.Quarantined {
			n++
		}
	}
	return n
}

// healthAlpha is the EWMA coefficient of the per-node health score.
const healthAlpha = 0.25

// foldHealth is the scalar EWMA update both state representations share
// (NodeState and the struct-of-arrays NodeColumns): one arithmetic
// expression, so the two layouts stay bit-identical by construction.
func foldHealth(h float64, delivered bool) float64 {
	outcome := 0.0
	if delivered {
		outcome = 1
	}
	return (1-healthAlpha)*h + healthAlpha*outcome
}

// observeHealth folds one cycle outcome into the node's health score.
func observeHealth(st *NodeState, delivered bool) {
	st.Health = foldHealth(st.Health, delivered)
}

// SetRateController attaches a rate controller: every delivered cycle
// feeds Observe with the node's reported SNR and every lost cycle feeds
// ObserveLoss, so sustained impairment steps the link down to a more
// robust chip rate and recovery climbs it back. The scheduler only drives
// the controller; acting on Rate() (rebuilding the PHY) is the
// transceiver owner's job — see core.System.SetChipRate.
func (s *Scheduler) SetRateController(rc *RateController) { s.rate = rc }

// NewScheduler builds a scheduler over the given transceiver.
func NewScheduler(trx Transceiver, policy PollPolicy) (*Scheduler, error) {
	if trx == nil {
		return nil, fmt.Errorf("mac: transceiver required")
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{
		policy: policy,
		trx:    trx,
		nodes:  make(map[byte]*NodeState),
	}, nil
}

// AddNode registers a node address for polling. Duplicate adds are no-ops.
func (s *Scheduler) AddNode(addr byte) {
	if _, ok := s.nodes[addr]; ok {
		return
	}
	s.nodes[addr] = &NodeState{Addr: addr, Health: 1}
	s.order = append(s.order, addr)
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	s.met.liveNodes.Set(float64(s.liveCount()))
}

// Nodes returns the bookkeeping for every registered node, ordered by
// address.
func (s *Scheduler) Nodes() []NodeState {
	out := make([]NodeState, 0, len(s.order))
	for _, a := range s.order {
		out = append(out, *s.nodes[a])
	}
	return out
}

// CycleReport summarizes one full polling cycle.
type CycleReport struct {
	Polled    int
	Delivered int
	Retries   int
	Probes    int // quarantine re-probe attempts this cycle
	Payloads  map[byte][]byte
}

// SetWorkers bounds the execution-phase worker pool: each wave's polls
// run on up to n goroutines. n <= 0 selects runtime.NumCPU(); the default
// (and n == 1) polls serially on the caller's goroutine. Widths above one
// require the transceiver to tolerate concurrent Poll/PollAt calls for
// distinct addresses (core.Fleet does: each node's System owns its
// channel, RNG stream and scratch). Cycle outcomes — reports, payloads,
// node state, rate decisions — are bit-identical at any width; only wall
// clock changes.
func (s *Scheduler) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	s.workers = n
	s.met.poolSize.Set(float64(n))
}

// poolWidth resolves the configured pool width (≥ 1).
func (s *Scheduler) poolWidth() int {
	if s.workers <= 0 {
		return 1
	}
	return s.workers
}

// waveSlot is one poll of an execution wave: the decision phase fills the
// target, the execution phase fills the outcome.
type waveSlot struct {
	st    *NodeState
	probe bool
	res   RoundResult
	err   error
	dur   time.Duration
}

// RunCycle polls every live node once (with retries), re-probes any
// quarantined node whose backoff has elapsed, and returns the cycle
// summary.
//
// The cycle runs as a sequence of waves. Wave 0 carries every scheduled
// poll plus the due re-probes; wave n+1 carries the retries of wave n's
// failed polls (probes are single-attempt and never retry). Polls within
// a wave are independent — each targets a distinct node — so the wave
// fans out over the worker pool (SetWorkers) and a barrier collects it
// before any retry or probation decision is made. All node-state
// mutation, report assembly and rate-controller feeding happen between
// waves on the caller's goroutine in ascending address order, which is
// what makes the cycle bit-identical at any pool width.
func (s *Scheduler) RunCycle() (CycleReport, error) {
	rep := CycleReport{Payloads: make(map[byte][]byte)}
	cycle := s.cycle
	s.cycle++

	// Decision phase: the polls this cycle owes, in ascending address
	// order — every live node, plus quarantined nodes whose re-probe
	// backoff has elapsed.
	wave := make([]waveSlot, 0, len(s.order))
	for _, addr := range s.order {
		st := s.nodes[addr]
		switch {
		case st.Dropped:
		case st.Quarantined:
			if cycle >= st.nextProbe {
				wave = append(wave, waveSlot{st: st, probe: true})
			}
		default:
			wave = append(wave, waveSlot{st: st})
		}
	}
	rep.Polled = len(wave)

	for attempt := 0; len(wave) > 0; attempt++ {
		// Pre-dispatch bookkeeping, in address order so the counters a
		// serial run would produce are reproduced exactly.
		for i := range wave {
			st := wave[i].st
			st.Polls++
			s.met.polls.Inc()
			if attempt > 0 {
				st.Retries++
				rep.Retries++
				s.met.retries.Inc()
			}
			if wave[i].probe {
				rep.Probes++
				s.met.probes.Inc()
			}
		}

		s.runWave(wave)

		// Barrier passed: fold the wave's results into scheduler state in
		// address order and decide the retry wave.
		retry := wave[:0:0]
		for i := range wave {
			slot := &wave[i]
			st := slot.st
			if slot.err != nil {
				kind := "poll"
				if slot.probe {
					kind = "probe"
				}
				return rep, fmt.Errorf("mac: %s %d: %w", kind, st.Addr, slot.err)
			}
			switch {
			case slot.res.OK:
				s.finishDelivered(slot, cycle, &rep)
			case slot.probe:
				s.met.timeouts.Inc()
				s.finishFailedProbe(st, cycle)
			case attempt < s.policy.MaxRetries:
				s.met.timeouts.Inc()
				retry = append(retry, waveSlot{st: st})
			default:
				s.met.timeouts.Inc()
				s.finishFailedPoll(st, cycle)
			}
		}
		wave = retry
	}
	return rep, nil
}

// runWave executes one wave of polls over the worker pool. The rate
// controller's command is snapshotted once, before dispatch, and handed
// to every poll through the WaveTransceiver extension; the controller is
// never read or written while workers are in flight.
func (s *Scheduler) runWave(wave []waveSlot) {
	var cmdRate float64
	wt, snapshot := s.trx.(WaveTransceiver)
	snapshot = snapshot && s.rate != nil
	if snapshot {
		cmdRate = s.rate.Rate()
	}
	poll := func(slot *waveSlot) {
		start := time.Now()
		if snapshot {
			slot.res, slot.err = wt.PollAt(slot.st.Addr, cmdRate)
		} else {
			slot.res, slot.err = s.trx.Poll(slot.st.Addr)
		}
		slot.dur = time.Since(start)
	}

	workers := s.poolWidth()
	if workers > len(wave) {
		workers = len(wave)
	}
	start := time.Now()
	if workers == 1 {
		for i := range wave {
			poll(&wave[i])
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				// One pprof label per worker, not per poll: CPU profiles
				// attribute wave execution via `go tool pprof -tags`.
				pprof.Do(context.Background(), pprof.Labels("vab_stage", "mac_poll"), func(context.Context) {
					for {
						i := int(next.Add(1)) - 1
						if i >= len(wave) {
							return
						}
						poll(&wave[i])
					}
				})
			}()
		}
		wg.Wait()
	}
	s.observeWave(wave, workers, time.Since(start))
}

// observeWave records the wave's telemetry: its width, how much of the
// configured pool it kept busy, per-poll latencies, and the straggler
// overhang — wall time beyond sum(poll durations)/workers, i.e. what a
// perfectly balanced pool would not have spent.
func (s *Scheduler) observeWave(wave []waveSlot, workers int, wall time.Duration) {
	var sum time.Duration
	for i := range wave {
		s.met.pollTime.Observe(wave[i].dur.Seconds())
		sum += wave[i].dur
	}
	s.met.waveWidth.Observe(float64(len(wave)))
	s.met.waveOcc.Observe(float64(workers) / float64(s.poolWidth()))
	if overhang := wall - sum/time.Duration(workers); overhang > 0 {
		s.met.straggler.Observe(overhang.Seconds())
	} else {
		s.met.straggler.Observe(0)
	}
}

// finishDelivered folds a delivered poll (or restoring probe) into the
// node and cycle state. The node-state transition itself lives in the
// exported decision-phase primitives (fold.go), shared with the
// link-abstraction tier; this method adds the scheduler's report assembly,
// metrics and rate-controller feeding.
func (s *Scheduler) finishDelivered(slot *waveSlot, cycle int, rep *CycleReport) {
	st := slot.st
	FoldDelivered(st, slot.res.SNRdB)
	rep.Payloads[st.Addr] = slot.res.Payload
	rep.Delivered++
	s.met.delivered.Inc()
	if slot.probe {
		s.met.restored.Inc()
		s.met.recoveryLat.Observe(float64(st.Restore(cycle)))
		s.met.liveNodes.Set(float64(s.liveCount()))
		return // probes are off-schedule and never feed the rate controller
	}
	if s.rate != nil {
		s.rate.Observe(slot.res.SNRdB)
	}
}

// finishFailedProbe folds a failed quarantine re-probe (fold.go owns the
// backoff doubling).
func (s *Scheduler) finishFailedProbe(st *NodeState, cycle int) {
	s.policy.FoldProbeFailure(st, cycle)
}

// finishFailedPoll applies the liveness policy to a node whose retry
// budget is exhausted, recording the transition's metrics and feeding the
// rate controller's loss signal.
func (s *Scheduler) finishFailedPoll(st *NodeState, cycle int) {
	if s.rate != nil {
		s.rate.ObserveLoss()
	}
	switch s.policy.FoldPollFailure(st, cycle) {
	case LivenessQuarantined:
		s.met.quarantined.Inc()
		s.met.liveNodes.Set(float64(s.liveCount()))
	case LivenessDropped:
		s.met.dropped.Inc()
		s.met.liveNodes.Set(float64(s.liveCount()))
	}
}

// DeliveryRatio returns delivered/polled across all completed cycles for a
// node, or 0 if it was never polled.
func (s *Scheduler) DeliveryRatio(addr byte) float64 {
	st, ok := s.nodes[addr]
	if !ok || st.Polls == 0 {
		return 0
	}
	return float64(st.Successes) / float64(st.Polls)
}

// DiscoverySlot returns the response slot a node picks inside a discovery
// window: a hash of its address and the round nonce, uniform over the
// window. Nodes compute this with one multiply — cheap enough for
// microwatt logic.
func DiscoverySlot(addr byte, nonce uint16, slots int) int {
	h := uint32(addr)*2654435761 + uint32(nonce)*40503
	h ^= h >> 13
	return int(h % uint32(slots))
}

// SimulateDiscovery models one framed-slotted discovery round: nodes pick
// slots via DiscoverySlot; slots with exactly one respondent succeed (the
// reader cannot separate colliding backscatter bursts). It returns the
// discovered addresses. capture, in [0,1), is the probability that a
// two-way collision still decodes (power capture effect), evaluated with
// rng.
func SimulateDiscovery(addrs []byte, nonce uint16, slots int, capture float64, rng *rand.Rand) []byte {
	bySlot := make(map[int][]byte)
	for _, a := range addrs {
		s := DiscoverySlot(a, nonce, slots)
		bySlot[s] = append(bySlot[s], a)
	}
	var found []byte
	for _, group := range bySlot {
		switch {
		case len(group) == 1:
			found = append(found, group[0])
		case len(group) == 2 && rng != nil && rng.Float64() < capture:
			found = append(found, group[rng.Intn(2)])
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i] < found[j] })
	return found
}

// DiscoverAll runs discovery rounds until every address is found or
// maxRounds is exhausted, returning the rounds used and the found set.
func DiscoverAll(addrs []byte, slots int, capture float64, rng *rand.Rand, maxRounds int) (int, []byte) {
	found := make(map[byte]bool)
	var nonce uint16
	rounds := 0
	for ; rounds < maxRounds && len(found) < len(addrs); rounds++ {
		var missing []byte
		for _, a := range addrs {
			if !found[a] {
				missing = append(missing, a)
			}
		}
		nonce++
		for _, a := range SimulateDiscovery(missing, nonce, slots, capture, rng) {
			found[a] = true
		}
	}
	out := make([]byte, 0, len(found))
	for a := range found {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return rounds, out
}
