// Package mac implements the medium access layer of a VAB network: a
// reader-initiated polling protocol over the shared acoustic channel.
//
// Backscatter nodes cannot hear each other (their receivers only detect the
// strong reader downlink), so all coordination flows through the reader: it
// polls nodes one at a time, addressing each by its link-layer address, and
// retries lost rounds with bounded attempts. Broadcast queries elicit
// responses from every powered node and are used for discovery, with a
// framed-slotted backoff resolving collisions (nodes answer in a
// pseudo-random slot derived from their address).
package mac

import (
	"fmt"
	"math/rand"
	"sort"

	"vab/internal/telemetry"
)

// PollPolicy tunes the polling scheduler.
type PollPolicy struct {
	// MaxRetries bounds per-node retransmissions within one cycle.
	MaxRetries int
	// BackoffSlots is the discovery window size in response slots.
	BackoffSlots int
	// DropAfter removes a node from the schedule after this many
	// consecutive failed cycles (0 = never drop). With Probation set the
	// node is quarantined instead of permanently removed.
	DropAfter int

	// Probation replaces permanent drops with quarantine: after DropAfter
	// silent cycles the node leaves the regular schedule but receives
	// single-attempt re-probes at exponentially backed-off intervals
	// (ProbeBackoffBase cycles, doubling up to ProbeBackoffMax). One
	// successful probe restores the node. A transient impairment — a
	// bubble cloud, a brownout while a mooring recharges — thereby costs
	// rounds, not the node; the one-way DropAfter removal remains for
	// operators who prefer it.
	Probation bool
	// ProbeBackoffBase is the first quarantine re-probe interval in
	// cycles (0 → 2).
	ProbeBackoffBase int
	// ProbeBackoffMax caps the re-probe interval in cycles (0 → 16).
	ProbeBackoffMax int
}

// DefaultPollPolicy matches the field campaign: two retries, eight
// discovery slots, nodes dropped after five silent cycles.
func DefaultPollPolicy() PollPolicy {
	return PollPolicy{MaxRetries: 2, BackoffSlots: 8, DropAfter: 5}
}

// probeBase resolves the first re-probe interval.
func (p PollPolicy) probeBase() int {
	if p.ProbeBackoffBase <= 0 {
		return 2
	}
	return p.ProbeBackoffBase
}

// probeMax resolves the re-probe interval cap.
func (p PollPolicy) probeMax() int {
	if p.ProbeBackoffMax <= 0 {
		return 16
	}
	return p.ProbeBackoffMax
}

// Validate reports nonsensical policies.
func (p PollPolicy) Validate() error {
	if p.MaxRetries < 0 {
		return fmt.Errorf("mac: negative retries")
	}
	if p.BackoffSlots < 1 {
		return fmt.Errorf("mac: discovery needs at least one slot")
	}
	if p.DropAfter < 0 {
		return fmt.Errorf("mac: negative drop threshold")
	}
	if p.ProbeBackoffBase < 0 || p.ProbeBackoffMax < 0 {
		return fmt.Errorf("mac: negative probe backoff")
	}
	if p.ProbeBackoffBase > 0 && p.ProbeBackoffMax > 0 && p.ProbeBackoffBase > p.ProbeBackoffMax {
		return fmt.Errorf("mac: probe backoff base %d exceeds max %d", p.ProbeBackoffBase, p.ProbeBackoffMax)
	}
	return nil
}

// RoundResult is the outcome of one poll attempt, as reported by the
// underlying PHY/reader stack.
type RoundResult struct {
	OK      bool
	Payload []byte
	SNRdB   float64
}

// Transceiver abstracts the physical exchange: the scheduler calls Poll
// once per attempt. Implementations wrap core.System (waveform-level) or a
// link-budget sampler (campaign-level).
type Transceiver interface {
	Poll(addr byte) (RoundResult, error)
}

// NodeState tracks scheduler bookkeeping per node.
type NodeState struct {
	Addr         byte
	Polls        int
	Successes    int
	Retries      int
	SilentCycles int
	Dropped      bool
	LastSNRdB    float64

	// Health is an EWMA of per-cycle delivery in [0, 1] (1 = every recent
	// cycle delivered), the score the probation policy keys on.
	Health float64
	// Quarantined marks a node in probation: off the regular schedule,
	// awaiting a backed-off re-probe.
	Quarantined bool
	// QuarantineEntries counts how many times the node entered probation.
	QuarantineEntries int

	probeInterval int // current re-probe backoff, cycles
	nextProbe     int // cycle index of the next re-probe
	quarantinedAt int // cycle index of the latest quarantine entry
}

// Scheduler runs the polling MAC over a set of node addresses.
type Scheduler struct {
	policy PollPolicy
	trx    Transceiver
	nodes  map[byte]*NodeState
	order  []byte
	cycle  int // completed RunCycle count (the probation clock)
	rate   *RateController
	met    macMetrics
}

// macMetrics instruments the polling loop. Zero value = noop.
type macMetrics struct {
	polls       *telemetry.Counter
	delivered   *telemetry.Counter
	retries     *telemetry.Counter
	timeouts    *telemetry.Counter // attempts that returned no frame
	dropped     *telemetry.Counter // nodes removed by the liveness policy
	quarantined *telemetry.Counter // probation entries
	restored    *telemetry.Counter // probation exits via successful probe
	probes      *telemetry.Counter // quarantine re-probe attempts
	liveNodes   *telemetry.Gauge
	pollTime    *telemetry.Histogram
	recoveryLat *telemetry.Histogram // cycles from quarantine entry to restore
}

// Instrument registers MAC metrics in reg and starts recording. Call
// before RunCycle; a nil registry leaves the scheduler uninstrumented.
func (s *Scheduler) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	s.met = macMetrics{
		polls: reg.Counter("vab_mac_polls_total",
			"Poll attempts issued (including retries)."),
		delivered: reg.Counter("vab_mac_deliveries_total",
			"Polls that delivered a frame within the retry budget."),
		retries: reg.Counter("vab_mac_retries_total",
			"Retransmission attempts beyond the first poll."),
		timeouts: reg.Counter("vab_mac_timeouts_total",
			"Poll attempts that elicited no decodable response."),
		dropped: reg.Counter("vab_mac_nodes_dropped_total",
			"Nodes removed from the schedule by the liveness policy."),
		quarantined: reg.Counter("vab_mac_quarantine_entries_total",
			"Nodes placed in probation by the liveness policy."),
		restored: reg.Counter("vab_mac_quarantine_exits_total",
			"Quarantined nodes restored by a successful re-probe."),
		probes: reg.Counter("vab_mac_probes_total",
			"Single-attempt re-probes of quarantined nodes."),
		liveNodes: reg.Gauge("vab_mac_live_nodes",
			"Nodes currently in the polling schedule."),
		pollTime: reg.Histogram("vab_mac_poll_seconds",
			"Wall time of one poll attempt (transceiver round).", nil),
		recoveryLat: reg.Histogram("vab_mac_recovery_cycles",
			"Cycles a node spent quarantined before a probe restored it.",
			telemetry.LinearBuckets(1, 4, 16)),
	}
	s.met.liveNodes.Set(float64(s.liveCount()))
}

// liveCount returns the number of nodes still in the regular schedule
// (neither dropped nor quarantined).
func (s *Scheduler) liveCount() int {
	n := 0
	for _, st := range s.nodes {
		if !st.Dropped && !st.Quarantined {
			n++
		}
	}
	return n
}

// healthAlpha is the EWMA coefficient of the per-node health score.
const healthAlpha = 0.25

// observeHealth folds one cycle outcome into the node's health score.
func observeHealth(st *NodeState, delivered bool) {
	outcome := 0.0
	if delivered {
		outcome = 1
	}
	st.Health = (1-healthAlpha)*st.Health + healthAlpha*outcome
}

// SetRateController attaches a rate controller: every delivered cycle
// feeds Observe with the node's reported SNR and every lost cycle feeds
// ObserveLoss, so sustained impairment steps the link down to a more
// robust chip rate and recovery climbs it back. The scheduler only drives
// the controller; acting on Rate() (rebuilding the PHY) is the
// transceiver owner's job — see core.System.SetChipRate.
func (s *Scheduler) SetRateController(rc *RateController) { s.rate = rc }

// NewScheduler builds a scheduler over the given transceiver.
func NewScheduler(trx Transceiver, policy PollPolicy) (*Scheduler, error) {
	if trx == nil {
		return nil, fmt.Errorf("mac: transceiver required")
	}
	if err := policy.Validate(); err != nil {
		return nil, err
	}
	return &Scheduler{
		policy: policy,
		trx:    trx,
		nodes:  make(map[byte]*NodeState),
	}, nil
}

// AddNode registers a node address for polling. Duplicate adds are no-ops.
func (s *Scheduler) AddNode(addr byte) {
	if _, ok := s.nodes[addr]; ok {
		return
	}
	s.nodes[addr] = &NodeState{Addr: addr, Health: 1}
	s.order = append(s.order, addr)
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	s.met.liveNodes.Set(float64(s.liveCount()))
}

// Nodes returns the bookkeeping for every registered node, ordered by
// address.
func (s *Scheduler) Nodes() []NodeState {
	out := make([]NodeState, 0, len(s.order))
	for _, a := range s.order {
		out = append(out, *s.nodes[a])
	}
	return out
}

// CycleReport summarizes one full polling cycle.
type CycleReport struct {
	Polled    int
	Delivered int
	Retries   int
	Probes    int // quarantine re-probe attempts this cycle
	Payloads  map[byte][]byte
}

// RunCycle polls every live node once (with retries), re-probes any
// quarantined node whose backoff has elapsed, and returns the cycle
// summary.
func (s *Scheduler) RunCycle() (CycleReport, error) {
	rep := CycleReport{Payloads: make(map[byte][]byte)}
	cycle := s.cycle
	s.cycle++
	for _, addr := range s.order {
		st := s.nodes[addr]
		if st.Dropped {
			continue
		}
		if st.Quarantined {
			if err := s.probe(st, cycle, &rep); err != nil {
				return rep, err
			}
			continue
		}
		rep.Polled++
		delivered := false
		var snr float64
		for attempt := 0; attempt <= s.policy.MaxRetries; attempt++ {
			st.Polls++
			s.met.polls.Inc()
			if attempt > 0 {
				st.Retries++
				rep.Retries++
				s.met.retries.Inc()
			}
			sp := telemetry.StartSpan(s.met.pollTime)
			res, err := s.trx.Poll(addr)
			sp.End()
			if err != nil {
				return rep, fmt.Errorf("mac: poll %d: %w", addr, err)
			}
			if res.OK {
				st.Successes++
				st.LastSNRdB = res.SNRdB
				snr = res.SNRdB
				rep.Payloads[addr] = res.Payload
				delivered = true
				break
			}
			s.met.timeouts.Inc()
		}
		observeHealth(st, delivered)
		if s.rate != nil {
			if delivered {
				s.rate.Observe(snr)
			} else {
				s.rate.ObserveLoss()
			}
		}
		if delivered {
			st.SilentCycles = 0
			rep.Delivered++
			s.met.delivered.Inc()
		} else {
			st.SilentCycles++
			if s.policy.DropAfter > 0 && st.SilentCycles >= s.policy.DropAfter {
				if s.policy.Probation {
					st.Quarantined = true
					st.QuarantineEntries++
					st.quarantinedAt = cycle
					st.probeInterval = s.policy.probeBase()
					st.nextProbe = cycle + st.probeInterval
					s.met.quarantined.Inc()
				} else {
					st.Dropped = true
					s.met.dropped.Inc()
				}
				s.met.liveNodes.Set(float64(s.liveCount()))
			}
		}
	}
	return rep, nil
}

// probe runs one single-attempt re-probe of a quarantined node when its
// backoff has elapsed: success restores the node to the schedule, failure
// doubles the backoff up to the policy cap. Probes deliberately skip the
// retry budget — a node that is still down should cost the cycle as
// little airtime as possible.
func (s *Scheduler) probe(st *NodeState, cycle int, rep *CycleReport) error {
	if cycle < st.nextProbe {
		return nil
	}
	rep.Polled++
	rep.Probes++
	st.Polls++
	s.met.polls.Inc()
	s.met.probes.Inc()
	sp := telemetry.StartSpan(s.met.pollTime)
	res, err := s.trx.Poll(st.Addr)
	sp.End()
	if err != nil {
		return fmt.Errorf("mac: probe %d: %w", st.Addr, err)
	}
	if !res.OK {
		s.met.timeouts.Inc()
		observeHealth(st, false)
		st.probeInterval *= 2
		if max := s.policy.probeMax(); st.probeInterval > max {
			st.probeInterval = max
		}
		st.nextProbe = cycle + st.probeInterval
		return nil
	}
	st.Quarantined = false
	st.SilentCycles = 0
	st.Successes++
	st.LastSNRdB = res.SNRdB
	observeHealth(st, true)
	rep.Payloads[st.Addr] = res.Payload
	rep.Delivered++
	s.met.delivered.Inc()
	s.met.restored.Inc()
	s.met.recoveryLat.Observe(float64(cycle - st.quarantinedAt + 1))
	s.met.liveNodes.Set(float64(s.liveCount()))
	return nil
}

// DeliveryRatio returns delivered/polled across all completed cycles for a
// node, or 0 if it was never polled.
func (s *Scheduler) DeliveryRatio(addr byte) float64 {
	st, ok := s.nodes[addr]
	if !ok || st.Polls == 0 {
		return 0
	}
	return float64(st.Successes) / float64(st.Polls)
}

// DiscoverySlot returns the response slot a node picks inside a discovery
// window: a hash of its address and the round nonce, uniform over the
// window. Nodes compute this with one multiply — cheap enough for
// microwatt logic.
func DiscoverySlot(addr byte, nonce uint16, slots int) int {
	h := uint32(addr)*2654435761 + uint32(nonce)*40503
	h ^= h >> 13
	return int(h % uint32(slots))
}

// SimulateDiscovery models one framed-slotted discovery round: nodes pick
// slots via DiscoverySlot; slots with exactly one respondent succeed (the
// reader cannot separate colliding backscatter bursts). It returns the
// discovered addresses. capture, in [0,1), is the probability that a
// two-way collision still decodes (power capture effect), evaluated with
// rng.
func SimulateDiscovery(addrs []byte, nonce uint16, slots int, capture float64, rng *rand.Rand) []byte {
	bySlot := make(map[int][]byte)
	for _, a := range addrs {
		s := DiscoverySlot(a, nonce, slots)
		bySlot[s] = append(bySlot[s], a)
	}
	var found []byte
	for _, group := range bySlot {
		switch {
		case len(group) == 1:
			found = append(found, group[0])
		case len(group) == 2 && rng != nil && rng.Float64() < capture:
			found = append(found, group[rng.Intn(2)])
		}
	}
	sort.Slice(found, func(i, j int) bool { return found[i] < found[j] })
	return found
}

// DiscoverAll runs discovery rounds until every address is found or
// maxRounds is exhausted, returning the rounds used and the found set.
func DiscoverAll(addrs []byte, slots int, capture float64, rng *rand.Rand, maxRounds int) (int, []byte) {
	found := make(map[byte]bool)
	var nonce uint16
	rounds := 0
	for ; rounds < maxRounds && len(found) < len(addrs); rounds++ {
		var missing []byte
		for _, a := range addrs {
			if !found[a] {
				missing = append(missing, a)
			}
		}
		nonce++
		for _, a := range SimulateDiscovery(missing, nonce, slots, capture, rng) {
			found[a] = true
		}
	}
	out := make([]byte, 0, len(found))
	for a := range found {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return rounds, out
}
