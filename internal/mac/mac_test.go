package mac

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

// fakeTrx scripts per-address outcomes: each Poll consumes the next entry
// of the node's outcome list (last entry repeats).
type fakeTrx struct {
	outcomes map[byte][]bool
	calls    map[byte]int
	err      error
}

func newFakeTrx() *fakeTrx {
	return &fakeTrx{outcomes: map[byte][]bool{}, calls: map[byte]int{}}
}

func (f *fakeTrx) Poll(addr byte) (RoundResult, error) {
	if f.err != nil {
		return RoundResult{}, f.err
	}
	seq := f.outcomes[addr]
	i := f.calls[addr]
	f.calls[addr]++
	ok := false
	if len(seq) > 0 {
		if i >= len(seq) {
			i = len(seq) - 1
		}
		ok = seq[i]
	}
	return RoundResult{OK: ok, Payload: []byte{addr}, SNRdB: 12}, nil
}

func TestSchedulerBasics(t *testing.T) {
	trx := newFakeTrx()
	trx.outcomes[1] = []bool{true}
	trx.outcomes[2] = []bool{true}
	s, err := NewScheduler(trx, DefaultPollPolicy())
	if err != nil {
		t.Fatal(err)
	}
	s.AddNode(2)
	s.AddNode(1)
	s.AddNode(1) // duplicate ignored
	rep, err := s.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Polled != 2 || rep.Delivered != 2 || rep.Retries != 0 {
		t.Errorf("report %+v", rep)
	}
	if string(rep.Payloads[1]) != "\x01" {
		t.Error("payload routing wrong")
	}
	nodes := s.Nodes()
	if len(nodes) != 2 || nodes[0].Addr != 1 || nodes[1].Addr != 2 {
		t.Errorf("nodes %+v", nodes)
	}
	if r := s.DeliveryRatio(1); r != 1 {
		t.Errorf("delivery ratio %v", r)
	}
	if s.DeliveryRatio(99) != 0 {
		t.Error("unknown node should report 0")
	}
}

func TestSchedulerRetries(t *testing.T) {
	trx := newFakeTrx()
	trx.outcomes[5] = []bool{false, false, true} // succeeds on 3rd attempt
	s, _ := NewScheduler(trx, PollPolicy{MaxRetries: 2, BackoffSlots: 4})
	s.AddNode(5)
	rep, err := s.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Delivered != 1 || rep.Retries != 2 {
		t.Errorf("report %+v", rep)
	}
	if st := s.Nodes()[0]; st.Polls != 3 || st.Successes != 1 {
		t.Errorf("state %+v", st)
	}
}

func TestSchedulerDropsDeadNodes(t *testing.T) {
	trx := newFakeTrx()
	trx.outcomes[9] = []bool{false}
	s, _ := NewScheduler(trx, PollPolicy{MaxRetries: 0, BackoffSlots: 4, DropAfter: 2})
	s.AddNode(9)
	for i := 0; i < 3; i++ {
		if _, err := s.RunCycle(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Nodes()[0]
	if !st.Dropped {
		t.Fatal("dead node not dropped")
	}
	if st.Polls != 2 {
		t.Errorf("dropped node polled %d times, want 2", st.Polls)
	}
	rep, _ := s.RunCycle()
	if rep.Polled != 0 {
		t.Error("dropped node still polled")
	}
}

func TestSchedulerPropagatesErrors(t *testing.T) {
	trx := newFakeTrx()
	trx.err = errors.New("hydrophone unplugged")
	s, _ := NewScheduler(trx, DefaultPollPolicy())
	s.AddNode(1)
	if _, err := s.RunCycle(); err == nil {
		t.Error("transport error swallowed")
	}
}

func TestSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(nil, DefaultPollPolicy()); err == nil {
		t.Error("nil transceiver accepted")
	}
	bad := []PollPolicy{
		{MaxRetries: -1, BackoffSlots: 4},
		{MaxRetries: 0, BackoffSlots: 0},
		{MaxRetries: 0, BackoffSlots: 4, DropAfter: -1},
	}
	for i, p := range bad {
		if _, err := NewScheduler(newFakeTrx(), p); err == nil {
			t.Errorf("policy %d accepted", i)
		}
	}
}

func TestDiscoverySlotRangeProperty(t *testing.T) {
	f := func(addr byte, nonce uint16, s uint8) bool {
		slots := int(s)%16 + 1
		got := DiscoverySlot(addr, nonce, slots)
		return got >= 0 && got < slots
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDiscoverySlotVariesWithNonce(t *testing.T) {
	// A node must not be stuck in the same slot forever, or two colliding
	// nodes would never separate.
	seen := map[int]bool{}
	for nonce := uint16(0); nonce < 32; nonce++ {
		seen[DiscoverySlot(7, nonce, 8)] = true
	}
	if len(seen) < 4 {
		t.Errorf("address 7 only ever used %d slots", len(seen))
	}
}

func TestSimulateDiscoverySingleton(t *testing.T) {
	got := SimulateDiscovery([]byte{42}, 1, 8, 0, nil)
	if len(got) != 1 || got[0] != 42 {
		t.Errorf("lone node not discovered: %v", got)
	}
}

func TestSimulateDiscoveryCollisions(t *testing.T) {
	// Find two addresses that collide in a known window, then check
	// neither is returned without capture.
	slots := 4
	nonce := uint16(3)
	var a, b byte
	found := false
	for x := byte(1); x < 100 && !found; x++ {
		for y := x + 1; y < 100; y++ {
			if DiscoverySlot(x, nonce, slots) == DiscoverySlot(y, nonce, slots) {
				a, b = x, y
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no colliding pair found (hash degenerate?)")
	}
	got := SimulateDiscovery([]byte{a, b}, nonce, slots, 0, rand.New(rand.NewSource(1)))
	if len(got) != 0 {
		t.Errorf("collision should erase both: %v", got)
	}
	// With certain capture, exactly one survives.
	got = SimulateDiscovery([]byte{a, b}, nonce, slots, 1.0, rand.New(rand.NewSource(1)))
	if len(got) != 1 {
		t.Errorf("full capture should yield one winner: %v", got)
	}
}

func TestDiscoverAllConverges(t *testing.T) {
	addrs := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	rng := rand.New(rand.NewSource(2))
	rounds, found := DiscoverAll(addrs, 8, 0, rng, 100)
	if len(found) != len(addrs) {
		t.Fatalf("discovered %d/%d nodes in %d rounds", len(found), len(addrs), rounds)
	}
	if rounds > 20 {
		t.Errorf("discovery took %d rounds for 10 nodes in 8 slots", rounds)
	}
	for i, a := range found {
		if a != addrs[i] {
			t.Errorf("found[%d] = %d", i, a)
		}
	}
}

func TestDiscoverAllRespectsBudget(t *testing.T) {
	addrs := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	rounds, found := DiscoverAll(addrs, 2, 0, rand.New(rand.NewSource(3)), 1)
	if rounds != 1 {
		t.Errorf("rounds = %d", rounds)
	}
	if len(found) >= len(addrs) {
		t.Error("8 nodes in 2 slots cannot all resolve in one round")
	}
}
