package mac

import (
	"fmt"
	"math"

	"vab/internal/telemetry"
)

// RateController adapts the link's chip rate to the observed channel: the
// paper evaluates throughput at fixed rates (its E7 axis); a deployed
// network instead walks that trade-off automatically. Physics of the
// backscatter link: the detection bin is one chip wide, so halving the chip
// rate buys 3 dB of tone SNR; the controller climbs to the fastest rate
// whose SNR still clears the requirement with margin, with hysteresis so
// fading wiggle doesn't flap the rate.
type RateController struct {
	// Rates are the available chip rates in ascending order.
	Rates []float64
	// RequiredSNRdB is the tone SNR needed at the *lowest* rate for the
	// target BER (the per-rate requirement adds 3 dB per doubling).
	RequiredSNRdB float64
	// UpMarginDB is the extra headroom demanded before stepping up
	// (default 6), DownMarginDB the deficit tolerated before stepping
	// down (default 1). UpMargin > DownMargin gives hysteresis.
	UpMarginDB   float64
	DownMarginDB float64
	// Smoothing is the EWMA coefficient on SNR observations in (0, 1];
	// 1 reacts instantly, small values average long (default 0.3).
	Smoothing float64

	idx    int
	ewmaDB float64
	primed bool
	met    rateMetrics
}

// rateMetrics instruments rate-controller decisions. Zero value = noop.
type rateMetrics struct {
	stepsUp   *telemetry.Counter
	stepsDown *telemetry.Counter
	lossSteps *telemetry.Counter
	chipRate  *telemetry.Gauge
	snrEWMA   *telemetry.Gauge
}

// Instrument registers rate-adaptation metrics in reg and starts
// recording. A nil registry leaves the controller uninstrumented.
func (rc *RateController) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	rc.met = rateMetrics{
		stepsUp: reg.Counter("vab_mac_rate_steps_up_total",
			"Rate-controller steps to a faster chip rate."),
		stepsDown: reg.Counter("vab_mac_rate_steps_down_total",
			"Rate-controller steps to a slower chip rate on SNR deficit."),
		lossSteps: reg.Counter("vab_mac_rate_loss_steps_total",
			"Immediate step-downs triggered by a lost round."),
		chipRate: reg.Gauge("vab_mac_rate_chips_per_second",
			"Currently selected chip rate."),
		snrEWMA: reg.Gauge("vab_mac_rate_snr_ewma_db",
			"Smoothed SNR belief normalized to the lowest rate, dB."),
	}
	rc.met.chipRate.Set(rc.Rate())
}

// NewRateController validates and builds a controller starting at the
// lowest (most robust) rate.
func NewRateController(rates []float64, requiredSNRdB float64) (*RateController, error) {
	if len(rates) < 2 {
		return nil, fmt.Errorf("mac: rate adaptation needs at least 2 rates, got %d", len(rates))
	}
	for i := 1; i < len(rates); i++ {
		if rates[i] <= rates[i-1] {
			return nil, fmt.Errorf("mac: rates must ascend, got %v", rates)
		}
	}
	if rates[0] <= 0 {
		return nil, fmt.Errorf("mac: rates must be positive")
	}
	return &RateController{
		Rates:         append([]float64(nil), rates...),
		RequiredSNRdB: requiredSNRdB,
		UpMarginDB:    6,
		DownMarginDB:  1,
		Smoothing:     0.3,
	}, nil
}

// Rate returns the currently selected chip rate.
func (rc *RateController) Rate() float64 { return rc.Rates[rc.idx] }

// requiredAt returns the tone SNR requirement at rate index i: the base
// requirement plus the noise-bandwidth penalty relative to the lowest rate.
func (rc *RateController) requiredAt(i int) float64 {
	return rc.RequiredSNRdB + 10*math.Log10(rc.Rates[i]/rc.Rates[0])
}

// Observe feeds one per-round tone SNR measurement (dB, at the *current*
// rate) and returns the rate to use for the next round. A failed round
// (no decode) should be reported with ObserveLoss instead.
func (rc *RateController) Observe(snrDB float64) float64 {
	// Normalize the observation to the lowest rate before smoothing:
	// measured at rate idx, the equivalent SNR at rate 0 is higher by the
	// bandwidth ratio. Smoothing raw values across rate changes would mix
	// incomparable measurements.
	atBase := snrDB + 10*math.Log10(rc.Rates[rc.idx]/rc.Rates[0])
	if !rc.primed {
		rc.ewmaDB = atBase
		rc.primed = true
	} else {
		a := rc.Smoothing
		rc.ewmaDB = a*atBase + (1-a)*rc.ewmaDB
	}

	for rc.idx+1 < len(rc.Rates) &&
		rc.ewmaDB >= rc.requiredAt(rc.idx+1)+rc.UpMarginDB {
		rc.idx++
		rc.met.stepsUp.Inc()
	}
	for rc.idx > 0 && rc.ewmaDB < rc.requiredAt(rc.idx)+rc.DownMarginDB {
		rc.idx--
		rc.met.stepsDown.Inc()
	}
	rc.met.chipRate.Set(rc.Rate())
	rc.met.snrEWMA.Set(rc.ewmaDB)
	return rc.Rate()
}

// ObserveLoss reports a failed round: the controller immediately steps down
// one rate (multiplicative decrease) and discounts its SNR belief.
func (rc *RateController) ObserveLoss() float64 {
	if rc.idx > 0 {
		rc.idx--
		rc.met.lossSteps.Inc()
	}
	if rc.primed {
		rc.ewmaDB -= 3
		rc.met.snrEWMA.Set(rc.ewmaDB)
	}
	rc.met.chipRate.Set(rc.Rate())
	return rc.Rate()
}
