package mac

import (
	"math"
	"testing"
)

// TestProbationQuarantineAndRestore walks the full probation arc: DropAfter
// silent cycles quarantine the node instead of removing it, re-probes run
// single-attempt at exponentially backed-off intervals, and a successful
// probe restores the node to the regular schedule.
func TestProbationQuarantineAndRestore(t *testing.T) {
	trx := newFakeTrx()
	// Cycles 0-2 fail (→ quarantine), probe at cycle 4 fails (→ backoff
	// doubles), probe at cycle 8 succeeds (→ restore).
	trx.outcomes[7] = []bool{false, false, false, false, true}
	s, err := NewScheduler(trx, PollPolicy{
		MaxRetries: 0, BackoffSlots: 4, DropAfter: 3,
		Probation: true, ProbeBackoffBase: 2, ProbeBackoffMax: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.AddNode(7)

	for i := 0; i < 3; i++ {
		if _, err := s.RunCycle(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Nodes()[0]
	if !st.Quarantined || st.Dropped {
		t.Fatalf("after %d silent cycles: quarantined=%v dropped=%v", 3, st.Quarantined, st.Dropped)
	}
	if st.QuarantineEntries != 1 {
		t.Fatalf("QuarantineEntries = %d, want 1", st.QuarantineEntries)
	}

	// Cycle 3: backoff not yet elapsed — no airtime spent at all.
	rep, _ := s.RunCycle()
	if rep.Polled != 0 || rep.Probes != 0 {
		t.Fatalf("cycle 3 touched the quarantined node: %+v", rep)
	}

	// Cycle 4: first probe, scripted to fail → interval doubles to 4.
	rep, _ = s.RunCycle()
	if rep.Probes != 1 || rep.Delivered != 0 {
		t.Fatalf("cycle 4 report %+v, want one failed probe", rep)
	}
	if !s.Nodes()[0].Quarantined {
		t.Fatal("failed probe released the node")
	}

	// Cycles 5-7: inside the doubled backoff — silent.
	for i := 5; i < 8; i++ {
		if rep, _ = s.RunCycle(); rep.Probes != 0 {
			t.Fatalf("cycle %d probed during backoff", i)
		}
	}

	// Cycle 8: probe succeeds → node restored and delivering.
	rep, _ = s.RunCycle()
	if rep.Probes != 1 || rep.Delivered != 1 {
		t.Fatalf("cycle 8 report %+v, want a restoring probe", rep)
	}
	st = s.Nodes()[0]
	if st.Quarantined || st.Dropped || st.SilentCycles != 0 {
		t.Fatalf("restored state %+v", st)
	}
	if string(rep.Payloads[7]) != "\x07" {
		t.Fatal("restoring probe dropped the payload")
	}

	// Back on the regular schedule.
	rep, _ = s.RunCycle()
	if rep.Polled != 1 || rep.Delivered != 1 || rep.Probes != 0 {
		t.Fatalf("post-restore cycle %+v", rep)
	}

	// Airtime audit: 3 scheduled polls + 2 probes + 1 post-restore poll.
	if trx.calls[7] != 6 {
		t.Fatalf("transceiver saw %d polls, want 6", trx.calls[7])
	}
}

// TestProbationBackoffCap verifies the re-probe interval doubles and then
// saturates at ProbeBackoffMax, never going unbounded and never busy-polling.
func TestProbationBackoffCap(t *testing.T) {
	trx := newFakeTrx()
	trx.outcomes[4] = []bool{false} // permanently dead
	s, _ := NewScheduler(trx, PollPolicy{
		MaxRetries: 0, BackoffSlots: 4, DropAfter: 1,
		Probation: true, ProbeBackoffBase: 2, ProbeBackoffMax: 4,
	})
	s.AddNode(4)

	// Cycle 0 quarantines (interval 2, next probe at 2). Then probes land
	// at 2 (→ interval 4), 6 (→ capped at 4), 10, 14, ...
	want := map[int]bool{2: true, 6: true, 10: true, 14: true}
	for cycle := 0; cycle < 16; cycle++ {
		rep, err := s.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		probed := rep.Probes == 1
		if cycle > 0 && probed != want[cycle] {
			t.Fatalf("cycle %d: probed=%v, want %v", cycle, probed, want[cycle])
		}
	}
	if st := s.Nodes()[0]; !st.Quarantined || st.Dropped {
		t.Fatalf("dead node state %+v, want still quarantined", st)
	}
}

// TestHealthEWMA checks the per-node health score tracks delivery with the
// documented smoothing: failures bleed it toward 0, successes pull it back.
func TestHealthEWMA(t *testing.T) {
	trx := newFakeTrx()
	trx.outcomes[2] = []bool{false, false, true}
	s, _ := NewScheduler(trx, PollPolicy{MaxRetries: 0, BackoffSlots: 4})
	s.AddNode(2)

	want := 1.0
	for _, outcome := range []float64{0, 0, 1, 1} {
		if _, err := s.RunCycle(); err != nil {
			t.Fatal(err)
		}
		want = (1-healthAlpha)*want + healthAlpha*outcome
		if got := s.Nodes()[0].Health; math.Abs(got-want) > 1e-12 {
			t.Fatalf("health %.6f, want %.6f", got, want)
		}
	}
}

// Without probation, the same silent streak removes the node for good —
// the legacy one-way behavior the probation flag exists to replace.
func TestProbationOffStillDrops(t *testing.T) {
	trx := newFakeTrx()
	trx.outcomes[9] = []bool{false, false, false, true} // recovers too late
	s, _ := NewScheduler(trx, PollPolicy{MaxRetries: 0, BackoffSlots: 4, DropAfter: 3})
	s.AddNode(9)
	for i := 0; i < 10; i++ {
		if _, err := s.RunCycle(); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Nodes()[0]
	if !st.Dropped || st.Quarantined {
		t.Fatalf("state %+v, want permanently dropped", st)
	}
	if trx.calls[9] != 3 {
		t.Fatalf("dropped node polled %d times, want 3", trx.calls[9])
	}
}

func TestPollPolicyValidateProbation(t *testing.T) {
	bad := []PollPolicy{
		{BackoffSlots: 4, ProbeBackoffBase: -1},
		{BackoffSlots: 4, ProbeBackoffMax: -2},
		{BackoffSlots: 4, ProbeBackoffBase: 8, ProbeBackoffMax: 4},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: policy %+v accepted", i, p)
		}
	}
	good := PollPolicy{BackoffSlots: 4, Probation: true, ProbeBackoffBase: 2, ProbeBackoffMax: 16}
	if err := good.Validate(); err != nil {
		t.Errorf("valid probation policy rejected: %v", err)
	}
}
