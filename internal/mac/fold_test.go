package mac

import (
	"testing"
)

// scriptTrx replays a fixed per-address outcome schedule: outcomes[addr][i]
// is the result of the i-th poll of addr (false = timeout). Exhausted
// scripts keep returning the last entry.
type scriptTrx struct {
	outcomes map[byte][]bool
	calls    map[byte]int
}

func (t *scriptTrx) Poll(addr byte) (RoundResult, error) {
	sc := t.outcomes[addr]
	i := t.calls[addr]
	t.calls[addr]++
	ok := false
	if len(sc) > 0 {
		if i >= len(sc) {
			i = len(sc) - 1
		}
		ok = sc[i]
	}
	if !ok {
		return RoundResult{}, nil
	}
	return RoundResult{OK: true, Payload: []byte{addr}, SNRdB: 12}, nil
}

// TestFoldPrimitivesMatchScheduler drives a Scheduler through a
// quarantine/restore trajectory and replays the same outcome sequence
// through the exported fold primitives directly; the two node-state
// evolutions must agree field for field. This is the contract the
// link-abstraction tier relies on: calling the primitives IS running the
// MAC decision phase.
func TestFoldPrimitivesMatchScheduler(t *testing.T) {
	policy := PollPolicy{
		MaxRetries: 0, BackoffSlots: 8, DropAfter: 2,
		Probation: true, ProbeBackoffBase: 2, ProbeBackoffMax: 8,
	}
	// Node 7: delivers twice, goes silent for 4 polls (2 cycles → quarantine,
	// then probes fail twice), then answers its next probe and stays up.
	script := []bool{true, true, false, false, false, false, true, true, true, true}
	trx := &scriptTrx{outcomes: map[byte][]bool{7: script}, calls: map[byte]int{}}
	sched, err := NewScheduler(trx, policy)
	if err != nil {
		t.Fatal(err)
	}
	sched.AddNode(7)

	// Shadow state evolved through the fold primitives only.
	shadow := NodeState{Addr: 7, Health: 1}
	si := 0 // script cursor for the shadow run

	const cycles = 20
	for c := 0; c < cycles; c++ {
		if _, err := sched.RunCycle(); err != nil {
			t.Fatal(err)
		}

		// Shadow decision phase: same schedule the Scheduler computes.
		switch {
		case shadow.Dropped:
		case shadow.Quarantined:
			if shadow.ProbeDue(c) {
				shadow.Polls++
				ok := script[min(si, len(script)-1)]
				si++
				if ok {
					FoldDelivered(&shadow, 12)
					shadow.Restore(c)
				} else {
					policy.FoldProbeFailure(&shadow, c)
				}
			}
		default:
			shadow.Polls++
			ok := script[min(si, len(script)-1)]
			si++
			if ok {
				FoldDelivered(&shadow, 12)
			} else {
				policy.FoldPollFailure(&shadow, c)
			}
		}

		got := sched.Nodes()[0]
		if got != shadow {
			t.Fatalf("cycle %d: scheduler state %+v != fold-primitive state %+v", c, got, shadow)
		}
	}
	if shadow.QuarantineEntries != 1 || shadow.Quarantined {
		t.Fatalf("trajectory did not exercise quarantine+restore: %+v", shadow)
	}
}

// TestFoldPollFailureTransitions pins the liveness transitions.
func TestFoldPollFailureTransitions(t *testing.T) {
	p := PollPolicy{MaxRetries: 0, BackoffSlots: 8, DropAfter: 2, Probation: true}
	st := NodeState{Addr: 1, Health: 1}
	if ch := p.FoldPollFailure(&st, 0); ch != LivenessNone {
		t.Fatalf("first silent cycle: got %v, want LivenessNone", ch)
	}
	if ch := p.FoldPollFailure(&st, 1); ch != LivenessQuarantined {
		t.Fatalf("second silent cycle: got %v, want LivenessQuarantined", ch)
	}
	if !st.ProbeDue(1 + st.nextProbe - st.quarantinedAt) {
		t.Fatal("probe not due at nextProbe")
	}

	drop := PollPolicy{MaxRetries: 0, BackoffSlots: 8, DropAfter: 1}
	st2 := NodeState{Addr: 2, Health: 1}
	if ch := drop.FoldPollFailure(&st2, 0); ch != LivenessDropped || !st2.Dropped {
		t.Fatalf("drop policy: got %v dropped=%v", ch, st2.Dropped)
	}
}
