package mac

import (
	"testing"

	"vab/internal/telemetry"
)

// flakyTrx fails every poll until attempt n, then succeeds.
type flakyTrx struct {
	calls     int
	failUntil int
}

func (f *flakyTrx) Poll(addr byte) (RoundResult, error) {
	f.calls++
	if f.calls <= f.failUntil {
		return RoundResult{}, nil
	}
	return RoundResult{OK: true, Payload: []byte{addr}, SNRdB: 12}, nil
}

func TestSchedulerMetrics(t *testing.T) {
	trx := &flakyTrx{failUntil: 2}
	s, err := NewScheduler(trx, PollPolicy{MaxRetries: 2, BackoffSlots: 4})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	s.Instrument(reg)
	s.AddNode(1)
	if _, err := s.RunCycle(); err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, snap := range reg.Snapshot() {
		got[snap.Name] = snap.Value
	}
	// Two timeouts, then the third attempt delivers.
	for name, want := range map[string]float64{
		"vab_mac_polls_total":      3,
		"vab_mac_retries_total":    2,
		"vab_mac_timeouts_total":   2,
		"vab_mac_deliveries_total": 1,
		"vab_mac_live_nodes":       1,
	} {
		if got[name] != want {
			t.Errorf("%s = %g, want %g", name, got[name], want)
		}
	}
}

func TestSchedulerDropMetric(t *testing.T) {
	trx := &flakyTrx{failUntil: 1 << 30} // never succeeds
	s, err := NewScheduler(trx, PollPolicy{MaxRetries: 0, BackoffSlots: 4, DropAfter: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	s.Instrument(reg)
	s.AddNode(1)
	for i := 0; i < 3; i++ {
		if _, err := s.RunCycle(); err != nil {
			t.Fatal(err)
		}
	}
	got := map[string]float64{}
	for _, snap := range reg.Snapshot() {
		got[snap.Name] = snap.Value
	}
	if got["vab_mac_nodes_dropped_total"] != 1 {
		t.Errorf("dropped_total = %g, want 1", got["vab_mac_nodes_dropped_total"])
	}
	if got["vab_mac_live_nodes"] != 0 {
		t.Errorf("live_nodes = %g, want 0", got["vab_mac_live_nodes"])
	}
}

func TestRateControllerMetrics(t *testing.T) {
	rc, err := NewRateController([]float64{250, 500, 1000}, 6)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	rc.Instrument(reg)
	rc.Smoothing = 1 // react instantly so the test is deterministic
	rc.Observe(40)   // plenty of SNR: climb to the top rate (two steps up)
	rc.ObserveLoss() // lost round: one forced step down
	got := map[string]float64{}
	for _, snap := range reg.Snapshot() {
		got[snap.Name] = snap.Value
	}
	if got["vab_mac_rate_steps_up_total"] != 2 {
		t.Errorf("steps_up = %g, want 2", got["vab_mac_rate_steps_up_total"])
	}
	if got["vab_mac_rate_loss_steps_total"] != 1 {
		t.Errorf("loss_steps = %g, want 1", got["vab_mac_rate_loss_steps_total"])
	}
	if got["vab_mac_rate_chips_per_second"] != rc.Rate() {
		t.Errorf("chip rate gauge %g != %g", got["vab_mac_rate_chips_per_second"], rc.Rate())
	}
}

// TestUninstrumentedSchedulerIsNoop pins the default-off contract at the
// MAC layer.
func TestUninstrumentedSchedulerIsNoop(t *testing.T) {
	trx := &flakyTrx{}
	s, err := NewScheduler(trx, DefaultPollPolicy())
	if err != nil {
		t.Fatal(err)
	}
	s.Instrument(nil) // explicit nil must stay noop
	s.AddNode(9)
	if _, err := s.RunCycle(); err != nil {
		t.Fatal(err)
	}
}
