package mac

// Struct-of-arrays fold state.
//
// NodeState is the right layout for a waveform scheduler polling tens of
// nodes: one struct per node, mutated in place. At fleet scale (10⁵–10⁶
// abstract nodes per cycle, internal/linksim) the same layout becomes the
// bottleneck — every fold-phase transition touches a ~100-byte struct, so
// a cycle's serial fold drags two cache lines per node through the cache
// even though it reads a handful of fields. NodeColumns is the same state
// as parallel arrays, split into the *hot* columns the fold phase and the
// decision phase stream (health, silent-cycle count, liveness flags,
// probe schedule) and the *cold* columns only reports materialize
// (cumulative counters, last SNR, quarantine provenance).
//
// The transitions below mirror fold.go's primitives field for field —
// FoldDeliveredAt ↔ FoldDelivered, FoldPollFailureAt ↔ FoldPollFailure,
// and so on — and share the scalar health EWMA (foldHealth) with the
// NodeState path, so a fleet folding through columns makes bit-identical
// decisions to a scheduler folding through structs. TestColumnsMatchFold
// pins the parity over randomized outcome sequences, and the
// link-abstraction tier's TestFleetMatchesMacScheduler pins it end to end
// against a live Scheduler.
//
// Counters are int32: a single node would need 2³¹ polls to overflow —
// about 68 years of one-second cycles — while the narrower columns keep a
// million-node fleet's hot state inside ~20 MB.

// Liveness flag bits of NodeColumns.Flags.
const (
	// FlagQuarantined marks a node in probation (NodeState.Quarantined).
	FlagQuarantined uint8 = 1 << iota
	// FlagDropped marks a permanently removed node (NodeState.Dropped).
	FlagDropped
)

// NodeColumns holds per-node scheduler bookkeeping as struct-of-arrays,
// indexed by a dense node index the owner assigns (the link-abstraction
// tier uses its fleet node index).
type NodeColumns struct {
	// Hot columns: read or written by every fold-phase transition and by
	// the decision phase's liveness scan.
	Health        []float64 // delivery EWMA in [0, 1] (NodeState.Health)
	SilentCycles  []int32   // consecutive failed cycles
	Flags         []uint8   // FlagQuarantined | FlagDropped
	ProbeInterval []int32   // current re-probe backoff, cycles
	NextProbe     []int32   // cycle index of the next re-probe

	// Cold columns: cumulative statistics reports materialize.
	Polls             []int32
	Successes         []int32
	Retries           []int32
	QuarantineEntries []int32
	QuarantinedAt     []int32
	LastSNRdB         []float64
	Addr              []byte
}

// NewNodeColumns allocates columns for n nodes, each initialized exactly
// as Scheduler.AddNode initializes a NodeState: health 1, everything else
// zero. Addresses are left 0 for the owner to assign.
func NewNodeColumns(n int) *NodeColumns {
	c := &NodeColumns{
		Health:            make([]float64, n),
		SilentCycles:      make([]int32, n),
		Flags:             make([]uint8, n),
		ProbeInterval:     make([]int32, n),
		NextProbe:         make([]int32, n),
		Polls:             make([]int32, n),
		Successes:         make([]int32, n),
		Retries:           make([]int32, n),
		QuarantineEntries: make([]int32, n),
		QuarantinedAt:     make([]int32, n),
		LastSNRdB:         make([]float64, n),
		Addr:              make([]byte, n),
	}
	for i := range c.Health {
		c.Health[i] = 1
	}
	return c
}

// Len returns the node count.
func (c *NodeColumns) Len() int { return len(c.Health) }

// Live reports whether node i is on the regular schedule (neither
// quarantined nor dropped).
func (c *NodeColumns) Live(i int) bool { return c.Flags[i] == 0 }

// Quarantined reports whether node i is in probation.
func (c *NodeColumns) Quarantined(i int) bool { return c.Flags[i]&FlagQuarantined != 0 }

// Dropped reports whether node i was permanently removed.
func (c *NodeColumns) Dropped(i int) bool { return c.Flags[i]&FlagDropped != 0 }

// FoldDeliveredAt is FoldDelivered over the columnar layout.
func (c *NodeColumns) FoldDeliveredAt(i int, snrDB float64) {
	c.Successes[i]++
	c.LastSNRdB[i] = snrDB
	c.SilentCycles[i] = 0
	c.Health[i] = foldHealth(c.Health[i], true)
}

// RestoreAt is (*NodeState).Restore over the columnar layout: quarantine
// exit after a successful re-probe, returning the recovery latency.
func (c *NodeColumns) RestoreAt(i, cycle int) int {
	c.Flags[i] &^= FlagQuarantined
	return cycle - int(c.QuarantinedAt[i]) + 1
}

// FoldProbeFailureAt is PollPolicy.FoldProbeFailure over the columnar
// layout: health decay plus the doubled, capped re-probe backoff.
func (p PollPolicy) FoldProbeFailureAt(c *NodeColumns, i, cycle int) {
	c.Health[i] = foldHealth(c.Health[i], false)
	iv := c.ProbeInterval[i] * 2
	if max := int32(p.probeMax()); iv > max {
		iv = max
	}
	c.ProbeInterval[i] = iv
	c.NextProbe[i] = int32(cycle) + iv
}

// FoldPollFailureAt is PollPolicy.FoldPollFailure over the columnar
// layout: the silent cycle is counted and the liveness policy applied.
func (p PollPolicy) FoldPollFailureAt(c *NodeColumns, i, cycle int) LivenessChange {
	c.Health[i] = foldHealth(c.Health[i], false)
	c.SilentCycles[i]++
	if p.DropAfter > 0 && int(c.SilentCycles[i]) >= p.DropAfter {
		if p.Probation {
			c.Flags[i] |= FlagQuarantined
			c.QuarantineEntries[i]++
			c.QuarantinedAt[i] = int32(cycle)
			c.ProbeInterval[i] = int32(p.probeBase())
			c.NextProbe[i] = int32(cycle) + c.ProbeInterval[i]
			return LivenessQuarantined
		}
		c.Flags[i] |= FlagDropped
		return LivenessDropped
	}
	return LivenessNone
}

// ProbeDueAt is (*NodeState).ProbeDue over the columnar layout.
func (c *NodeColumns) ProbeDueAt(i, cycle int) bool {
	return c.Flags[i]&FlagQuarantined != 0 && int32(cycle) >= c.NextProbe[i]
}

// NextProbeAt returns node i's next scheduled re-probe cycle (meaningful
// only while quarantined).
func (c *NodeColumns) NextProbeAt(i int) int { return int(c.NextProbe[i]) }

// State materializes node i as a NodeState, for reports and for parity
// checks against struct-folding schedulers.
func (c *NodeColumns) State(i int) NodeState {
	return NodeState{
		Addr:              c.Addr[i],
		Polls:             int(c.Polls[i]),
		Successes:         int(c.Successes[i]),
		Retries:           int(c.Retries[i]),
		SilentCycles:      int(c.SilentCycles[i]),
		Dropped:           c.Flags[i]&FlagDropped != 0,
		LastSNRdB:         c.LastSNRdB[i],
		Health:            c.Health[i],
		Quarantined:       c.Flags[i]&FlagQuarantined != 0,
		QuarantineEntries: int(c.QuarantineEntries[i]),
		probeInterval:     int(c.ProbeInterval[i]),
		nextProbe:         int(c.NextProbe[i]),
		quarantinedAt:     int(c.QuarantinedAt[i]),
	}
}

// ProbeHorizon returns the resolved re-probe backoff cap in cycles — the
// farthest ahead of the current cycle FoldPollFailureAt/FoldProbeFailureAt
// will ever schedule a re-probe. Event-driven schedulers size their probe
// calendars with it.
func (p PollPolicy) ProbeHorizon() int { return p.probeMax() }
