package mac

// Decision-phase primitives, exported.
//
// The Scheduler's RunCycle folds poll outcomes into per-node bookkeeping —
// health EWMA, silent-cycle counting, probation entry/exit with backed-off
// re-probes, permanent drops. Those transitions are the MAC layer's
// *semantics*; the waveform transceiver underneath is incidental. The
// link-abstraction tier (internal/linksim) runs the same polling protocol
// over a statistical channel model at 10⁵–10⁶ nodes, and must make exactly
// the decisions a waveform fleet would make for the same outcome sequence.
// Rather than fork the policy, the transitions live here as pure functions
// over (*NodeState, PollPolicy, cycle) that both schedulers call. The
// Scheduler's finish* methods delegate to them verbatim, so the refactor is
// bit-identical for every existing seeded transcript.

// LivenessChange reports the transition FoldPollFailure applied to a node.
type LivenessChange int

// Liveness transitions, in increasing severity.
const (
	// LivenessNone: the node stays in the regular schedule.
	LivenessNone LivenessChange = iota
	// LivenessQuarantined: the node entered probation (Probation policy).
	LivenessQuarantined
	// LivenessDropped: the node was permanently removed (DropAfter policy).
	LivenessDropped
)

// FoldDelivered folds a delivered poll (or a restoring probe's successful
// round) into the node's bookkeeping: success and SNR accounting plus the
// health EWMA. Quarantine exit for probes is a separate step — see
// (*NodeState).Restore.
func FoldDelivered(st *NodeState, snrDB float64) {
	st.Successes++
	st.LastSNRdB = snrDB
	st.SilentCycles = 0
	observeHealth(st, true)
}

// Restore exits quarantine after a successful re-probe and returns the
// recovery latency in cycles (1 = restored by the first probe after entry),
// the value the recovery-latency histogram records.
func (st *NodeState) Restore(cycle int) int {
	st.Quarantined = false
	return cycle - st.quarantinedAt + 1
}

// FoldProbeFailure folds a failed quarantine re-probe: the health EWMA
// decays and the re-probe backoff doubles up to the policy cap. Probes
// deliberately skip the retry budget — a node that is still down should
// cost the cycle as little airtime as possible.
func (p PollPolicy) FoldProbeFailure(st *NodeState, cycle int) {
	observeHealth(st, false)
	st.probeInterval *= 2
	if max := p.probeMax(); st.probeInterval > max {
		st.probeInterval = max
	}
	st.nextProbe = cycle + st.probeInterval
}

// FoldPollFailure folds a poll whose retry budget is exhausted: the silent
// cycle is counted and the liveness policy applied — quarantine (Probation)
// or permanent drop once DropAfter consecutive silent cycles accumulate.
// The caller owns any rate-controller loss feeding and metrics.
func (p PollPolicy) FoldPollFailure(st *NodeState, cycle int) LivenessChange {
	observeHealth(st, false)
	st.SilentCycles++
	if p.DropAfter > 0 && st.SilentCycles >= p.DropAfter {
		if p.Probation {
			st.Quarantined = true
			st.QuarantineEntries++
			st.quarantinedAt = cycle
			st.probeInterval = p.probeBase()
			st.nextProbe = cycle + st.probeInterval
			return LivenessQuarantined
		}
		st.Dropped = true
		return LivenessDropped
	}
	return LivenessNone
}

// ProbeDue reports whether a quarantined node's re-probe backoff has
// elapsed at the given cycle.
func (st *NodeState) ProbeDue(cycle int) bool {
	return st.Quarantined && cycle >= st.nextProbe
}

// NextProbe returns the cycle index of the node's next scheduled re-probe
// (meaningful only while quarantined) — the hook an event-driven scheduler
// uses to calendar probes instead of scanning every quarantined node.
func (st *NodeState) NextProbe() int { return st.nextProbe }
