package mac_test

import (
	"fmt"
	"math/rand"

	"vab/internal/mac"
)

// staticTrx answers queries deterministically: nodes 1 and 2 are healthy,
// node 3 is out of range.
type staticTrx struct{}

func (staticTrx) Poll(addr byte) (mac.RoundResult, error) {
	if addr == 3 {
		return mac.RoundResult{}, nil
	}
	return mac.RoundResult{OK: true, Payload: []byte{addr}, SNRdB: 15}, nil
}

// Example runs one polling cycle over a three-node deployment: the
// reader-initiated MAC retries the silent node and reports per-node
// delivery.
func Example() {
	sched, err := mac.NewScheduler(staticTrx{}, mac.DefaultPollPolicy())
	if err != nil {
		panic(err)
	}
	for _, a := range []byte{1, 2, 3} {
		sched.AddNode(a)
	}
	rep, err := sched.RunCycle()
	if err != nil {
		panic(err)
	}
	fmt.Printf("delivered %d/%d (retries %d)\n", rep.Delivered, rep.Polled, rep.Retries)
	// Output:
	// delivered 2/3 (retries 2)
}

// ExampleDiscoverAll resolves ten unknown nodes with framed-slotted
// discovery: colliding responses cancel, so repeated rounds with fresh nonces are needed.
func ExampleDiscoverAll() {
	addrs := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	rounds, found := mac.DiscoverAll(addrs, 8, 0, rand.New(rand.NewSource(2)), 100)
	fmt.Printf("discovered %d/%d nodes in %d rounds\n", len(found), len(addrs), rounds)
	// Output:
	// discovered 10/10 nodes in 19 rounds
}
