package mac

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"vab/internal/telemetry"
)

// syncTrx scripts per-address outcomes like fakeTrx but tolerates
// concurrent polls, and records the chip-rate command each PollAt
// received — the fixture for wave-execution tests.
type syncTrx struct {
	mu       sync.Mutex
	outcomes map[byte][]bool
	snr      map[byte]float64
	calls    map[byte]int
	rates    []polledAt // every PollAt in call order (serial runs only)
	errFor   map[byte]error
}

type polledAt struct {
	addr byte
	rate float64
}

func newSyncTrx() *syncTrx {
	return &syncTrx{
		outcomes: map[byte][]bool{},
		snr:      map[byte]float64{},
		calls:    map[byte]int{},
		errFor:   map[byte]error{},
	}
}

func (s *syncTrx) Poll(addr byte) (RoundResult, error) { return s.PollAt(addr, 0) }

func (s *syncTrx) PollAt(addr byte, rate float64) (RoundResult, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.errFor[addr]; err != nil {
		return RoundResult{}, err
	}
	i := s.calls[addr]
	s.calls[addr]++
	s.rates = append(s.rates, polledAt{addr: addr, rate: rate})
	seq := s.outcomes[addr]
	ok := false
	if len(seq) > 0 {
		if i >= len(seq) {
			i = len(seq) - 1
		}
		ok = seq[i]
	}
	snr := s.snr[addr]
	if snr == 0 {
		snr = 12
	}
	return RoundResult{OK: ok, Payload: []byte{addr, byte(i)}, SNRdB: snr}, nil
}

// scriptedOutcomes derives a deterministic outcome tape per address from a
// tiny hash, giving a mix of first-try deliveries, retried deliveries and
// exhausted nodes.
func scriptedOutcomes(trx *syncTrx, addrs []byte) {
	for _, a := range addrs {
		h := uint32(a) * 2654435761
		tape := make([]bool, 8)
		for i := range tape {
			h ^= h >> 13
			h *= 0x5bd1e995
			tape[i] = h%3 != 0
		}
		trx.outcomes[a] = tape
		trx.snr[a] = 8 + float64(a%11)
	}
}

// runScripted executes cycles cycles on a fresh scheduler at the given
// pool width and returns every report plus the final node states.
func runScripted(t *testing.T, workers, cycles int, withRate bool) ([]CycleReport, []NodeState) {
	t.Helper()
	trx := newSyncTrx()
	addrs := make([]byte, 16)
	for i := range addrs {
		addrs[i] = byte(i + 1)
	}
	scriptedOutcomes(trx, addrs)
	s, err := NewScheduler(trx, PollPolicy{
		MaxRetries: 2, BackoffSlots: 8, DropAfter: 2,
		Probation: true, ProbeBackoffBase: 2, ProbeBackoffMax: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range addrs {
		s.AddNode(a)
	}
	if withRate {
		rc, err := NewRateController([]float64{125, 250, 500}, 6)
		if err != nil {
			t.Fatal(err)
		}
		s.SetRateController(rc)
	}
	s.SetWorkers(workers)
	reps := make([]CycleReport, cycles)
	for c := 0; c < cycles; c++ {
		rep, err := s.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		reps[c] = rep
	}
	return reps, s.Nodes()
}

// TestWaveDeterministicAcrossWorkers pins the determinism contract at the
// MAC layer: identical scripted fleets produce identical reports and node
// state at any pool width, with and without rate adaptation. Run with
// -race this also proves the wave execution shares nothing it should not.
func TestWaveDeterministicAcrossWorkers(t *testing.T) {
	for _, withRate := range []bool{false, true} {
		reps1, nodes1 := runScripted(t, 1, 10, withRate)
		reps8, nodes8 := runScripted(t, 8, 10, withRate)
		if !reflect.DeepEqual(reps1, reps8) {
			t.Errorf("rate=%v: reports diverge across workers 1 vs 8:\n%+v\n%+v", withRate, reps1, reps8)
		}
		if !reflect.DeepEqual(nodes1, nodes8) {
			t.Errorf("rate=%v: node states diverge across workers 1 vs 8", withRate)
		}
	}
}

// TestWaveRateSnapshotBarrier pins the per-wave rate snapshot: every poll
// of a wave sees the same chip-rate command, and a delivery folded in at
// the wave barrier moves the command only for the *next* wave.
func TestWaveRateSnapshotBarrier(t *testing.T) {
	trx := newSyncTrx()
	trx.outcomes[1] = []bool{false, false, false} // retries through every wave
	trx.outcomes[2] = []bool{true}                // delivers in wave 0
	trx.outcomes[3] = []bool{false, false, true}  // delivers in wave 2
	trx.snr[2] = 40                               // big SNR: steps the rate up at the wave-0 barrier

	s, err := NewScheduler(trx, PollPolicy{MaxRetries: 2, BackoffSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range []byte{1, 2, 3} {
		s.AddNode(a)
	}
	rc, err := NewRateController([]float64{125, 250, 500}, 1)
	if err != nil {
		t.Fatal(err)
	}
	rc.Smoothing = 1 // react instantly so wave boundaries are visible
	s.SetRateController(rc)

	if _, err := s.RunCycle(); err != nil {
		t.Fatal(err)
	}
	// Wave 0: three polls at the initial rate. Node 2's 40 dB delivery is
	// folded in at the barrier and climbs the controller, so waves 1 and 2
	// (the retries of nodes 1 and 3) run at the top rate.
	want := []polledAt{
		{1, 125}, {2, 125}, {3, 125},
		{1, 500}, {3, 500},
		{1, 500}, {3, 500},
	}
	if !reflect.DeepEqual(trx.rates, want) {
		t.Errorf("per-wave commands:\n got %+v\nwant %+v", trx.rates, want)
	}
}

// TestWaveLowestAddressError pins deterministic error selection: when
// several polls of a wave fail, the lowest-address error is reported, no
// matter how the pool interleaved them.
func TestWaveLowestAddressError(t *testing.T) {
	for _, workers := range []int{1, 8} {
		trx := newSyncTrx()
		trx.outcomes[2] = []bool{true}
		trx.errFor[3] = errors.New("flooded")
		trx.errFor[5] = errors.New("also flooded")
		s, err := NewScheduler(trx, DefaultPollPolicy())
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range []byte{2, 3, 5} {
			s.AddNode(a)
		}
		s.SetWorkers(workers)
		_, err = s.RunCycle()
		if err == nil || err.Error() != "mac: poll 3: flooded" {
			t.Errorf("workers=%d: error %v, want the lowest-address poll error", workers, err)
		}
	}
}

// TestWaveTelemetry checks the per-wave instruments: wave width per
// retry wave, pool occupancy, straggler overhang and the pool gauge.
func TestWaveTelemetry(t *testing.T) {
	trx := newSyncTrx()
	trx.outcomes[1] = []bool{true}
	trx.outcomes[2] = []bool{false, true} // forces a second (width-1) wave
	s, err := NewScheduler(trx, PollPolicy{MaxRetries: 2, BackoffSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	s.AddNode(1)
	s.AddNode(2)
	s.SetWorkers(4)
	s.Instrument(reg)
	if _, err := s.RunCycle(); err != nil {
		t.Fatal(err)
	}
	got := map[string]float64{}
	for _, snap := range reg.Snapshot() {
		got[snap.Name] = snap.Value
	}
	if got["vab_mac_wave_pool_size"] != 4 {
		t.Errorf("pool gauge %g, want 4", got["vab_mac_wave_pool_size"])
	}
	if s.met.waveWidth.Count() != 2 {
		t.Errorf("wave count %d, want 2 (initial wave + one retry wave)", s.met.waveWidth.Count())
	}
	if sum := s.met.waveWidth.Sum(); sum != 3 {
		t.Errorf("total wave width %g, want 3 polls", sum)
	}
	if s.met.straggler.Count() != 2 {
		t.Errorf("straggler observations %d, want one per wave", s.met.straggler.Count())
	}
	// Occupancy: wave 0 used 2 of 4 workers (0.5), wave 1 used 1 (0.25).
	if sum := s.met.waveOcc.Sum(); sum != 0.75 {
		t.Errorf("occupancy sum %g, want 0.75", sum)
	}
	if s.met.pollTime.Count() != 3 {
		t.Errorf("poll-time observations %d, want 3", s.met.pollTime.Count())
	}
}

// TestWaveCountersMatchSerialContract re-checks the serial bookkeeping
// invariants on a mixed wave: counters must be what the pre-wave serial
// scheduler produced for the same tapes.
func TestWaveCountersMatchSerialContract(t *testing.T) {
	trx := newSyncTrx()
	trx.outcomes[1] = []bool{true}               // 1 poll
	trx.outcomes[2] = []bool{false, true}        // 2 polls, 1 retry
	trx.outcomes[3] = []bool{false, false, true} // 3 polls, 2 retries
	trx.outcomes[4] = []bool{false}              // 3 polls, 2 retries, undelivered
	s, err := NewScheduler(trx, PollPolicy{MaxRetries: 2, BackoffSlots: 8})
	if err != nil {
		t.Fatal(err)
	}
	for a := byte(1); a <= 4; a++ {
		s.AddNode(a)
	}
	s.SetWorkers(8)
	rep, err := s.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Polled != 4 || rep.Delivered != 3 || rep.Retries != 5 || rep.Probes != 0 {
		t.Errorf("report %+v, want Polled 4 Delivered 3 Retries 5", rep)
	}
	wantPolls := map[byte]int{1: 1, 2: 2, 3: 3, 4: 3}
	for _, st := range s.Nodes() {
		if st.Polls != wantPolls[st.Addr] {
			t.Errorf("node %d: polls %d, want %d", st.Addr, st.Polls, wantPolls[st.Addr])
		}
	}
	for a := byte(1); a <= 3; a++ {
		if want := fmt.Sprintf("%c%c", a, wantPolls[a]-1); string(rep.Payloads[a]) != want {
			t.Errorf("node %d payload % x, want the final attempt's", a, rep.Payloads[a])
		}
	}
}
