package mac

import (
	"math"
	"math/rand"
	"testing"
)

func newRC(t *testing.T) *RateController {
	t.Helper()
	rc, err := NewRateController([]float64{125, 250, 500, 1000, 2000}, 11)
	if err != nil {
		t.Fatal(err)
	}
	return rc
}

func TestRateControllerValidation(t *testing.T) {
	if _, err := NewRateController([]float64{500}, 11); err == nil {
		t.Error("single rate accepted")
	}
	if _, err := NewRateController([]float64{500, 250}, 11); err == nil {
		t.Error("descending rates accepted")
	}
	if _, err := NewRateController([]float64{-1, 250}, 11); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestRateControllerStartsRobust(t *testing.T) {
	rc := newRC(t)
	if rc.Rate() != 125 {
		t.Errorf("initial rate %v, want the most robust", rc.Rate())
	}
}

func TestRateControllerClimbsOnStrongSNR(t *testing.T) {
	rc := newRC(t)
	// Very strong channel: ample for the top rate (requirement there is
	// 11 + 12 dB; + margin 6 → 29 dB at base).
	var r float64
	for i := 0; i < 20; i++ {
		r = rc.Observe(40)
	}
	if r != 2000 {
		t.Errorf("rate %v after strong SNR, want 2000", r)
	}
}

func TestRateControllerHoldsAtSustainableRate(t *testing.T) {
	rc := newRC(t)
	// SNR that supports 500 cps but not 1000: requirement at 500 is
	// 11+6=17 dB; at 1000 it is 20 dB (+6 margin = 26 at base scale).
	// Feed a mid-level channel and check it settles between the extremes.
	var r float64
	for i := 0; i < 30; i++ {
		// Observed SNR at the *current* rate: emulate a channel with 24 dB
		// at the 125 cps base → at rate R it reads 24 − 10log10(R/125).
		r = rc.Rate()
		obs := 24 - 10*logRatio(r, 125)
		r = rc.Observe(obs)
	}
	if r != 250 && r != 500 {
		t.Errorf("settled at %v, want a middle rate", r)
	}
	// And it must stay there (no flapping) under small wiggle.
	settled := r
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		obs := 24 - 10*logRatio(rc.Rate(), 125) + rng.Float64()*2 - 1
		r = rc.Observe(obs)
		if r != settled {
			t.Fatalf("rate flapped from %v to %v under ±1 dB wiggle", settled, r)
		}
	}
}

func TestRateControllerStepsDownOnFade(t *testing.T) {
	rc := newRC(t)
	for i := 0; i < 10; i++ {
		rc.Observe(40)
	}
	if rc.Rate() != 2000 {
		t.Fatal("setup failed")
	}
	// Channel collapses 25 dB: controller must descend.
	var r float64
	for i := 0; i < 20; i++ {
		obs := 15 - 10*logRatio(rc.Rate(), 125)
		r = rc.Observe(obs)
	}
	if r > 250 {
		t.Errorf("rate %v after fade, want <= 250", r)
	}
}

func TestRateControllerObserveLoss(t *testing.T) {
	rc := newRC(t)
	for i := 0; i < 10; i++ {
		rc.Observe(40)
	}
	top := rc.Rate()
	r := rc.ObserveLoss()
	if r >= top {
		t.Errorf("loss should step down: %v -> %v", top, r)
	}
	// Repeated losses bottom out without panicking.
	for i := 0; i < 10; i++ {
		r = rc.ObserveLoss()
	}
	if r != 125 {
		t.Errorf("rate %v after loss storm, want floor", r)
	}
}

func logRatio(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return math.Log10(a / b)
}
