package baseline

import (
	"math/cmplx"
	"testing"

	"vab/internal/piezo"
)

const fc = 18500.0

func TestMetadata(t *testing.T) {
	d := New()
	if d.Name() != "pab-single" {
		t.Errorf("name %q", d.Name())
	}
	if d.Elements() != 1 {
		t.Errorf("elements %d", d.Elements())
	}
}

func TestScatterFieldOmnidirectional(t *testing.T) {
	d := New()
	g0 := d.ScatterField(fc, 0)
	for _, th := range []float64{0.3, 0.8, 1.4, -1.0} {
		if g := d.ScatterField(fc, th); g != g0 {
			t.Errorf("single element must be orientation-independent: %v vs %v", g, g0)
		}
	}
	// At resonance |field| ≈ 1 (unit scatterer reference).
	if m := cmplx.Abs(g0); m < 0.95 || m > 1.05 {
		t.Errorf("|field| at resonance = %v", m)
	}
	// Off resonance it rolls off with the transduction response squared.
	if m := cmplx.Abs(d.ScatterField(fc*1.2, 0)); m > 0.2 {
		t.Errorf("off-resonance field %v should collapse", m)
	}
}

func TestModulationDepthBelowMatched(t *testing.T) {
	d := New()
	own := d.ModulationDepth(fc)
	matched := d.Trans.ModulationDepth(fc, piezo.ShortLoad, d.Trans.MatchedLoad(fc))
	if own >= matched {
		t.Errorf("unmatched depth %v should trail matched %v", own, matched)
	}
	if own < 0.1 || own > 0.45 {
		t.Errorf("unmatched depth %v outside expected band", own)
	}
}

func TestDepthPenaltyPositive(t *testing.T) {
	d := New()
	pen := d.DepthPenaltyDB(fc)
	if pen <= 0 || pen > 20 {
		t.Errorf("penalty %v dB", pen)
	}
	// Degenerate: zero own depth reports the cap.
	d2 := New()
	d2.OffLoad = d2.OnLoad
	if got := d2.DepthPenaltyDB(fc); got != 60 {
		t.Errorf("degenerate penalty %v, want 60", got)
	}
}
