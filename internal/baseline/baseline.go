// Package baseline implements the prior-art comparison point for VAB: a
// single-element piezo-acoustic backscatter node (the PAB architecture of
// earlier underwater backscatter systems). It scatters omnidirectionally
// from one transducer, switches between a short and an open without a
// matching network, and therefore realizes both a much smaller conversion
// aperture and a poorer effective modulation depth than the Van Atta
// design — the two deficits the paper's 15× range comparison quantifies.
package baseline

import (
	"math"

	"vab/internal/piezo"
)

// PABDesign is the single-element prior-art node. It satisfies core.Design.
type PABDesign struct {
	Trans *piezo.Transducer
	// OnLoad/OffLoad are the unmatched switch states. Without a matching
	// network, the "absorptive" state still reflects a large fraction of
	// the incident energy, halving the usable modulation contrast at the
	// fundamental compared to a matched design.
	OnLoad, OffLoad complex128
}

// New returns the reference PAB node: the same transducer model as VAB
// (fair comparison), shorted/open switching, no matching network.
func New() *PABDesign {
	return &PABDesign{
		Trans:  piezo.MustDefault(),
		OnLoad: piezo.ShortLoad,
		// A bare analog switch's off state presents its driver and package
		// parasitics rather than a matched termination; near the motional
		// resistance of the transducer that costs roughly half of the
		// achievable reflection contrast.
		OffLoad: complex(30, 0),
	}
}

// Name implements core.Design.
func (d *PABDesign) Name() string { return "pab-single" }

// Elements implements core.Design.
func (d *PABDesign) Elements() int { return 1 }

// ScatterField implements core.Design: a single omnidirectional element has
// unit field gain at every orientation, shaped only by the transduction
// roll-off (applied twice, receive and re-radiate).
func (d *PABDesign) ScatterField(fHz, theta float64) complex128 {
	r := d.Trans.Response(fHz)
	return r * r
}

// ModulationDepth implements core.Design.
func (d *PABDesign) ModulationDepth(fHz float64) float64 {
	return d.Trans.ModulationDepth(fHz, d.OnLoad, d.OffLoad)
}

// DepthPenaltyDB returns how many dB of modulation contrast the unmatched
// design loses against an ideally matched switch at fHz (a positive
// number), one of the terms in the paper's head-to-head decomposition.
func (d *PABDesign) DepthPenaltyDB(fHz float64) float64 {
	matched := d.Trans.ModulationDepth(fHz, piezo.ShortLoad, d.Trans.MatchedLoad(fHz))
	own := d.ModulationDepth(fHz)
	if own <= 0 {
		return 60
	}
	return 20 * math.Log10(matched/own)
}
