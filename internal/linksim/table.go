package linksim

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// TableFormatVersion is the serialization format this package reads and
// writes. Load rejects other versions: calibration tables are versioned
// artifacts, and a silent cross-version reinterpretation would corrupt
// every downstream statistic.
const TableFormatVersion = 1

// Cell holds the calibrated link statistics of one
// (environment, intensity, orientation, range) grid point.
type Cell struct {
	// PDeliver is the probability one poll attempt delivers a decodable
	// frame, in [0, 1]. Monotone non-increasing along the range axis
	// (enforced by isotonic regression at calibration time).
	PDeliver float64 `json:"p_deliver"`
	// SNRMeanDB / SNRStdDB parameterize the reported tone SNR of
	// delivered frames (dB, normal approximation).
	SNRMeanDB float64 `json:"snr_mean_db"`
	SNRStdDB  float64 `json:"snr_std_db"`
	// CorrMean is the mean FEC corrections per delivered frame (the
	// residual-BER proxy core.Fleet.LinkQuality tracks), drawn Poisson.
	CorrMean float64 `json:"corr_mean"`
	// DelayMs is the round-trip propagation delay at the cell's range.
	DelayMs float64 `json:"delay_ms"`
}

// Table is a versioned, serializable calibration artifact: link statistics
// over a sampled (environment, fault intensity, orientation, range) grid,
// plus the provenance needed to regenerate it bit-identically.
//
// Cells are flattened with range fastest:
//
//	index = ((env*len(Intensities) + intensity)*len(OrientsRad) + orient)*len(RangesM) + range
type Table struct {
	FormatVersion int `json:"format_version"`

	// Provenance: the exact calibration configuration. Rerunning
	// `vabsim -calibrate` with these values reproduces the table.
	Scenario      string  `json:"scenario"` // fault spec behind the intensity axis
	Seed          int64   `json:"seed"`
	RoundsPerCell int     `json:"rounds_per_cell"`
	ChipRate      float64 `json:"chip_rate"`       // cps the cells were measured at
	SourceLevelDB float64 `json:"source_level_db"` // projector level during calibration

	// Axes, each ascending.
	Envs        []string  `json:"envs"`
	RangesM     []float64 `json:"ranges_m"`
	OrientsRad  []float64 `json:"orients_rad"` // absolute node rotation
	Intensities []float64 `json:"intensities"` // fault severity in [0, 1]

	// Logistic SNR→delivery transfer fitted across cells:
	// p(snr) = 1 / (1 + exp(-LogisticK·(snr - LogisticSNR50))). Used to
	// translate SNR deltas (chip-rate changes) into delivery-probability
	// shifts anchored at the calibrated cell.
	LogisticK     float64 `json:"logistic_k"`
	LogisticSNR50 float64 `json:"logistic_snr50_db"`

	Cells []Cell `json:"cells"`
}

// Validate checks structural invariants: version, non-empty ascending
// axes, cell count, and probability clamping.
func (t *Table) Validate() error {
	if t.FormatVersion != TableFormatVersion {
		return fmt.Errorf("linksim: table format version %d, this build reads %d",
			t.FormatVersion, TableFormatVersion)
	}
	if len(t.Envs) == 0 || len(t.RangesM) == 0 || len(t.OrientsRad) == 0 || len(t.Intensities) == 0 {
		return fmt.Errorf("linksim: table has an empty axis")
	}
	for name, axis := range map[string][]float64{
		"ranges_m": t.RangesM, "orients_rad": t.OrientsRad, "intensities": t.Intensities,
	} {
		if !sort.Float64sAreSorted(axis) {
			return fmt.Errorf("linksim: axis %s not ascending: %v", name, axis)
		}
		for i := 1; i < len(axis); i++ {
			if axis[i] == axis[i-1] {
				return fmt.Errorf("linksim: axis %s has duplicate value %g", name, axis[i])
			}
		}
	}
	for _, in := range t.Intensities {
		if in < 0 || in > 1 {
			return fmt.Errorf("linksim: intensity %g outside [0, 1]", in)
		}
	}
	want := len(t.Envs) * len(t.Intensities) * len(t.OrientsRad) * len(t.RangesM)
	if len(t.Cells) != want {
		return fmt.Errorf("linksim: %d cells for a %d-point grid", len(t.Cells), want)
	}
	for i, c := range t.Cells {
		if c.PDeliver < 0 || c.PDeliver > 1 || math.IsNaN(c.PDeliver) {
			return fmt.Errorf("linksim: cell %d delivery probability %g outside [0, 1]", i, c.PDeliver)
		}
		if c.SNRStdDB < 0 || c.CorrMean < 0 || c.DelayMs < 0 {
			return fmt.Errorf("linksim: cell %d has a negative statistic", i)
		}
	}
	if t.ChipRate <= 0 {
		return fmt.Errorf("linksim: chip rate %g must be positive", t.ChipRate)
	}
	return nil
}

// EnvIndex resolves an environment name against the table's axis.
func (t *Table) EnvIndex(name string) (int, error) {
	for i, e := range t.Envs {
		if e == name {
			return i, nil
		}
	}
	return 0, fmt.Errorf("linksim: environment %q not calibrated (table has %v)", name, t.Envs)
}

// cellIndex flattens grid coordinates.
func (t *Table) cellIndex(env, intensity, orient, rng int) int {
	return ((env*len(t.Intensities)+intensity)*len(t.OrientsRad)+orient)*len(t.RangesM) + rng
}

// CellAt returns the raw cell at exact grid coordinates.
func (t *Table) CellAt(env, intensity, orient, rng int) Cell {
	return t.Cells[t.cellIndex(env, intensity, orient, rng)]
}

// linkCoord caches a link's interpolation coordinates on the
// (orientation, range) plane: bracketing grid indices plus lerp weights.
// Resolved once per node at fleet construction; the per-poll lookup then
// touches at most 8 cells.
type linkCoord struct {
	ri, oi uint16  // lower bracketing index on the range / orientation axis
	wr, wo float32 // weight of the upper neighbour in [0, 1]
}

// bracket locates v on an ascending axis: the lower index and the upper
// neighbour's weight, clamping outside the grid (constant extrapolation).
func bracket(axis []float64, v float64) (int, float64) {
	n := len(axis)
	if n == 1 || v <= axis[0] {
		return 0, 0
	}
	if v >= axis[n-1] {
		return n - 2, 1
	}
	i := sort.SearchFloat64s(axis, v)
	// axis[i-1] < v <= axis[i] here (v > axis[0] and v < axis[n-1]).
	lo := i - 1
	return lo, (v - axis[lo]) / (axis[lo+1] - axis[lo])
}

// Resolve computes a link's interpolation coordinates. Orientation is
// folded to its absolute value: the calibrated response is symmetric in
// rotation sign (E4's orientation sweep is).
func (t *Table) Resolve(rangeM, orientRad float64) linkCoord {
	ri, wr := bracket(t.RangesM, rangeM)
	oi, wo := bracket(t.OrientsRad, math.Abs(orientRad))
	return linkCoord{ri: uint16(ri), oi: uint16(oi), wr: float32(wr), wo: float32(wo)}
}

// lerpCell linearly interpolates every cell statistic.
func lerpCell(a, b Cell, w float64) Cell {
	l := func(x, y float64) float64 { return x + (y-x)*w }
	return Cell{
		PDeliver:  l(a.PDeliver, b.PDeliver),
		SNRMeanDB: l(a.SNRMeanDB, b.SNRMeanDB),
		SNRStdDB:  l(a.SNRStdDB, b.SNRStdDB),
		CorrMean:  l(a.CorrMean, b.CorrMean),
		DelayMs:   l(a.DelayMs, b.DelayMs),
	}
}

// planeCell bilinearly interpolates the (orientation, range) plane of one
// (env, intensity) slice at the resolved coordinates.
func (t *Table) planeCell(env, intensity int, c linkCoord) Cell {
	ri, oi := int(c.ri), int(c.oi)
	wr, wo := float64(c.wr), float64(c.wo)
	r1 := ri
	if r1+1 < len(t.RangesM) {
		r1 = ri + 1
	}
	o1 := oi
	if o1+1 < len(t.OrientsRad) {
		o1 = oi + 1
	}
	low := lerpCell(t.CellAt(env, intensity, oi, ri), t.CellAt(env, intensity, oi, r1), wr)
	high := lerpCell(t.CellAt(env, intensity, o1, ri), t.CellAt(env, intensity, o1, r1), wr)
	return lerpCell(low, high, wo)
}

// Lookup interpolates the full grid: bilinear on (orientation, range),
// then linear along the fault-intensity axis, clamped at the grid edges.
func (t *Table) Lookup(env int, c linkCoord, intensity float64) Cell {
	ii, wi := bracket(t.Intensities, intensity)
	i1 := ii
	if i1+1 < len(t.Intensities) {
		i1 = ii + 1
	}
	cell := lerpCell(t.planeCell(env, ii, c), t.planeCell(env, i1, c), wi)
	if cell.PDeliver < 0 {
		cell.PDeliver = 0
	}
	if cell.PDeliver > 1 {
		cell.PDeliver = 1
	}
	return cell
}

// ShiftDelivery translates an SNR delta (dB) into a delivery-probability
// adjustment using the fitted logistic transfer: the cell's calibrated
// probability anchors the curve and the delta slides along it in odds
// space — p' = p·e^{kΔ} / (1 − p + p·e^{kΔ}). Δ = 0 returns p unchanged;
// p of exactly 0 or 1 is a hard cell (no finite SNR shift changes it).
func (t *Table) ShiftDelivery(p, deltaDB float64) float64 {
	if deltaDB == 0 || p <= 0 || p >= 1 {
		return p
	}
	odds := p / (1 - p) * math.Exp(t.LogisticK*deltaDB)
	return odds / (1 + odds)
}

// Encode serializes the table (indented JSON, stable field order).
func (t *Table) Encode() ([]byte, error) {
	b, err := json.MarshalIndent(t, "", " ")
	if err != nil {
		return nil, fmt.Errorf("linksim: encode table: %w", err)
	}
	return append(b, '\n'), nil
}

// Decode parses and validates a serialized table.
func Decode(data []byte) (*Table, error) {
	var t Table
	if err := json.Unmarshal(data, &t); err != nil {
		return nil, fmt.Errorf("linksim: decode table: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Load reads a table from disk.
func Load(path string) (*Table, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("linksim: load table: %w", err)
	}
	return Decode(data)
}

// Write stores the table at path.
func (t *Table) Write(path string) error {
	data, err := t.Encode()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("linksim: write table: %w", err)
	}
	return nil
}
