package linksim

import (
	"testing"

	"vab/internal/mac"
)

// TestProbeWheelBasics pins the wheel's scheduling semantics: ascending
// take order regardless of insertion order, bucket recycling, past-due
// clamping, and the pending() inventory.
func TestProbeWheelBasics(t *testing.T) {
	w := newProbeWheel(16)
	w.schedule(9, 5, 0)
	w.schedule(3, 5, 0)
	w.schedule(7, 5, 0)
	w.schedule(1, 6, 0)
	if got := w.pending(); got != 4 {
		t.Fatalf("pending = %d, want 4", got)
	}
	if got := w.take(4); len(got) != 0 {
		t.Fatalf("cycle 4 due %v, want none", got)
	}
	got := w.take(5)
	want := []int32{3, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("cycle 5 due %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle 5 due %v, want ascending %v", got, want)
		}
	}
	if got := w.take(6); len(got) != 1 || got[0] != 1 {
		t.Fatalf("cycle 6 due %v, want [1]", got)
	}
	if got := w.pending(); got != 0 {
		t.Fatalf("pending after drain = %d, want 0", got)
	}

	// A due at or before `now` is clamped to now+1, never lost in an
	// already-consumed bucket.
	w.schedule(4, 6, 6)
	if got := w.take(7); len(got) != 1 || got[0] != 4 {
		t.Fatalf("clamped due %v, want [4] at cycle 7", got)
	}

	// Steady-state reschedule into a recycled bucket must not allocate.
	w.schedule(2, 9, 8)
	w.take(9)
	allocs := testing.AllocsPerRun(100, func() {
		w.schedule(2, 17, 16)
		w.take(17)
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/take allocates %.1f/op, want 0", allocs)
	}
}

// TestProbeWheelOverflow pins the far-future path: entries beyond the
// wheel span ride the overflow list and surface exactly when due, merged
// in ascending order with the bucket of the same cycle.
func TestProbeWheelOverflow(t *testing.T) {
	w := newProbeWheel(16) // 32 buckets
	span := w.mask
	far := span + 100
	w.schedule(5, far, 0)
	w.schedule(2, far, 0)
	w.schedule(8, far+1, 0)
	if got := w.pending(); got != 3 {
		t.Fatalf("pending = %d, want 3", got)
	}
	for c := 1; c < far; c++ {
		if c == far-2 {
			// An in-wheel entry landing on the same cycle as the overflow
			// drain (scheduled once `far` is within the span).
			w.schedule(3, far, c)
		}
		if got := w.take(c); len(got) != 0 {
			t.Fatalf("cycle %d due %v, want none before the far due", c, got)
		}
	}
	got := w.take(far)
	want := []int32{2, 3, 5}
	if len(got) != len(want) {
		t.Fatalf("cycle %d due %v, want %v", far, got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle %d due %v, want %v", far, got, want)
		}
	}
	if got := w.take(far + 1); len(got) != 1 || got[0] != 8 {
		t.Fatalf("cycle %d due %v, want [8]", far+1, got)
	}
	if got := w.pending(); got != 0 {
		t.Fatalf("pending after overflow drain = %d, want 0", got)
	}
}

// TestFleetProbeBeyondWheelHorizon drives the overflow path end-to-end: a
// policy whose re-probe backoff (1500 cycles, cap 2048) exceeds the
// wheel's 1024-bucket ceiling quarantines a dead node, and the re-probe
// fires exactly 1500 cycles later via the overflow list — no probe
// sooner, none lost.
func TestFleetProbeBeyondWheelHorizon(t *testing.T) {
	policy := mac.PollPolicy{
		MaxRetries: 0, BackoffSlots: 1, DropAfter: 2,
		Probation: true, ProbeBackoffBase: 1500, ProbeBackoffMax: 2048,
	}
	fleet, err := NewFleet(Config{
		Placements: []Placement{{RangeM: 50}, {RangeM: 200}},
		Policy:     policy,
		Table:      hardTable(),
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.wheel.mask >= policy.ProbeHorizon() {
		t.Fatalf("wheel span %d covers horizon %d — test no longer exercises overflow", fleet.wheel.mask, policy.ProbeHorizon())
	}
	// Node 1 (200 m, never delivers) fails cycles 0 and 1, quarantines at
	// cycle 1, probe due at 1+1500.
	const quarantineCycle = 1
	probeCycle := quarantineCycle + 1500
	for c := 0; c <= probeCycle; c++ {
		rep, err := fleet.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		wantProbes := 0
		if c == probeCycle {
			wantProbes = 1
		}
		if rep.Probes != wantProbes {
			t.Fatalf("cycle %d: probes %d, want %d", c, rep.Probes, wantProbes)
		}
		if c > quarantineCycle && c < probeCycle && rep.Polled != 1 {
			t.Fatalf("cycle %d: polled %d while node 1 awaits its far probe, want 1", c, rep.Polled)
		}
	}
	// The failed probe doubles the interval to 2048 (in-wheel would alias;
	// overflow holds it) — still pending, nothing lost.
	if got := fleet.wheel.pending(); got != 1 {
		t.Fatalf("pending after failed far probe = %d, want 1", got)
	}
	if next := fleet.cols.NextProbeAt(1); next != probeCycle+2048 {
		t.Fatalf("next probe at %d, want %d", next, probeCycle+2048)
	}
}
