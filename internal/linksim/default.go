package linksim

import (
	_ "embed"
	"fmt"
	"sync"
)

// The committed calibration artifact, embedded so every binary carries a
// working abstract tier with zero setup. Regenerate with
// `vabsim -calibrate internal/linksim/testdata/calibration_v1.json`
// (the file records its own provenance: scenario, seed, rounds per cell).
//
//go:embed testdata/calibration_v1.json
var defaultTableJSON []byte

var (
	defaultTableOnce sync.Once
	defaultTable     *Table
)

// DefaultTable returns the embedded calibration table. The artifact is
// validated once at first use; corruption is a build error in spirit, so
// it panics rather than limping.
func DefaultTable() *Table {
	defaultTableOnce.Do(func() {
		t, err := Decode(defaultTableJSON)
		if err != nil {
			panic(fmt.Sprintf("linksim: embedded calibration table invalid: %v", err))
		}
		defaultTable = t
	})
	return defaultTable
}
