package linksim

import (
	"testing"

	"vab/internal/mac"
)

// TestFleetStaleCalendarEntry: a calendar entry whose node was restored or
// rescheduled since insertion must be skipped by the ProbeDueAt guard when
// its bucket comes up — and must not suppress the node's real probe later.
// The stale entries are planted directly (the package owns the wheel), the
// skip is observed through cycle reports.
func TestFleetStaleCalendarEntry(t *testing.T) {
	fleet, err := NewFleet(Config{
		Placements: []Placement{{RangeM: 50}, {RangeM: 200}},
		Policy:     probationPolicy(),
		Table:      hardTable(),
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Cycles 0-2: node 1 fails thrice and quarantines at cycle 2 with its
	// real probe calendared for cycle 4 (base backoff 2).
	for c := 0; c < 3; c++ {
		if _, err := fleet.RunCycle(); err != nil {
			t.Fatal(err)
		}
	}
	if !fleet.cols.Quarantined(1) || fleet.cols.NextProbeAt(1) != 4 {
		t.Fatalf("setup drifted: quarantined=%v nextProbe=%d, want true/4",
			fleet.cols.Quarantined(1), fleet.cols.NextProbeAt(1))
	}
	// Plant two stale entries for cycle 3: one for the quarantined node 1
	// (its real schedule says 4) and one for node 0, which is live.
	fleet.wheel.schedule(1, 3, 2)
	fleet.wheel.schedule(0, 3, 2)

	rep, err := fleet.RunCycle() // cycle 3
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probes != 0 || rep.Polled != 1 {
		t.Fatalf("cycle 3: polled %d probes %d — stale entries not skipped (want 1 poll, 0 probes)",
			rep.Polled, rep.Probes)
	}
	rep, err = fleet.RunCycle() // cycle 4: the genuine probe
	if err != nil {
		t.Fatal(err)
	}
	if rep.Probes != 1 {
		t.Fatalf("cycle 4: probes %d, want the real calendared probe", rep.Probes)
	}
}

// TestFleetRestoreAndDropSameCycle: one cycle restores a probed node while
// another node leaves the live set — both flavors of leaver (permanent
// drop, probation entry) — exercising the live-list compaction and the
// ascending restore merge together.
func TestFleetRestoreAndDropSameCycle(t *testing.T) {
	// Flavor 1: Probation off — node 2 is dropped in the very cycle node 1
	// is restored.
	fleet, err := NewFleet(Config{
		Placements: []Placement{{RangeM: 50}, {RangeM: 50}, {RangeM: 200}, {RangeM: 50}},
		Policy:     mac.PollPolicy{MaxRetries: 0, BackoffSlots: 1, DropAfter: 2},
		Table:      hardTable(),
		Seed:       23,
	})
	if err != nil {
		t.Fatal(err)
	}
	quarantineNode(fleet, 1, 1)

	if _, err := fleet.RunCycle(); err != nil { // cycle 0: node 2 silent ×1
		t.Fatal(err)
	}
	rep, err := fleet.RunCycle() // cycle 1: node 1 probe delivers; node 2 drops
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 1 || rep.Dropped != 1 {
		t.Fatalf("cycle 1: restored %d dropped %d, want 1 and 1", rep.Restored, rep.Dropped)
	}
	assertLive(t, fleet, []int32{0, 1, 3})

	// Flavor 2: probation — the leaver enters quarantine instead of
	// dropping, same cycle as the restore.
	fleet2, err := NewFleet(Config{
		Placements: []Placement{{RangeM: 50}, {RangeM: 50}, {RangeM: 200}, {RangeM: 50}},
		Policy:     probationPolicy(),
		Table:      hardTable(),
		Seed:       23,
	})
	if err != nil {
		t.Fatal(err)
	}
	quarantineNode(fleet2, 1, 2)
	for c := 0; c < 2; c++ { // cycles 0-1: node 2 silent ×2
		if _, err := fleet2.RunCycle(); err != nil {
			t.Fatal(err)
		}
	}
	rep, err = fleet2.RunCycle() // cycle 2: node 1 restored; node 2 quarantined
	if err != nil {
		t.Fatal(err)
	}
	if rep.Restored != 1 || rep.Quarantined != 1 {
		t.Fatalf("cycle 2: restored %d quarantined %d, want 1 and 1", rep.Restored, rep.Quarantined)
	}
	assertLive(t, fleet2, []int32{0, 1, 3})
	rep, err = fleet2.RunCycle() // cycle 3: the merged live list is what gets polled
	if err != nil {
		t.Fatal(err)
	}
	if rep.Polled != 3 || rep.Probes != 0 {
		t.Fatalf("cycle 3: polled %d probes %d, want 3 and 0", rep.Polled, rep.Probes)
	}
}

// quarantineNode force-quarantines a live node with its probe due at
// `due`, as a prior campaign would have left it.
func quarantineNode(f *Fleet, node int32, due int) {
	f.cols.Flags[node] |= mac.FlagQuarantined
	f.cols.NextProbe[node] = int32(due)
	f.cols.ProbeInterval[node] = 2
	f.nQuar++
	f.wheel.schedule(node, due, -1)
	kept := f.live[:0]
	for _, n := range f.live {
		if n != node {
			kept = append(kept, n)
		}
	}
	f.live = kept
}

func assertLive(t *testing.T, f *Fleet, want []int32) {
	t.Helper()
	if len(f.live) != len(want) {
		t.Fatalf("live %v, want %v", f.live, want)
	}
	for i := range want {
		if f.live[i] != want[i] {
			t.Fatalf("live %v, want ascending %v", f.live, want)
		}
	}
}

// TestFleetCycleAllocs pins the tentpole's zero-allocation contract: once
// the scratch buffers, cell cache and worker pool are warm, a serial cycle
// allocates nothing, and a pooled parallel cycle stays within a few words
// of runtime noise. Probation churn is active (the default table leaves
// far nodes lossy), so the pin covers the wheel and restore paths too.
func TestFleetCycleAllocs(t *testing.T) {
	run := func(workers int) float64 {
		fleet, err := NewFleet(Config{
			Nodes:  4096,
			Policy: probationPolicy(),
			Seed:   21,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer fleet.Close()
		fleet.SetWorkers(workers)
		for c := 0; c < 40; c++ {
			if _, err := fleet.RunCycle(); err != nil {
				t.Fatal(err)
			}
		}
		return testing.AllocsPerRun(20, func() {
			if _, err := fleet.RunCycle(); err != nil {
				t.Fatal(err)
			}
		})
	}
	if allocs := run(1); allocs != 0 {
		t.Fatalf("serial steady-state cycle allocates %.1f/op, want 0", allocs)
	}
	if allocs := run(4); allocs > 2 {
		t.Fatalf("pooled steady-state cycle allocates %.1f/op, want ≤ 2", allocs)
	}
}
