package linksim

import (
	"math"
	"testing"
)

// TestZigguratTables pins the equal-area construction: every strip
// (including the tail-folding base) has area zigV, edges descend to 0 and
// the densities ascend to f(0) = 1.
func TestZigguratTables(t *testing.T) {
	if zigX[1] != zigR || zigX[128] != 0 || zigF[128] != 1 {
		t.Fatalf("anchors drifted: x1=%v x128=%v f128=%v", zigX[1], zigX[128], zigF[128])
	}
	for i := 1; i < 128; i++ {
		if zigX[i+1] >= zigX[i] {
			t.Fatalf("edges not descending at %d: %v >= %v", i, zigX[i+1], zigX[i])
		}
		// 1e-9: the published (R, V) pair carries ~11 digits, and strip 127
		// absorbs the closure error of pinning x[128] to exactly 0.
		area := zigX[i] * (zigF[i+1] - zigF[i])
		if math.Abs(area-zigV) > 1e-9 {
			t.Fatalf("strip %d area %v, want %v", i, area, zigV)
		}
	}
	// Base strip: rectangle area equals zigV with the tail mass folded in.
	if got := zigX[0] * zigF[1]; math.Abs(got-zigV) > 1e-12 {
		t.Fatalf("base strip area %v, want %v", got, zigV)
	}
}

// TestNormDistribution: the ziggurat must actually sample N(0, 1) —
// moments, symmetry and tail mass within Monte-Carlo tolerance, and the
// same stream seed must reproduce the same sequence.
func TestNormDistribution(t *testing.T) {
	const n = 2_000_000
	st := newStream(mix(0xace, 1))
	var sum, sum2, sum3 float64
	tail2, tail344 := 0, 0
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < n; i++ {
		x := st.norm()
		sum += x
		sum2 += x * x
		sum3 += x * x * x
		if math.Abs(x) > 2 {
			tail2++
		}
		if math.Abs(x) > zigR {
			tail344++
		}
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	skew := sum3 / n
	if math.Abs(mean) > 0.005 {
		t.Fatalf("mean %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.01 {
		t.Fatalf("variance %v, want ~1", variance)
	}
	if math.Abs(skew) > 0.02 {
		t.Fatalf("third moment %v, want ~0", skew)
	}
	// P(|X| > 2) = 4.55%; P(|X| > 3.4426) ≈ 5.76e-4 — the tail path must
	// fire and carry roughly the right mass.
	if f := float64(tail2) / n; math.Abs(f-0.0455) > 0.003 {
		t.Fatalf("P(|x|>2) = %v, want ≈ 0.0455", f)
	}
	if f := float64(tail344) / n; f < 2e-4 || f > 12e-4 {
		t.Fatalf("P(|x|>R) = %v, want ≈ 5.8e-4", f)
	}
	if min > -zigR || max < zigR {
		t.Fatalf("tail never exceeded ±R: min %v max %v", min, max)
	}

	// Reproducibility: same seed, same sequence.
	a, b := newStream(42), newStream(42)
	for i := 0; i < 1000; i++ {
		if a.norm() != b.norm() {
			t.Fatalf("draw %d diverged across identically-seeded streams", i)
		}
	}
}

// TestPoissonExpMatchesPoisson: the precomputed-exponent path must be
// draw-for-draw identical to the plain path, including the zero-rate
// short-circuit consuming no draws.
func TestPoissonExpMatchesPoisson(t *testing.T) {
	for _, lambda := range []float64{0, 0.3, 1.5, 4} {
		a, b := newStream(7), newStream(7)
		exp := math.Exp(-lambda)
		for i := 0; i < 500; i++ {
			ka := a.poisson(lambda)
			kb := b.poissonExp(lambda, exp)
			if ka != kb {
				t.Fatalf("lambda %v draw %d: %d vs %d", lambda, i, ka, kb)
			}
		}
		if a.s != b.s {
			t.Fatalf("lambda %v: stream positions diverged", lambda)
		}
	}
}
