package linksim

import (
	"math"
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// randomTable builds a structurally valid table with random axes and cell
// statistics — the generator behind the round-trip property test.
func randomTable(rng *rand.Rand) *Table {
	axis := func(n int, lo, step float64) []float64 {
		out := make([]float64, n)
		v := lo
		for i := range out {
			v += step * (0.5 + rng.Float64())
			out[i] = v
		}
		return out
	}
	nE := 1 + rng.Intn(2)
	nR := 2 + rng.Intn(4)
	nO := 1 + rng.Intn(3)
	nI := 1 + rng.Intn(3)
	t := &Table{
		FormatVersion: TableFormatVersion,
		Scenario:      "chaos",
		Seed:          rng.Int63(),
		RoundsPerCell: 1 + rng.Intn(100),
		ChipRate:      125 * float64(1+rng.Intn(4)),
		SourceLevelDB: 170 + 20*rng.Float64(),
		Envs:          []string{"river", "ocean"}[:nE],
		RangesM:       axis(nR, 10, 40),
		OrientsRad:    axis(nO, 0, 0.3),
		Intensities:   axis(nI, 0, 0.2),
		LogisticK:     0.05 + rng.Float64(),
		LogisticSNR50: -10 + 40*rng.Float64(),
	}
	// Intensities must stay in [0, 1].
	for i := range t.Intensities {
		if t.Intensities[i] > 1 {
			t.Intensities[i] = 1 - float64(len(t.Intensities)-1-i)*1e-3
		}
	}
	t.Cells = make([]Cell, nE*nI*nO*nR)
	for i := range t.Cells {
		t.Cells[i] = Cell{
			PDeliver:  rng.Float64(),
			SNRMeanDB: -20 + 60*rng.Float64(),
			SNRStdDB:  rng.Float64() * 5,
			CorrMean:  rng.Float64() * 10,
			DelayMs:   rng.Float64() * 500,
		}
	}
	return t
}

// TestTableRoundTripProperty: Encode→Decode is the identity on valid
// tables, across 50 randomly generated grids.
func TestTableRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 50; trial++ {
		orig := randomTable(rng)
		if err := orig.Validate(); err != nil {
			t.Fatalf("trial %d: generator produced invalid table: %v", trial, err)
		}
		data, err := orig.Encode()
		if err != nil {
			t.Fatalf("trial %d: encode: %v", trial, err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("trial %d: decode: %v", trial, err)
		}
		if !reflect.DeepEqual(orig, back) {
			t.Fatalf("trial %d: round trip changed the table", trial)
		}
		// A second encode of the decoded table yields identical bytes —
		// the stability the committed-artifact diff relies on.
		data2, err := back.Encode()
		if err != nil {
			t.Fatalf("trial %d: re-encode: %v", trial, err)
		}
		if string(data) != string(data2) {
			t.Fatalf("trial %d: encoding not byte-stable", trial)
		}
	}
}

// TestTableLoadWrite exercises the file round trip.
func TestTableLoadWrite(t *testing.T) {
	orig := randomTable(rand.New(rand.NewSource(7)))
	path := filepath.Join(t.TempDir(), "cal.json")
	if err := orig.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(orig, back) {
		t.Fatal("file round trip changed the table")
	}
}

// TestTableValidateRejections pins the validator's rejection surface.
func TestTableValidateRejections(t *testing.T) {
	mk := func() *Table { return randomTable(rand.New(rand.NewSource(3))) }
	cases := []struct {
		name  string
		wreck func(*Table)
		want  string
	}{
		{"version", func(tb *Table) { tb.FormatVersion = 99 }, "format version"},
		{"empty axis", func(tb *Table) { tb.RangesM = nil }, "empty axis"},
		{"descending axis", func(tb *Table) { tb.RangesM[0], tb.RangesM[1] = tb.RangesM[1], tb.RangesM[0] }, "not ascending"},
		{"duplicate axis", func(tb *Table) { tb.RangesM[1] = tb.RangesM[0] }, "duplicate"},
		{"intensity range", func(tb *Table) { tb.Intensities[0] = -0.1 }, "outside [0, 1]"},
		{"cell count", func(tb *Table) { tb.Cells = tb.Cells[:len(tb.Cells)-1] }, "cells"},
		{"probability clamp", func(tb *Table) { tb.Cells[0].PDeliver = 1.5 }, "outside [0, 1]"},
		{"negative stat", func(tb *Table) { tb.Cells[0].SNRStdDB = -1 }, "negative"},
		{"chip rate", func(tb *Table) { tb.ChipRate = 0 }, "chip rate"},
	}
	for _, tc := range cases {
		tb := mk()
		tc.wreck(tb)
		err := tb.Validate()
		if err == nil {
			t.Fatalf("%s: corruption accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestDefaultTableSanity is the committed-artifact contract: the embedded
// calibration table validates, its delivery probabilities are clamped to
// [0, 1] and monotone non-increasing along the range axis in every
// (environment, intensity, orientation) series, and its provenance fields
// are populated.
func TestDefaultTableSanity(t *testing.T) {
	tab := DefaultTable()
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if tab.Scenario == "" || tab.RoundsPerCell < 1 || tab.ChipRate <= 0 {
		t.Fatalf("provenance missing: scenario=%q rounds=%d chip=%g",
			tab.Scenario, tab.RoundsPerCell, tab.ChipRate)
	}
	for ei := range tab.Envs {
		for ii := range tab.Intensities {
			for oi := range tab.OrientsRad {
				prev := math.Inf(1)
				for ri := range tab.RangesM {
					c := tab.CellAt(ei, ii, oi, ri)
					if c.PDeliver < 0 || c.PDeliver > 1 {
						t.Fatalf("env %d int %d orient %d range %d: p=%g outside [0,1]",
							ei, ii, oi, ri, c.PDeliver)
					}
					if c.PDeliver > prev {
						t.Fatalf("env %d int %d orient %d: p increases along range at index %d (%g > %g)",
							ei, ii, oi, ri, c.PDeliver, prev)
					}
					prev = c.PDeliver
				}
			}
		}
	}
}

// TestBracket pins the interpolation bracket's clamped extrapolation.
func TestBracket(t *testing.T) {
	axis := []float64{10, 20, 40}
	cases := []struct {
		v     float64
		wantI int
		wantW float64
	}{
		{5, 0, 0}, {10, 0, 0}, {15, 0, 0.5}, {20, 0, 1}, {30, 1, 0.5}, {40, 1, 1}, {99, 1, 1},
	}
	for _, tc := range cases {
		i, w := bracket(axis, tc.v)
		if i != tc.wantI || math.Abs(w-tc.wantW) > 1e-12 {
			t.Fatalf("bracket(%g) = (%d, %g), want (%d, %g)", tc.v, i, w, tc.wantI, tc.wantW)
		}
	}
}

// TestLookupInterpolates: grid points reproduce exactly, midpoints land
// between their neighbours, and the intensity axis blends planes.
func TestLookupInterpolates(t *testing.T) {
	tab := DefaultTable()
	coord := tab.Resolve(tab.RangesM[0], tab.OrientsRad[0])
	got := tab.Lookup(0, coord, tab.Intensities[0])
	want := tab.CellAt(0, 0, 0, 0)
	if got != want {
		t.Fatalf("grid-point lookup %+v != cell %+v", got, want)
	}

	mid := (tab.RangesM[0] + tab.RangesM[1]) / 2
	coord = tab.Resolve(mid, tab.OrientsRad[0])
	got = tab.Lookup(0, coord, tab.Intensities[0])
	a := tab.CellAt(0, 0, 0, 0).PDeliver
	b := tab.CellAt(0, 0, 0, 1).PDeliver
	lo, hi := math.Min(a, b), math.Max(a, b)
	if got.PDeliver < lo-1e-12 || got.PDeliver > hi+1e-12 {
		t.Fatalf("midpoint p=%g outside neighbour envelope [%g, %g]", got.PDeliver, lo, hi)
	}

	// Orientation folds: -θ and +θ resolve to the same coordinates.
	if tab.Resolve(100, -0.4) != tab.Resolve(100, 0.4) {
		t.Fatal("orientation not folded to |θ|")
	}
}

// TestShiftDelivery pins the odds-space SNR shift: identity at Δ=0,
// monotone in Δ, hard cells stay hard, output stays a probability.
func TestShiftDelivery(t *testing.T) {
	tab := DefaultTable()
	if got := tab.ShiftDelivery(0.6, 0); got != 0.6 {
		t.Fatalf("Δ=0 moved p: %g", got)
	}
	if got := tab.ShiftDelivery(0, 10); got != 0 {
		t.Fatalf("hard-0 cell moved: %g", got)
	}
	if got := tab.ShiftDelivery(1, -10); got != 1 {
		t.Fatalf("hard-1 cell moved: %g", got)
	}
	prev := 0.0
	for d := -12.0; d <= 12; d += 3 {
		p := tab.ShiftDelivery(0.5, d)
		if p <= 0 || p >= 1 {
			t.Fatalf("shift(0.5, %g) = %g escaped (0, 1)", d, p)
		}
		if p <= prev {
			t.Fatalf("shift not monotone at Δ=%g: %g <= %g", d, p, prev)
		}
		prev = p
	}
}

// TestIsotonicNonIncreasing pins the PAV fit.
func TestIsotonicNonIncreasing(t *testing.T) {
	s := []float64{0.9, 0.95, 0.5, 0.6, 0.2}
	isotonicNonIncreasing(s)
	for i := 1; i < len(s); i++ {
		if s[i] > s[i-1]+1e-12 {
			t.Fatalf("not non-increasing: %v", s)
		}
	}
	// Pooling preserves the mean.
	sum := 0.0
	for _, v := range s {
		sum += v
	}
	if math.Abs(sum-(0.9+0.95+0.5+0.6+0.2)) > 1e-9 {
		t.Fatalf("PAV changed the mass: %v", s)
	}
	// Already-monotone input is untouched.
	id := []float64{1, 0.8, 0.3, 0.3, 0}
	want := append([]float64(nil), id...)
	isotonicNonIncreasing(id)
	if !reflect.DeepEqual(id, want) {
		t.Fatalf("monotone input modified: %v", id)
	}
}
