package linksim

import (
	"fmt"
	"strings"
	"testing"

	"vab/internal/faults"
	"vab/internal/mac"
)

// probationPolicy is the recovery-stack policy the fleet tests share.
func probationPolicy() mac.PollPolicy {
	return mac.PollPolicy{
		MaxRetries: 2, BackoffSlots: 8, DropAfter: 3,
		Probation: true, ProbeBackoffBase: 2, ProbeBackoffMax: 8,
	}
}

// transcript renders cycle reports with full float bit fidelity (%x), so
// byte comparison catches any numeric divergence.
func transcript(reps []CycleReport) string {
	var b strings.Builder
	for _, r := range reps {
		fmt.Fprintf(&b, "c%d p%d d%d r%d pr%d re%d L%d Q%d D%d snr%x delay%x corr%x sev%x chips%x h%d/%d z%x\n",
			r.Cycle, r.Polled, r.Delivered, r.Retries, r.Probes, r.Restored,
			r.Live, r.Quarantined, r.Dropped,
			r.MeanSNRdB, r.MeanDelayMs, r.CorrectedPerFrame, r.Severity, r.ChipRate,
			r.Hero.Checks, r.Hero.Diverged, r.Hero.MeanAbsZ)
	}
	return b.String()
}

// runCampaign runs a seeded campaign at the given worker count and returns
// the full transcript.
func runCampaign(t *testing.T, workers, cycles int) string {
	t.Helper()
	fleet, err := NewFleet(Config{
		Nodes:  20_000,
		Policy: probationPolicy(),
		Seed:   17,
	})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := mac.NewRateController([]float64{125, 250, 500}, 12)
	if err != nil {
		t.Fatal(err)
	}
	fleet.EnableRateAdaptation(rc)
	sc, err := faults.Parse("chaos", 17+9001)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := faults.NewEngine(sc)
	if err != nil {
		t.Fatal(err)
	}
	fleet.SetFaultEngine(eng)
	fleet.SetWorkers(workers)

	reps := make([]CycleReport, 0, cycles)
	for c := 0; c < cycles; c++ {
		rep, err := fleet.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		reps = append(reps, rep)
	}
	return transcript(reps)
}

// TestFleetDeterminismAcrossWorkers: the full campaign transcript — every
// counter and every float — is byte-identical at 1 and 8 workers, under
// faults, probation and rate adaptation. This is the abstract tier's core
// reproducibility contract, the one the CI cmp leg checks end-to-end.
func TestFleetDeterminismAcrossWorkers(t *testing.T) {
	serial := runCampaign(t, 1, 8)
	parallel := runCampaign(t, 8, 8)
	if serial != parallel {
		t.Fatalf("workers=1 and workers=8 transcripts differ:\n--- w1\n%s--- w8\n%s", serial, parallel)
	}
	again := runCampaign(t, 8, 8)
	if parallel != again {
		t.Fatal("same-seed rerun differs")
	}
	if !strings.Contains(serial, "Q") || len(serial) == 0 {
		t.Fatal("empty transcript")
	}
}

// hardTable builds a table whose delivery is exactly 0 or 1 by range —
// 50 m always delivers, 200 m never does — turning the statistical model
// into a deterministic oracle the mac.Scheduler can be replayed against.
func hardTable() *Table {
	mk := func(p float64) Cell {
		return Cell{PDeliver: p, SNRMeanDB: 15, SNRStdDB: 1, CorrMean: 0, DelayMs: 50}
	}
	return &Table{
		FormatVersion: TableFormatVersion,
		Scenario:      "none",
		Seed:          1,
		RoundsPerCell: 1,
		ChipRate:      500,
		SourceLevelDB: 180,
		Envs:          []string{"river"},
		RangesM:       []float64{50, 200},
		OrientsRad:    []float64{0},
		Intensities:   []float64{0},
		LogisticK:     0.5,
		LogisticSNR50: 10,
		Cells:         []Cell{mk(1), mk(0)},
	}
}

// scriptTrx makes the waveform scheduler reproduce the hard table's
// channel: addresses in the ok set always deliver, the rest always fail.
type scriptTrx struct{ ok map[byte]bool }

func (s scriptTrx) Poll(addr byte) (mac.RoundResult, error) {
	if s.ok[addr] {
		return mac.RoundResult{OK: true, SNRdB: 15, Payload: []byte{addr}}, nil
	}
	return mac.RoundResult{}, nil
}

// TestFleetMatchesMacScheduler replays the same deterministic channel
// through the abstract fleet and through a real mac.Scheduler and checks
// the MAC-semantic state — polls, successes, retries, silent cycles,
// health, quarantine trajectory, drops — matches field-for-field every
// cycle. This is the "reuses the mac decision phase" guarantee: identical
// outcomes must produce identical decisions.
func TestFleetMatchesMacScheduler(t *testing.T) {
	policy := probationPolicy()
	placements := []Placement{
		{RangeM: 50}, {RangeM: 200}, {RangeM: 50}, {RangeM: 200}, {RangeM: 50}, {RangeM: 200},
	}
	fleet, err := NewFleet(Config{
		Placements: placements,
		Policy:     policy,
		Table:      hardTable(),
		Seed:       5,
	})
	if err != nil {
		t.Fatal(err)
	}

	sched, err := mac.NewScheduler(scriptTrx{ok: map[byte]bool{1: true, 3: true, 5: true}}, policy)
	if err != nil {
		t.Fatal(err)
	}
	for addr := byte(1); addr <= 6; addr++ {
		sched.AddNode(addr)
	}

	const cycles = 16
	for c := 0; c < cycles; c++ {
		frep, err := fleet.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		srep, err := sched.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		if frep.Polled != srep.Polled || frep.Delivered != srep.Delivered ||
			frep.Retries != srep.Retries || frep.Probes != srep.Probes {
			t.Fatalf("cycle %d: report mismatch: fleet {p%d d%d r%d pr%d} vs sched {p%d d%d r%d pr%d}",
				c, frep.Polled, frep.Delivered, frep.Retries, frep.Probes,
				srep.Polled, srep.Delivered, srep.Retries, srep.Probes)
		}
		want := sched.Nodes() // ascending address = ascending node index here
		for i := range placements {
			got, w := fleet.NodeState(i), want[i]
			if got.Polls != w.Polls || got.Successes != w.Successes ||
				got.Retries != w.Retries || got.SilentCycles != w.SilentCycles ||
				got.Health != w.Health || got.Quarantined != w.Quarantined ||
				got.QuarantineEntries != w.QuarantineEntries || got.Dropped != w.Dropped {
				t.Fatalf("cycle %d node %d: state diverged:\nabstract: %+v\nwaveform: %+v", c, i, got, w)
			}
		}
	}
	// The trajectory must have exercised the interesting transitions.
	if st := fleet.NodeState(1); st.QuarantineEntries == 0 {
		t.Fatal("failing node never quarantined — the parity test lost its teeth")
	}
	if st := fleet.NodeState(0); st.Successes != cycles {
		t.Fatalf("delivering node succeeded %d/%d cycles", fleet.NodeState(0).Successes, cycles)
	}
}

// TestFleetEventDrivenProbeCalendar: quarantined nodes cost nothing except
// on their calendared cycles — Polled shrinks to the live population, and
// probes appear exactly on the backoff schedule.
func TestFleetEventDrivenProbeCalendar(t *testing.T) {
	fleet, err := NewFleet(Config{
		Placements: []Placement{{RangeM: 50}, {RangeM: 200}},
		Policy:     probationPolicy(),
		Table:      hardTable(),
		Seed:       9,
	})
	if err != nil {
		t.Fatal(err)
	}
	type obs struct{ polled, probes int }
	var got []obs
	for c := 0; c < 10; c++ {
		rep, err := fleet.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, obs{rep.Polled, rep.Probes})
	}
	// Node 1 fails cycles 0-2, quarantines at cycle 2 (DropAfter 3), first
	// probe at 2+2=4, next at 4+4=8 (backoff doubling, cap 8).
	want := []obs{{2, 0}, {2, 0}, {2, 0}, {1, 0}, {2, 1}, {1, 0}, {1, 0}, {1, 0}, {2, 1}, {1, 0}}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cycle %d: polled/probes %+v, want %+v (full: %+v)", i, got[i], want[i], got)
		}
	}
}

// TestFleetRateAdaptationEngages: the controller starts at the most
// robust rate; with strong drawn SNR it climbs to the calibrated rate
// (commanded rate shifts the draws along the logistic transfer on the
// way), while an all-loss fleet pins the floor.
func TestFleetRateAdaptationEngages(t *testing.T) {
	strong := hardTable()
	for i := range strong.Cells {
		strong.Cells[i].SNRMeanDB = 40
	}
	fleet, err := NewFleet(Config{
		Placements: []Placement{{RangeM: 50}, {RangeM: 50}, {RangeM: 50}},
		Policy:     mac.PollPolicy{MaxRetries: 1, BackoffSlots: 8}, // never drop
		Table:      strong,
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := mac.NewRateController([]float64{125, 250, 500}, 12)
	if err != nil {
		t.Fatal(err)
	}
	fleet.EnableRateAdaptation(rc)
	first, err := fleet.RunCycle()
	if err != nil {
		t.Fatal(err)
	}
	if first.ChipRate != 125 {
		t.Fatalf("first cycle commanded %.0f cps, want the robust floor 125", first.ChipRate)
	}
	var last CycleReport
	for c := 0; c < 5; c++ {
		last, err = fleet.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.ChipRate != 500 {
		t.Fatalf("strong-SNR campaign holds chip rate %.0f, want climb to 500", last.ChipRate)
	}

	weak, err := NewFleet(Config{
		Placements: []Placement{{RangeM: 200}, {RangeM: 200}},
		Policy:     mac.PollPolicy{MaxRetries: 1, BackoffSlots: 8},
		Table:      hardTable(),
		Seed:       3,
	})
	if err != nil {
		t.Fatal(err)
	}
	rcWeak, err := mac.NewRateController([]float64{125, 250, 500}, 12)
	if err != nil {
		t.Fatal(err)
	}
	weak.EnableRateAdaptation(rcWeak)
	for c := 0; c < 4; c++ {
		last, err = weak.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
	}
	if last.ChipRate != 125 {
		t.Fatalf("all-loss campaign commands %.0f cps, want the floor 125", last.ChipRate)
	}
}

// TestNewFleetValidation pins the constructor's rejection surface.
func TestNewFleetValidation(t *testing.T) {
	if _, err := NewFleet(Config{Nodes: 0, Policy: mac.DefaultPollPolicy()}); err == nil {
		t.Fatal("zero nodes accepted")
	}
	if _, err := NewFleet(Config{Nodes: 3, Placements: []Placement{{RangeM: 50}}, Policy: mac.DefaultPollPolicy()}); err == nil {
		t.Fatal("conflicting Nodes vs Placements accepted")
	}
	if _, err := NewFleet(Config{Nodes: 2, Policy: mac.DefaultPollPolicy(), Env: "lake"}); err == nil {
		t.Fatal("uncalibrated environment accepted")
	}
	if _, err := NewFleet(Config{Nodes: 2, Policy: mac.PollPolicy{MaxRetries: -1}}); err == nil {
		t.Fatal("invalid policy accepted")
	}
}
