package linksim

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"vab/internal/core"
	"vab/internal/faults"
	"vab/internal/ocean"
)

// Environments the calibrator (and the abstract tier) knows by name.
var envPresets = map[string]func() *ocean.Environment{
	"river": ocean.CharlesRiver,
	"ocean": ocean.AtlanticCoastal,
}

// EnvByName builds a calibration environment preset.
func EnvByName(name string) (*ocean.Environment, error) {
	mk, ok := envPresets[name]
	if !ok {
		names := make([]string, 0, len(envPresets))
		for n := range envPresets {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, fmt.Errorf("linksim: unknown environment %q (have %v)", name, names)
	}
	return mk(), nil
}

// CalibrateConfig is a calibration campaign: the grid to sample and the
// waveform effort per cell. The zero value is not runnable; start from
// DefaultCalibrateConfig.
type CalibrateConfig struct {
	Envs        []string
	RangesM     []float64
	OrientsRad  []float64
	Intensities []float64

	// Scenario is the fault spec (faults.Parse syntax) behind the
	// intensity axis; each non-zero grid intensity runs the waveform tier
	// under Scale(intensity) of this scenario.
	Scenario string

	RoundsPerCell int
	Seed          int64
	// Workers bounds the cell worker pool (<= 0 → serial). Cells own
	// their seeds, so the table is bit-identical at any width.
	Workers int
}

// DefaultCalibrateConfig is the committed-table grid: both campaign
// environments, the paper's range span, the E1 orientation set, and three
// points along the chaos-severity axis, at enough rounds per cell to pin
// delivery probabilities to a few percent.
func DefaultCalibrateConfig() CalibrateConfig {
	return CalibrateConfig{
		Envs:          []string{"river", "ocean"},
		RangesM:       []float64{25, 50, 100, 150, 200, 250, 300},
		OrientsRad:    []float64{0, 30 * math.Pi / 180, 60 * math.Pi / 180},
		Intensities:   []float64{0, 0.5, 1},
		Scenario:      "chaos",
		RoundsPerCell: 40,
		Seed:          7,
	}
}

// Validate reports unrunnable calibration configs.
func (c *CalibrateConfig) Validate() error {
	if len(c.Envs) == 0 || len(c.RangesM) == 0 || len(c.OrientsRad) == 0 || len(c.Intensities) == 0 {
		return fmt.Errorf("linksim: calibration grid has an empty axis")
	}
	if c.RoundsPerCell < 1 {
		return fmt.Errorf("linksim: rounds per cell %d must be positive", c.RoundsPerCell)
	}
	for _, name := range c.Envs {
		if _, err := EnvByName(name); err != nil {
			return err
		}
	}
	if _, err := faults.Parse(c.Scenario, 1); err != nil {
		return fmt.Errorf("linksim: calibration scenario: %w", err)
	}
	return nil
}

// Calibrate measures a Table against the waveform tier: every grid cell
// runs RoundsPerCell full waveform rounds (core.System.RunRound) at its
// geometry, environment and scaled fault scenario, and the observed
// delivery fraction, SNR distribution and correction counts become the
// cell's statistics. Post-processing enforces the physical shape the
// model relies on: delivery probability is made monotone non-increasing
// along range (isotonic regression) and clamped to [0, 1], and the
// logistic SNR→delivery transfer is fitted across all cells.
//
// The table is a pure function of cfg — per-cell seeds derive from
// (cfg.Seed, cell index), so any worker count yields the same bytes.
func Calibrate(cfg CalibrateConfig) (*Table, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	t := &Table{
		FormatVersion: TableFormatVersion,
		Scenario:      cfg.Scenario,
		Seed:          cfg.Seed,
		RoundsPerCell: cfg.RoundsPerCell,
		Envs:          append([]string(nil), cfg.Envs...),
		RangesM:       append([]float64(nil), cfg.RangesM...),
		OrientsRad:    append([]float64(nil), cfg.OrientsRad...),
		Intensities:   append([]float64(nil), cfg.Intensities...),
		Cells:         make([]Cell, len(cfg.Envs)*len(cfg.Intensities)*len(cfg.OrientsRad)*len(cfg.RangesM)),
	}

	type job struct {
		idx               int
		env               string
		intensity         float64
		orientRad, rangeM float64
	}
	var jobs []job
	for ei, env := range cfg.Envs {
		for ii, in := range cfg.Intensities {
			for oi, or := range cfg.OrientsRad {
				for ri, r := range cfg.RangesM {
					jobs = append(jobs, job{
						idx: t.cellIndex(ei, ii, oi, ri),
						env: env, intensity: in, orientRad: or, rangeM: r,
					})
				}
			}
		}
	}

	errs := make([]error, len(jobs))
	meas := make([]cellMeasurement, len(t.Cells))
	run := func(j job) error {
		m, err := calibrateCell(cfg, j.env, j.intensity, j.orientRad, j.rangeM, int64(j.idx))
		if err != nil {
			return fmt.Errorf("linksim: cell %s i=%.2g θ=%.2f r=%.0f: %w",
				j.env, j.intensity, j.orientRad, j.rangeM, err)
		}
		meas[j.idx] = m
		t.Cells[j.idx] = m.cell
		t.ChipRate = m.chipRate // identical across cells: the default PHY numerology
		t.SourceLevelDB = core.DefaultSourceLevelDB
		return nil
	}
	workers := cfg.Workers
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 {
		for _, j := range jobs {
			if err := run(j); err != nil {
				return nil, err
			}
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(jobs) {
						return
					}
					errs[i] = run(jobs[i])
				}
			}()
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}

	// Cells too sparse to estimate an SNR distribution (fewer than three
	// delivered frames) fall back to the analytic budget for the SNR
	// location — but the waveform estimator sits a few dB below the
	// closed-form tone SNR (it pays for acquisition error, ISI and SI
	// residue; X3 documents the same gap for delivery). Measure that bias
	// on the well-sampled cells and apply it to the fallbacks, so SNR
	// means never jump *up* where the link got too weak to measure.
	var biasSum float64
	var biasN int
	for i := range meas {
		if meas[i].delivered >= 3 {
			biasSum += meas[i].analyticSNRdB - t.Cells[i].SNRMeanDB
			biasN++
		}
	}
	if biasN > 0 {
		bias := biasSum / float64(biasN)
		for i := range meas {
			if meas[i].delivered < 3 {
				t.Cells[i].SNRMeanDB = meas[i].analyticSNRdB - bias
			}
		}
	}

	// Shape enforcement: delivery probability monotone non-increasing in
	// range within every (env, intensity, orientation) series. Monte-Carlo
	// wiggle would otherwise let a far cell beat a near one, which the
	// model (and the satellite monotonicity test) forbids.
	for ei := range cfg.Envs {
		for ii := range cfg.Intensities {
			for oi := range cfg.OrientsRad {
				series := make([]float64, len(cfg.RangesM))
				for ri := range cfg.RangesM {
					series[ri] = t.Cells[t.cellIndex(ei, ii, oi, ri)].PDeliver
				}
				isotonicNonIncreasing(series)
				for ri := range cfg.RangesM {
					t.Cells[t.cellIndex(ei, ii, oi, ri)].PDeliver = clamp01(series[ri])
				}
			}
		}
	}

	t.LogisticK, t.LogisticSNR50 = fitLogistic(t.Cells)
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// cellMeasurement is one cell's raw campaign outcome: the provisional
// cell, the analytic budget's SNR prediction at the same geometry, and how
// many frames the statistics rest on.
type cellMeasurement struct {
	cell          Cell
	analyticSNRdB float64
	delivered     int
	chipRate      float64
}

// calibrateCell measures one grid cell with the waveform tier.
func calibrateCell(cfg CalibrateConfig, envName string, intensity, orientRad, rangeM float64, cellIdx int64) (cellMeasurement, error) {
	var m cellMeasurement
	env, err := EnvByName(envName)
	if err != nil {
		return m, err
	}
	design, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		return m, err
	}
	cellSeed := int64(mix(uint64(cfg.Seed), uint64(cellIdx)) >> 1)
	sys, err := core.NewSystem(core.SystemConfig{
		Env: env, Design: design,
		Range: rangeM, Orientation: orientRad,
		NodeAddr: 1, Seed: cellSeed,
	})
	if err != nil {
		return m, err
	}
	if intensity > 0 {
		sc, err := faults.Parse(cfg.Scenario, cellSeed+77)
		if err != nil {
			return m, err
		}
		eng, err := faults.NewEngine(sc.Scale(intensity))
		if err != nil {
			return m, err
		}
		sys.SetFaultEngine(eng)
	}

	// Pre-campaign soak, matching core.Fleet.Deploy(3600) in the fleet
	// experiments: without it the node runs from an empty energy store and
	// the measured delivery fraction reflects harvest duty-cycling at the
	// cell's range rather than the channel.
	sys.WakeNode(3600)

	delivered := 0
	var snrSum, snrSumSq, corrSum float64
	for r := 0; r < cfg.RoundsPerCell; r++ {
		sys.WakeNode(30)
		rep, err := sys.RunRound()
		if err != nil {
			return m, err
		}
		if !rep.Rx.OK() {
			continue
		}
		delivered++
		snr := 0.0
		if rep.ToneSNREst > 0 {
			snr = 10 * math.Log10(rep.ToneSNREst)
		}
		snrSum += snr
		snrSumSq += snr * snr
		corrSum += float64(rep.Rx.Corrected)
	}

	b := core.NewLinkBudget(env, design)
	b.Orientation = orientRad
	m.analyticSNRdB = b.ToneSNRdB(rangeM)
	m.delivered = delivered
	m.chipRate = sys.ChipRate()
	m.cell = Cell{
		PDeliver: float64(delivered) / float64(cfg.RoundsPerCell),
		DelayMs:  2 * rangeM / env.MeanSoundSpeed() * 1000,
	}
	switch {
	case delivered >= 3:
		mean := snrSum / float64(delivered)
		variance := snrSumSq/float64(delivered) - mean*mean
		if variance < 0 {
			variance = 0
		}
		m.cell.SNRMeanDB = mean
		m.cell.SNRStdDB = math.Sqrt(variance)
		if m.cell.SNRStdDB < 0.5 {
			m.cell.SNRStdDB = 0.5 // floor: never degenerate to a point mass
		}
		m.cell.CorrMean = corrSum / float64(delivered)
	default:
		// Too few deliveries to estimate a distribution: the analytic
		// budget provides the SNR location (bias-corrected by Calibrate
		// against the well-sampled cells), with a wide spread and the FEC
		// near its correction cliff.
		m.cell.SNRMeanDB = m.analyticSNRdB
		m.cell.SNRStdDB = 2
		if delivered > 0 {
			m.cell.CorrMean = corrSum / float64(delivered)
		} else {
			m.cell.CorrMean = 8
		}
	}
	return m, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// isotonicNonIncreasing replaces series in place with its least-squares
// monotone non-increasing fit (pool-adjacent-violators on the negated
// series).
func isotonicNonIncreasing(series []float64) {
	n := len(series)
	if n < 2 {
		return
	}
	// PAV for non-decreasing on the negated values.
	vals := make([]float64, 0, n)
	weights := make([]float64, 0, n)
	for _, v := range series {
		vals = append(vals, -v)
		weights = append(weights, 1)
		for len(vals) > 1 && vals[len(vals)-2] > vals[len(vals)-1] {
			w := weights[len(weights)-2] + weights[len(weights)-1]
			v := (vals[len(vals)-2]*weights[len(weights)-2] + vals[len(vals)-1]*weights[len(weights)-1]) / w
			vals = vals[:len(vals)-1]
			weights = weights[:len(weights)-1]
			vals[len(vals)-1] = v
			weights[len(weights)-1] = w
		}
	}
	i := 0
	for b, v := range vals {
		for k := 0; k < int(weights[b]); k++ {
			series[i] = -v
			i++
		}
	}
}

// fitLogistic fits p = 1/(1+exp(-k(snr-snr50))) across cells by a
// deterministic coarse grid search minimizing squared error. Cells pinned
// at exactly 0 or 1 still vote: they anchor the curve's tails.
func fitLogistic(cells []Cell) (k, snr50 float64) {
	minSNR, maxSNR := math.Inf(1), math.Inf(-1)
	for _, c := range cells {
		if c.SNRMeanDB < minSNR {
			minSNR = c.SNRMeanDB
		}
		if c.SNRMeanDB > maxSNR {
			maxSNR = c.SNRMeanDB
		}
	}
	if math.IsInf(minSNR, 1) || minSNR == maxSNR {
		return 0.8, minSNR - 5 // degenerate grid: a gentle default curve
	}
	bestErr := math.Inf(1)
	k, snr50 = 0.8, (minSNR+maxSNR)/2
	for kk := 0.05; kk <= 3.0; kk += 0.05 {
		for mid := minSNR - 10; mid <= maxSNR+10; mid += 0.25 {
			var sse float64
			for _, c := range cells {
				p := 1 / (1 + math.Exp(-kk*(c.SNRMeanDB-mid)))
				d := c.PDeliver - p
				sse += d * d
			}
			if sse < bestErr {
				bestErr, k, snr50 = sse, kk, mid
			}
		}
	}
	return k, snr50
}
