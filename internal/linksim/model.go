package linksim

import "math"

// Deterministic draw machinery. Every poll outcome is a pure function of
// (fleet seed, node index, cycle, attempt): a splitmix64-seeded stream per
// attempt, the same construction internal/faults uses for its plans. No
// shared RNG state exists, so outcomes are independent of evaluation
// order, worker count and history — the property behind the tier's
// bit-identical-at-any-width contract.

// splitmix64 is the avalanche mixer (identical to internal/faults').
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix chains values through the mixer into one seed.
func mix(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h = splitmix64(h ^ v)
	}
	return h
}

// drawStream is a tiny splitmix64-sequence PRNG: allocation-free and cheap
// enough to instantiate per poll attempt.
type drawStream struct{ s uint64 }

func newStream(seed uint64) drawStream { return drawStream{s: seed} }

func (d *drawStream) next() uint64 {
	d.s += 0x9e3779b97f4a7c15
	z := d.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// f64 returns a uniform draw in [0, 1) with 53-bit resolution.
func (d *drawStream) f64() float64 {
	return float64(d.next()>>11) / (1 << 53)
}

// Ziggurat tables for norm: 128 strips of equal area zigV under the
// standard normal density (Marsaglia–Tsang layout, float64 throughout).
// The delivered-poll path draws two normals per poll, so this is the
// fleet's hottest math — the ziggurat's common case is one PRNG word, two
// multiplies and a compare, where Box–Muller costs log+sqrt+cos per draw.
const (
	zigR = 3.442619855899      // right edge of strip 1: the tail threshold
	zigV = 9.91256303526217e-3 // common strip area (1/128 of unit mass, tail included)
)

var (
	zigX [129]float64 // strip right edges: x[1] = zigR, descending to x[128] = 0
	zigF [129]float64 // density at the edges: exp(-x²/2)
)

func init() {
	// Equal-area recurrence: strip i is [0, x_i] × [f(x_i), f(x_{i+1})],
	// so f(x_{i+1}) = f(x_i) + zigV/x_i. Strip 0 is the base rectangle
	// [0, x_0] × [0, f(R)] whose width x_0 = zigV/f(R) folds the tail mass
	// into the same area.
	f := math.Exp(-0.5 * zigR * zigR)
	zigX[0] = zigV / f
	zigX[1] = zigR
	for i := 2; i < 128; i++ {
		f += zigV / zigX[i-1]
		zigX[i] = math.Sqrt(-2 * math.Log(f))
	}
	zigX[128] = 0
	for i := range zigX {
		zigF[i] = math.Exp(-0.5 * zigX[i] * zigX[i])
	}
}

// norm returns a standard normal draw via the ziggurat. One next() word
// supplies the strip index (bits 0–6), the sign (bit 7) and the uniform
// (bits 11–63); draws per call vary (rejection), which is fine — every
// (node, cycle, attempt) owns its stream, so outcomes stay pure functions
// of the stream seed.
func (d *drawStream) norm() float64 {
	for {
		u := d.next()
		i := int(u & 127)
		x := float64(u>>11) / (1 << 53) * zigX[i]
		if x < zigX[i+1] {
			// Wholly under the density: the rectangle up to x_{i+1} needs
			// no pdf evaluation (~98% of draws).
			return zigSigned(u, x)
		}
		if i == 0 {
			// Base strip beyond the threshold: sample the tail by
			// Marsaglia's exponential wrap.
			for {
				ex := -math.Log(d.f64()) / zigR
				ey := -math.Log(d.f64())
				if ey+ey > ex*ex {
					return zigSigned(u, zigR+ex)
				}
			}
		}
		// Wedge: uniform height within the strip, accept under the pdf.
		if zigF[i]+d.f64()*(zigF[i+1]-zigF[i]) < math.Exp(-0.5*x*x) {
			return zigSigned(u, x)
		}
	}
}

// zigSigned applies the sign bit (bit 7) of the strip-selection word.
func zigSigned(u uint64, x float64) float64 {
	if u&128 != 0 {
		return -x
	}
	return x
}

// poisson draws k ~ Poisson(lambda) by Knuth's product method — the same
// small-rate regime the faults engine uses it in.
func (d *drawStream) poisson(lambda float64) int {
	return d.poissonExp(lambda, 0)
}

// poissonExp is poisson with the loop constant e^{-lambda} optionally
// precomputed (expNeg = 0 means "compute it here"). A cycle's hot path
// resolves each node's cell once and caches the exponent alongside it, so
// a million delivered polls skip a million math.Exp calls. lambda <= 0
// short-circuits without consuming a draw, exactly as poisson always has —
// the draw-count contract is what keeps transcripts bit-identical.
func (d *drawStream) poissonExp(lambda, expNeg float64) int {
	if lambda <= 0 {
		return 0
	}
	if expNeg == 0 {
		expNeg = math.Exp(-lambda)
	}
	k, p := 0, 1.0
	for {
		p *= d.f64()
		if p <= expNeg {
			return k
		}
		k++
	}
}

// outcome is one poll's drawn result (the abstract tier's RoundResult).
type outcome struct {
	delivered bool
	attempts  uint8 // attempts consumed (1 = first poll delivered)
	snrDB     float64
	corrected uint16
	delayMs   float64
}

// cycleModel snapshots everything a cycle's draws depend on: the per-cycle
// fault severity, the rate-controller command translated into an SNR
// delta, and the resolved calibration slice. Built once per cycle on the
// caller's goroutine, then read-only across the execution shards.
type cycleModel struct {
	table    *Table
	env      int
	severity float64 // fault severity on the table's intensity axis
	snrDelta float64 // dB shift from the commanded chip rate vs calibration
	chipRate float64 // the commanded rate itself (hero systems retune to it)
}

// resolve interpolates a node's calibration cell under this cycle's model
// parameters and applies the rate-command delivery shift. Pure in the
// model and coordinate, so resolved cells are cacheable across cycles
// whose (severity, snrDelta) match.
func (m *cycleModel) resolve(coord linkCoord) (Cell, float64) {
	cell := m.table.Lookup(m.env, coord, m.severity)
	return cell, m.table.ShiftDelivery(cell.PDeliver, m.snrDelta)
}

// pollCell draws one node's poll for a cycle from an already-resolved
// cell: up to maxAttempts independent attempts (the MAC retry budget),
// each its own seeded stream. probe attempts use a distinct stream domain
// so a probe never replays the draw of a regular poll of the same
// (node, cycle). expNegCorr is e^{-cell.CorrMean} if precomputed, else 0.
func (m *cycleModel) pollCell(seedBase uint64, node int32, cycle int, probe bool, maxAttempts int, cell Cell, p, expNegCorr float64) outcome {
	domain := uint64(0)
	if probe {
		domain = 1 << 40
	}
	out := outcome{}
	for a := 0; a < maxAttempts; a++ {
		st := newStream(mix(seedBase, domain|uint64(uint32(node)), uint64(cycle), uint64(a)))
		out.attempts = uint8(a + 1)
		if st.f64() >= p {
			continue // this attempt timed out
		}
		out.delivered = true
		out.snrDB = cell.SNRMeanDB + cell.SNRStdDB*st.norm() + m.snrDelta
		out.corrected = uint16(st.poissonExp(cell.CorrMean, expNegCorr))
		// Delay: propagation plus a small sway-scale jitter (±0.1 ms RMS).
		d := cell.DelayMs + 0.1*st.norm()
		if d < 0 {
			d = 0
		}
		out.delayMs = d
		return out
	}
	return out
}

// poll is resolve + pollCell in one step — the convenience path for
// callers outside the fleet's cached hot loop.
func (m *cycleModel) poll(seedBase uint64, node int32, coord linkCoord, cycle int, probe bool, maxAttempts int) outcome {
	cell, p := m.resolve(coord)
	return m.pollCell(seedBase, node, cycle, probe, maxAttempts, cell, p, 0)
}
