package linksim

import "math"

// Deterministic draw machinery. Every poll outcome is a pure function of
// (fleet seed, node index, cycle, attempt): a splitmix64-seeded stream per
// attempt, the same construction internal/faults uses for its plans. No
// shared RNG state exists, so outcomes are independent of evaluation
// order, worker count and history — the property behind the tier's
// bit-identical-at-any-width contract.

// splitmix64 is the avalanche mixer (identical to internal/faults').
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mix chains values through the mixer into one seed.
func mix(vals ...uint64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h = splitmix64(h ^ v)
	}
	return h
}

// drawStream is a tiny splitmix64-sequence PRNG: allocation-free and cheap
// enough to instantiate per poll attempt.
type drawStream struct{ s uint64 }

func newStream(seed uint64) drawStream { return drawStream{s: seed} }

func (d *drawStream) next() uint64 {
	d.s += 0x9e3779b97f4a7c15
	z := d.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// f64 returns a uniform draw in [0, 1) with 53-bit resolution.
func (d *drawStream) f64() float64 {
	return float64(d.next()>>11) / (1 << 53)
}

// norm returns a standard normal draw (Box–Muller; two uniforms per draw,
// no cached spare, so the stream's draw count per call is fixed).
func (d *drawStream) norm() float64 {
	u1 := d.f64()
	for u1 == 0 {
		u1 = d.f64()
	}
	u2 := d.f64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// poisson draws k ~ Poisson(lambda) by Knuth's product method — the same
// small-rate regime the faults engine uses it in.
func (d *drawStream) poisson(lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= d.f64()
		if p <= l {
			return k
		}
		k++
	}
}

// outcome is one poll's drawn result (the abstract tier's RoundResult).
type outcome struct {
	delivered bool
	attempts  uint8 // attempts consumed (1 = first poll delivered)
	snrDB     float64
	corrected uint16
	delayMs   float64
}

// cycleModel snapshots everything a cycle's draws depend on: the per-cycle
// fault severity, the rate-controller command translated into an SNR
// delta, and the resolved calibration slice. Built once per cycle on the
// caller's goroutine, then read-only across the execution shards.
type cycleModel struct {
	table    *Table
	env      int
	severity float64 // fault severity on the table's intensity axis
	snrDelta float64 // dB shift from the commanded chip rate vs calibration
	chipRate float64 // the commanded rate itself (hero systems retune to it)
}

// poll draws one node's poll for a cycle: up to maxAttempts independent
// attempts (the MAC retry budget), each its own seeded stream. probe
// attempts use a distinct stream domain so a probe never replays the
// draw of a regular poll of the same (node, cycle).
func (m *cycleModel) poll(seedBase uint64, node int32, coord linkCoord, cycle int, probe bool, maxAttempts int) outcome {
	cell := m.table.Lookup(m.env, coord, m.severity)
	p := m.table.ShiftDelivery(cell.PDeliver, m.snrDelta)
	domain := uint64(0)
	if probe {
		domain = 1 << 40
	}
	out := outcome{}
	for a := 0; a < maxAttempts; a++ {
		st := newStream(mix(seedBase, domain|uint64(uint32(node)), uint64(cycle), uint64(a)))
		out.attempts = uint8(a + 1)
		if st.f64() >= p {
			continue // this attempt timed out
		}
		out.delivered = true
		out.snrDB = cell.SNRMeanDB + cell.SNRStdDB*st.norm() + m.snrDelta
		out.corrected = uint16(st.poisson(cell.CorrMean))
		// Delay: propagation plus a small sway-scale jitter (±0.1 ms RMS).
		d := cell.DelayMs + 0.1*st.norm()
		if d < 0 {
			d = 0
		}
		out.delayMs = d
		return out
	}
	return out
}
