// Package linksim is the link-abstraction fidelity tier: a statistical
// per-link model of the Van Atta backscatter channel, calibrated against
// the waveform tier, and an event-driven cycle scheduler that runs
// 10⁵–10⁶ abstract nodes per polling cycle on it.
//
// The waveform tier (core.System/core.Fleet) is physics-exact but costs
// milliseconds per node per round — city-scale deployments are out of
// reach by brute force. This package replaces the per-round DSP with
// table-driven draws: each poll of a link samples delivery, SNR,
// FEC-correction count and propagation delay from distributions measured
// off the waveform tier over a grid of (environment, fault intensity,
// orientation, range) cells. The calibration table is a serializable,
// versioned artifact (see Table): committed under testdata/, embedded in
// the binary, and regenerable with `vabsim -calibrate` — per "On the
// Reusability of Post-Experimental Field Data", campaign statistics are
// reusable data, not throwaway sweep output.
//
// Three properties tie the abstraction to the ground truth:
//
//   - Calibration. Every cell is measured by running the real waveform
//     pipeline (core.System.RunRound) with the real fault engine; the
//     delivery-probability axis is made monotone along range by isotonic
//     regression, and a logistic SNR→delivery transfer is fitted across
//     cells so chip-rate changes and severity shifts translate into
//     principled probability adjustments.
//   - Shared MAC semantics. The abstract scheduler does not reimplement
//     the polling protocol: it calls the same exported decision-phase
//     primitives (mac.FoldDelivered, PollPolicy.FoldPollFailure, …) the
//     waveform scheduler uses, and feeds the same mac.RateController, so
//     probation, health and rate stepdown behave identically by
//     construction.
//   - Hero links. Every cycle a configurable subset of links is promoted
//     to full waveform fidelity and cross-checked against the model
//     online; divergence counters and an SNR z-score histogram are
//     exported through internal/telemetry, so drift between the tiers is
//     a monitored quantity, not an assumption.
//
// Determinism contract: every draw is a pure function of (fleet seed,
// node index, cycle, attempt) via splitmix64 — cycle outcomes are
// bit-identical at any SetWorkers width, matching the repo-wide seeded
// reproducibility contract.
package linksim
