package linksim

// probeWheel is the fleet's probe calendar: cycle → quarantined nodes
// whose re-probe is due then. The previous implementation was a
// map[int][]int32 with a per-cycle sort.Slice — two allocations and a
// closure-driven sort on every cycle that touched probation. The wheel
// replaces it with a power-of-two ring of reusable buckets plus an
// overflow list, under three invariants:
//
//  1. Exact buckets. The wheel spans `horizon` cycles (sized past the
//     policy's ProbeHorizon), so every in-wheel entry due at cycle d
//     lives in bucket d&mask and nothing else does: re-probe intervals
//     are ≥ 1 and ≤ ProbeHorizon < horizon, so two co-resident dues can
//     never alias one bucket. Entries farther out than the horizon go to
//     the overflow list, which take() drains as their cycles come up —
//     far-future probes cost a scan only while any exist.
//  2. Ascending buckets, no sort. schedule() insertion-sorts each node
//     into its bucket from the tail. Within one fold phase nodes are
//     scheduled in ascending order (the fold walks the work list
//     ascending), so the common insert is a pure append; only an entry
//     from a *later* cycle's fold landing below an earlier fold's run
//     shifts, and buckets are small (the nodes of one future cycle's
//     probe schedule).
//  3. Reused storage. take() hands the bucket back truncated to length
//     zero, so steady-state scheduling never allocates; the slice a
//     take() returns is valid until the next take().
//
// Stale entries are the caller's concern, as with the map: an entry
// whose node was restored or re-scheduled since insertion is skipped by
// the ProbeDueAt guard when its bucket comes up.
type probeWheel struct {
	mask     int       // len(buckets)-1; len is a power of two
	buckets  [][]int32 // ring of per-cycle due lists, each ascending
	overflow []overflowProbe
	drained  []int32 // take() scratch: overflow entries coming due
	merged   []int32 // take() scratch: bucket ∪ drained
}

// overflowProbe is a far-future calendar entry: beyond the wheel span at
// schedule time, held with its absolute due cycle.
type overflowProbe struct {
	due  int
	node int32
}

// newProbeWheel sizes the ring to cover `span` cycles ahead (clamped to
// [8, 1024] buckets; anything farther rides the overflow list).
func newProbeWheel(span int) probeWheel {
	n := 8
	for n < span+1 && n < 1024 {
		n *= 2
	}
	return probeWheel{mask: n - 1, buckets: make([][]int32, n)}
}

// schedule calendars node's re-probe at cycle `due`, seen from `now`.
// Dues that are not in the future (impossible under the MAC policies,
// whose re-probe intervals are ≥ 1 cycle) are clamped to now+1 rather
// than silently landing in an already-consumed bucket.
func (w *probeWheel) schedule(node int32, due, now int) {
	if due <= now {
		due = now + 1
	}
	if due-now > w.mask {
		w.overflow = append(w.overflow, overflowProbe{due: due, node: node})
		return
	}
	b := w.buckets[due&w.mask]
	b = append(b, node)
	for j := len(b) - 1; j > 0 && b[j-1] > node; j-- {
		b[j-1], b[j] = b[j], b[j-1]
	}
	w.buckets[due&w.mask] = b
}

// take returns the ascending node list due at `cycle` and recycles the
// bucket's storage. The returned slice is valid until the next take or
// schedule beyond the horizon.
func (w *probeWheel) take(cycle int) []int32 {
	idx := cycle & w.mask
	b := w.buckets[idx]
	w.buckets[idx] = b[:0]
	if len(w.overflow) == 0 {
		return b
	}
	// Drain overflow entries whose cycle has come (≤, not ==, so an entry
	// could never linger past its due even if a horizon changed under it).
	kept := w.overflow[:0]
	w.drained = w.drained[:0]
	for _, e := range w.overflow {
		if e.due <= cycle {
			w.drained = append(w.drained, e.node)
			for j := len(w.drained) - 1; j > 0 && w.drained[j-1] > e.node; j-- {
				w.drained[j-1], w.drained[j] = w.drained[j], w.drained[j-1]
			}
		} else {
			kept = append(kept, e)
		}
	}
	w.overflow = kept
	if len(w.drained) == 0 {
		return b
	}
	// Merge the (rare) overflow arrivals with the bucket, ascending.
	w.merged = mergeSortedInto(w.merged, b, w.drained)
	return w.merged
}

// pending counts calendared entries across the wheel and overflow —
// test and debugging instrumentation, not a hot path.
func (w *probeWheel) pending() int {
	n := len(w.overflow)
	for _, b := range w.buckets {
		n += len(b)
	}
	return n
}

// mergeSortedInto merges two ascending int32 slices into dst (truncated,
// then appended; dst must not alias a or b).
func mergeSortedInto(dst, a, b []int32) []int32 {
	dst = dst[:0]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}
