package linksim

import (
	"math"

	"vab/internal/core"
	"vab/internal/telemetry"
)

// Hero links: the abstraction's online cross-check. Every cycle a small,
// deterministically chosen subset of the scheduled polls is *also* run at
// full waveform fidelity — a real core.System at the node's exact
// geometry, under the fleet's fault engine aligned to the same scenario
// clock — and the waveform outcome is scored against the calibrated cell
// the model drew from. Divergence is counted, histogrammed and exported
// through internal/telemetry, so the abstraction's validity is monitored
// continuously rather than assumed from an offline calibration run.

// heroZBudget is the SNR divergence budget: a hero check diverges when the
// mean waveform SNR sits more than this many standard errors from the
// cell's calibrated mean (see DESIGN.md, "Fidelity tiers").
const heroZBudget = 3.0

// HeroReport summarizes one cycle's hero-link cross-checks.
type HeroReport struct {
	Checks   int     // hero links promoted this cycle
	Diverged int     // checks outside the divergence budget
	MeanAbsZ float64 // mean |z| of the SNR comparison (0 if no checks)
}

// heroMetrics instruments the cross-check. Zero value = noop.
type heroMetrics struct {
	checks   *telemetry.Counter
	diverged *telemetry.Counter
	zScore   *telemetry.Histogram
	pGap     *telemetry.Gauge
}

// heroChecker owns the waveform machinery the cross-check needs. Systems
// are built on demand per promoted link — hero counts are single-digit, so
// construction cost stays off the abstract tier's critical path complexity.
type heroChecker struct {
	design *core.VanAttaDesign
	envCfg core.SystemConfig
	met    heroMetrics
}

func newHeroChecker(f *Fleet) (*heroChecker, error) {
	env, err := EnvByName(f.cfg.Env)
	if err != nil {
		return nil, err
	}
	design, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		return nil, err
	}
	return &heroChecker{
		design: design,
		envCfg: core.SystemConfig{Env: env, Design: design},
	}, nil
}

func (h *heroChecker) instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	h.met = heroMetrics{
		checks: reg.Counter("vab_linksim_hero_checks_total",
			"Hero links promoted to waveform fidelity."),
		diverged: reg.Counter("vab_linksim_hero_diverged_total",
			"Hero checks outside the divergence budget."),
		zScore: reg.Histogram("vab_linksim_hero_snr_z",
			"SNR z-score of hero waveform runs against the calibrated cell.",
			telemetry.LinearBuckets(-4, 1, 9)),
		pGap: reg.Gauge("vab_linksim_hero_delivery_gap",
			"Latest |waveform delivery fraction - model delivery probability|."),
	}
}

// pick selects which scheduled polls this cycle promotes: a seeded draw
// over the work list with rejection on duplicates — a pure function of
// (fleet seed, cycle), independent of worker count.
func (h *heroChecker) pick(f *Fleet, cycle int, work []workItem) []int32 {
	want := f.cfg.HeroLinks
	if want > len(work) {
		want = len(work)
	}
	const heroDomain = 0x4865726f // hero draws, distinct from poll/placement streams
	st := newStream(mix(f.seedBase, heroDomain, uint64(cycle)))
	picked := make([]int32, 0, want)
	seen := make(map[int32]bool, want)
	for tries := 0; len(picked) < want && tries < 16*want; tries++ {
		w := work[int(st.next()%uint64(len(work)))]
		if w.probe || seen[w.node] {
			continue // probes are single-attempt oddballs; compare regular polls
		}
		seen[w.node] = true
		picked = append(picked, w.node)
	}
	return picked
}

// check runs the promoted links at waveform fidelity and scores them.
func (h *heroChecker) check(f *Fleet, model *cycleModel, cycle int, work []workItem) (HeroReport, error) {
	rep := HeroReport{}
	var absZSum float64
	for _, node := range h.pick(f, cycle, work) {
		cell := model.table.Lookup(model.env, f.coords[node], model.severity)
		p := model.table.ShiftDelivery(cell.PDeliver, model.snrDelta)

		cfg := h.envCfg
		cfg.Range = f.ranges[node]
		cfg.Orientation = f.orients[node]
		cfg.NodeAddr = byte(node%250) + 1
		cfg.Seed = int64(mix(f.seedBase, uint64(uint32(node)), uint64(cycle)) >> 1)
		cfg.Design = h.design.CloneDesign()
		sys, err := core.NewSystem(cfg)
		if err != nil {
			return rep, err
		}
		if f.chaos != nil {
			sys.SetFaultEngine(f.chaos)
			// One scenario clock across tiers: the hero's rounds see the
			// faults the fleet's cycle does.
			sys.SetFaultRound(cycle)
		}
		if model.chipRate != sys.ChipRate() {
			// The hero link honours the rate controller's command, like
			// every waveform poll would.
			if err := sys.SetChipRate(model.chipRate); err != nil {
				return rep, err
			}
		}
		// Same pre-campaign soak the calibrator and the fleet experiments
		// apply — the comparison targets the channel, not harvest ramp-up.
		sys.WakeNode(3600)
		delivered := 0
		var snrSum float64
		for r := 0; r < f.cfg.HeroRounds; r++ {
			sys.WakeNode(30)
			rr, err := sys.RunRound()
			if err != nil {
				return rep, err
			}
			if !rr.Rx.OK() {
				continue
			}
			delivered++
			if rr.ToneSNREst > 0 {
				snrSum += 10 * math.Log10(rr.ToneSNREst)
			}
		}

		rep.Checks++
		h.met.checks.Inc()
		frac := float64(delivered) / float64(f.cfg.HeroRounds)
		h.met.pGap.Set(math.Abs(frac - p))

		diverged := false
		// Delivery divergence: only extreme disagreement convicts — at
		// single-digit hero rounds the binomial noise floor is wide.
		if (p >= 0.9 && frac <= 0.25) || (p <= 0.1 && frac >= 0.75) {
			diverged = true
		}
		// SNR divergence: z-score of the waveform mean against the cell's
		// distribution, with the standard error of the hero sample.
		if delivered > 0 {
			mean := snrSum / float64(delivered)
			se := cell.SNRStdDB / math.Sqrt(float64(delivered))
			if se < 0.5 {
				se = 0.5
			}
			z := (mean - (cell.SNRMeanDB + model.snrDelta)) / se
			h.met.zScore.Observe(z)
			absZSum += math.Abs(z)
			if math.Abs(z) > heroZBudget {
				diverged = true
			}
		}
		if diverged {
			rep.Diverged++
			h.met.diverged.Inc()
		}
	}
	if rep.Checks > 0 {
		rep.MeanAbsZ = absZSum / float64(rep.Checks)
	}
	return rep, nil
}
