package linksim

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"

	"vab/internal/core"
	"vab/internal/faults"
	"vab/internal/mac"
	"vab/internal/telemetry"
)

// Config describes an abstract-tier fleet: how many nodes, where they sit,
// which calibration table models their links, and how many hero links per
// cycle are promoted to waveform fidelity.
type Config struct {
	// Nodes is the fleet size. The abstract tier is indexed by int32, so
	// deployments far beyond the MAC layer's 8-bit address space (the
	// waveform fleet's ceiling) are in range.
	Nodes int
	// Policy is the MAC polling policy — the same retry/probation
	// semantics the waveform scheduler applies, via the shared fold
	// primitives.
	Policy mac.PollPolicy
	// Table is the calibration artifact (nil → the embedded default).
	Table *Table
	// Env names the environment column of the table ("river", "ocean").
	Env string
	// RangeMinM/RangeMaxM bound the uniform deployment annulus
	// (0 → 25..300 m, the calibrated span).
	RangeMinM, RangeMaxM float64
	// MaxOrientRad bounds node rotation, drawn uniform in ±MaxOrientRad
	// (0 → 60°, the calibrated span).
	MaxOrientRad float64
	// Placements, when non-empty, pins every node's geometry explicitly
	// instead of drawing it from the seed; Nodes must be 0 or match its
	// length. Surveyed deployments and parity tests use this.
	Placements []Placement
	// Seed drives every placement and poll draw. Same seed, same
	// transcript, at any worker count.
	Seed int64
	// HeroLinks promotes this many scheduled polls per cycle to full
	// waveform fidelity for online cross-checking (0 = off).
	HeroLinks int
	// HeroRounds is the waveform rounds each hero check runs (0 → 4).
	HeroRounds int
}

// Placement pins one node's geometry.
type Placement struct {
	RangeM    float64
	OrientRad float64
}

// workItem is one scheduled poll of a cycle.
type workItem struct {
	node  int32
	probe bool
}

// CycleReport summarizes one abstract-tier polling cycle.
type CycleReport struct {
	Cycle     int
	Polled    int // scheduled polls (regular + probes)
	Delivered int
	Retries   int
	Probes    int
	Restored  int

	Live        int // on the regular schedule after this cycle
	Quarantined int
	Dropped     int

	MeanSNRdB         float64 // over delivered polls (0 if none)
	MeanDelayMs       float64
	CorrectedPerFrame float64
	Severity          float64 // fault severity driving this cycle's draws
	ChipRate          float64 // commanded chip rate during this cycle

	Hero HeroReport
}

// fleetMetrics instruments the abstract tier. Zero value = noop.
type fleetMetrics struct {
	polls     *telemetry.Counter
	delivered *telemetry.Counter
	timeouts  *telemetry.Counter
	probes    *telemetry.Counter
	quarant   *telemetry.Counter
	restored  *telemetry.Counter
	dropped   *telemetry.Counter
	live      *telemetry.Gauge
}

// Fleet is the link-abstraction tier: up to ~10⁶ nodes polled per cycle
// through the calibrated statistical model, with the MAC layer's exact
// liveness semantics. The scheduler is event-driven — per-cycle work is
// O(live nodes + due probes), not O(all nodes): quarantined nodes sit in a
// probe calendar keyed by their next re-probe cycle and cost nothing until
// it comes up.
type Fleet struct {
	cfg   Config
	table *Table
	env   int

	states  []mac.NodeState // indexed by node
	coords  []linkCoord     // per-node interpolation coordinates
	ranges  []float64
	orients []float64

	live     []int32         // ascending node indices on the regular schedule
	probeCal map[int][]int32 // cycle → nodes whose re-probe is due then
	nQuar    int
	nDrop    int

	cycle    int
	seedBase uint64
	workers  int

	rate  *mac.RateController
	chaos *faults.Engine
	hero  *heroChecker
	met   fleetMetrics

	work []workItem // scratch, reused across cycles
	outs []outcome
}

// NewFleet builds an abstract fleet. Placements (range, orientation) are
// drawn deterministically from the seed, uniform over the configured
// annulus, and resolved against the table once.
func NewFleet(cfg Config) (*Fleet, error) {
	if n := len(cfg.Placements); n > 0 {
		if cfg.Nodes != 0 && cfg.Nodes != n {
			return nil, fmt.Errorf("linksim: Nodes=%d conflicts with %d placements", cfg.Nodes, n)
		}
		cfg.Nodes = n
	}
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("linksim: fleet needs at least one node, got %d", cfg.Nodes)
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	t := cfg.Table
	if t == nil {
		t = DefaultTable()
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if cfg.Env == "" {
		cfg.Env = "river"
	}
	env, err := t.EnvIndex(cfg.Env)
	if err != nil {
		return nil, err
	}
	if cfg.RangeMinM == 0 && cfg.RangeMaxM == 0 {
		cfg.RangeMinM, cfg.RangeMaxM = 25, 300
	}
	if cfg.RangeMinM <= 0 || cfg.RangeMaxM < cfg.RangeMinM {
		return nil, fmt.Errorf("linksim: bad range annulus [%g, %g]", cfg.RangeMinM, cfg.RangeMaxM)
	}
	if cfg.MaxOrientRad == 0 {
		cfg.MaxOrientRad = 60 * math.Pi / 180
	}
	if cfg.HeroLinks < 0 || cfg.HeroRounds < 0 {
		return nil, fmt.Errorf("linksim: negative hero configuration")
	}
	if cfg.HeroRounds == 0 {
		cfg.HeroRounds = 4
	}

	f := &Fleet{
		cfg:      cfg,
		table:    t,
		env:      env,
		states:   make([]mac.NodeState, cfg.Nodes),
		coords:   make([]linkCoord, cfg.Nodes),
		ranges:   make([]float64, cfg.Nodes),
		orients:  make([]float64, cfg.Nodes),
		live:     make([]int32, cfg.Nodes),
		probeCal: make(map[int][]int32),
		seedBase: uint64(cfg.Seed),
		workers:  1,
	}
	const placeDomain = 0x506c6163 // placement draws, distinct from poll streams
	for i := 0; i < cfg.Nodes; i++ {
		if len(cfg.Placements) > 0 {
			f.ranges[i] = cfg.Placements[i].RangeM
			f.orients[i] = cfg.Placements[i].OrientRad
		} else {
			st := newStream(mix(f.seedBase, placeDomain, uint64(i)))
			f.ranges[i] = cfg.RangeMinM + st.f64()*(cfg.RangeMaxM-cfg.RangeMinM)
			f.orients[i] = (2*st.f64() - 1) * cfg.MaxOrientRad
		}
		f.coords[i] = t.Resolve(f.ranges[i], f.orients[i])
		f.states[i] = mac.NodeState{Addr: byte(i % 251), Health: 1}
		f.live[i] = int32(i)
	}
	if cfg.HeroLinks > 0 {
		f.hero, err = newHeroChecker(f)
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// NodeRange returns node i's deployed range in metres.
func (f *Fleet) NodeRange(i int) float64 { return f.ranges[i] }

// NodeOrientation returns node i's rotation in radians.
func (f *Fleet) NodeOrientation(i int) float64 { return f.orients[i] }

// NodeState returns a copy of node i's MAC bookkeeping.
func (f *Fleet) NodeState(i int) mac.NodeState { return f.states[i] }

// SetWorkers bounds the execution-phase worker pool (n <= 0 selects
// runtime.NumCPU()). Cycle outcomes are bit-identical at any width: every
// draw is a pure function of (seed, node, cycle, attempt) and all state
// mutation happens serially afterwards in node order.
func (f *Fleet) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	f.workers = n
}

// EnableRateAdaptation attaches a fleet-wide rate controller: delivered
// polls feed its SNR belief, exhausted polls its loss signal, and its
// commanded chip rate shifts the next cycle's delivery odds along the
// table's logistic transfer (the abstract analogue of rebuilding the PHY
// chain at a new rate).
func (f *Fleet) EnableRateAdaptation(rc *mac.RateController) { f.rate = rc }

// SetFaultEngine attaches a fault engine. Each cycle's plan is projected
// onto the table's calibrated intensity axis via faults.ModelSeverity; the
// hero checker attaches the same engine to its waveform systems so both
// tiers see one scenario clock.
func (f *Fleet) SetFaultEngine(e *faults.Engine) { f.chaos = e }

// Instrument registers the tier's metrics (nil registry = noop).
func (f *Fleet) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	f.met = fleetMetrics{
		polls:     reg.Counter("vab_linksim_polls_total", "Abstract-tier poll attempts."),
		delivered: reg.Counter("vab_linksim_delivered_total", "Abstract-tier delivered polls."),
		timeouts:  reg.Counter("vab_linksim_timeouts_total", "Abstract-tier exhausted polls."),
		probes:    reg.Counter("vab_linksim_probes_total", "Abstract-tier quarantine re-probes."),
		quarant:   reg.Counter("vab_linksim_quarantined_total", "Nodes entering probation."),
		restored:  reg.Counter("vab_linksim_restored_total", "Nodes restored from probation."),
		dropped:   reg.Counter("vab_linksim_dropped_total", "Nodes permanently dropped."),
		live:      reg.Gauge("vab_linksim_live_nodes", "Nodes on the regular schedule."),
	}
	f.met.live.Set(float64(len(f.live)))
	if f.hero != nil {
		f.hero.instrument(reg)
	}
	if f.rate != nil {
		f.rate.Instrument(reg)
	}
}

// RunCycle polls every live node once (with the policy's retry budget),
// re-probes the quarantined nodes whose backoff elapsed, and folds the
// outcomes through the shared MAC primitives.
//
// Three phases, mirroring mac.Scheduler.RunCycle's structure at fleet
// scale:
//
//  1. Decision (serial): compact the live list, pull this cycle's probe
//     bucket from the calendar, merge both into one ascending work list.
//  2. Execution (parallel): every scheduled poll's outcome is drawn
//     independently — a pure function of (seed, node, cycle, attempt) —
//     sharded block-wise over the worker pool with no shared state.
//  3. Fold (serial, ascending node order): outcomes apply to node state
//     through mac.FoldDelivered / FoldPollFailure / FoldProbeFailure, the
//     rate controller is fed exactly as the waveform scheduler feeds it,
//     and liveness transitions update the live list and probe calendar.
func (f *Fleet) RunCycle() (CycleReport, error) {
	cycle := f.cycle
	f.cycle++
	rep := CycleReport{Cycle: cycle}

	// Snapshot everything the draws depend on, once, before fan-out —
	// the same snapshot discipline mac.Scheduler.runWave applies to the
	// rate command.
	model := cycleModel{table: f.table, env: f.env}
	if f.chaos != nil {
		rep.Severity = faults.ModelSeverity(f.chaos.Plan(cycle))
		model.severity = rep.Severity
	}
	rep.ChipRate = f.table.ChipRate
	if f.rate != nil {
		rep.ChipRate = f.rate.Rate()
		model.snrDelta = 10 * math.Log10(f.table.ChipRate/rep.ChipRate)
	}
	model.chipRate = rep.ChipRate

	// Decision phase.
	f.work = f.work[:0]
	probes := f.probeCal[cycle]
	delete(f.probeCal, cycle)
	sort.Slice(probes, func(i, j int) bool { return probes[i] < probes[j] })
	pi := 0
	for _, n := range f.live {
		for pi < len(probes) && probes[pi] < n {
			f.appendProbe(probes[pi], cycle)
			pi++
		}
		f.work = append(f.work, workItem{node: n})
	}
	for ; pi < len(probes); pi++ {
		f.appendProbe(probes[pi], cycle)
	}
	rep.Polled = len(f.work)

	// Execution phase.
	if cap(f.outs) < len(f.work) {
		f.outs = make([]outcome, len(f.work))
	}
	f.outs = f.outs[:len(f.work)]
	maxAttempts := 1 + f.cfg.Policy.MaxRetries
	exec := func(lo, hi int) {
		for i := lo; i < hi; i++ {
			w := f.work[i]
			n := maxAttempts
			if w.probe {
				n = 1 // probes are single-attempt, as in the waveform MAC
			}
			f.outs[i] = model.poll(f.seedBase, w.node, f.coords[w.node], cycle, w.probe, n)
		}
	}
	if workers := f.workers; workers <= 1 || len(f.work) < 2*workers {
		exec(0, len(f.work))
	} else {
		block := (len(f.work) + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < len(f.work); lo += block {
			hi := lo + block
			if hi > len(f.work) {
				hi = len(f.work)
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				exec(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}

	// Fold phase.
	var snrSum, delaySum float64
	var corrSum int64
	var restored []int32
	leavers := false
	for i := range f.work {
		w := f.work[i]
		out := &f.outs[i]
		st := &f.states[w.node]
		attempts := int(out.attempts)
		st.Polls += attempts
		f.met.polls.Add(int64(attempts))
		if w.probe {
			rep.Probes++
			f.met.probes.Inc()
		} else if attempts > 1 {
			st.Retries += attempts - 1
			rep.Retries += attempts - 1
		}
		switch {
		case out.delivered:
			mac.FoldDelivered(st, out.snrDB)
			rep.Delivered++
			f.met.delivered.Inc()
			snrSum += out.snrDB
			delaySum += out.delayMs
			corrSum += int64(out.corrected)
			if w.probe {
				st.Restore(cycle)
				restored = append(restored, w.node)
				f.nQuar--
				rep.Restored++
				f.met.restored.Inc()
			} else if f.rate != nil {
				f.rate.Observe(out.snrDB)
			}
		case w.probe:
			f.met.timeouts.Inc()
			f.cfg.Policy.FoldProbeFailure(st, cycle)
			f.probeCal[st.NextProbe()] = append(f.probeCal[st.NextProbe()], w.node)
		default:
			f.met.timeouts.Inc()
			if f.rate != nil {
				f.rate.ObserveLoss()
			}
			switch f.cfg.Policy.FoldPollFailure(st, cycle) {
			case mac.LivenessQuarantined:
				f.nQuar++
				leavers = true
				f.met.quarant.Inc()
				f.probeCal[st.NextProbe()] = append(f.probeCal[st.NextProbe()], w.node)
			case mac.LivenessDropped:
				f.nDrop++
				leavers = true
				f.met.dropped.Inc()
			}
		}
	}

	// Liveness list maintenance: drop leavers, merge the restored back in
	// (both lists are ascending, so one merge pass keeps the order).
	if leavers {
		kept := f.live[:0]
		for _, n := range f.live {
			st := &f.states[n]
			if !st.Quarantined && !st.Dropped {
				kept = append(kept, n)
			}
		}
		f.live = kept
	}
	if len(restored) > 0 {
		f.live = mergeSorted(f.live, restored)
	}
	f.met.live.Set(float64(len(f.live)))

	if rep.Delivered > 0 {
		rep.MeanSNRdB = snrSum / float64(rep.Delivered)
		rep.MeanDelayMs = delaySum / float64(rep.Delivered)
		rep.CorrectedPerFrame = float64(corrSum) / float64(rep.Delivered)
	}
	rep.Live = len(f.live)
	rep.Quarantined = f.nQuar
	rep.Dropped = f.nDrop

	// Hero phase: cross-check a deterministic subset at waveform fidelity.
	if f.hero != nil {
		hr, err := f.hero.check(f, &model, cycle, f.work)
		if err != nil {
			return rep, err
		}
		rep.Hero = hr
	}
	return rep, nil
}

// appendProbe schedules a calendared node into the work list if its probe
// is genuinely due (stale calendar entries — restored or re-quarantined
// nodes — are skipped; their live entry or newer calendar slot owns them).
func (f *Fleet) appendProbe(n int32, cycle int) {
	if f.states[n].ProbeDue(cycle) {
		f.work = append(f.work, workItem{node: n, probe: true})
	}
}

// mergeSorted merges two ascending int32 slices in place over dst's
// storage when capacity allows.
func mergeSorted(a, b []int32) []int32 {
	out := make([]int32, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// Tier implementation — the abstract counterpart of core.Fleet's.

var _ core.Tier = (*Fleet)(nil)

// TierName identifies the fidelity tier.
func (f *Fleet) TierName() string { return "abstract" }

// TierNodes returns the fleet size.
func (f *Fleet) TierNodes() int { return f.cfg.Nodes }

// RunTierCycle runs one cycle through the tier-polymorphic seam.
func (f *Fleet) RunTierCycle() (core.TierStats, error) {
	rep, err := f.RunCycle()
	if err != nil {
		return core.TierStats{}, err
	}
	return core.TierStats{
		Polled:      rep.Polled,
		Delivered:   rep.Delivered,
		Retries:     rep.Retries,
		Probes:      rep.Probes,
		Live:        rep.Live,
		Quarantined: rep.Quarantined,
		Dropped:     rep.Dropped,
		MeanSNRdB:   rep.MeanSNRdB,
	}, nil
}
