package linksim

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sync"

	"vab/internal/core"
	"vab/internal/faults"
	"vab/internal/mac"
	"vab/internal/telemetry"
)

// Config describes an abstract-tier fleet: how many nodes, where they sit,
// which calibration table models their links, and how many hero links per
// cycle are promoted to waveform fidelity.
type Config struct {
	// Nodes is the fleet size. The abstract tier is indexed by int32, so
	// deployments far beyond the MAC layer's 8-bit address space (the
	// waveform fleet's ceiling) are in range.
	Nodes int
	// Policy is the MAC polling policy — the same retry/probation
	// semantics the waveform scheduler applies, via the shared fold
	// primitives.
	Policy mac.PollPolicy
	// Table is the calibration artifact (nil → the embedded default).
	Table *Table
	// Env names the environment column of the table ("river", "ocean").
	Env string
	// RangeMinM/RangeMaxM bound the uniform deployment annulus
	// (0 → 25..300 m, the calibrated span).
	RangeMinM, RangeMaxM float64
	// MaxOrientRad bounds node rotation, drawn uniform in ±MaxOrientRad
	// (0 → 60°, the calibrated span).
	MaxOrientRad float64
	// Placements, when non-empty, pins every node's geometry explicitly
	// instead of drawing it from the seed; Nodes must be 0 or match its
	// length. Surveyed deployments and parity tests use this.
	Placements []Placement
	// Seed drives every placement and poll draw. Same seed, same
	// transcript, at any worker count.
	Seed int64
	// HeroLinks promotes this many scheduled polls per cycle to full
	// waveform fidelity for online cross-checking (0 = off).
	HeroLinks int
	// HeroRounds is the waveform rounds each hero check runs (0 → 4).
	HeroRounds int
}

// Placement pins one node's geometry.
type Placement struct {
	RangeM    float64
	OrientRad float64
}

// workItem is one scheduled poll of a cycle.
type workItem struct {
	node  int32
	probe bool
}

// CycleReport summarizes one abstract-tier polling cycle.
type CycleReport struct {
	Cycle     int
	Polled    int // scheduled polls (regular + probes)
	Delivered int
	Retries   int
	Probes    int
	Restored  int

	Live        int // on the regular schedule after this cycle
	Quarantined int
	Dropped     int

	MeanSNRdB         float64 // over delivered polls (0 if none)
	MeanDelayMs       float64
	CorrectedPerFrame float64
	Severity          float64 // fault severity driving this cycle's draws
	ChipRate          float64 // commanded chip rate during this cycle

	Hero HeroReport
}

// fleetMetrics instruments the abstract tier. Zero value = noop.
type fleetMetrics struct {
	polls     *telemetry.Counter
	delivered *telemetry.Counter
	timeouts  *telemetry.Counter
	probes    *telemetry.Counter
	quarant   *telemetry.Counter
	restored  *telemetry.Counter
	dropped   *telemetry.Counter
	cellHits  *telemetry.Counter // cycles served from the resolved-cell cache
	live      *telemetry.Gauge
}

// modelKey identifies the model parameters a cycle's cell resolution
// depends on. Cycles sharing a key resolve every node to identical cells,
// which is what makes the resolved-cell cache sound.
type modelKey struct {
	severity float64
	snrDelta float64
}

// cachedCell is one node's resolved link model under a modelKey: the
// interpolated cell, the rate-shifted delivery probability, and the
// Poisson loop constant e^{-CorrMean} — everything a poll draw needs, so
// a cache hit skips the trilinear table walk entirely.
type cachedCell struct {
	cell       Cell
	p          float64
	expNegCorr float64
}

// Exec-phase block kinds dispatched to the worker pool.
const (
	blockPoll     = iota // draw outcomes for f.work[lo:hi]
	blockPopulate        // resolve cells for nodes [lo, hi) into the cache
)

// blockSpan is one sharded unit of a cycle's execution phase.
type blockSpan struct{ lo, hi int32 }

// fleetPool is the persistent execution-phase worker pool. Workers live
// for the fleet's lifetime (until Close) and block on the jobs channel
// between cycles, so a steady-state cycle costs channel sends, not
// goroutine spawns.
type fleetPool struct {
	width int
	jobs  chan blockSpan
}

// Fleet is the link-abstraction tier: up to ~10⁶ nodes polled per cycle
// through the calibrated statistical model, with the MAC layer's exact
// liveness semantics. The scheduler is event-driven — per-cycle work is
// O(live nodes + due probes), not O(all nodes): quarantined nodes sit in a
// probe calendar wheel keyed by their next re-probe cycle and cost nothing
// until it comes up.
//
// Per-node state is struct-of-arrays (mac.NodeColumns): the fold phase
// and liveness scans stream through dense hot columns instead of dragging
// a ~100-byte struct per node through the cache, and a steady-state cycle
// allocates nothing — the work list, outcome buffer, live list, restore
// scratch, calendar buckets and worker pool are all owned by the Fleet
// and reused.
type Fleet struct {
	cfg   Config
	table *Table
	env   int

	cols    *mac.NodeColumns // per-node MAC bookkeeping, SoA layout
	coords  []linkCoord      // per-node interpolation coordinates
	ranges  []float64
	orients []float64

	live    []int32 // ascending node indices on the regular schedule
	liveAlt []int32 // double buffer for the restore merge
	wheel   probeWheel
	nQuar   int
	nDrop   int

	cycle    int
	seedBase uint64
	workers  int

	rate  *mac.RateController
	chaos *faults.Engine
	hero  *heroChecker
	met   fleetMetrics

	work     []workItem // scratch, reused across cycles
	outs     []outcome
	restored []int32

	// Resolved-cell cache: valid for cycles whose modelKey matches
	// cacheKey. Populated lazily once the key has been stable for two
	// cycles, so chaos campaigns (a new severity every cycle) never pay
	// for it and calm campaigns skip the per-poll table walk.
	cellCache []cachedCell
	cacheKey  modelKey
	cacheOK   bool
	lastKey   modelKey
	lastOK    bool

	// Execution-phase context, written by RunCycle before dispatch and
	// read by pool workers; the jobs send / WaitGroup wait pair orders
	// the accesses.
	pool            *fleetPool
	wg              sync.WaitGroup
	execModel       cycleModel
	execCycle       int
	execMaxAttempts int
	execKind        int
	execCached      bool
	execPopulate    bool
}

// NewFleet builds an abstract fleet. Placements (range, orientation) are
// drawn deterministically from the seed, uniform over the configured
// annulus, and resolved against the table once.
func NewFleet(cfg Config) (*Fleet, error) {
	if n := len(cfg.Placements); n > 0 {
		if cfg.Nodes != 0 && cfg.Nodes != n {
			return nil, fmt.Errorf("linksim: Nodes=%d conflicts with %d placements", cfg.Nodes, n)
		}
		cfg.Nodes = n
	}
	if cfg.Nodes < 1 {
		return nil, fmt.Errorf("linksim: fleet needs at least one node, got %d", cfg.Nodes)
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	t := cfg.Table
	if t == nil {
		t = DefaultTable()
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if cfg.Env == "" {
		cfg.Env = "river"
	}
	env, err := t.EnvIndex(cfg.Env)
	if err != nil {
		return nil, err
	}
	if cfg.RangeMinM == 0 && cfg.RangeMaxM == 0 {
		cfg.RangeMinM, cfg.RangeMaxM = 25, 300
	}
	if cfg.RangeMinM <= 0 || cfg.RangeMaxM < cfg.RangeMinM {
		return nil, fmt.Errorf("linksim: bad range annulus [%g, %g]", cfg.RangeMinM, cfg.RangeMaxM)
	}
	if cfg.MaxOrientRad == 0 {
		cfg.MaxOrientRad = 60 * math.Pi / 180
	}
	if cfg.HeroLinks < 0 || cfg.HeroRounds < 0 {
		return nil, fmt.Errorf("linksim: negative hero configuration")
	}
	if cfg.HeroRounds == 0 {
		cfg.HeroRounds = 4
	}

	f := &Fleet{
		cfg:      cfg,
		table:    t,
		env:      env,
		cols:     mac.NewNodeColumns(cfg.Nodes),
		coords:   make([]linkCoord, cfg.Nodes),
		ranges:   make([]float64, cfg.Nodes),
		orients:  make([]float64, cfg.Nodes),
		live:     make([]int32, cfg.Nodes),
		liveAlt:  make([]int32, 0, cfg.Nodes),
		wheel:    newProbeWheel(cfg.Policy.ProbeHorizon()),
		seedBase: uint64(cfg.Seed),
		workers:  1,
	}
	const placeDomain = 0x506c6163 // placement draws, distinct from poll streams
	for i := 0; i < cfg.Nodes; i++ {
		if len(cfg.Placements) > 0 {
			f.ranges[i] = cfg.Placements[i].RangeM
			f.orients[i] = cfg.Placements[i].OrientRad
		} else {
			st := newStream(mix(f.seedBase, placeDomain, uint64(i)))
			f.ranges[i] = cfg.RangeMinM + st.f64()*(cfg.RangeMaxM-cfg.RangeMinM)
			f.orients[i] = (2*st.f64() - 1) * cfg.MaxOrientRad
		}
		f.coords[i] = t.Resolve(f.ranges[i], f.orients[i])
		f.cols.Addr[i] = byte(i % 251)
		f.live[i] = int32(i)
	}
	if cfg.HeroLinks > 0 {
		f.hero, err = newHeroChecker(f)
		if err != nil {
			return nil, err
		}
	}
	return f, nil
}

// NodeRange returns node i's deployed range in metres.
func (f *Fleet) NodeRange(i int) float64 { return f.ranges[i] }

// NodeOrientation returns node i's rotation in radians.
func (f *Fleet) NodeOrientation(i int) float64 { return f.orients[i] }

// NodeState returns a copy of node i's MAC bookkeeping, materialized from
// the columnar layout.
func (f *Fleet) NodeState(i int) mac.NodeState { return f.cols.State(i) }

// SetWorkers bounds the execution-phase worker pool (n <= 0 selects
// runtime.NumCPU()). Cycle outcomes are bit-identical at any width: every
// draw is a pure function of (seed, node, cycle, attempt) and all state
// mutation happens serially afterwards in node order. The pool itself is
// persistent — workers are spawned on the first parallel cycle and reused
// until Close or the next width change.
func (f *Fleet) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.NumCPU()
	}
	f.workers = n
}

// Close releases the persistent worker pool (if any). The fleet remains
// usable — the next parallel cycle restarts the pool — so Close is safe
// to defer as soon as the fleet is built.
func (f *Fleet) Close() {
	if f.pool != nil {
		close(f.pool.jobs)
		f.pool = nil
	}
}

// EnableRateAdaptation attaches a fleet-wide rate controller: delivered
// polls feed its SNR belief, exhausted polls its loss signal, and its
// commanded chip rate shifts the next cycle's delivery odds along the
// table's logistic transfer (the abstract analogue of rebuilding the PHY
// chain at a new rate).
func (f *Fleet) EnableRateAdaptation(rc *mac.RateController) { f.rate = rc }

// SetFaultEngine attaches a fault engine. Each cycle's plan is projected
// onto the table's calibrated intensity axis via faults.ModelSeverity; the
// hero checker attaches the same engine to its waveform systems so both
// tiers see one scenario clock.
func (f *Fleet) SetFaultEngine(e *faults.Engine) { f.chaos = e }

// Instrument registers the tier's metrics (nil registry = noop).
func (f *Fleet) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	f.met = fleetMetrics{
		polls:     reg.Counter("vab_linksim_polls_total", "Abstract-tier poll attempts."),
		delivered: reg.Counter("vab_linksim_delivered_total", "Abstract-tier delivered polls."),
		timeouts:  reg.Counter("vab_linksim_timeouts_total", "Abstract-tier exhausted polls."),
		probes:    reg.Counter("vab_linksim_probes_total", "Abstract-tier quarantine re-probes."),
		quarant:   reg.Counter("vab_linksim_quarantined_total", "Nodes entering probation."),
		restored:  reg.Counter("vab_linksim_restored_total", "Nodes restored from probation."),
		dropped:   reg.Counter("vab_linksim_dropped_total", "Nodes permanently dropped."),
		cellHits:  reg.Counter("vab_linksim_cell_cache_cycles_total", "Cycles served from the resolved-cell cache."),
		live:      reg.Gauge("vab_linksim_live_nodes", "Nodes on the regular schedule."),
	}
	f.met.live.Set(float64(len(f.live)))
	if f.hero != nil {
		f.hero.instrument(reg)
	}
	if f.rate != nil {
		f.rate.Instrument(reg)
	}
}

// RunCycle polls every live node once (with the policy's retry budget),
// re-probes the quarantined nodes whose backoff elapsed, and folds the
// outcomes through the shared MAC primitives.
//
// Three phases, mirroring mac.Scheduler.RunCycle's structure at fleet
// scale:
//
//  1. Decision (serial): compact the live list, pull this cycle's probe
//     bucket from the calendar wheel, merge both into one ascending work
//     list.
//  2. Execution (parallel): every scheduled poll's outcome is drawn
//     independently — a pure function of (seed, node, cycle, attempt) —
//     sharded block-wise over the persistent worker pool with no shared
//     state. Cycles whose model parameters are stable draw from the
//     resolved-cell cache instead of re-interpolating the table per poll.
//  3. Fold (serial, ascending node order): outcomes apply to the state
//     columns through the shared mac fold primitives, the rate controller
//     is fed exactly as the waveform scheduler feeds it, and liveness
//     transitions update the live list and probe calendar. Telemetry
//     counters accumulate locally and flush once per cycle.
func (f *Fleet) RunCycle() (CycleReport, error) {
	cycle := f.cycle
	f.cycle++
	rep := CycleReport{Cycle: cycle}

	// Snapshot everything the draws depend on, once, before fan-out —
	// the same snapshot discipline mac.Scheduler.runWave applies to the
	// rate command.
	model := cycleModel{table: f.table, env: f.env}
	if f.chaos != nil {
		rep.Severity = faults.ModelSeverity(f.chaos.Plan(cycle))
		model.severity = rep.Severity
	}
	rep.ChipRate = f.table.ChipRate
	if f.rate != nil {
		rep.ChipRate = f.rate.Rate()
		model.snrDelta = 10 * math.Log10(f.table.ChipRate/rep.ChipRate)
	}
	model.chipRate = rep.ChipRate

	// Cell-cache policy for this cycle. A hit requires the cache to have
	// been populated under this exact (severity, snrDelta); population
	// itself waits for the key to repeat once, so a key seen only once
	// (chaos redraws severity every cycle) costs nothing.
	key := modelKey{severity: model.severity, snrDelta: model.snrDelta}
	useCache := f.cacheOK && key == f.cacheKey
	populate := !useCache && f.lastOK && key == f.lastKey
	f.lastKey, f.lastOK = key, true

	// Decision phase.
	f.work = f.work[:0]
	probes := f.wheel.take(cycle)
	pi := 0
	for _, n := range f.live {
		for pi < len(probes) && probes[pi] < n {
			f.appendProbe(probes[pi], cycle)
			pi++
		}
		f.work = append(f.work, workItem{node: n})
	}
	for ; pi < len(probes); pi++ {
		f.appendProbe(probes[pi], cycle)
	}
	rep.Polled = len(f.work)

	// Execution phase.
	if cap(f.outs) < len(f.work) {
		f.outs = make([]outcome, len(f.work))
	}
	f.outs = f.outs[:len(f.work)]
	f.execModel = model
	f.execCycle = cycle
	f.execMaxAttempts = 1 + f.cfg.Policy.MaxRetries
	if populate {
		if f.cellCache == nil {
			f.cellCache = make([]cachedCell, f.cfg.Nodes)
		}
		f.execKind = blockPopulate
		f.dispatch(f.cfg.Nodes)
		f.cacheKey, f.cacheOK = key, true
		useCache = true
	}
	f.execCached = useCache
	if useCache {
		f.met.cellHits.Inc()
	}
	f.execKind = blockPoll
	f.dispatch(len(f.work))

	// Fold phase. Telemetry deltas accumulate locally and flush once —
	// a million-poll cycle performs a handful of atomic adds, not four
	// per poll.
	var snrSum, delaySum float64
	var corrSum int64
	var mPolls, mDelivered, mTimeouts, mProbes, mQuar, mRestored, mDropped int64
	f.restored = f.restored[:0]
	leavers := false
	pol := f.cfg.Policy
	for i := range f.work {
		w := f.work[i]
		out := &f.outs[i]
		ni := int(w.node)
		attempts := int(out.attempts)
		f.cols.Polls[ni] += int32(attempts)
		mPolls += int64(attempts)
		if w.probe {
			rep.Probes++
			mProbes++
		} else if attempts > 1 {
			f.cols.Retries[ni] += int32(attempts - 1)
			rep.Retries += attempts - 1
		}
		switch {
		case out.delivered:
			f.cols.FoldDeliveredAt(ni, out.snrDB)
			rep.Delivered++
			mDelivered++
			snrSum += out.snrDB
			delaySum += out.delayMs
			corrSum += int64(out.corrected)
			if w.probe {
				f.cols.RestoreAt(ni, cycle)
				f.restored = append(f.restored, w.node)
				f.nQuar--
				rep.Restored++
				mRestored++
			} else if f.rate != nil {
				f.rate.Observe(out.snrDB)
			}
		case w.probe:
			mTimeouts++
			pol.FoldProbeFailureAt(f.cols, ni, cycle)
			f.wheel.schedule(w.node, f.cols.NextProbeAt(ni), cycle)
		default:
			mTimeouts++
			if f.rate != nil {
				f.rate.ObserveLoss()
			}
			switch pol.FoldPollFailureAt(f.cols, ni, cycle) {
			case mac.LivenessQuarantined:
				f.nQuar++
				leavers = true
				mQuar++
				f.wheel.schedule(w.node, f.cols.NextProbeAt(ni), cycle)
			case mac.LivenessDropped:
				f.nDrop++
				leavers = true
				mDropped++
			}
		}
	}
	f.met.polls.Add(mPolls)
	f.met.delivered.Add(mDelivered)
	f.met.timeouts.Add(mTimeouts)
	f.met.probes.Add(mProbes)
	f.met.quarant.Add(mQuar)
	f.met.restored.Add(mRestored)
	f.met.dropped.Add(mDropped)

	// Liveness list maintenance: drop leavers, merge the restored back in
	// (both lists are ascending; the merge lands in the double buffer and
	// the buffers swap, so no cycle allocates).
	if leavers {
		kept := f.live[:0]
		for _, n := range f.live {
			if f.cols.Live(int(n)) {
				kept = append(kept, n)
			}
		}
		f.live = kept
	}
	if len(f.restored) > 0 {
		f.liveAlt = mergeSortedInto(f.liveAlt, f.live, f.restored)
		f.live, f.liveAlt = f.liveAlt, f.live
	}
	f.met.live.Set(float64(len(f.live)))

	if rep.Delivered > 0 {
		rep.MeanSNRdB = snrSum / float64(rep.Delivered)
		rep.MeanDelayMs = delaySum / float64(rep.Delivered)
		rep.CorrectedPerFrame = float64(corrSum) / float64(rep.Delivered)
	}
	rep.Live = len(f.live)
	rep.Quarantined = f.nQuar
	rep.Dropped = f.nDrop

	// Hero phase: cross-check a deterministic subset at waveform fidelity.
	if f.hero != nil {
		hr, err := f.hero.check(f, &model, cycle, f.work)
		if err != nil {
			return rep, err
		}
		rep.Hero = hr
	}
	return rep, nil
}

// appendProbe schedules a calendared node into the work list if its probe
// is genuinely due (stale calendar entries — restored or re-quarantined
// nodes — are skipped; their live entry or newer calendar slot owns them).
func (f *Fleet) appendProbe(n int32, cycle int) {
	if f.cols.ProbeDueAt(int(n), cycle) {
		f.work = append(f.work, workItem{node: n, probe: true})
	}
}

// dispatch shards [0, n) over the execution pool (or runs inline when the
// pool would not pay). Blocks are deterministic spans — workers only write
// disjoint ranges of f.outs or f.cellCache — so results are independent
// of which worker runs which block.
func (f *Fleet) dispatch(n int) {
	width := f.workers
	if width <= 1 || n < 2*width {
		f.runSpan(0, n)
		return
	}
	f.ensurePool(width)
	block := (n + 4*width - 1) / (4 * width)
	if block < 2048 {
		block = 2048
	}
	blocks := (n + block - 1) / block
	f.wg.Add(blocks)
	for lo := 0; lo < n; lo += block {
		hi := lo + block
		if hi > n {
			hi = n
		}
		f.pool.jobs <- blockSpan{lo: int32(lo), hi: int32(hi)}
	}
	f.wg.Wait()
}

// ensurePool starts (or resizes) the persistent worker pool.
func (f *Fleet) ensurePool(width int) {
	if f.pool != nil && f.pool.width == width {
		return
	}
	f.Close()
	// Buffer covers a full cycle's block fan-out (≤ 4·width + 1), so the
	// dispatching goroutine never blocks behind a busy pool.
	p := &fleetPool{width: width, jobs: make(chan blockSpan, 4*width+4)}
	f.pool = p
	for w := 0; w < width; w++ {
		go func() {
			pprof.Do(context.Background(), pprof.Labels("vab_stage", "linksim_cycle"), func(context.Context) {
				for j := range p.jobs {
					f.runSpan(int(j.lo), int(j.hi))
					f.wg.Done()
				}
			})
		}()
	}
}

// runSpan executes one block of the current execution phase.
func (f *Fleet) runSpan(lo, hi int) {
	if f.execKind == blockPopulate {
		m := &f.execModel
		for i := lo; i < hi; i++ {
			cell, p := m.resolve(f.coords[i])
			f.cellCache[i] = cachedCell{cell: cell, p: p, expNegCorr: math.Exp(-cell.CorrMean)}
		}
		return
	}
	m := &f.execModel
	cycle := f.execCycle
	maxAttempts := f.execMaxAttempts
	if f.execCached {
		for i := lo; i < hi; i++ {
			w := f.work[i]
			n := maxAttempts
			if w.probe {
				n = 1 // probes are single-attempt, as in the waveform MAC
			}
			cc := &f.cellCache[w.node]
			f.outs[i] = m.pollCell(f.seedBase, w.node, cycle, w.probe, n, cc.cell, cc.p, cc.expNegCorr)
		}
		return
	}
	for i := lo; i < hi; i++ {
		w := f.work[i]
		n := maxAttempts
		if w.probe {
			n = 1
		}
		cell, p := m.resolve(f.coords[w.node])
		f.outs[i] = m.pollCell(f.seedBase, w.node, cycle, w.probe, n, cell, p, 0)
	}
}

// Tier implementation — the abstract counterpart of core.Fleet's.

var _ core.Tier = (*Fleet)(nil)

// TierName identifies the fidelity tier.
func (f *Fleet) TierName() string { return "abstract" }

// TierNodes returns the fleet size.
func (f *Fleet) TierNodes() int { return f.cfg.Nodes }

// RunTierCycle runs one cycle through the tier-polymorphic seam.
func (f *Fleet) RunTierCycle() (core.TierStats, error) {
	rep, err := f.RunCycle()
	if err != nil {
		return core.TierStats{}, err
	}
	return core.TierStats{
		Polled:      rep.Polled,
		Delivered:   rep.Delivered,
		Retries:     rep.Retries,
		Probes:      rep.Probes,
		Live:        rep.Live,
		Quarantined: rep.Quarantined,
		Dropped:     rep.Dropped,
		MeanSNRdB:   rep.MeanSNRdB,
	}, nil
}
