package linksim

import (
	"testing"

	"vab/internal/mac"
	"vab/internal/telemetry"
)

// TestHeroChecksRunAndStayInBudget: with the committed calibration table
// and links placed on calibrated grid points, the hero cross-check — real
// waveform systems replaying the model's scheduled polls — records checks
// every cycle, exports them through telemetry, and stays inside the
// divergence budget DESIGN.md documents. This is the online validity
// monitor's own validity test.
func TestHeroChecksRunAndStayInBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform hero rounds")
	}
	fleet, err := NewFleet(Config{
		Placements: []Placement{
			{RangeM: 50}, {RangeM: 100}, {RangeM: 50}, {RangeM: 100},
		},
		Policy:     mac.DefaultPollPolicy(),
		Seed:       21,
		HeroLinks:  2,
		HeroRounds: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	fleet.Instrument(reg)

	const cycles = 3
	checks, diverged := 0, 0
	for c := 0; c < cycles; c++ {
		rep, err := fleet.RunCycle()
		if err != nil {
			t.Fatal(err)
		}
		if rep.Hero.Checks != 2 {
			t.Fatalf("cycle %d: %d hero checks, want 2", c, rep.Hero.Checks)
		}
		checks += rep.Hero.Checks
		diverged += rep.Hero.Diverged
	}

	// The budget from DESIGN.md ("Fidelity tiers"): on calibrated grid
	// points the campaign divergence fraction stays ≤ 0.2. Individual
	// checks may trip — the waveform SNR estimator is heavy-tailed and a
	// few-round hero mean occasionally lands past 3 standard errors —
	// which is exactly why divergence is a monitored counter, not a
	// hard failure inside the tier.
	if frac := float64(diverged) / float64(checks); frac > 0.2 {
		t.Fatalf("%d/%d hero checks diverged on calibrated grid points (budget 0.2)", diverged, checks)
	}

	var sawChecks, sawHist bool
	for _, s := range reg.Snapshot() {
		switch s.Name {
		case "vab_linksim_hero_checks_total":
			sawChecks = true
			if int(s.Value) != checks {
				t.Fatalf("telemetry counts %d checks, reports said %d", int(s.Value), checks)
			}
		case "vab_linksim_hero_snr_z":
			sawHist = true
			if s.Count == 0 {
				t.Fatal("z-score histogram empty despite delivered hero rounds")
			}
		}
	}
	if !sawChecks || !sawHist {
		t.Fatal("hero metrics not registered")
	}
}

// TestHeroPickDeterministic: promotion is a pure function of (seed, cycle)
// — same fleet state, same picks — and skips probe work items.
func TestHeroPickDeterministic(t *testing.T) {
	fleet, err := NewFleet(Config{
		Nodes:     32,
		Policy:    mac.DefaultPollPolicy(),
		Table:     hardTable(),
		Seed:      13,
		HeroLinks: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	work := make([]workItem, 0, 32)
	for i := int32(0); i < 32; i++ {
		work = append(work, workItem{node: i, probe: i%4 == 0})
	}
	a := fleet.hero.pick(fleet, 5, work)
	b := fleet.hero.pick(fleet, 5, work)
	if len(a) != 3 {
		t.Fatalf("picked %d links, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("picks not deterministic: %v vs %v", a, b)
		}
		if a[i]%4 == 0 {
			t.Fatalf("picked a probe item: %v", a)
		}
	}
	c := fleet.hero.pick(fleet, 6, work)
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("cycle is not in the pick stream: cycles 5 and 6 picked identically")
	}
}
