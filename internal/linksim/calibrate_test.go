package linksim

import (
	"strings"
	"testing"
)

// smallGrid is a CI-sized calibration campaign: four cells, seconds of
// waveform time, but the full pipeline — fault scaling, fallback bias
// correction, isotonic shaping, logistic fit, validation.
func smallGrid() CalibrateConfig {
	return CalibrateConfig{
		Envs:          []string{"river"},
		RangesM:       []float64{50, 300},
		OrientsRad:    []float64{0},
		Intensities:   []float64{0, 1},
		Scenario:      "chaos",
		RoundsPerCell: 6,
		Seed:          11,
	}
}

// TestCalibrateSmallGrid runs the calibrator end-to-end against the real
// waveform tier and checks the table it emits has the physical shape the
// model depends on.
func TestCalibrateSmallGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform calibration campaign")
	}
	tab, err := Calibrate(smallGrid())
	if err != nil {
		t.Fatal(err)
	}
	if err := tab.Validate(); err != nil {
		t.Fatal(err)
	}
	if tab.Scenario != "chaos" || tab.Seed != 11 || tab.RoundsPerCell != 6 {
		t.Fatalf("provenance not recorded: %+v", tab)
	}
	if tab.ChipRate <= 0 || tab.SourceLevelDB <= 0 {
		t.Fatalf("PHY provenance missing: chip=%g sl=%g", tab.ChipRate, tab.SourceLevelDB)
	}
	for ii := range tab.Intensities {
		near := tab.CellAt(0, ii, 0, 0)
		far := tab.CellAt(0, ii, 0, 1)
		if far.PDeliver > near.PDeliver {
			t.Fatalf("intensity %d: delivery rises with range (%g @50m, %g @300m)",
				ii, near.PDeliver, far.PDeliver)
		}
		if far.DelayMs <= near.DelayMs {
			t.Fatalf("intensity %d: delay not increasing with range (%g, %g)",
				ii, near.DelayMs, far.DelayMs)
		}
		if near.SNRMeanDB <= far.SNRMeanDB {
			t.Fatalf("intensity %d: SNR not decreasing with range (%g dB @50m, %g dB @300m)",
				ii, near.SNRMeanDB, far.SNRMeanDB)
		}
	}
	// X3's ground truth in miniature: the fault-free 50 m link delivers,
	// the 300 m link does not.
	if p := tab.CellAt(0, 0, 0, 0).PDeliver; p < 0.5 {
		t.Fatalf("fault-free 50 m cell delivers p=%g, want a working link", p)
	}
	if p := tab.CellAt(0, 0, 0, 1).PDeliver; p > 0.1 {
		t.Fatalf("300 m cell delivers p=%g, want the decode cliff", p)
	}
	if tab.LogisticK <= 0 {
		t.Fatalf("logistic fit k=%g", tab.LogisticK)
	}
}

// TestCalibrateDeterministicAcrossWorkers: the committed artifact's
// regeneration contract — same config, any worker count, same bytes.
func TestCalibrateDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("waveform calibration campaign")
	}
	cfg := smallGrid()
	cfg.Workers = 1
	serial, err := Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	parallel, err := Calibrate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	a, err := serial.Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := parallel.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("calibration tables differ across worker counts")
	}
}

// TestCalibrateConfigValidate pins the config's rejection surface.
func TestCalibrateConfigValidate(t *testing.T) {
	cases := []struct {
		name  string
		wreck func(*CalibrateConfig)
		want  string
	}{
		{"empty axis", func(c *CalibrateConfig) { c.RangesM = nil }, "empty axis"},
		{"bad rounds", func(c *CalibrateConfig) { c.RoundsPerCell = 0 }, "rounds per cell"},
		{"bad env", func(c *CalibrateConfig) { c.Envs = []string{"lake"} }, "unknown environment"},
		{"bad scenario", func(c *CalibrateConfig) { c.Scenario = "nonsense" }, "scenario"},
	}
	for _, tc := range cases {
		cfg := smallGrid()
		tc.wreck(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Fatalf("%s: accepted", tc.name)
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
	if _, err := Calibrate(CalibrateConfig{}); err == nil {
		t.Fatal("Calibrate accepted the zero config")
	}
}

// TestEnvByName pins the preset surface.
func TestEnvByName(t *testing.T) {
	for _, name := range []string{"river", "ocean"} {
		env, err := EnvByName(name)
		if err != nil || env == nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	if _, err := EnvByName("lagoon"); err == nil || !strings.Contains(err.Error(), "river") {
		t.Fatalf("unknown env error should list presets, got %v", err)
	}
}
