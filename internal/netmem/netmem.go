// Package netmem provides an in-memory net.Listener / net.Conn transport:
// buffered, deadline-aware duplex pipes that carry the gateway protocol
// without consuming file descriptors or kernel socket buffers.
//
// The load harness (cmd/vabload) uses it to stand up 100k+ concurrent
// subscriber sessions in one process — far past RLIMIT_NOFILE — while
// still exercising the full wire protocol: framing, hello negotiation,
// heartbeats, resume, per-subscriber rings and the writer drain path.
// Unlike net.Pipe the conns are buffered (a write completes once it fits
// in the peer's window, like TCP), so producer and consumer scheduling
// decouple the same way they do on a real socket.
package netmem

import (
	"errors"
	"io"
	"net"
	"sync"
	"time"
)

// Default window per direction. Grows lazily from a small initial
// allocation, so idle conns stay cheap at 100k-session scale.
const (
	defaultWindow = 64 << 10
	initialBuf    = 4 << 10
)

// Addr is the address type of netmem endpoints.
type Addr struct{ Name string }

// Network returns "mem".
func (a Addr) Network() string { return "mem" }

// String returns the endpoint name.
func (a Addr) String() string { return a.Name }

// Listener accepts in-memory connections created by its Dial method.
type Listener struct {
	addr    Addr
	window  int
	backlog chan net.Conn
	done    chan struct{}
	once    sync.Once
}

// Listen creates an in-memory listener. name is only used for addresses;
// window is the per-direction buffer bound in bytes (≤ 0 selects the
// 64 KiB default).
func Listen(name string, window int) *Listener {
	if window <= 0 {
		window = defaultWindow
	}
	return &Listener{
		addr:    Addr{Name: name},
		window:  window,
		backlog: make(chan net.Conn, 256),
		done:    make(chan struct{}),
	}
}

// Accept waits for the next Dial.
func (l *Listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.backlog:
		return c, nil
	case <-l.done:
		return nil, &net.OpError{Op: "accept", Net: "mem", Addr: l.addr, Err: net.ErrClosed}
	}
}

// Close unblocks Accept and fails subsequent Dials.
func (l *Listener) Close() error {
	l.once.Do(func() { close(l.done) })
	return nil
}

// Addr returns the listener's address.
func (l *Listener) Addr() net.Addr { return l.addr }

// Dial connects a new conn pair, handing the server side to Accept and
// returning the client side.
func (l *Listener) Dial() (net.Conn, error) {
	select {
	case <-l.done:
		return nil, &net.OpError{Op: "dial", Net: "mem", Addr: l.addr, Err: net.ErrClosed}
	default:
	}
	up := newPipe(l.window)   // client → server
	down := newPipe(l.window) // server → client
	client := &Conn{rd: down, wr: up, local: Addr{Name: l.addr.Name + ".client"}, remote: l.addr}
	server := &Conn{rd: up, wr: down, local: l.addr, remote: client.local}
	select {
	case l.backlog <- server:
		return client, nil
	case <-l.done:
		return nil, &net.OpError{Op: "dial", Net: "mem", Addr: l.addr, Err: net.ErrClosed}
	}
}

// Conn is one endpoint of an in-memory duplex connection.
type Conn struct {
	rd, wr        *pipe
	local, remote Addr
}

// Read reads from the inbound pipe.
func (c *Conn) Read(b []byte) (int, error) { return c.rd.read(b) }

// Write writes to the outbound pipe.
func (c *Conn) Write(b []byte) (int, error) { return c.wr.write(b) }

// WriteBuffers writes a vector of buffers as one locked operation — the
// in-memory analogue of writev. The gateway's writer drain uses it to
// land a whole batch of frames with a single lock acquisition and a
// single reader wakeup instead of one per frame.
func (c *Conn) WriteBuffers(bufs net.Buffers) (int64, error) { return c.wr.writev(bufs) }

// Close tears the connection down in both directions: the peer drains
// what was already written and then sees io.EOF; its writes (and our own
// reads and writes) fail immediately.
func (c *Conn) Close() error {
	c.wr.closeWrite()
	c.rd.closeRead()
	return nil
}

// LocalAddr returns this endpoint's address.
func (c *Conn) LocalAddr() net.Addr { return c.local }

// RemoteAddr returns the peer's address.
func (c *Conn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline sets both read and write deadlines.
func (c *Conn) SetDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	c.wr.setWriteDeadline(t)
	return nil
}

// SetReadDeadline bounds future Reads.
func (c *Conn) SetReadDeadline(t time.Time) error { c.rd.setReadDeadline(t); return nil }

// SetWriteDeadline bounds future Writes.
func (c *Conn) SetWriteDeadline(t time.Time) error { c.wr.setWriteDeadline(t); return nil }

// errTimeout satisfies net.Error with Timeout() == true, matching what
// deadline-aware callers (the gateway client, io loops) expect.
type timeoutError struct{}

func (timeoutError) Error() string   { return "netmem: i/o timeout" }
func (timeoutError) Timeout() bool   { return true }
func (timeoutError) Temporary() bool { return true }

var errTimeout net.Error = timeoutError{}

var errClosed = errors.New("netmem: connection closed")

// pipe is one direction of a connection: a bounded ring buffer with
// cond-based blocking and timer-driven deadlines. One reader and one
// writer goroutine at a time (more are safe, just unordered).
//
// Readers and writers wait on separate conds so a write that lands data
// wakes only a blocked reader (Signal, and only when one is actually
// waiting) instead of broadcasting to everyone touching the pipe —
// at 100k sessions the futex traffic of a shared cond dominates.
type pipe struct {
	mu    sync.Mutex
	rcond sync.Cond // readers wait here for data (or EOF/deadline)
	wcond sync.Cond // writers wait here for space (or close/deadline)

	rwait, wwait int // waiter counts: skip the futex when nobody waits

	buf  []byte // ring storage, grown on demand up to max
	r, n int    // read index, buffered bytes
	max  int

	wclosed bool // write end closed: reader drains then sees EOF
	rclosed bool // read end closed: both ends fail immediately

	rdead, wdead     time.Time
	rtimer, wtimer   *time.Timer
	rexpire, wexpire bool // deadline timer has fired
}

func newPipe(max int) *pipe {
	p := &pipe{max: max}
	p.rcond.L = &p.mu
	p.wcond.L = &p.mu
	return p
}

// wakeReaders/wakeWriters notify blocked peers. Callers hold p.mu.
// all=false wakes a single waiter (data/space handoff); all=true is for
// state changes every waiter must observe (close, deadline).
func (p *pipe) wakeReaders(all bool) {
	if p.rwait == 0 {
		return
	}
	if all {
		p.rcond.Broadcast()
	} else {
		p.rcond.Signal()
	}
}

func (p *pipe) wakeWriters(all bool) {
	if p.wwait == 0 {
		return
	}
	if all {
		p.wcond.Broadcast()
	} else {
		p.wcond.Signal()
	}
}

func (p *pipe) read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.rclosed {
			return 0, errClosed
		}
		if p.n > 0 {
			if len(b) == 0 {
				return 0, nil
			}
			nr := p.n
			if nr > len(b) {
				nr = len(b)
			}
			first := len(p.buf) - p.r
			if first > nr {
				first = nr
			}
			copy(b, p.buf[p.r:p.r+first])
			copy(b[first:], p.buf[:nr-first])
			p.r = (p.r + nr) % len(p.buf)
			p.n -= nr
			p.wakeWriters(false) // space available
			return nr, nil
		}
		if p.wclosed {
			return 0, io.EOF
		}
		if p.deadlinePassed(&p.rdead, &p.rexpire) {
			return 0, errTimeout
		}
		p.rwait++
		p.rcond.Wait()
		p.rwait--
	}
}

func (p *pipe) write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for {
		if p.rclosed || p.wclosed {
			if total > 0 {
				return total, errClosed
			}
			return 0, errClosed
		}
		if len(b) == 0 {
			return total, nil
		}
		if space := p.max - p.n; space > 0 {
			nw := len(b)
			if nw > space {
				nw = space
			}
			p.ensure(p.n + nw)
			w := (p.r + p.n) % len(p.buf)
			first := len(p.buf) - w
			if first > nw {
				first = nw
			}
			copy(p.buf[w:], b[:first])
			copy(p.buf, b[first:nw])
			p.n += nw
			total += nw
			b = b[nw:]
			p.wakeReaders(false) // data available
			continue
		}
		if p.deadlinePassed(&p.wdead, &p.wexpire) {
			return total, errTimeout
		}
		p.wwait++
		p.wcond.Wait()
		p.wwait--
	}
}

// writev lands a vector of buffers under one lock acquisition with at
// most one reader wakeup per pass. Partially written buffers block for
// space like write; short counts only occur on error.
func (p *pipe) writev(bufs [][]byte) (int64, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	var total int64
	for _, b := range bufs {
		for len(b) > 0 {
			if p.rclosed || p.wclosed {
				return total, errClosed
			}
			if space := p.max - p.n; space > 0 {
				nw := len(b)
				if nw > space {
					nw = space
				}
				p.ensure(p.n + nw)
				w := (p.r + p.n) % len(p.buf)
				first := len(p.buf) - w
				if first > nw {
					first = nw
				}
				copy(p.buf[w:], b[:first])
				copy(p.buf, b[first:nw])
				p.n += nw
				total += int64(nw)
				b = b[nw:]
				p.wakeReaders(false)
				continue
			}
			if p.deadlinePassed(&p.wdead, &p.wexpire) {
				return total, errTimeout
			}
			p.wwait++
			p.wcond.Wait()
			p.wwait--
		}
	}
	return total, nil
}

// ensure grows the ring storage to hold at least need bytes (≤ max),
// preserving buffered content.
func (p *pipe) ensure(need int) {
	if need <= len(p.buf) {
		return
	}
	sz := len(p.buf) * 2
	if sz < initialBuf {
		sz = initialBuf
	}
	for sz < need {
		sz *= 2
	}
	if sz > p.max {
		sz = p.max
	}
	nb := make([]byte, sz)
	if p.n > 0 {
		first := len(p.buf) - p.r
		if first > p.n {
			first = p.n
		}
		copy(nb, p.buf[p.r:p.r+first])
		copy(nb[first:], p.buf[:p.n-first])
	}
	p.buf = nb
	p.r = 0
}

func (p *pipe) closeWrite() {
	p.mu.Lock()
	p.wclosed = true
	p.wakeReaders(true)
	p.wakeWriters(true)
	p.mu.Unlock()
}

func (p *pipe) closeRead() {
	p.mu.Lock()
	p.rclosed = true
	p.wakeReaders(true)
	p.wakeWriters(true)
	p.mu.Unlock()
}

// deadlinePassed reports whether the deadline is set and reached.
// Callers hold p.mu. The expired flag is set by the deadline timer so
// waiters re-check without calling time.Now on every wakeup.
func (p *pipe) deadlinePassed(dead *time.Time, expired *bool) bool {
	if dead.IsZero() {
		return false
	}
	if *expired {
		return true
	}
	if !time.Now().Before(*dead) {
		*expired = true
		return true
	}
	return false
}

func (p *pipe) setReadDeadline(t time.Time) {
	p.mu.Lock()
	p.rdead = t
	p.rexpire = false
	p.armTimer(&p.rtimer, t, &p.rwait, &p.rcond)
	p.wakeReaders(true)
	p.mu.Unlock()
}

func (p *pipe) setWriteDeadline(t time.Time) {
	p.mu.Lock()
	p.wdead = t
	p.wexpire = false
	p.armTimer(&p.wtimer, t, &p.wwait, &p.wcond)
	p.wakeWriters(true)
	p.mu.Unlock()
}

// armTimer (re)schedules a broadcast at the deadline so blocked waiters
// on the given side re-check. The timer is reused across calls: deadline
// churn — one SetReadDeadline per client read at 100k sessions — must
// not allocate.
func (p *pipe) armTimer(tp **time.Timer, t time.Time, wait *int, cond *sync.Cond) {
	if t.IsZero() {
		if *tp != nil {
			(*tp).Stop()
		}
		return
	}
	d := time.Until(t)
	if d < 0 {
		d = 0
	}
	if *tp == nil {
		*tp = time.AfterFunc(d, func() {
			p.mu.Lock()
			if *wait > 0 {
				cond.Broadcast()
			}
			p.mu.Unlock()
		})
		return
	}
	(*tp).Reset(d)
}

// interface conformance checks.
var (
	_ net.Listener = (*Listener)(nil)
	_ net.Conn     = (*Conn)(nil)
)
