package netmem

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func pair(t *testing.T) (client, server net.Conn) {
	t.Helper()
	ln := Listen("t", 0)
	defer ln.Close()
	var (
		srv net.Conn
		aer error
		wg  sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		srv, aer = ln.Accept()
	}()
	cli, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if aer != nil {
		t.Fatal(aer)
	}
	return cli, srv
}

func TestRoundTrip(t *testing.T) {
	cli, srv := pair(t)
	defer cli.Close()
	defer srv.Close()
	msg := []byte("hello through memory")
	go func() {
		srv.Write(msg)
	}()
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(cli, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("got %q want %q", got, msg)
	}
}

// TestLargeTransfer pushes far more than the window through the pipe in
// both directions at once, checking content integrity byte for byte.
func TestLargeTransfer(t *testing.T) {
	cli, srv := pair(t)
	defer cli.Close()
	defer srv.Close()
	const total = 1 << 20
	pattern := func(i int) byte { return byte(i*7 + i>>9) }
	var wg sync.WaitGroup
	for _, d := range []struct {
		w net.Conn
		r net.Conn
	}{{srv, cli}, {cli, srv}} {
		wg.Add(2)
		go func(w net.Conn) {
			defer wg.Done()
			buf := make([]byte, 8192)
			for off := 0; off < total; {
				n := len(buf)
				if total-off < n {
					n = total - off
				}
				for i := 0; i < n; i++ {
					buf[i] = pattern(off + i)
				}
				m, err := w.Write(buf[:n])
				if err != nil {
					t.Error(err)
					return
				}
				off += m
			}
		}(d.w)
		go func(r net.Conn) {
			defer wg.Done()
			buf := make([]byte, 8192)
			for off := 0; off < total; {
				n, err := r.Read(buf)
				if err != nil {
					t.Error(err)
					return
				}
				for i := 0; i < n; i++ {
					if buf[i] != pattern(off+i) {
						t.Errorf("byte %d corrupted", off+i)
						return
					}
				}
				off += n
			}
		}(d.r)
	}
	wg.Wait()
}

func TestReadDeadline(t *testing.T) {
	cli, srv := pair(t)
	defer cli.Close()
	defer srv.Close()
	cli.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := cli.Read(make([]byte, 1))
	if err == nil {
		t.Fatal("read returned without data or deadline")
	}
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("want timeout net.Error, got %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline ignored")
	}
	// Clearing the deadline makes the conn usable again.
	cli.SetReadDeadline(time.Time{})
	go srv.Write([]byte{42})
	b := make([]byte, 1)
	if _, err := io.ReadFull(cli, b); err != nil || b[0] != 42 {
		t.Fatalf("read after deadline clear: %v %v", b, err)
	}
}

func TestWriteDeadlineOnFullWindow(t *testing.T) {
	ln := Listen("t", 1024) // tiny window
	defer ln.Close()
	go ln.Accept() // accepted but never read
	cli, err := ln.Dial()
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	cli.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	_, err = cli.Write(make([]byte, 4096))
	ne, ok := err.(net.Error)
	if !ok || !ne.Timeout() {
		t.Fatalf("want timeout net.Error, got %v", err)
	}
}

func TestCloseSemantics(t *testing.T) {
	cli, srv := pair(t)
	// Data written before close still drains, then EOF.
	if _, err := srv.Write([]byte("tail")); err != nil {
		t.Fatal(err)
	}
	srv.Close()
	got, err := io.ReadAll(cli)
	if err != nil {
		t.Fatalf("drain after peer close: %v", err)
	}
	if string(got) != "tail" {
		t.Fatalf("got %q want %q", got, "tail")
	}
	// Writes to a closed peer fail.
	if _, err := cli.Write([]byte("x")); err == nil {
		t.Fatal("write to closed peer succeeded")
	}
	cli.Close()
}

func TestListenerClose(t *testing.T) {
	ln := Listen("t", 0)
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		done <- err
	}()
	ln.Close()
	if err := <-done; err == nil {
		t.Fatal("Accept returned nil after Close")
	}
	if _, err := ln.Dial(); err == nil {
		t.Fatal("Dial succeeded after Close")
	}
}
