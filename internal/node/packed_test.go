package node

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"vab/internal/link"
)

// gridReading draws a reading already on the wire grid (centi-°C int16,
// whole-mbar uint16), the domain both codecs are exact over.
func gridReading(rng *rand.Rand) Reading {
	return Reading{
		Count:        rng.Uint32(),
		TempC:        float64(int16(rng.Intn(1<<16)-1<<15)) / 100,
		PressureMbar: float64(uint16(rng.Intn(1 << 16))),
	}
}

// TestPackedRoundTripProperty packs random grid-valued batches and
// checks the decode recovers every reading exactly, including the
// worst-case jumps delta coding must absorb.
func TestPackedRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(maxPackedCount)
		in := make([]Reading, n)
		for i := range in {
			in[i] = gridReading(rng)
		}
		p, err := AppendPacked(nil, in)
		if err != nil {
			t.Fatalf("trial %d: pack: %v", trial, err)
		}
		out, ok := DecodeReadings(p)
		if !ok {
			t.Fatalf("trial %d: decode rejected packed payload", trial)
		}
		if !reflect.DeepEqual(in, out) {
			t.Fatalf("trial %d: round trip mismatch\n in  %+v\n out %+v", trial, in, out)
		}
	}
}

// TestPackedSequentialSize pins the typical-case economics the format
// exists for: consecutive sensor samples cost ~3 bytes each against the
// 8 bytes of a v1 reading.
func TestPackedSequentialSize(t *testing.T) {
	in := make([]Reading, 6)
	for i := range in {
		in[i] = Reading{
			Count:        uint32(1000 + i),
			TempC:        12.3 + 0.01*float64(i),
			PressureMbar: 1234 + float64(i%2),
		}
	}
	p, err := AppendPacked(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	// Header 1 + base (2+2+2 groups) + 5 deltas ≤ 3 bytes each.
	if len(p) > 7+5*3 {
		t.Fatalf("sequential 6-reading payload is %d bytes, want ≤ %d", len(p), 7+5*3)
	}
	perReading := float64(len(p)) / 6
	if perReading >= float64(PayloadSize)/2 {
		t.Fatalf("packed costs %.1f B/reading, want < half of v1's %d", perReading, PayloadSize)
	}
}

// TestPackedWorstCaseBound verifies PackedPayloadSize really is an upper
// bound over adversarial grid-valued batches with count steps of one —
// the contract PackedEnvSensor's fixed payload size rests on.
func TestPackedWorstCaseBound(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 500; trial++ {
		n := 1 + rng.Intn(MaxPackedBatch)
		in := make([]Reading, n)
		base := rng.Uint32()
		for i := range in {
			in[i] = gridReading(rng)
			in[i].Count = base + uint32(i)
		}
		p, err := AppendPacked(nil, in)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) > PackedPayloadSize(n) {
			t.Fatalf("trial %d: %d readings packed to %d bytes > bound %d",
				trial, n, len(p), PackedPayloadSize(n))
		}
	}
}

// TestPackedFitsLinkFrame pins MaxPackedBatch against the link payload
// bound: the largest batch fits, one more would not, and the acceptance
// floor of 4 readings per 64-byte frame holds with room to spare.
func TestPackedFitsLinkFrame(t *testing.T) {
	if PackedPayloadSize(MaxPackedBatch) > link.MaxPayload {
		t.Fatalf("MaxPackedBatch=%d needs %d bytes > link.MaxPayload=%d",
			MaxPackedBatch, PackedPayloadSize(MaxPackedBatch), link.MaxPayload)
	}
	if PackedPayloadSize(MaxPackedBatch+1) <= link.MaxPayload {
		t.Fatalf("MaxPackedBatch=%d is not maximal", MaxPackedBatch)
	}
	if MaxPackedBatch < 4 {
		t.Fatalf("MaxPackedBatch=%d, acceptance floor is 4 readings/frame", MaxPackedBatch)
	}
}

// TestDecodeReadingsDispatch checks both formats decode through the one
// entry point: v1 payloads yield their single reading and padded packed
// payloads yield the batch.
func TestDecodeReadingsDispatch(t *testing.T) {
	s := NewEnvSensor(12, 3, 42)
	v1 := s.Read()
	rds, ok := DecodeReadings(v1)
	if !ok || len(rds) != 1 {
		t.Fatalf("v1 dispatch: ok=%v n=%d", ok, len(rds))
	}
	want, _ := DecodeReading(v1)
	if rds[0] != want {
		t.Fatalf("v1 dispatch reading %+v, want %+v", rds[0], want)
	}

	ps, err := NewPackedEnvSensor(12, 3, 42, 6)
	if err != nil {
		t.Fatal(err)
	}
	p := ps.Read()
	if len(p) != PackedPayloadSize(6) {
		t.Fatalf("packed payload %d bytes, want fixed %d", len(p), PackedPayloadSize(6))
	}
	rds, ok = DecodeReadings(p)
	if !ok || len(rds) != 6 {
		t.Fatalf("packed dispatch: ok=%v n=%d", ok, len(rds))
	}
	for i := 1; i < len(rds); i++ {
		if rds[i].Count != rds[i-1].Count+1 {
			t.Fatalf("counts not consecutive: %d then %d", rds[i-1].Count, rds[i].Count)
		}
	}
}

// TestPackedSensorMatchesEnvSensor: a packed sensor and a plain sensor
// with the same seed see the same measurement stream — batching changes
// framing, not data.
func TestPackedSensorMatchesEnvSensor(t *testing.T) {
	plain := NewEnvSensor(12, 3, 99)
	packed, err := NewPackedEnvSensor(12, 3, 99, 5)
	if err != nil {
		t.Fatal(err)
	}
	var want []Reading
	for i := 0; i < 10; i++ {
		rd, ok := DecodeReading(plain.Read())
		if !ok {
			t.Fatal("plain payload failed to decode")
		}
		want = append(want, rd)
	}
	var got []Reading
	for i := 0; i < 2; i++ {
		rds, ok := DecodeReadings(packed.Read())
		if !ok {
			t.Fatal("packed payload failed to decode")
		}
		got = append(got, rds...)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("packed stream diverges from plain stream\n got  %+v\n want %+v", got, want)
	}
}

// TestPackedErrors covers the rejection paths.
func TestPackedErrors(t *testing.T) {
	if _, err := AppendPacked(nil, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, err := AppendPacked(nil, make([]Reading, maxPackedCount+1)); err == nil {
		t.Error("oversize batch accepted")
	}
	if _, err := AppendPacked(nil, []Reading{{TempC: math.NaN()}}); err == nil {
		t.Error("NaN temperature accepted")
	}
	if _, err := AppendPacked(nil, []Reading{{PressureMbar: math.Inf(1)}}); err == nil {
		t.Error("infinite pressure accepted")
	}
	if _, err := NewPackedEnvSensor(12, 3, 1, 0); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, err := NewPackedEnvSensor(12, 3, 1, MaxPackedBatch+1); err == nil {
		t.Error("batch beyond MaxPackedBatch accepted")
	}
	if _, ok := DecodeReadings(nil); ok {
		t.Error("nil payload decoded")
	}
	if _, ok := DecodeReadings([]byte{0xC0}); ok {
		t.Error("packed payload with zero count decoded")
	}
	// Truncated packed payload: magic + count 2 but stream ends mid-base.
	if _, ok := DecodeReadings([]byte{0xC2, 0x80}); ok {
		t.Error("truncated packed payload decoded")
	}
}

// TestPackedDecodeAllocs pins the allocation-free steady state of the
// payload codec pair: pack into a reused buffer, decode into a reused
// readings slice.
func TestPackedDecodeAllocs(t *testing.T) {
	in := make([]Reading, 6)
	for i := range in {
		in[i] = Reading{Count: uint32(i), TempC: 12.3, PressureMbar: 1234}
	}
	buf := make([]byte, 0, 64)
	out := make([]Reading, 0, 8)
	allocs := testing.AllocsPerRun(200, func() {
		p, err := AppendPacked(buf[:0], in)
		if err != nil {
			t.Fatal(err)
		}
		var ok bool
		out, ok = AppendDecodedReadings(out[:0], p)
		if !ok || len(out) != len(in) {
			t.Fatalf("decode: ok=%v n=%d", ok, len(out))
		}
	})
	if allocs != 0 {
		t.Fatalf("pack/unpack cycle allocated %.1f times, want 0", allocs)
	}
}
