package node

import (
	"reflect"
	"testing"
)

// FuzzPackedDecode hammers the payload-format dispatcher with arbitrary
// bytes: it must never panic, and any packed payload it accepts must
// survive a re-encode/re-decode cycle with identical readings (the
// semantic round trip — byte identity is not required because decoders
// tolerate padding and non-canonical varints).
func FuzzPackedDecode(f *testing.F) {
	s := NewEnvSensor(12, 3, 1)
	f.Add(s.Read())
	ps, err := NewPackedEnvSensor(12, 3, 1, 6)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(ps.Read())
	f.Add([]byte{})
	f.Add([]byte{0xC1})
	f.Add([]byte{0xC0, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, p []byte) {
		rds, ok := DecodeReadings(p)
		if !ok {
			return
		}
		if len(rds) == 0 {
			t.Fatal("accepted payload produced zero readings")
		}
		re, err := AppendPacked(nil, rds)
		if err != nil {
			t.Fatalf("accepted readings failed to re-encode: %v", err)
		}
		rds2, ok := DecodeReadings(re)
		if !ok {
			t.Fatal("re-encoded payload failed to decode")
		}
		if !reflect.DeepEqual(rds, rds2) {
			t.Fatalf("re-decode mismatch\n got  %+v\n want %+v", rds2, rds)
		}
	})
}
