package node

import (
	"testing"

	"vab/internal/link"
	"vab/internal/phy"
)

func newTestNode(t *testing.T) *Node {
	t.Helper()
	h := DefaultHarvester()
	h.BatteryBacked = true
	n, err := New(Config{
		Addr:    3,
		Codec:   link.DefaultCodec(),
		PHY:     phy.DefaultParams(),
		Budget:  DefaultPowerBudget(),
		Harvest: h,
		Sensor:  NewEnvSensor(15, 2.5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// A brownout silences the node immediately; the next charge interval
// (battery-backed rail) brings it back — transient fault, transient cost.
func TestInjectBrownout(t *testing.T) {
	n := newTestNode(t)
	n.Harvest(1, 1.5e6, 3600)
	if n.State() != StateListen {
		t.Fatalf("node failed to wake: %v", n.State())
	}

	n.InjectBrownout()
	if n.State() != StateSleep {
		t.Fatalf("state after brownout = %v, want sleep", n.State())
	}
	if n.Harvester().Voltage() != 0 {
		t.Fatalf("rail at %.3g V after forced depletion", n.Harvester().Voltage())
	}
	if bits, err := n.HandleQuery(&link.Frame{Type: link.FrameQuery, Addr: 3}); err != nil || bits != nil {
		t.Fatalf("browned-out node answered (bits=%v err=%v)", bits != nil, err)
	}

	// Recovery: the battery floats the reservoir back over turn-on.
	n.Harvest(1, 1.5e6, 60)
	if n.State() != StateListen {
		t.Fatalf("node failed to recover after recharge: %v", n.State())
	}
	if bits, err := n.HandleQuery(&link.Frame{Type: link.FrameQuery, Addr: 3}); err != nil || bits == nil {
		t.Fatalf("recovered node stayed silent (err=%v)", err)
	}
}

func TestSetClockPPM(t *testing.T) {
	n := newTestNode(t)
	if n.ClockPPM() != 0 {
		t.Fatalf("default clock error %.3g ppm", n.ClockPPM())
	}
	if err := n.SetClockPPM(1500); err != nil {
		t.Fatal(err)
	}
	if n.ClockPPM() != 1500 {
		t.Fatalf("clock error %.3g ppm, want 1500", n.ClockPPM())
	}
	// No-op path.
	if err := n.SetClockPPM(1500); err != nil {
		t.Fatal(err)
	}
	// The skewed modulator must still produce waveforms.
	n.Harvest(1, 1.5e6, 3600)
	if n.State() != StateListen {
		t.Fatalf("node state %v", n.State())
	}
	bits, err := n.HandleQuery(&link.Frame{Type: link.FrameQuery, Addr: 3})
	if err != nil || bits == nil {
		t.Fatalf("skewed node silent (err=%v)", err)
	}
	if err := n.SetClockPPM(0); err != nil {
		t.Fatal(err)
	}
}

func TestSetChipRate(t *testing.T) {
	n := newTestNode(t)
	if err := n.SetChipRate(250); err != nil {
		t.Fatal(err)
	}
	if got := n.cfg.PHY.ChipRate; got != 250 {
		t.Fatalf("chip rate %.0f, want 250", got)
	}
	if err := n.SetChipRate(250); err != nil { // no-op
		t.Fatal(err)
	}
	// 300 cps does not divide the 16 kHz sample rate into integer samples
	// per chip: the numerology must reject it and keep the old modulator.
	if err := n.SetChipRate(300); err == nil {
		t.Fatal("invalid chip rate accepted")
	}
	if got := n.cfg.PHY.ChipRate; got != 250 {
		t.Fatalf("failed retune corrupted chip rate to %.0f", got)
	}
}
