package node

import (
	"encoding/binary"
	"math"
	"math/rand"
)

// EnvSensor synthesizes the coastal-monitoring measurements the paper's
// applications section motivates: water temperature and pressure (depth),
// modeled as slow sinusoidal drift plus measurement noise. Payload layout
// (big endian): uint32 sample counter, int16 temperature in centi-°C,
// uint16 pressure in millibar.
type EnvSensor struct {
	BaseTempC   float64
	BaseDepthM  float64
	DriftPeriod float64 // samples per full drift cycle
	NoiseStd    float64

	count uint32
	rng   *rand.Rand
}

// NewEnvSensor creates a sensor with the given statistics. seed fixes the
// noise stream for reproducible trials.
func NewEnvSensor(tempC, depthM float64, seed int64) *EnvSensor {
	return &EnvSensor{
		BaseTempC:   tempC,
		BaseDepthM:  depthM,
		DriftPeriod: 480,
		NoiseStd:    0.05,
		rng:         rand.New(rand.NewSource(seed)),
	}
}

// PayloadSize is the wire size of one EnvSensor reading.
const PayloadSize = 8

// sample draws the next measurement and returns it quantized onto the
// wire grid (centi-°C, whole millibar) — the exact values a decoder of
// either payload format recovers. Both the v1 single-reading payload
// and the packed batch payload encode from these samples, so the two
// formats quantize identically.
func (s *EnvSensor) sample() Reading {
	phase := 2 * math.Pi * float64(s.count) / s.DriftPeriod
	temp := s.BaseTempC + 0.5*math.Sin(phase) + s.rng.NormFloat64()*s.NoiseStd
	// Hydrostatic pressure: 1 bar surface + ~0.0981 bar per meter.
	pressureMbar := 1000 + 98.1*s.BaseDepthM + 5*math.Sin(phase/3) + s.rng.NormFloat64()*s.NoiseStd*10

	rd := Reading{
		Count:        s.count,
		TempC:        float64(int16(math.Round(temp*100))) / 100,
		PressureMbar: float64(uint16(math.Round(pressureMbar))),
	}
	s.count++
	return rd
}

// Read returns the next encoded reading (the v1 single-reading layout).
func (s *EnvSensor) Read() []byte {
	rd := s.sample()
	out := make([]byte, PayloadSize)
	binary.BigEndian.PutUint32(out[0:4], rd.Count)
	binary.BigEndian.PutUint16(out[4:6], uint16(int16(math.Round(rd.TempC*100))))
	binary.BigEndian.PutUint16(out[6:8], uint16(math.Round(rd.PressureMbar)))
	return out
}

// Reading decodes a payload produced by Read.
type Reading struct {
	Count        uint32
	TempC        float64
	PressureMbar float64
}

// DecodeReading parses an EnvSensor payload.
func DecodeReading(p []byte) (Reading, bool) {
	if len(p) != PayloadSize {
		return Reading{}, false
	}
	return Reading{
		Count:        binary.BigEndian.Uint32(p[0:4]),
		TempC:        float64(int16(binary.BigEndian.Uint16(p[4:6]))) / 100,
		PressureMbar: float64(binary.BigEndian.Uint16(p[6:8])),
	}, true
}
