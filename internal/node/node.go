// Package node models the battery-free VAB backscatter node: its
// query-response state machine, the energy harvester that powers it from
// the reader's own carrier, the microwatt-level power ledger of its
// components, and the synthetic sensors it samples.
//
// A node owns a Van Atta array (vanatta), switches its reflection state
// through the link-layer codec (link) and the subcarrier modulator (phy),
// and is driven by downlink command frames decoded with the envelope
// detector. Everything the node does must fit the harvested power budget;
// the Harvester and PowerBudget types make that constraint explicit and
// testable.
package node

import (
	"fmt"
	"math"

	"vab/internal/link"
	"vab/internal/phy"
)

// PowerBudget itemizes the node's power draw per state, in watts. The
// defaults follow the component classes reported for underwater backscatter
// prototypes (nano-power comparators, sub-µW oscillators, analog switches).
type PowerBudget struct {
	Sleep       float64 // retention + leakage
	Listen      float64 // envelope detector + wake comparator
	Decode      float64 // command decoding logic
	Backscatter float64 // switch driver + subcarrier oscillator + encoder
}

// DefaultPowerBudget returns the reference budget used in the paper-style
// power table: a few µW idle, tens of µW while actively backscattering.
func DefaultPowerBudget() PowerBudget {
	return PowerBudget{
		Sleep:       0.5e-6,
		Listen:      3e-6,
		Decode:      20e-6,
		Backscatter: 40e-6,
	}
}

// Total returns the sum of all component draws (the "everything on" upper
// bound used for sizing the storage capacitor).
func (b PowerBudget) Total() float64 {
	return b.Sleep + b.Listen + b.Decode + b.Backscatter
}

// Harvester models the node's energy storage: incident acoustic power is
// rectified into a storage capacitor; node activity drains it.
type Harvester struct {
	// ApertureM2 is the effective acoustic collection area of the array.
	ApertureM2 float64
	// Efficiency is the acoustic→stored-charge conversion efficiency
	// (piezo coupling × rectifier), in (0, 1).
	Efficiency float64
	// CapacitanceF and MaxVoltage bound the storage reservoir.
	CapacitanceF float64
	MaxVoltage   float64
	// TurnOnVoltage is the minimum rail for any activity beyond sleeping.
	TurnOnVoltage float64

	// BatteryBacked floats the reservoir from a small primary cell: the
	// rail never drops below turn-on, and the deficit is drawn from the
	// battery (tracked in BatteryDrawn). Long-range deployments run
	// battery-backed — beyond roughly a hundred meters the harvested
	// carrier no longer covers even the sleep current — while the
	// harvesting experiments run without it.
	BatteryBacked bool

	voltage      float64
	batteryDrawn float64 // J
}

// DefaultHarvester returns storage sized like the prototype nodes: a 100 µF
// reservoir charged to at most 5 V, operational above 2.2 V.
func DefaultHarvester() *Harvester {
	return &Harvester{
		ApertureM2:    0.02,
		Efficiency:    0.25,
		CapacitanceF:  100e-6,
		MaxVoltage:    5.0,
		TurnOnVoltage: 2.2,
	}
}

// Validate reports whether the harvester parameters are physical.
func (h *Harvester) Validate() error {
	switch {
	case h.ApertureM2 <= 0:
		return fmt.Errorf("node: aperture %.3g m² must be positive", h.ApertureM2)
	case h.Efficiency <= 0 || h.Efficiency > 1:
		return fmt.Errorf("node: efficiency %.3g outside (0, 1]", h.Efficiency)
	case h.CapacitanceF <= 0:
		return fmt.Errorf("node: capacitance %.3g F must be positive", h.CapacitanceF)
	case h.MaxVoltage <= 0 || h.TurnOnVoltage <= 0 || h.TurnOnVoltage > h.MaxVoltage:
		return fmt.Errorf("node: voltage rails (%.2f, %.2f) invalid", h.TurnOnVoltage, h.MaxVoltage)
	}
	return nil
}

// Voltage returns the current storage voltage.
func (h *Harvester) Voltage() float64 { return h.voltage }

// StoredEnergy returns the energy in the reservoir, ½CV².
func (h *Harvester) StoredEnergy() float64 {
	return 0.5 * h.CapacitanceF * h.voltage * h.voltage
}

// Operational reports whether the rail is above turn-on.
func (h *Harvester) Operational() bool { return h.voltage >= h.TurnOnVoltage }

// HarvestablePower returns the electrical power available from an incident
// pressure amplitude (Pa RMS) in water with characteristic impedance
// rhoC (kg/m²s): intensity p²/ρc collected over the aperture at the
// conversion efficiency.
func (h *Harvester) HarvestablePower(pressurePa, rhoC float64) float64 {
	if pressurePa <= 0 || rhoC <= 0 {
		return 0
	}
	return pressurePa * pressurePa / rhoC * h.ApertureM2 * h.Efficiency
}

// Step advances the reservoir by dt seconds with the given input power and
// load power (both watts). It returns the actually expended load energy —
// less than load·dt if the rail collapses below turn-on mid-interval.
func (h *Harvester) Step(inputW, loadW, dt float64) float64 {
	if dt <= 0 {
		return 0
	}
	eIn := inputW * dt
	eLoad := loadW * dt
	e := h.StoredEnergy() + eIn
	spent := eLoad
	if eLoad > e {
		spent = e
		e = 0
	} else {
		e -= eLoad
	}
	v := math.Sqrt(2 * e / h.CapacitanceF)
	if v > h.MaxVoltage {
		v = h.MaxVoltage // shunt regulator clamps overcharge
	}
	if h.BatteryBacked && v < h.TurnOnVoltage {
		refill := 0.5*h.CapacitanceF*h.TurnOnVoltage*h.TurnOnVoltage - 0.5*h.CapacitanceF*v*v
		h.batteryDrawn += refill
		// The battery also covers any load the capacitor couldn't.
		h.batteryDrawn += eLoad - spent
		spent = eLoad
		v = h.TurnOnVoltage
	}
	h.voltage = v
	return spent
}

// BatteryDrawn returns the cumulative energy supplied by the backing
// battery in joules (0 for harvest-only nodes).
func (h *Harvester) BatteryDrawn() float64 { return h.batteryDrawn }

// Deplete collapses the reservoir to 0 V immediately: the fault-injection
// hook for supply brownouts (a shorted rail, a regulator latch-up, a cold
// capacitor). Battery backing does not soften the collapse itself — the
// next Step refills a battery-backed node back to turn-on, modeling the
// recovery time of one charge interval.
func (h *Harvester) Deplete() { h.voltage = 0 }

// State enumerates the node FSM.
type State int

// FSM states.
const (
	StateSleep State = iota
	StateListen
	StateDecode
	StateBackscatter
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateSleep:
		return "sleep"
	case StateListen:
		return "listen"
	case StateDecode:
		return "decode"
	case StateBackscatter:
		return "backscatter"
	default:
		return "invalid"
	}
}

// Stats counts node activity for the power-budget experiment.
type Stats struct {
	QueriesHeard    int
	QueriesMine     int
	FramesReturned  int
	DecodeFailures  int
	CommandsApplied int
	BrownOuts       int     // responses skipped for lack of energy
	EnergySpent     float64 // J
	EnergyHarvested float64 // J
}

// Config assembles a node.
type Config struct {
	Addr    byte
	Codec   link.Codec
	PHY     phy.Params
	Budget  PowerBudget
	Harvest *Harvester
	Sensor  Sensor
}

// Node is the protocol state machine. It is synchronous: the surrounding
// simulation calls HandleQuery/Elapse as the channel delivers waveforms.
type Node struct {
	cfg   Config
	mod   *phy.Modulator
	state State
	seq   byte
	stats Stats

	clock          float64 // elapsed seconds, advanced by Harvest
	reportInterval float64 // minimum seconds between responses (0 = every poll)
	muteUntil      float64 // node stays silent until this clock value
	lastReport     float64 // clock value of the last response
}

// New validates the configuration and builds a node in the sleep state.
func New(cfg Config) (*Node, error) {
	if cfg.Harvest == nil {
		return nil, fmt.Errorf("node: harvester required")
	}
	if err := cfg.Harvest.Validate(); err != nil {
		return nil, err
	}
	if cfg.Sensor == nil {
		return nil, fmt.Errorf("node: sensor required")
	}
	mod, err := phy.NewModulator(cfg.PHY)
	if err != nil {
		return nil, err
	}
	return &Node{cfg: cfg, mod: mod, state: StateSleep}, nil
}

// Addr returns the node's link-layer address.
func (n *Node) Addr() byte { return n.cfg.Addr }

// Harvester exposes the node's energy reservoir for inspection and fault
// injection.
func (n *Node) Harvester() *Harvester { return n.cfg.Harvest }

// InjectBrownout forcibly depletes the reservoir and drops the node into
// the sleep state: the deterministic fault-injection entry point. The node
// stays silent until the next charge interval restores the rail (which,
// for battery-backed nodes, is the next Harvest/Step call).
func (n *Node) InjectBrownout() {
	n.cfg.Harvest.Deplete()
	n.state = StateSleep
}

// ClockPPM returns the node oscillator's current frequency error.
func (n *Node) ClockPPM() float64 { return n.cfg.PHY.ClockPPM }

// SetClockPPM re-tunes the node oscillator's frequency error mid-run (a
// temperature transient, or a fault-injected clock step) by rebuilding the
// modulator at the new numerology. A no-op when ppm already matches.
func (n *Node) SetClockPPM(ppm float64) error {
	if n.cfg.PHY.ClockPPM == ppm {
		return nil
	}
	p := n.cfg.PHY
	p.ClockPPM = ppm
	mod, err := phy.NewModulator(p)
	if err != nil {
		return fmt.Errorf("node: clock step to %+.0f ppm: %w", ppm, err)
	}
	n.cfg.PHY = p
	n.mod = mod
	return nil
}

// SetChipRate rebuilds the node modulator at a new chip rate — the node
// half of a reader-commanded rate stepdown. The rate must satisfy the phy
// numerology rules for the configured sample rate. A no-op when the rate
// already matches.
func (n *Node) SetChipRate(rate float64) error {
	if n.cfg.PHY.ChipRate == rate {
		return nil
	}
	p := n.cfg.PHY
	p.ChipRate = rate
	mod, err := phy.NewModulator(p)
	if err != nil {
		return fmt.Errorf("node: chip rate %.0f: %w", rate, err)
	}
	n.cfg.PHY = p
	n.mod = mod
	return nil
}

// State returns the FSM state.
func (n *Node) State() State { return n.state }

// Stats returns a copy of the activity counters.
func (n *Node) Stats() Stats { return n.stats }

// Harvest charges the node from an incident carrier for dt seconds
// (pressure in Pa RMS at the node, rhoC the medium impedance). While the
// rail is below turn-on the node draws only sleep (leakage) power; once
// operational it listens. The interval is integrated in sub-steps so the
// state can flip mid-way (waking up, or browning out when the load exceeds
// the harvest).
func (n *Node) Harvest(pressurePa, rhoC, dt float64) {
	in := n.cfg.Harvest.HarvestablePower(pressurePa, rhoC)
	n.clock += dt
	const maxStep = 10.0 // seconds
	for dt > 0 {
		step := dt
		if step > maxStep {
			step = maxStep
		}
		dt -= step
		load := n.cfg.Budget.Sleep
		if n.cfg.Harvest.Operational() {
			load = n.cfg.Budget.Listen
		}
		n.stats.EnergyHarvested += in * step
		n.stats.EnergySpent += n.cfg.Harvest.Step(in, load, step)
		if n.cfg.Harvest.Operational() {
			if n.state == StateSleep {
				n.state = StateListen
			}
		} else {
			n.state = StateSleep
		}
	}
}

// HandleQuery processes a decoded downlink frame. When the query addresses
// this node (or broadcast) and the reservoir holds enough energy for a full
// response, it returns the reflection waveform γ(t) of the response burst.
// A nil waveform with nil error means the query was for someone else or the
// node stayed silent.
func (n *Node) HandleQuery(f *link.Frame) ([]float64, error) {
	if f == nil {
		return nil, fmt.Errorf("node: nil frame")
	}
	if !n.cfg.Harvest.Operational() {
		n.state = StateSleep
		n.stats.BrownOuts++
		return nil, nil
	}
	if n.Muted() {
		return nil, nil
	}
	// Commanded reporting interval: decline polls that arrive sooner than
	// the configured period since the last response — the operator's knob
	// for stretching a node's energy across a long deployment.
	if n.reportInterval > 0 && n.stats.FramesReturned > 0 &&
		n.clock < n.lastReport+n.reportInterval {
		return nil, nil
	}
	n.stats.QueriesHeard++
	if f.Type != link.FrameQuery {
		return nil, nil
	}
	if f.Addr != n.cfg.Addr && f.Addr != link.BroadcastAddr {
		return nil, nil
	}
	n.stats.QueriesMine++
	n.state = StateDecode

	payload := n.cfg.Sensor.Read()
	resp := &link.Frame{Type: link.FrameData, Addr: n.cfg.Addr, Seq: n.seq, Payload: payload}
	n.seq++
	chips, err := n.cfg.Codec.EncodeFrame(resp)
	if err != nil {
		n.stats.DecodeFailures++
		return nil, fmt.Errorf("node: encode response: %w", err)
	}
	// Energy check: the burst takes len/chiprate seconds at backscatter
	// power plus decode overhead.
	burstSec := float64(n.mod.BurstSamples(len(chips))) / n.cfg.PHY.SampleRate
	needed := n.cfg.Budget.Backscatter*burstSec + n.cfg.Budget.Decode*0.01
	if n.cfg.Harvest.StoredEnergy() < needed {
		n.stats.BrownOuts++
		n.state = StateListen
		return nil, nil
	}
	gamma, err := n.mod.GammaWaveform(chips)
	if err != nil {
		return nil, fmt.Errorf("node: modulate response: %w", err)
	}
	n.state = StateBackscatter
	n.stats.EnergySpent += n.cfg.Harvest.Step(0, needed/burstSec, burstSec)
	n.stats.FramesReturned++
	n.lastReport = n.clock
	n.state = StateListen
	return gamma, nil
}

// Sensor produces payload bytes on demand.
type Sensor interface {
	// Read returns the next sensor sample encoded as frame payload.
	Read() []byte
}
