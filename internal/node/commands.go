package node

import (
	"encoding/binary"
	"fmt"

	"vab/internal/link"
)

// Downlink command set. Commands arrive as link.FrameCmd frames whose
// payload starts with an opcode byte; the node acknowledges over the
// backscatter uplink with a link.FrameAck echoing the opcode. The set is
// deliberately tiny — each additional opcode is decode logic that must run
// on microwatts.
const (
	// CmdPing elicits an ack and nothing else: the liveness probe.
	CmdPing byte = 0x01
	// CmdSetInterval sets the node's minimum interval between responses in
	// seconds (uint16 argument): polls arriving sooner are silently
	// declined, stretching the node's energy. Zero answers every poll.
	CmdSetInterval byte = 0x02
	// CmdMute silences the node for the given number of seconds (uint16
	// argument): the operator's tool for deconflicting sites or taking a
	// node out of a survey without diving for it.
	CmdMute byte = 0x03
)

// PingPayload builds a ping command payload.
func PingPayload() []byte { return []byte{CmdPing} }

// SetIntervalPayload builds a reporting-interval command payload.
func SetIntervalPayload(seconds uint16) []byte {
	p := []byte{CmdSetInterval, 0, 0}
	binary.BigEndian.PutUint16(p[1:], seconds)
	return p
}

// MutePayload builds a mute command payload.
func MutePayload(seconds uint16) []byte {
	p := []byte{CmdMute, 0, 0}
	binary.BigEndian.PutUint16(p[1:], seconds)
	return p
}

// ReportInterval returns the configured minimum interval between responses
// in seconds (0 = answer every poll).
func (n *Node) ReportInterval() float64 { return n.reportInterval }

// Muted reports whether the node is currently muted.
func (n *Node) Muted() bool { return n.clock < n.muteUntil }

// Clock returns the node's elapsed-time counter in seconds (advanced by
// Harvest — the node has no other notion of time).
func (n *Node) Clock() float64 { return n.clock }

// HandleCommand processes a downlink command frame addressed to this node
// (or broadcast) and returns the acknowledgement reflection waveform, or
// nil when the command is for someone else, the node lacks energy, or the
// command mutes the node (mute is deliberately unacknowledged: the point is
// radio silence). Malformed commands addressed to this node return an
// error.
func (n *Node) HandleCommand(f *link.Frame) ([]float64, error) {
	if f == nil || f.Type != link.FrameCmd {
		return nil, fmt.Errorf("node: not a command frame")
	}
	if f.Addr != n.cfg.Addr && f.Addr != link.BroadcastAddr {
		return nil, nil
	}
	if !n.cfg.Harvest.Operational() || n.Muted() {
		return nil, nil
	}
	if len(f.Payload) == 0 {
		return nil, fmt.Errorf("node: empty command payload")
	}
	op := f.Payload[0]
	arg16 := func() (uint16, error) {
		if len(f.Payload) < 3 {
			return 0, fmt.Errorf("node: command 0x%02x needs a uint16 argument", op)
		}
		return binary.BigEndian.Uint16(f.Payload[1:3]), nil
	}
	ack := true
	switch op {
	case CmdPing:
		// Nothing to do beyond the ack.
	case CmdSetInterval:
		v, err := arg16()
		if err != nil {
			return nil, err
		}
		n.reportInterval = float64(v)
	case CmdMute:
		v, err := arg16()
		if err != nil {
			return nil, err
		}
		n.muteUntil = n.clock + float64(v)
		ack = false
	default:
		return nil, fmt.Errorf("node: unknown command 0x%02x", op)
	}
	n.stats.CommandsApplied++
	if !ack {
		return nil, nil
	}

	resp := &link.Frame{Type: link.FrameAck, Addr: n.cfg.Addr, Seq: n.seq, Payload: []byte{op}}
	n.seq++
	chips, err := n.cfg.Codec.EncodeFrame(resp)
	if err != nil {
		return nil, fmt.Errorf("node: encode ack: %w", err)
	}
	burstSec := float64(n.mod.BurstSamples(len(chips))) / n.cfg.PHY.SampleRate
	needed := n.cfg.Budget.Backscatter * burstSec
	if n.cfg.Harvest.StoredEnergy() < needed {
		n.stats.BrownOuts++
		return nil, nil
	}
	n.stats.EnergySpent += n.cfg.Harvest.Step(0, needed/burstSec, burstSec)
	gamma, err := n.mod.GammaWaveform(chips)
	if err != nil {
		return nil, fmt.Errorf("node: modulate ack: %w", err)
	}
	return gamma, nil
}
