package node

import (
	"fmt"
	"math"

	"vab/internal/bitio"
	"vab/internal/link"
)

// Packed multi-reading payload (payload format v2). At VAB uplink rates
// every frame costs a full poll — preamble, acquisition, MAC turnaround —
// so carrying one 8-byte reading per response wastes most of the airtime
// on per-frame overhead. The packed payload amortizes it: one FrameData
// payload carries a batch of consecutive readings, quantized at physical
// precision (temperature 0.01 °C, pressure 1 mbar) and delta-coded
// against the previous sample, as an MSB-first bitio stream:
//
//	4 bits  magic 0xC (distinguishes packed payloads from the v1 layout)
//	4 bits  reading count N (1..15)
//	base    count uvarint · temp zigzag varint (centi-°C) ·
//	        pressure zigzag varint (mbar)
//	N-1 ×   Δcount zigzag · Δtemp zigzag · Δpressure zigzag
//	        (each delta against the previous reading)
//	trailing bits/bytes are padding and ignored
//
// Varints are LEB128 7-bit groups (bitio). Consecutive sensor samples
// differ by one count and by sub-degree drift, so a typical delta costs
// three groups (3 bytes) against the 8 bytes of a v1 reading.
//
// The decoder accepts both formats: DecodeReadings dispatches on the
// magic nibble and falls back to the v1 single-reading layout, so mixed
// fleets — and every committed seeded transcript — keep decoding.

// packedMagic tags the high nibble of a packed payload's first byte.
const packedMagic = 0xC

// maxPackedCount is the most readings the 4-bit count field can carry.
const maxPackedCount = 15

// PackedPayloadSize returns the guaranteed worst-case encoded size in
// bytes of a packed payload holding batch consecutive EnvSensor
// readings: header byte + base (count ≤ 5 groups, temp and pressure ≤ 3
// each) + (batch−1) deltas (count +1 → 1 group, temp and pressure
// bounded by their 16-bit field range → 3 groups each). PackedEnvSensor
// pads its payloads to exactly this size so the reader's demodulation
// window is fixed per configuration.
func PackedPayloadSize(batch int) int {
	if batch < 1 {
		return 0
	}
	return 12 + 7*(batch-1)
}

// MaxPackedBatch is the largest batch whose worst-case packed payload
// still fits a link frame: 8 readings in 61 ≤ 64 payload bytes.
var MaxPackedBatch = func() int {
	k := 1
	for PackedPayloadSize(k+1) <= link.MaxPayload {
		k++
	}
	return k
}()

// quantize maps a reading onto its wire grid, rejecting non-finite
// values (a varint of a NaN cast is platform-defined garbage).
func quantize(rd Reading) (count, centi, mbar int64, err error) {
	if math.IsNaN(rd.TempC) || math.IsInf(rd.TempC, 0) ||
		math.IsNaN(rd.PressureMbar) || math.IsInf(rd.PressureMbar, 0) {
		return 0, 0, 0, fmt.Errorf("node: non-finite reading (temp %v, pressure %v)", rd.TempC, rd.PressureMbar)
	}
	return int64(rd.Count), int64(math.Round(rd.TempC * 100)), int64(math.Round(rd.PressureMbar)), nil
}

// AppendPacked encodes readings as a packed payload appended to dst,
// delta-coding each reading against its predecessor. dst with spare
// capacity makes the encode allocation-free. The result is unpadded;
// fixed-size producers (PackedEnvSensor) pad to PackedPayloadSize.
func AppendPacked(dst []byte, readings []Reading) ([]byte, error) {
	if len(readings) == 0 || len(readings) > maxPackedCount {
		return dst, fmt.Errorf("node: packed payload needs 1..%d readings, have %d", maxPackedCount, len(readings))
	}
	var w bitio.Writer
	w.Reset(dst)
	w.WriteBits(packedMagic, 4)
	w.WriteBits(uint64(len(readings)), 4)
	prevCount, prevCenti, prevMbar, err := quantize(readings[0])
	if err != nil {
		return dst, err
	}
	w.WriteUvarint(uint64(prevCount))
	w.WriteVarint(prevCenti)
	w.WriteVarint(prevMbar)
	for _, rd := range readings[1:] {
		count, centi, mbar, err := quantize(rd)
		if err != nil {
			return dst, err
		}
		w.WriteVarint(count - prevCount)
		w.WriteVarint(centi - prevCenti)
		w.WriteVarint(mbar - prevMbar)
		prevCount, prevCenti, prevMbar = count, centi, mbar
	}
	return w.Finish(), nil
}

// AppendDecodedReadings decodes a FrameData payload in either format,
// appending the readings to dst (reuse dst's capacity for an
// allocation-free steady state). It reports whether the payload parsed.
// Packed payloads are recognized by the magic nibble; anything else
// falls back to the v1 8-byte single-reading layout.
func AppendDecodedReadings(dst []Reading, p []byte) ([]Reading, bool) {
	if len(p) > 0 && p[0]>>4 == packedMagic {
		if out, ok := appendUnpacked(dst, p); ok {
			return out, true
		}
	}
	rd, ok := DecodeReading(p)
	if !ok {
		return dst, false
	}
	return append(dst, rd), true
}

// DecodeReadings is the allocating convenience form of
// AppendDecodedReadings.
func DecodeReadings(p []byte) ([]Reading, bool) {
	return AppendDecodedReadings(nil, p)
}

// maxQuantized bounds the quantized values a decoder admits. Physical
// readings live in 16-bit ranges; admitting up to ±2³¹ keeps the codec
// general while guaranteeing float64(v)/100 still round-trips exactly
// through re-quantization.
const maxQuantized = math.MaxInt32

// appendUnpacked parses a packed payload, tolerating trailing padding.
func appendUnpacked(dst []Reading, p []byte) ([]Reading, bool) {
	r := bitio.NewReader(p)
	if v, err := r.ReadBits(4); err != nil || v != packedMagic {
		return dst, false
	}
	n, err := r.ReadBits(4)
	if err != nil || n == 0 {
		return dst, false
	}
	count, err := r.ReadUvarint()
	if err != nil || count > math.MaxUint32 {
		return dst, false
	}
	centi, err := r.ReadVarint()
	if err != nil {
		return dst, false
	}
	mbar, err := r.ReadVarint()
	if err != nil {
		return dst, false
	}
	base := len(dst)
	c, t, m := int64(count), centi, mbar
	for i := uint64(0); i < n; i++ {
		if i > 0 {
			dc, err := r.ReadVarint()
			if err != nil {
				return dst[:base], false
			}
			dt, err := r.ReadVarint()
			if err != nil {
				return dst[:base], false
			}
			dm, err := r.ReadVarint()
			if err != nil {
				return dst[:base], false
			}
			c, t, m = c+dc, t+dt, m+dm
		}
		if c < 0 || c > math.MaxUint32 || t < -maxQuantized || t > maxQuantized ||
			m < -maxQuantized || m > maxQuantized {
			return dst[:base], false
		}
		dst = append(dst, Reading{Count: uint32(c), TempC: float64(t) / 100, PressureMbar: float64(m)})
	}
	return dst, true
}

// PackedEnvSensor samples an EnvSensor in batches: every Read draws
// batch consecutive readings and returns them as one packed payload,
// zero-padded to the fixed PackedPayloadSize(batch) so the reader's
// demodulation window — which must be known before decoding — stays
// constant. One poll therefore delivers batch readings instead of one
// at a fixed per-frame overhead.
type PackedEnvSensor struct {
	env     *EnvSensor
	batch   int
	scratch []Reading
	buf     []byte
}

// NewPackedEnvSensor creates a packed sensor with the same statistics
// (and noise stream) as NewEnvSensor. batch must be in [1,
// MaxPackedBatch] so the padded payload fits a link frame.
func NewPackedEnvSensor(tempC, depthM float64, seed int64, batch int) (*PackedEnvSensor, error) {
	if batch < 1 || batch > MaxPackedBatch {
		return nil, fmt.Errorf("node: packed batch %d outside [1, %d]", batch, MaxPackedBatch)
	}
	return &PackedEnvSensor{
		env:     NewEnvSensor(tempC, depthM, seed),
		batch:   batch,
		scratch: make([]Reading, 0, batch),
		buf:     make([]byte, 0, PackedPayloadSize(batch)),
	}, nil
}

// Batch returns the readings carried per payload.
func (s *PackedEnvSensor) Batch() int { return s.batch }

// PayloadSize returns the fixed padded payload size Read produces.
func (s *PackedEnvSensor) PayloadSize() int { return PackedPayloadSize(s.batch) }

// Read samples the next batch readings and returns the padded packed
// payload. The returned slice is reused across calls; the link codec
// copies it into the marshalled frame before the next poll.
func (s *PackedEnvSensor) Read() []byte {
	s.scratch = s.scratch[:0]
	for i := 0; i < s.batch; i++ {
		s.scratch = append(s.scratch, s.env.sample())
	}
	p, err := AppendPacked(s.buf[:0], s.scratch)
	size := PackedPayloadSize(s.batch)
	if err != nil || len(p) > size {
		// Unreachable by construction: sample() quantizes onto 16-bit
		// grids whose worst-case deltas PackedPayloadSize accounts for.
		panic(fmt.Sprintf("node: packed encode broke its size bound (%d > %d): %v", len(p), size, err))
	}
	for len(p) < size {
		p = append(p, 0)
	}
	s.buf = p
	return p
}
