package node

import (
	"math"
	"testing"
	"testing/quick"

	"vab/internal/link"
	"vab/internal/phy"
)

func testNode(t *testing.T) *Node {
	t.Helper()
	n, err := New(Config{
		Addr:    7,
		Codec:   link.DefaultCodec(),
		PHY:     phy.DefaultParams(),
		Budget:  DefaultPowerBudget(),
		Harvest: DefaultHarvester(),
		Sensor:  NewEnvSensor(15, 3, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	return n
}

const rhoC = 1025.0 * 1480.0

func TestNewValidation(t *testing.T) {
	base := func() Config {
		return Config{
			Addr: 1, Codec: link.DefaultCodec(), PHY: phy.DefaultParams(),
			Budget: DefaultPowerBudget(), Harvest: DefaultHarvester(),
			Sensor: NewEnvSensor(10, 2, 1),
		}
	}
	c := base()
	c.Harvest = nil
	if _, err := New(c); err == nil {
		t.Error("nil harvester accepted")
	}
	c = base()
	c.Sensor = nil
	if _, err := New(c); err == nil {
		t.Error("nil sensor accepted")
	}
	c = base()
	c.PHY.ChipRate = 0
	if _, err := New(c); err == nil {
		t.Error("bad PHY accepted")
	}
	c = base()
	c.Harvest = &Harvester{}
	if _, err := New(c); err == nil {
		t.Error("invalid harvester accepted")
	}
}

func TestHarvesterValidate(t *testing.T) {
	bad := []func(*Harvester){
		func(h *Harvester) { h.ApertureM2 = 0 },
		func(h *Harvester) { h.Efficiency = 0 },
		func(h *Harvester) { h.Efficiency = 1.5 },
		func(h *Harvester) { h.CapacitanceF = -1 },
		func(h *Harvester) { h.TurnOnVoltage = 9 }, // above max
	}
	for i, mutate := range bad {
		h := DefaultHarvester()
		mutate(h)
		if h.Validate() == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestHarvesterChargeDischarge(t *testing.T) {
	h := DefaultHarvester()
	if h.Operational() {
		t.Error("fresh harvester should start empty")
	}
	// Charge at 1 mW for 10 s: E = 10 mJ → V = sqrt(2·0.01/1e-4) > 5 →
	// clamps at MaxVoltage.
	h.Step(1e-3, 0, 10)
	if math.Abs(h.Voltage()-h.MaxVoltage) > 1e-9 {
		t.Errorf("voltage %v, want clamp at %v", h.Voltage(), h.MaxVoltage)
	}
	if !h.Operational() {
		t.Error("charged harvester should be operational")
	}
	// Drain: 1.25 mJ stored at 5 V; drawing 1 mW for 1 s leaves 0.25 mJ.
	e0 := h.StoredEnergy()
	spent := h.Step(0, 1e-3, 1)
	if math.Abs(spent-1e-3) > 1e-12 {
		t.Errorf("spent %v, want 1e-3", spent)
	}
	if math.Abs(h.StoredEnergy()-(e0-1e-3)) > 1e-12 {
		t.Errorf("stored %v, want %v", h.StoredEnergy(), e0-1e-3)
	}
	// Overdraw collapses to zero, reporting only what was available.
	avail := h.StoredEnergy()
	spent = h.Step(0, 1, 1)
	if math.Abs(spent-avail) > 1e-12 {
		t.Errorf("overdraw spent %v, want %v", spent, avail)
	}
	if h.Voltage() != 0 {
		t.Error("collapsed rail should read 0")
	}
}

func TestHarvesterEnergyConservationProperty(t *testing.T) {
	f := func(inU, loadU uint16, dtU uint8) bool {
		h := DefaultHarvester()
		h.Step(5e-3, 0, 1) // precharge
		in := float64(inU) * 1e-8
		load := float64(loadU) * 1e-8
		dt := float64(dtU%100)/100 + 0.01
		before := h.StoredEnergy()
		spent := h.Step(in, load, dt)
		after := h.StoredEnergy()
		// after ≤ before + in·dt − spent (equality unless clamped).
		return after <= before+in*dt-spent+1e-12 && spent <= load*dt+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHarvestablePower(t *testing.T) {
	h := DefaultHarvester()
	// 31.6 Pa (≈150 dB re µPa): I = p²/ρc ≈ 0.66 mW/m²; ×0.02 m²×0.25 ≈ 3.3 µW.
	p := h.HarvestablePower(31.6, rhoC)
	if p < 2e-6 || p > 5e-6 {
		t.Errorf("harvestable power %v W implausible", p)
	}
	if h.HarvestablePower(0, rhoC) != 0 || h.HarvestablePower(1, 0) != 0 {
		t.Error("degenerate inputs should give 0")
	}
}

func TestNodeWakesAndResponds(t *testing.T) {
	n := testNode(t)
	if n.State() != StateSleep {
		t.Fatal("node should boot asleep")
	}
	// Strong carrier for long enough to charge: 100 Pa for 300 s.
	n.Harvest(100, rhoC, 300)
	if n.State() != StateListen {
		t.Fatalf("node should be listening, is %v (V=%v)", n.State(), n.cfg.Harvest.Voltage())
	}
	q := &link.Frame{Type: link.FrameQuery, Addr: 7}
	gamma, err := n.HandleQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	if gamma == nil {
		t.Fatal("addressed query should produce a response burst")
	}
	st := n.Stats()
	if st.FramesReturned != 1 || st.QueriesMine != 1 {
		t.Errorf("stats %+v", st)
	}
	// The burst length matches the codec chip count plus preamble.
	wantChips := n.cfg.Codec.ChipLength(PayloadSize)
	if len(gamma) != n.mod.BurstSamples(wantChips) {
		t.Errorf("gamma length %d, want %d", len(gamma), n.mod.BurstSamples(wantChips))
	}
}

func TestNodeIgnoresOtherAddresses(t *testing.T) {
	n := testNode(t)
	n.Harvest(100, rhoC, 300)
	gamma, err := n.HandleQuery(&link.Frame{Type: link.FrameQuery, Addr: 9})
	if err != nil || gamma != nil {
		t.Errorf("foreign query answered: %v %v", gamma, err)
	}
	gamma, err = n.HandleQuery(&link.Frame{Type: link.FrameCmd, Addr: 7})
	if err != nil || gamma != nil {
		t.Errorf("non-query answered: %v %v", gamma, err)
	}
	if _, err := n.HandleQuery(nil); err == nil {
		t.Error("nil frame accepted")
	}
}

func TestNodeAnswersBroadcast(t *testing.T) {
	n := testNode(t)
	n.Harvest(100, rhoC, 300)
	gamma, err := n.HandleQuery(&link.Frame{Type: link.FrameQuery, Addr: link.BroadcastAddr})
	if err != nil || gamma == nil {
		t.Errorf("broadcast unanswered: %v %v", gamma, err)
	}
}

func TestNodeBrownsOutWithoutEnergy(t *testing.T) {
	n := testNode(t)
	// No harvesting at all: node stays asleep and skips the response.
	gamma, err := n.HandleQuery(&link.Frame{Type: link.FrameQuery, Addr: 7})
	if err != nil {
		t.Fatal(err)
	}
	if gamma != nil {
		t.Error("dead node responded")
	}
	if n.Stats().BrownOuts != 1 {
		t.Errorf("brownouts = %d, want 1", n.Stats().BrownOuts)
	}
	if n.State() != StateSleep {
		t.Errorf("state %v, want sleep", n.State())
	}
}

func TestNodeSeqIncrements(t *testing.T) {
	n := testNode(t)
	n.Harvest(100, rhoC, 600)
	for i := 0; i < 3; i++ {
		n.Harvest(100, rhoC, 60)
		if g, err := n.HandleQuery(&link.Frame{Type: link.FrameQuery, Addr: 7}); err != nil || g == nil {
			t.Fatalf("round %d: %v", i, err)
		}
	}
	if n.seq != 3 {
		t.Errorf("seq = %d, want 3", n.seq)
	}
}

func TestPowerBudgetTotals(t *testing.T) {
	b := DefaultPowerBudget()
	if b.Total() <= 0 || b.Total() > 1e-3 {
		t.Errorf("total %v W should be µW-scale", b.Total())
	}
	if b.Backscatter <= b.Sleep {
		t.Error("active power should exceed sleep power")
	}
}

func TestStateString(t *testing.T) {
	names := map[State]string{
		StateSleep: "sleep", StateListen: "listen",
		StateDecode: "decode", StateBackscatter: "backscatter",
		State(99): "invalid",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("State(%d) = %q", s, s.String())
		}
	}
}

func TestEnvSensorRoundTrip(t *testing.T) {
	s := NewEnvSensor(15, 3, 42)
	for i := 0; i < 10; i++ {
		p := s.Read()
		if len(p) != PayloadSize {
			t.Fatalf("payload size %d", len(p))
		}
		r, ok := DecodeReading(p)
		if !ok {
			t.Fatal("decode failed")
		}
		if r.Count != uint32(i) {
			t.Errorf("count %d, want %d", r.Count, i)
		}
		if math.Abs(r.TempC-15) > 2 {
			t.Errorf("temp %v implausible", r.TempC)
		}
		// 3 m depth ≈ 1294 mbar.
		if math.Abs(r.PressureMbar-1294) > 30 {
			t.Errorf("pressure %v implausible", r.PressureMbar)
		}
	}
	if _, ok := DecodeReading([]byte{1, 2}); ok {
		t.Error("short payload decoded")
	}
}

func TestCommandPing(t *testing.T) {
	n := testNode(t)
	n.Harvest(100, rhoC, 300)
	gamma, err := n.HandleCommand(&link.Frame{Type: link.FrameCmd, Addr: 7, Payload: PingPayload()})
	if err != nil {
		t.Fatal(err)
	}
	if gamma == nil {
		t.Fatal("ping not acknowledged")
	}
	if n.Stats().CommandsApplied != 1 {
		t.Errorf("commands applied %d", n.Stats().CommandsApplied)
	}
}

func TestCommandSetInterval(t *testing.T) {
	n := testNode(t)
	n.Harvest(100, rhoC, 300)
	gamma, err := n.HandleCommand(&link.Frame{Type: link.FrameCmd, Addr: link.BroadcastAddr, Payload: SetIntervalPayload(120)})
	if err != nil || gamma == nil {
		t.Fatalf("set-interval failed: %v", err)
	}
	if n.ReportInterval() != 120 {
		t.Errorf("interval %v, want 120", n.ReportInterval())
	}
}

func TestCommandMuteSilencesQueries(t *testing.T) {
	n := testNode(t)
	n.Harvest(100, rhoC, 300)
	gamma, err := n.HandleCommand(&link.Frame{Type: link.FrameCmd, Addr: 7, Payload: MutePayload(60)})
	if err != nil {
		t.Fatal(err)
	}
	if gamma != nil {
		t.Error("mute must not be acknowledged (the point is silence)")
	}
	if !n.Muted() {
		t.Fatal("node not muted")
	}
	// Queries go unanswered while muted.
	g, err := n.HandleQuery(&link.Frame{Type: link.FrameQuery, Addr: 7})
	if err != nil || g != nil {
		t.Errorf("muted node answered: %v %v", g, err)
	}
	// Time passes (via harvesting), the mute expires.
	n.Harvest(100, rhoC, 61)
	if n.Muted() {
		t.Fatal("mute did not expire")
	}
	if g, _ := n.HandleQuery(&link.Frame{Type: link.FrameQuery, Addr: 7}); g == nil {
		t.Error("node silent after mute expiry")
	}
}

func TestCommandErrors(t *testing.T) {
	n := testNode(t)
	n.Harvest(100, rhoC, 300)
	if _, err := n.HandleCommand(&link.Frame{Type: link.FrameQuery, Addr: 7}); err == nil {
		t.Error("non-command accepted")
	}
	if _, err := n.HandleCommand(&link.Frame{Type: link.FrameCmd, Addr: 7}); err == nil {
		t.Error("empty payload accepted")
	}
	if _, err := n.HandleCommand(&link.Frame{Type: link.FrameCmd, Addr: 7, Payload: []byte{0x99}}); err == nil {
		t.Error("unknown opcode accepted")
	}
	if _, err := n.HandleCommand(&link.Frame{Type: link.FrameCmd, Addr: 7, Payload: []byte{CmdMute}}); err == nil {
		t.Error("missing argument accepted")
	}
	// Foreign address: silently ignored.
	if g, err := n.HandleCommand(&link.Frame{Type: link.FrameCmd, Addr: 9, Payload: PingPayload()}); g != nil || err != nil {
		t.Error("foreign command not ignored")
	}
	// Dead node: no response, no error.
	dead := testNode(t)
	if g, err := dead.HandleCommand(&link.Frame{Type: link.FrameCmd, Addr: 7, Payload: PingPayload()}); g != nil || err != nil {
		t.Error("dead node should ignore commands")
	}
}

func TestClockAdvancesWithHarvest(t *testing.T) {
	n := testNode(t)
	if n.Clock() != 0 {
		t.Fatal("clock should start at zero")
	}
	n.Harvest(10, rhoC, 25)
	if n.Clock() != 25 {
		t.Errorf("clock %v, want 25", n.Clock())
	}
}

func TestReportIntervalRateLimitsResponses(t *testing.T) {
	n := testNode(t)
	n.Harvest(100, rhoC, 600)
	if _, err := n.HandleCommand(&link.Frame{Type: link.FrameCmd, Addr: 7, Payload: SetIntervalPayload(120)}); err != nil {
		t.Fatal(err)
	}
	q := &link.Frame{Type: link.FrameQuery, Addr: 7}
	// First data response goes out.
	if g, err := n.HandleQuery(q); err != nil || g == nil {
		t.Fatalf("first poll failed: %v", err)
	}
	// 30 s later: declined.
	n.Harvest(100, rhoC, 30)
	if g, _ := n.HandleQuery(q); g != nil {
		t.Fatal("poll inside the interval should be declined")
	}
	// Past the interval: answered again.
	n.Harvest(100, rhoC, 120)
	if g, _ := n.HandleQuery(q); g == nil {
		t.Fatal("poll after the interval should be answered")
	}
}
