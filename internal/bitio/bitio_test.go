package bitio

import (
	"errors"
	"math/rand"
	"testing"
)

// mask returns a value with the lowest w bits set.
func mask(w uint) uint64 {
	if w == 0 {
		return 0
	}
	if w >= 64 {
		return ^uint64(0)
	}
	return (1 << w) - 1
}

// TestRoundTripFixedWidths writes a hand-picked (value, width) sequence
// that stresses byte-boundary crossings and reads it back exactly.
func TestRoundTripFixedWidths(t *testing.T) {
	type pair struct {
		w uint
		v uint64
	}
	seq := []pair{
		{1, 1}, {2, 2}, {3, 5}, {5, 0x1F}, {7, 0x55}, {8, 0xA5},
		{9, 0x1AB}, {13, 0x1234}, {16, 0xBEEF}, {24, 0xC0FFEE},
		{33, 0x1_0000_0001}, {64, 0xDEADBEEF_FEEDFACE},
	}
	var w Writer
	total := 0
	for _, p := range seq {
		w.WriteBits(p.v, p.w)
		total += int(p.w)
	}
	if w.BitLen() != total {
		t.Fatalf("BitLen = %d, want %d", w.BitLen(), total)
	}
	buf := w.Finish()
	if want := (total + 7) / 8; len(buf) != want {
		t.Fatalf("buffer length %d, want %d (total bits %d)", len(buf), want, total)
	}
	r := NewReader(buf)
	for i, p := range seq {
		got, err := r.ReadBits(p.w)
		if err != nil {
			t.Fatalf("ReadBits failed at step %d: %v", i, err)
		}
		if want := p.v & mask(p.w); got != want {
			t.Fatalf("step %d: got 0x%X want 0x%X (width %d)", i, got, want, p.w)
		}
	}
}

// TestRoundTripRandomWidths is the property test the packed codecs lean
// on: any sequence of (value, width) pairs reads back bit-exactly.
func TestRoundTripRandomWidths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(64)
		widths := make([]uint, n)
		values := make([]uint64, n)
		var w Writer
		for i := range widths {
			widths[i] = uint(1 + rng.Intn(64))
			values[i] = rng.Uint64() & mask(widths[i])
			w.WriteBits(values[i], widths[i])
		}
		r := NewReader(w.Finish())
		for i := range widths {
			got, err := r.ReadBits(widths[i])
			if err != nil {
				t.Fatalf("trial %d step %d: %v", trial, i, err)
			}
			if got != values[i] {
				t.Fatalf("trial %d step %d: got 0x%X want 0x%X (width %d)",
					trial, i, got, values[i], widths[i])
			}
		}
		if rem := r.Remaining(); rem >= 8 {
			t.Fatalf("trial %d: %d bits of padding left, want < 8", trial, rem)
		}
	}
}

// TestFlushBehavior pins Finish: a partial byte flushes exactly once
// (top-aligned), and byte-aligned streams gain no extra byte.
func TestFlushBehavior(t *testing.T) {
	var w1 Writer
	w1.WriteBits(0x1FFF, 13)
	buf1 := w1.Finish()
	if len(buf1) != 2 {
		t.Fatalf("13 bits: got %d bytes, want 2", len(buf1))
	}
	// 13 ones then 3 zero pad bits: 0xFF 0xF8.
	if buf1[0] != 0xFF || buf1[1] != 0xF8 {
		t.Fatalf("13-bit flush = %x, want fff8", buf1)
	}
	var w2 Writer
	w2.WriteBits(0xABCD, 16)
	buf2 := w2.Finish()
	if len(buf2) != 2 || buf2[0] != 0xAB || buf2[1] != 0xCD {
		t.Fatalf("16-bit flush = %x, want abcd", buf2)
	}
}

// TestVarintRoundTrip covers the unsigned and zigzag forms across group
// boundaries and the extremes of both ranges.
func TestVarintRoundTrip(t *testing.T) {
	uvals := []uint64{0, 1, 127, 128, 129, 16383, 16384, 1<<32 - 1, 1 << 62, ^uint64(0)}
	svals := []int64{0, 1, -1, 63, -64, 64, -65, 1<<31 - 1, -(1 << 31), 1<<62 - 1, -(1 << 62)}
	var w Writer
	for _, v := range uvals {
		w.WriteUvarint(v)
	}
	for _, v := range svals {
		w.WriteVarint(v)
	}
	r := NewReader(w.Finish())
	for i, want := range uvals {
		got, err := r.ReadUvarint()
		if err != nil || got != want {
			t.Fatalf("uvarint %d: got %d err %v, want %d", i, got, err, want)
		}
	}
	for i, want := range svals {
		got, err := r.ReadVarint()
		if err != nil || got != want {
			t.Fatalf("varint %d: got %d err %v, want %d", i, got, err, want)
		}
	}
}

// TestZigZag pins the mapping the wire formats document.
func TestZigZag(t *testing.T) {
	cases := []struct {
		s int64
		u uint64
	}{{0, 0}, {-1, 1}, {1, 2}, {-2, 3}, {2, 4}, {1<<63 - 1, ^uint64(0) - 1}, {-1 << 63, ^uint64(0)}}
	for _, c := range cases {
		if got := ZigZag(c.s); got != c.u {
			t.Errorf("ZigZag(%d) = %d, want %d", c.s, got, c.u)
		}
		if got := UnZigZag(c.u); got != c.s {
			t.Errorf("UnZigZag(%d) = %d, want %d", c.u, got, c.s)
		}
	}
}

// TestReaderErrors exercises the truncation and overflow paths.
func TestReaderErrors(t *testing.T) {
	r := NewReader([]byte{0xFF})
	if _, err := r.ReadBits(9); !errors.Is(err, ErrOutOfBits) {
		t.Fatalf("ReadBits past end: err = %v, want ErrOutOfBits", err)
	}
	// A varint that never terminates: 10 continuation groups of garbage.
	var w Writer
	for i := 0; i < 10; i++ {
		w.WriteBits(0xFF, 8)
	}
	r = NewReader(w.Finish())
	if _, err := r.ReadUvarint(); !errors.Is(err, ErrVarintOverflow) {
		t.Fatalf("overlong varint: err = %v, want ErrVarintOverflow", err)
	}
	// Truncated varint: one continuation group then end of buffer.
	r = NewReader([]byte{0x80})
	if _, err := r.ReadUvarint(); !errors.Is(err, ErrOutOfBits) {
		t.Fatalf("truncated varint: err = %v, want ErrOutOfBits", err)
	}
}

// TestWriterReuseAllocs pins the allocation-free append contract: a
// Writer Reset onto a buffer with capacity, and a Reader reset in place,
// run a full encode/decode cycle without allocating.
func TestWriterReuseAllocs(t *testing.T) {
	buf := make([]byte, 0, 64)
	var w Writer
	var r Reader
	allocs := testing.AllocsPerRun(100, func() {
		w.Reset(buf[:0])
		for i := uint64(0); i < 16; i++ {
			w.WriteBits(i, 5)
			w.WriteVarint(int64(i) - 8)
		}
		out := w.Finish()
		r.Reset(out)
		for i := uint64(0); i < 16; i++ {
			if v, err := r.ReadBits(5); err != nil || v != i {
				t.Fatalf("bits: %d %v", v, err)
			}
			if v, err := r.ReadVarint(); err != nil || v != int64(i)-8 {
				t.Fatalf("varint: %d %v", v, err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("encode/decode cycle allocated %.1f times, want 0", allocs)
	}
}
