package bitio

import "testing"

// FuzzBitReader drives the Reader with arbitrary bytes and a schedule of
// reads derived from the input: it must never panic, never hand back
// more bits than the buffer holds, and varint reads must either fail
// cleanly or re-encode to a stream the reader accepts at the same
// cursor advance.
func FuzzBitReader(f *testing.F) {
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{0xFF, 0x00, 0xAB}, uint8(13))
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80}, uint8(0))
	var seed Writer
	seed.WriteUvarint(1 << 40)
	seed.WriteVarint(-12345)
	f.Add(seed.Finish(), uint8(0))
	f.Fuzz(func(t *testing.T, data []byte, widthSeed uint8) {
		r := NewReader(data)
		// Alternate fixed-width and varint reads until the stream drains.
		width := uint(widthSeed%64) + 1
		for r.Remaining() > 0 {
			before := r.Remaining()
			v, err := r.ReadBits(width)
			if err != nil {
				if before >= int(width) {
					t.Fatalf("ReadBits(%d) failed with %d bits left: %v", width, before, err)
				}
				break
			}
			if v&^((1<<width)-1) != 0 && width < 64 {
				t.Fatalf("ReadBits(%d) returned out-of-range value 0x%X", width, v)
			}
			u, err := r.ReadUvarint()
			if err != nil {
				break
			}
			// The decoder may accept padded (non-canonical) groups, but
			// never fewer than the canonical re-encoding needs, and never
			// more than the 10-group cap.
			var w Writer
			w.WriteUvarint(u)
			canonical := len(w.Finish()) * 8
			consumed := before - int(width) - r.Remaining()
			if consumed < canonical || consumed > 80 {
				t.Fatalf("varint %d consumed %d bits, canonical %d", u, consumed, canonical)
			}
		}
	})
}
