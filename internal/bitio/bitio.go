// Package bitio provides MSB-first bit-level encoding over byte slices:
// the foundation of the repo's compact wire formats. At backscatter
// uplink rates of tens of bits per second, every framing bit is
// throughput lost, so payload codecs (node packed readings, gateway
// reading batches) count bits, not bytes.
//
// Writer appends into a caller-supplied buffer and Reader parses in
// place, so steady-state encode/decode paths allocate nothing. Varints
// use LEB128 7-bit groups embedded in the bitstream; signed values are
// zigzag-mapped first so small magnitudes of either sign stay in one
// group.
package bitio

import "errors"

// ErrOutOfBits is returned by Reader when a read runs past the buffer.
var ErrOutOfBits = errors.New("bitio: read past end of buffer")

// ErrVarintOverflow is returned when a varint does not terminate within
// the 10 groups a uint64 can need.
var ErrVarintOverflow = errors.New("bitio: varint overflows 64 bits")

// maxVarintGroups bounds a uint64 LEB128 encoding: ⌈64/7⌉ groups.
const maxVarintGroups = 10

// ZigZag maps a signed value onto the unsigned line so small magnitudes
// of either sign encode to small varints: 0→0, −1→1, 1→2, −2→3, …
func ZigZag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// UnZigZag inverts ZigZag.
func UnZigZag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// Writer packs bits MSB-first into a byte slice. The zero value writes
// into a fresh buffer; Reset(dst) makes it append into caller storage
// for allocation-free reuse. Call Finish to flush the trailing partial
// byte and obtain the encoded bytes.
type Writer struct {
	buf  []byte
	cur  byte // partial byte being filled, bits at the bottom
	ncur uint // bits currently in cur (0..7)
	bits int  // total bits written since Reset
}

// Reset discards any pending state and directs subsequent writes into
// dst's storage (appending from len(dst)). Passing a slice with spare
// capacity makes the whole encode allocation-free.
func (w *Writer) Reset(dst []byte) {
	w.buf = dst
	w.cur = 0
	w.ncur = 0
	w.bits = 0
}

// WriteBits appends the low n bits of v, most significant first.
// n must be in [0, 64]; higher bits of v are ignored.
func (w *Writer) WriteBits(v uint64, n uint) {
	if n == 0 {
		return
	}
	if n < 64 {
		v &= (1 << n) - 1
	}
	w.bits += int(n)
	for n > 0 {
		free := 8 - w.ncur
		take := n
		if take > free {
			take = free
		}
		// Peel the top `take` bits of the remaining n-bit value.
		w.cur = w.cur<<take | byte(v>>(n-take))&byte((1<<take)-1)
		w.ncur += take
		n -= take
		if w.ncur == 8 {
			w.buf = append(w.buf, w.cur)
			w.cur, w.ncur = 0, 0
		}
	}
}

// WriteUvarint appends v as LEB128: 7-bit groups, low group first, high
// bit of each byte-group marking continuation.
func (w *Writer) WriteUvarint(v uint64) {
	for v >= 0x80 {
		w.WriteBits(v&0x7F|0x80, 8)
		v >>= 7
	}
	w.WriteBits(v, 8)
}

// WriteVarint appends v zigzag-mapped as an unsigned varint.
func (w *Writer) WriteVarint(v int64) { w.WriteUvarint(ZigZag(v)) }

// BitLen returns the number of bits written since Reset.
func (w *Writer) BitLen() int { return w.bits }

// Len returns the encoded length in whole bytes, counting the pending
// partial byte Finish would flush.
func (w *Writer) Len() int { return len(w.buf) + int((w.ncur+7)/8) }

// Finish flushes the trailing partial byte (zero-padded at the bottom)
// and returns the encoded bytes. The Writer must be Reset before reuse.
func (w *Writer) Finish() []byte {
	if w.ncur > 0 {
		w.buf = append(w.buf, w.cur<<(8-w.ncur))
		w.cur, w.ncur = 0, 0
	}
	return w.buf
}

// Reader consumes an MSB-first bitstream from a byte slice in place.
type Reader struct {
	buf []byte
	pos int // bit cursor
}

// NewReader returns a Reader over buf. The Reader does not copy buf;
// callers may also Reset an existing Reader to avoid the value copy.
func NewReader(buf []byte) Reader { return Reader{buf: buf} }

// Reset re-points the reader at buf with the cursor at bit 0.
func (r *Reader) Reset(buf []byte) {
	r.buf = buf
	r.pos = 0
}

// Remaining returns the number of unread bits.
func (r *Reader) Remaining() int { return len(r.buf)*8 - r.pos }

// ReadBits consumes the next n bits (MSB-first) and returns them in the
// low bits of the result. n must be in [0, 64].
func (r *Reader) ReadBits(n uint) (uint64, error) {
	if int(n) > r.Remaining() {
		return 0, ErrOutOfBits
	}
	var v uint64
	for n > 0 {
		byteIdx := r.pos >> 3
		bitOff := uint(r.pos & 7)
		avail := 8 - bitOff
		take := n
		if take > avail {
			take = avail
		}
		chunk := uint64(r.buf[byteIdx]>>(avail-take)) & ((1 << take) - 1)
		v = v<<take | chunk
		r.pos += int(take)
		n -= take
	}
	return v, nil
}

// ReadUvarint consumes an LEB128 varint written by WriteUvarint.
func (r *Reader) ReadUvarint() (uint64, error) {
	var v uint64
	var shift uint
	for group := 0; group < maxVarintGroups; group++ {
		b, err := r.ReadBits(8)
		if err != nil {
			return 0, err
		}
		if group == maxVarintGroups-1 && b > 1 {
			// The 10th group carries the top bit of a uint64 at most.
			return 0, ErrVarintOverflow
		}
		v |= (b & 0x7F) << shift
		if b < 0x80 {
			return v, nil
		}
		shift += 7
	}
	return 0, ErrVarintOverflow
}

// ReadVarint consumes a zigzag varint written by WriteVarint.
func (r *Reader) ReadVarint() (int64, error) {
	u, err := r.ReadUvarint()
	if err != nil {
		return 0, err
	}
	return UnZigZag(u), nil
}
