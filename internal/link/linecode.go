package link

import "fmt"

// LineCode is a bit-to-chip transformation applied before modulation.
// Backscatter links favour codes with no DC content: at the reader, energy
// near the carrier is buried under self-interference, so balanced codes
// (Manchester, FM0) keep the data away from the leakage the canceller
// can't fully remove.
type LineCode int

// Supported line codes.
const (
	// NRZ maps each bit to one chip unchanged (no protection, baseline).
	NRZ LineCode = iota
	// Manchester maps 0→01 and 1→10: guaranteed transition density, 2×
	// chip rate.
	Manchester
	// FM0 inverts phase at every bit boundary and adds a mid-bit
	// transition for 0: the classic backscatter code (EPC Gen2 uses it),
	// decodable with a single flip-flop at the node.
	FM0
)

// String returns the code's conventional name.
func (c LineCode) String() string {
	switch c {
	case NRZ:
		return "nrz"
	case Manchester:
		return "manchester"
	case FM0:
		return "fm0"
	default:
		return "unknown"
	}
}

// ChipsPerBit returns the chip expansion factor of the code.
func (c LineCode) ChipsPerBit() int {
	if c == NRZ {
		return 1
	}
	return 2
}

// Encode transforms bits into chips (values 0/1).
func (c LineCode) Encode(bits []byte) ([]byte, error) {
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("link: bit %d has non-binary value %d", i, b)
		}
	}
	switch c {
	case NRZ:
		out := make([]byte, len(bits))
		copy(out, bits)
		return out, nil
	case Manchester:
		out := make([]byte, 0, len(bits)*2)
		for _, b := range bits {
			if b == 0 {
				out = append(out, 0, 1)
			} else {
				out = append(out, 1, 0)
			}
		}
		return out, nil
	case FM0:
		out := make([]byte, 0, len(bits)*2)
		level := byte(1)
		for _, b := range bits {
			level ^= 1 // invert at every bit boundary
			first := level
			second := level
			if b == 0 {
				second = level ^ 1 // mid-bit transition for 0
				level = second
			}
			out = append(out, first, second)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("link: unknown line code %d", c)
	}
}

// Decode inverts Encode. Chip slices must have even length for the 2× codes.
// Single chip errors map to single bit errors (never abort), so FEC above
// this layer gets its chance to correct them.
func (c LineCode) Decode(chips []byte) ([]byte, error) {
	for i, b := range chips {
		if b > 1 {
			return nil, fmt.Errorf("link: chip %d has non-binary value %d", i, b)
		}
	}
	switch c {
	case NRZ:
		out := make([]byte, len(chips))
		copy(out, chips)
		return out, nil
	case Manchester:
		if len(chips)%2 != 0 {
			return nil, fmt.Errorf("link: manchester needs even chips, got %d", len(chips))
		}
		out := make([]byte, 0, len(chips)/2)
		for i := 0; i < len(chips); i += 2 {
			// Valid pairs are 01→0 and 10→1; a coding violation (00/11,
			// caused by a chip error) resolves deterministically to the
			// first chip so downstream FEC can correct it.
			out = append(out, chips[i])
		}
		return out, nil
	case FM0:
		if len(chips)%2 != 0 {
			return nil, fmt.Errorf("link: fm0 needs even chips, got %d", len(chips))
		}
		out := make([]byte, 0, len(chips)/2)
		for i := 0; i < len(chips); i += 2 {
			if chips[i] == chips[i+1] {
				out = append(out, 1) // no mid-bit transition
			} else {
				out = append(out, 0)
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("link: unknown line code %d", c)
	}
}
