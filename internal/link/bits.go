// Package link implements VAB's link layer: bit/byte packing, CRC error
// detection, Hamming(7,4) forward error correction with interleaving, line
// coding, and the frame format carried over the backscatter uplink and the
// reader downlink.
//
// Everything operates on explicit bit slices ([]byte with one bit per
// element, values 0 or 1) between the byte-oriented framing above and the
// symbol-oriented PHY below: at the backscatter node this code has to run in
// a few microwatts, so the formats are deliberately simple and all encoders
// and decoders are table-free, constant-space streaming transforms.
package link

import "fmt"

// BytesToBits unpacks bytes MSB-first into a bit slice (one bit per byte,
// values 0/1).
func BytesToBits(data []byte) []byte {
	bits := make([]byte, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			bits = append(bits, (b>>uint(i))&1)
		}
	}
	return bits
}

// BitsToBytes packs bits MSB-first into bytes. The bit count must be a
// multiple of 8.
func BitsToBytes(bits []byte) ([]byte, error) {
	if len(bits)%8 != 0 {
		return nil, fmt.Errorf("link: bit count %d not a multiple of 8", len(bits))
	}
	out := make([]byte, len(bits)/8)
	for i, b := range bits {
		if b > 1 {
			return nil, fmt.Errorf("link: bit %d has non-binary value %d", i, b)
		}
		out[i/8] |= b << uint(7-i%8)
	}
	return out, nil
}

// HammingDistance returns the number of differing positions between two
// equal-length bit slices.
func HammingDistance(a, b []byte) (int, error) {
	if len(a) != len(b) {
		return 0, fmt.Errorf("link: length mismatch %d vs %d", len(a), len(b))
	}
	var d int
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d, nil
}
