package link

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitsRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 1024 {
			data = data[:1024]
		}
		bits := BytesToBits(data)
		if len(bits) != len(data)*8 {
			return false
		}
		back, err := BitsToBytes(bits)
		return err == nil && bytes.Equal(back, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitsToBytesErrors(t *testing.T) {
	if _, err := BitsToBytes(make([]byte, 7)); err == nil {
		t.Error("non-multiple-of-8 accepted")
	}
	if _, err := BitsToBytes([]byte{0, 1, 2, 0, 0, 0, 0, 0}); err == nil {
		t.Error("non-binary bit accepted")
	}
}

func TestBytesToBitsMSBFirst(t *testing.T) {
	bits := BytesToBits([]byte{0x80, 0x01})
	want := []byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1}
	if !bytes.Equal(bits, want) {
		t.Errorf("got %v", bits)
	}
}

func TestHammingDistanceBasics(t *testing.T) {
	d, err := HammingDistance([]byte{1, 0, 1}, []byte{1, 1, 1})
	if err != nil || d != 1 {
		t.Errorf("d=%d err=%v", d, err)
	}
	if _, err := HammingDistance([]byte{1}, []byte{1, 0}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestCRC8KnownValue(t *testing.T) {
	// CRC-8/ATM ("123456789") = 0xF4.
	if got := CRC8([]byte("123456789")); got != 0xF4 {
		t.Errorf("CRC8 check value = 0x%02X, want 0xF4", got)
	}
	if CRC8(nil) != 0 {
		t.Error("CRC8 of empty should be 0")
	}
}

func TestCRC16KnownValue(t *testing.T) {
	// CRC-16/CCITT-FALSE ("123456789") = 0x29B1.
	if got := CRC16([]byte("123456789")); got != 0x29B1 {
		t.Errorf("CRC16 check value = 0x%04X, want 0x29B1", got)
	}
}

func TestCRCDetectsSingleBitErrorsProperty(t *testing.T) {
	f := func(data []byte, pos uint16) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 256 {
			data = data[:256]
		}
		orig := CRC16(data)
		mut := append([]byte(nil), data...)
		bit := int(pos) % (len(mut) * 8)
		mut[bit/8] ^= 1 << uint(bit%8)
		return CRC16(mut) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestHammingRoundTripProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) > 64 {
			data = data[:64]
		}
		bits := BytesToBits(data)
		code, err := HammingEncode(bits)
		if err != nil {
			return false
		}
		got, n, err := HammingDecode(code)
		return err == nil && n == 0 && bytes.Equal(got, bits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingCorrectsAnySingleError(t *testing.T) {
	bits := BytesToBits([]byte{0xA5, 0x3C})
	code, err := HammingEncode(bits)
	if err != nil {
		t.Fatal(err)
	}
	for pos := range code {
		corrupted := append([]byte(nil), code...)
		corrupted[pos] ^= 1
		got, n, err := HammingDecode(corrupted)
		if err != nil {
			t.Fatalf("pos %d: %v", pos, err)
		}
		if n != 1 {
			t.Errorf("pos %d: corrected %d, want 1", pos, n)
		}
		if !bytes.Equal(got, bits) {
			t.Errorf("pos %d: data corrupted", pos)
		}
	}
}

func TestHammingOneErrorPerCodewordAcrossBlock(t *testing.T) {
	// One error in each 7-bit codeword of a longer message: all corrected.
	bits := BytesToBits([]byte{1, 2, 3, 4, 5, 6, 7})
	code, _ := HammingEncode(bits)
	rng := rand.New(rand.NewSource(4))
	for w := 0; w+7 <= len(code); w += 7 {
		code[w+rng.Intn(7)] ^= 1
	}
	got, n, err := HammingDecode(code)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(code)/7 {
		t.Errorf("corrected %d, want %d", n, len(code)/7)
	}
	if !bytes.Equal(got, bits) {
		t.Error("block not recovered")
	}
}

func TestHammingSizeErrors(t *testing.T) {
	if _, err := HammingEncode(make([]byte, 5)); err == nil {
		t.Error("non-multiple-of-4 accepted")
	}
	if _, _, err := HammingDecode(make([]byte, 8)); err == nil {
		t.Error("non-multiple-of-7 accepted")
	}
}

func TestInterleaveRoundTripProperty(t *testing.T) {
	f := func(data []byte, d uint8) bool {
		depth := int(d)%8 + 1
		n := len(data) / depth * depth
		bits := data[:n]
		il, err := Interleave(bits, depth)
		if err != nil {
			return false
		}
		back, err := Deinterleave(il, depth)
		return err == nil && bytes.Equal(back, bits)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterleaveSpreadsBursts(t *testing.T) {
	// A burst of `depth` consecutive chip errors must land in distinct
	// deinterleaved codewords.
	depth := 7
	n := 7 * 8
	bits := make([]byte, n)
	il, _ := Interleave(bits, depth)
	// Corrupt a burst in the interleaved (channel) domain.
	for i := 21; i < 21+depth; i++ {
		il[i] ^= 1
	}
	back, _ := Deinterleave(il, depth)
	// Count errors per 7-bit codeword.
	for w := 0; w+7 <= n; w += 7 {
		errs := 0
		for i := w; i < w+7; i++ {
			if back[i] != 0 {
				errs++
			}
		}
		if errs > 1 {
			t.Fatalf("codeword at %d has %d errors; burst not spread", w, errs)
		}
	}
}

func TestInterleaveErrors(t *testing.T) {
	if _, err := Interleave(make([]byte, 10), 3); err == nil {
		t.Error("non-divisible length accepted")
	}
	if _, err := Interleave(make([]byte, 10), 0); err == nil {
		t.Error("zero depth accepted")
	}
	if _, err := Deinterleave(make([]byte, 10), 3); err == nil {
		t.Error("deinterleave non-divisible accepted")
	}
	if _, err := Deinterleave(make([]byte, 10), 0); err == nil {
		t.Error("deinterleave zero depth accepted")
	}
}

func TestLineCodeRoundTripProperty(t *testing.T) {
	for _, code := range []LineCode{NRZ, Manchester, FM0} {
		code := code
		f := func(data []byte) bool {
			bits := BytesToBits(data)
			chips, err := code.Encode(bits)
			if err != nil {
				return false
			}
			if len(chips) != len(bits)*code.ChipsPerBit() {
				return false
			}
			back, err := code.Decode(chips)
			return err == nil && bytes.Equal(back, bits)
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
			t.Errorf("%v: %v", code, err)
		}
	}
}

func TestManchesterBalanced(t *testing.T) {
	// Equal number of 0 and 1 chips regardless of data: no DC content.
	bits := BytesToBits([]byte{0x00, 0xFF, 0xAA})
	chips, _ := Manchester.Encode(bits)
	var ones int
	for _, c := range chips {
		ones += int(c)
	}
	if ones*2 != len(chips) {
		t.Errorf("%d ones out of %d chips; Manchester must be balanced", ones, len(chips))
	}
}

func TestFM0TransitionAtEveryBoundary(t *testing.T) {
	bits := []byte{1, 1, 0, 1, 0, 0, 1, 0}
	chips, _ := FM0.Encode(bits)
	// FM0 guarantees a level change across every bit boundary.
	for i := 2; i < len(chips); i += 2 {
		if chips[i] == chips[i-1] {
			t.Fatalf("no transition at boundary %d", i/2)
		}
	}
}

func TestLineCodeChipErrorsDontAbort(t *testing.T) {
	bits := BytesToBits([]byte{0x5A})
	for _, code := range []LineCode{Manchester, FM0} {
		chips, _ := code.Encode(bits)
		chips[3] ^= 1
		if _, err := code.Decode(chips); err != nil {
			t.Errorf("%v: chip error aborted decode: %v", code, err)
		}
	}
}

func TestLineCodeErrors(t *testing.T) {
	if _, err := Manchester.Decode(make([]byte, 3)); err == nil {
		t.Error("odd manchester chips accepted")
	}
	if _, err := FM0.Decode(make([]byte, 5)); err == nil {
		t.Error("odd fm0 chips accepted")
	}
	if _, err := NRZ.Encode([]byte{2}); err == nil {
		t.Error("non-binary bit accepted")
	}
	if _, err := NRZ.Decode([]byte{9}); err == nil {
		t.Error("non-binary chip accepted")
	}
	if LineCode(99).String() != "unknown" {
		t.Error("unknown name")
	}
	if _, err := LineCode(99).Encode([]byte{1}); err == nil {
		t.Error("unknown code encode accepted")
	}
	if _, err := LineCode(99).Decode([]byte{1}); err == nil {
		t.Error("unknown code decode accepted")
	}
}

func TestFrameMarshalUnmarshalRoundTrip(t *testing.T) {
	f := &Frame{Type: FrameData, Addr: 7, Seq: 42, Payload: []byte("hello ocean")}
	wire, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if len(wire) != f.WireSize() {
		t.Errorf("wire size %d, want %d", len(wire), f.WireSize())
	}
	got, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != f.Type || got.Addr != f.Addr || got.Seq != f.Seq || !bytes.Equal(got.Payload, f.Payload) {
		t.Errorf("round trip mismatch: %+v", got)
	}
}

func TestFrameRoundTripProperty(t *testing.T) {
	f := func(addr, seq byte, payload []byte) bool {
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		fr := &Frame{Type: FrameData, Addr: addr, Seq: seq, Payload: payload}
		wire, err := fr.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(wire)
		return err == nil && got.Addr == addr && got.Seq == seq && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFrameErrors(t *testing.T) {
	big := &Frame{Type: FrameData, Payload: make([]byte, MaxPayload+1)}
	if _, err := big.Marshal(); err != ErrPayloadSize {
		t.Errorf("oversize payload: %v", err)
	}
	badType := &Frame{Type: 0x99}
	if _, err := badType.Marshal(); err != ErrBadType {
		t.Errorf("bad type: %v", err)
	}
	if _, err := Unmarshal([]byte{1, 2, 3}); err != ErrFrameTooShort {
		t.Error("short frame accepted")
	}
	good, _ := (&Frame{Type: FrameAck, Addr: 1}).Marshal()
	bad := append([]byte(nil), good...)
	bad[2] ^= 0x10
	if _, err := Unmarshal(bad); err != ErrBadCRC {
		t.Errorf("corrupted frame: %v", err)
	}
	// Inconsistent length field (with fixed-up CRC).
	f := &Frame{Type: FrameData, Payload: []byte{1, 2, 3}}
	wire, _ := f.Marshal()
	wire[3] = 2 // claim 2 bytes
	body := wire[:len(wire)-2]
	crc := CRC16(body)
	wire[len(wire)-2] = byte(crc >> 8)
	wire[len(wire)-1] = byte(crc)
	if _, err := Unmarshal(wire); err != ErrBadLength {
		t.Errorf("bad length: %v", err)
	}
	if FrameType(0x77).String() == "" {
		t.Error("unknown type needs a name")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	codecs := []Codec{
		{Code: NRZ},
		{Code: Manchester},
		{Code: FM0},
		{Code: FM0, FEC: true},
		DefaultCodec(),
	}
	f := &Frame{Type: FrameData, Addr: 3, Seq: 9, Payload: []byte{0xDE, 0xAD, 0xBE, 0xEF}}
	for _, c := range codecs {
		chips, err := c.EncodeFrame(f)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if len(chips) != c.ChipLength(len(f.Payload)) {
			t.Errorf("%+v: chip length %d, want %d", c, len(chips), c.ChipLength(len(f.Payload)))
		}
		got, stats, err := c.DecodeFrame(chips)
		if err != nil {
			t.Fatalf("%+v: %v", c, err)
		}
		if stats.CorrectedBits != 0 {
			t.Errorf("%+v: clean channel corrected %d bits", c, stats.CorrectedBits)
		}
		if got.Seq != f.Seq || !bytes.Equal(got.Payload, f.Payload) {
			t.Errorf("%+v: frame mismatch", c)
		}
	}
}

func TestCodecCorrectsScatteredChipErrors(t *testing.T) {
	c := DefaultCodec()
	f := &Frame{Type: FrameData, Addr: 1, Seq: 5, Payload: []byte("sensors")}
	chips, err := c.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	// With FM0, flipping chip 2i+1 (second half of a bit) toggles exactly
	// that bit after decoding. Space the errors 29 bits apart: 29 is not a
	// multiple of the interleave depth, so every error deinterleaves into a
	// different Hamming codeword.
	for b := 0; 2*b+1 < len(chips); b += 29 {
		chips[2*b+1] ^= 1
	}
	got, stats, err := c.DecodeFrame(chips)
	if err != nil {
		t.Fatalf("decode failed: %v (corrected %d)", err, stats.CorrectedBits)
	}
	if stats.CorrectedBits == 0 {
		t.Error("expected corrections")
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Error("payload corrupted despite FEC")
	}
}

func TestCodecCorrectsBurst(t *testing.T) {
	// A 7-chip burst (one full interleaver column...) — with depth 7, a
	// burst of 7 consecutive *bits* spreads into 7 distinct codewords.
	// Working in the bit domain: corrupt 4 consecutive bits via their
	// second FM0 chips.
	c := Codec{Code: FM0, FEC: true, InterleaveDepth: 7}
	f := &Frame{Type: FrameData, Addr: 2, Seq: 1, Payload: []byte{1, 2, 3, 4, 5, 6, 7, 8}}
	chips, err := c.EncodeFrame(f)
	if err != nil {
		t.Fatal(err)
	}
	start := 40 // arbitrary bit offset
	for b := start; b < start+4; b++ {
		chips[2*b+1] ^= 1
	}
	got, stats, err := c.DecodeFrame(chips)
	if err != nil {
		t.Fatalf("burst not recovered: %v", err)
	}
	if stats.CorrectedBits < 4 {
		t.Errorf("corrected %d bits, want >= 4", stats.CorrectedBits)
	}
	if !bytes.Equal(got.Payload, f.Payload) {
		t.Error("payload corrupted")
	}
}

func TestCodecChipLengthMatchesDefault(t *testing.T) {
	c := DefaultCodec()
	// 4-byte header + 10 payload + 2 CRC = 16 bytes = 128 bits → FEC 224
	// bits → FM0 448 chips.
	if got := c.ChipLength(10); got != 448 {
		t.Errorf("ChipLength(10) = %d, want 448", got)
	}
}

func TestCodecRoundTripAllConfigsProperty(t *testing.T) {
	// Any valid codec configuration must round-trip any frame losslessly.
	f := func(codeRaw, depthRaw uint8, fec bool, addr, seq byte, payload []byte) bool {
		code := LineCode(int(codeRaw) % 3)
		depth := 1
		if fec {
			depth = []int{1, 2, 7, 14}[int(depthRaw)%4] // divide the 14n FEC bits
		}
		c := Codec{Code: code, FEC: fec, InterleaveDepth: depth}
		if len(payload) > MaxPayload {
			payload = payload[:MaxPayload]
		}
		if !fec && depth > 1 {
			return true // interleaver needs divisibility; skip invalid combos
		}
		fr := &Frame{Type: FrameData, Addr: addr, Seq: seq, Payload: payload}
		chips, err := c.EncodeFrame(fr)
		if err != nil {
			return false
		}
		got, _, err := c.DecodeFrame(chips)
		return err == nil && got.Addr == addr && got.Seq == seq && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
