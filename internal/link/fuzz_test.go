package link

import (
	"bytes"
	"testing"
)

// FuzzUnmarshal hammers the frame parser with arbitrary bytes: it must
// never panic, and any frame it does accept must re-marshal to the same
// wire bytes (parse-print identity).
func FuzzUnmarshal(f *testing.F) {
	good, _ := (&Frame{Type: FrameData, Addr: 3, Seq: 9, Payload: []byte("seed")}).Marshal()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6})
	f.Add(bytes.Repeat([]byte{0xFF}, 80))
	// A packed multi-reading payload (magic nibble 0xC, two readings,
	// zero-padded — the node package's v2 sensor format) inside a frame:
	// the link layer must carry it like any other opaque payload.
	packed, _ := (&Frame{Type: FrameData, Addr: 3, Seq: 9,
		Payload: []byte{0xC2, 0x05, 0xB0, 0x12, 0x94, 0x14, 0x02, 0x02, 0x02, 0, 0, 0}}).Marshal()
	f.Add(packed)
	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := Unmarshal(data)
		if err != nil {
			return
		}
		wire, err := fr.Marshal()
		if err != nil {
			t.Fatalf("accepted frame failed to marshal: %v", err)
		}
		if !bytes.Equal(wire, data) {
			t.Fatalf("parse-print mismatch:\n in  %x\n out %x", data, wire)
		}
	})
}

// FuzzCodecDecode runs arbitrary chip streams through the full receive
// pipeline: decode must fail cleanly or produce a frame, never panic. Any
// frame it does accept must survive a clean re-encode/re-decode cycle —
// what the codec hands up is something the codec itself can carry.
func FuzzCodecDecode(f *testing.F) {
	c := DefaultCodec()
	good, _ := c.EncodeFrame(&Frame{Type: FrameData, Addr: 1, Payload: []byte{1, 2}})
	f.Add(good)
	f.Add(make([]byte, 56))
	f.Fuzz(func(t *testing.T, chips []byte) {
		// Constrain to binary chips: the PHY only ever hands us 0/1.
		for i := range chips {
			chips[i] &= 1
		}
		fr, _, err := c.DecodeFrame(chips)
		if err != nil {
			return
		}
		// Round trip: the accepted frame re-encodes (its fields are within
		// wire limits) and decodes back to itself with zero corrections.
		wire, err := c.EncodeFrame(fr)
		if err != nil {
			t.Fatalf("accepted frame failed to re-encode: %v", err)
		}
		fr2, stats, err := c.DecodeFrame(wire)
		if err != nil {
			t.Fatalf("re-encoded frame failed to decode: %v", err)
		}
		if stats.CorrectedBits != 0 {
			t.Fatalf("clean re-decode corrected %d bits", stats.CorrectedBits)
		}
		if fr2.Type != fr.Type || fr2.Addr != fr.Addr || fr2.Seq != fr.Seq ||
			!bytes.Equal(fr2.Payload, fr.Payload) {
			t.Fatalf("round-trip mismatch:\n got  %+v\n want %+v", fr2, fr)
		}
	})
}
