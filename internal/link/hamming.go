package link

import "fmt"

// Hamming(7,4) forward error correction: each 4-bit nibble becomes a 7-bit
// codeword able to correct any single bit error. Combined with the block
// interleaver below, this turns the short error bursts typical of acoustic
// fading into isolated, correctable errors — the heaviest code an
// ultra-low-power node can afford to encode (three XOR gates per parity
// bit).

// HammingEncode expands data bits (any multiple of 4) into 7-bit codewords.
// Codeword layout: [d1 d2 d3 d4 p1 p2 p3] with
//
//	p1 = d1⊕d2⊕d4,  p2 = d1⊕d3⊕d4,  p3 = d2⊕d3⊕d4.
func HammingEncode(bits []byte) ([]byte, error) {
	if len(bits)%4 != 0 {
		return nil, fmt.Errorf("link: hamming input %d bits, need multiple of 4", len(bits))
	}
	out := make([]byte, 0, len(bits)/4*7)
	for i := 0; i < len(bits); i += 4 {
		d1, d2, d3, d4 := bits[i], bits[i+1], bits[i+2], bits[i+3]
		p1 := d1 ^ d2 ^ d4
		p2 := d1 ^ d3 ^ d4
		p3 := d2 ^ d3 ^ d4
		out = append(out, d1, d2, d3, d4, p1, p2, p3)
	}
	return out, nil
}

// HammingDecode corrects single-bit errors per 7-bit codeword and returns
// the data bits together with the number of corrections applied. Double-bit
// errors are miscorrected (inherent to the code); the frame CRC catches
// those.
func HammingDecode(code []byte) (data []byte, corrected int, err error) {
	if len(code)%7 != 0 {
		return nil, 0, fmt.Errorf("link: hamming code %d bits, need multiple of 7", len(code))
	}
	data = make([]byte, 0, len(code)/7*4)
	for i := 0; i < len(code); i += 7 {
		w := [7]byte{code[i], code[i+1], code[i+2], code[i+3], code[i+4], code[i+5], code[i+6]}
		s1 := w[0] ^ w[1] ^ w[3] ^ w[4]
		s2 := w[0] ^ w[2] ^ w[3] ^ w[5]
		s3 := w[1] ^ w[2] ^ w[3] ^ w[6]
		syndrome := s1 | s2<<1 | s3<<2
		if syndrome != 0 {
			// Map syndrome to the offending bit position.
			pos := hammingSyndromePos[syndrome]
			w[pos] ^= 1
			corrected++
		}
		data = append(data, w[0], w[1], w[2], w[3])
	}
	return data, corrected, nil
}

// hammingSyndromePos maps the (s1, s2, s3) syndrome to the flipped bit index
// in the [d1 d2 d3 d4 p1 p2 p3] layout. Index 0 is unused (zero syndrome).
var hammingSyndromePos = [8]int{
	0, // 000: no error
	4, // 001: p1
	5, // 010: p2
	0, // 011: d1 (in s1 and s2)
	6, // 100: p3
	1, // 101: d2 (s1, s3)
	2, // 110: d3 (s2, s3)
	3, // 111: d4 (all)
}

// Interleave performs block interleaving of bits with the given depth:
// bits are written row-wise into a depth×w matrix and read column-wise,
// spreading a burst of up to depth consecutive channel errors across
// different codewords. The bit count must be a multiple of depth.
func Interleave(bits []byte, depth int) ([]byte, error) {
	if depth < 1 {
		return nil, fmt.Errorf("link: interleave depth %d must be >= 1", depth)
	}
	if len(bits)%depth != 0 {
		return nil, fmt.Errorf("link: %d bits not divisible by depth %d", len(bits), depth)
	}
	w := len(bits) / depth
	out := make([]byte, len(bits))
	idx := 0
	for col := 0; col < w; col++ {
		for row := 0; row < depth; row++ {
			out[idx] = bits[row*w+col]
			idx++
		}
	}
	return out, nil
}

// Deinterleave inverts Interleave with the same depth.
func Deinterleave(bits []byte, depth int) ([]byte, error) {
	if depth < 1 {
		return nil, fmt.Errorf("link: interleave depth %d must be >= 1", depth)
	}
	if len(bits)%depth != 0 {
		return nil, fmt.Errorf("link: %d bits not divisible by depth %d", len(bits), depth)
	}
	w := len(bits) / depth
	out := make([]byte, len(bits))
	idx := 0
	for col := 0; col < w; col++ {
		for row := 0; row < depth; row++ {
			out[row*w+col] = bits[idx]
			idx++
		}
	}
	return out, nil
}
