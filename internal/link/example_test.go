package link_test

import (
	"fmt"

	"vab/internal/link"
)

// Example runs a sensor frame through the full link pipeline — framing,
// CRC, Hamming(7,4) FEC, interleaving and FM0 line coding — corrupts a few
// channel chips, and shows the receive side repairing them.
func Example() {
	codec := link.DefaultCodec()
	f := &link.Frame{Type: link.FrameData, Addr: 7, Seq: 1, Payload: []byte("18.5kHz")}

	chips, err := codec.EncodeFrame(f)
	if err != nil {
		panic(err)
	}
	fmt.Printf("frame: %d payload bytes -> %d channel chips\n", len(f.Payload), len(chips))

	// Three scattered chip errors (each flips one data bit).
	for _, b := range []int{11, 40, 69} {
		chips[2*b+1] ^= 1
	}
	got, stats, err := codec.DecodeFrame(chips)
	if err != nil {
		panic(err)
	}
	fmt.Printf("decoded %q with %d FEC corrections\n", got.Payload, stats.CorrectedBits)
	// Output:
	// frame: 7 payload bytes -> 364 channel chips
	// decoded "18.5kHz" with 3 FEC corrections
}
