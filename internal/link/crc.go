package link

// CRC8 computes the CRC-8/ATM checksum (polynomial x⁸+x²+x+1, 0x07, zero
// init, no reflection). Used on the short downlink command words where every
// byte counts.
func CRC8(data []byte) byte {
	var crc byte
	for _, b := range data {
		crc ^= b
		for i := 0; i < 8; i++ {
			if crc&0x80 != 0 {
				crc = crc<<1 ^ 0x07
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}

// CRC16 computes the CRC-16/CCITT-FALSE checksum (polynomial 0x1021, init
// 0xFFFF), the frame-level integrity check on uplink payloads.
func CRC16(data []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, b := range data {
		crc ^= uint16(b) << 8
		for i := 0; i < 8; i++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
	}
	return crc
}
