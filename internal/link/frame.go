package link

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// FrameType distinguishes the frames flowing through a VAB network.
type FrameType byte

// Frame types. Queries and commands travel on the downlink (reader →
// nodes), data and acks on the backscatter uplink.
const (
	FrameData  FrameType = 0x01 // sensor payload, node → reader
	FrameQuery FrameType = 0x02 // poll for a node's data, reader → node
	FrameCmd   FrameType = 0x03 // configuration command, reader → node
	FrameAck   FrameType = 0x04 // acknowledgement, either direction
)

// Valid reports whether t is a known frame type.
func (t FrameType) Valid() bool { return t >= FrameData && t <= FrameAck }

// String names the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameData:
		return "data"
	case FrameQuery:
		return "query"
	case FrameCmd:
		return "cmd"
	case FrameAck:
		return "ack"
	default:
		return fmt.Sprintf("type(0x%02x)", byte(t))
	}
}

// BroadcastAddr addresses every node in range.
const BroadcastAddr = 0xFF

// MaxPayload bounds the payload so a whole frame (with FEC) stays within a
// fraction of the channel coherence time at VAB bit rates.
const MaxPayload = 64

// headerLen is type + addr + seq + payload length.
const headerLen = 4

// trailerLen is the CRC-16.
const trailerLen = 2

// Frame is the link-layer unit. The wire layout is:
//
//	byte 0: Type
//	byte 1: Addr (destination for downlink, source for uplink)
//	byte 2: Seq
//	byte 3: len(Payload)
//	bytes 4…: Payload
//	last 2:  CRC-16/CCITT over everything before it (big endian)
type Frame struct {
	Type    FrameType
	Addr    byte
	Seq     byte
	Payload []byte
}

// Errors returned by frame decoding.
var (
	ErrFrameTooShort = errors.New("link: frame shorter than header+CRC")
	ErrBadCRC        = errors.New("link: frame CRC mismatch")
	ErrBadLength     = errors.New("link: frame length field inconsistent")
	ErrBadType       = errors.New("link: unknown frame type")
	ErrPayloadSize   = errors.New("link: payload exceeds MaxPayload")
)

// WireSize returns the marshalled frame size in bytes.
func (f *Frame) WireSize() int { return headerLen + len(f.Payload) + trailerLen }

// Marshal serializes the frame, appending the CRC.
func (f *Frame) Marshal() ([]byte, error) {
	if !f.Type.Valid() {
		return nil, ErrBadType
	}
	if len(f.Payload) > MaxPayload {
		return nil, ErrPayloadSize
	}
	out := make([]byte, 0, f.WireSize())
	out = append(out, byte(f.Type), f.Addr, f.Seq, byte(len(f.Payload)))
	out = append(out, f.Payload...)
	crc := CRC16(out)
	out = binary.BigEndian.AppendUint16(out, crc)
	return out, nil
}

// Unmarshal parses and validates a frame from wire bytes.
func Unmarshal(data []byte) (*Frame, error) {
	if len(data) < headerLen+trailerLen {
		return nil, ErrFrameTooShort
	}
	body := data[:len(data)-trailerLen]
	want := binary.BigEndian.Uint16(data[len(data)-trailerLen:])
	if CRC16(body) != want {
		return nil, ErrBadCRC
	}
	f := &Frame{
		Type: FrameType(data[0]),
		Addr: data[1],
		Seq:  data[2],
	}
	if !f.Type.Valid() {
		return nil, ErrBadType
	}
	n := int(data[3])
	if n != len(data)-headerLen-trailerLen {
		return nil, ErrBadLength
	}
	if n > MaxPayload {
		return nil, ErrPayloadSize
	}
	f.Payload = append([]byte(nil), data[headerLen:headerLen+n]...)
	return f, nil
}

// Codec bundles the full link-layer pipeline between frames and channel
// chips: marshal → bits → Hamming FEC → interleave → line code, and the
// inverse. A Codec is stateless and safe for concurrent use.
type Codec struct {
	Code            LineCode
	FEC             bool
	InterleaveDepth int // 1 disables interleaving; must divide codeword count when >1
}

// DefaultCodec returns the configuration the end-to-end system uses: FM0
// line coding with Hamming FEC at interleave depth 7 (one full codeword per
// column, so a 7-chip burst splits across 7 codewords).
func DefaultCodec() Codec {
	return Codec{Code: FM0, FEC: true, InterleaveDepth: 7}
}

// EncodeFrame runs the full transmit pipeline, returning channel chips.
func (c Codec) EncodeFrame(f *Frame) ([]byte, error) {
	wire, err := f.Marshal()
	if err != nil {
		return nil, err
	}
	bits := BytesToBits(wire)
	if c.FEC {
		bits, err = HammingEncode(bits)
		if err != nil {
			return nil, err
		}
	}
	if c.InterleaveDepth > 1 {
		bits, err = Interleave(bits, c.InterleaveDepth)
		if err != nil {
			return nil, err
		}
	}
	return c.Code.Encode(bits)
}

// DecodeStats reports what the receive pipeline observed.
type DecodeStats struct {
	CorrectedBits int // Hamming corrections applied
}

// DecodeFrame runs the full receive pipeline on channel chips.
func (c Codec) DecodeFrame(chips []byte) (*Frame, DecodeStats, error) {
	var stats DecodeStats
	bits, err := c.Code.Decode(chips)
	if err != nil {
		return nil, stats, err
	}
	if c.InterleaveDepth > 1 {
		bits, err = Deinterleave(bits, c.InterleaveDepth)
		if err != nil {
			return nil, stats, err
		}
	}
	if c.FEC {
		var n int
		bits, n, err = HammingDecode(bits)
		if err != nil {
			return nil, stats, err
		}
		stats.CorrectedBits = n
	}
	wire, err := BitsToBytes(bits)
	if err != nil {
		return nil, stats, err
	}
	f, err := Unmarshal(wire)
	return f, stats, err
}

// ChipLength returns the number of channel chips EncodeFrame produces for a
// frame with the given payload size, letting the PHY size its demodulation
// window before decoding.
func (c Codec) ChipLength(payloadLen int) int {
	bits := (headerLen + payloadLen + trailerLen) * 8
	if c.FEC {
		bits = bits / 4 * 7
	}
	return bits * c.Code.ChipsPerBit()
}
