//go:build unix

// Package rlimit raises process resource limits, best-effort, for the
// load harnesses that open tens of thousands of sockets.
package rlimit

import "syscall"

// RaiseNoFile lifts the soft RLIMIT_NOFILE toward need (raising the hard
// limit too when the process is privileged) and returns the resulting
// soft limit. Failures are swallowed: callers treat the return value as
// the budget they actually have.
func RaiseNoFile(need uint64) uint64 {
	var lim syscall.Rlimit
	if err := syscall.Getrlimit(syscall.RLIMIT_NOFILE, &lim); err != nil {
		return 0
	}
	if lim.Cur >= need {
		return lim.Cur
	}
	// Privileged processes may raise the hard limit outright.
	if lim.Max < need {
		try := lim
		try.Cur, try.Max = need, need
		if syscall.Setrlimit(syscall.RLIMIT_NOFILE, &try) == nil {
			return need
		}
	}
	// Otherwise settle for soft = hard.
	try := lim
	try.Cur = lim.Max
	if need < try.Cur {
		try.Cur = need
	}
	if syscall.Setrlimit(syscall.RLIMIT_NOFILE, &try) == nil {
		return try.Cur
	}
	return lim.Cur
}
