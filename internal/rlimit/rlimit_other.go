//go:build !unix

package rlimit

// RaiseNoFile is a no-op on platforms without RLIMIT_NOFILE.
func RaiseNoFile(need uint64) uint64 { return need }
