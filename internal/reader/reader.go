// Package reader implements the VAB interrogator: a projector that
// transmits the carrier and downlink commands, and a hydrophone receive
// chain that cancels self-interference, acquires backscatter bursts,
// demodulates subcarrier FSK and decodes link-layer frames.
package reader

import (
	"errors"
	"fmt"
	"math"

	"vab/internal/dsp"
	"vab/internal/link"
	"vab/internal/phy"
	"vab/internal/telemetry"
)

// Config assembles a reader.
type Config struct {
	PHY phy.Params
	// UplinkCodec decodes node responses (must match the nodes).
	UplinkCodec link.Codec
	// DownlinkCodec frames queries and commands. Downlink uses Manchester
	// without FEC by default: the node's comparator-based receiver decodes
	// it with trivial hardware.
	DownlinkCodec link.Codec

	// SourceLevelDB is the projector source level in dB re 1 µPa @ 1 m.
	SourceLevelDB float64
	// AcquireThreshold is the minimum normalized correlation for declaring
	// a burst (0…1).
	AcquireThreshold float64
	// UseCanceller enables the adaptive LMS leakage canceller in front of
	// the DC notch.
	UseCanceller bool
	// UseDiversity lets acquisition-reported multipath peaks contribute to
	// chip decisions.
	UseDiversity bool
	// UseEqualizer enables the two-pass decision-feedback equalizer, which
	// cancels chip-scale late echoes (severe ISI regimes such as
	// mid-column coastal geometries). Costs a second demodulation pass.
	UseEqualizer bool

	// Reacquire enables burst reacquisition: when acquisition fails at
	// AcquireThreshold, the threshold steps down by ReacquireStep for up
	// to ReacquireMax extra attempts, never below ReacquireFloor. An
	// impulse-masked or shadow-faded preamble that correlates weakly but
	// genuinely is thereby recovered instead of discarded; the floor
	// bounds the false-acquisition risk. Off (the default) preserves the
	// historical single-attempt behavior bit for bit.
	Reacquire bool
	// ReacquireMax bounds the extra acquisition attempts (0 → 2).
	ReacquireMax int
	// ReacquireStep is the per-attempt threshold decrement (0 → 0.05).
	ReacquireStep float64
	// ReacquireFloor is the lowest threshold tried (0 → 0.08).
	ReacquireFloor float64
}

// reacquire resolves the reacquisition policy's defaults.
func (c *Config) reacquire() (max int, step, floor float64) {
	max, step, floor = c.ReacquireMax, c.ReacquireStep, c.ReacquireFloor
	if max <= 0 {
		max = 2
	}
	if step <= 0 {
		step = 0.05
	}
	if floor <= 0 {
		floor = 0.08
	}
	return max, step, floor
}

// DefaultConfig returns the reader used by the end-to-end experiments:
// 180 dB source level (a small projector), canceller and diversity on.
func DefaultConfig() Config {
	return Config{
		PHY:              phy.DefaultParams(),
		UplinkCodec:      link.DefaultCodec(),
		DownlinkCodec:    link.Codec{Code: link.Manchester},
		SourceLevelDB:    180,
		AcquireThreshold: 0.22,
		UseCanceller:     true,
		UseDiversity:     true,
	}
}

// Reader is the interrogator. Not safe for concurrent use.
type Reader struct {
	cfg   Config
	mod   *phy.Modulator
	demod *phy.Demodulator
	canc  *phy.AdaptiveCanceller
	met   rdMetrics

	// cancBuf holds Decode's working copy of the capture when the
	// canceller is active (Decode must not mutate the caller's capture
	// before cancellation). Reused across rounds.
	cancBuf []complex128
}

// rdMetrics carries the receive-chain instrumentation. The zero value is
// the noop default; counters are shared when several readers (a fleet)
// instrument against one registry, aggregating across nodes.
type rdMetrics struct {
	acquires     *telemetry.Counter
	acquireFail  *telemetry.Counter
	demodErrors  *telemetry.Counter
	decodeErrors *telemetry.Counter
	frames       *telemetry.Counter
	corrected    *telemetry.Counter
	reacquires   *telemetry.Counter
	reacquireOK  *telemetry.Counter
	snrDB        *telemetry.Histogram
	stages       *telemetry.Tracer
}

// Instrument registers receive-chain metrics in reg and starts recording.
// A nil registry leaves the reader uninstrumented (every recording is a
// free no-op). Call before Decode; the reader itself is not safe for
// concurrent use, but the metrics are, so fleet-wide aggregation works.
func (r *Reader) Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	r.met = rdMetrics{
		acquires: reg.Counter("vab_reader_acquire_total",
			"Burst acquisition attempts (one per capture decoded)."),
		acquireFail: reg.Counter("vab_reader_acquire_failures_total",
			"Captures in which no backscatter burst was acquired."),
		demodErrors: reg.Counter("vab_reader_demod_errors_total",
			"Captures that acquired but failed chip demodulation."),
		decodeErrors: reg.Counter("vab_reader_decode_errors_total",
			"Captures that demodulated but failed frame decoding (FEC/CRC)."),
		frames: reg.Counter("vab_reader_frames_total",
			"Frames recovered end to end."),
		corrected: reg.Counter("vab_reader_fec_corrected_bits_total",
			"Bits repaired by the FEC across recovered frames."),
		reacquires: reg.Counter("vab_reader_reacquire_attempts_total",
			"Extra acquisition attempts at stepped-down thresholds."),
		reacquireOK: reg.Counter("vab_reader_reacquire_successes_total",
			"Bursts acquired only after threshold stepping."),
		snrDB: reg.Histogram("vab_reader_snr_db",
			"Per-frame tone SNR estimate in dB.",
			telemetry.LinearBuckets(-10, 2, 25)),
		stages: telemetry.NewTracer(reg, "vab_reader_stage_seconds",
			"Receive-pipeline stage wall time in seconds.", nil),
	}
}

// New validates the configuration and builds a reader.
func New(cfg Config) (*Reader, error) {
	if cfg.SourceLevelDB < 100 || cfg.SourceLevelDB > 230 {
		return nil, fmt.Errorf("reader: source level %.1f dB re µPa implausible", cfg.SourceLevelDB)
	}
	if cfg.AcquireThreshold <= 0 || cfg.AcquireThreshold >= 1 {
		return nil, fmt.Errorf("reader: acquire threshold %.3g outside (0,1)", cfg.AcquireThreshold)
	}
	mod, err := phy.NewModulator(cfg.PHY)
	if err != nil {
		return nil, err
	}
	demod, err := phy.NewDemodulator(cfg.PHY)
	if err != nil {
		return nil, err
	}
	r := &Reader{cfg: cfg, mod: mod, demod: demod}
	if cfg.UseCanceller {
		r.canc = phy.NewAdaptiveCanceller(0.05)
	}
	return r, nil
}

// Config returns the reader configuration.
func (r *Reader) Config() Config { return r.cfg }

// SourceAmplitude returns the transmit envelope magnitude in µPa (re 1 m).
func (r *Reader) SourceAmplitude() float64 {
	return math.Pow(10, r.cfg.SourceLevelDB/20)
}

// CarrierEnvelope returns n samples of the interrogation carrier at source
// amplitude.
func (r *Reader) CarrierEnvelope(n int) []complex128 {
	x := make([]complex128, n)
	r.CarrierEnvelopeInto(x)
	return x
}

// CarrierEnvelopeInto fills dst with the interrogation carrier at source
// amplitude: the allocation-free form the round pipeline uses on its
// reused transmit buffer.
func (r *Reader) CarrierEnvelopeInto(dst []complex128) {
	amp := complex(r.SourceAmplitude(), 0)
	for i := range dst {
		dst[i] = amp
	}
}

// QueryWaveform encodes a query for addr as a downlink OOK envelope at
// source amplitude, returning the waveform and the frame it carries.
func (r *Reader) QueryWaveform(addr byte, seq byte) ([]complex128, *link.Frame, error) {
	f := &link.Frame{Type: link.FrameQuery, Addr: addr, Seq: seq}
	chips, err := r.cfg.DownlinkCodec.EncodeFrame(f)
	if err != nil {
		return nil, nil, fmt.Errorf("reader: encode query: %w", err)
	}
	w, err := r.mod.OOKModulate(chips, 1.0)
	if err != nil {
		return nil, nil, fmt.Errorf("reader: modulate query: %w", err)
	}
	dsp.Scale(w, r.SourceAmplitude())
	return w, f, nil
}

// RxReport describes one decode attempt.
type RxReport struct {
	Frame       *link.Frame // nil on failure
	Err         error       // why decoding failed (nil on success)
	AcqMetric   float64     // normalized acquisition correlation
	AcqStart    int         // sample index of the acquired burst (time-of-flight input)
	SNREstimate float64     // linear per-chip tone SNR estimate
	MeanMargin  float64     // average soft decision margin
	Corrected   int         // FEC corrections
}

// OK reports whether a frame was recovered.
func (rep *RxReport) OK() bool { return rep.Frame != nil && rep.Err == nil }

// ErrNoBurst is wrapped in RxReport.Err when acquisition fails.
var ErrNoBurst = errors.New("reader: no burst acquired")

// EstimateRange converts a time-of-flight measurement into a one-way range
// estimate in meters: acqStart is the acquired burst start in the capture,
// txStart the sample at which the node's response window began in the
// transmit frame, and soundSpeed the medium's sound speed. The difference
// is the round-trip flight time, so range = Δt·c/2. Resolution is one
// baseband sample (c/fs/2 ≈ 4.6 cm at the default numerology) — the
// localization primitive VAB's retrodirective architecture enables, since
// the node answers from any orientation without steering delay.
func (r *Reader) EstimateRange(acqStart, txStart int, soundSpeed float64) float64 {
	dt := float64(acqStart-txStart) / r.cfg.PHY.SampleRate
	return dt * soundSpeed / 2
}

// Decode runs the full receive pipeline on a raw hydrophone capture.
// txRef is the reader's own transmit envelope (for the canceller; may be
// nil when the projector was silent). payloadLen is the expected response
// payload size in bytes.
func (r *Reader) Decode(capture, txRef []complex128, payloadLen int) RxReport {
	var rep RxReport
	y := capture
	if r.canc != nil && txRef != nil && len(txRef) == len(y) {
		sp := r.met.stages.Stage("cancel")
		r.canc.Reset()
		if cap(r.cancBuf) < len(y) {
			r.cancBuf = make([]complex128, len(y))
		}
		buf := r.cancBuf[:len(y)]
		copy(buf, y)
		y = buf
		r.canc.Prime(y, txRef)
		y = r.canc.Process(y, txRef)
		sp.End()
	}
	y = r.demod.Suppress(y)
	r.met.acquires.Inc()
	sp := r.met.stages.Stage("acquire")
	acq, err := r.demod.Acquire(y, r.cfg.AcquireThreshold)
	sp.End()
	if err != nil && r.cfg.Reacquire {
		// Recovery: step the threshold down and retry, bounded. A burst
		// whose preamble correlation was dented by an impulse train or a
		// shadowing fade often still peaks above a relaxed threshold.
		max, step, floor := r.cfg.reacquire()
		thr := r.cfg.AcquireThreshold
		for attempt := 0; attempt < max && err != nil; attempt++ {
			thr -= step
			if thr < floor {
				thr = floor
			}
			r.met.reacquires.Inc()
			sp = r.met.stages.Stage("reacquire")
			acq, err = r.demod.Acquire(y, thr)
			sp.End()
			if thr == floor {
				break
			}
		}
		if err == nil {
			r.met.reacquireOK.Inc()
		}
	}
	if err != nil {
		r.met.acquireFail.Inc()
		rep.Err = fmt.Errorf("%w: %v", ErrNoBurst, err)
		return rep
	}
	rep.AcqMetric = acq.Metric
	rep.AcqStart = acq.Start
	if !r.cfg.UseDiversity {
		acq.Peaks = nil
	}
	nChips := r.cfg.UplinkCodec.ChipLength(payloadLen)
	probe := nChips
	if probe > 24 {
		probe = 24
	}
	acq = r.demod.RefineTiming(y, acq, probe)
	var soft []phy.SoftChip
	sp = r.met.stages.Stage("demod")
	if r.cfg.UseEqualizer {
		soft, _, err = r.demod.EqualizeAndDemod(y, acq, nChips, 8)
	} else {
		soft, err = r.demod.DemodChips(y, acq, nChips)
	}
	sp.End()
	if err != nil {
		r.met.demodErrors.Inc()
		rep.Err = fmt.Errorf("reader: demod: %w", err)
		return rep
	}
	rep.SNREstimate = phy.EstimateSNR(soft)
	rep.MeanMargin = phy.MeanMargin(soft)
	sp = r.met.stages.Stage("decode")
	frame, stats, err := r.cfg.UplinkCodec.DecodeFrame(phy.HardChips(soft))
	sp.End()
	rep.Corrected = stats.CorrectedBits
	if err != nil {
		r.met.decodeErrors.Inc()
		rep.Err = fmt.Errorf("reader: frame decode: %w", err)
		return rep
	}
	rep.Frame = frame
	r.met.frames.Inc()
	r.met.corrected.Add(int64(stats.CorrectedBits))
	if rep.SNREstimate > 0 {
		r.met.snrDB.Observe(10 * math.Log10(rep.SNREstimate))
	}
	return rep
}
