package reader

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"vab/internal/channel"
	"vab/internal/dsp"
	"vab/internal/link"
	"vab/internal/node"
	"vab/internal/ocean"
	"vab/internal/phy"
)

func TestNewValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SourceLevelDB = 50
	if _, err := New(cfg); err == nil {
		t.Error("silly source level accepted")
	}
	cfg = DefaultConfig()
	cfg.AcquireThreshold = 0
	if _, err := New(cfg); err == nil {
		t.Error("zero threshold accepted")
	}
	cfg = DefaultConfig()
	cfg.PHY.ChipRate = 0
	if _, err := New(cfg); err == nil {
		t.Error("bad PHY accepted")
	}
}

func TestSourceAmplitude(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SourceLevelDB = 180
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.SourceAmplitude(); got != 1e9 {
		t.Errorf("amplitude %v µPa, want 1e9", got)
	}
	env := r.CarrierEnvelope(16)
	if len(env) != 16 || real(env[3]) != 1e9 {
		t.Error("carrier envelope wrong")
	}
}

func TestQueryWaveformDecodableByNodeReceiver(t *testing.T) {
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	w, f, err := r.QueryWaveform(5, 9)
	if err != nil {
		t.Fatal(err)
	}
	if f.Type != link.FrameQuery || f.Addr != 5 || f.Seq != 9 {
		t.Errorf("query frame %+v", f)
	}
	// Node-side pipeline: envelope detector → Manchester decode.
	ook, err := phy.NewOOKDemodulator(r.cfg.PHY)
	if err != nil {
		t.Fatal(err)
	}
	nChips := r.cfg.DownlinkCodec.ChipLength(0)
	chips, err := ook.DemodChips(w, 0, nChips)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := r.cfg.DownlinkCodec.DecodeFrame(chips)
	if err != nil {
		t.Fatal(err)
	}
	if got.Addr != 5 || got.Seq != 9 || got.Type != link.FrameQuery {
		t.Errorf("decoded query %+v", got)
	}
}

func TestDecodeNoBurst(t *testing.T) {
	r, _ := New(DefaultConfig())
	noise := dsp.GaussianNoise(make([]complex128, 8192), 1, newRng(3))
	rep := r.Decode(noise, nil, node.PayloadSize)
	if rep.OK() {
		t.Fatal("decoded a frame from pure noise")
	}
	if !errors.Is(rep.Err, ErrNoBurst) {
		t.Errorf("err = %v, want ErrNoBurst", rep.Err)
	}
}

// TestEndToEndQueryResponse is the keystone integration test: a full
// query-response round between a reader and a battery-free node over the
// simulated river channel.
func TestEndToEndQueryResponse(t *testing.T) {
	env := ocean.CharlesRiver()
	const rng = 30.0 // meters

	cfg := DefaultConfig()
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	n, err := node.New(node.Config{
		Addr:    7,
		Codec:   cfg.UplinkCodec,
		PHY:     cfg.PHY,
		Budget:  node.DefaultPowerBudget(),
		Harvest: node.DefaultHarvester(),
		Sensor:  node.NewEnvSensor(15, 2.5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}

	ch, err := channel.New(channel.Config{
		Env:                env,
		CarrierHz:          18.5e3,
		SampleRate:         cfg.PHY.SampleRate,
		ReaderDepth:        2,
		NodeDepth:          2.5,
		Range:              rng,
		SelfInterferenceDB: -30,
		Seed:               11,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Phase 1: carrier on, node harvests. Pressure at node from SL − TL.
	tl := env.TransmissionLoss(18.5e3, rng)
	pAtNode := dsp.FromAmpDB(cfg.SourceLevelDB-tl) * 1e-6 // µPa → Pa
	n.Harvest(pAtNode, 1025*env.MeanSoundSpeed(), 3600)
	if n.State() != node.StateListen {
		t.Fatalf("node failed to wake: %v", n.State())
	}

	// Phase 2: downlink query through the channel, node decodes it.
	qw, qf, err := r.QueryWaveform(7, 0)
	if err != nil {
		t.Fatal(err)
	}
	atNode := ch.Downlink(qw)
	ook, _ := phy.NewOOKDemodulator(cfg.PHY)
	nChips := cfg.DownlinkCodec.ChipLength(0)
	chips, err := ook.DemodChips(atNode, 0, nChips)
	if err != nil {
		t.Fatal(err)
	}
	gotQ, _, err := cfg.DownlinkCodec.DecodeFrame(chips)
	if err != nil {
		t.Fatalf("node failed to decode query: %v", err)
	}
	if gotQ.Addr != qf.Addr {
		t.Fatalf("query addr corrupted: %+v", gotQ)
	}

	// Phase 3: node responds by modulating its reflection.
	gammaBits, err := n.HandleQuery(gotQ)
	if err != nil {
		t.Fatal(err)
	}
	if gammaBits == nil {
		t.Fatal("node stayed silent")
	}

	// Phase 4: backscatter round trip. The node's scatter gain bundles the
	// array's retrodirective response and modulation depth; a plain
	// single-element node at short range is enough for this test.
	pad := 900
	total := pad + len(gammaBits) + 600
	tx := r.CarrierEnvelope(total)
	gamma := make([]complex128, total)
	for i, g := range gammaBits {
		gamma[pad+i] = complex(g, 0)
	}
	const nodeGain = 0.05
	capture, err := ch.RoundTrip(tx, gamma, complex(nodeGain, 0))
	if err != nil {
		t.Fatal(err)
	}

	// Phase 5: reader decodes the response.
	rep := r.Decode(capture, tx, node.PayloadSize)
	if !rep.OK() {
		t.Fatalf("reader failed to decode: %v (acq %.3f)", rep.Err, rep.AcqMetric)
	}
	if rep.Frame.Addr != 7 || rep.Frame.Type != link.FrameData {
		t.Errorf("frame %+v", rep.Frame)
	}
	reading, ok := node.DecodeReading(rep.Frame.Payload)
	if !ok {
		t.Fatal("payload not a sensor reading")
	}
	if reading.Count != 0 {
		t.Errorf("reading count %d, want 0", reading.Count)
	}
	if rep.SNREstimate < 1 {
		t.Errorf("SNR estimate %v suspiciously low for 30 m", rep.SNREstimate)
	}
}

// TestEndToEndPayloadIntegrity runs the round trip at a longer range and
// verifies the payload bytes survive bit-exactly. Shallow-water channel
// realizations at 100 m can land in static interference fades, so the test
// retries across a few channel seeds (a real deployment decorrelates
// between polls through platform sway) and requires a bit-exact payload on
// the first realization that decodes.
func TestEndToEndPayloadIntegrity(t *testing.T) {
	cfg := DefaultConfig()
	r, _ := New(cfg)

	decoded := false
	for seed := int64(23); seed < 29 && !decoded; seed++ {
		n, _ := node.New(node.Config{
			Addr: 3, Codec: cfg.UplinkCodec, PHY: cfg.PHY,
			Budget: node.DefaultPowerBudget(), Harvest: node.DefaultHarvester(),
			Sensor: node.NewEnvSensor(12, 4, 5),
		})
		n.Harvest(100, 1025*1480, 3600)
		ch, err := channel.New(channel.Config{
			Env: ocean.CharlesRiver(), CarrierHz: 18.5e3, SampleRate: cfg.PHY.SampleRate,
			ReaderDepth: 2, NodeDepth: 2.5 + 0.01*float64(seed-23), Range: 100,
			SelfInterferenceDB: -30, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		gammaBits, err := n.HandleQuery(&link.Frame{Type: link.FrameQuery, Addr: 3})
		if err != nil || gammaBits == nil {
			t.Fatal(err)
		}
		sensorWant := node.NewEnvSensor(12, 4, 5).Read()

		pad := 512
		total := pad + len(gammaBits) + 512
		tx := r.CarrierEnvelope(total)
		gamma := make([]complex128, total)
		for i, g := range gammaBits {
			gamma[pad+i] = complex(g, 0)
		}
		capture, err := ch.RoundTrip(tx, gamma, complex(0.05, 0))
		if err != nil {
			t.Fatal(err)
		}
		rep := r.Decode(capture, tx, node.PayloadSize)
		if !rep.OK() {
			continue
		}
		decoded = true
		if !bytes.Equal(rep.Frame.Payload, sensorWant) {
			t.Errorf("payload %x, want %x", rep.Frame.Payload, sensorWant)
		}
	}
	if !decoded {
		t.Fatal("no channel realization decoded at 100 m across 6 geometries")
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

func TestConfigAccessorAndRangeMath(t *testing.T) {
	r, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Config().SourceLevelDB; got != 180 {
		t.Errorf("config accessor returned %v", got)
	}
	// EstimateRange: 160 samples at 16 kHz is 10 ms RTT → 7.4 m at
	// c = 1480 m/s.
	if got := r.EstimateRange(660, 500, 1480); got != 7.4 {
		t.Errorf("EstimateRange = %v, want 7.4", got)
	}
	// Negative flight time (acquisition before transmit) reports negative:
	// the caller treats it as invalid.
	if got := r.EstimateRange(100, 200, 1480); got >= 0 {
		t.Errorf("backwards time of flight should be negative, got %v", got)
	}
}

func TestQueryWaveformEncodeError(t *testing.T) {
	cfg := DefaultConfig()
	// A downlink codec with FEC demands 4-bit alignment, which frames
	// always satisfy, so break it with an invalid interleave depth
	// instead: depth 5 does not divide the frame's bit count.
	cfg.DownlinkCodec = link.Codec{Code: link.Manchester, InterleaveDepth: 5}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.QueryWaveform(1, 0); err == nil {
		t.Error("unencodable downlink codec should surface an error")
	}
}
