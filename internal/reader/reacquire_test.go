package reader

import (
	"errors"
	"testing"

	"vab/internal/channel"
	"vab/internal/dsp"
	"vab/internal/link"
	"vab/internal/node"
	"vab/internal/ocean"
)

// buildCleanCapture runs a node response through the river channel and
// returns (capture, tx) ready for Decode.
func buildCleanCapture(t *testing.T, cfg Config, r *Reader) ([]complex128, []complex128) {
	t.Helper()
	env := ocean.CharlesRiver()
	ch, err := channel.New(channel.Config{
		Env:                env,
		CarrierHz:          18.5e3,
		SampleRate:         cfg.PHY.SampleRate,
		ReaderDepth:        2,
		NodeDepth:          2.5,
		Range:              30,
		SelfInterferenceDB: -30,
		Seed:               11,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := node.New(node.Config{
		Addr:    7,
		Codec:   cfg.UplinkCodec,
		PHY:     cfg.PHY,
		Budget:  node.DefaultPowerBudget(),
		Harvest: node.DefaultHarvester(),
		Sensor:  node.NewEnvSensor(15, 2.5, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	tl := env.TransmissionLoss(18.5e3, 30)
	pAtNode := dsp.FromAmpDB(cfg.SourceLevelDB-tl) * 1e-6 // µPa → Pa
	n.Harvest(pAtNode, 1025*env.MeanSoundSpeed(), 3600)
	gammaBits, err := n.HandleQuery(&link.Frame{Type: link.FrameQuery, Addr: 7})
	if err != nil || gammaBits == nil {
		t.Fatalf("node response: bits=%v err=%v", gammaBits != nil, err)
	}
	pad := 900
	total := pad + len(gammaBits) + 600
	tx := r.CarrierEnvelope(total)
	gamma := make([]complex128, total)
	for i, g := range gammaBits {
		gamma[pad+i] = complex(g, 0)
	}
	capture, err := ch.RoundTrip(tx, gamma, complex(0.05, 0))
	if err != nil {
		t.Fatal(err)
	}
	return capture, tx
}

// TestReacquireRecoversWeakCorrelation sets the acquisition threshold
// above what a genuine burst correlates at: the single-attempt reader must
// fail, while the reacquiring reader steps its threshold down to the burst
// and decodes the same capture.
func TestReacquireRecoversWeakCorrelation(t *testing.T) {
	strict := DefaultConfig()
	strict.AcquireThreshold = 0.9
	single, err := New(strict)
	if err != nil {
		t.Fatal(err)
	}
	capture, tx := buildCleanCapture(t, strict, single)

	rep := single.Decode(capture, tx, node.PayloadSize)
	if rep.OK() {
		t.Skipf("capture correlates at %.3f >= 0.9; premise gone", rep.AcqMetric)
	}
	if !errors.Is(rep.Err, ErrNoBurst) {
		t.Fatalf("single-attempt failure = %v, want ErrNoBurst", rep.Err)
	}

	strict.Reacquire = true
	strict.ReacquireMax = 20
	strict.ReacquireStep = 0.05
	strict.ReacquireFloor = 0.05
	stepper, err := New(strict)
	if err != nil {
		t.Fatal(err)
	}
	rep = stepper.Decode(capture, tx, node.PayloadSize)
	if !rep.OK() {
		t.Fatalf("reacquisition failed to recover the burst: %v (acq %.3f)", rep.Err, rep.AcqMetric)
	}
	if rep.Frame.Addr != 7 {
		t.Errorf("recovered frame %+v", rep.Frame)
	}
}

// TestReacquireBoundedByFloor verifies the retry budget: with a floor
// above the burst's correlation the stepper must give up (no unbounded
// descent into false acquisitions).
func TestReacquireBoundedByFloor(t *testing.T) {
	cfg := DefaultConfig()
	cfg.AcquireThreshold = 0.95
	cfg.Reacquire = true
	cfg.ReacquireMax = 2
	cfg.ReacquireStep = 0.01
	cfg.ReacquireFloor = 0.9
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	capture, tx := buildCleanCapture(t, cfg, r)
	rep := r.Decode(capture, tx, node.PayloadSize)
	if rep.OK() {
		t.Skipf("capture correlates at %.3f >= 0.9; premise gone", rep.AcqMetric)
	}
	if !errors.Is(rep.Err, ErrNoBurst) {
		t.Fatalf("bounded reacquire failure = %v, want ErrNoBurst", rep.Err)
	}
}

// Reacquire defaults resolve only when the fields are zero.
func TestReacquireDefaults(t *testing.T) {
	var c Config
	max, step, floor := c.reacquire()
	if max != 2 || step != 0.05 || floor != 0.08 {
		t.Fatalf("defaults = %d %.3g %.3g", max, step, floor)
	}
	c.ReacquireMax, c.ReacquireStep, c.ReacquireFloor = 5, 0.1, 0.2
	max, step, floor = c.reacquire()
	if max != 5 || step != 0.1 || floor != 0.2 {
		t.Fatalf("overrides = %d %.3g %.3g", max, step, floor)
	}
}
