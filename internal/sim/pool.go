package sim

import (
	"context"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// RunCells executes a batch of independent Monte-Carlo cells on a bounded
// worker pool and returns the results in input order. Every cell carries
// its own seed and owns its RNG for the duration of the run, so the output
// is bit-identical to running the cells serially — the worker count only
// changes wall-clock time, never a single drawn sample. workers <= 0
// selects runtime.NumCPU(); workers == 1 runs inline with no goroutines.
//
// On error the lowest-index failure is returned (the same one a serial run
// would hit first), so error behavior is deterministic too.
func RunCells(cfgs []TrialConfig, workers int) ([]CellResult, error) {
	if len(cfgs) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(cfgs) {
		workers = len(cfgs)
	}
	out := make([]CellResult, len(cfgs))
	if workers == 1 {
		for i := range cfgs {
			r, err := RunCell(cfgs[i])
			if err != nil {
				return nil, fmt.Errorf("sim: cell %d: %w", i, err)
			}
			out[i] = r
		}
		return out, nil
	}

	metPoolWorkers.Set(float64(workers))
	errs := make([]error, len(cfgs))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Label the whole worker (once, not per cell — label sets
			// allocate) so CPU profiles attribute Monte-Carlo work to the
			// pool: `go tool pprof -tags` splits on vab_stage.
			pprof.Do(context.Background(), pprof.Labels("vab_stage", "mc_cell"), func(context.Context) {
				for {
					i := int(next.Add(1)) - 1
					if i >= len(cfgs) {
						return
					}
					out[i], errs[i] = RunCell(cfgs[i])
				}
			})
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: cell %d: %w", i, err)
		}
	}
	metPoolCells.Add(int64(len(cfgs)))
	return out, nil
}
