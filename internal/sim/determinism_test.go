package sim

import (
	"testing"

	"vab/internal/core"
	"vab/internal/ocean"
	"vab/internal/telemetry"
)

// TestRunCellSeededDeterminism pins the Monte-Carlo contract that every
// experiment artifact depends on: the same TrialConfig.Seed must produce a
// byte-identical CellResult, run after run. Future parallelization of the
// trial loop must preserve this (e.g. by sharding the RNG per trial rather
// than sharing one stream across goroutines in racy order).
func TestRunCellSeededDeterminism(t *testing.T) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewLinkBudget(env, d)
	for _, seed := range []int64{1, 42, 7919} {
		cfg := TrialConfig{
			Budget: b, RangeM: 150, Trials: 400,
			ChipsPerTrial: 392, Seed: seed,
		}
		first, err := RunCell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		second, err := RunCell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if first != second {
			t.Errorf("seed %d not deterministic:\n first %+v\nsecond %+v", seed, first, second)
		}
	}
}

// TestRunCellDeterminismUnderTelemetry verifies the telemetry contract:
// instrumenting the harness observes counters but never perturbs the
// seeded trial stream.
func TestRunCellDeterminismUnderTelemetry(t *testing.T) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewLinkBudget(env, d)
	cfg := TrialConfig{
		Budget: b, RangeM: 200, Trials: 300,
		ChipsPerTrial: 392, Seed: 99,
	}
	bare, err := RunCell(cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	Instrument(reg)
	defer Instrument(nil) // Instrument(nil) is a no-op; reset vars below
	defer func() {
		metTrials, metChips, metChipErrors = nil, nil, nil
		metLostFrames, metCells, metCellTime = nil, nil, nil
	}()
	instrumented, err := RunCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare != instrumented {
		t.Errorf("telemetry perturbed the cell:\n bare %+v\ninstr %+v", bare, instrumented)
	}
	if got := reg.Snapshot(); len(got) == 0 {
		t.Error("instrumented run recorded nothing")
	}
	var trials float64
	for _, s := range reg.Snapshot() {
		if s.Name == "vab_sim_trials_total" {
			trials = s.Value
		}
	}
	if trials != float64(cfg.Trials) {
		t.Errorf("vab_sim_trials_total = %g, want %d", trials, cfg.Trials)
	}
}
