package sim

import (
	"testing"

	"vab/internal/core"
	"vab/internal/ocean"
	"vab/internal/telemetry"
)

// TestRunCellSeededDeterminism pins the Monte-Carlo contract that every
// experiment artifact depends on: the same TrialConfig.Seed must produce a
// byte-identical CellResult, run after run. Future parallelization of the
// trial loop must preserve this (e.g. by sharding the RNG per trial rather
// than sharing one stream across goroutines in racy order).
func TestRunCellSeededDeterminism(t *testing.T) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewLinkBudget(env, d)
	for _, seed := range []int64{1, 42, 7919} {
		cfg := TrialConfig{
			Budget: b, RangeM: 150, Trials: 400,
			ChipsPerTrial: 392, Seed: seed,
		}
		first, err := RunCell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		second, err := RunCell(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if first != second {
			t.Errorf("seed %d not deterministic:\n first %+v\nsecond %+v", seed, first, second)
		}
	}
}

// TestRunCellsParallelBitIdentity pins the parallelization contract: a
// RunCells pool of any width must reproduce the serial sweep outputs
// exactly, cell by cell, because every cell derives its own RNG from its
// own seed. This is the test that lets -workers default to NumCPU without
// renegotiating the seeded-output guarantees PR 1 locked in.
func TestRunCellsParallelBitIdentity(t *testing.T) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewLinkBudget(env, d)
	ranges := []float64{50, 100, 150, 200, 250, 300, 350}

	serial, err := RangeSweep(b, ranges, 300, 392, 17, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8, 32} {
		parallel, err := RangeSweep(b, ranges, 300, 392, 17, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(parallel) != len(serial) {
			t.Fatalf("workers=%d: %d cells, want %d", workers, len(parallel), len(serial))
		}
		for i := range serial {
			if parallel[i] != serial[i] {
				t.Errorf("workers=%d cell %d diverged:\n  serial %+v\nparallel %+v",
					workers, i, serial[i], parallel[i])
			}
		}
	}

	// OrientationSweep under the same contract.
	thetas := []float64{0, 0.3, 0.6, 0.9}
	oSerial, err := OrientationSweep(b, 150, thetas, 200, 392, 23, 1)
	if err != nil {
		t.Fatal(err)
	}
	oParallel, err := OrientationSweep(b, 150, thetas, 200, 392, 23, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := range oSerial {
		if oParallel[i] != oSerial[i] {
			t.Errorf("orientation cell %d diverged under 4 workers", i)
		}
	}
}

// TestRunCellsErrorDeterministic verifies that a failing batch reports the
// lowest-index error at any pool width, matching serial behavior.
func TestRunCellsErrorDeterministic(t *testing.T) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewLinkBudget(env, d)
	cfgs := make([]TrialConfig, 6)
	for i := range cfgs {
		cfgs[i] = TrialConfig{Budget: b, RangeM: 100, Trials: 50, ChipsPerTrial: 100, Seed: int64(i)}
	}
	cfgs[2].Trials = 0 // invalid
	cfgs[5].Trials = 0 // invalid, higher index
	var want string
	for _, workers := range []int{1, 2, 8} {
		_, err := RunCells(cfgs, workers)
		if err == nil {
			t.Fatalf("workers=%d: invalid cell accepted", workers)
		}
		if want == "" {
			want = err.Error()
		} else if err.Error() != want {
			t.Errorf("workers=%d: error %q, want %q", workers, err.Error(), want)
		}
	}
}

// TestRunCellDeterminismUnderTelemetry verifies the telemetry contract:
// instrumenting the harness observes counters but never perturbs the
// seeded trial stream.
func TestRunCellDeterminismUnderTelemetry(t *testing.T) {
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	b := core.NewLinkBudget(env, d)
	cfg := TrialConfig{
		Budget: b, RangeM: 200, Trials: 300,
		ChipsPerTrial: 392, Seed: 99,
	}
	bare, err := RunCell(cfg)
	if err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	Instrument(reg)
	defer Instrument(nil) // Instrument(nil) is a no-op; reset vars below
	defer func() {
		metTrials, metChips, metChipErrors = nil, nil, nil
		metLostFrames, metCells, metCellTime = nil, nil, nil
	}()
	instrumented, err := RunCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bare != instrumented {
		t.Errorf("telemetry perturbed the cell:\n bare %+v\ninstr %+v", bare, instrumented)
	}
	if got := reg.Snapshot(); len(got) == 0 {
		t.Error("instrumented run recorded nothing")
	}
	var trials float64
	for _, s := range reg.Snapshot() {
		if s.Name == "vab_sim_trials_total" {
			trials = s.Value
		}
	}
	if trials != float64(cfg.Trials) {
		t.Errorf("vab_sim_trials_total = %g, want %d", trials, cfg.Trials)
	}
}
