// Package sim is the experiment harness: seeded Monte-Carlo trial runners
// over the analytic link-budget tier, sweep utilities, aggregate statistics
// with binomial confidence intervals, and text/CSV table rendering for the
// paper-style outputs.
//
// One "trial" models one transmitted frame: the channel draws a fading
// realization (Rician, with the K-factor the budget derives from multipath
// geometry), every chip in the frame then errors independently at the
// instantaneous noncoherent-FSK probability, and the chip errors are
// counted. This mirrors how the paper reports its field campaign: BER
// aggregated over many frames per location.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"vab/internal/core"
	"vab/internal/dsp"
	"vab/internal/phy"
	"vab/internal/telemetry"
)

// TrialConfig sets up a Monte-Carlo cell.
type TrialConfig struct {
	Budget        *core.LinkBudget
	RangeM        float64
	Trials        int // frames
	ChipsPerTrial int
	Seed          int64
}

// CellResult aggregates one Monte-Carlo cell.
type CellResult struct {
	RangeM     float64
	Trials     int
	Chips      int
	ChipErrors int
	BER        float64
	BERLow     float64 // 95% Wilson interval
	BERHigh    float64
	FrameLoss  float64 // fraction of frames with any uncorrectable burst (BER>threshold proxy)
	MeanSNRdB  float64
}

// RunCell executes one Monte-Carlo cell.
func RunCell(cfg TrialConfig) (CellResult, error) {
	if cfg.Budget == nil {
		return CellResult{}, fmt.Errorf("sim: budget required")
	}
	if err := cfg.Budget.Validate(); err != nil {
		return CellResult{}, err
	}
	if cfg.Trials < 1 || cfg.ChipsPerTrial < 1 {
		return CellResult{}, fmt.Errorf("sim: trials %d and chips %d must be positive", cfg.Trials, cfg.ChipsPerTrial)
	}
	sp := telemetry.StartSpan(metCellTime)
	rng := rand.New(rand.NewSource(cfg.Seed))
	meanSNR := math.Pow(10, cfg.Budget.ToneSNRdB(cfg.RangeM)/10)
	k := cfg.Budget.EffectiveRicianK(cfg.RangeM)

	res := CellResult{RangeM: cfg.RangeM, Trials: cfg.Trials}
	var snrSum float64
	lostFrames := 0
	for trial := 0; trial < cfg.Trials; trial++ {
		fade := RicianPowerGain(k, rng)
		snr := meanSNR * fade
		snrSum += snr
		p := phy.BERNoncoherentFSK(snr)
		errs := binomial(cfg.ChipsPerTrial, p, rng)
		res.Chips += cfg.ChipsPerTrial
		res.ChipErrors += errs
		// A frame is lost when errors exceed what the Hamming(7,4) +
		// interleaving pipeline can absorb: more than one error per
		// codeword on average, i.e. > chips/14 errors (7-bit codewords at
		// 2 chips per bit).
		if errs > cfg.ChipsPerTrial/14 {
			lostFrames++
		}
	}
	res.BER = float64(res.ChipErrors) / float64(res.Chips)
	res.BERLow, res.BERHigh = dsp.WilsonCI(res.ChipErrors, res.Chips, 1.96)
	res.FrameLoss = float64(lostFrames) / float64(cfg.Trials)
	res.MeanSNRdB = 10 * math.Log10(snrSum/float64(cfg.Trials))
	metTrials.Add(int64(res.Trials))
	metChips.Add(int64(res.Chips))
	metChipErrors.Add(int64(res.ChipErrors))
	metLostFrames.Add(int64(lostFrames))
	metCells.Inc()
	sp.End()
	return res, nil
}

// RicianPowerGain draws a normalized power gain (mean 1) from a Rician
// distribution with K-factor k (linear). Infinite k returns 1.
func RicianPowerGain(k float64, rng *rand.Rand) float64 {
	if math.IsInf(k, 1) {
		return 1
	}
	if k < 0 {
		k = 0
	}
	spec := math.Sqrt(k / (k + 1))
	sigma := math.Sqrt(1 / (2 * (k + 1)))
	re := spec + sigma*rng.NormFloat64()
	im := sigma * rng.NormFloat64()
	return re*re + im*im
}

// binomial draws the number of successes out of n at probability p. For
// large n·p it uses a Gaussian approximation; the exact loop is kept for
// the small-probability regime where the approximation fails and the loop
// is cheap in expectation (inversion by geometric skips).
func binomial(n int, p float64, rng *rand.Rand) int {
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		return n
	}
	np := float64(n) * p
	if np > 30 && float64(n)*(1-p) > 30 {
		g := np + math.Sqrt(np*(1-p))*rng.NormFloat64()
		k := int(math.Round(g))
		if k < 0 {
			k = 0
		}
		if k > n {
			k = n
		}
		return k
	}
	if np < 1e-6 {
		// Expected successes are negligible: one Bernoulli draw on the
		// whole block avoids the log-underflow of the geometric method.
		if rng.Float64() < np {
			return 1
		}
		return 0
	}
	return geometricBinomial(n, math.Log1p(-p), rng.Float64)
}

// geometricBinomial counts successes by geometric skipping over failures:
// each uniform draw u yields floor(log(u)/log(1-p)) failures before the
// next success. Factored out so the u == 0 boundary is unit-testable
// without hunting for a seed whose Float64 stream hits exactly zero.
func geometricBinomial(n int, lq float64, next func() float64) int {
	k := 0
	i := 0
	for {
		u := next()
		if u <= 0 {
			// Float64 draws from [0, 1), so u can be exactly 0. log(0) is
			// -Inf and the resulting +Inf skip has no defined int
			// conversion; by continuity (u → 0⁺ means an unbounded failure
			// run) the draw skips past the block, ending the count.
			return k
		}
		i += int(math.Floor(math.Log(u)/lq)) + 1
		if i > n {
			return k
		}
		k++
	}
}

// RangeSweep runs cells across a set of ranges with a shared budget,
// deriving per-cell seeds deterministically from the base seed. The cells
// run on a RunCells pool of the given width (0 → NumCPU, 1 → serial); the
// results are bit-identical at every worker count since each cell owns its
// seed. The budget is only read, so sharing it across workers is safe.
func RangeSweep(b *core.LinkBudget, ranges []float64, trials, chipsPerTrial int, seed int64, workers int) ([]CellResult, error) {
	cfgs := make([]TrialConfig, len(ranges))
	for i, r := range ranges {
		cfgs[i] = TrialConfig{
			Budget: b, RangeM: r, Trials: trials,
			ChipsPerTrial: chipsPerTrial, Seed: seed + int64(i)*7919,
		}
	}
	return RunCells(cfgs, workers)
}

// OrientationSweep runs cells across node orientations at a fixed range on
// a RunCells pool (see RangeSweep for the worker contract). The budget is
// copied per cell so the caller's budget is untouched and no two workers
// share a mutable budget.
func OrientationSweep(b *core.LinkBudget, rangeM float64, thetas []float64, trials, chipsPerTrial int, seed int64, workers int) ([]CellResult, error) {
	cfgs := make([]TrialConfig, len(thetas))
	for i, th := range thetas {
		bb := *b
		bb.Orientation = th
		cfgs[i] = TrialConfig{
			Budget: &bb, RangeM: rangeM, Trials: trials,
			ChipsPerTrial: chipsPerTrial, Seed: seed + int64(i)*104729,
		}
	}
	return RunCells(cfgs, workers)
}
