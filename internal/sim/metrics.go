package sim

import "vab/internal/telemetry"

// Package-level metric handles: nil (free no-ops) until Instrument is
// called. Counters are atomic, so concurrent cells aggregate correctly;
// none of this touches the trial RNG, so seeded outputs are bit-identical
// with telemetry on or off.
var (
	metTrials      *telemetry.Counter
	metChips       *telemetry.Counter
	metChipErrors  *telemetry.Counter
	metLostFrames  *telemetry.Counter
	metCells       *telemetry.Counter
	metCellTime    *telemetry.Histogram
	metPoolWorkers *telemetry.Gauge
	metPoolCells   *telemetry.Counter
)

// Instrument registers Monte-Carlo harness metrics in reg and starts
// recording. Call once at startup, before any cells run: the handles are
// plain package variables, written here and only read afterwards.
func Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	metTrials = reg.Counter("vab_sim_trials_total",
		"Monte-Carlo trials (frames) simulated.")
	metChips = reg.Counter("vab_sim_chips_total",
		"Chips simulated across all trials.")
	metChipErrors = reg.Counter("vab_sim_chip_errors_total",
		"Chip errors drawn across all trials.")
	metLostFrames = reg.Counter("vab_sim_frames_lost_total",
		"Frames whose chip errors exceeded the FEC budget.")
	metCells = reg.Counter("vab_sim_cells_total",
		"Monte-Carlo cells completed.")
	metCellTime = reg.Histogram("vab_sim_cell_seconds",
		"Wall time of one Monte-Carlo cell.", nil)
	metPoolWorkers = reg.Gauge("vab_sim_pool_workers",
		"Worker count of the most recent parallel RunCells batch.")
	metPoolCells = reg.Counter("vab_sim_pool_cells_total",
		"Monte-Carlo cells completed through the parallel pool.")
}
