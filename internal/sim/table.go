package sim

import (
	"fmt"
	"strings"
)

// Table accumulates rows for paper-style text output: fixed header, aligned
// columns, and CSV export for downstream plotting.
type Table struct {
	Title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, headers: headers}
}

// AddRow appends a row; cells beyond the header count are dropped, missing
// cells render empty.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// AddRowf appends a row of formatted values: each argument is rendered with
// %v unless it is a float64, which renders compactly.
func (t *Table) AddRowf(cells ...interface{}) {
	str := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			str[i] = FormatFloat(v)
		default:
			str[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(str...)
}

// FormatFloat renders a float compactly: scientific for very small/large
// magnitudes, fixed otherwise.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av < 1e-3 || av >= 1e6:
		return fmt.Sprintf("%.2e", v)
	case av < 1:
		return fmt.Sprintf("%.4f", v)
	case av < 100:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.1f", v)
	}
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the aligned text table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (quotes only when needed).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
