package sim

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"vab/internal/core"
	"vab/internal/ocean"
	"vab/internal/phy"
)

func riverBudget(t *testing.T) *core.LinkBudget {
	t.Helper()
	env := ocean.CharlesRiver()
	d, err := core.NewVanAttaDesign(core.DefaultNodeElements, env, core.DefaultCarrierHz)
	if err != nil {
		t.Fatal(err)
	}
	return core.NewLinkBudget(env, d)
}

func TestRunCellValidation(t *testing.T) {
	if _, err := RunCell(TrialConfig{}); err == nil {
		t.Error("nil budget accepted")
	}
	b := riverBudget(t)
	if _, err := RunCell(TrialConfig{Budget: b, RangeM: 100, Trials: 0, ChipsPerTrial: 10}); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := RunCell(TrialConfig{Budget: b, RangeM: 100, Trials: 5, ChipsPerTrial: 0}); err == nil {
		t.Error("zero chips accepted")
	}
}

func TestRunCellMatchesAnalyticBER(t *testing.T) {
	// With enough trials, the Monte-Carlo BER must converge to the
	// budget's analytic prediction.
	// Ranges where the analytic BER is large enough (≥5e-4) that 6000
	// trials sample the fade tail adequately; deeper into the tail the
	// estimator needs prohibitively many trials (errors concentrate in
	// rare deep-fade trials).
	b := riverBudget(t)
	for _, r := range []float64{250, 320, 400} {
		cell, err := RunCell(TrialConfig{
			Budget: b, RangeM: r, Trials: 6000, ChipsPerTrial: 400, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		want := b.BER(r)
		if cell.BER < want/2 || cell.BER > want*2 {
			t.Errorf("r=%v: MC BER %.3g vs analytic %.3g", r, cell.BER, want)
		}
		// The Wilson interval is computed over chips, which share a fade
		// within each trial, so it understates the trial-level spread; it
		// is reported for relative comparisons, not absolute coverage.
		// Here just check ordering sanity.
		if !(cell.BERLow <= cell.BER && cell.BER <= cell.BERHigh) {
			t.Errorf("r=%v: CI [%.3g, %.3g] does not bracket the estimate %.3g", r, cell.BERLow, cell.BERHigh, cell.BER)
		}
	}
}

func TestRunCellDeterministic(t *testing.T) {
	b := riverBudget(t)
	cfg := TrialConfig{Budget: b, RangeM: 200, Trials: 200, ChipsPerTrial: 100, Seed: 42}
	a, err := RunCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c, err := RunCell(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != c {
		t.Error("same seed must reproduce identical results")
	}
	cfg.Seed = 43
	d, _ := RunCell(cfg)
	if a == d {
		t.Error("different seeds should differ")
	}
}

func TestRicianPowerGainStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, k := range []float64{0, 1, 10} {
		var sum float64
		n := 200000
		for i := 0; i < n; i++ {
			sum += RicianPowerGain(k, rng)
		}
		mean := sum / float64(n)
		if math.Abs(mean-1) > 0.02 {
			t.Errorf("K=%v: mean power gain %v, want 1", k, mean)
		}
	}
	if RicianPowerGain(math.Inf(1), rng) != 1 {
		t.Error("infinite K should be static")
	}
	// Negative K clamps to Rayleigh rather than producing NaNs.
	if g := RicianPowerGain(-3, rng); math.IsNaN(g) || g < 0 {
		t.Errorf("negative K produced %v", g)
	}
}

func TestRicianFadeDepthOrdering(t *testing.T) {
	// Low-K channels fade much deeper: P(gain < 0.1) should be clearly
	// larger for K=0 than for K=10.
	count := func(k float64) int {
		rng := rand.New(rand.NewSource(9))
		c := 0
		for i := 0; i < 50000; i++ {
			if RicianPowerGain(k, rng) < 0.1 {
				c++
			}
		}
		return c
	}
	if r, s := count(0), count(10); r < 10*s {
		t.Errorf("deep-fade counts: Rayleigh %d vs K=10 %d", r, s)
	}
}

func TestBinomialStatisticsProperty(t *testing.T) {
	f := func(seed int64, pRaw uint16, nRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(nRaw)%2000 + 1
		p := float64(pRaw) / 65535
		k := binomial(n, p, rng)
		return k >= 0 && k <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
	// Mean check in both regimes (small-p loop and Gaussian branch).
	for _, tc := range []struct {
		n int
		p float64
	}{{10000, 0.001}, {10000, 0.3}} {
		rng := rand.New(rand.NewSource(3))
		var sum float64
		trials := 3000
		for i := 0; i < trials; i++ {
			sum += float64(binomial(tc.n, tc.p, rng))
		}
		mean := sum / float64(trials)
		want := float64(tc.n) * tc.p
		if math.Abs(mean-want) > 0.05*want+1 {
			t.Errorf("n=%d p=%v: mean %v, want %v", tc.n, tc.p, mean, want)
		}
	}
	if binomial(10, 0, nil) != 0 || binomial(10, 1, nil) != 10 {
		t.Error("degenerate probabilities wrong")
	}
}

// TestGeometricBinomialZeroDraw pins the u == 0 boundary: rand.Float64
// draws from [0, 1), and log(0) = -Inf used to leave the geometric skip
// undefined (a float→int conversion of +Inf). A zero draw must terminate
// the count — it is the u → 0⁺ limit of an unbounded failure run — and
// never loop or return an out-of-range count.
func TestGeometricBinomialZeroDraw(t *testing.T) {
	lq := math.Log1p(-0.01) // p = 0.01

	// Zero on the very first draw: no successes land.
	if k := geometricBinomial(1000, lq, func() float64 { return 0 }); k != 0 {
		t.Errorf("immediate zero draw: k = %d, want 0", k)
	}

	// Zero after a few successes: the count up to the zero draw survives.
	draws := []float64{0.5, 0.5, 0}
	i := 0
	next := func() float64 { v := draws[i]; i++; return v }
	k := geometricBinomial(1000, lq, next)
	if k != 2 {
		t.Errorf("zero after two successes: k = %d, want 2", k)
	}

	// The result must stay in [0, n] even when every draw is pathological.
	if k := geometricBinomial(3, lq, func() float64 { return math.SmallestNonzeroFloat64 }); k < 0 || k > 3 {
		t.Errorf("denormal draws: k = %d out of [0, 3]", k)
	}
}

func TestRangeSweepShape(t *testing.T) {
	b := riverBudget(t)
	ranges := []float64{50, 150, 300, 450}
	cells, err := RangeSweep(b, ranges, 500, 200, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != len(ranges) {
		t.Fatalf("got %d cells", len(cells))
	}
	// BER should grow with range overall (allow sampling noise at the
	// low-BER end by comparing first to last).
	if cells[0].BER >= cells[len(cells)-1].BER {
		t.Errorf("BER did not grow across the sweep: %v → %v", cells[0].BER, cells[len(cells)-1].BER)
	}
	for i, c := range cells {
		if c.RangeM != ranges[i] {
			t.Error("range column wrong")
		}
		if c.MeanSNRdB == 0 {
			t.Error("missing SNR")
		}
	}
}

func TestOrientationSweepDoesNotMutateBudget(t *testing.T) {
	b := riverBudget(t)
	before := b.Orientation
	cells, err := OrientationSweep(b, 100, []float64{0, 0.5, 1.0}, 100, 100, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 3 {
		t.Fatal("cell count")
	}
	if b.Orientation != before {
		t.Error("sweep mutated the caller's budget")
	}
	// Van Atta: orientation barely matters.
	if math.Abs(cells[0].MeanSNRdB-cells[2].MeanSNRdB) > 1.5 {
		t.Errorf("van atta orientation SNR moved: %v vs %v", cells[0].MeanSNRdB, cells[2].MeanSNRdB)
	}
}

func TestFrameLossTracksBER(t *testing.T) {
	b := riverBudget(t)
	near, err := RunCell(TrialConfig{Budget: b, RangeM: 50, Trials: 300, ChipsPerTrial: 392, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	far, err := RunCell(TrialConfig{Budget: b, RangeM: 450, Trials: 300, ChipsPerTrial: 392, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if near.FrameLoss > far.FrameLoss {
		t.Errorf("frame loss near %v > far %v", near.FrameLoss, far.FrameLoss)
	}
}

func TestEbN0SanityAgainstPHYModels(t *testing.T) {
	// The harness should reproduce the textbook AWGN curve when fading is
	// disabled via an infinite K override.
	b := riverBudget(t)
	b.RicianOverride = math.Inf(1)
	r := 250.0
	cell, err := RunCell(TrialConfig{Budget: b, RangeM: r, Trials: 3000, ChipsPerTrial: 500, Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	want := phy.BERNoncoherentFSK(math.Pow(10, b.ToneSNRdB(r)/10))
	if want > 1e-5 && (cell.BER < want/1.5 || cell.BER > want*1.5) {
		t.Errorf("AWGN MC %.3g vs analytic %.3g", cell.BER, want)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "range", "ber")
	tb.AddRowf(100.0, 0.00123)
	tb.AddRowf(300.0, 1.5e-7)
	tb.AddRow("extra", "cell", "dropped")
	out := tb.String()
	if !strings.Contains(out, "Demo") || !strings.Contains(out, "range") {
		t.Error("missing header")
	}
	if !strings.Contains(out, "1.50e-07") {
		t.Errorf("scientific formatting missing:\n%s", out)
	}
	if tb.Rows() != 3 {
		t.Error("row count")
	}
	csv := tb.CSV()
	if !strings.HasPrefix(csv, "range,ber\n") {
		t.Errorf("csv header wrong: %q", csv)
	}
	// Quoting.
	tb2 := NewTable("", "a")
	tb2.AddRow(`with,comma "q"`)
	if !strings.Contains(tb2.CSV(), `"with,comma ""q"""`) {
		t.Errorf("csv quoting wrong: %q", tb2.CSV())
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.5:     "0.5000",
		12.345:  "12.35",
		1234.5:  "1234.5",
		1e-6:    "1.00e-06",
		2.5e7:   "2.50e+07",
		-0.0001: "-1.00e-04",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}
