package telemetry

import "time"

// Span times one region of code into a histogram of seconds. The zero
// Span (and any span started against a nil histogram) is inert: no clock
// read on start, no observation on End. Spans are values, so tracing a
// pipeline costs no allocation:
//
//	sp := telemetry.StartSpan(fftSeconds)
//	... work ...
//	sp.End()
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing into h. A nil h returns the inert zero Span
// without reading the clock — the disabled path is a single branch.
func StartSpan(h *Histogram) Span {
	if h == nil {
		return Span{}
	}
	return Span{h: h, start: time.Now()}
}

// End records the elapsed seconds. Safe to call on the zero Span and safe
// to call more than once (each call records from the same start).
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.Observe(time.Since(s.start).Seconds())
}

// Tracer labels spans by pipeline stage: each stage gets its own
// `<name>{stage="<stage>"}` histogram so a scrape shows where a system
// round spends its time (modulate → channel → acquire → demod → decode).
// A nil *Tracer (from a nil registry) yields inert spans.
type Tracer struct {
	reg    *Registry
	name   string
	help   string
	bounds []float64
}

// NewTracer builds a stage tracer over reg. Returns nil when reg is nil.
func NewTracer(reg *Registry, name, help string, bounds []float64) *Tracer {
	if reg == nil {
		return nil
	}
	return &Tracer{reg: reg, name: name, help: help, bounds: bounds}
}

// Stage starts a span for one named pipeline stage.
func (t *Tracer) Stage(stage string) Span {
	if t == nil {
		return Span{}
	}
	return StartSpan(t.reg.Histogram(Label(t.name, "stage", stage), t.help, t.bounds))
}
