package telemetry

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution with a lock-free Observe path:
// one atomic add into the bucket the value falls in, one atomic add on the
// count and a CAS loop on the float64 sum. Bounds are upper bucket edges
// in ascending order (Prometheus `le` semantics); an implicit +Inf bucket
// catches everything above the last bound. A nil *Histogram is a valid
// noop.
type Histogram struct {
	name   string
	help   string
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1, last = +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

// DefBuckets spans 100 µs to ~100 s in half-decade steps — wide enough for
// both per-FFT timings and whole-experiment wall clocks.
func DefBuckets() []float64 {
	return ExpBuckets(1e-4, math.Sqrt(10), 13)
}

// ExpBuckets returns n log-spaced upper bounds starting at start and
// growing by factor: the log-bucketed layout the hot paths use (constant
// relative resolution across decades). start and factor must be positive
// with factor > 1; invalid arguments fall back to a single-bucket layout
// rather than panicking on the metrics path.
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		return []float64{1}
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// LinearBuckets returns n bounds start, start+width, … — for quantities
// like SNR in dB where log spacing makes no sense.
func LinearBuckets(start, width float64, n int) []float64 {
	if n < 1 || width <= 0 {
		return []float64{start}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = start + float64(i)*width
	}
	return out
}

func newHistogram(name, help string, bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = DefBuckets()
	}
	b := make([]float64, 0, len(bounds))
	for i, v := range bounds {
		if i > 0 && v <= b[len(b)-1] {
			continue // drop non-ascending bounds instead of panicking
		}
		b = append(b, v)
	}
	return &Histogram{
		name:   name,
		help:   help,
		bounds: b,
		counts: make([]atomic.Uint64, len(b)+1),
	}
}

// Observe records one value. NaN is dropped (a NaN sum would poison the
// whole series).
func (h *Histogram) Observe(v float64) {
	if h == nil || math.IsNaN(v) {
		return
	}
	// Binary search for the first bound >= v; short linear scan is faster
	// for the typical <20-bucket layouts but binary keeps worst case flat.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 for nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 for nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// snapshot copies the per-bucket counts, sum and total count.
func (h *Histogram) snapshot() (counts []uint64, sum float64, count uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.Sum(), h.count.Load()
}
