package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilRegistryIsNoop(t *testing.T) {
	var r *Registry
	c := r.Counter("c", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", nil)
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry must hand out nil metrics")
	}
	// Every operation on the nil handles must be safe.
	c.Inc()
	c.Add(5)
	g.Set(1)
	g.Add(-1)
	h.Observe(3)
	sp := StartSpan(h)
	sp.End()
	var tr *Tracer
	tr.Stage("acquire").End()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil metrics must read as zero")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot must be nil")
	}
	if NewTracer(nil, "x", "", nil) != nil {
		t.Error("nil registry must yield nil tracer")
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vab_test_total", "test counter")
	c.Inc()
	c.Add(41)
	c.Add(-10) // ignored: counters are monotonic
	if got := c.Value(); got != 42 {
		t.Errorf("counter = %d, want 42", got)
	}
	if again := r.Counter("vab_test_total", ""); again != c {
		t.Error("same name must return the same counter")
	}

	g := r.Gauge("vab_test_gauge", "test gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
}

func TestKindMismatchReturnsDetached(t *testing.T) {
	r := NewRegistry()
	r.Counter("name", "")
	g := r.Gauge("name", "")
	if g == nil {
		t.Fatal("mismatched kind must still return a usable metric")
	}
	g.Set(7) // must not corrupt the registered counter
	snaps := r.Snapshot()
	if len(snaps) != 1 || snaps[0].Kind != KindCounter {
		t.Errorf("registry corrupted by kind mismatch: %+v", snaps)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 2, 50, 1000, math.NaN()} {
		h.Observe(v)
	}
	counts, sum, count := h.snapshot()
	want := []uint64{2, 1, 1, 1} // ≤1: {0.5, 1}; ≤10: {2}; ≤100: {50}; +Inf: {1000}
	if len(counts) != len(want) {
		t.Fatalf("bucket count %d, want %d", len(counts), len(want))
	}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket[%d] = %d, want %d", i, counts[i], want[i])
		}
	}
	if count != 5 {
		t.Errorf("count = %d, want 5 (NaN dropped)", count)
	}
	if sum != 1053.5 {
		t.Errorf("sum = %g, want 1053.5", sum)
	}
}

func TestExpAndLinearBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("ExpBuckets = %v", b)
		}
	}
	l := LinearBuckets(-10, 5, 3)
	if l[0] != -10 || l[1] != -5 || l[2] != 0 {
		t.Fatalf("LinearBuckets = %v", l)
	}
	// Degenerate arguments must not panic and must stay usable.
	if len(ExpBuckets(-1, 2, 3)) == 0 || len(LinearBuckets(0, -1, 3)) == 0 {
		t.Error("degenerate bucket args must fall back, not vanish")
	}
}

func TestConcurrentHammering(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hits", "")
	g := r.Gauge("level", "")
	h := r.Histogram("obs", "", ExpBuckets(1e-3, 10, 6))
	const workers, per = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%1000) / 100)
				// Snapshots race the writers on purpose: they must never
				// tear a value or crash.
				if i%500 == 0 {
					r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	const total = workers * per
	if c.Value() != total {
		t.Errorf("counter lost updates: %d != %d", c.Value(), total)
	}
	if g.Value() != total {
		t.Errorf("gauge lost updates: %g != %d", g.Value(), total)
	}
	counts, _, count := h.snapshot()
	if count != total {
		t.Errorf("histogram count %d != %d", count, total)
	}
	var bucketSum uint64
	for _, n := range counts {
		bucketSum += n
	}
	if bucketSum != count {
		t.Errorf("snapshot inconsistent at quiescence: buckets %d, count %d", bucketSum, count)
	}
}

func TestSpanObservesElapsed(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t", "", nil)
	sp := StartSpan(h)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	if h.Count() != 1 {
		t.Fatalf("span recorded %d observations", h.Count())
	}
	if s := h.Sum(); s < 0.001 || s > 5 {
		t.Errorf("span sum %g implausible", s)
	}
}

func TestTracerLabelsStages(t *testing.T) {
	r := NewRegistry()
	tr := NewTracer(r, "vab_round_stage_seconds", "stage timing", nil)
	tr.Stage("acquire").End()
	tr.Stage("demod").End()
	tr.Stage("acquire").End()
	var acquire *Snapshot
	for _, s := range r.Snapshot() {
		if s.Name == `vab_round_stage_seconds{stage="acquire"}` {
			cp := s
			acquire = &cp
		}
	}
	if acquire == nil || acquire.Count != 2 {
		t.Fatalf("acquire stage snapshot missing or wrong: %+v", acquire)
	}
}

func TestLabelMergesAndEscapes(t *testing.T) {
	if got := Label("m", "k", "v"); got != `m{k="v"}` {
		t.Errorf("Label = %s", got)
	}
	if got := Label(`m{a="1"}`, "b", "2"); got != `m{a="1",b="2"}` {
		t.Errorf("merged Label = %s", got)
	}
	if got := Label("m", "k", `a"b\c`); got != `m{k="a\"b\\c"}` {
		t.Errorf("escaped Label = %s", got)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("vab_frames_total", "frames").Add(3)
	r.Gauge("vab_subs", "subscribers").Set(2)
	h := r.Histogram(Label("vab_stage_seconds", "stage", "fft"), "timing", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(20)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE vab_frames_total counter",
		"vab_frames_total 3",
		"# TYPE vab_subs gauge",
		"vab_subs 2",
		"# TYPE vab_stage_seconds histogram",
		`vab_stage_seconds_bucket{stage="fft",le="1"} 1`,
		`vab_stage_seconds_bucket{stage="fft",le="10"} 1`,
		`vab_stage_seconds_bucket{stage="fft",le="+Inf"} 2`,
		`vab_stage_seconds_sum{stage="fft"} 20.5`,
		`vab_stage_seconds_count{stage="fft"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q in:\n%s", want, out)
		}
	}
}

func BenchmarkCounterInc(b *testing.B) {
	r := NewRegistry()
	c := r.Counter("bench", "")
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkNilCounterInc(b *testing.B) {
	var c *Counter
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench", "", nil)
	b.RunParallel(func(pb *testing.PB) {
		i := 0.0
		for pb.Next() {
			h.Observe(i)
			i += 1e-5
		}
	})
}

func BenchmarkNilSpan(b *testing.B) {
	for i := 0; i < b.N; i++ {
		StartSpan(nil).End()
	}
}
