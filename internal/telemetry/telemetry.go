// Package telemetry is the observability layer of the VAB stack: a
// zero-dependency metrics registry (atomic counters, gauges and
// log-bucketed histograms), lightweight span timers for tracing a system
// round through its pipeline stages, and an HTTP ops endpoint exposing
// Prometheus text format, health and pprof.
//
// The package is noop-by-default: every constructor accepts a nil
// *Registry and returns nil metrics, and every method is safe to call on a
// nil receiver at negligible cost (a single pointer test, no time.Now, no
// allocation). Instrumented packages therefore carry their metric handles
// unconditionally and pay nothing until an operator opts in with an actual
// registry — seeded experiment outputs and the hot DSP paths are
// bit-identical either way.
//
// Metric names follow Prometheus conventions (`vab_<subsystem>_<what>_<unit>`)
// and may embed label pairs directly: Label("x_seconds", "stage", "fft")
// yields `x_seconds{stage="fft"}`, which the exposition layer merges into
// well-formed series.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric types in snapshots and exposition.
type Kind uint8

// Metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// Counter is a monotonically increasing metric. The zero value is ready to
// use; a nil *Counter is a valid noop.
type Counter struct {
	name string
	help string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative n is ignored: counters only go
// up).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as float64 bits with
// lock-free updates. A nil *Gauge is a valid noop.
type Gauge struct {
	name string
	help string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by delta via a CAS loop.
func (g *Gauge) Add(delta float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// metric is the union the registry stores.
type metric struct {
	kind Kind
	c    *Counter
	g    *Gauge
	h    *Histogram
}

// Registry holds named metrics. All methods are safe for concurrent use
// and safe on a nil receiver (returning nil metrics), which is how the
// default-off contract propagates through the stack.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]metric)}
}

// Counter returns the counter registered under name, creating it on first
// use. Returns nil when r is nil. If name is already registered as a
// different kind, a detached (unregistered but functional) counter is
// returned rather than corrupting the exposition.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind == KindCounter {
			return m.c
		}
		return &Counter{name: name, help: help}
	}
	c := &Counter{name: name, help: help}
	r.metrics[name] = metric{kind: KindCounter, c: c}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
// Nil-registry and kind-mismatch behavior match Counter.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind == KindGauge {
			return m.g
		}
		return &Gauge{name: name, help: help}
	}
	g := &Gauge{name: name, help: help}
	r.metrics[name] = metric{kind: KindGauge, g: g}
	return g
}

// Histogram returns the histogram registered under name, creating it with
// the given upper bucket bounds on first use (nil bounds → DefBuckets).
// Nil-registry and kind-mismatch behavior match Counter.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.kind == KindHistogram {
			return m.h
		}
		return newHistogram(name, help, bounds)
	}
	h := newHistogram(name, help, bounds)
	r.metrics[name] = metric{kind: KindHistogram, h: h}
	return h
}

// Label renders name{k="v"}, merging into an existing label set when name
// already carries one. Values are escaped per the Prometheus text format.
func Label(name, k, v string) string {
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(v)
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return fmt.Sprintf(`%s,%s="%s"}`, name[:len(name)-1], k, esc)
	}
	return fmt.Sprintf(`%s{%s="%s"}`, name, k, esc)
}

// splitName separates a possibly-labeled series name into the bare metric
// name and the inner label list ("" when unlabeled).
func splitName(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// Snapshot is a point-in-time copy of one metric.
type Snapshot struct {
	Name  string
	Help  string
	Kind  Kind
	Value float64 // counter/gauge value; histograms use the fields below

	// Histogram-only fields. Counts are per-bucket (non-cumulative),
	// aligned with Bounds; the final slot counts observations above the
	// last bound.
	Bounds []float64
	Counts []uint64
	Sum    float64
	Count  uint64
}

// Snapshot copies every registered metric, sorted by name. Safe on nil
// (returns nil). Each scalar is read atomically; histogram buckets are
// read individually, so a snapshot taken mid-hammer may straddle
// concurrent observations but never tears a single value.
func (r *Registry) Snapshot() []Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	ms := make([]metric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		ms = append(ms, r.metrics[n])
	}
	r.mu.Unlock()

	out := make([]Snapshot, 0, len(names))
	for i, m := range ms {
		s := Snapshot{Name: names[i], Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Help = m.c.help
			s.Value = float64(m.c.Value())
		case KindGauge:
			s.Help = m.g.help
			s.Value = m.g.Value()
		case KindHistogram:
			s.Help = m.h.help
			s.Bounds = m.h.bounds
			s.Counts, s.Sum, s.Count = m.h.snapshot()
		}
		out = append(out, s)
	}
	return out
}
