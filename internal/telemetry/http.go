package telemetry

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4). Labeled series created via Label are
// merged under one HELP/TYPE header per base metric name; histogram
// buckets are emitted cumulatively with the `le` label appended after any
// existing labels.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	seen := make(map[string]bool)
	for _, s := range r.Snapshot() {
		base, labels := splitName(s.Name)
		if !seen[base] {
			seen[base] = true
			if s.Help != "" {
				fmt.Fprintf(bw, "# HELP %s %s\n", base, s.Help)
			}
			fmt.Fprintf(bw, "# TYPE %s %s\n", base, s.Kind)
		}
		switch s.Kind {
		case KindCounter, KindGauge:
			fmt.Fprintf(bw, "%s %s\n", s.Name, formatFloat(s.Value))
		case KindHistogram:
			var cum uint64
			for i, c := range s.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.Bounds) {
					le = formatFloat(s.Bounds[i])
				}
				fmt.Fprintf(bw, "%s %d\n", series(base, labels, "_bucket", `le="`+le+`"`), cum)
			}
			fmt.Fprintf(bw, "%s %s\n", series(base, labels, "_sum", ""), formatFloat(s.Sum))
			fmt.Fprintf(bw, "%s %d\n", series(base, labels, "_count", ""), s.Count)
		}
	}
	return bw.Flush()
}

// series joins base+suffix with merged label lists.
func series(base, labels, suffix, extra string) string {
	switch {
	case labels == "" && extra == "":
		return base + suffix
	case labels == "":
		return base + suffix + "{" + extra + "}"
	case extra == "":
		return base + suffix + "{" + labels + "}"
	}
	return base + suffix + "{" + labels + "," + extra + "}"
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// NewHandler returns the ops mux: /metrics (Prometheus text), /healthz,
// and the pprof suite under /debug/pprof/. It works with a nil registry
// (serving an empty metrics page), so a command can expose pprof alone.
func NewHandler(reg *Registry) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg != nil {
			reg.WritePrometheus(w)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// OpsServer is a running metrics/health/pprof endpoint.
type OpsServer struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the ops endpoint on addr (e.g. "127.0.0.1:9090" or
// "127.0.0.1:0"). The server stops when ctx is cancelled or Close is
// called.
func Serve(ctx context.Context, addr string, reg *Registry) (*OpsServer, error) {
	var lc net.ListenConfig
	ln, err := lc.Listen(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	o := &OpsServer{
		ln: ln,
		srv: &http.Server{
			Handler:           NewHandler(reg),
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go o.srv.Serve(ln)
	// Tie the lifetime to the context like gateway.NewServer does.
	context.AfterFunc(ctx, func() { o.Close() })
	return o, nil
}

// Addr returns the bound listen address.
func (o *OpsServer) Addr() net.Addr { return o.ln.Addr() }

// Close shuts the endpoint down. Idempotent.
func (o *OpsServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	return o.srv.Shutdown(ctx)
}
