package telemetry

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetricsAndHealth(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("vab_up_total", "").Add(9)
	srv := httptest.NewServer(NewHandler(reg))
	defer srv.Close()

	body := get(t, srv.URL+"/metrics")
	if !strings.Contains(body, "vab_up_total 9") {
		t.Errorf("/metrics missing counter:\n%s", body)
	}
	if got := get(t, srv.URL+"/healthz"); got != "ok\n" {
		t.Errorf("/healthz = %q", got)
	}
	// pprof index must be wired in.
	if body := get(t, srv.URL+"/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Error("/debug/pprof/ not serving")
	}
}

func TestHandlerNilRegistry(t *testing.T) {
	srv := httptest.NewServer(NewHandler(nil))
	defer srv.Close()
	if body := get(t, srv.URL+"/metrics"); body != "" {
		t.Errorf("nil registry /metrics = %q, want empty", body)
	}
}

func TestServeLifecycle(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	reg := NewRegistry()
	reg.Gauge("g", "").Set(1)
	ops, err := Serve(ctx, "127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	url := fmt.Sprintf("http://%s/metrics", ops.Addr())
	if body := get(t, url); !strings.Contains(body, "g 1") {
		t.Errorf("live scrape missing gauge:\n%s", body)
	}
	if err := ops.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ops.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := http.Get(url); err == nil {
		t.Error("endpoint still serving after close")
	}
}

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
