package dsp

import (
	"math"
	"math/cmplx"
	"sync"
)

// FFT plan cache. Every transform size seen at runtime gets one immutable
// plan — precomputed bit-reversal permutation and twiddle tables for
// radix-2 sizes, plus the chirp and its forward spectrum for Bluestein
// sizes — shared by all goroutines through a sync.Map. Plans are built once
// (a cache miss) and only read afterwards, so concurrent FFTs never
// contend; the scratch buffers the transforms need come from a sync.Pool,
// making the steady-state hot path allocation-free.

// radix2Plan holds the precomputed tables for one power-of-two transform
// size. Immutable after construction; safe for concurrent use.
type radix2Plan struct {
	n    int
	perm []int32      // bit-reversal permutation (an involution)
	wFwd []complex128 // wFwd[k] = exp(-2πik/n), k < n/2
	wInv []complex128 // conjugate twiddles for the inverse transform
}

func newRadix2Plan(n int) *radix2Plan {
	p := &radix2Plan{
		n:    n,
		perm: make([]int32, n),
		wFwd: make([]complex128, n/2),
		wInv: make([]complex128, n/2),
	}
	for i := 1; i < n; i++ {
		p.perm[i] = p.perm[i>>1]>>1 | int32(i&1)*int32(n>>1)
	}
	for k := 0; k < n/2; k++ {
		w := cmplx.Rect(1, -Tau*float64(k)/float64(n))
		p.wFwd[k] = w
		p.wInv[k] = cmplx.Conj(w)
	}
	return p
}

// inPlace runs the unnormalized transform on x (len must equal p.n).
func (p *radix2Plan) inPlace(x []complex128, inverse bool) {
	for i := 1; i < p.n; i++ {
		if j := int(p.perm[i]); i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	p.butterflies(x, inverse)
}

// into runs the unnormalized transform of src into dst (equal lengths,
// non-overlapping unless identical).
func (p *radix2Plan) into(dst, src []complex128, inverse bool) {
	for i := 0; i < p.n; i++ {
		dst[i] = src[p.perm[i]]
	}
	p.butterflies(dst, inverse)
}

func (p *radix2Plan) butterflies(x []complex128, inverse bool) {
	n := p.n
	tw := p.wFwd
	if inverse {
		tw = p.wInv
	}
	for length := 2; length <= n; length <<= 1 {
		half := length >> 1
		stride := n / length
		for i := 0; i < n; i += length {
			ti := 0
			for j := i; j < i+half; j++ {
				u := x[j]
				v := x[j+half] * tw[ti]
				x[j] = u + v
				x[j+half] = u - v
				ti += stride
			}
		}
	}
}

// bluesteinPlan holds the precomputed chirp tables and convolution kernels
// for one arbitrary-length transform size, plus the radix-2 plan of the
// padded convolution length. Immutable after construction.
type bluesteinPlan struct {
	n, m     int
	pad      *radix2Plan
	chirpFwd []complex128 // exp(-iπk²/n), k < n
	chirpInv []complex128 // conjugates, for the inverse transform
	bFwd     []complex128 // forward FFT of the conj-chirp kernel (length m)
	bInv     []complex128 // same for the inverse transform's kernel
}

func newBluesteinPlan(n int) *bluesteinPlan {
	m := NextPow2(2*n - 1)
	p := &bluesteinPlan{
		n: n, m: m, pad: radix2PlanFor(m),
		chirpFwd: make([]complex128, n),
		chirpInv: make([]complex128, n),
	}
	for k := 0; k < n; k++ {
		// k² mod 2n avoids precision loss for large k.
		kk := (int64(k) * int64(k)) % int64(2*n)
		c := cmplx.Rect(1, -math.Pi*float64(kk)/float64(n))
		p.chirpFwd[k] = c
		p.chirpInv[k] = cmplx.Conj(c)
	}
	p.bFwd = p.kernelSpectrum(p.chirpFwd)
	p.bInv = p.kernelSpectrum(p.chirpInv)
	return p
}

// kernelSpectrum builds the circular-convolution kernel b (the conjugated
// chirp, wrapped) and returns its forward FFT.
func (p *bluesteinPlan) kernelSpectrum(chirp []complex128) []complex128 {
	b := make([]complex128, p.m)
	b[0] = cmplx.Conj(chirp[0])
	for k := 1; k < p.n; k++ {
		c := cmplx.Conj(chirp[k])
		b[k] = c
		b[p.m-k] = c
	}
	p.pad.inPlace(b, false)
	return b
}

// into computes the unnormalized DFT of src into dst (both length p.n; dst
// may alias src).
func (p *bluesteinPlan) into(dst, src []complex128, inverse bool) {
	chirp, kern := p.chirpFwd, p.bFwd
	if inverse {
		chirp, kern = p.chirpInv, p.bInv
	}
	s := getScratch(p.m)
	a := s.buf
	for k := 0; k < p.n; k++ {
		a[k] = src[k] * chirp[k]
	}
	for k := p.n; k < p.m; k++ {
		a[k] = 0
	}
	p.pad.inPlace(a, false)
	for i := range a {
		a[i] *= kern[i]
	}
	p.pad.inPlace(a, true)
	inv := complex(1/float64(p.m), 0) // undo unnormalized inverse
	for k := 0; k < p.n; k++ {
		dst[k] = a[k] * inv * chirp[k]
	}
	putScratch(s)
}

// Plan caches, keyed by transform size. sync.Map fits the access pattern
// exactly: written once per size, read on every transform thereafter.
var (
	radix2Plans    sync.Map // int → *radix2Plan
	bluesteinPlans sync.Map // int → *bluesteinPlan
)

func radix2PlanFor(n int) *radix2Plan {
	if v, ok := radix2Plans.Load(n); ok {
		metPlanHits.Inc()
		return v.(*radix2Plan)
	}
	metPlanMisses.Inc()
	p := newRadix2Plan(n)
	if v, loaded := radix2Plans.LoadOrStore(n, p); loaded {
		return v.(*radix2Plan)
	}
	return p
}

func bluesteinPlanFor(n int) *bluesteinPlan {
	if v, ok := bluesteinPlans.Load(n); ok {
		metPlanHits.Inc()
		return v.(*bluesteinPlan)
	}
	metPlanMisses.Inc()
	p := newBluesteinPlan(n)
	if v, loaded := bluesteinPlans.LoadOrStore(n, p); loaded {
		return v.(*bluesteinPlan)
	}
	return p
}

// scratch is a pooled work buffer. Holding the slice inside a pooled struct
// (rather than Put-ting the slice directly) keeps the steady state free of
// even the interface-boxing allocation.
type scratch struct{ buf []complex128 }

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// getScratch returns a pooled buffer of length n with arbitrary contents.
func getScratch(n int) *scratch {
	s := scratchPool.Get().(*scratch)
	if cap(s.buf) < n {
		s.buf = make([]complex128, n)
	}
	s.buf = s.buf[:n]
	return s
}

func putScratch(s *scratch) { scratchPool.Put(s) }
