package dsp

import (
	"fmt"
	"math"
)

// CFIR is a finite-impulse-response filter with complex taps, needed when a
// complex-baseband response must differ between positive and negative
// frequencies (a real-tap filter is always conjugate-symmetric). Streaming
// state is kept like FIR's.
type CFIR struct {
	taps  []complex128
	state []complex128 // previous len(taps)-1 inputs, oldest first
}

// NewCFIR builds a complex-tap filter (the taps slice is copied).
func NewCFIR(taps []complex128) *CFIR {
	if len(taps) == 0 {
		panic("dsp: NewCFIR requires at least one tap")
	}
	t := make([]complex128, len(taps))
	copy(t, taps)
	return &CFIR{taps: t, state: make([]complex128, len(taps)-1)}
}

// Reset clears the filter state.
func (f *CFIR) Reset() {
	for i := range f.state {
		f.state[i] = 0
	}
}

// Taps returns a copy of the filter's complex taps. The returned slice is
// the caller's to keep; it can seed NewCFIR to clone the filter design
// without re-running NoiseShapingFIR (the channel layer caches designed
// taps per environment and builds per-link filters from them).
func (f *CFIR) Taps() []complex128 {
	t := make([]complex128, len(f.taps))
	copy(t, f.taps)
	return t
}

// Process filters x into a fresh slice.
func (f *CFIR) Process(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	f.ProcessInto(out, x)
	return out
}

// ProcessInto filters x into dst (equal length).
//
// Aliasing contract: dst and x may be the SAME slice (in-place filtering,
// the channel noise shaper's steady-state path) because every input sample
// is copied into the state ring before its output slot is written, so the
// convolution only ever reads raw inputs from the ring, never from dst.
// Partially overlapping slices (dst sharing some but not all backing
// elements with x, at an offset) are NOT supported: a shifted write would
// overwrite inputs the ring has not yet captured. TestCFIRInPlace pins the
// identical-slice guarantee against the two-buffer reference.
func (f *CFIR) ProcessInto(dst, x []complex128) {
	if len(dst) != len(x) {
		panic("dsp: CFIR ProcessInto length mismatch")
	}
	nt := len(f.taps)
	ns := nt - 1
	if ns == 0 {
		g := f.taps[0]
		for i, v := range x {
			dst[i] = g * v
		}
		return
	}
	head := 0
	for i := 0; i < len(x); i++ {
		xi := x[i]
		acc := f.taps[0] * xi
		idx := head + ns - 1
		for k := 1; k < nt; k++ {
			j := idx - (k - 1)
			if j >= ns {
				j -= ns
			}
			if j < 0 {
				j += ns
			}
			acc += f.taps[k] * f.state[j]
		}
		f.state[head] = xi
		head++
		if head == ns {
			head = 0
		}
		dst[i] = acc
	}
	if head != 0 {
		rot := make([]complex128, ns)
		copy(rot, f.state[head:])
		copy(rot[ns-head:], f.state[:head])
		copy(f.state, rot)
	}
}

// FreqResponse evaluates the complex response at normalized frequency
// fNorm = f/fs ∈ [−0.5, 0.5).
func (f *CFIR) FreqResponse(fNorm float64) complex128 {
	var acc complex128
	for k, t := range f.taps {
		ang := -Tau * fNorm * float64(k)
		acc += t * complex(math.Cos(ang), math.Sin(ang))
	}
	return acc
}

// NoiseShapingFIR designs a linear-phase FIR whose squared magnitude
// response approximates a target power spectral density, by frequency
// sampling: the PSD is sampled on nBins uniform bins over the full sample
// rate (bin k at frequency k·fs/nBins, negative frequencies in the upper
// half per DFT convention), the zero-phase impulse response is recovered by
// inverse FFT, centered, truncated to nTaps and windowed.
//
// The channel simulator uses it to color ambient noise to the Wenz
// spectrum: white Gaussian noise filtered by this FIR acquires the target
// spectral shape while the filter's normalization (below) preserves total
// power.
func NoiseShapingFIR(psd []float64, nTaps int, w Window) (*CFIR, error) {
	n := len(psd)
	if n < 8 {
		return nil, fmt.Errorf("dsp: noise shaping needs >= 8 PSD bins, got %d", n)
	}
	if nTaps < 3 || nTaps > n {
		return nil, fmt.Errorf("dsp: tap count %d outside [3, %d]", nTaps, n)
	}
	if nTaps%2 == 0 {
		return nil, fmt.Errorf("dsp: tap count %d must be odd (linear phase)", nTaps)
	}
	var mean float64
	spec := make([]complex128, n)
	for k, p := range psd {
		if p < 0 {
			return nil, fmt.Errorf("dsp: negative PSD bin %d", k)
		}
		spec[k] = complex(math.Sqrt(p), 0)
		mean += p
	}
	mean /= float64(n)
	// Zero-phase impulse response; complex in general — an asymmetric
	// baseband PSD (the usual case around a carrier) requires complex taps.
	h := IFFT(spec)
	taps := make([]complex128, nTaps)
	half := nTaps / 2
	win := w.Coefficients(nTaps)
	for i := range taps {
		// Center the response: tap i holds lag i-half (circular indexing).
		lag := i - half
		idx := ((lag % n) + n) % n
		taps[i] = h[idx] * complex(win[i], 0)
	}
	f := NewCFIR(taps)
	// Normalize so white noise of power P comes out with power P·mean(psd):
	// white-noise output power = input power × Σ|taps|².
	var e float64
	for _, t := range f.taps {
		e += real(t)*real(t) + imag(t)*imag(t)
	}
	if e <= 0 {
		return nil, fmt.Errorf("dsp: degenerate shaping filter")
	}
	g := complex(math.Sqrt(mean/e), 0)
	for i := range f.taps {
		f.taps[i] *= g
	}
	return f, nil
}
