package dsp

import "fmt"

// mseqTaps maps LFSR register length to a feedback tap mask that yields a
// maximal-length sequence under this package's Fibonacci LFSR convention
// (output taken from bit 0, feedback = parity(state & mask) shifted into bit
// degree-1). Each mask corresponds to a primitive polynomial over GF(2) and
// was verified to produce the full 2^degree - 1 period.
var mseqTaps = map[int]uint32{
	3:  0b11,
	4:  0b11,
	5:  0b101,
	6:  0b11,
	7:  0b11,
	8:  0b11101,
	9:  0b10001,
	10: 0b1001,
	11: 0b101,
	12: 0b1010011,
	13: 0b11011,
	14: 0b101011,
	15: 0b11,
}

// MSequence returns a maximal-length ±1 pseudo-noise sequence of period
// 2^degree - 1 for degrees 3 through 15. These sequences have a two-valued
// autocorrelation (N at zero lag, -1 elsewhere), which makes them ideal
// preambles for acquisition.
func MSequence(degree int) ([]float64, error) {
	taps, ok := mseqTaps[degree]
	if !ok {
		return nil, fmt.Errorf("dsp: no m-sequence polynomial for degree %d (supported 3..15)", degree)
	}
	n := (1 << degree) - 1
	out := make([]float64, n)
	state := uint32(1) // any nonzero seed
	for i := 0; i < n; i++ {
		bit := state & 1
		if bit == 1 {
			out[i] = 1
		} else {
			out[i] = -1
		}
		// Compute feedback as parity of tapped stages.
		fb := uint32(0)
		t := state & taps
		for t != 0 {
			fb ^= t & 1
			t >>= 1
		}
		state = (state >> 1) | (fb << (degree - 1))
	}
	return out, nil
}

// Barker13 is the length-13 Barker code, the classic short sync word with
// peak sidelobe 1.
var Barker13 = []float64{1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1}

// CircularAutocorr returns the circular autocorrelation of a ±1 sequence at
// every lag, used to validate PN properties.
func CircularAutocorr(seq []float64) []float64 {
	n := len(seq)
	out := make([]float64, n)
	for lag := 0; lag < n; lag++ {
		var s float64
		for i := 0; i < n; i++ {
			s += seq[i] * seq[(i+lag)%n]
		}
		out[lag] = s
	}
	return out
}
