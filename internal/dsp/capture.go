package dsp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
)

// Capture I/O: a minimal binary container for complex-baseband recordings,
// so simulated waveforms can leave the process for external analysis
// (plotting, replaying through other demodulators) and test vectors can be
// checked in. Layout (big endian):
//
//	magic   uint32  "VABC"
//	version uint16  1
//	fs      float64 sample rate, Hz
//	fc      float64 carrier frequency, Hz
//	count   uint32  samples
//	data    count × (float64 re, float64 im)

// Capture is a complex-baseband recording with its radio parameters.
type Capture struct {
	SampleRate float64
	CarrierHz  float64
	Samples    []complex128
}

const captureMagic = uint32(0x56414243) // "VABC"

// ErrBadCapture is returned for malformed capture streams.
var ErrBadCapture = errors.New("dsp: malformed capture")

// maxCaptureSamples bounds decoding so a corrupt header cannot demand
// gigabytes (16 bytes per sample; 1<<26 samples = 1 GiB).
const maxCaptureSamples = 1 << 26

// WriteCapture serializes the capture to w.
func WriteCapture(w io.Writer, c *Capture) error {
	if c.SampleRate <= 0 {
		return fmt.Errorf("dsp: capture sample rate %.3g must be positive", c.SampleRate)
	}
	if len(c.Samples) > maxCaptureSamples {
		return fmt.Errorf("dsp: capture of %d samples exceeds the format limit", len(c.Samples))
	}
	hdr := make([]byte, 0, 4+2+8+8+4)
	hdr = binary.BigEndian.AppendUint32(hdr, captureMagic)
	hdr = binary.BigEndian.AppendUint16(hdr, 1)
	hdr = binary.BigEndian.AppendUint64(hdr, math.Float64bits(c.SampleRate))
	hdr = binary.BigEndian.AppendUint64(hdr, math.Float64bits(c.CarrierHz))
	hdr = binary.BigEndian.AppendUint32(hdr, uint32(len(c.Samples)))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 16)
	for _, s := range c.Samples {
		binary.BigEndian.PutUint64(buf[0:8], math.Float64bits(real(s)))
		binary.BigEndian.PutUint64(buf[8:16], math.Float64bits(imag(s)))
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// ReadCapture parses a capture from r.
func ReadCapture(r io.Reader) (*Capture, error) {
	hdr := make([]byte, 4+2+8+8+4)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, fmt.Errorf("%w: header: %v", ErrBadCapture, err)
	}
	if binary.BigEndian.Uint32(hdr[0:4]) != captureMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadCapture)
	}
	if v := binary.BigEndian.Uint16(hdr[4:6]); v != 1 {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadCapture, v)
	}
	c := &Capture{
		SampleRate: math.Float64frombits(binary.BigEndian.Uint64(hdr[6:14])),
		CarrierHz:  math.Float64frombits(binary.BigEndian.Uint64(hdr[14:22])),
	}
	if c.SampleRate <= 0 || math.IsNaN(c.SampleRate) {
		return nil, fmt.Errorf("%w: sample rate %v", ErrBadCapture, c.SampleRate)
	}
	n := binary.BigEndian.Uint32(hdr[22:26])
	if n > maxCaptureSamples {
		return nil, fmt.Errorf("%w: %d samples exceeds the format limit", ErrBadCapture, n)
	}
	c.Samples = make([]complex128, n)
	buf := make([]byte, 16)
	for i := range c.Samples {
		if _, err := io.ReadFull(r, buf); err != nil {
			return nil, fmt.Errorf("%w: truncated at sample %d: %v", ErrBadCapture, i, err)
		}
		c.Samples[i] = complex(
			math.Float64frombits(binary.BigEndian.Uint64(buf[0:8])),
			math.Float64frombits(binary.BigEndian.Uint64(buf[8:16])),
		)
	}
	return c, nil
}
