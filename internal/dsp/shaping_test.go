package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestNoiseShapingFIRValidation(t *testing.T) {
	flat := make([]float64, 64)
	for i := range flat {
		flat[i] = 1
	}
	if _, err := NoiseShapingFIR(flat[:4], 3, Hamming); err == nil {
		t.Error("too few bins accepted")
	}
	if _, err := NoiseShapingFIR(flat, 4, Hamming); err == nil {
		t.Error("even tap count accepted")
	}
	if _, err := NoiseShapingFIR(flat, 1, Hamming); err == nil {
		t.Error("tap count 1 accepted")
	}
	bad := append([]float64(nil), flat...)
	bad[3] = -1
	if _, err := NoiseShapingFIR(bad, 33, Hamming); err == nil {
		t.Error("negative PSD accepted")
	}
}

func TestNoiseShapingFlatTargetPassesWhiteNoise(t *testing.T) {
	flat := make([]float64, 128)
	for i := range flat {
		flat[i] = 1
	}
	f, err := NoiseShapingFIR(flat, 33, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := GaussianNoise(make([]complex128, 100000), 2.0, rng)
	y := f.Process(append([]complex128(nil), x...))
	if p := Power(y); math.Abs(p-2) > 0.2 {
		t.Errorf("flat shaping changed power: %v, want ~2", p)
	}
}

func TestNoiseShapingSlopedTarget(t *testing.T) {
	// A low-pass-ish PSD: power 4 in the lower half band, 0.25 in the
	// upper half (16 dB contrast). Shaped noise should show the contrast.
	n := 256
	psd := make([]float64, n)
	for k := range psd {
		f := float64(k) / float64(n) // 0..1 of fs, wrap at 0.5
		if f > 0.5 {
			f -= 1
		}
		if math.Abs(f) < 0.25 {
			psd[k] = 4
		} else {
			psd[k] = 0.25
		}
	}
	sh, err := NoiseShapingFIR(psd, 65, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	x := GaussianNoise(make([]complex128, 1<<16), 1.0, rng)
	y := sh.Process(x)
	// Measure band powers with Goertzel probes at ±0.1·fs and ±0.4·fs.
	lowE := 0.0
	highE := 0.0
	block := 1024
	gLow := NewGoertzel(0.1, 1)
	gHigh := NewGoertzel(0.4, 1)
	for off := 0; off+block <= len(y); off += block {
		lowE += gLow.Energy(y[off : off+block])
		highE += gHigh.Energy(y[off : off+block])
	}
	ratio := lowE / highE
	// Target contrast is 16 (12 dB in power terms: 4/0.25); the windowed
	// 65-tap filter softens it, so accept anything clearly above 5×.
	if ratio < 5 {
		t.Errorf("band power ratio %v, want >> 1", ratio)
	}
	// Total power ≈ mean(psd) ≈ (4+0.25)/2 … by band fraction: 0.5·4+0.5·0.25 = 2.125.
	if p := Power(y[1000:]); math.Abs(p-2.125) > 0.5 {
		t.Errorf("total power %v, want ~2.1", p)
	}
}

func TestWelchPSDWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := GaussianNoise(make([]complex128, 1<<15), 3.0, rng)
	psd, err := WelchPSD(x, 256, Hann)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range psd {
		total += v
	}
	if math.Abs(total-3) > 0.2 {
		t.Errorf("PSD total %v, want ~3 (signal power)", total)
	}
	// Flat within averaging noise: no bin more than 3x the mean.
	mean := total / float64(len(psd))
	for i, v := range psd {
		if v > 3*mean {
			t.Errorf("bin %d = %v sticks out of a white spectrum (mean %v)", i, v, mean)
		}
	}
}

func TestWelchPSDTone(t *testing.T) {
	fs := 16000.0
	n := 1 << 14
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(2, Tau*2000*float64(i)/fs)
	}
	psd, err := WelchPSD(x, 512, Hann)
	if err != nil {
		t.Fatal(err)
	}
	// Power 4 concentrated near 2 kHz.
	inBand := BandPower(psd, fs, 1800, 2200)
	if math.Abs(inBand-4) > 0.2 {
		t.Errorf("tone band power %v, want ~4", inBand)
	}
	if out := BandPower(psd, fs, -4200, -3800); out > 0.01 {
		t.Errorf("mirror band power %v, want ~0", out)
	}
}

func TestWelchPSDValidation(t *testing.T) {
	if _, err := WelchPSD(make([]complex128, 100), 4, Hann); err == nil {
		t.Error("tiny nfft accepted")
	}
	if _, err := WelchPSD(make([]complex128, 10), 64, Hann); err == nil {
		t.Error("short signal accepted")
	}
}

func TestWelchConfirmsChannelColoring(t *testing.T) {
	// End-to-end: the Wenz shaper's output PSD slope measured by Welch.
	n := 256
	psd := make([]float64, n)
	for k := 0; k < n; k++ {
		f := float64(k) / float64(n)
		if f > 0.5 {
			f -= 1
		}
		psd[k] = math.Pow(10, -1.0*f) // 10 dB/unit-frequency slope
	}
	var mean float64
	for _, p := range psd {
		mean += p
	}
	mean /= float64(n)
	for k := range psd {
		psd[k] /= mean
	}
	sh, err := NoiseShapingFIR(psd, 65, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	y := sh.Process(GaussianNoise(make([]complex128, 1<<15), 1, rng))
	est, err := WelchPSD(y, 256, Hann)
	if err != nil {
		t.Fatal(err)
	}
	lo := BandPower(est, 1, -0.45, -0.35)
	hi := BandPower(est, 1, 0.35, 0.45)
	wantRatio := math.Pow(10, 0.8) // 10^( -1.0·(-0.4) − (−1.0·0.4) ) = 10^0.8
	got := lo / hi
	if got < wantRatio/1.6 || got > wantRatio*1.6 {
		t.Errorf("measured band ratio %v, target %v", got, wantRatio)
	}
}

// TestCFIRInPlace pins the aliasing contract documented on ProcessInto:
// filtering a buffer into itself must match the two-buffer reference
// exactly, including across chunked streaming calls. The channel layer's
// noise shaper relies on this (it colors its noise scratch in place).
func TestCFIRInPlace(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	taps := make([]complex128, 21)
	for i := range taps {
		taps[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	x := make([]complex128, 300)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}

	ref := NewCFIR(taps)
	want := ref.Process(x)

	// One-shot in-place.
	f := NewCFIR(taps)
	buf := append([]complex128(nil), x...)
	f.ProcessInto(buf, buf)
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("in-place output differs at %d: %v vs %v", i, buf[i], want[i])
		}
	}

	// Chunked streaming in-place (uneven chunk sizes straddle the ring).
	f.Reset()
	buf2 := append([]complex128(nil), x...)
	for lo := 0; lo < len(buf2); {
		hi := lo + 37
		if hi > len(buf2) {
			hi = len(buf2)
		}
		f.ProcessInto(buf2[lo:hi], buf2[lo:hi])
		lo = hi
	}
	for i := range want {
		if buf2[i] != want[i] {
			t.Fatalf("chunked in-place differs at %d: %v vs %v", i, buf2[i], want[i])
		}
	}
}
