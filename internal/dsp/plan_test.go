package dsp

import (
	"fmt"
	"math/cmplx"
	"math/rand"
	"sync"
	"testing"

	"vab/internal/telemetry"
)

// directDFT is the O(n²) reference all transforms are checked against.
func directDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var acc complex128
		for i := 0; i < n; i++ {
			acc += x[i] * cmplx.Rect(1, -Tau*float64(k)*float64(i)/float64(n))
		}
		out[k] = acc
	}
	return out
}

func TestFFTIntoMatchesFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{1, 2, 4, 8, 64, 1024, 3, 7, 100, 999} {
		x := randComplex(rng, n)
		want := FFT(x)
		dst := make([]complex128, n)
		FFTInto(dst, x)
		for i := range want {
			if !approxEqC(dst[i], want[i], 1e-9) {
				t.Errorf("n=%d: FFTInto[%d] = %v, want %v", n, i, dst[i], want[i])
			}
		}
		// In-place aliasing (dst == src).
		inpl := make([]complex128, n)
		copy(inpl, x)
		FFTInto(inpl, inpl)
		for i := range want {
			if !approxEqC(inpl[i], want[i], 1e-9) {
				t.Errorf("n=%d: in-place FFTInto[%d] = %v, want %v", n, i, inpl[i], want[i])
			}
		}
		// Inverse round trip through the Into pair.
		back := make([]complex128, n)
		IFFTInto(back, dst)
		for i := range x {
			if !approxEqC(back[i], x[i], 1e-8) {
				t.Errorf("n=%d: IFFTInto round trip[%d] = %v, want %v", n, i, back[i], x[i])
			}
		}
	}
}

func TestFFTIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	FFTInto(make([]complex128, 4), make([]complex128, 8))
}

// TestPlanCacheConcurrent hammers the plan cache from many goroutines
// across a size mix that exercises both the radix-2 and Bluestein paths
// (including first-touch plan construction races) and verifies every
// result against a precomputed reference. Run under -race this is the
// plan-cache safety proof the parallel Monte-Carlo harness relies on.
func TestPlanCacheConcurrent(t *testing.T) {
	sizes := []int{4, 16, 64, 256, 1024, 3, 37, 300, 1000}
	inputs := make(map[int][]complex128, len(sizes))
	want := make(map[int][]complex128, len(sizes))
	rng := rand.New(rand.NewSource(23))
	for _, n := range sizes {
		x := randComplex(rng, n)
		inputs[n] = x
		want[n] = directDFT(x)
	}

	const goroutines = 16
	const iters = 50
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			dst := make([]complex128, 1024)
			for it := 0; it < iters; it++ {
				n := sizes[(g+it)%len(sizes)]
				x := inputs[n]
				var got []complex128
				if it%2 == 0 {
					got = FFT(x)
				} else {
					FFTInto(dst[:n], x)
					got = dst[:n]
				}
				for i := range got {
					if !approxEqC(got[i], want[n][i], 1e-6*float64(n)) {
						select {
						case errc <- fmt.Errorf("goroutine %d n=%d bin %d: got %v want %v", g, n, i, got[i], want[n][i]):
						default:
						}
						return
					}
				}
				// Interleave Convolve so the scratch pool is contended too.
				if it%5 == 0 {
					a := inputs[16]
					c := Convolve(a, a)
					if len(c) != 31 {
						select {
						case errc <- fmt.Errorf("goroutine %d: convolve length %d", g, len(c)):
						default:
						}
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

func TestPlanCacheCounters(t *testing.T) {
	reg := telemetry.NewRegistry()
	Instrument(reg)
	defer func() {
		metFFTTime, metXCorrTime = nil, nil
		metPlanHits, metPlanMisses = nil, nil
	}()
	// An odd prime far above anything the suite uses: guaranteed cold, and
	// its Bluestein pad may or may not be cached — only the arbitrary-size
	// plan itself is asserted on.
	const n = 7993
	x := randComplex(rand.New(rand.NewSource(5)), n)
	FFT(x)
	miss0 := metPlanMisses.Value()
	if miss0 == 0 {
		t.Fatal("first transform of a new size did not record a plan miss")
	}
	hit0 := metPlanHits.Value()
	FFT(x)
	if metPlanMisses.Value() != miss0 {
		t.Error("second transform of the same size rebuilt a plan")
	}
	if metPlanHits.Value() <= hit0 {
		t.Error("second transform did not record a plan hit")
	}
}

// TestRFFTMatchesComplexFFT pins the half-size packing trick to the full
// complex transform across even (packed), odd (fallback) and power-of-two
// (cached-twiddle) lengths.
func TestRFFTMatchesComplexFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, n := range []int{1, 2, 3, 4, 8, 64, 1024, 100, 250, 99, 1000} {
		x := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		got := RFFT(x)
		want := FFT(ToComplex(x))
		if len(got) != n {
			t.Fatalf("n=%d: RFFT length %d", n, len(got))
		}
		for k := range want {
			if !approxEqC(got[k], want[k], 1e-9*float64(n+1)) {
				t.Errorf("n=%d: RFFT[%d] = %v, want %v", n, k, got[k], want[k])
			}
		}
	}
}

func TestConvolveScratchReuse(t *testing.T) {
	// Back-to-back convolutions of different sizes must not see each
	// other's scratch contents (the pool hands buffers back dirty).
	rng := rand.New(rand.NewSource(41))
	a1, b1 := randComplex(rng, 40), randComplex(rng, 17)
	a2, b2 := randComplex(rng, 9), randComplex(rng, 5)
	w1, w2 := Convolve(a1, b1), Convolve(a2, b2)
	for i := 0; i < 20; i++ {
		g1, g2 := Convolve(a1, b1), Convolve(a2, b2)
		for k := range w1 {
			if g1[k] != w1[k] {
				t.Fatalf("iteration %d: convolution drifted at %d", i, k)
			}
		}
		for k := range w2 {
			if g2[k] != w2[k] {
				t.Fatalf("iteration %d: small convolution drifted at %d", i, k)
			}
		}
	}
}
