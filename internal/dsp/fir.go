package dsp

import (
	"fmt"
	"math"
)

// FIR is a finite-impulse-response filter with real taps. It filters complex
// baseband samples and keeps internal state so that long signals can be
// processed in chunks.
type FIR struct {
	taps  []float64
	state []complex128 // last len(taps)-1 inputs, most recent last
}

// NewFIR builds a filter from the given taps. The taps slice is copied.
func NewFIR(taps []float64) *FIR {
	if len(taps) == 0 {
		panic("dsp: NewFIR requires at least one tap")
	}
	t := make([]float64, len(taps))
	copy(t, taps)
	return &FIR{taps: t, state: make([]complex128, len(taps)-1)}
}

// Taps returns a copy of the filter taps.
func (f *FIR) Taps() []float64 {
	t := make([]float64, len(f.taps))
	copy(t, f.taps)
	return t
}

// Reset clears the filter state.
func (f *FIR) Reset() {
	for i := range f.state {
		f.state[i] = 0
	}
}

// Process filters x, returning one output per input sample (streaming form:
// the convolution tail is kept as state for the next call).
func (f *FIR) Process(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	f.ProcessInto(out, x)
	return out
}

// ProcessInto filters x into dst, which must have the same length as x.
// dst and x may alias: each input sample is copied into the state ring
// before its output slot is written.
func (f *FIR) ProcessInto(dst, x []complex128) {
	if len(dst) != len(x) {
		panic("dsp: ProcessInto length mismatch")
	}
	nt := len(f.taps)
	ns := nt - 1
	if ns == 0 {
		g := complex(f.taps[0], 0)
		for i, v := range x {
			dst[i] = g * v
		}
		return
	}
	// f.state holds the previous ns raw inputs, most recent last. Treat it
	// as a ring with head pointing at the oldest entry.
	head := 0
	for i := 0; i < len(x); i++ {
		xi := x[i]
		acc := complex(f.taps[0], 0) * xi
		// taps[k] pairs with the input k samples ago: walking backward
		// from the newest state entry.
		idx := head + ns - 1
		for k := 1; k < nt; k++ {
			j := idx - (k - 1)
			if j >= ns {
				j -= ns
			}
			if j < 0 {
				j += ns
			}
			acc += complex(f.taps[k], 0) * f.state[j]
		}
		// Push xi: overwrite the oldest entry and advance the head.
		f.state[head] = xi
		head++
		if head == ns {
			head = 0
		}
		dst[i] = acc
	}
	// Normalize the ring so state[0..ns-1] is oldest→newest for the next
	// call (and for Reset/streaming consistency).
	if head != 0 {
		rot := make([]complex128, ns)
		copy(rot, f.state[head:])
		copy(rot[ns-head:], f.state[:head])
		copy(f.state, rot)
	}
}

// GroupDelay returns the group delay in samples of a linear-phase
// (symmetric) FIR: (n-1)/2.
func (f *FIR) GroupDelay() float64 { return float64(len(f.taps)-1) / 2 }

// FreqResponse evaluates the filter's complex frequency response at the
// normalized frequency fNorm = f/fs in [-0.5, 0.5].
func (f *FIR) FreqResponse(fNorm float64) complex128 {
	var re, im float64
	for k, t := range f.taps {
		ang := -Tau * fNorm * float64(k)
		re += t * math.Cos(ang)
		im += t * math.Sin(ang)
	}
	return complex(re, im)
}

// LowpassFIR designs an n-tap windowed-sinc lowpass filter with cutoff
// frequency cutoffHz at sample rate fsHz.
func LowpassFIR(n int, cutoffHz, fsHz float64, w Window) (*FIR, error) {
	if n < 1 {
		return nil, fmt.Errorf("dsp: lowpass needs n >= 1 taps, got %d", n)
	}
	if cutoffHz <= 0 || cutoffHz >= fsHz/2 {
		return nil, fmt.Errorf("dsp: cutoff %.3g Hz outside (0, fs/2) for fs=%.3g", cutoffHz, fsHz)
	}
	fc := cutoffHz / fsHz // normalized cutoff (cycles/sample)
	taps := make([]float64, n)
	mid := float64(n-1) / 2
	win := w.Coefficients(n)
	var sum float64
	for i := 0; i < n; i++ {
		x := float64(i) - mid
		taps[i] = 2 * fc * Sinc(2*fc*x) * win[i]
		sum += taps[i]
	}
	// Normalize to unity DC gain.
	for i := range taps {
		taps[i] /= sum
	}
	return NewFIR(taps), nil
}

// HighpassFIR designs an n-tap windowed-sinc highpass filter by spectral
// inversion of the corresponding lowpass. n must be odd so the impulse has a
// well-defined center tap.
func HighpassFIR(n int, cutoffHz, fsHz float64, w Window) (*FIR, error) {
	if n%2 == 0 {
		return nil, fmt.Errorf("dsp: highpass needs odd tap count, got %d", n)
	}
	lp, err := LowpassFIR(n, cutoffHz, fsHz, w)
	if err != nil {
		return nil, err
	}
	taps := lp.Taps()
	for i := range taps {
		taps[i] = -taps[i]
	}
	taps[(n-1)/2] += 1
	return NewFIR(taps), nil
}

// BandpassFIR designs an n-tap windowed-sinc bandpass filter for the band
// [lowHz, highHz]. Gain is normalized to unity at the band center.
func BandpassFIR(n int, lowHz, highHz, fsHz float64, w Window) (*FIR, error) {
	if lowHz <= 0 || highHz >= fsHz/2 || lowHz >= highHz {
		return nil, fmt.Errorf("dsp: bandpass band [%.3g, %.3g] invalid for fs=%.3g", lowHz, highHz, fsHz)
	}
	f1 := lowHz / fsHz
	f2 := highHz / fsHz
	taps := make([]float64, n)
	mid := float64(n-1) / 2
	win := w.Coefficients(n)
	for i := 0; i < n; i++ {
		x := float64(i) - mid
		taps[i] = (2*f2*Sinc(2*f2*x) - 2*f1*Sinc(2*f1*x)) * win[i]
	}
	fir := NewFIR(taps)
	fcMid := (lowHz + highHz) / 2 / fsHz
	g := fir.FreqResponse(fcMid)
	mag := math.Hypot(real(g), imag(g))
	if mag > 0 {
		for i := range fir.taps {
			fir.taps[i] /= mag
		}
	}
	return fir, nil
}

// DCBlocker is a one-pole IIR DC-removal filter:
//
//	y[n] = x[n] - x[n-1] + r*y[n-1]
//
// with r close to 1. It is the reader's cheapest self-interference notch:
// at complex baseband the direct-path carrier leakage sits at DC.
type DCBlocker struct {
	r      float64
	xPrev  complex128
	yPrev  complex128
	primed bool
}

// NewDCBlocker builds a DC blocker with pole radius r in (0, 1). Larger r
// gives a narrower notch.
func NewDCBlocker(r float64) *DCBlocker {
	if r <= 0 || r >= 1 {
		panic("dsp: DC blocker pole radius must be in (0,1)")
	}
	return &DCBlocker{r: r}
}

// Process filters x in place and returns x.
func (d *DCBlocker) Process(x []complex128) []complex128 {
	for i, v := range x {
		if !d.primed {
			// Seed history with the first sample so a constant input is
			// suppressed from the start instead of producing a step.
			d.xPrev = v
			d.primed = true
		}
		y := v - d.xPrev + complex(d.r, 0)*d.yPrev
		d.xPrev = v
		d.yPrev = y
		x[i] = y
	}
	return x
}

// Reset clears the blocker's history.
func (d *DCBlocker) Reset() {
	d.xPrev, d.yPrev, d.primed = 0, 0, false
}
