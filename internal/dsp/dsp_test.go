package dsp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDBConversions(t *testing.T) {
	if !approxEq(DB(100), 20, tol) {
		t.Errorf("DB(100) = %v", DB(100))
	}
	if !approxEq(FromDB(30), 1000, 1e-9) {
		t.Errorf("FromDB(30) = %v", FromDB(30))
	}
	if !approxEq(AmpDB(10), 20, tol) {
		t.Errorf("AmpDB(10) = %v", AmpDB(10))
	}
	if !approxEq(FromAmpDB(40), 100, 1e-9) {
		t.Errorf("FromAmpDB(40) = %v", FromAmpDB(40))
	}
	if !math.IsInf(DB(0), -1) || !math.IsInf(DB(-1), -1) {
		t.Error("DB of non-positive should be -Inf")
	}
}

func TestDBRoundTripProperty(t *testing.T) {
	f := func(v float64) bool {
		p := math.Abs(v) + 1e-6
		return approxEq(FromDB(DB(p)), p, 1e-9*p) &&
			approxEq(FromAmpDB(AmpDB(p)), p, 1e-9*p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWrapPhase(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 0},
		{math.Pi, -math.Pi}, // +π wraps to -π under [-π, π)
		{-math.Pi, -math.Pi},
		{3 * math.Pi, -math.Pi},
		{Tau, 0},
		{-0.1, -0.1},
		{Tau + 0.25, 0.25},
	}
	for _, c := range cases {
		if got := WrapPhase(c.in); !approxEq(got, c.want, 1e-12) {
			t.Errorf("WrapPhase(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestWrapPhaseRangeProperty(t *testing.T) {
	f := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			return true
		}
		w := WrapPhase(v)
		return w >= -math.Pi-1e-9 && w < math.Pi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestSinc(t *testing.T) {
	if Sinc(0) != 1 {
		t.Error("Sinc(0) != 1")
	}
	for _, k := range []float64{1, 2, 3, -4} {
		if !approxEq(Sinc(k), 0, 1e-12) {
			t.Errorf("Sinc(%v) = %v, want 0", k, Sinc(k))
		}
	}
	if !approxEq(Sinc(0.5), 2/math.Pi, 1e-12) {
		t.Errorf("Sinc(0.5) = %v", Sinc(0.5))
	}
}

func TestEnergyPowerScale(t *testing.T) {
	x := []complex128{complex(3, 4), complex(0, 0)}
	if !approxEq(Energy(x), 25, tol) {
		t.Errorf("Energy = %v", Energy(x))
	}
	if !approxEq(Power(x), 12.5, tol) {
		t.Errorf("Power = %v", Power(x))
	}
	Scale(x, 2)
	if !approxEq(Energy(x), 100, tol) {
		t.Errorf("Energy after scale = %v", Energy(x))
	}
	if Power(nil) != 0 {
		t.Error("Power(nil) != 0")
	}
}

func TestMixInto(t *testing.T) {
	dst := make([]complex128, 5)
	src := []complex128{1, 1, 1}
	MixInto(dst, src, 3, complex(2, 0)) // only two samples fit
	want := []complex128{0, 0, 0, 2, 2}
	for i := range want {
		if dst[i] != want[i] {
			t.Errorf("dst[%d] = %v, want %v", i, dst[i], want[i])
		}
	}
	// Negative offset clips the head.
	dst2 := make([]complex128, 3)
	MixInto(dst2, src, -1, 1)
	if dst2[0] != 1 || dst2[1] != 1 || dst2[2] != 0 {
		t.Errorf("negative offset mix wrong: %v", dst2)
	}
}

func TestAddIntoPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	AddInto(make([]complex128, 2), make([]complex128, 3))
}

func TestRealImagAbsConj(t *testing.T) {
	x := []complex128{complex(1, -2), complex(-3, 4)}
	re, im, ab := Real(x), Imag(x), Abs(x)
	if re[0] != 1 || re[1] != -3 || im[0] != -2 || im[1] != 4 {
		t.Error("Real/Imag wrong")
	}
	if !approxEq(ab[1], 5, tol) {
		t.Error("Abs wrong")
	}
	Conj(x)
	if x[0] != complex(1, 2) {
		t.Error("Conj wrong")
	}
}

func TestWindowsBasics(t *testing.T) {
	for _, w := range []Window{Rectangular, Hann, Hamming, Blackman, BlackmanHarris} {
		c := w.Coefficients(64)
		if len(c) != 64 {
			t.Fatalf("%v: wrong length", w)
		}
		for i, v := range c {
			if v < -1e-12 || v > 1+1e-12 {
				t.Errorf("%v coeff[%d] = %v outside [0,1]", w, i, v)
			}
		}
		// Symmetry.
		for i := range c {
			if !approxEq(c[i], c[len(c)-1-i], 1e-12) {
				t.Errorf("%v not symmetric at %d", w, i)
			}
		}
		if g := w.CoherentGain(64); g <= 0 || g > 1+1e-12 {
			t.Errorf("%v coherent gain %v out of range", w, g)
		}
		if w.String() == "unknown" {
			t.Errorf("window %d has no name", w)
		}
	}
	if Hann.Coefficients(1)[0] != 1 {
		t.Error("single-point window should be 1")
	}
}

func TestHannEndpointsAndPeak(t *testing.T) {
	c := Hann.Coefficients(65)
	if !approxEq(c[0], 0, 1e-12) || !approxEq(c[64], 0, 1e-12) {
		t.Error("Hann endpoints should be 0")
	}
	if !approxEq(c[32], 1, 1e-12) {
		t.Error("Hann center should be 1")
	}
}

func TestStatsBasics(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	if !approxEq(Mean(x), 2.5, tol) {
		t.Error("mean")
	}
	if !approxEq(Variance(x), 1.25, tol) {
		t.Error("variance")
	}
	if !approxEq(Median(x), 2.5, tol) {
		t.Error("even median")
	}
	if !approxEq(Median([]float64{3, 1, 2}), 2, tol) {
		t.Error("odd median")
	}
	if !approxEq(Percentile(x, 0), 1, tol) || !approxEq(Percentile(x, 100), 4, tol) {
		t.Error("percentile extremes")
	}
	if !approxEq(Percentile(x, 50), 2.5, tol) {
		t.Error("percentile 50")
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Error("empty-input stats should be 0")
	}
}

func TestQFunction(t *testing.T) {
	if !approxEq(Q(0), 0.5, 1e-12) {
		t.Error("Q(0)")
	}
	// Known value: Q(1.96) ≈ 0.025.
	if math.Abs(Q(1.96)-0.025) > 1e-4 {
		t.Errorf("Q(1.96) = %v", Q(1.96))
	}
	// Inverse round trip.
	for _, p := range []float64{0.4, 0.1, 1e-3, 1e-6} {
		x := QInv(p)
		if math.Abs(Q(x)-p) > 1e-9*p+1e-15 {
			t.Errorf("QInv(%v) -> Q = %v", p, Q(x))
		}
	}
}

func TestMarcumQ(t *testing.T) {
	// Q1(0, b) = exp(-b²/2).
	for _, b := range []float64{0.5, 1, 2, 3} {
		want := math.Exp(-b * b / 2)
		if got := Marcum1(0, b); math.Abs(got-want) > 1e-10 {
			t.Errorf("Q1(0,%v) = %v, want %v", b, got, want)
		}
	}
	// Q1(a, 0) = 1.
	if Marcum1(3, 0) != 1 {
		t.Error("Q1(a,0) != 1")
	}
	// Monotone decreasing in b.
	prev := 1.0
	for b := 0.2; b < 6; b += 0.2 {
		v := Marcum1(1.5, b)
		if v > prev+1e-12 {
			t.Errorf("Marcum Q not decreasing at b=%v", b)
		}
		prev = v
	}
}

func TestWilsonCI(t *testing.T) {
	lo, hi := WilsonCI(0, 0, 1.96)
	if lo != 0 || hi != 1 {
		t.Error("empty trials should give [0,1]")
	}
	lo, hi = WilsonCI(50, 100, 1.96)
	if lo > 0.5 || hi < 0.5 {
		t.Errorf("CI [%v, %v] should bracket 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("CI [%v, %v] too wide for n=100", lo, hi)
	}
	// Zero successes still give nonzero upper bound.
	lo, hi = WilsonCI(0, 100, 1.96)
	if lo != 0 || hi <= 0 || hi > 0.1 {
		t.Errorf("CI for 0/100 = [%v, %v]", lo, hi)
	}
}

func TestWilsonCIOrderProperty(t *testing.T) {
	f := func(k, n uint16) bool {
		nn := int(n%1000) + 1
		kk := int(k) % (nn + 1)
		lo, hi := WilsonCI(kk, nn, 1.96)
		p := float64(kk) / float64(nn)
		return lo <= p+1e-12 && p <= hi+1e-12 && lo >= 0 && hi <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGaussianNoiseStats(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	n := 200000
	x := GaussianNoise(make([]complex128, n), 4.0, rng)
	p := Power(x)
	if math.Abs(p-4) > 0.1 {
		t.Errorf("noise power = %v, want 4", p)
	}
	// Real and imaginary parts should each carry half the power.
	pr := EnergyReal(Real(x)) / float64(n)
	if math.Abs(pr-2) > 0.1 {
		t.Errorf("real-part power = %v, want 2", pr)
	}
}

func TestLinspaceLogspace(t *testing.T) {
	l := Linspace(0, 10, 11)
	if len(l) != 11 || l[0] != 0 || l[10] != 10 || !approxEq(l[3], 3, tol) {
		t.Errorf("Linspace wrong: %v", l)
	}
	g := Logspace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if !approxEq(g[i], want[i], 1e-9*want[i]) {
			t.Errorf("Logspace[%d] = %v, want %v", i, g[i], want[i])
		}
	}
}

func TestMSequenceAutocorrelation(t *testing.T) {
	for deg := 3; deg <= 15; deg++ {
		seq, err := MSequence(deg)
		if err != nil {
			t.Fatalf("degree %d: %v", deg, err)
		}
		n := (1 << deg) - 1
		if len(seq) != n {
			t.Fatalf("degree %d: length %d, want %d", deg, len(seq), n)
		}
		if deg <= 10 {
			// Full two-valued autocorrelation check (O(n²), so only for
			// short sequences).
			ac := CircularAutocorr(seq)
			if !approxEq(ac[0], float64(n), 1e-9) {
				t.Errorf("degree %d: zero-lag autocorr %v, want %d", deg, ac[0], n)
			}
			for lag := 1; lag < n; lag++ {
				if !approxEq(ac[lag], -1, 1e-9) {
					t.Fatalf("degree %d: autocorr at lag %d = %v, want -1 (not maximal-length)", deg, lag, ac[lag])
				}
			}
		} else {
			// Balance property: maximal-length sequences have exactly one
			// more +1 than -1 chips.
			var sum float64
			for _, v := range seq {
				sum += v
			}
			if sum != 1 {
				t.Errorf("degree %d: chip balance %v, want 1", deg, sum)
			}
		}
	}
	if _, err := MSequence(2); err == nil {
		t.Error("degree 2 should be unsupported")
	}
}

func TestBarker13Sidelobes(t *testing.T) {
	// Aperiodic autocorrelation peak sidelobe of a Barker code is 1.
	n := len(Barker13)
	for lag := 1; lag < n; lag++ {
		var s float64
		for i := 0; i+lag < n; i++ {
			s += Barker13[i] * Barker13[i+lag]
		}
		if math.Abs(s) > 1+1e-12 {
			t.Errorf("Barker sidelobe at lag %d = %v", lag, s)
		}
	}
}
