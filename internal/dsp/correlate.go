package dsp

import (
	"math"
	"math/cmplx"

	"vab/internal/telemetry"
)

// XCorr returns the cross-correlation of x against reference ref at every
// alignment where ref fits fully inside x:
//
//	out[k] = Σ_n x[k+n]·conj(ref[n]),  k = 0 … len(x)-len(ref)
//
// It is the sliding matched filter used for preamble acquisition. For short
// references the direct method is used; long references go through FFT
// convolution.
func XCorr(x, ref []complex128) []complex128 {
	if len(ref) == 0 || len(x) < len(ref) {
		return nil
	}
	sp := telemetry.StartSpan(metXCorrTime)
	defer sp.End()
	nOut := len(x) - len(ref) + 1
	// Heuristic: direct O(n·m) beats FFT for small m.
	if len(ref) <= 64 {
		out := make([]complex128, nOut)
		for k := 0; k < nOut; k++ {
			var acc complex128
			for n, r := range ref {
				acc += x[k+n] * cmplx.Conj(r)
			}
			out[k] = acc
		}
		return out
	}
	// FFT path: correlation = convolution with conjugated, reversed ref.
	// The reversed reference only lives for the Convolve call, so it runs
	// on a pooled scratch buffer.
	s := getScratch(len(ref))
	rev := s.buf
	for i, r := range ref {
		rev[len(ref)-1-i] = cmplx.Conj(r)
	}
	full := Convolve(x, rev)
	putScratch(s)
	// Valid region starts at len(ref)-1.
	return full[len(ref)-1 : len(ref)-1+nOut]
}

// NormXCorr returns the normalized cross-correlation magnitude in [0, 1]:
// |xcorr| / (|x window| · |ref|). A peak near 1 indicates a clean preamble
// hit regardless of channel gain.
func NormXCorr(x, ref []complex128) []float64 {
	raw := XCorr(x, ref)
	if raw == nil {
		return nil
	}
	refE := Energy(ref)
	if refE == 0 {
		return make([]float64, len(raw))
	}
	out := make([]float64, len(raw))
	// Sliding window energy of x.
	var winE float64
	m := len(ref)
	for i := 0; i < m; i++ {
		winE += sq(x[i])
	}
	for k := range raw {
		den := winE * refE
		if den > 0 {
			c := raw[k]
			out[k] = (real(c)*real(c) + imag(c)*imag(c)) / den
		}
		if k+m < len(x) {
			winE += sq(x[k+m]) - sq(x[k])
			if winE < 0 {
				winE = 0
			}
		}
	}
	// Return sqrt so values are amplitude-normalized correlation.
	for i, v := range out {
		out[i] = sqrt64(v)
	}
	return out
}

func sq(c complex128) float64 { return real(c)*real(c) + imag(c)*imag(c) }

func sqrt64(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// ArgMaxAbs returns the index and magnitude of the largest-magnitude element.
func ArgMaxAbs(x []complex128) (int, float64) {
	best := -1.0
	idx := 0
	for i, v := range x {
		m := sq(v)
		if m > best {
			best = m
			idx = i
		}
	}
	return idx, sqrt64(best)
}

// ArgMax returns the index and value of the largest element of a real slice.
func ArgMax(x []float64) (int, float64) {
	idx := 0
	best := x[0]
	for i, v := range x {
		if v > best {
			best = v
			idx = i
		}
	}
	return idx, best
}
