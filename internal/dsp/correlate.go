package dsp

import (
	"math"
	"math/cmplx"

	"vab/internal/telemetry"
)

// XCorr returns the cross-correlation of x against reference ref at every
// alignment where ref fits fully inside x:
//
//	out[k] = Σ_n x[k+n]·conj(ref[n]),  k = 0 … len(x)-len(ref)
//
// It is the sliding matched filter used for preamble acquisition. For short
// references the direct method is used; long references go through FFT
// convolution.
func XCorr(x, ref []complex128) []complex128 {
	if len(ref) == 0 || len(x) < len(ref) {
		return nil
	}
	out := make([]complex128, len(x)-len(ref)+1)
	XCorrInto(out, x, ref)
	return out
}

// XCorrInto computes the cross-correlation of x against ref into dst, which
// must have length len(x)-len(ref)+1. It is the allocation-free form of
// XCorr: the direct path writes straight into dst, and the FFT path runs
// entirely on pooled scratch buffers before copying the valid region out.
func XCorrInto(dst []complex128, x, ref []complex128) {
	if len(ref) == 0 || len(x) < len(ref) {
		return
	}
	nOut := len(x) - len(ref) + 1
	if len(dst) != nOut {
		panic("dsp: XCorrInto length mismatch")
	}
	sp := telemetry.StartSpan(metXCorrTime)
	defer sp.End()
	// Heuristic: direct O(n·m) beats FFT for small m.
	if len(ref) <= 64 {
		for k := 0; k < nOut; k++ {
			var acc complex128
			for n, r := range ref {
				acc += x[k+n] * cmplx.Conj(r)
			}
			dst[k] = acc
		}
		return
	}
	// FFT path: correlation = convolution with the conjugated, reversed ref,
	// computed as one circular convolution on pooled scratch (the body of
	// Convolve, inlined so the full-length result never escapes the pool).
	m := len(ref)
	n := len(x) + m - 1
	fftLen := NextPow2(n)
	p := radix2PlanFor(fftLen)
	sa, sb := getScratch(fftLen), getScratch(fftLen)
	fa, fb := sa.buf, sb.buf
	copy(fa, x)
	for i := len(x); i < fftLen; i++ {
		fa[i] = 0
	}
	for i, r := range ref {
		fb[m-1-i] = cmplx.Conj(r)
	}
	for i := m; i < fftLen; i++ {
		fb[i] = 0
	}
	p.inPlace(fa, false)
	p.inPlace(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p.inPlace(fa, true)
	inv := complex(1/float64(fftLen), 0)
	// Valid region starts at m-1.
	for k := 0; k < nOut; k++ {
		dst[k] = fa[m-1+k] * inv
	}
	putScratch(sa)
	putScratch(sb)
}

// NormXCorr returns the normalized cross-correlation magnitude in [0, 1]:
// |xcorr| / (|x window| · |ref|). A peak near 1 indicates a clean preamble
// hit regardless of channel gain.
func NormXCorr(x, ref []complex128) []float64 {
	if len(ref) == 0 || len(x) < len(ref) {
		return nil
	}
	out := make([]float64, len(x)-len(ref)+1)
	NormXCorrInto(out, x, ref)
	return out
}

// NormXCorrInto is the allocation-free form of NormXCorr: dst must have
// length len(x)-len(ref)+1 and receives the normalized correlation
// magnitudes. The raw correlation lives on a pooled scratch buffer, so the
// steady state allocates nothing.
func NormXCorrInto(dst []float64, x, ref []complex128) {
	if len(ref) == 0 || len(x) < len(ref) {
		return
	}
	nOut := len(x) - len(ref) + 1
	if len(dst) != nOut {
		panic("dsp: NormXCorrInto length mismatch")
	}
	sr := getScratch(nOut)
	raw := sr.buf
	XCorrInto(raw, x, ref)
	normalizeXCorr(dst, raw, x, ref, Energy(ref))
	putScratch(sr)
}

// normalizeXCorr turns raw correlation values into normalized magnitudes:
// |xcorr|² / (window energy · reference energy), then sqrt. Shared by the
// one-shot and cached-reference paths so both produce identical floats.
func normalizeXCorr(dst []float64, raw []complex128, x, ref []complex128, refE float64) {
	if refE == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	// Sliding window energy of x.
	var winE float64
	m := len(ref)
	for i := 0; i < m; i++ {
		winE += sq(x[i])
	}
	for k := range raw[:len(dst)] {
		dst[k] = 0
		den := winE * refE
		if den > 0 {
			c := raw[k]
			dst[k] = (real(c)*real(c) + imag(c)*imag(c)) / den
		}
		if k+m < len(x) {
			winE += sq(x[k+m]) - sq(x[k])
			if winE < 0 {
				winE = 0
			}
		}
	}
	// Return sqrt so values are amplitude-normalized correlation.
	for i, v := range dst {
		dst[i] = sqrt64(v)
	}
}

// Correlator performs repeated cross-correlations against one fixed
// reference (a matched filter): the conjugated-reversed reference spectrum
// is computed once per transform size and cached, saving one full FFT per
// correlation versus XCorrInto. Results are bit-identical to XCorrInto /
// NormXCorrInto — the cached spectrum is exactly what those compute per
// call — so a seeded pipeline can adopt it without perturbing transcripts.
// Not safe for concurrent use.
type Correlator struct {
	ref  []complex128
	refE float64

	fftLen int          // transform size the cached spectrum is valid for
	spec   []complex128 // FFT of conj-reversed zero-padded ref, length fftLen
}

// NewCorrelator builds a matched filter for ref (the slice is copied).
func NewCorrelator(ref []complex128) *Correlator {
	r := make([]complex128, len(ref))
	copy(r, ref)
	return &Correlator{ref: r, refE: Energy(r)}
}

// RefLen returns the reference length.
func (c *Correlator) RefLen() int { return len(c.ref) }

// specFor returns the cached reference spectrum for fftLen, computing it on
// first use (and whenever the capture length changes the transform size —
// steady-state pipelines have one fixed size, so this is one FFT ever).
func (c *Correlator) specFor(fftLen int) []complex128 {
	if c.fftLen == fftLen {
		return c.spec
	}
	if cap(c.spec) < fftLen {
		c.spec = make([]complex128, fftLen)
	}
	c.spec = c.spec[:fftLen]
	m := len(c.ref)
	for i, r := range c.ref {
		c.spec[m-1-i] = cmplx.Conj(r)
	}
	for i := m; i < fftLen; i++ {
		c.spec[i] = 0
	}
	radix2PlanFor(fftLen).inPlace(c.spec, false)
	c.fftLen = fftLen
	return c.spec
}

// XCorrInto computes the cross-correlation of x against the reference into
// dst (length len(x)-RefLen()+1), allocation-free in steady state and
// bit-identical to the package-level XCorrInto.
func (c *Correlator) XCorrInto(dst, x []complex128) {
	if len(c.ref) == 0 || len(x) < len(c.ref) {
		return
	}
	nOut := len(x) - len(c.ref) + 1
	if len(dst) != nOut {
		panic("dsp: Correlator XCorrInto length mismatch")
	}
	sp := telemetry.StartSpan(metXCorrTime)
	defer sp.End()
	if len(c.ref) <= 64 {
		for k := 0; k < nOut; k++ {
			var acc complex128
			for n, r := range c.ref {
				acc += x[k+n] * cmplx.Conj(r)
			}
			dst[k] = acc
		}
		return
	}
	m := len(c.ref)
	fftLen := NextPow2(len(x) + m - 1)
	fb := c.specFor(fftLen)
	p := radix2PlanFor(fftLen)
	sa := getScratch(fftLen)
	fa := sa.buf
	copy(fa, x)
	for i := len(x); i < fftLen; i++ {
		fa[i] = 0
	}
	p.inPlace(fa, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p.inPlace(fa, true)
	inv := complex(1/float64(fftLen), 0)
	for k := 0; k < nOut; k++ {
		dst[k] = fa[m-1+k] * inv
	}
	putScratch(sa)
}

// NormXCorrInto is the normalized form (see package-level NormXCorrInto),
// using the cached reference spectrum and energy.
func (c *Correlator) NormXCorrInto(dst []float64, x []complex128) {
	if len(c.ref) == 0 || len(x) < len(c.ref) {
		return
	}
	nOut := len(x) - len(c.ref) + 1
	if len(dst) != nOut {
		panic("dsp: Correlator NormXCorrInto length mismatch")
	}
	sr := getScratch(nOut)
	raw := sr.buf
	c.XCorrInto(raw, x)
	normalizeXCorr(dst, raw, x, c.ref, c.refE)
	putScratch(sr)
}

func sq(c complex128) float64 { return real(c)*real(c) + imag(c)*imag(c) }

func sqrt64(v float64) float64 {
	if v <= 0 {
		return 0
	}
	return math.Sqrt(v)
}

// ArgMaxAbs returns the index and magnitude of the largest-magnitude element.
func ArgMaxAbs(x []complex128) (int, float64) {
	best := -1.0
	idx := 0
	for i, v := range x {
		m := sq(v)
		if m > best {
			best = m
			idx = i
		}
	}
	return idx, sqrt64(best)
}

// ArgMax returns the index and value of the largest element of a real slice.
func ArgMax(x []float64) (int, float64) {
	idx := 0
	best := x[0]
	for i, v := range x {
		if v > best {
			best = v
			idx = i
		}
	}
	return idx, best
}
