package dsp

import (
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestXCorrDirectVsFFT(t *testing.T) {
	// The implementation switches to FFT above 64 reference samples; both
	// paths must agree with the brute-force definition.
	rng := rand.New(rand.NewSource(21))
	for _, m := range []int{8, 64, 65, 200} {
		x := randComplex(rng, 400)
		ref := randComplex(rng, m)
		got := XCorr(x, ref)
		if len(got) != len(x)-m+1 {
			t.Fatalf("m=%d: length %d, want %d", m, len(got), len(x)-m+1)
		}
		for k := 0; k < len(got); k += 37 { // spot-check
			var want complex128
			for n := 0; n < m; n++ {
				want += x[k+n] * cmplx.Conj(ref[n])
			}
			if !approxEqC(got[k], want, 1e-6) {
				t.Errorf("m=%d k=%d: got %v want %v", m, k, got[k], want)
			}
		}
	}
}

func TestXCorrDegenerate(t *testing.T) {
	if XCorr(nil, []complex128{1}) != nil {
		t.Error("short x should return nil")
	}
	if XCorr([]complex128{1, 2}, nil) != nil {
		t.Error("empty ref should return nil")
	}
	if XCorr([]complex128{1}, []complex128{1, 2}) != nil {
		t.Error("ref longer than x should return nil")
	}
}

func TestNormXCorrPeakAtEmbedding(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ref := randComplex(rng, 63)
	x := make([]complex128, 300)
	GaussianNoise(x, 0.01, rng)
	// Embed a scaled, rotated copy of ref at offset 100.
	g := complex(3, 1)
	for i, r := range ref {
		x[100+i] += g * r
	}
	nc := NormXCorr(x, ref)
	idx, peak := ArgMax(nc)
	if idx != 100 {
		t.Fatalf("peak at %d, want 100", idx)
	}
	if peak < 0.95 {
		t.Errorf("peak %v, want near 1 (gain-invariant)", peak)
	}
	// Away from the embedding, correlation should be low.
	for k := 0; k < 40; k++ {
		if nc[k] > 0.5 {
			t.Errorf("spurious correlation %v at %d", nc[k], k)
		}
	}
}

func TestNormXCorrBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randComplex(rng, 256)
	ref := randComplex(rng, 32)
	for i, v := range NormXCorr(x, ref) {
		if v < 0 || v > 1+1e-9 {
			t.Errorf("norm xcorr[%d] = %v outside [0,1]", i, v)
		}
	}
}

func TestNormXCorrZeroRef(t *testing.T) {
	x := randComplex(rand.New(rand.NewSource(1)), 16)
	out := NormXCorr(x, make([]complex128, 4))
	for _, v := range out {
		if v != 0 {
			t.Error("zero reference should yield zero correlation")
		}
	}
}

func TestArgMaxAbs(t *testing.T) {
	x := []complex128{1, complex(0, -5), 2}
	idx, mag := ArgMaxAbs(x)
	if idx != 1 || !approxEq(mag, 5, 1e-12) {
		t.Errorf("ArgMaxAbs = (%d, %v)", idx, mag)
	}
}

func TestFractionalDelayInteger(t *testing.T) {
	x := []complex128{1, 2, 3, 4, 5}
	y := FractionalDelay(x, 2, 8)
	want := []complex128{0, 0, 1, 2, 3}
	for i := range want {
		if !approxEqC(y[i], want[i], 1e-12) {
			t.Errorf("y[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestFractionalDelayHalfSampleTone(t *testing.T) {
	// Delaying a complex exponential by d samples multiplies it by
	// e^{-j2πfd/fs}; verify phase accuracy in the interior.
	fs := 16000.0
	f := 1200.0
	n := 512
	x := tone(f, fs, n, 1, 0)
	d := 3.5
	y := FractionalDelay(x, d, 16)
	expected := cmplx.Rect(1, -Tau*f*d/fs)
	for i := 50; i < n-50; i++ {
		want := x[i] * expected
		if !approxEqC(y[i], want, 0.01) {
			t.Fatalf("sample %d: got %v want %v", i, y[i], want)
		}
	}
}

func TestFractionalDelayPanicsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative delay")
		}
	}()
	FractionalDelay([]complex128{1}, -1, 8)
}

func TestDecimateUpsampleRoundTrip(t *testing.T) {
	fs := 16000.0
	n := 1024
	// Band-limited signal: 300 Hz tone, well inside fs/8.
	x := tone(300, fs, n, 1, 0)
	down, err := Decimate(x, 4, fs)
	if err != nil {
		t.Fatal(err)
	}
	if len(down) != n/4 {
		t.Fatalf("decimated length %d", len(down))
	}
	up, err := Upsample(down, 4, fs/4)
	if err != nil {
		t.Fatal(err)
	}
	// Compare against the original in the interior, allowing for the two
	// filter group delays: the decimation filter contributes 31 samples at
	// the original rate and the interpolation filter another 31, so the
	// round trip lags by 62 samples.
	delay := 31 + 31
	var err2, sig float64
	for i := 200; i < 700; i++ {
		d := cmplx.Abs(up[i+delay] - x[i])
		err2 += d * d
		sig += sq(x[i])
	}
	if err2/sig > 0.05 {
		t.Errorf("round-trip relative error %v too high", err2/sig)
	}
}

func TestDecimateFactorOne(t *testing.T) {
	x := []complex128{1, 2, 3}
	y, err := Decimate(x, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	y[0] = 99
	if x[0] == 99 {
		t.Error("factor-1 decimate must copy")
	}
}

// TestCorrelatorMatchesOneShot pins the cached-reference correlator against
// the package-level functions bit-exactly, on both the direct (short ref)
// and FFT (long ref) paths, including a capture-length change that forces a
// spectrum recompute.
func TestCorrelatorMatchesOneShot(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, m := range []int{16, 200} {
		ref := make([]complex128, m)
		for i := range ref {
			ref[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		c := NewCorrelator(ref)
		for _, n := range []int{m + 50, 1000, 777} {
			x := make([]complex128, n)
			for i := range x {
				x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			}
			want := XCorr(x, ref)
			got := make([]complex128, len(want))
			c.XCorrInto(got, x)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("m=%d n=%d: XCorr mismatch at %d: %v != %v", m, n, i, got[i], want[i])
				}
			}
			wantN := NormXCorr(x, ref)
			gotN := make([]float64, len(wantN))
			c.NormXCorrInto(gotN, x)
			for i := range wantN {
				if gotN[i] != wantN[i] {
					t.Fatalf("m=%d n=%d: NormXCorr mismatch at %d: %v != %v", m, n, i, gotN[i], wantN[i])
				}
			}
		}
		// Steady state (fixed capture length): no allocations. The scratch
		// comes from a sync.Pool, which deliberately discards items under
		// the race detector, so the pin only holds in a normal build.
		if raceEnabled {
			continue
		}
		x := make([]complex128, 1000)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		dst := make([]float64, len(x)-m+1)
		c.NormXCorrInto(dst, x)
		if a := testing.AllocsPerRun(10, func() { c.NormXCorrInto(dst, x) }); a != 0 {
			t.Errorf("m=%d: Correlator NormXCorrInto allocates %.1f per run in steady state", m, a)
		}
	}
}
