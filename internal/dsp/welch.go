package dsp

import "fmt"

// WelchPSD estimates the power spectral density of x by Welch's method:
// the signal is split into windowed segments of length nfft with 50%
// overlap, each segment's periodogram is computed, and the periodograms are
// averaged. The result has nfft bins following the DFT frequency
// convention (use FFTFreqs for the axis) and is normalized so that the sum
// over bins equals the mean signal power — consistent with PowerSpectrum.
//
// Welch averaging trades frequency resolution for variance: single
// periodograms of noise have 100% relative variance per bin, useless for
// verifying spectral shapes like the channel's Wenz coloring.
func WelchPSD(x []complex128, nfft int, w Window) ([]float64, error) {
	if nfft < 8 {
		return nil, fmt.Errorf("dsp: welch needs nfft >= 8, got %d", nfft)
	}
	if len(x) < nfft {
		return nil, fmt.Errorf("dsp: welch needs at least one segment (%d samples), have %d", nfft, len(x))
	}
	hop := nfft / 2
	win := w.Coefficients(nfft)
	// Window power normalization: each segment is scaled so a white input
	// of power P yields Σbins = P.
	var winE float64
	for _, v := range win {
		winE += v * v
	}
	out := make([]float64, nfft)
	seg := make([]complex128, nfft)
	count := 0
	for off := 0; off+nfft <= len(x); off += hop {
		for i := 0; i < nfft; i++ {
			seg[i] = x[off+i] * complex(win[i], 0)
		}
		FFTInto(seg, seg) // windowed copy is rebuilt next pass anyway
		for i, v := range seg {
			out[i] += real(v)*real(v) + imag(v)*imag(v)
		}
		count++
	}
	norm := 1 / (float64(count) * winE * float64(nfft))
	for i := range out {
		out[i] *= norm
	}
	return out, nil
}

// BandPower integrates a PSD (as returned by WelchPSD) over the frequency
// band [loHz, hiHz) given the sample rate, handling negative frequencies
// per the DFT convention.
func BandPower(psd []float64, fsHz, loHz, hiHz float64) float64 {
	n := len(psd)
	var p float64
	for i, v := range psd {
		f := float64(i) * fsHz / float64(n)
		if i > n/2 {
			f -= fsHz
		}
		if f >= loHz && f < hiHz {
			p += v
		}
	}
	return p
}
