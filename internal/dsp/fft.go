package dsp

import (
	"math"
	"math/cmplx"

	"vab/internal/telemetry"
)

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Power-of-two lengths use an iterative radix-2 Cooley-Tukey
// transform; other lengths fall back to Bluestein's algorithm, so any
// length is supported in O(n log n).
func FFT(x []complex128) []complex128 {
	sp := telemetry.StartSpan(metFFTTime)
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, false)
	sp.End()
	return out
}

// IFFT returns the inverse DFT of x (with 1/n normalization).
func IFFT(x []complex128) []complex128 {
	sp := telemetry.StartSpan(metFFTTime)
	out := make([]complex128, len(x))
	copy(out, x)
	fftInPlace(out, true)
	sp.End()
	return out
}

// fftInPlace transforms x in place. inverse selects the inverse transform,
// which includes the 1/n scaling.
func fftInPlace(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	if IsPow2(n) {
		radix2(x, inverse)
	} else {
		bluestein(x, inverse)
	}
	if inverse {
		s := complex(1/float64(n), 0)
		for i := range x {
			x[i] *= s
		}
	}
}

// radix2 performs an unnormalized in-place radix-2 DIT FFT. len(x) must be a
// power of two.
func radix2(x []complex128, inverse bool) {
	n := len(x)
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for length := 2; length <= n; length <<= 1 {
		ang := sign * Tau / float64(length)
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			half := length / 2
			for j := 0; j < half; j++ {
				u := x[i+j]
				v := x[i+j+half] * w
				x[i+j] = u + v
				x[i+j+half] = u - v
				w *= wl
			}
		}
	}
}

// bluestein computes an unnormalized DFT of arbitrary length via the
// chirp-z transform, using two power-of-two FFT convolutions.
func bluestein(x []complex128, inverse bool) {
	n := len(x)
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	// Chirp w[k] = exp(sign*iπk²/n). k² mod 2n avoids precision loss for
	// large k.
	chirp := make([]complex128, n)
	for k := 0; k < n; k++ {
		kk := (int64(k) * int64(k)) % int64(2*n)
		chirp[k] = cmplx.Rect(1, sign*math.Pi*float64(kk)/float64(n))
	}
	m := NextPow2(2*n - 1)
	a := make([]complex128, m)
	b := make([]complex128, m)
	for k := 0; k < n; k++ {
		a[k] = x[k] * chirp[k]
	}
	b[0] = cmplx.Conj(chirp[0])
	for k := 1; k < n; k++ {
		c := cmplx.Conj(chirp[k])
		b[k] = c
		b[m-k] = c
	}
	radix2(a, false)
	radix2(b, false)
	for i := range a {
		a[i] *= b[i]
	}
	radix2(a, true)
	inv := complex(1/float64(m), 0) // undo unnormalized inverse
	for k := 0; k < n; k++ {
		x[k] = a[k] * inv * chirp[k]
	}
}

// RFFT computes the DFT of a real sequence, returning the full complex
// spectrum (length len(x)).
func RFFT(x []float64) []complex128 {
	return FFT(ToComplex(x))
}

// FFTFreqs returns the frequency in hertz of each DFT bin for an n-point
// transform at sample rate fs, following the usual convention where bins
// above n/2 represent negative frequencies.
func FFTFreqs(n int, fs float64) []float64 {
	f := make([]float64, n)
	for i := range f {
		k := i
		if i > n/2 {
			k = i - n
		}
		f[i] = float64(k) * fs / float64(n)
	}
	return f
}

// FFTShift reorders a spectrum so that the zero-frequency bin is centered.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	h := (n + 1) / 2
	copy(out, x[h:])
	copy(out[n-h:], x[:h])
	return out
}

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)-1) computed via FFT.
func Convolve(a, b []complex128) []complex128 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	n := len(a) + len(b) - 1
	m := NextPow2(n)
	fa := make([]complex128, m)
	fb := make([]complex128, m)
	copy(fa, a)
	copy(fb, b)
	radix2(fa, false)
	radix2(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	radix2(fa, true)
	inv := complex(1/float64(m), 0)
	out := make([]complex128, n)
	for i := range out {
		out[i] = fa[i] * inv
	}
	return out
}

// PowerSpectrum returns |FFT(x)|²/n for each bin, a periodogram estimate of
// the power spectral density scaled so that the sum over bins equals the
// signal power.
func PowerSpectrum(x []complex128) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	s := FFT(x)
	ps := make([]float64, n)
	inv := 1 / (float64(n) * float64(n))
	for i, v := range s {
		ps[i] = (real(v)*real(v) + imag(v)*imag(v)) * inv
	}
	return ps
}
