package dsp

import (
	"math/cmplx"

	"vab/internal/telemetry"
)

// FFT returns the discrete Fourier transform of x. The input is not
// modified. Power-of-two lengths use an iterative radix-2 Cooley-Tukey
// transform; other lengths fall back to Bluestein's algorithm, so any
// length is supported in O(n log n). Twiddle, permutation and chirp tables
// are cached per size (see plan.go), so repeated transforms of the same
// length do no trigonometry and — via FFTInto — no allocation.
func FFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	FFTInto(out, x)
	return out
}

// IFFT returns the inverse DFT of x (with 1/n normalization).
func IFFT(x []complex128) []complex128 {
	out := make([]complex128, len(x))
	IFFTInto(out, x)
	return out
}

// FFTInto computes the DFT of src into dst without allocating (after the
// size's plan is cached). The slices must have equal length and either be
// identical (in-place transform) or not overlap.
func FFTInto(dst, src []complex128) {
	transformInto(dst, src, false)
}

// IFFTInto computes the inverse DFT (with 1/n normalization) of src into
// dst under the same aliasing rules as FFTInto.
func IFFTInto(dst, src []complex128) {
	transformInto(dst, src, true)
}

func transformInto(dst, src []complex128, inverse bool) {
	n := len(src)
	if len(dst) != n {
		panic("dsp: FFTInto length mismatch")
	}
	if n == 0 {
		return
	}
	if n == 1 {
		dst[0] = src[0]
		return
	}
	sp := telemetry.StartSpan(metFFTTime)
	if IsPow2(n) {
		p := radix2PlanFor(n)
		if &dst[0] == &src[0] {
			p.inPlace(dst, inverse)
		} else {
			p.into(dst, src, inverse)
		}
	} else {
		bluesteinPlanFor(n).into(dst, src, inverse)
	}
	if inverse {
		s := complex(1/float64(n), 0)
		for i := range dst {
			dst[i] *= s
		}
	}
	sp.End()
}

// RFFT computes the DFT of a real sequence, returning the full complex
// spectrum (length len(x)). Even lengths use the half-size packing trick:
// the real sequence is folded into a complex sequence of half the length,
// transformed once, and the spectrum unpacked from the fold's conjugate
// symmetry — roughly halving the work of the naive real-as-complex path.
func RFFT(x []float64) []complex128 {
	if len(x) == 0 {
		return nil
	}
	out := make([]complex128, len(x))
	RFFTInto(out, x)
	return out
}

// RFFTInto computes the DFT of the real sequence x into dst
// (len(dst) == len(x)) — the steady-state form of RFFT: once the size's
// plan is cached it allocates nothing. dst must not overlap x's backing
// array (they have different element types, so they never do in practice).
func RFFTInto(dst []complex128, x []float64) {
	n := len(x)
	if len(dst) != n {
		panic("dsp: RFFTInto length mismatch")
	}
	if n == 0 {
		return
	}
	if n%2 != 0 || n < 4 {
		// Odd or tiny lengths: widen in place and transform (FFTInto and
		// the Bluestein plan both tolerate dst == src).
		for i, v := range x {
			dst[i] = complex(v, 0)
		}
		FFTInto(dst, dst)
		return
	}
	h := n / 2
	s := getScratch(h)
	z := s.buf
	for k := 0; k < h; k++ {
		z[k] = complex(x[2*k], x[2*k+1])
	}
	FFTInto(z, z)

	// Unpack: with Z the half-size DFT of z[k] = x[2k] + i·x[2k+1],
	//   Xe[k] = (Z[k] + conj(Z[h-k]))/2        (spectrum of the even samples)
	//   Xo[k] = (Z[k] - conj(Z[h-k]))/(2i)     (spectrum of the odd samples)
	//   X[k]  = Xe[k] + e^{-2πik/n}·Xo[k]
	// and the upper half follows from real-input conjugate symmetry.
	var tw []complex128 // e^{-2πik/n} for k < h; the radix-2 table when cached
	if IsPow2(n) {
		tw = radix2PlanFor(n).wFwd
	}
	for k := 1; k < h; k++ {
		ze := (z[k] + cmplx.Conj(z[h-k])) * 0.5
		zo := (z[k] - cmplx.Conj(z[h-k])) * complex(0, -0.5)
		var w complex128
		if tw != nil {
			w = tw[k]
		} else {
			w = cmplx.Rect(1, -Tau*float64(k)/float64(n))
		}
		dst[k] = ze + w*zo
	}
	dst[0] = complex(real(z[0])+imag(z[0]), 0)
	dst[h] = complex(real(z[0])-imag(z[0]), 0)
	for k := 1; k < h; k++ {
		dst[n-k] = cmplx.Conj(dst[k])
	}
	putScratch(s)
}

// FFTFreqs returns the frequency in hertz of each DFT bin for an n-point
// transform at sample rate fs, following the usual convention where bins
// above n/2 represent negative frequencies.
func FFTFreqs(n int, fs float64) []float64 {
	f := make([]float64, n)
	for i := range f {
		k := i
		if i > n/2 {
			k = i - n
		}
		f[i] = float64(k) * fs / float64(n)
	}
	return f
}

// FFTShift reorders a spectrum so that the zero-frequency bin is centered.
func FFTShift(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	h := (n + 1) / 2
	copy(out, x[h:])
	copy(out[n-h:], x[:h])
	return out
}

// Convolve returns the full linear convolution of a and b
// (length len(a)+len(b)-1) computed via FFT. The forward transforms run on
// pooled scratch buffers, so only the returned slice is allocated.
func Convolve(a, b []complex128) []complex128 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]complex128, len(a)+len(b)-1)
	ConvolveInto(out, a, b)
	return out
}

// ConvolveInto computes the full linear convolution of a and b into dst,
// which must have length len(a)+len(b)-1 — the steady-state form of
// Convolve: once the transform size's plan is cached it allocates
// nothing. dst may alias a or b (the products are formed entirely in
// pooled scratch before dst is written).
func ConvolveInto(dst, a, b []complex128) {
	if len(a) == 0 || len(b) == 0 {
		if len(dst) != 0 {
			panic("dsp: ConvolveInto length mismatch")
		}
		return
	}
	n := len(a) + len(b) - 1
	if len(dst) != n {
		panic("dsp: ConvolveInto length mismatch")
	}
	m := NextPow2(n)
	p := radix2PlanFor(m)
	sa, sb := getScratch(m), getScratch(m)
	fa, fb := sa.buf, sb.buf
	copy(fa, a)
	for i := len(a); i < m; i++ {
		fa[i] = 0
	}
	copy(fb, b)
	for i := len(b); i < m; i++ {
		fb[i] = 0
	}
	p.inPlace(fa, false)
	p.inPlace(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	p.inPlace(fa, true)
	inv := complex(1/float64(m), 0)
	for i := range dst {
		dst[i] = fa[i] * inv
	}
	putScratch(sa)
	putScratch(sb)
}

// PowerSpectrum returns |FFT(x)|²/n for each bin, a periodogram estimate of
// the power spectral density scaled so that the sum over bins equals the
// signal power. The spectrum lives in a pooled scratch buffer; only the
// returned real slice is allocated.
func PowerSpectrum(x []complex128) []float64 {
	n := len(x)
	if n == 0 {
		return nil
	}
	sc := getScratch(n)
	FFTInto(sc.buf, x)
	ps := make([]float64, n)
	inv := 1 / (float64(n) * float64(n))
	for i, v := range sc.buf {
		ps[i] = (real(v)*real(v) + imag(v)*imag(v)) * inv
	}
	putScratch(sc)
	return ps
}
