package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func tone(fHz, fsHz float64, n int, amp float64, phase float64) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(amp, Tau*fHz*float64(i)/fsHz+phase)
	}
	return x
}

func TestGoertzelMatchesFFTBin(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 128
	fs := 16000.0
	x := randComplex(rng, n)
	s := FFT(x)
	for _, bin := range []int{0, 1, 5, 64, 127} {
		f := float64(bin) * fs / float64(n)
		g := NewGoertzel(f, fs)
		got := g.Correlate(x)
		if !approxEqC(got, s[bin], 1e-7) {
			t.Errorf("bin %d: goertzel %v != fft %v", bin, got, s[bin])
		}
	}
}

func TestGoertzelNegativeFrequency(t *testing.T) {
	fs := 16000.0
	n := 160
	x := tone(-1000, fs, n, 1, 0.3)
	gNeg := NewGoertzel(-1000, fs)
	gPos := NewGoertzel(1000, fs)
	eNeg := gNeg.Energy(x)
	ePos := gPos.Energy(x)
	if eNeg < 100*ePos {
		t.Errorf("negative-frequency tone not separated: e(-1k)=%v e(+1k)=%v", eNeg, ePos)
	}
	// Energy of a perfectly aligned tone: |n·amp|² = n².
	if !approxEq(eNeg, float64(n*n), 1e-6*float64(n*n)) {
		t.Errorf("tone energy = %v, want %v", eNeg, n*n)
	}
}

func TestToneBankBest(t *testing.T) {
	fs := 16000.0
	tb := NewToneBank([]float64{500, 1000, 2000}, fs)
	n := 320 // 20 ms: integer cycles of all three tones
	for want, f := range []float64{500, 1000, 2000} {
		x := tone(f, fs, n, 1, 1.0)
		idx, best, second := tb.Best(x)
		if idx != want {
			t.Errorf("tone %v Hz detected as index %d", f, idx)
		}
		if best < 1000*second+1e-12 && second > 1e-9 {
			t.Errorf("tone %v Hz: weak separation best=%v second=%v", f, best, second)
		}
	}
}

func TestToneBankEnergiesProperty(t *testing.T) {
	// Energies must be non-negative and sum-consistent with Correlate.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := randComplex(r, 64)
		tb := NewToneBank([]float64{250, 750}, 8000)
		e := tb.Energies(make([]float64, 2), x)
		for _, v := range e {
			if v < 0 || math.IsNaN(v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestToneBankFreqs(t *testing.T) {
	tb := NewToneBank([]float64{100, 200}, 8000)
	f := tb.Freqs()
	f[0] = 999 // mutation must not leak into the bank
	if tb.Freqs()[0] != 100 {
		t.Error("Freqs returned internal slice")
	}
}

func TestGoertzelOrthogonalBitInterval(t *testing.T) {
	// FSK tones spaced at 1/T are orthogonal over a bit interval T: the
	// demodulator relies on this to keep inter-tone leakage near zero.
	fs := 16000.0
	bitRate := 500.0
	n := int(fs / bitRate)   // 32 samples per bit
	f0, f1 := 1000.0, 1500.0 // spacing = bitRate, so orthogonal over n samples
	x := tone(f0, fs, n, 1, 0)
	g1 := NewGoertzel(f1, fs)
	leak := g1.Energy(x)
	g0 := NewGoertzel(f0, fs)
	sig := g0.Energy(x)
	if leak > sig*1e-20+1e-9 {
		t.Errorf("orthogonal tones leak: sig=%v leak=%v", sig, leak)
	}
}
