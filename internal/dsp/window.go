package dsp

import "math"

// Window identifies a tapering window function.
type Window int

// Supported window functions.
const (
	Rectangular Window = iota
	Hann
	Hamming
	Blackman
	BlackmanHarris
)

// String returns the window's conventional name.
func (w Window) String() string {
	switch w {
	case Rectangular:
		return "rectangular"
	case Hann:
		return "hann"
	case Hamming:
		return "hamming"
	case Blackman:
		return "blackman"
	case BlackmanHarris:
		return "blackman-harris"
	default:
		return "unknown"
	}
}

// Coefficients returns the n window coefficients using the symmetric
// convention (endpoints included), suitable for FIR design.
func (w Window) Coefficients(n int) []float64 {
	c := make([]float64, n)
	if n == 1 {
		c[0] = 1
		return c
	}
	den := float64(n - 1)
	for i := 0; i < n; i++ {
		t := float64(i) / den
		switch w {
		case Rectangular:
			c[i] = 1
		case Hann:
			c[i] = 0.5 - 0.5*math.Cos(Tau*t)
		case Hamming:
			c[i] = 0.54 - 0.46*math.Cos(Tau*t)
		case Blackman:
			c[i] = 0.42 - 0.5*math.Cos(Tau*t) + 0.08*math.Cos(2*Tau*t)
		case BlackmanHarris:
			c[i] = 0.35875 - 0.48829*math.Cos(Tau*t) +
				0.14128*math.Cos(2*Tau*t) - 0.01168*math.Cos(3*Tau*t)
		default:
			c[i] = 1
		}
	}
	return c
}

// Apply multiplies x element-wise by the window in place and returns x.
func (w Window) Apply(x []complex128) []complex128 {
	c := w.Coefficients(len(x))
	for i := range x {
		x[i] *= complex(c[i], 0)
	}
	return x
}

// CoherentGain returns the mean of the window coefficients: the amplitude
// scaling a windowed sinusoid experiences, used to normalize spectral
// estimates.
func (w Window) CoherentGain(n int) float64 {
	c := w.Coefficients(n)
	var s float64
	for _, v := range c {
		s += v
	}
	return s / float64(n)
}
