package dsp

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCaptureRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	c := &Capture{
		SampleRate: 16000,
		CarrierHz:  18500,
		Samples:    GaussianNoise(make([]complex128, 777), 2, rng),
	}
	var buf bytes.Buffer
	if err := WriteCapture(&buf, c); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCapture(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SampleRate != c.SampleRate || got.CarrierHz != c.CarrierHz {
		t.Errorf("metadata: %+v", got)
	}
	if len(got.Samples) != len(c.Samples) {
		t.Fatalf("sample count %d", len(got.Samples))
	}
	for i := range c.Samples {
		if got.Samples[i] != c.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestCaptureRoundTripProperty(t *testing.T) {
	f := func(seed int64, nRaw uint16, fs, fc float64) bool {
		if fs <= 0 || fs != fs { // NaN guard
			fs = 8000
		}
		n := int(nRaw) % 300
		rng := rand.New(rand.NewSource(seed))
		c := &Capture{SampleRate: fs, CarrierHz: fc,
			Samples: GaussianNoise(make([]complex128, n), 1, rng)}
		var buf bytes.Buffer
		if err := WriteCapture(&buf, c); err != nil {
			return false
		}
		got, err := ReadCapture(&buf)
		if err != nil || len(got.Samples) != n {
			return false
		}
		for i := range c.Samples {
			if got.Samples[i] != c.Samples[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCaptureErrors(t *testing.T) {
	if err := WriteCapture(&bytes.Buffer{}, &Capture{SampleRate: 0}); err == nil {
		t.Error("zero sample rate accepted")
	}
	if _, err := ReadCapture(bytes.NewReader([]byte{1, 2, 3})); !errors.Is(err, ErrBadCapture) {
		t.Errorf("short header: %v", err)
	}
	// Bad magic.
	var buf bytes.Buffer
	WriteCapture(&buf, &Capture{SampleRate: 1, Samples: []complex128{1}})
	b := buf.Bytes()
	b[0] ^= 0xFF
	if _, err := ReadCapture(bytes.NewReader(b)); !errors.Is(err, ErrBadCapture) {
		t.Errorf("bad magic: %v", err)
	}
	// Truncated payload.
	buf.Reset()
	WriteCapture(&buf, &Capture{SampleRate: 1, Samples: []complex128{1, 2, 3}})
	b = buf.Bytes()
	if _, err := ReadCapture(bytes.NewReader(b[:len(b)-5])); !errors.Is(err, ErrBadCapture) {
		t.Errorf("truncation: %v", err)
	}
	// Oversize count claim cannot allocate.
	buf.Reset()
	WriteCapture(&buf, &Capture{SampleRate: 1, Samples: nil})
	b = buf.Bytes()
	b[22], b[23], b[24], b[25] = 0xFF, 0xFF, 0xFF, 0xFF
	if _, err := ReadCapture(bytes.NewReader(b)); !errors.Is(err, ErrBadCapture) {
		t.Errorf("oversize count: %v", err)
	}
}
