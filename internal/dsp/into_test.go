package dsp

import (
	"math/rand"
	"testing"
)

func randReal(rng *rand.Rand, n int) []float64 {
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	return x
}

func TestRFFTIntoMatchesRFFT(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Even fast path, the odd/small Bluestein fallback, and power-of-two.
	for _, n := range []int{1, 2, 3, 4, 7, 100, 255, 256, 1024} {
		x := randReal(rng, n)
		want := RFFT(x)
		dst := make([]complex128, n)
		for i := range dst {
			dst[i] = complex(42, 42) // stale garbage must be overwritten
		}
		RFFTInto(dst, x)
		for i := range dst {
			if !approxEqC(dst[i], want[i], 1e-9*float64(n)) {
				t.Fatalf("n=%d bin %d: RFFTInto %v, RFFT %v", n, i, dst[i], want[i])
			}
		}
	}
}

func TestRFFTIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("short dst accepted")
		}
	}()
	RFFTInto(make([]complex128, 3), make([]float64, 4))
}

func TestConvolveIntoMatchesConvolve(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, tc := range [][2]int{{1, 1}, {4, 4}, {64, 16}, {100, 33}, {1024, 64}} {
		a := randComplex(rng, tc[0])
		b := randComplex(rng, tc[1])
		want := Convolve(a, b)
		dst := make([]complex128, len(a)+len(b)-1)
		ConvolveInto(dst, a, b)
		for i := range dst {
			if !approxEqC(dst[i], want[i], 1e-8*float64(len(dst))) {
				t.Fatalf("%dx%d tap %d: ConvolveInto %v, Convolve %v", tc[0], tc[1], i, dst[i], want[i])
			}
		}
	}
}

// TestConvolveIntoAliasing pins the documented contract that dst may share
// backing with an input: the hot callers convolve into a buffer whose
// prefix holds the signal being convolved.
func TestConvolveIntoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	a := randComplex(rng, 64)
	b := randComplex(rng, 16)
	want := Convolve(a, b)
	buf := make([]complex128, len(a)+len(b)-1)
	copy(buf, a)
	ConvolveInto(buf, buf[:len(a)], b)
	for i := range buf {
		if !approxEqC(buf[i], want[i], 1e-7) {
			t.Fatalf("aliased tap %d: %v, want %v", i, buf[i], want[i])
		}
	}
}

func TestConvolveIntoLengthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("wrong dst length accepted")
		}
	}()
	ConvolveInto(make([]complex128, 10), make([]complex128, 8), make([]complex128, 4))
}

// The Into forms are the hot-path variants: once the plan cache is warm
// they must not allocate. These pins are what lets RunRound's callers
// keep their zero-alloc steady state. Their scratch comes from a
// sync.Pool, which deliberately discards items under the race detector,
// so the pins only hold in a normal build.
func TestRFFTIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	for _, n := range []int{255, 1024} { // Bluestein fallback and even fast path
		x := randReal(rand.New(rand.NewSource(3)), n)
		dst := make([]complex128, n)
		RFFTInto(dst, x) // warm the plan cache
		if a := testing.AllocsPerRun(20, func() { RFFTInto(dst, x) }); a != 0 {
			t.Errorf("RFFTInto n=%d: %.0f allocs/op in steady state, want 0", n, a)
		}
	}
}

func TestConvolveIntoZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items under the race detector")
	}
	rng := rand.New(rand.NewSource(5))
	a := randComplex(rng, 1024)
	b := randComplex(rng, 64)
	dst := make([]complex128, len(a)+len(b)-1)
	ConvolveInto(dst, a, b) // warm the plan cache
	if n := testing.AllocsPerRun(20, func() { ConvolveInto(dst, a, b) }); n != 0 {
		t.Errorf("ConvolveInto 1024x64: %.0f allocs/op in steady state, want 0", n)
	}
}
