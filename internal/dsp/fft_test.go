package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

const tol = 1e-9

func approxEq(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func approxEqC(a, b complex128, eps float64) bool { return cmplx.Abs(a-b) <= eps }

func randComplex(rng *rand.Rand, n int) []complex128 {
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	return x
}

func TestFFTKnownValues(t *testing.T) {
	// DFT of a unit impulse is all ones.
	x := []complex128{1, 0, 0, 0}
	got := FFT(x)
	for i, v := range got {
		if !approxEqC(v, 1, tol) {
			t.Errorf("impulse FFT bin %d = %v, want 1", i, v)
		}
	}
	// DFT of constant is an impulse at DC.
	c := []complex128{2, 2, 2, 2}
	got = FFT(c)
	if !approxEqC(got[0], 8, tol) {
		t.Errorf("DC bin = %v, want 8", got[0])
	}
	for i := 1; i < 4; i++ {
		if !approxEqC(got[i], 0, tol) {
			t.Errorf("bin %d = %v, want 0", i, got[i])
		}
	}
}

func TestFFTSinusoidBin(t *testing.T) {
	// A complex exponential at bin k concentrates all energy in bin k.
	for _, n := range []int{8, 64, 100, 255} {
		k := 3
		x := make([]complex128, n)
		for i := range x {
			x[i] = cmplx.Rect(1, Tau*float64(k*i)/float64(n))
		}
		s := FFT(x)
		if !approxEqC(s[k], complex(float64(n), 0), 1e-7*float64(n)) {
			t.Errorf("n=%d: bin %d = %v, want %d", n, k, s[k], n)
		}
		for i := range s {
			if i != k && cmplx.Abs(s[i]) > 1e-6*float64(n) {
				t.Errorf("n=%d: leakage at bin %d: %v", n, i, s[i])
			}
		}
	}
}

func TestFFTRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%300 + 1
		r := rand.New(rand.NewSource(seed))
		x := randComplex(r, n)
		y := IFFT(FFT(x))
		for i := range x {
			if !approxEqC(x[i], y[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	f := func(seed int64, sz uint8) bool {
		n := int(sz)%256 + 1
		r := rand.New(rand.NewSource(seed))
		x := randComplex(r, n)
		s := FFT(x)
		// Σ|x|² == (1/n) Σ|X|²
		et := Energy(x)
		ef := Energy(s) / float64(n)
		return approxEq(et, ef, 1e-6*(1+et))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 96 // non-power-of-two on purpose
		a := randComplex(r, n)
		b := randComplex(r, n)
		alpha := complex(r.NormFloat64(), r.NormFloat64())
		sum := make([]complex128, n)
		for i := range sum {
			sum[i] = a[i] + alpha*b[i]
		}
		fa, fb, fs := FFT(a), FFT(b), FFT(sum)
		for i := range fs {
			if !approxEqC(fs[i], fa[i]+alpha*fb[i], 1e-7) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBluesteinMatchesRadix2(t *testing.T) {
	// Zero-padding a power-of-two input and comparing isn't valid (different
	// DFT lengths); instead compare Bluestein against a direct O(n²) DFT.
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{3, 5, 12, 37, 100} {
		x := randComplex(rng, n)
		got := FFT(x)
		for k := 0; k < n; k++ {
			var want complex128
			for i := 0; i < n; i++ {
				want += x[i] * cmplx.Rect(1, -Tau*float64(k*i)/float64(n))
			}
			if !approxEqC(got[k], want, 1e-7*float64(n)) {
				t.Errorf("n=%d bin %d: got %v want %v", n, k, got[k], want)
			}
		}
	}
}

func TestConvolveMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randComplex(rng, 17)
	b := randComplex(rng, 9)
	got := Convolve(a, b)
	if len(got) != len(a)+len(b)-1 {
		t.Fatalf("conv length %d, want %d", len(got), len(a)+len(b)-1)
	}
	for k := range got {
		var want complex128
		for i := range a {
			j := k - i
			if j >= 0 && j < len(b) {
				want += a[i] * b[j]
			}
		}
		if !approxEqC(got[k], want, 1e-8) {
			t.Errorf("conv[%d] = %v, want %v", k, got[k], want)
		}
	}
}

func TestFFTFreqs(t *testing.T) {
	f := FFTFreqs(8, 16000)
	want := []float64{0, 2000, 4000, 6000, 8000, -6000, -4000, -2000}
	for i := range want {
		if !approxEq(f[i], want[i], tol) {
			t.Errorf("freq[%d] = %v, want %v", i, f[i], want[i])
		}
	}
}

func TestFFTShift(t *testing.T) {
	x := []complex128{0, 1, 2, 3}
	got := FFTShift(x)
	want := []complex128{2, 3, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("shift[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Odd length.
	x = []complex128{0, 1, 2, 3, 4}
	got = FFTShift(x)
	want = []complex128{3, 4, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("odd shift[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestPowerSpectrumTone(t *testing.T) {
	n := 128
	x := make([]complex128, n)
	for i := range x {
		x[i] = cmplx.Rect(2, Tau*float64(5*i)/float64(n))
	}
	ps := PowerSpectrum(x)
	// All power (4.0) should be in bin 5.
	if !approxEq(ps[5], 4, 1e-9) {
		t.Errorf("tone bin power = %v, want 4", ps[5])
	}
	var total float64
	for _, v := range ps {
		total += v
	}
	if !approxEq(total, Power(x), 1e-9) {
		t.Errorf("total spectrum power %v != signal power %v", total, Power(x))
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1000: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestIsPow2(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 1024} {
		if !IsPow2(n) {
			t.Errorf("IsPow2(%d) = false", n)
		}
	}
	for _, n := range []int{0, -2, 3, 6, 100} {
		if IsPow2(n) {
			t.Errorf("IsPow2(%d) = true", n)
		}
	}
}
