package dsp

import (
	"math"
	"math/cmplx"
)

// Goertzel evaluates a single DFT bin over fixed-length blocks, the
// work-horse of the noncoherent FSK demodulator: per bit interval the
// receiver compares Goertzel energy at the two subcarrier frequencies.
// It is O(n) per block with two multiplies per sample, far cheaper than an
// FFT when only a handful of bins are needed.
type Goertzel struct {
	coeff complex128 // e^{j2πf/fs}
}

// NewGoertzel constructs a detector for frequency fHz at sample rate fsHz.
// fHz may be negative (lower sideband at complex baseband).
func NewGoertzel(fHz, fsHz float64) *Goertzel {
	return &Goertzel{coeff: cmplx.Rect(1, Tau*fHz/fsHz)}
}

// Correlate returns the complex correlation of block x against the tone:
// sum x[n]·e^{-j2πfn/fs}. For complex input this is an exact single-bin DFT.
func (g *Goertzel) Correlate(x []complex128) complex128 {
	// Direct complex heterodyne accumulation: numerically robust and just as
	// fast as the classic two-real-multiplies recursion for complex input.
	w := complex(1, 0)
	conjStep := cmplx.Conj(g.coeff)
	var acc complex128
	for _, v := range x {
		acc += v * w
		w *= conjStep
	}
	return acc
}

// Energy returns |Correlate(x)|², the tone energy in the block.
func (g *Goertzel) Energy(x []complex128) float64 {
	c := g.Correlate(x)
	return real(c)*real(c) + imag(c)*imag(c)
}

// ToneBank correlates blocks against a fixed set of tones, returning the
// per-tone energies. Used for M-ary FSK detection.
type ToneBank struct {
	dets  []*Goertzel
	freqs []float64
}

// NewToneBank builds detectors for each frequency in freqsHz.
func NewToneBank(freqsHz []float64, fsHz float64) *ToneBank {
	tb := &ToneBank{
		dets:  make([]*Goertzel, len(freqsHz)),
		freqs: append([]float64(nil), freqsHz...),
	}
	for i, f := range freqsHz {
		tb.dets[i] = NewGoertzel(f, fsHz)
	}
	return tb
}

// Freqs returns the tone frequencies in Hz.
func (tb *ToneBank) Freqs() []float64 {
	return append([]float64(nil), tb.freqs...)
}

// Energies fills dst (which must have one entry per tone) with the tone
// energies of block x and returns dst.
func (tb *ToneBank) Energies(dst []float64, x []complex128) []float64 {
	if len(dst) != len(tb.dets) {
		panic("dsp: ToneBank.Energies dst length mismatch")
	}
	for i, d := range tb.dets {
		dst[i] = d.Energy(x)
	}
	return dst
}

// Best returns the index of the tone with maximum energy in x along with
// the winning and runner-up energies. It panics if the bank is empty.
func (tb *ToneBank) Best(x []complex128) (idx int, best, second float64) {
	if len(tb.dets) == 0 {
		panic("dsp: Best on empty ToneBank")
	}
	best = math.Inf(-1)
	second = math.Inf(-1)
	for i, d := range tb.dets {
		e := d.Energy(x)
		if e > best {
			second = best
			best = e
			idx = i
		} else if e > second {
			second = e
		}
	}
	return idx, best, second
}
