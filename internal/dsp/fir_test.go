package dsp

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
)

func TestLowpassFIRPassbandStopband(t *testing.T) {
	fs := 16000.0
	lp, err := LowpassFIR(101, 2000, fs, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	// DC gain should be exactly 1 after normalization.
	if g := cmplx.Abs(lp.FreqResponse(0)); !approxEq(g, 1, 1e-12) {
		t.Errorf("DC gain = %v, want 1", g)
	}
	// Passband (500 Hz) close to 1.
	if g := cmplx.Abs(lp.FreqResponse(500 / fs)); math.Abs(g-1) > 0.01 {
		t.Errorf("passband gain = %v, want ~1", g)
	}
	// Stopband (5 kHz) strongly attenuated.
	if g := cmplx.Abs(lp.FreqResponse(5000 / fs)); g > 0.01 {
		t.Errorf("stopband gain = %v, want < 0.01", g)
	}
}

func TestHighpassFIR(t *testing.T) {
	fs := 16000.0
	hp, err := HighpassFIR(101, 2000, fs, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	if g := cmplx.Abs(hp.FreqResponse(0)); g > 1e-10 {
		t.Errorf("DC gain = %v, want ~0", g)
	}
	if g := cmplx.Abs(hp.FreqResponse(6000 / fs)); math.Abs(g-1) > 0.02 {
		t.Errorf("passband gain = %v, want ~1", g)
	}
	if _, err := HighpassFIR(100, 2000, fs, Hamming); err == nil {
		t.Error("even tap count should be rejected")
	}
}

func TestBandpassFIR(t *testing.T) {
	fs := 16000.0
	bp, err := BandpassFIR(201, 900, 1100, fs, Hamming)
	if err != nil {
		t.Fatal(err)
	}
	if g := cmplx.Abs(bp.FreqResponse(1000 / fs)); math.Abs(g-1) > 0.02 {
		t.Errorf("center gain = %v, want ~1", g)
	}
	for _, f := range []float64{0, 200, 4000} {
		if g := cmplx.Abs(bp.FreqResponse(f / fs)); g > 0.05 {
			t.Errorf("gain at %v Hz = %v, want small", f, g)
		}
	}
}

func TestFIRDesignErrors(t *testing.T) {
	if _, err := LowpassFIR(0, 100, 1000, Hann); err == nil {
		t.Error("n=0 should error")
	}
	if _, err := LowpassFIR(11, 600, 1000, Hann); err == nil {
		t.Error("cutoff above Nyquist should error")
	}
	if _, err := BandpassFIR(11, 400, 300, 1000, Hann); err == nil {
		t.Error("inverted band should error")
	}
}

func TestFIRStreamingMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	lp, _ := LowpassFIR(31, 1000, 8000, Hann)
	x := randComplex(rng, 256)
	batch := lp.Process(x)

	lp2, _ := LowpassFIR(31, 1000, 8000, Hann)
	var stream []complex128
	// Chunks of varying sizes, including sizes smaller than the tap count.
	for _, chunk := range [][2]int{{0, 7}, {7, 10}, {10, 100}, {100, 256}} {
		stream = append(stream, lp2.Process(x[chunk[0]:chunk[1]])...)
	}
	for i := range batch {
		if !approxEqC(batch[i], stream[i], 1e-10) {
			t.Fatalf("sample %d: batch %v != stream %v", i, batch[i], stream[i])
		}
	}
}

func TestFIRReset(t *testing.T) {
	lp, _ := LowpassFIR(15, 1000, 8000, Hann)
	x := []complex128{1, 2, 3, 4, 5, 6, 7, 8}
	a := lp.Process(x)
	lp.Reset()
	b := lp.Process(x)
	for i := range a {
		if !approxEqC(a[i], b[i], 1e-12) {
			t.Fatalf("after Reset output differs at %d", i)
		}
	}
}

func TestFIRImpulseResponseEqualsTaps(t *testing.T) {
	taps := []float64{0.25, 0.5, 0.25}
	f := NewFIR(taps)
	imp := make([]complex128, 6)
	imp[0] = 1
	y := f.Process(imp)
	want := []float64{0.25, 0.5, 0.25, 0, 0, 0}
	for i := range want {
		if !approxEq(real(y[i]), want[i], 1e-12) || !approxEq(imag(y[i]), 0, 1e-12) {
			t.Errorf("impulse response[%d] = %v, want %v", i, y[i], want[i])
		}
	}
}

func TestDCBlockerRemovesDC(t *testing.T) {
	d := NewDCBlocker(0.995)
	n := 4000
	x := make([]complex128, n)
	for i := range x {
		// Strong DC plus small tone at 0.1·fs.
		x[i] = complex(10, 0) + cmplx.Rect(0.1, Tau*0.1*float64(i))
	}
	y := d.Process(x)
	// After settling, the DC component should be gone but the tone kept.
	tail := y[n/2:]
	g := NewGoertzel(0.1, 1) // normalized fs=1
	toneE := g.Energy(tail) / float64(len(tail))
	dc := NewGoertzel(0, 1)
	dcE := dc.Energy(tail) / float64(len(tail))
	if dcE > toneE/100 {
		t.Errorf("residual DC energy %v vs tone %v; notch too weak", dcE, toneE)
	}
	if toneE < 0.001 {
		t.Errorf("tone destroyed by DC blocker: %v", toneE)
	}
}

func TestDCBlockerPanicsOnBadPole(t *testing.T) {
	for _, r := range []float64{0, 1, -0.5, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("r=%v should panic", r)
				}
			}()
			NewDCBlocker(r)
		}()
	}
}

func TestGroupDelay(t *testing.T) {
	lp, _ := LowpassFIR(31, 1000, 8000, Hann)
	if gd := lp.GroupDelay(); gd != 15 {
		t.Errorf("group delay = %v, want 15", gd)
	}
}

func TestFIRProcessIntoAliasSafe(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	lp, _ := LowpassFIR(31, 1000, 8000, Hann)
	x := randComplex(rng, 300)
	want := lp.Process(append([]complex128(nil), x...))

	lp2, _ := LowpassFIR(31, 1000, 8000, Hann)
	buf := append([]complex128(nil), x...)
	lp2.ProcessInto(buf, buf) // in place
	for i := range want {
		if !approxEqC(want[i], buf[i], 1e-10) {
			t.Fatalf("in-place output differs at %d: %v vs %v", i, buf[i], want[i])
		}
	}
}

func TestFIRRingStateAcrossChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(78))
	x := randComplex(rng, 97) // awkward chunk sizes vs 31 taps
	lp, _ := LowpassFIR(31, 1000, 8000, Hann)
	batch := lp.Process(x)
	lp2, _ := LowpassFIR(31, 1000, 8000, Hann)
	var stream []complex128
	for _, cut := range [][2]int{{0, 5}, {5, 36}, {36, 37}, {37, 97}} {
		chunk := append([]complex128(nil), x[cut[0]:cut[1]]...)
		lp2.ProcessInto(chunk, chunk)
		stream = append(stream, chunk...)
	}
	for i := range batch {
		if !approxEqC(batch[i], stream[i], 1e-10) {
			t.Fatalf("chunked in-place differs at %d", i)
		}
	}
}
