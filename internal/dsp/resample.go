package dsp

import "math"

// FractionalDelay returns x delayed by the (possibly fractional) number of
// samples d >= 0, using a windowed-sinc interpolator of the given half-width
// (taps per side). The output has the same length as the input; samples
// shifted in from before the signal are zero.
//
// Multipath arrivals in the channel simulator rarely land on sample
// boundaries; this keeps inter-arrival phase relationships exact.
func FractionalDelay(x []complex128, d float64, halfWidth int) []complex128 {
	if d < 0 {
		panic("dsp: FractionalDelay requires d >= 0")
	}
	n := len(x)
	out := make([]complex128, n)
	di := int(math.Floor(d))
	frac := d - float64(di)
	if frac == 0 {
		// Pure integer shift.
		for i := di; i < n; i++ {
			out[i] = x[i-di]
		}
		return out
	}
	// Windowed-sinc kernel centered at frac.
	k := make([]float64, 2*halfWidth)
	var sum float64
	for i := range k {
		t := float64(i-halfWidth+1) - frac
		// Hann window over the kernel support.
		w := 0.5 + 0.5*math.Cos(math.Pi*t/float64(halfWidth))
		if t <= -float64(halfWidth) || t >= float64(halfWidth) {
			w = 0
		}
		k[i] = Sinc(t) * w
		sum += k[i]
	}
	for i := range k {
		k[i] /= sum
	}
	for i := 0; i < n; i++ {
		var acc complex128
		for j, kj := range k {
			src := i - di - (j - halfWidth + 1)
			if src >= 0 && src < n {
				acc += complex(kj, 0) * x[src]
			}
		}
		out[i] = acc
	}
	return out
}

// Decimate returns every factor-th sample of x after lowpass filtering to
// avoid aliasing. factor must be >= 1.
func Decimate(x []complex128, factor int, fsHz float64) ([]complex128, error) {
	if factor < 1 {
		panic("dsp: Decimate factor must be >= 1")
	}
	if factor == 1 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out, nil
	}
	cut := fsHz / float64(2*factor) * 0.9
	lp, err := LowpassFIR(63, cut, fsHz, Hamming)
	if err != nil {
		return nil, err
	}
	y := lp.Process(x)
	out := make([]complex128, 0, len(x)/factor+1)
	for i := 0; i < len(y); i += factor {
		out = append(out, y[i])
	}
	return out, nil
}

// Upsample inserts factor-1 zeros between samples and lowpass-interpolates,
// scaling so signal amplitude is preserved.
func Upsample(x []complex128, factor int, fsHz float64) ([]complex128, error) {
	if factor < 1 {
		panic("dsp: Upsample factor must be >= 1")
	}
	if factor == 1 {
		out := make([]complex128, len(x))
		copy(out, x)
		return out, nil
	}
	up := make([]complex128, len(x)*factor)
	for i, v := range x {
		up[i*factor] = v
	}
	outFs := fsHz * float64(factor)
	cut := fsHz / 2 * 0.9
	lp, err := LowpassFIR(63, cut, outFs, Hamming)
	if err != nil {
		return nil, err
	}
	y := lp.Process(up)
	Scale(y, float64(factor))
	return y, nil
}
