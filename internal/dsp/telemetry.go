package dsp

import "vab/internal/telemetry"

// Stage-timing handles for the two hot transform kernels. They stay nil
// (free no-ops, no clock reads) until Instrument is called, so the DSP
// hot path is untouched by default — BenchmarkFFT and the system round
// benchmarks measure the same code either way.
var (
	metFFTTime   *telemetry.Histogram
	metXCorrTime *telemetry.Histogram
)

// Plan-cache counters (see plan.go). Unlike the span handles these are hit
// from arbitrary goroutines, but Counter.Add is atomic and nil-safe, so the
// same write-once-in-Instrument contract applies.
var (
	metPlanHits   *telemetry.Counter
	metPlanMisses *telemetry.Counter
)

// Instrument enables FFT/correlate stage timing against reg. Call once at
// startup, before any concurrent DSP use: the handles are plain package
// variables, written here and only read afterwards.
func Instrument(reg *telemetry.Registry) {
	if reg == nil {
		return
	}
	bounds := telemetry.ExpBuckets(1e-6, 10, 8) // 1 µs … 10 s
	metFFTTime = reg.Histogram(
		telemetry.Label("vab_dsp_stage_seconds", "stage", "fft"),
		"DSP kernel wall time in seconds.", bounds)
	metXCorrTime = reg.Histogram(
		telemetry.Label("vab_dsp_stage_seconds", "stage", "correlate"),
		"DSP kernel wall time in seconds.", bounds)
	metPlanHits = reg.Counter("vab_dsp_fft_plan_hits_total",
		"FFT transforms served from a cached plan.")
	metPlanMisses = reg.Counter("vab_dsp_fft_plan_misses_total",
		"FFT plans built (one per transform size first seen).")
}
