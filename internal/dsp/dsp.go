// Package dsp provides the digital signal processing primitives used by the
// VAB simulation stack: FFTs, FIR filter design and application, Goertzel
// tone detection, window functions, correlation, resampling, and basic
// statistics over real and complex sequences.
//
// All routines are allocation-conscious: the hot paths (filtering, Goertzel,
// correlation) operate on caller-provided slices and avoid per-sample
// allocation so they can run inside Monte-Carlo loops.
package dsp

import (
	"math"
	"math/cmplx"
)

// Tau is the circle constant 2π.
const Tau = 2 * math.Pi

// NextPow2 returns the smallest power of two >= n. NextPow2(0) == 1.
func NextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// ToComplex copies a real sequence into a freshly allocated complex slice.
func ToComplex(x []float64) []complex128 {
	c := make([]complex128, len(x))
	for i, v := range x {
		c[i] = complex(v, 0)
	}
	return c
}

// Real extracts the real parts of a complex sequence.
func Real(x []complex128) []float64 {
	r := make([]float64, len(x))
	for i, v := range x {
		r[i] = real(v)
	}
	return r
}

// Imag extracts the imaginary parts of a complex sequence.
func Imag(x []complex128) []float64 {
	r := make([]float64, len(x))
	for i, v := range x {
		r[i] = imag(v)
	}
	return r
}

// Abs returns the element-wise magnitudes of a complex sequence.
func Abs(x []complex128) []float64 {
	r := make([]float64, len(x))
	for i, v := range x {
		r[i] = cmplx.Abs(v)
	}
	return r
}

// Energy returns the sum of squared magnitudes of x.
func Energy(x []complex128) float64 {
	var e float64
	for _, v := range x {
		e += real(v)*real(v) + imag(v)*imag(v)
	}
	return e
}

// EnergyReal returns the sum of squares of a real sequence.
func EnergyReal(x []float64) float64 {
	var e float64
	for _, v := range x {
		e += v * v
	}
	return e
}

// Power returns the mean squared magnitude of x (0 for empty input).
func Power(x []complex128) float64 {
	if len(x) == 0 {
		return 0
	}
	return Energy(x) / float64(len(x))
}

// Scale multiplies x by a real gain in place and returns x.
func Scale(x []complex128, g float64) []complex128 {
	for i := range x {
		x[i] *= complex(g, 0)
	}
	return x
}

// AddInto accumulates src into dst element-wise. The slices must have equal
// length.
func AddInto(dst, src []complex128) {
	if len(dst) != len(src) {
		panic("dsp: AddInto length mismatch")
	}
	for i := range dst {
		dst[i] += src[i]
	}
}

// MixInto accumulates g*src into dst element-wise starting at dst[off].
// Samples of src that fall outside dst are dropped. The overlap region is
// clipped up front so the inner loop carries no per-sample bounds logic;
// the accumulation order (ascending source index) is unchanged, so results
// are bit-identical to the naive loop.
func MixInto(dst, src []complex128, off int, g complex128) {
	start := 0
	if off < 0 {
		start = -off
	}
	end := len(src)
	if rem := len(dst) - off; rem < end {
		end = rem
	}
	if start >= end {
		return
	}
	d := dst[off+start : off+end]
	s := src[start:end]
	for i, v := range s {
		d[i] += g * v
	}
}

// Conj conjugates x in place and returns x.
func Conj(x []complex128) []complex128 {
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	return x
}

// DB converts a power ratio to decibels. Non-positive ratios map to -Inf.
func DB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(ratio)
}

// FromDB converts decibels to a power ratio.
func FromDB(db float64) float64 { return math.Pow(10, db/10) }

// AmpDB converts an amplitude ratio to decibels.
func AmpDB(ratio float64) float64 {
	if ratio <= 0 {
		return math.Inf(-1)
	}
	return 20 * math.Log10(ratio)
}

// FromAmpDB converts decibels to an amplitude ratio.
func FromAmpDB(db float64) float64 { return math.Pow(10, db/20) }

// Clamp limits v to the closed interval [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// WrapPhase wraps an angle in radians to [-π, π).
func WrapPhase(p float64) float64 {
	w := math.Mod(p+math.Pi, Tau)
	if w < 0 {
		w += Tau
	}
	return w - math.Pi
}

// Sinc computes the normalized sinc function sin(πx)/(πx).
func Sinc(x float64) float64 {
	if x == 0 {
		return 1
	}
	px := math.Pi * x
	return math.Sin(px) / px
}
