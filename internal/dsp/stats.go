package dsp

import (
	"math"
	"math/rand"
	"sort"
)

// Mean returns the arithmetic mean of x (0 for empty input).
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	var s float64
	for _, v := range x {
		s += v
	}
	return s / float64(len(x))
}

// Variance returns the population variance of x.
func Variance(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	m := Mean(x)
	var s float64
	for _, v := range x {
		d := v - m
		s += d * d
	}
	return s / float64(len(x))
}

// StdDev returns the population standard deviation of x.
func StdDev(x []float64) float64 { return math.Sqrt(Variance(x)) }

// Median returns the median of x without modifying it.
func Median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	c := append([]float64(nil), x...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Percentile returns the p-th percentile (0 <= p <= 100) of x using linear
// interpolation between closest ranks.
func Percentile(x []float64, p float64) float64 {
	if len(x) == 0 {
		return 0
	}
	c := append([]float64(nil), x...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return c[lo]
	}
	frac := rank - float64(lo)
	return c[lo]*(1-frac) + c[hi]*frac
}

// Q is the Gaussian tail probability Q(x) = P(N(0,1) > x).
func Q(x float64) float64 { return 0.5 * math.Erfc(x/math.Sqrt2) }

// QInv inverts the Q function via bisection on [-40, 40]. Accuracy is
// better than 1e-10, ample for link-budget math.
func QInv(p float64) float64 {
	if p <= 0 {
		return math.Inf(1)
	}
	if p >= 1 {
		return math.Inf(-1)
	}
	lo, hi := -40.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if Q(mid) > p {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Marcum1 computes the first-order Marcum Q-function Q1(a, b) by series
// summation, used for noncoherent detection over Rician channels.
func Marcum1(a, b float64) float64 {
	if b == 0 {
		return 1
	}
	// Q1(a,b) = exp(-(a²+b²)/2) Σ_{k=0..∞} (a/b)^k I_k(ab)
	// Series in terms of the modified Bessel functions; sum until terms are
	// negligible. Use the canonical series with Poisson weights instead,
	// which is numerically friendlier:
	//   Q1(a,b) = Σ_{n=0..∞} e^{-a²/2}(a²/2)^n/n! · P(n+1, b²/2 upper)
	// where the inner term is the regularized upper incomplete gamma
	// Γ(n+1, b²/2)/n! = e^{-b²/2} Σ_{m=0..n} (b²/2)^m/m!.
	x := a * a / 2
	y := b * b / 2
	// pw: Poisson weight e^{-x}x^n/n!; cg: cumulative e^{-y}Σ y^m/m!.
	pw := math.Exp(-x)
	term := math.Exp(-y)
	cg := term
	var q float64
	const maxIter = 10000
	for n := 0; n < maxIter; n++ {
		q += pw * cg
		if pw < 1e-18 && n > int(x) {
			break
		}
		pw *= x / float64(n+1)
		term *= y / float64(n+1)
		cg += term
	}
	if q > 1 {
		q = 1
	}
	return q
}

// WilsonCI returns the Wilson score confidence interval for a binomial
// proportion with k successes out of n trials at confidence level implied by
// z (e.g. z = 1.96 for 95%).
func WilsonCI(k, n int, z float64) (lo, hi float64) {
	if n == 0 {
		return 0, 1
	}
	p := float64(k) / float64(n)
	nn := float64(n)
	z2 := z * z
	den := 1 + z2/nn
	center := (p + z2/(2*nn)) / den
	half := z / den * math.Sqrt(p*(1-p)/nn+z2/(4*nn*nn))
	lo = math.Max(0, center-half)
	hi = math.Min(1, center+half)
	return lo, hi
}

// GaussianNoise fills dst with circularly-symmetric complex Gaussian noise
// of total power (variance) np, using rng, and returns dst.
func GaussianNoise(dst []complex128, np float64, rng *rand.Rand) []complex128 {
	GaussianNoiseInto(dst, np, rng)
	return dst
}

// GaussianNoiseInto fills dst with circularly-symmetric complex Gaussian
// noise of total power (variance) np, drawing two normals per sample from
// rng in the same order as GaussianNoise (they are the same routine; this
// name exists so steady-state callers reusing a workspace buffer read as
// the allocation-free variant). It never allocates.
func GaussianNoiseInto(dst []complex128, np float64, rng *rand.Rand) {
	sigma := math.Sqrt(np / 2)
	for i := range dst {
		dst[i] = complex(rng.NormFloat64()*sigma, rng.NormFloat64()*sigma)
	}
}

// Linspace returns n evenly spaced values from lo to hi inclusive.
// n must be >= 2.
func Linspace(lo, hi float64, n int) []float64 {
	if n < 2 {
		panic("dsp: Linspace needs n >= 2")
	}
	out := make([]float64, n)
	step := (hi - lo) / float64(n-1)
	for i := range out {
		out[i] = lo + float64(i)*step
	}
	out[n-1] = hi
	return out
}

// Logspace returns n logarithmically spaced values from lo to hi inclusive.
// lo and hi must be positive.
func Logspace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= 0 {
		panic("dsp: Logspace needs positive endpoints")
	}
	ll, lh := math.Log10(lo), math.Log10(hi)
	pts := Linspace(ll, lh, n)
	for i, v := range pts {
		pts[i] = math.Pow(10, v)
	}
	_ = pts[n-1]
	pts[n-1] = hi
	return pts
}
