package experiments

import (
	"fmt"
	"sort"
	"testing"
)

// e14Curve extracts one arm's delivery curve, ordered by intensity.
func e14Curve(res *Result, arm string) []float64 {
	curve := make([]float64, len(e14Intensities))
	for i, in := range e14Intensities {
		curve[i] = res.Metrics[fmt.Sprintf("delivery_%s_%.2f", arm, in)]
	}
	return curve
}

// TestE14ResumeBeatsLiveOnly pins the campaign's headline properties:
// chaos-free delivery is perfect, delivery degrades under chaos, and the
// resume arm measurably beats live-only under faults.
func TestE14ResumeBeatsLiveOnly(t *testing.T) {
	res, err := Run("E14", Options{Trials: 2000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Table == nil || res.Table.Rows() != 2*len(e14Intensities) {
		t.Fatalf("table rows = %d, want %d", res.Table.Rows(), 2*len(e14Intensities))
	}
	for _, arm := range []string{"off", "on"} {
		curve := e14Curve(res, arm)
		if curve[0] != 1 {
			t.Errorf("arm %s: chaos-free delivery %.4f, want exactly 1", arm, curve[0])
		}
		if last := curve[len(curve)-1]; last >= 1 {
			t.Errorf("arm %s: full chaos still delivers everything — schedule inert", arm)
		}
	}
	if gain := res.Metrics["resume_gain"]; gain <= 0.01 {
		t.Errorf("resume_gain = %.4f, want a measurable (>0.01) win", gain)
	}
	// The resume arm must dominate live-only at every faulted intensity:
	// with a shared storm schedule, recovery can only add deliveries.
	off, on := e14Curve(res, "off"), e14Curve(res, "on")
	for i := 1; i < len(off); i++ {
		if on[i] < off[i] {
			t.Errorf("intensity %.2f: resume %.4f below live-only %.4f", e14Intensities[i], on[i], off[i])
		}
	}
}

// TestE14Deterministic: identical Options must regenerate byte-identical
// artifacts, and the worker count must not leak into them.
func TestE14Deterministic(t *testing.T) {
	opts := Options{Trials: 800, Seed: 17}
	opts.Workers = 1
	a, err := Run("E14", opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	b, err := Run("E14", opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Table.CSV() != b.Table.CSV() {
		t.Errorf("tables diverge across worker counts:\n--- workers=1\n%s\n--- workers=8\n%s",
			a.Table.CSV(), b.Table.CSV())
	}
	keys := make([]string, 0, len(a.Metrics))
	for k := range a.Metrics {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if a.Metrics[k] != b.Metrics[k] {
			t.Errorf("metric %s: %v vs %v", k, a.Metrics[k], b.Metrics[k])
		}
	}
}

// TestE14OptIn: E14 resolves through Run but stays out of IDs()/RunAll so
// `-exp all` transcripts are untouched by its existence.
func TestE14OptIn(t *testing.T) {
	for _, id := range IDs() {
		if id == "E14" {
			t.Fatal("E14 leaked into the registry ID list")
		}
	}
	if _, err := Run("E14", Options{Trials: 50, Seed: 1}); err != nil {
		t.Fatalf("opt-in lookup failed: %v", err)
	}
}
